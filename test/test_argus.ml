(** Tests for the Argus core: extraction (implication heuristic, pruning),
    the proof-tree arena, failure formulas, DNF/MCS, the inertia heuristic
    (Appendix A.1 weights verbatim), baseline rankers, the view state
    machine, the renderer, and CtxtLinks. *)

open Trait_lang

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_str = Alcotest.check Alcotest.string

let resolve src = Resolve.program_of_string ~file:"t.rs" src

let failed_tree src =
  let program = resolve src in
  let report = Solver.Obligations.solve_program program in
  let r = List.hd (Solver.Obligations.errors report) in
  (program, r, Argus.Extract.of_report r)

let bevy_tree () = Corpus.Harness.failed_tree (Option.get (Corpus.Suite.find "bevy-errant-param"))

(* ------------------------------------------------------------------ *)
(* Extract: the implication heuristic *)

let tr name = Ty.trait_ref (Path.local [ name ])
let ctor name = Ty.ctor (Path.local [ name ]) []

let test_generalizes () =
  let gen = Predicate.trait_ (Ty.Infer 0) (tr "T") in
  let spec = Predicate.trait_ (ctor "A") (tr "T") in
  check_bool "hole generalizes concrete" true
    (Argus.Extract.generalizes ~general:gen ~specific:spec);
  check_bool "concrete does not generalize hole" false
    (Argus.Extract.generalizes ~general:spec ~specific:gen);
  check_bool "reflexive" true (Argus.Extract.generalizes ~general:spec ~specific:spec)

let test_generalizes_consistent_bindings () =
  (* ?0 used twice must map to the same type *)
  let gen =
    Predicate.trait_ (Ty.tuple [ Ty.Infer 0; Ty.Infer 0 ]) (tr "T")
  in
  let same = Predicate.trait_ (Ty.tuple [ ctor "A"; ctor "A" ]) (tr "T") in
  let diff = Predicate.trait_ (Ty.tuple [ ctor "A"; ctor "B" ]) (tr "T") in
  check_bool "consistent ok" true (Argus.Extract.generalizes ~general:gen ~specific:same);
  check_bool "inconsistent rejected" false
    (Argus.Extract.generalizes ~general:gen ~specific:diff)

let test_dedup_attempts () =
  let mk pred : Solver.Trace.goal_node =
    {
      gid = 0;
      pred;
      result = Solver.Res.Maybe;
      candidates = [];
      depth = 0;
      provenance = Solver.Trace.Root { origin = "x"; span = Span.dummy };
      flags = [];
    }
  in
  let early = mk (Predicate.trait_ (Ty.Infer 0) (tr "T")) in
  let late = mk (Predicate.trait_ (ctor "A") (tr "T")) in
  let survivors = Argus.Extract.dedup_attempts [ early; late ] in
  check_int "early snapshot dropped" 1 (List.length survivors);
  check_bool "kept the specific one" true
    (Predicate.equal (List.hd survivors).pred late.pred);
  (* unrelated predicates both survive *)
  let other = mk (Predicate.trait_ (ctor "B") (tr "U")) in
  check_int "unrelated kept" 2 (List.length (Argus.Extract.dedup_attempts [ other; late ]))

(* ------------------------------------------------------------------ *)
(* Proof tree structure *)

(* The impl's self head (`B<_>`) matches the goal's, so it survives
   fast-reject and fails inside unification — a head-mismatched impl
   (e.g. `impl T for B` against `goal A: T`) would no longer be probed
   at all. *)
let simple_fail = "struct A; struct B<X>; trait T {} impl T for B<A> {} goal B<B<A>>: T;"

let test_tree_roundtrip_structure () =
  let _, _, tree = failed_tree simple_fail in
  let root = Argus.Proof_tree.root tree in
  check_bool "root is goal" true (Argus.Proof_tree.is_goal root);
  check_bool "root failed" true (Argus.Proof_tree.is_failed root);
  check_int "one candidate" 1 (List.length (Argus.Proof_tree.children tree root));
  let cand = List.hd (Argus.Proof_tree.children tree root) in
  check_bool "cand parent is root" true
    (match Argus.Proof_tree.parent tree cand with
    | Some p -> p.id = root.id
    | None -> false)

let test_tree_failed_leaves () =
  let _, _, tree = failed_tree simple_fail in
  let leaves = Argus.Proof_tree.failed_leaves tree in
  check_int "one leaf" 1 (List.length leaves);
  check_bool "leaf is the root here" true ((List.hd leaves).id = (Argus.Proof_tree.root tree).id)

let chain_fail =
  {|
    struct A; struct W<X>; struct V<X>;
    trait T {} trait U {} trait S {}
    impl<X> T for W<X> where X: U {}
    impl<X> U for V<X> where X: S {}
    goal W<V<A>>: T;
  |}

let test_tree_ancestors_and_distance () =
  let _, _, tree = failed_tree chain_fail in
  let leaves = Argus.Proof_tree.failed_leaves tree in
  check_int "single leaf" 1 (List.length leaves);
  let leaf = List.hd leaves in
  let ancestors = Argus.Proof_tree.ancestors tree leaf in
  check_int "two goal ancestors" 2 (List.length ancestors);
  let root = Argus.Proof_tree.root tree in
  check_int "distance leaf->root" 2 (Argus.Proof_tree.goal_distance tree leaf root);
  check_int "distance self" 0 (Argus.Proof_tree.goal_distance tree leaf leaf)

let test_tree_goal_count () =
  let _, _, tree = failed_tree chain_fail in
  check_int "three goals" 3 (Argus.Proof_tree.goal_count tree)

(* ------------------------------------------------------------------ *)
(* Formula + DNF *)

let test_formula_of_linear_chain () =
  let _, _, tree = failed_tree chain_fail in
  let f, it = Argus.Formula.of_tree tree in
  check_int "single variable" 1 (Argus.Formula.num_vars it);
  check_bool "formula is satisfiable by fixing it" true
    (Argus.Formula.eval (fun _ -> true) f)

let test_formula_eval () =
  let open Argus.Formula in
  let f = Or [ And [ Var 0; Var 1 ]; Var 2 ] in
  check_bool "both" true (eval (fun i -> i <> 2) f);
  check_bool "just 2" true (eval (fun i -> i = 2) f);
  check_bool "just 0" false (eval (fun i -> i = 0) f)

let test_dnf_basic () =
  let open Argus.Formula in
  let f = And [ Or [ Var 0; Var 1 ]; Var 2 ] in
  let d = Argus.Dnf.of_formula f in
  check_int "two conjuncts" 2 (Argus.Dnf.num_conjuncts d);
  check_bool "contains {0,2}" true (List.mem [ 0; 2 ] d);
  check_bool "contains {1,2}" true (List.mem [ 1; 2 ] d)

let test_dnf_absorption () =
  let open Argus.Formula in
  (* x | (x & y) = x *)
  let f = Or [ Var 0; And [ Var 0; Var 1 ] ] in
  let d = Argus.Dnf.of_formula f in
  check_int "absorbed" 1 (Argus.Dnf.num_conjuncts d);
  check_bool "kept x" true (List.mem [ 0 ] d)

let test_dnf_true_false () =
  check_int "true" 1 (Argus.Dnf.num_conjuncts (Argus.Dnf.of_formula Argus.Formula.True));
  check_int "false" 0 (Argus.Dnf.num_conjuncts (Argus.Dnf.of_formula Argus.Formula.False))

(* random formulas for the equivalence property *)
let formula_gen =
  let open QCheck.Gen in
  let leaf = oneof [ map (fun i -> Argus.Formula.Var (abs i mod 6)) int ] in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 2,
            map
              (fun fs -> Argus.Formula.And fs)
              (list_size (int_range 1 3) (node (depth - 1))) );
          ( 2,
            map
              (fun fs -> Argus.Formula.Or fs)
              (list_size (int_range 1 3) (node (depth - 1))) );
        ]
  in
  node 4

let arbitrary_formula =
  QCheck.make ~print:(Format.asprintf "%a" Argus.Formula.pp) formula_gen

let prop_dnf_equivalent =
  QCheck.Test.make ~name:"DNF is logically equivalent to the formula" ~count:300
    arbitrary_formula (fun f ->
      let d = Argus.Dnf.of_formula f in
      (* exhaustively check all assignments over 6 variables *)
      let ok = ref true in
      for mask = 0 to 63 do
        let assign i = mask land (1 lsl i) <> 0 in
        if Argus.Formula.eval assign f <> Argus.Dnf.eval assign d then ok := false
      done;
      !ok)

let prop_dnf_minimal =
  QCheck.Test.make ~name:"DNF conjuncts are minimal (no conjunct subsumes another)"
    ~count:300 arbitrary_formula (fun f ->
      let d = Argus.Dnf.of_formula f in
      List.for_all
        (fun c ->
          not (List.exists (fun c' -> c' <> c && Argus.Dnf.conj_subset c' c) d))
        d)

let prop_dnf_lazy_same_semantics =
  QCheck.Test.make ~name:"eager and lazy minimization agree semantically" ~count:200
    arbitrary_formula (fun f ->
      let eager = Argus.Dnf.of_formula f in
      let lazy_ =
        Argus.Dnf.of_formula ~cfg:{ Argus.Dnf.minimize_eagerly = false } f
      in
      let ok = ref true in
      for mask = 0 to 63 do
        let assign i = mask land (1 lsl i) <> 0 in
        if Argus.Dnf.eval assign eager <> Argus.Dnf.eval assign lazy_ then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Inertia: the Appendix A.1 table, verbatim *)

let test_inertia_weights_verbatim () =
  let open Argus.Inertia in
  check_int "local/local = 0" 0 (weight (Trait { self_ = Local; trait_ = Local }));
  check_int "local/external = 1" 1 (weight (Trait { self_ = Local; trait_ = External }));
  check_int "external/local = 1" 1 (weight (Trait { self_ = External; trait_ = Local }));
  check_int "fn-to-local-trait = 1" 1 (weight (FnToTrait { trait_ = Local; arity = 3 }));
  check_int "external/external = 2" 2 (weight (Trait { self_ = External; trait_ = External }));
  check_int "tychange = 4" 4 (weight TyChange);
  check_int "incorrect params = 5d" 15 (weight (IncorrectParams { arity = 3 }));
  check_int "add params = 5d" 10 (weight (AddFnParams { delta = 2 }));
  check_int "delete params = 5d" 5 (weight (DeleteFnParams { delta = 1 }));
  check_int "fn-to-external = 4+5a" 9 (weight (FnToTrait { trait_ = External; arity = 1 }));
  check_int "ty-as-callable = 4+5a" 14 (weight (TyAsCallable { arity = 2 }));
  check_int "misc = 50" 50 (weight Misc)

let ext_tr name = Ty.trait_ref (Path.external_ "dep" [ name ])
let ext_ctor name = Ty.ctor (Path.external_ "dep" [ name ]) []
let fn_item = Ty.fn_item (Path.local [ "f" ]) [ ctor "A" ] Ty.Unit

let test_inertia_classify () =
  let open Argus.Inertia in
  (* the paper's two Bevy examples, §3.3 *)
  let timer_systemparam = Predicate.trait_ (ctor "Timer") (ext_tr "SystemParam") in
  check_bool "Timer: SystemParam is category 1" true
    (classify timer_systemparam = Trait { self_ = Local; trait_ = External });
  check_int "weight 1" 1 (score timer_systemparam);
  let run_timer_system = Predicate.trait_ fn_item (ext_tr "System") in
  check_bool "{run_timer}: System is fn-to-trait" true
    (classify run_timer_system = FnToTrait { trait_ = External; arity = 1 });
  check_int "weight 9" 9 (score run_timer_system);
  (* projections are TyChange *)
  let proj =
    Predicate.projection_eq (Ty.projection (ctor "A") (ext_tr "T") "Out") (ctor "B")
  in
  check_bool "projection is TyChange" true (classify proj = TyChange);
  (* a non-fn required to be callable *)
  let callable =
    Predicate.trait_ (ctor "A")
      (Ty.trait_ref ~args:[ Ty.tuple [ Ty.int; Ty.int ] ] (Path.external_ "std" [ "Fn" ]))
  in
  check_bool "non-fn as callable" true (classify callable = TyAsCallable { arity = 2 });
  (* fn with wrong arity against Fn *)
  let wrong_arity =
    Predicate.trait_ fn_item
      (Ty.trait_ref ~args:[ Ty.tuple [ Ty.int; Ty.int; Ty.int ] ] (Path.external_ "std" [ "Fn" ]))
  in
  check_bool "add params" true (classify wrong_arity = AddFnParams { delta = 2 });
  let fewer =
    Predicate.trait_ fn_item (Ty.trait_ref ~args:[ Ty.Unit ] (Path.external_ "std" [ "Fn" ]))
  in
  check_bool "delete params" true (classify fewer = DeleteFnParams { delta = 1 });
  let same_arity =
    Predicate.trait_ fn_item
      (Ty.trait_ref ~args:[ Ty.tuple [ Ty.int ] ] (Path.external_ "std" [ "Fn" ]))
  in
  check_bool "incorrect params" true (classify same_arity = IncorrectParams { arity = 1 });
  (* misc *)
  check_bool "outlives is misc" true
    (classify (Predicate.outlives (ctor "A") Region.Static) = Misc);
  (* external self, external trait *)
  check_bool "orphan category" true
    (classify (Predicate.trait_ (ext_ctor "DateTime") (ext_tr "Serialize"))
    = Trait { self_ = External; trait_ = External })

let test_inertia_bevy_ranking () =
  (* Fig. 10: {Timer: SystemParam} must outrank {run_timer: System} *)
  let _, tree = bevy_tree () in
  let ranking = Argus.Inertia.rank tree in
  check_bool "at least 2 MCSes" true (List.length ranking.sets >= 2);
  let first = List.hd ranking.sets in
  check_int "cheapest set is weight 1" 1 first.total;
  match first.predicates with
  | [ (p, _, _, _) ] -> check_str "is Timer: SystemParam" "Timer: SystemParam" (Pretty.predicate p)
  | _ -> Alcotest.fail "cheapest MCS shape"

let test_inertia_sorted_leaves_cover_all () =
  let _, tree = bevy_tree () in
  let sorted = Argus.Inertia.sorted_leaves tree in
  let all = Argus.Proof_tree.failed_leaves tree in
  check_int "same cardinality" (List.length all) (List.length sorted);
  List.iter
    (fun (n : Argus.Proof_tree.node) ->
      check_bool "leaf present" true
        (List.exists (fun (m : Argus.Proof_tree.node) -> m.id = n.id) sorted))
    all

(* ------------------------------------------------------------------ *)
(* Heuristics *)

let test_heuristics_rank_of_root_cause () =
  let entry = Option.get (Corpus.Suite.find "bevy-errant-param") in
  let _, tree = Corpus.Harness.failed_tree entry in
  let rc = Corpus.Harness.root_cause_pred entry in
  check_bool "inertia rank 0" true
    (Argus.Heuristics.rank_of_root_cause Argus.Heuristics.by_inertia tree ~root_cause:rc
    = Some 0);
  check_bool "missing pred gives None" true
    (Argus.Heuristics.rank_of_root_cause Argus.Heuristics.by_inertia tree
       ~root_cause:(Predicate.trait_ (ctor "Nope") (tr "Nada"))
    = None)

let test_heuristics_depth_orders_deepest_first () =
  let _, _, tree = failed_tree chain_fail in
  match (Argus.Heuristics.by_depth.rank tree : Argus.Proof_tree.node list) with
  | first :: _ ->
      let d (n : Argus.Proof_tree.node) =
        match n.kind with Argus.Proof_tree.Goal g -> g.depth | _ -> -1
      in
      let max_d =
        List.fold_left
          (fun acc n -> max acc (d n))
          0
          (Argus.Proof_tree.failed_leaves tree)
      in
      check_int "deepest first" max_d (d first)
  | [] -> Alcotest.fail "no leaves"

(* ------------------------------------------------------------------ *)
(* View state machine + renderer *)

let test_view_collapseseq () =
  let _, tree = bevy_tree () in
  (* disable the Other-failures fold to observe raw CollapseSeq *)
  let vs = Argus.View_state.create ~others_threshold:1000 tree in
  let lines0 = Argus.Render.view vs in
  (* collapsed: only the bottom-up roots are visible *)
  check_int "roots only" (List.length (Argus.View_state.roots vs)) (List.length lines0);
  let first = List.hd lines0 in
  check_bool "collapsed marker" true (first.expander = Argus.Render.Closed);
  let vs = Argus.View_state.expand vs first.node in
  let lines1 = Argus.Render.view vs in
  check_bool "expanding adds rows" true (List.length lines1 > List.length lines0);
  let vs = Argus.View_state.collapse vs first.node in
  check_int "collapse restores" (List.length lines0) (List.length (Argus.Render.view vs))

let test_view_expand_all_reaches_root () =
  let _, tree = bevy_tree () in
  let vs = Argus.View_state.expand_all (Argus.View_state.create tree) in
  let lines = Argus.Render.view vs in
  let root = Argus.Proof_tree.root tree in
  check_bool "root visible in bottom-up after full expansion" true
    (List.exists (fun (l : Argus.Render.line) -> l.node = root.id) lines)

let test_view_direction_roots () =
  let _, tree = bevy_tree () in
  let vs = Argus.View_state.create ~direction:Argus.View_state.Top_down tree in
  check_int "top-down has single root" 1 (List.length (Argus.View_state.roots vs));
  let vs = Argus.View_state.set_direction vs Argus.View_state.Bottom_up in
  check_bool "bottom-up has leaf roots" true (List.length (Argus.View_state.roots vs) > 1)

let test_view_bottom_up_first_root_is_inertia_best () =
  let entry = Option.get (Corpus.Suite.find "bevy-errant-param") in
  let _, tree = Corpus.Harness.failed_tree entry in
  let vs = Argus.View_state.create tree in
  match Argus.View_state.roots vs with
  | first :: _ -> (
      match first.kind with
      | Argus.Proof_tree.Goal g ->
          check_str "Timer: SystemParam first" "Timer: SystemParam"
            (Pretty.predicate g.pred)
      | _ -> Alcotest.fail "root should be a goal")
  | [] -> Alcotest.fail "no roots"

let test_view_shorttys_toggle () =
  let _, tree = bevy_tree () in
  let vs = Argus.View_state.create tree in
  let cfg = Argus.View_state.pretty_config vs 0 in
  check_bool "short by default" false cfg.qualified_paths;
  check_int "ellipsis depth" 2 cfg.max_depth;
  let vs = Argus.View_state.toggle_ty_expand vs 0 in
  check_int "expanded on demand" 1000 (Argus.View_state.pretty_config vs 0).max_depth;
  let vs = Argus.View_state.toggle_paths vs in
  check_bool "qualified after toggle" true (Argus.View_state.pretty_config vs 0).qualified_paths

let test_view_hover_minibuffer () =
  let entry = Option.get (Corpus.Suite.find "bevy-errant-param") in
  let _, tree = Corpus.Harness.failed_tree entry in
  let vs = Argus.View_state.create tree in
  check_bool "empty without hover" true (Argus.View_state.minibuffer vs = []);
  let first = List.hd (Argus.View_state.roots vs) in
  let vs = Argus.View_state.hover vs first.id in
  let paths = Argus.View_state.minibuffer vs in
  check_bool "has paths" true (paths <> []);
  check_bool "fully qualified" true
    (List.exists (fun p -> p = "bevy::SystemParam") paths);
  check_bool "unhover clears" true
    (Argus.View_state.minibuffer (Argus.View_state.unhover vs) = [])

let test_view_hides_stateful_predicates () =
  (* trees with normalization carry stateful nodes hidden by default *)
  let _, _, tree =
    failed_tree
      {|
      struct A; struct B; struct C;
      trait T { type Out; }
      trait U {}
      impl T for A { type Out = B; }
      struct W<X>;
      trait V {}
      impl V for W<<A as T>::Out> where B: U {}
      goal W<<A as T>::Out>: V;
    |}
  in
  let vs = Argus.View_state.create ~direction:Argus.View_state.Top_down tree in
  let visible_all = Argus.View_state.expand_all vs in
  let count_lines v = List.length (Argus.Render.view v) in
  let default_count = count_lines visible_all in
  let with_internal =
    count_lines (Argus.View_state.toggle_all_predicates visible_all)
  in
  check_bool "toggle reveals more" true (with_internal > default_count)

let test_render_markers () =
  let _, _, tree = failed_tree simple_fail in
  let s = Argus.Render.tree_to_string ~direction:Argus.View_state.Top_down tree in
  check_bool "has failure marker" true
    (String.length s > 0
    &&
    let contains sub =
      let rec go i =
        i + String.length sub <= String.length s
        && (String.sub s i (String.length sub) = sub || go (i + 1))
      in
      go 0
    in
    contains "✗" && contains "impl")

let test_render_line_indices_sequential () =
  let _, tree = bevy_tree () in
  let vs = Argus.View_state.expand_all (Argus.View_state.create tree) in
  let lines = Argus.Render.view vs in
  List.iteri (fun i (l : Argus.Render.line) -> check_int "index" i l.index) lines

let test_other_failures_fold () =
  let _, tree = bevy_tree () in
  let vs = Argus.View_state.create tree in
  let lines = Argus.Render.view vs in
  let n_roots = List.length (Argus.View_state.roots vs) in
  check_bool "tree has enough roots for the fold" true (n_roots > 4);
  (* threshold 3 shown + the fold row *)
  check_int "folded view" 4 (List.length lines);
  let fold_row = List.nth lines 3 in
  check_int "fold row sentinel" Argus.Render.others_row fold_row.node;
  check_bool "fold row labelled" true
    (String.length fold_row.text >= 14 && String.sub fold_row.text 0 14 = "Other failures");
  (* unfolding shows everything *)
  let vs = Argus.View_state.toggle_others vs in
  check_int "unfolded view" n_roots (List.length (Argus.Render.view vs));
  (* a single folded tail would be pointless: it is shown directly *)
  let vs2 = Argus.View_state.create ~others_threshold:(n_roots - 1) tree in
  check_int "no 1-element fold" n_roots (List.length (Argus.Render.view vs2))

(* ------------------------------------------------------------------ *)
(* DOT rendering *)

let test_dot_valid () =
  let _, tree = bevy_tree () in
  let dot = Argus.Dot.of_tree tree in
  check_bool "digraph header" true (String.sub dot 0 7 = "digraph");
  (* one node line per tree node, one edge per parent link *)
  let count needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length dot then acc
      else go (i + 1) (if String.sub dot i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check_int "every node rendered" (Argus.Proof_tree.size tree) (count " [label=");
  check_int "every edge rendered" (Argus.Proof_tree.size tree - 1) (count " -> n")

let test_dot_failures_only () =
  let _, tree = bevy_tree () in
  let opts = { Argus.Dot.default_options with show_successes = false } in
  let full = Argus.Dot.of_tree tree in
  let filtered = Argus.Dot.of_tree ~opts tree in
  check_bool "filtered is smaller" true (String.length filtered < String.length full);
  (* the proven Fn builtin candidate must be gone *)
  let contains_ hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "successes dropped" false (contains_ filtered "#1a7f37");
  check_bool "full view has successes" true (contains_ full "#1a7f37");
  check_bool "root cause kept" true (contains_ filtered "Timer: SystemParam")

(* ------------------------------------------------------------------ *)
(* HTML embedding *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_html_escape () =
  check_str "escapes" "&lt;A as T&gt;::Out &amp; &quot;x&quot;"
    (Argus.Html.escape {|<A as T>::Out & "x"|});
  check_str "plain unchanged" "Timer: SystemParam" (Argus.Html.escape "Timer: SystemParam")

let test_html_page_structure () =
  let program, tree = bevy_tree () in
  let html = Argus.Html.page ~program ~diagnostic:(Some "error[E0277]: nope") tree in
  check_bool "doctype" true (contains html "<!DOCTYPE html>");
  check_bool "both views" true
    (contains html "Bottom up" && contains html "Top down");
  check_bool "diagnostic included" true (contains html "error[E0277]: nope");
  check_bool "root cause present" true (contains html "Timer: SystemParam");
  check_bool "disclosure widgets" true (contains html "<details");
  (* tags balance *)
  let count needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length html then acc
      else go (i + 1) (if String.sub html i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check_int "details balanced" (count "<details") (count "</details>");
  (* all user text is escaped: a raw `<...>` from a generic type must not
     appear outside a tag; spot-check the root goal's generic *)
  check_bool "generics escaped" true (contains html "IntoSystemConfigs&lt;")

let test_html_view_respects_state () =
  let _, tree = bevy_tree () in
  let collapsed = Argus.View_state.create ~others_threshold:1000 tree in
  let expanded = Argus.View_state.expand_all collapsed in
  let h1 = Argus.Html.view_to_html collapsed in
  let h2 = Argus.Html.view_to_html expanded in
  check_bool "expanded page is larger" true (String.length h2 > String.length h1);
  check_bool "expanded uses open attr" true (contains h2 "<details open>")

(* ------------------------------------------------------------------ *)
(* CtxtLinks *)

let test_ctxlinks_impl_listing () =
  let program, _ = bevy_tree () in
  let sp =
    match Program.resolve_name program "SystemParam" with
    | Ok p -> p
    | Error _ -> Alcotest.fail "SystemParam not found"
  in
  let impls = Argus.Ctxlinks.impls_of_trait program sp in
  check_int "bevy_lite has 5 SystemParam impls" 5 (List.length impls);
  check_bool "mentions ResMut" true
    (List.exists
       (fun s ->
         let rec contains i =
           i + 6 <= String.length s && (String.sub s i 6 = "ResMut" || contains (i + 1))
         in
         contains 0)
       impls)

let test_ctxlinks_jump_targets () =
  let program, tree = bevy_tree () in
  let leaf = List.hd (Argus.Inertia.sorted_leaves tree) in
  let jumps = Argus.Ctxlinks.jump_targets program leaf in
  (* Timer (local) and SystemParam (bevy) both have declaration spans *)
  check_bool "two jump targets" true (List.length jumps >= 2);
  List.iter
    (fun (j : Argus.Ctxlinks.jump) ->
      check_bool "span is real" true (not (Span.is_dummy j.target)))
    jumps

let test_ctxlinks_span_of_nodes () =
  let program, tree = bevy_tree () in
  (* every impl candidate node must map to its impl block's span *)
  Argus.Proof_tree.fold
    (fun () (n : Argus.Proof_tree.node) ->
      match n.kind with
      | Argus.Proof_tree.Cand { source = Solver.Trace.Cand_impl _; _ } ->
          check_bool "impl has span" true (Argus.Ctxlinks.span_of_node program n <> None)
      | _ -> ())
    () tree

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_dnf_equivalent; prop_dnf_minimal; prop_dnf_lazy_same_semantics ]

let () =
  Alcotest.run "argus"
    [
      ( "extract",
        [
          Alcotest.test_case "generalizes" `Quick test_generalizes;
          Alcotest.test_case "consistent bindings" `Quick test_generalizes_consistent_bindings;
          Alcotest.test_case "dedup attempts" `Quick test_dedup_attempts;
        ] );
      ( "proof_tree",
        [
          Alcotest.test_case "structure" `Quick test_tree_roundtrip_structure;
          Alcotest.test_case "failed leaves" `Quick test_tree_failed_leaves;
          Alcotest.test_case "ancestors/distance" `Quick test_tree_ancestors_and_distance;
          Alcotest.test_case "goal count" `Quick test_tree_goal_count;
        ] );
      ( "formula",
        [
          Alcotest.test_case "linear chain" `Quick test_formula_of_linear_chain;
          Alcotest.test_case "eval" `Quick test_formula_eval;
        ] );
      ( "dnf",
        [
          Alcotest.test_case "distribution" `Quick test_dnf_basic;
          Alcotest.test_case "absorption" `Quick test_dnf_absorption;
          Alcotest.test_case "true/false" `Quick test_dnf_true_false;
        ] );
      ( "inertia",
        [
          Alcotest.test_case "weights verbatim" `Quick test_inertia_weights_verbatim;
          Alcotest.test_case "classification" `Quick test_inertia_classify;
          Alcotest.test_case "bevy ranking (Fig 10)" `Quick test_inertia_bevy_ranking;
          Alcotest.test_case "sorted leaves cover" `Quick test_inertia_sorted_leaves_cover_all;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "rank of root cause" `Quick test_heuristics_rank_of_root_cause;
          Alcotest.test_case "depth deepest-first" `Quick test_heuristics_depth_orders_deepest_first;
        ] );
      ( "views",
        [
          Alcotest.test_case "CollapseSeq" `Quick test_view_collapseseq;
          Alcotest.test_case "expand-all reaches root" `Quick test_view_expand_all_reaches_root;
          Alcotest.test_case "direction roots" `Quick test_view_direction_roots;
          Alcotest.test_case "inertia-first root" `Quick test_view_bottom_up_first_root_is_inertia_best;
          Alcotest.test_case "ShortTys toggles" `Quick test_view_shorttys_toggle;
          Alcotest.test_case "hover minibuffer" `Quick test_view_hover_minibuffer;
          Alcotest.test_case "stateful hidden" `Quick test_view_hides_stateful_predicates;
          Alcotest.test_case "render markers" `Quick test_render_markers;
          Alcotest.test_case "line indices" `Quick test_render_line_indices_sequential;
          Alcotest.test_case "Other failures fold" `Quick test_other_failures_fold;
        ] );
      ( "dot",
        [
          Alcotest.test_case "valid digraph" `Quick test_dot_valid;
          Alcotest.test_case "failures-only filter" `Quick test_dot_failures_only;
        ] );
      ( "html",
        [
          Alcotest.test_case "escape" `Quick test_html_escape;
          Alcotest.test_case "page structure" `Quick test_html_page_structure;
          Alcotest.test_case "respects view state" `Quick test_html_view_respects_state;
        ] );
      ( "ctxlinks",
        [
          Alcotest.test_case "impl listing" `Quick test_ctxlinks_impl_listing;
          Alcotest.test_case "jump targets" `Quick test_ctxlinks_jump_targets;
          Alcotest.test_case "span of nodes" `Quick test_ctxlinks_span_of_nodes;
        ] );
      ("properties", qcheck_tests);
    ]
