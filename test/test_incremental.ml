(** Tests for incremental re-solving ({!Solver.Session} + the red-green
    machinery behind it): exact eviction — an edit evicts precisely the
    cache entries whose dependency sets the differ dirtied, and every
    other entry survives re-keyed and replays as a hit — survival across
    unrelated edits, the [incr.*] telemetry contract, the QCheck
    edit-script equivalence property (the [incremental] oracle: every
    step of a deterministic edit script re-solves byte-identically to a
    from-scratch run), and determinism of concurrent sessions across
    four domains. *)

open Trait_lang

let parse src = Resolve.program_of_string ~file:"test.trait" src

(* Incremental machinery assumes cache + index on; counters need the
   telemetry switch.  Leave state cleared either way. *)
let fresh_state () =
  Telemetry.enable ();
  Solver.Eval_cache.set_enabled true;
  Solver.Eval_cache.clear ();
  Solver.Fast_reject.set_enabled true;
  Solver.Fast_reject.clear ()

let counter = Telemetry.counter_value

let report_fp (report : Solver.Obligations.report) =
  Argus_json.Json.to_string (Argus_json.Encode.report report)

(* ------------------------------------------------------------------ *)
(* Exact eviction: two independent goals, then remove the impl one of
   them depends on.  The differ dirties exactly [impls:T2]; the T2 entry
   is evicted (red), the T1 entry survives (green) and replays as a
   cache hit on the next resolve. *)

let two_goal_src = "struct A; struct B; trait T1 {} trait T2 {} impl T1 for A {} impl T2 for B {} goal A: T1; goal B: T2;"

let test_exact_eviction () =
  fresh_state ();
  let program = parse two_goal_src in
  let session = Solver.Session.create () in
  ignore (Solver.Session.load session program);
  ignore (Solver.Session.resolve session);
  Alcotest.(check int) "no errors on the base program" 0
    (List.length (Solver.Session.errors session));
  let ev0 = counter "incr.evicted" and sv0 = counter "incr.survived" in
  let rb0 = counter "incr.rebased" in
  (* drop the LAST impl: `impl T2 for B` *)
  let edited = Fuzz.Edit.drop_impl program (-1) in
  let delta = Solver.Session.edit session edited in
  Alcotest.(check int) "one declaration changed" 1 delta.Solver.Session.d_changed;
  Alcotest.(check int) "exactly the T2 entry evicted" 1 delta.Solver.Session.d_evicted;
  Alcotest.(check int) "the T1 entry survives" 1 delta.Solver.Session.d_survived;
  Alcotest.(check int) "counter incr.evicted advanced by the delta" 1
    (counter "incr.evicted" - ev0);
  Alcotest.(check int) "counter incr.survived advanced by the delta" 1
    (counter "incr.survived" - sv0);
  Alcotest.(check bool) "fast-reject indexes carried over" true
    (counter "incr.rebased" - rb0 = delta.Solver.Session.d_rebased);
  (* the re-solve replays the survivor (hit) and re-derives the red goal *)
  let h0 = counter "cache.tree.hits" and m0 = counter "cache.tree.misses" in
  ignore (Solver.Session.resolve session);
  Alcotest.(check int) "green goal replays as a tree hit" 1
    (counter "cache.tree.hits" - h0);
  Alcotest.(check int) "red goal re-solves as a tree miss" 1
    (counter "cache.tree.misses" - m0);
  Alcotest.(check int) "goal B: T2 now fails" 1
    (List.length (Solver.Session.errors session))

(* ------------------------------------------------------------------ *)
(* Survival: an edit that touches nothing a cached entry consulted (an
   unused struct) evicts nothing, and the next resolve is all hits. *)

let test_survival_across_unrelated_edit () =
  fresh_state ();
  let program = parse two_goal_src in
  let session = Solver.Session.create () in
  ignore (Solver.Session.load session program);
  let base = report_fp (Solver.Session.resolve session) in
  let edited = Fuzz.Edit.apply program (Fuzz.Edit.Add_struct 7) in
  let delta = Solver.Session.edit session edited in
  Alcotest.(check int) "unrelated edit evicts nothing" 0
    delta.Solver.Session.d_evicted;
  Alcotest.(check int) "both entries survive" 2 delta.Solver.Session.d_survived;
  let h0 = counter "cache.tree.hits" and m0 = counter "cache.tree.misses" in
  let re = report_fp (Solver.Session.resolve session) in
  Alcotest.(check int) "all goals replay as hits" 2 (counter "cache.tree.hits" - h0);
  Alcotest.(check int) "no goal re-solves" 0 (counter "cache.tree.misses" - m0);
  Alcotest.(check string) "report identical across the unrelated edit" base re

(* A goal-only edit keeps the program stamp, so it is a no-op delta —
   goals are inputs, not cached context. *)
let test_goal_edit_is_free () =
  fresh_state ();
  let program = parse two_goal_src in
  let session = Solver.Session.create () in
  ignore (Solver.Session.load session program);
  ignore (Solver.Session.resolve session);
  let edited = Fuzz.Edit.apply program (Fuzz.Edit.Dup_goal 0) in
  let delta = Solver.Session.edit session edited in
  Alcotest.(check bool) "goal edit is a no-op delta" true
    (delta = Solver.Session.no_delta);
  ignore (Solver.Session.resolve session);
  Alcotest.(check int) "still no errors" 0
    (List.length (Solver.Session.errors session))

(* ------------------------------------------------------------------ *)
(* incr.resolves counts session resolves, not plain solver runs. *)

let test_resolve_counter () =
  fresh_state ();
  let program = parse two_goal_src in
  let session = Solver.Session.create () in
  ignore (Solver.Session.load session program);
  let r0 = counter "incr.resolves" in
  ignore (Solver.Session.resolve session);
  ignore (Solver.Session.resolve session);
  Alcotest.(check int) "two session resolves counted" 2
    (counter "incr.resolves" - r0);
  ignore (Solver.Obligations.solve_program program);
  Alcotest.(check int) "a plain solve is not a session resolve" 2
    (counter "incr.resolves" - r0)

(* ------------------------------------------------------------------ *)
(* QCheck: the incremental oracle over random programs — a 4-step edit
   script through a warm session stays byte-identical (reports, trees,
   diagnostics) to from-scratch solves.  Fixed seed so CI replays. *)

let arbitrary_iter = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)

let qcheck_incremental =
  QCheck.Test.make
    ~name:"edit-script re-solves are byte-identical (incremental oracle)" ~count:25
    arbitrary_iter (fun iter ->
      let source = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:4242 ~iter ~size:2) in
      match Fuzz.Oracle.check Fuzz.Oracle.Incremental ~source with
      | Fuzz.Oracle.Pass -> true
      | Fuzz.Oracle.Fail m -> QCheck.Test.fail_reportf "iter %d: %s" iter m)

(* ------------------------------------------------------------------ *)
(* Determinism across domains: four sessions, one per domain, drive the
   same base → edit → resolve sequence against the shared global cache;
   every domain must produce the same report fingerprints. *)

let test_sessions_agree_across_domains () =
  fresh_state ();
  let src = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:2025 ~iter:3 ~size:3) in
  let run () =
    let program = parse src in
    let edited = Fuzz.Edit.drop_impl program 0 in
    let session = Solver.Session.create () in
    ignore (Solver.Session.load session program);
    let a = report_fp (Solver.Session.resolve session) in
    ignore (Solver.Session.edit session edited);
    let b = report_fp (Solver.Session.resolve session) in
    ignore (Solver.Session.edit session program);
    let c = report_fp (Solver.Session.resolve session) in
    (a, b, c)
  in
  let domains = List.init 4 (fun _ -> Domain.spawn run) in
  let results = List.map Domain.join domains in
  let expected = run () in
  Alcotest.(check bool) "base re-solve returns to the base report" true
    (let a, _, c = expected in
     a = c);
  List.iteri
    (fun d r ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d agrees with the sequential session" d)
        true (r = expected))
    results

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "incremental"
    [
      ( "red-green",
        [
          Alcotest.test_case "exact eviction + survivor replay" `Quick
            test_exact_eviction;
          Alcotest.test_case "survival across an unrelated edit" `Quick
            test_survival_across_unrelated_edit;
          Alcotest.test_case "goal edits are free" `Quick test_goal_edit_is_free;
          Alcotest.test_case "incr.resolves counter" `Quick test_resolve_counter;
        ] );
      ( "oracle",
        [ QCheck_alcotest.to_alcotest ~long:false qcheck_incremental ] );
      ( "domains",
        [
          Alcotest.test_case "4 sessions agree across domains" `Quick
            test_sessions_agree_across_domains;
        ] );
    ]
