(** Conformance tests for the [argus serve] daemon: JSON-RPC framing
    round-trips, golden request/response transcripts per verb (including
    the error objects for unknown methods, bad params, missing sessions,
    and parse failures), corpus-wide byte-equivalence between serve
    responses and the one-shot CLI artifacts, concurrency determinism
    (N interleaved clients vs each alone), shutdown draining, and the
    PR 9 regression: reloading an unchanged file is a stamp-equal no-op
    with zero evictions. *)

module Json = Argus_json.Json
module Rpc = Argus_json.Rpc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* Every serve test starts from a cold shared state: cache + index on
   and empty, telemetry off unless the test needs counters. *)
let fresh_state () =
  Telemetry.disable ();
  Solver.Eval_cache.set_enabled true;
  Solver.Eval_cache.clear ();
  Solver.Fast_reject.set_enabled true;
  Solver.Fast_reject.clear ()

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let line ?(id = 1) m params =
  Rpc.request_to_line
    {
      Rpc.rpc_id = Some (Rpc.Int_id id);
      rpc_method = m;
      rpc_params = Some (Json.Obj params);
    }

(* Issue one request and return the decoded result object, failing the
   test on any protocol-level error. *)
let call server m params =
  match Serve.Server.handle_line server (line m params) with
  | None -> Alcotest.failf "%s: no response" m
  | Some resp -> (
      match Rpc.response_of_line resp with
      | Ok { Rpc.resp_result = Ok v; _ } -> v
      | Ok { Rpc.resp_result = Error e; _ } ->
          Alcotest.failf "%s: rpc error %d: %s" m e.Rpc.code e.Rpc.message
      | Error e -> Alcotest.failf "%s: bad response frame: %s" m e)

(* Issue one request and return the error object it must answer with. *)
let call_err server m params =
  match Serve.Server.handle_line server (line m params) with
  | None -> Alcotest.failf "%s: no response" m
  | Some resp -> (
      match Rpc.response_of_line resp with
      | Ok { Rpc.resp_result = Error e; _ } -> e
      | Ok { Rpc.resp_result = Ok _; _ } ->
          Alcotest.failf "%s: expected an error response" m
      | Error e -> Alcotest.failf "%s: bad response frame: %s" m e)

let str name v =
  match Option.bind (Json.member name v) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "response has no string member `%s`" name

let int_member name v =
  match Json.member name v with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "response has no int member `%s`" name

let bool_member name v =
  match Json.member name v with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "response has no bool member `%s`" name

let delta_field field v =
  match Option.bind (Json.member "delta" v) (Json.member field) with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "delta has no int member `%s`" field

(* ------------------------------------------------------------------ *)
(* JSON-RPC framing *)

let test_rpc_roundtrip () =
  let cases =
    [
      {
        Rpc.rpc_id = Some (Rpc.Int_id 7);
        rpc_method = "solve";
        rpc_params = Some (Json.Obj [ ("session", Json.String "a") ]);
      };
      {
        Rpc.rpc_id = Some (Rpc.String_id "req-1");
        rpc_method = "tree";
        rpc_params = Some (Json.List [ Json.Int 1; Json.Int 2 ]);
      };
      { Rpc.rpc_id = Some Rpc.Null_id; rpc_method = "shutdown"; rpc_params = None };
      (* notification: no id member at all *)
      { Rpc.rpc_id = None; rpc_method = "shutdown"; rpc_params = None };
    ]
  in
  List.iter
    (fun req ->
      match Rpc.request_of_line (Rpc.request_to_line req) with
      | Error e -> Alcotest.failf "round-trip failed: %s" e.Rpc.message
      | Ok got ->
          Alcotest.(check bool) "id survives" true (got.Rpc.rpc_id = req.Rpc.rpc_id);
          Alcotest.(check string) "method survives" req.Rpc.rpc_method
            got.Rpc.rpc_method;
          Alcotest.(check bool) "params survive" true
            (got.Rpc.rpc_params = req.Rpc.rpc_params))
    cases;
  (* responses, both arms *)
  let ok = Rpc.ok (Rpc.Int_id 3) (Json.Obj [ ("x", Json.Int 1) ]) in
  (match Rpc.response_of_line (Rpc.response_to_line ok) with
  | Ok got -> Alcotest.(check bool) "ok response round-trips" true (got = ok)
  | Error e -> Alcotest.failf "ok response failed to decode: %s" e);
  let fail =
    Rpc.fail (Rpc.String_id "r") (Rpc.error_obj ~code:Rpc.invalid_params "bad row")
  in
  match Rpc.response_of_line (Rpc.response_to_line fail) with
  | Ok got -> Alcotest.(check bool) "error response round-trips" true (got = fail)
  | Error e -> Alcotest.failf "error response failed to decode: %s" e

let test_rpc_decode_errors () =
  let code_of l =
    match Rpc.request_of_line l with
    | Error e -> e.Rpc.code
    | Ok _ -> Alcotest.failf "line decoded unexpectedly: %s" l
  in
  Alcotest.(check int) "garbage is a parse error" Rpc.parse_error
    (code_of "not json at all");
  Alcotest.(check int) "wrong jsonrpc version" Rpc.invalid_request
    (code_of {|{"jsonrpc":"1.0","id":1,"method":"solve"}|});
  Alcotest.(check int) "missing jsonrpc member" Rpc.invalid_request
    (code_of {|{"id":1,"method":"solve"}|});
  Alcotest.(check int) "non-string method" Rpc.invalid_request
    (code_of {|{"jsonrpc":"2.0","id":1,"method":5}|});
  Alcotest.(check int) "scalar params" Rpc.invalid_request
    (code_of {|{"jsonrpc":"2.0","id":1,"method":"solve","params":"x"}|});
  Alcotest.(check int) "boolean id" Rpc.invalid_request
    (code_of {|{"jsonrpc":"2.0","id":true,"method":"solve"}|})

(* ------------------------------------------------------------------ *)
(* Golden transcript: one session through every verb *)

(* A two-goal program with one deliberate failure, so every verb has
   something to say. *)
let failing_src =
  "struct A; struct B; trait T1 {} trait T2 {} impl T1 for A {} goal A: T1; \
   goal B: T2;"

let test_golden_transcript () =
  fresh_state ();
  let server = Serve.Server.create () in
  (* open: names the session, reports the load delta and goal count *)
  let opened =
    call server "open"
      [ ("session", Json.String "t"); ("source", Json.String failing_src) ]
  in
  Alcotest.(check string) "open echoes the session name" "t" (str "session" opened);
  Alcotest.(check int) "open counts the goals" 2 (int_member "goals" opened);
  Alcotest.(check int) "initial load evicts nothing" 0 (delta_field "evicted" opened);
  (* solve: the argus check report *)
  let solved = call server "solve" [ ("session", Json.String "t") ] in
  Alcotest.(check int) "one issue" 1 (int_member "issues" solved);
  let out = str "output" solved in
  Alcotest.(check bool) "report shows the proved goal" true
    (contains ~affix:"[ok] A: T1" out);
  Alcotest.(check bool) "report shows the failure" true
    (contains ~affix:"[ERROR] B: T2" out);
  (* tree: one page per failing goal *)
  let treed = call server "tree" [ ("session", Json.String "t") ] in
  let tree_out = str "output" treed in
  Alcotest.(check bool) "tree page names the failing goal" true
    (contains ~affix:"B: T2" tree_out);
  Alcotest.(check bool) "tree page ends with a blank line" true
    (String.length tree_out >= 2
    && String.sub tree_out (String.length tree_out - 2) 2 = "\n\n");
  (* expand / hover: view rows against an independently-driven state *)
  let viewed =
    call server "expand" [ ("session", Json.String "t"); ("row", Json.Int 0) ]
  in
  Alcotest.(check int) "view addresses goal 0" 0 (int_member "goal" viewed);
  (match Json.member "lines" viewed with
  | Some (Json.List (first :: _)) ->
      Alcotest.(check int) "first row is row 0" 0 (int_member "row" first);
      Alcotest.(check bool) "first row has an expander" true
        (match Json.member "expander" first with
        | Some (Json.String ("open" | "closed" | "leaf")) -> true
        | _ -> false)
  | _ -> Alcotest.fail "expand returned no lines");
  let hovered =
    call server "hover" [ ("session", Json.String "t"); ("row", Json.Int 0) ]
  in
  Alcotest.(check bool) "hover returns a minibuffer" true
    (match Json.member "minibuffer" hovered with Some (Json.List _) -> true | _ -> false);
  (* explain: summary, failures, and a node drill-down *)
  let summary = call server "explain" [ ("session", Json.String "t") ] in
  Alcotest.(check bool) "summary opens with the journal header" true
    (String.length (str "output" summary) > 8
    && String.sub (str "output" summary) 0 8 = "journal:");
  let failures =
    call server "explain" [ ("session", Json.String "t"); ("failures", Json.Bool true) ]
  in
  Alcotest.(check bool) "failure narrative names the failing goal" true
    (contains ~affix:"B: T2" (str "output" failures));
  let node =
    call server "explain" [ ("session", Json.String "t"); ("node", Json.Int 0) ]
  in
  Alcotest.(check bool) "node drill-down is non-empty" true
    (String.length (str "output" node) > 0);
  (* profile: normalized journals have no timestamps, and say so *)
  let prof = call server "profile" [ ("session", Json.String "t") ] in
  Alcotest.(check bool) "profile flags the zero-timestamp journal" true
    (bool_member "zero_ts" prof);
  (* reload: a changed source reports its delta and invalidates views *)
  let edited = failing_src ^ " impl T2 for B {}" in
  let reloaded =
    call server "reload"
      [ ("session", Json.String "t"); ("source", Json.String edited) ]
  in
  Alcotest.(check bool) "changed reload is not a no-op" false
    (bool_member "noop" reloaded);
  Alcotest.(check bool) "changed reload reports changed decls" true
    (delta_field "changed" reloaded > 0);
  let resolved = call server "solve" [ ("session", Json.String "t") ] in
  Alcotest.(check int) "the fix resolves the failure" 0 (int_member "issues" resolved);
  (* shutdown: acknowledged once, then everything gets -32003 *)
  let down = call server "shutdown" [] in
  Alcotest.(check bool) "shutdown acknowledges" true (bool_member "ok" down);
  Alcotest.(check bool) "server reports shutting down" true
    (Serve.Server.shutting_down server);
  let e = call_err server "solve" [ ("session", Json.String "t") ] in
  Alcotest.(check int) "post-shutdown requests get -32003" Rpc.shutting_down
    e.Rpc.code

let test_golden_errors () =
  fresh_state ();
  let server = Serve.Server.create () in
  (* unknown method: the exact golden error line *)
  (match Serve.Server.handle_line server (line ~id:7 "nope" []) with
  | Some resp ->
      Alcotest.(check string) "unknown-method error line"
        {|{"jsonrpc":"2.0","id":7,"error":{"code":-32601,"message":"method not found: nope"}}|}
        resp
  | None -> Alcotest.fail "unknown method got no response");
  (* parse failure: answered with id null, code -32700 *)
  (match Serve.Server.handle_line server "{{{" with
  | Some resp -> (
      match Rpc.response_of_line resp with
      | Ok { Rpc.resp_id = Rpc.Null_id; resp_result = Error e } ->
          Alcotest.(check int) "parse error code" Rpc.parse_error e.Rpc.code
      | _ -> Alcotest.fail "parse failure not answered with id null + error")
  | None -> Alcotest.fail "parse failure got no response");
  (* invalid request: also id null *)
  (match Serve.Server.handle_line server {|{"jsonrpc":"2.0","id":1,"method":9}|} with
  | Some resp -> (
      match Rpc.response_of_line resp with
      | Ok { Rpc.resp_id = Rpc.Null_id; resp_result = Error e } ->
          Alcotest.(check int) "invalid request code" Rpc.invalid_request e.Rpc.code
      | _ -> Alcotest.fail "invalid request not answered with id null + error")
  | None -> Alcotest.fail "invalid request got no response");
  (* notifications never get a response, even for unknown methods *)
  let notification =
    Rpc.request_to_line { Rpc.rpc_id = None; rpc_method = "nope"; rpc_params = None }
  in
  Alcotest.(check bool) "notification gets no response" true
    (Serve.Server.handle_line server notification = None);
  (* missing session *)
  let e = call_err server "solve" [ ("session", Json.String "ghost") ] in
  Alcotest.(check int) "unknown session code" Rpc.unknown_session e.Rpc.code;
  (* bad params: wrong type and missing member *)
  let e = call_err server "solve" [ ("session", Json.Int 3) ] in
  Alcotest.(check int) "non-string session is invalid params" Rpc.invalid_params
    e.Rpc.code;
  let e = call_err server "open" [ ("session", Json.String "x") ] in
  Alcotest.(check int) "open without source or path" Rpc.invalid_params e.Rpc.code;
  (* load error: source that does not parse *)
  let e =
    call_err server "open"
      [ ("session", Json.String "x"); ("source", Json.String "trait {") ]
  in
  Alcotest.(check int) "unparseable source is a load error" Rpc.load_error e.Rpc.code;
  (* session_exists: the same name twice *)
  let _ =
    call server "open"
      [ ("session", Json.String "dup"); ("source", Json.String failing_src) ]
  in
  let e =
    call_err server "open"
      [ ("session", Json.String "dup"); ("source", Json.String failing_src) ]
  in
  Alcotest.(check int) "duplicate open code" Rpc.session_exists e.Rpc.code;
  (* not_solved: view verbs before any solve *)
  let e = call_err server "tree" [ ("session", Json.String "dup") ] in
  Alcotest.(check int) "tree before solve" Rpc.not_solved e.Rpc.code;
  let e =
    call_err server "expand" [ ("session", Json.String "dup"); ("row", Json.Int 0) ]
  in
  Alcotest.(check int) "expand before solve" Rpc.not_solved e.Rpc.code

(* ------------------------------------------------------------------ *)
(* Corpus-wide equivalence with the one-shot CLI *)

(* Tests run in _build/default/test; the CLI binary is a declared test
   dependency one directory up. *)
let cli = Filename.concat ".." (Filename.concat "bin" "argus_cli.exe")

(* For every bundled corpus program: serve [solve] must byte-match
   `argus check FILE`, serve [tree] must byte-match `argus bottom-up
   FILE`, and serve [explain] (summary and --failures) must byte-match
   `argus explain` over the `check --events-out` journal — the same
   renderers fed by the same journal bytes. *)
let test_corpus_cli_equivalence () =
  fresh_state ();
  List.iter
    (fun (e : Corpus.Harness.entry) ->
      let path = "serve_eq.trait" in
      write_file path e.source;
      let code =
        Sys.command
          (Printf.sprintf
             "%s check --events-out serve_eq.jsonl %s > serve_eq_check.out 2> \
              serve_eq_check.err"
             cli path)
      in
      Alcotest.(check bool)
        (e.id ^ ": check exits 0 or 1")
        true (code = 0 || code = 1);
      let code =
        Sys.command
          (Printf.sprintf "%s bottom-up %s > serve_eq_tree.out 2>&1" cli path)
      in
      Alcotest.(check int) (e.id ^ ": bottom-up exits 0") 0 code;
      let code =
        Sys.command
          (Printf.sprintf "%s explain serve_eq.jsonl > serve_eq_sum.out 2>&1" cli)
      in
      Alcotest.(check int) (e.id ^ ": explain exits 0") 0 code;
      let code =
        Sys.command
          (Printf.sprintf "%s explain --failures serve_eq.jsonl > serve_eq_fail.out 2>&1"
             cli)
      in
      Alcotest.(check int) (e.id ^ ": explain --failures exits 0") 0 code;
      (* the same program through a cold in-process server *)
      Solver.Eval_cache.clear ();
      Solver.Fast_reject.clear ();
      let server = Serve.Server.create () in
      let _ =
        call server "open" [ ("session", Json.String "eq"); ("path", Json.String path) ]
      in
      let solved = call server "solve" [ ("session", Json.String "eq") ] in
      Alcotest.(check string)
        (e.id ^ ": serve solve == argus check")
        (read_file "serve_eq_check.out") (str "output" solved);
      let treed = call server "tree" [ ("session", Json.String "eq") ] in
      Alcotest.(check string)
        (e.id ^ ": serve tree == argus bottom-up")
        (read_file "serve_eq_tree.out") (str "output" treed);
      let summary = call server "explain" [ ("session", Json.String "eq") ] in
      Alcotest.(check string)
        (e.id ^ ": serve explain == argus explain")
        (read_file "serve_eq_sum.out") (str "output" summary);
      let failures =
        call server "explain"
          [ ("session", Json.String "eq"); ("failures", Json.Bool true) ]
      in
      Alcotest.(check string)
        (e.id ^ ": serve explain failures == argus explain --failures")
        (read_file "serve_eq_fail.out")
        (str "output" failures))
    Corpus.Suite.entries

(* ------------------------------------------------------------------ *)
(* Concurrency determinism *)

(* N clients, each with its own session and program.  Run each client's
   script alone against a fresh cold server, then all of them
   interleaved round-robin through handle_batch on a 4-worker pool:
   every response must be byte-identical either way, and the pool.* and
   serve.* counters must account for the work. *)
let test_concurrent_determinism () =
  fresh_state ();
  Telemetry.enable ();
  Fun.protect ~finally:(fun () -> Telemetry.disable ()) @@ fun () ->
  let clients = 4 in
  let source c =
    Printf.sprintf
      "struct A%d; trait T%d {} trait U%d {} impl T%d for A%d {} goal A%d: T%d; \
       goal A%d: U%d;"
      c c c c c c c c c
  in
  let script c =
    let s = Printf.sprintf "c%d" c in
    [
      line ~id:1 "open" [ ("session", Json.String s); ("source", Json.String (source c)) ];
      line ~id:2 "solve" [ ("session", Json.String s) ];
      line ~id:3 "tree" [ ("session", Json.String s) ];
      line ~id:4 "explain" [ ("session", Json.String s); ("failures", Json.Bool true) ];
    ]
  in
  (* solo reference runs: one fresh cold server per client *)
  let solo =
    List.init clients (fun c ->
        Solver.Eval_cache.clear ();
        Solver.Fast_reject.clear ();
        let server = Serve.Server.create () in
        List.map
          (fun l ->
            match Serve.Server.handle_line server l with
            | Some r -> r
            | None -> Alcotest.fail "solo request got no response")
          (script c))
  in
  (* interleaved: round-robin across clients, one shared server *)
  Solver.Eval_cache.clear ();
  Solver.Fast_reject.clear ();
  let server = Serve.Server.create () in
  let scripts = Array.of_list (List.init clients script) in
  let batch =
    List.concat_map
      (fun step ->
        List.init clients (fun c -> (c, List.nth scripts.(c) step)))
      [ 0; 1; 2; 3 ]
  in
  let requests0 = Telemetry.counter_value "serve.requests" in
  let tasks0 = Telemetry.counter_value "pool.tasks" in
  let pool = Pool.create ~jobs:4 in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Serve.Server.handle_batch ~pool ~jobs:4 server batch)
  in
  Alcotest.(check int) "one result per request" (List.length batch)
    (List.length results);
  Alcotest.(check bool) "serve.requests counts the batch" true
    (Telemetry.counter_value "serve.requests" - requests0 >= List.length batch);
  Alcotest.(check bool) "pool.tasks advanced" true
    (Telemetry.counter_value "pool.tasks" > tasks0);
  (* reassemble per-client streams in order and compare byte-for-byte *)
  List.iteri
    (fun c responses ->
      let got =
        List.filter_map
          (fun (client, resp) -> if client = c then resp else None)
          results
      in
      Alcotest.(check (list string))
        (Printf.sprintf "client %d: interleaved == solo" c)
        responses got)
    solo

(* Shutdown mid-flight: a batch that carries a shutdown among live
   requests drains cleanly — every request gets a well-formed response
   (a result or a structured error, including -32003 for requests
   processed after the shutdown wins), and the server stays down. *)
let test_shutdown_drains () =
  fresh_state ();
  let server = Serve.Server.create () in
  let _ =
    call server "open"
      [ ("session", Json.String "d"); ("source", Json.String failing_src) ]
  in
  let batch =
    [
      (0, line ~id:1 "solve" [ ("session", Json.String "d") ]);
      (1, line ~id:2 "shutdown" []);
      (0, line ~id:3 "tree" [ ("session", Json.String "d") ]);
      (2, line ~id:4 "explain" [ ("session", Json.String "d") ]);
    ]
  in
  let pool = Pool.create ~jobs:2 in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Serve.Server.handle_batch ~pool ~jobs:2 server batch)
  in
  Alcotest.(check int) "every request answered" (List.length batch)
    (List.length results);
  List.iter
    (fun (_, resp) ->
      match resp with
      | None -> Alcotest.fail "request dropped during shutdown"
      | Some r -> (
          match Rpc.response_of_line r with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "malformed response during drain: %s" e))
    results;
  Alcotest.(check bool) "server is down after the batch" true
    (Serve.Server.shutting_down server);
  let e = call_err server "solve" [ ("session", Json.String "d") ] in
  Alcotest.(check int) "later requests get -32003" Rpc.shutting_down e.Rpc.code

(* ------------------------------------------------------------------ *)
(* PR 9 remainder: reload of an unchanged file is a stamp-equal no-op *)

let test_reload_unchanged_noop () =
  fresh_state ();
  Telemetry.enable ();
  Fun.protect ~finally:(fun () -> Telemetry.disable ()) @@ fun () ->
  let path = "serve_noop.trait" in
  write_file path failing_src;
  let server = Serve.Server.create () in
  let _ =
    call server "open" [ ("session", Json.String "n"); ("path", Json.String path) ]
  in
  let first = call server "solve" [ ("session", Json.String "n") ] in
  (* "save" the file without changing it, then reload by path *)
  write_file path failing_src;
  let reloaded =
    call server "reload" [ ("session", Json.String "n"); ("path", Json.String path) ]
  in
  Alcotest.(check bool) "unchanged reload is a no-op" true
    (bool_member "noop" reloaded);
  Alcotest.(check int) "no declarations changed" 0 (delta_field "changed" reloaded);
  Alcotest.(check int) "zero evictions" 0 (delta_field "evicted" reloaded);
  Alcotest.(check int) "nothing rebased" 0 (delta_field "rebased" reloaded);
  (* the re-solve replays from the untouched cache: hits, and the same
     bytes as the first solve *)
  let h0 =
    Telemetry.counter_value "cache.tree.hits"
    + Telemetry.counter_value "cache.result.hits"
  in
  let again = call server "solve" [ ("session", Json.String "n") ] in
  Alcotest.(check bool) "re-solve replays from the cache" true
    (Telemetry.counter_value "cache.tree.hits"
     + Telemetry.counter_value "cache.result.hits"
    > h0);
  Alcotest.(check string) "re-solve output is byte-identical" (str "output" first)
    (str "output" again)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "rpc",
        [
          Alcotest.test_case "framing round-trip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_rpc_decode_errors;
        ] );
      ( "transcripts",
        [
          Alcotest.test_case "every verb, golden fields" `Quick test_golden_transcript;
          Alcotest.test_case "error objects" `Quick test_golden_errors;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "serve == one-shot CLI, corpus-wide" `Quick
            test_corpus_cli_equivalence;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "interleaved == solo" `Quick test_concurrent_determinism;
          Alcotest.test_case "shutdown drains cleanly" `Quick test_shutdown_drains;
        ] );
      ( "reload",
        [
          Alcotest.test_case "unchanged file is a stamp-equal no-op" `Quick
            test_reload_unchanged_noop;
        ] );
    ]
