(** Tests for per-goal cost attribution: tree invariants over the full
    corpus, agreement between the journal-attributed total and the
    independently clocked solver.solve telemetry span, flamegraph
    encoder round-trips, and the bench --diff perf-regression gate
    (library level and through the CLI). *)

let record_profile program =
  let report, entries, words =
    Profile.record (fun () -> Solver.Obligations.solve_program program)
  in
  (report, Profile.of_entries ~words entries)

let corpus_programs () =
  List.map
    (fun (e : Corpus.Harness.entry) -> (e.id, Corpus.Harness.load e))
    Corpus.Suite.entries

(* ------------------------------------------------------------------ *)
(* Attribution invariants, over all 17 corpus programs *)

let test_attribution_invariants () =
  List.iter
    (fun (id, program) ->
      let _, prof = record_profile program in
      Alcotest.(check bool)
        (id ^ ": produced frames") true
        (prof.Profile.roots <> []);
      (* the attributed total is exactly the sum of the roots' totals *)
      let roots_total =
        List.fold_left (fun a (n : Profile.node) -> a + n.p_total_ns) 0 prof.Profile.roots
      in
      Alcotest.(check int) (id ^ ": total = sum of roots") roots_total
        prof.Profile.total_ns;
      let frames = ref 0 in
      Profile.iter
        (fun n ->
          incr frames;
          Alcotest.(check bool) (id ^ ": total >= 0") true (n.Profile.p_total_ns >= 0);
          Alcotest.(check bool) (id ^ ": self >= 0") true (n.Profile.p_self_ns >= 0);
          let child_total =
            List.fold_left
              (fun a (c : Profile.node) -> a + c.p_total_ns)
              0 n.Profile.p_children
          in
          (* children partition a sub-interval of the parent *)
          Alcotest.(check bool)
            (id ^ ": children within parent") true
            (child_total <= n.Profile.p_total_ns);
          Alcotest.(check int)
            (id ^ ": self = total - children")
            (n.Profile.p_total_ns - child_total)
            n.Profile.p_self_ns;
          (* every frame is reachable through the ID index *)
          Alcotest.(check bool)
            (id ^ ": frame indexed") true
            (match Hashtbl.find_opt prof.Profile.index n.Profile.p_id with
            | Some m -> m == n
            | None -> false))
        prof;
      Alcotest.(check int)
        (id ^ ": index is exactly the frames") !frames
        (Hashtbl.length prof.Profile.index);
      (* folded rows are a partition of the total: self times sum to it *)
      let folded_sum =
        List.fold_left (fun a (_, v) -> a + v) 0 (Profile.folded prof)
      in
      Alcotest.(check int) (id ^ ": folded sums to total") prof.Profile.total_ns
        folded_sum;
      (* live recording sampled GC allocation *)
      Alcotest.(check bool) (id ^ ": has allocation samples") true
        prof.Profile.has_words;
      Alcotest.(check bool) (id ^ ": not flagged zero-ts") false prof.Profile.zero_ts)
    (corpus_programs ())

(* ------------------------------------------------------------------ *)
(* Agreement with telemetry: the journal-attributed total and the
   solver.solve span clock the same work independently.  Scheduler
   hiccups on a loaded machine can skew a single run, so each program
   gets up to 3 attempts against a generous bound; the paper's diesel
   case study is additionally held to the tight 5% acceptance bound. *)

let span_sum_ns () =
  let sn = Telemetry.snapshot () in
  match
    List.find_opt
      (fun (h : Telemetry.hist_summary) -> h.hs_name = "solver.solve")
      sn.sn_spans
  with
  | Some h -> h.hs_sum_ns
  | None -> 0

let agreement_once program =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable (fun () ->
      let _, prof = record_profile program in
      (prof.Profile.total_ns, span_sum_ns ()))

let agrees ~rel ~abs_ns (profile_ns, span_ns) =
  span_ns > 0
  &&
  let delta = abs (profile_ns - span_ns) in
  delta <= abs_ns || float_of_int delta <= rel *. float_of_int span_ns

let check_agreement ~rel ~abs_ns id program =
  let rec attempt n =
    let pair = agreement_once program in
    if agrees ~rel ~abs_ns pair then ()
    else if n > 1 then attempt (n - 1)
    else
      let profile_ns, span_ns = pair in
      Alcotest.failf "%s: attributed %dns vs solver.solve span %dns" id profile_ns
        span_ns
  in
  attempt 3

let test_agreement_corpus () =
  List.iter
    (fun (id, program) -> check_agreement ~rel:0.15 ~abs_ns:50_000 id program)
    (corpus_programs ())

let test_agreement_diesel () =
  let e =
    List.find
      (fun (e : Corpus.Harness.entry) -> e.id = "diesel-missing-join")
      Corpus.Suite.entries
  in
  check_agreement ~rel:0.05 ~abs_ns:20_000 e.id (Corpus.Harness.load e)

(* ------------------------------------------------------------------ *)
(* Flamegraph encoders *)

let diesel_profile () =
  let e =
    List.find
      (fun (e : Corpus.Harness.entry) -> e.id = "diesel-missing-join")
      Corpus.Suite.entries
  in
  snd (record_profile (Corpus.Harness.load e))

let test_folded_roundtrip () =
  let prof = diesel_profile () in
  let rows = Profile.folded prof in
  let text = Argus_json.Flame.folded rows in
  let parsed = Argus_json.Flame.parse_folded text in
  Alcotest.(check int) "row count survives" (List.length rows) (List.length parsed);
  Alcotest.(check int) "values survive" (Argus_json.Flame.folded_total rows)
    (List.fold_left (fun a (_, v) -> a + v) 0 parsed);
  Alcotest.(check int) "folded total is the profile total" prof.Profile.total_ns
    (Argus_json.Flame.folded_total rows);
  List.iter2
    (fun (stack, v) (stack', v') ->
      Alcotest.(check int) "row value" v v';
      Alcotest.(check int) "stack depth" (List.length stack) (List.length stack'))
    rows parsed

let test_speedscope_roundtrip () =
  let prof = diesel_profile () in
  let events, end_at = Profile.frame_events prof in
  Alcotest.(check bool) "events are well-nested" true
    (Argus_json.Flame.well_nested events);
  let doc = Argus_json.Flame.speedscope ~name:"test" ~end_at events in
  (* a serialization round-trip, as speedscope.app would read it *)
  let doc = Argus_json.Json.of_string (Argus_json.Json.to_string doc) in
  let name, end_at', events' = Argus_json.Flame.parse_speedscope doc in
  Alcotest.(check string) "profile name" "test" name;
  Alcotest.(check int) "end offset" end_at end_at';
  Alcotest.(check int) "event count" (List.length events) (List.length events');
  List.iter2
    (fun (a : Argus_json.Flame.frame_event) (b : Argus_json.Flame.frame_event) ->
      Alcotest.(check string) "frame label" a.fe_frame b.fe_frame;
      Alcotest.(check bool) "open/close" a.fe_open b.fe_open;
      Alcotest.(check int) "offset" a.fe_at b.fe_at)
    events events'

let test_speedscope_rejects_unbalanced () =
  let open Argus_json.Flame in
  let bad = [ { fe_frame = "a"; fe_open = true; fe_at = 0 } ] in
  Alcotest.(check bool) "unclosed frame is not well-nested" false (well_nested bad);
  match speedscope bad with
  | _ -> Alcotest.fail "unbalanced events accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* The heat overlay join: proof-tree trace IDs resolve to frames *)

let test_heat_of_id () =
  let prof = diesel_profile () in
  List.iter
    (fun (root : Profile.node) ->
      match Profile.heat_of_id prof root.Profile.p_id with
      | None -> Alcotest.fail "root frame has no heat"
      | Some (intensity, label) ->
          Alcotest.(check bool) "intensity in [0,1]" true
            (intensity >= 0.0 && intensity <= 1.0);
          Alcotest.(check bool) "label names self time" true
            (String.length label > 4 && String.sub label 0 4 = "self"))
    prof.Profile.roots;
  Alcotest.(check (option (pair (float 0.0) string))) "unknown ID has no heat" None
    (Profile.heat_of_id prof (-1))

(* ------------------------------------------------------------------ *)
(* bench --diff, library level *)

let pipeline_doc entries =
  Argus_json.Json.Obj
    [
      ("schema", Argus_json.Json.String "argus.bench.pipeline/v5");
      ( "entries",
        Argus_json.Json.List
          (List.map
             (fun (name, ns) ->
               Argus_json.Json.Obj
                 [
                   ("name", Argus_json.Json.String name);
                   ("ns_per_run", Argus_json.Json.Float ns);
                 ])
             entries) );
    ]

let base_entries =
  [ ("a", 1000.0); ("b", 2000.0); ("c", 3000.0); ("d", 4000.0); ("e", 5000.0) ]

let test_diff_identical_passes () =
  let doc = pipeline_doc base_entries in
  let rep = Profile.Bench_diff.diff ~old_doc:doc ~new_doc:doc () in
  Alcotest.(check bool) "verdict is Pass" true
    (rep.Profile.Bench_diff.verdict = Profile.Bench_diff.Pass);
  Alcotest.(check int) "exit code 0" 0 (Profile.Bench_diff.exit_code rep);
  Alcotest.(check int) "all metrics compared" (List.length base_entries)
    (List.length rep.Profile.Bench_diff.rows);
  Alcotest.(check (float 1e-9)) "median ratio 1" 1.0
    rep.Profile.Bench_diff.median_ratio

let test_diff_detects_regression () =
  let old_doc = pipeline_doc base_entries in
  let new_doc = pipeline_doc (List.map (fun (n, v) -> (n, 2.0 *. v)) base_entries) in
  let rep = Profile.Bench_diff.diff ~old_doc ~new_doc () in
  Alcotest.(check bool) "verdict is Regression" true
    (rep.Profile.Bench_diff.verdict = Profile.Bench_diff.Regression);
  Alcotest.(check int) "exit code 1" 1 (Profile.Bench_diff.exit_code rep);
  Alcotest.(check int) "every metric regressed" (List.length base_entries)
    (List.length rep.Profile.Bench_diff.regressions);
  (* the CI separates systemic slowdown from one noisy metric *)
  Alcotest.(check bool) "systemic drift flagged" true
    rep.Profile.Bench_diff.systemic_drift;
  (* a raised fail threshold downgrades the same data to Drift *)
  let rep = Profile.Bench_diff.diff ~fail_above:25.0 ~old_doc ~new_doc () in
  Alcotest.(check bool) "drift under a generous threshold" true
    (rep.Profile.Bench_diff.verdict = Profile.Bench_diff.Drift);
  Alcotest.(check int) "drift still exits 0" 0 (Profile.Bench_diff.exit_code rep)

let test_diff_tracks_missing_and_added () =
  let old_doc = pipeline_doc base_entries in
  let new_doc = pipeline_doc (("f", 6000.0) :: List.tl base_entries) in
  let rep = Profile.Bench_diff.diff ~old_doc ~new_doc () in
  Alcotest.(check (list string)) "dropped metric reported"
    [ "entries/a/ns_per_run" ] rep.Profile.Bench_diff.missing;
  Alcotest.(check (list string)) "new metric reported" [ "entries/f/ns_per_run" ]
    rep.Profile.Bench_diff.added

(* A v6 document (with a scale section) diffed against a pre-v6
   baseline (without one): the new metrics are reported as added, never
   as a regression — CI can land the scale suite without regenerating
   the committed baseline first. *)
let test_diff_scale_section_tolerated () =
  let old_doc = pipeline_doc base_entries in
  let new_doc =
    match pipeline_doc base_entries with
    | Argus_json.Json.Obj fields ->
        Argus_json.Json.Obj
          (fields
          @ [
              ( "scale",
                Argus_json.Json.List
                  [
                    Argus_json.Json.Obj
                      [
                        ("impls", Argus_json.Json.Int 100);
                        ("ns_per_goal_on", Argus_json.Json.Float 1000.0);
                        ("ns_per_goal_off", Argus_json.Json.Float 1500.0);
                      ];
                  ] );
            ])
    | j -> j
  in
  let rep = Profile.Bench_diff.diff ~old_doc ~new_doc () in
  Alcotest.(check bool) "verdict is Pass" true
    (rep.Profile.Bench_diff.verdict = Profile.Bench_diff.Pass);
  Alcotest.(check (list string)) "scale metrics surface as added"
    [ "scale/100/ns_per_goal_on"; "scale/100/ns_per_goal_off" ]
    rep.Profile.Bench_diff.added;
  (* and a scale-on-both-sides regression is caught like any other *)
  let rep = Profile.Bench_diff.diff ~old_doc:new_doc ~new_doc () in
  Alcotest.(check int) "same doc: nothing added" 0
    (List.length rep.Profile.Bench_diff.added)

(* Same tolerance story for the v7 incremental section: a document that
   grew incremental rows diffs clean against a pre-v7 baseline (added,
   never regressed), and an incremental-on-both-sides slowdown is still
   a regression. *)
let test_diff_incremental_section_tolerated () =
  let incr_doc ns_incr =
    match pipeline_doc base_entries with
    | Argus_json.Json.Obj fields ->
        Argus_json.Json.Obj
          (fields
          @ [
              ( "incremental",
                Argus_json.Json.List
                  [
                    Argus_json.Json.Obj
                      [
                        ("name", Argus_json.Json.String "mega-1000-cold-edit");
                        ("ns_scratch", Argus_json.Json.Float 7_000_000.0);
                        ("ns_incr", Argus_json.Json.Float ns_incr);
                      ];
                  ] );
            ])
    | j -> j
  in
  let old_doc = pipeline_doc base_entries in
  let new_doc = incr_doc 200_000.0 in
  let rep = Profile.Bench_diff.diff ~old_doc ~new_doc () in
  Alcotest.(check bool) "verdict is Pass" true
    (rep.Profile.Bench_diff.verdict = Profile.Bench_diff.Pass);
  Alcotest.(check (list string)) "incremental metrics surface as added"
    [
      "incremental/mega-1000-cold-edit/ns_scratch";
      "incremental/mega-1000-cold-edit/ns_incr";
    ]
    rep.Profile.Bench_diff.added;
  (* on both sides: a 3x slower incremental re-solve fails the gate *)
  let rep =
    Profile.Bench_diff.diff ~old_doc:(incr_doc 200_000.0) ~new_doc:(incr_doc 600_000.0)
      ()
  in
  Alcotest.(check bool) "incremental regression caught" true
    (rep.Profile.Bench_diff.verdict = Profile.Bench_diff.Regression);
  Alcotest.(check (list string)) "exactly the incr metric regressed"
    [ "incremental/mega-1000-cold-edit/ns_incr" ]
    (List.map
       (fun r -> Profile.Bench_diff.(r.r_section ^ "/" ^ r.r_name ^ "/" ^ r.r_metric))
       rep.Profile.Bench_diff.regressions)

(* Same tolerance story for the v8 serve section: a document that grew
   serve latency rows diffs clean against a pre-v8 baseline (added,
   never regressed), and a serve-on-both-sides slowdown is still a
   regression. *)
let test_diff_serve_section_tolerated () =
  let serve_doc p99 =
    match pipeline_doc base_entries with
    | Argus_json.Json.Obj fields ->
        Argus_json.Json.Obj
          (fields
          @ [
              ( "serve",
                Argus_json.Json.List
                  [
                    Argus_json.Json.Obj
                      [
                        ("name", Argus_json.Json.String "serve-j1");
                        ("p50_ns", Argus_json.Json.Int 40_000);
                        ("p99_ns", Argus_json.Json.Int p99);
                      ];
                  ] );
            ])
    | j -> j
  in
  let old_doc = pipeline_doc base_entries in
  let new_doc = serve_doc 900_000 in
  let rep = Profile.Bench_diff.diff ~old_doc ~new_doc () in
  Alcotest.(check bool) "verdict is Pass" true
    (rep.Profile.Bench_diff.verdict = Profile.Bench_diff.Pass);
  Alcotest.(check (list string)) "serve metrics surface as added"
    [ "serve/serve-j1/p50_ns"; "serve/serve-j1/p99_ns" ]
    rep.Profile.Bench_diff.added;
  (* on both sides: a 3x slower p99 fails the gate *)
  let rep =
    Profile.Bench_diff.diff ~old_doc:(serve_doc 900_000) ~new_doc:(serve_doc 2_700_000)
      ()
  in
  Alcotest.(check bool) "serve regression caught" true
    (rep.Profile.Bench_diff.verdict = Profile.Bench_diff.Regression);
  Alcotest.(check (list string)) "exactly the p99 metric regressed"
    [ "serve/serve-j1/p99_ns" ]
    (List.map
       (fun r -> Profile.Bench_diff.(r.r_section ^ "/" ^ r.r_name ^ "/" ^ r.r_metric))
       rep.Profile.Bench_diff.regressions)

let test_diff_rejects_foreign_schema () =
  let doc = pipeline_doc base_entries in
  let bad = Argus_json.Json.Obj [ ("schema", Argus_json.Json.String "other/v1") ] in
  match Profile.Bench_diff.diff ~old_doc:doc ~new_doc:bad () with
  | _ -> Alcotest.fail "foreign schema accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Telemetry trace-buffer cap (satellite of the profiling work) *)

let test_trace_buffer_cap () =
  let original = Telemetry.max_events () in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_max_events original)
    (fun () ->
      Telemetry.set_max_events 10;
      Alcotest.(check int) "cap clamps to the 256 floor" 256 (Telemetry.max_events ());
      Telemetry.set_max_events 1024;
      Alcotest.(check int) "cap applies" 1024 (Telemetry.max_events ());
      let report = Telemetry.report_to_string (Telemetry.snapshot ()) in
      let contains needle haystack =
        let n = String.length needle and len = String.length haystack in
        let rec go i = i + n <= len && (String.sub haystack i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "report names the buffer cap" true
        (contains "buffer cap 1024" report))

(* ------------------------------------------------------------------ *)
(* CLI contract.  Tests run in _build/default/test; the CLI and bench
   executables are declared as test dependencies. *)

let cli = Filename.concat ".." (Filename.concat "bin" "argus_cli.exe")
let bench = Filename.concat ".." (Filename.concat "bench" "main.exe")

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains needle haystack =
  let n = String.length needle and len = String.length haystack in
  let rec go i = i + n <= len && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_cli_profile_corpus () =
  let code =
    Sys.command
      (Printf.sprintf
         "%s profile --corpus diesel-missing-join --flame prof.folded --speedscope \
          prof.json > prof.out 2> prof.err"
         cli)
  in
  Alcotest.(check int) "profile exits 0" 0 code;
  let out = read_file "prof.out" in
  Alcotest.(check bool) "prints the hot-goal table" true (contains "hot goals" out);
  Alcotest.(check bool) "prints the agreement cross-check" true
    (contains "agreement:" out);
  (* both artifacts parse, and they attribute the same total *)
  let rows = Argus_json.Flame.parse_folded (read_file "prof.folded") in
  Alcotest.(check bool) "folded file has rows" true (rows <> []);
  let _, end_at, events =
    Argus_json.Flame.parse_speedscope (Argus_json.Json.of_string (read_file "prof.json"))
  in
  Alcotest.(check bool) "speedscope events are well-nested" true
    (Argus_json.Flame.well_nested events);
  Alcotest.(check int) "folded total = speedscope end offset"
    (List.fold_left (fun a (_, v) -> a + v) 0 rows)
    end_at

let failing_source =
  "struct A; struct B; trait T {} impl T for B {} goal A: T;"

let test_cli_explain_timings () =
  write_file "prof_fail.trait" failing_source;
  let code =
    Sys.command
      (Printf.sprintf "%s diag --events-out prof_ev.jsonl prof_fail.trait > /dev/null 2>&1"
         cli)
  in
  Alcotest.(check int) "diag exits 0" 0 code;
  let code =
    Sys.command
      (Printf.sprintf "%s explain --timings prof_ev.jsonl > timings.out 2> timings.err" cli)
  in
  Alcotest.(check int) "explain --timings exits 0" 0 code;
  Alcotest.(check bool) "output carries self times" true
    (contains "self" (read_file "timings.out"));
  (* the same journal profiles offline *)
  let code =
    Sys.command
      (Printf.sprintf "%s profile prof_ev.jsonl > offline.out 2>&1" cli)
  in
  Alcotest.(check int) "offline profile exits 0" 0 code;
  Alcotest.(check bool) "offline table printed" true
    (contains "hot goals" (read_file "offline.out"))

(* argus check zeroes journal timestamps for parallel determinism;
   --timestamps opts back into real ones for profiling. *)
let test_cli_check_timestamps () =
  write_file "prof_ts.trait" failing_source;
  let code =
    Sys.command
      (Printf.sprintf
         "%s check --events-out prof_zero.jsonl prof_ts.trait > /dev/null 2>&1" cli)
  in
  Alcotest.(check int) "check exits 1 on the trait error" 1 code;
  let zeroed =
    Profile.of_entries (Argus_json.Journal_codec.of_jsonl (read_file "prof_zero.jsonl"))
  in
  Alcotest.(check bool) "journal from check is zero-ts" true zeroed.Profile.zero_ts;
  let code =
    Sys.command
      (Printf.sprintf
         "%s check --timestamps --events-out prof_real.jsonl prof_ts.trait > /dev/null \
          2>&1"
         cli)
  in
  Alcotest.(check int) "check --timestamps exits 1 on the trait error" 1 code;
  let real =
    Profile.of_entries (Argus_json.Journal_codec.of_jsonl (read_file "prof_real.jsonl"))
  in
  Alcotest.(check bool) "journal with --timestamps has wall time" false
    real.Profile.zero_ts;
  Alcotest.(check bool) "time was attributed" true (real.Profile.total_ns > 0)

let test_cli_bench_diff () =
  let doc entries = Argus_json.Json.to_string (pipeline_doc entries) in
  write_file "diff_old.json" (doc base_entries);
  write_file "diff_new.json"
    (doc (List.map (fun (n, v) -> (n, 2.0 *. v)) base_entries));
  let code =
    Sys.command
      (Printf.sprintf "%s --diff diff_old.json diff_old.json > diff_same.out 2>&1" bench)
  in
  Alcotest.(check int) "identical files exit 0" 0 code;
  Alcotest.(check bool) "identical files pass" true
    (contains "verdict: PASS" (read_file "diff_same.out"));
  let code =
    Sys.command
      (Printf.sprintf "%s --diff diff_old.json diff_new.json > diff_reg.out 2>&1" bench)
  in
  Alcotest.(check int) "2x regression exits 1" 1 code;
  Alcotest.(check bool) "regression named in the report" true
    (contains "REGRESSED" (read_file "diff_reg.out"));
  (* CI's generous threshold downgrades the same 2x to a warning *)
  let code =
    Sys.command
      (Printf.sprintf
         "%s --diff diff_old.json diff_new.json --warn-above 1.5 --fail-above 25 > \
          diff_warn.out 2>&1"
         bench)
  in
  Alcotest.(check int) "drift under --fail-above 25 exits 0" 0 code

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "profile"
    [
      ( "attribution",
        [
          Alcotest.test_case "invariants over the corpus" `Quick
            test_attribution_invariants;
          Alcotest.test_case "agrees with solver.solve span (corpus)" `Slow
            test_agreement_corpus;
          Alcotest.test_case "agrees within 5% on diesel" `Quick
            test_agreement_diesel;
          Alcotest.test_case "heat by stable node ID" `Quick test_heat_of_id;
        ] );
      ( "flamegraphs",
        [
          Alcotest.test_case "folded round-trip" `Quick test_folded_roundtrip;
          Alcotest.test_case "speedscope round-trip" `Quick test_speedscope_roundtrip;
          Alcotest.test_case "speedscope rejects unbalanced" `Quick
            test_speedscope_rejects_unbalanced;
        ] );
      ( "bench diff",
        [
          Alcotest.test_case "identical files pass" `Quick test_diff_identical_passes;
          Alcotest.test_case "2x regression detected" `Quick
            test_diff_detects_regression;
          Alcotest.test_case "missing and added metrics" `Quick
            test_diff_tracks_missing_and_added;
          Alcotest.test_case "scale section tolerated" `Quick
            test_diff_scale_section_tolerated;
          Alcotest.test_case "serve section tolerated" `Quick
            test_diff_serve_section_tolerated;
          Alcotest.test_case "incremental section tolerated" `Quick
            test_diff_incremental_section_tolerated;
          Alcotest.test_case "foreign schema rejected" `Quick
            test_diff_rejects_foreign_schema;
        ] );
      ( "telemetry buffer",
        [ Alcotest.test_case "configurable cap" `Quick test_trace_buffer_cap ] );
      ( "cli",
        [
          Alcotest.test_case "profile --corpus artifacts" `Quick
            test_cli_profile_corpus;
          Alcotest.test_case "explain --timings and offline profile" `Quick
            test_cli_explain_timings;
          Alcotest.test_case "check --timestamps" `Quick test_cli_check_timestamps;
          Alcotest.test_case "bench --diff gate" `Quick test_cli_bench_diff;
        ] );
    ]
