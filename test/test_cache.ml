(** Tests for the performance layer: the hash-consing interner, goal
    canonicalization, the substitution sharing fast path, and the
    two-tier evaluation cache — including the load-bearing property that
    caching is {e observationally invisible}: cache-on and cache-off runs
    produce structurally identical proof trees and identical journal
    streams over the whole corpus. *)

open Trait_lang

let parse src = Resolve.program_of_string ~file:"test.trait" src

let fresh_cache () =
  Solver.Eval_cache.set_enabled true;
  Solver.Eval_cache.clear ()

(* ------------------------------------------------------------------ *)
(* QCheck properties: interner and substitution sharing *)

let ty_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Ty.Unit;
        return Ty.Int;
        return Ty.Str;
        map (fun i -> Ty.infer (abs i mod 5)) int;
        map (fun b -> Ty.param (if b then "T" else "U")) bool;
        return (Ty.ctor (Path.local [ "A" ]) []);
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun t -> Ty.ref_ t) (node (depth - 1)));
          (1, map (fun t -> Ty.ctor (Path.external_ "c" [ "B" ]) [ t ]) (node (depth - 1)));
          (1, map2 (fun a b -> Ty.tuple [ a; b ]) (node (depth - 1)) (node (depth - 1)));
          (1, map2 (fun a b -> Ty.fn_ptr [ a ] b) (node (depth - 1)) (node (depth - 1)));
        ]
  in
  node 4

let arbitrary_ty = QCheck.make ~print:(fun t -> Pretty.ty ~cfg:Pretty.verbose t) ty_gen

let arbitrary_ty_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Pretty.ty ~cfg:Pretty.verbose a ^ " / " ^ Pretty.ty ~cfg:Pretty.verbose b)
    QCheck.Gen.(pair ty_gen ty_gen)

let prop_intern_iff =
  QCheck.Test.make ~name:"interned types: structurally equal iff physically equal"
    ~count:500 arbitrary_ty_pair (fun (a, b) ->
      let ia = Interner.ty a and ib = Interner.ty b in
      Ty.equal a b = (ia == ib))

let prop_intern_idempotent =
  QCheck.Test.make ~name:"interning is idempotent (and preserves structure)" ~count:200
    arbitrary_ty (fun t ->
      let i = Interner.ty t in
      Interner.ty i == i && Ty.equal t i)

let prop_subst_empty_physical =
  QCheck.Test.make ~name:"empty substitution returns its input physically" ~count:200
    arbitrary_ty (fun t -> Subst.ty Subst.empty t == t)

let prop_subst_unbound_physical =
  QCheck.Test.make ~name:"substitution binding nothing in the term is physically id"
    ~count:200 arbitrary_ty (fun t ->
      (* the generator only ever emits params T and U *)
      let s = Subst.add_ty "Zed" Ty.Int Subst.empty in
      Subst.ty s t == t)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_intern_iff;
      prop_intern_idempotent;
      prop_subst_empty_physical;
      prop_subst_unbound_physical;
    ]

(* ------------------------------------------------------------------ *)
(* Canonicalization *)

let trait_pred self_ty =
  Predicate.Trait { self_ty; trait_ref = { Ty.trait = Path.local [ "Tr" ]; args = [] } }

let test_canonical_ground () =
  let p = trait_pred (Ty.tuple [ Ty.Int; Ty.Str ]) in
  let c = Solver.Canonical.canonicalize_resolved p in
  Alcotest.(check int) "no canonical vars in a ground goal" 0 c.Solver.Canonical.c_vars;
  Alcotest.(check bool)
    "ground canonical form is the interned predicate" true
    (c.Solver.Canonical.c_pred == Interner.predicate p)

let test_canonical_renumbers () =
  let p = trait_pred (Ty.tuple [ Ty.infer 7; Ty.infer 3; Ty.infer 7 ]) in
  let c = Solver.Canonical.canonicalize_resolved p in
  Alcotest.(check int) "two distinct vars" 2 c.Solver.Canonical.c_vars;
  let expected = trait_pred (Ty.tuple [ Ty.infer 0; Ty.infer 1; Ty.infer 0 ]) in
  Alcotest.(check bool)
    "vars renumbered in order of first appearance" true
    (Predicate.equal c.Solver.Canonical.c_pred expected)

let test_canonical_alpha_equivalent () =
  let a = trait_pred (Ty.tuple [ Ty.infer 5; Ty.infer 9 ]) in
  let b = trait_pred (Ty.tuple [ Ty.infer 1; Ty.infer 2 ]) in
  let ca = Solver.Canonical.canonicalize_resolved a in
  let cb = Solver.Canonical.canonicalize_resolved b in
  Alcotest.(check bool)
    "alpha-equivalent goals share one canonical (interned) form" true
    (ca.Solver.Canonical.c_pred == cb.Solver.Canonical.c_pred);
  Alcotest.(check int) "same var count" ca.Solver.Canonical.c_vars cb.Solver.Canonical.c_vars

(* ------------------------------------------------------------------ *)
(* Result tier: Solve.evaluate memoizes verdicts across solver states *)

let test_result_tier_memoizes () =
  fresh_cache ();
  let program = parse "struct A; trait T {} impl T for A {} goal A: T;" in
  let pred = (List.hd (Program.goals program)).Program.goal_pred in
  let eval () =
    let st = Solver.Solve.create program in
    Solver.Solve.evaluate st pred
  in
  Telemetry.reset ();
  Telemetry.enable ();
  let r1 = eval () in
  let misses = Telemetry.counter_value "cache.result.misses" in
  let r2 = eval () in
  let hits = Telemetry.counter_value "cache.result.hits" in
  Telemetry.disable ();
  Alcotest.(check bool) "first verdict is Yes" true (Solver.Res.is_yes r1);
  Alcotest.(check bool) "second verdict is Yes" true (Solver.Res.is_yes r2);
  Alcotest.(check bool) "first evaluation missed" true (misses >= 1);
  Alcotest.(check bool) "second evaluation hit" true (hits >= 1);
  Alcotest.(check bool)
    "one result entry live" true
    ((Solver.Eval_cache.stats ()).cs_result >= 1)

let test_no_cache_when_disabled () =
  fresh_cache ();
  Solver.Eval_cache.set_enabled false;
  let program = parse "struct A; trait T {} impl T for A {} goal A: T;" in
  let pred = (List.hd (Program.goals program)).Program.goal_pred in
  let st = Solver.Solve.create program in
  ignore (Solver.Solve.evaluate st pred);
  let s = Solver.Eval_cache.stats () in
  Solver.Eval_cache.set_enabled true;
  Alcotest.(check int) "no tree entries stored while disabled" 0 s.cs_tree;
  Alcotest.(check int) "no result entries stored while disabled" 0 s.cs_result

(* ------------------------------------------------------------------ *)
(* LRU bound *)

let test_lru_bound () =
  fresh_cache ();
  let ctx = Solver.Eval_cache.make_ctx ~stamp:424242 ~builtins:true ~depth_limit:64 [] in
  (* Overfill the sharded result tier (16 shards × 1024 capacity each):
     eviction must keep every shard — and so the total — bounded. *)
  for i = 0 to 20_000 do
    let pred = trait_pred (Ty.ctor (Path.local [ "S" ^ string_of_int i ]) []) in
    let key = Solver.Eval_cache.result_key ctx (Solver.Canonical.canonicalize_resolved pred) in
    Solver.Eval_cache.insert_result key Solver.Res.Yes
  done;
  let s = Solver.Eval_cache.stats () in
  Alcotest.(check bool) "result tier stays bounded" true (s.cs_result <= 16 * 1024);
  Alcotest.(check bool) "eviction keeps recent entries" true (s.cs_result > 0);
  Solver.Eval_cache.clear ()

(* ------------------------------------------------------------------ *)
(* Corpus-wide equivalence: cache on/off produce identical proof trees *)

let check_same_report id (off : Solver.Obligations.report) (on : Solver.Obligations.report) =
  Alcotest.(check int)
    (id ^ ": same number of goal reports")
    (List.length off.reports) (List.length on.reports);
  Alcotest.(check int) (id ^ ": same fixpoint rounds") off.rounds on.rounds;
  List.iter2
    (fun (a : Solver.Obligations.goal_report) (b : Solver.Obligations.goal_report) ->
      Alcotest.(check bool) (id ^ ": same status") true (a.status = b.status);
      Alcotest.(check int)
        (id ^ ": same attempt count")
        (List.length a.attempts) (List.length b.attempts);
      List.iter2
        (fun (ta : Solver.Trace.goal_node) (tb : Solver.Trace.goal_node) ->
          if
            not
              (Journal.equal_goal
                 (Solver.Jlog.rtree_of_trace ta)
                 (Solver.Jlog.rtree_of_trace tb))
          then Alcotest.failf "%s: proof tree differs (gid %d vs %d)" id ta.gid tb.gid)
        a.attempts b.attempts)
    off.reports on.reports

(** For every corpus program: solve with the cache off, cold, and warm
    (the warm run exercises cross-run replay), resetting the journal id
    counter each time so gids are comparable.  All three runs must agree
    on statuses, rounds, and — node for node, id for id — the trees. *)
let test_corpus_equivalence () =
  List.iter
    (fun (e : Corpus.Harness.entry) ->
      let program = Corpus.Harness.load e in
      Solver.Eval_cache.set_enabled false;
      Journal.reset ();
      let off = Solver.Obligations.solve_program program in
      fresh_cache ();
      Journal.reset ();
      let cold = Solver.Obligations.solve_program program in
      Journal.reset ();
      let warm = Solver.Obligations.solve_program program in
      check_same_report (e.id ^ " (cold)") off cold;
      check_same_report (e.id ^ " (warm)") off warm)
    (Corpus.Suite.entries @ Corpus.Suite.extended)

(* ------------------------------------------------------------------ *)
(* Journal streams: cache-on differs only by cache_hit/cache_miss events *)

let is_cache_event (en : Journal.entry) =
  match en.ev with Journal.Cache_hit _ | Journal.Cache_miss _ -> true | _ -> false

(** Snapshot serials are global and monotonic (never reset), so two
    recordings taken after different amounts of prior solver activity
    disagree on the absolute numbers.  Relabel them densely, in order of
    first appearance, before comparing streams. *)
let normalize_snaps entries =
  let tbl = Hashtbl.create 64 and next = ref 0 in
  let dense s =
    match Hashtbl.find_opt tbl s with
    | Some d -> d
    | None ->
        let d = !next in
        incr next;
        Hashtbl.add tbl s d;
        d
  in
  List.map
    (fun (en : Journal.entry) ->
      match en.ev with
      | Journal.Snapshot_open { snap; node } ->
          { en with ev = Journal.Snapshot_open { snap = dense snap; node } }
      | Journal.Snapshot_commit { snap } ->
          { en with ev = Journal.Snapshot_commit { snap = dense snap } }
      | Journal.Snapshot_rollback { snap } ->
          { en with ev = Journal.Snapshot_rollback { snap = dense snap } }
      | _ -> en)
    entries

let test_journal_stream_equivalence () =
  List.iter
    (fun id ->
      let e = Option.get (Corpus.Suite.find id) in
      let program = Corpus.Harness.load e in
      Solver.Eval_cache.set_enabled false;
      Journal.reset ();
      let _, off = Journal.with_memory_sink (fun () -> Solver.Obligations.solve_program program) in
      fresh_cache ();
      Journal.reset ();
      (* warm the cache once (unjournaled), then record against it *)
      ignore (Solver.Obligations.solve_program program);
      Journal.reset ();
      let _, on = Journal.with_memory_sink (fun () -> Solver.Obligations.solve_program program) in
      (match Journal.replay on with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: cache-on stream fails replay: %s" id m);
      let off = normalize_snaps off in
      let on_stripped =
        normalize_snaps (List.filter (fun en -> not (is_cache_event en)) on)
      in
      Alcotest.(check int)
        (id ^ ": same structural event count")
        (List.length off) (List.length on_stripped);
      List.iter2
        (fun (a : Journal.entry) (b : Journal.entry) ->
          if not (Journal.equal_event a.ev b.ev) then
            Alcotest.failf "%s: structural event differs: %s vs %s" id
              (Argus_json.Json.to_string (Argus_json.Journal_codec.entry_to_json a))
              (Argus_json.Json.to_string (Argus_json.Journal_codec.entry_to_json b)))
        off on_stripped;
      Alcotest.(check bool)
        (id ^ ": journaled run observed cache traffic")
        true
        (List.exists is_cache_event on);
      (* ast-overflow's subtrees are all overflow-flagged, so nothing is
         ever inserted and the warm run still misses — by design. *)
      if id <> "ast-overflow" then
        Alcotest.(check bool)
          (id ^ ": warm journaled run observed cache hits")
          true
          (List.exists
             (fun (en : Journal.entry) ->
               match en.ev with Journal.Cache_hit _ -> true | _ -> false)
             on))
    [ "diesel-missing-join"; "bevy-errant-param"; "ast-overflow"; "axum-body-first" ]

(* ------------------------------------------------------------------ *)
(* Telemetry visibility *)

let test_cache_counters_in_telemetry () =
  fresh_cache ();
  let e = Option.get (Corpus.Suite.find "diesel-missing-join") in
  let program = Corpus.Harness.load e in
  ignore (Solver.Obligations.solve_program program);
  Telemetry.reset ();
  Telemetry.enable ();
  ignore (Solver.Obligations.solve_program program);
  Telemetry.disable ();
  Alcotest.(check bool)
    "warm run counts tree hits" true
    (Telemetry.counter_value "cache.tree.hits" > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cache"
    [
      ("properties", qcheck_tests);
      ( "canonical",
        [
          Alcotest.test_case "ground goals" `Quick test_canonical_ground;
          Alcotest.test_case "renumbering" `Quick test_canonical_renumbers;
          Alcotest.test_case "alpha equivalence" `Quick test_canonical_alpha_equivalent;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "result tier memoizes" `Quick test_result_tier_memoizes;
          Alcotest.test_case "disabled stores nothing" `Quick test_no_cache_when_disabled;
          Alcotest.test_case "lru bound" `Quick test_lru_bound;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "corpus proof trees" `Quick test_corpus_equivalence;
          Alcotest.test_case "journal streams" `Quick test_journal_stream_equivalence;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "counters visible" `Quick test_cache_counters_in_telemetry ] );
    ]
