(** Tests for the solver search journal: replay validation over the full
    corpus, event sequences for the §2 failure modes, JSONL round-trips,
    and the CLI observability contract (outputs written even on load
    failure). *)

open Trait_lang

let parse src = Resolve.program_of_string ~file:"test.trait" src

let record_solve program =
  Journal.with_memory_sink (fun () -> Solver.Obligations.solve_program program)

let kinds entries = List.map (fun (e : Journal.entry) -> Journal.event_kind e.ev) entries

(** Is [needles] a subsequence of [haystack] (in order, not contiguous)? *)
let rec subsequence needles haystack =
  match (needles, haystack) with
  | [], _ -> true
  | _, [] -> false
  | n :: ns, h :: hs -> if n = h then subsequence ns hs else subsequence needles hs

let replay_ok entries =
  match Journal.replay entries with
  | Ok t -> t
  | Error m -> Alcotest.failf "replay failed: %s" m

(* ------------------------------------------------------------------ *)
(* Replay validator: the event stream rebuilds to exactly the trees the
   solver returned directly, over the full 17-program corpus. *)

let test_replay_corpus () =
  List.iter
    (fun (e : Corpus.Harness.entry) ->
      let program = Corpus.Harness.load e in
      let report, entries = record_solve program in
      let tree = replay_ok entries in
      let attempts =
        List.concat_map
          (fun (r : Solver.Obligations.goal_report) -> r.attempts)
          report.reports
      in
      Alcotest.(check int)
        (e.id ^ ": one replayed root per solving attempt")
        (List.length attempts)
        (List.length tree.Journal.rt_roots);
      List.iter
        (fun (att : Solver.Trace.goal_node) ->
          match
            List.find_opt
              (fun (r : Journal.rgoal) -> r.Journal.rg_id = att.gid)
              tree.Journal.rt_roots
          with
          | None -> Alcotest.failf "%s: no replayed root for trace gid %d" e.id att.gid
          | Some root ->
              if not (Journal.equal_goal (Solver.Jlog.rtree_of_trace att) root) then
                Alcotest.failf "%s: replayed tree for gid %d differs from direct trace"
                  e.id att.gid)
        attempts)
    Corpus.Suite.entries

(* Every failed leaf of the extracted (bottom-up) view carries a stable
   trace_id resolvable in the journal, and every rejected candidate in a
   replayed failed leaf resolves to its rejecting unification event. *)
let test_failed_leaf_provenance () =
  List.iter
    (fun (e : Corpus.Harness.entry) ->
      let program = Corpus.Harness.load e in
      let report, entries = record_solve program in
      let tree = replay_ok entries in
      List.iter
        (fun (r : Solver.Obligations.goal_report) ->
          if r.status <> Solver.Obligations.Proved then begin
            let ptree = Argus.Extract.of_report r in
            List.iter
              (fun (n : Argus.Proof_tree.node) ->
                match n.kind with
                | Argus.Proof_tree.Goal g ->
                    if g.trace_id < 0 then
                      Alcotest.failf "%s: failed leaf without a trace_id" e.id;
                    if not (Hashtbl.mem tree.Journal.rt_goals g.trace_id) then
                      Alcotest.failf "%s: failed-leaf trace_id %d not in the journal"
                        e.id g.trace_id
                | Argus.Proof_tree.Cand _ -> ())
              (Argus.Proof_tree.failed_leaves ptree)
          end)
        report.reports;
      List.iter
        (fun (root : Journal.rgoal) ->
          List.iter
            (fun (leaf : Journal.rgoal) ->
              List.iter
                (fun (c : Journal.rcand) ->
                  if c.Journal.rc_failure <> None then
                    match Journal.rejecting_unify c with
                    | Some _ -> ()
                    | None ->
                        Alcotest.failf
                          "%s: rejected candidate #%d has no rejecting unify event"
                          e.id c.Journal.rc_id)
                leaf.Journal.rg_cands)
            (Journal.failed_leaves root))
        tree.Journal.rt_roots)
    Corpus.Suite.entries

(* ------------------------------------------------------------------ *)
(* §2 failure-mode event sequences *)

let corpus_entries id =
  let e = Option.get (Corpus.Suite.find id) in
  let _, entries = record_solve (Corpus.Harness.load e) in
  entries

(* §2.1 diesel: elided trait chains — where-clause obligations nest under
   the impl candidate, and the failing candidate records its unify. *)
let test_diesel_sequence () =
  let entries = corpus_entries "diesel-missing-join" in
  let ks = kinds entries in
  Alcotest.(check bool)
    "goal_enter → cand_enter → unify → cand_exit → cand_assembled → goal_exit" true
    (subsequence
       [ "goal_enter"; "cand_enter"; "unify"; "cand_exit"; "cand_assembled"; "goal_exit" ]
       ks);
  Alcotest.(check bool) "a where-clause subgoal is journaled" true
    (List.exists
       (fun (e : Journal.entry) ->
         match e.ev with
         | Journal.Goal_enter { prov = Journal.Impl_where _; _ } -> true
         | _ -> false)
       entries);
  Alcotest.(check bool) "a candidate is rejected by a recorded unify failure" true
    (List.exists
       (fun (e : Journal.entry) ->
         match e.ev with
         | Journal.Cand_exit { failure = Some _; _ } -> true
         | _ -> false)
       entries);
  (* round-trip the real stream through the wire format *)
  let back = Argus_json.Journal_codec.of_jsonl (Argus_json.Journal_codec.to_jsonl entries) in
  Alcotest.(check int) "round-trip preserves length" (List.length entries) (List.length back);
  List.iter2
    (fun a b ->
      if not (Journal.equal_entry a b) then
        Alcotest.failf "round-trip changed entry seq %d" a.Journal.seq)
    entries back

(* §2.2 ast: infinite recursion — the E0275 overflow surfaces as cycle /
   overflow events and an Overflow-flagged goal exit. *)
let test_ast_overflow_sequence () =
  let entries = corpus_entries "ast-overflow" in
  Alcotest.(check bool) "cycle or depth-limit overflow event present" true
    (List.exists
       (fun (e : Journal.entry) ->
         match e.ev with
         | Journal.Cycle_detected _ | Journal.Overflow_hit _ -> true
         | _ -> false)
       entries);
  Alcotest.(check bool) "a goal exits flagged Overflow" true
    (List.exists
       (fun (e : Journal.entry) ->
         match e.ev with
         | Journal.Goal_exit { flags; _ } -> List.mem Journal.Overflow flags
         | _ -> false)
       entries)

(* §2.3-style ambiguity: two applicable impls — the selection ambiguity
   is journaled and the goal exits flagged Ambiguous_selection. *)
let test_ambiguity_sequence () =
  let program =
    parse "struct A; trait T {} impl T for A {} impl<X> T for X {} goal A: T;"
  in
  let _, entries = record_solve program in
  Alcotest.(check bool) "ambiguity event with two successful candidates" true
    (List.exists
       (fun (e : Journal.entry) ->
         match e.ev with Journal.Ambiguity { succeeded = 2; _ } -> true | _ -> false)
       entries);
  Alcotest.(check bool) "goal exits flagged ambiguous-selection" true
    (List.exists
       (fun (e : Journal.entry) ->
         match e.ev with
         | Journal.Goal_exit { flags; _ } -> List.mem Journal.Ambiguous_selection flags
         | _ -> false)
       entries)

(* Method probing (§4): probe begin/end bracket the alternatives and the
   failed alternative is flagged speculative post-hoc. *)
let test_probe_sequence () =
  let program =
    parse
      "struct A; trait ToString {} trait CustomToString {} impl CustomToString for A {} \
       goal A: ToString; goal A: CustomToString;"
  in
  let alternatives =
    List.map (fun (g : Program.goal) -> g.goal_pred) (Program.goals program)
  in
  let (nodes, committed), entries =
    Journal.with_memory_sink (fun () ->
        Solver.Solve.solve_probe (Solver.Solve.create program) alternatives)
  in
  Alcotest.(check int) "two alternatives probed" 2 (List.length nodes);
  Alcotest.(check (option int)) "second alternative committed" (Some 1) committed;
  let ks = kinds entries in
  Alcotest.(check bool) "probe_begin → goal events → goal_flag → probe_end" true
    (subsequence [ "probe_begin"; "goal_enter"; "goal_exit"; "goal_flag"; "probe_end" ] ks);
  Alcotest.(check bool) "failed alternative flagged speculative" true
    (List.exists
       (fun (e : Journal.entry) ->
         match e.ev with
         | Journal.Goal_flag { flag = Journal.Speculative; _ } -> true
         | _ -> false)
       entries);
  let tree = replay_ok entries in
  Alcotest.(check int) "both probe roots replay" 2 (List.length tree.Journal.rt_roots);
  (* the replayed rejected root carries the post-hoc flag, like the trace *)
  List.iter
    (fun (n : Solver.Trace.goal_node) ->
      let r =
        List.find (fun (r : Journal.rgoal) -> r.Journal.rg_id = n.gid) tree.Journal.rt_roots
      in
      if not (Journal.equal_goal (Solver.Jlog.rtree_of_trace n) r) then
        Alcotest.failf "probe root gid %d: replay differs from trace" n.gid)
    nodes

(* Coherence overlap detection is journaled. *)
let test_overlap_event () =
  let program =
    parse "struct A; trait T {} impl T for A {} impl<X> T for X {}"
  in
  let overlaps, entries =
    Journal.with_memory_sink (fun () -> Solver.Coherence.check program)
  in
  Alcotest.(check int) "one overlap found" 1 (List.length overlaps);
  Alcotest.(check bool) "overlap_detected event emitted" true
    (List.exists
       (fun (e : Journal.entry) ->
         match e.ev with Journal.Overlap_detected _ -> true | _ -> false)
       entries)

(* ------------------------------------------------------------------ *)
(* Sink mechanics *)

let test_mute () =
  let (), entries =
    Journal.with_memory_sink (fun () ->
        Journal.mute ();
        Fun.protect ~finally:Journal.unmute (fun () ->
            ignore
              (Solver.Obligations.solve_program
                 (parse "struct A; trait T {} goal A: T;"))))
  in
  Alcotest.(check int) "muted solving emits nothing" 0 (List.length entries)

let test_disabled_is_quiet () =
  Journal.set_sink None;
  Alcotest.(check bool) "no sink → disabled" false (Journal.enabled ());
  (* emission with no sink must be a no-op, not an error *)
  Journal.emit (Journal.Probe_end { committed = None })

let test_jsonl_header_errors () =
  (try
     ignore (Argus_json.Journal_codec.of_jsonl "{\"schema\":\"argus.journal/v999\"}\n");
     Alcotest.fail "wrong schema accepted"
   with Argus_json.Decode.Decode_error _ -> ());
  (try
     ignore (Argus_json.Journal_codec.of_jsonl "");
     Alcotest.fail "empty stream accepted"
   with Argus_json.Decode.Decode_error _ -> ());
  try
    ignore (Argus_json.Journal_codec.of_jsonl "not json at all\n");
    Alcotest.fail "garbage accepted"
  with Argus_json.Decode.Decode_error _ -> ()

(* ------------------------------------------------------------------ *)
(* CLI observability contract.  Tests run in _build/default/test, with
   the CLI declared as a test dependency at ../bin/argus_cli.exe. *)

let cli = Filename.concat ".." (Filename.concat "bin" "argus_cli.exe")

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --profile / --trace-out / --events-out outputs are written even when
   the input fails to load (exit 2): the header and telemetry flush run
   through at_exit. *)
let test_cli_outputs_on_load_failure () =
  write_file "bad.trait" "struct A; trait T { goal A: T;";
  let code =
    Sys.command
      (Printf.sprintf
         "%s check --profile --trace-out bad_trace.json --events-out bad_events.jsonl \
          bad.trait > bad.out 2> bad.err"
         cli)
  in
  Alcotest.(check int) "load failure exits 2" 2 code;
  let entries = Argus_json.Journal_codec.of_jsonl (read_file "bad_events.jsonl") in
  Alcotest.(check int) "events file is valid and empty" 0 (List.length entries);
  (match Argus_json.Json.of_string (read_file "bad_trace.json") with
  | Argus_json.Json.List _ | Argus_json.Json.Obj _ -> ()
  | _ -> Alcotest.fail "trace output is not a JSON document");
  let err = read_file "bad.err" in
  Alcotest.(check bool) "telemetry report printed to stderr" true
    (String.length err > 0)

let test_cli_events_roundtrip () =
  (* the impl must share the goal's self head to survive fast-reject
     and leave a rejecting unify event for [explain] to name *)
  write_file "failing.trait"
    "struct A; struct B<X>; trait T {} impl T for B<A> {} goal B<B<A>>: T;";
  let code =
    Sys.command
      (Printf.sprintf "%s check --events-out run_events.jsonl failing.trait > run.out 2>&1"
         cli)
  in
  Alcotest.(check int) "trait error exits 1" 1 code;
  let entries = Argus_json.Journal_codec.of_jsonl (read_file "run_events.jsonl") in
  Alcotest.(check bool) "events streamed" true (List.length entries > 0);
  let tree = replay_ok entries in
  Alcotest.(check bool) "stream replays to at least one root" true
    (List.length tree.Journal.rt_roots >= 1);
  let code =
    Sys.command
      (Printf.sprintf "%s explain --failures run_events.jsonl > explain.out 2>&1" cli)
  in
  Alcotest.(check int) "explain exits 0" 0 code;
  let out = read_file "explain.out" in
  Alcotest.(check bool) "explain names the rejecting unify event" true
    (String.length out > 0
    &&
    let re = "unify event seq" in
    let rec contains i =
      i + String.length re <= String.length out
      && (String.sub out i (String.length re) = re || contains (i + 1))
    in
    contains 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "journal"
    [
      ( "replay validator",
        [
          Alcotest.test_case "corpus trees rebuild from events" `Quick test_replay_corpus;
          Alcotest.test_case "failed leaves resolve to events" `Quick
            test_failed_leaf_provenance;
        ] );
      ( "failure-mode sequences",
        [
          Alcotest.test_case "diesel elided chains + round-trip" `Quick test_diesel_sequence;
          Alcotest.test_case "ast overflow (E0275)" `Quick test_ast_overflow_sequence;
          Alcotest.test_case "ambiguous selection" `Quick test_ambiguity_sequence;
          Alcotest.test_case "method probing" `Quick test_probe_sequence;
          Alcotest.test_case "coherence overlap" `Quick test_overlap_event;
        ] );
      ( "sink",
        [
          Alcotest.test_case "mute suppresses emission" `Quick test_mute;
          Alcotest.test_case "disabled is quiet" `Quick test_disabled_is_quiet;
          Alcotest.test_case "jsonl header validation" `Quick test_jsonl_header_errors;
        ] );
      ( "cli",
        [
          Alcotest.test_case "outputs written on load failure" `Quick
            test_cli_outputs_on_load_failure;
          Alcotest.test_case "events-out → explain round trip" `Quick
            test_cli_events_roundtrip;
        ] );
    ]
