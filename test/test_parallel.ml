(** Corpus-wide determinism of parallel batch solving: for every
    17-program suite entry, a [--jobs 4] batch must produce proof trees
    (node-for-node, id-for-id), diagnostics, and journal JSONL
    byte-identical to [--jobs 1] — evaluation cache on and off, journal
    attached and not. *)

open Trait_lang

(* Everything observable about one solved entry, as bytes: the full
   encoded report, the trace structure with its stable gids, the
   rendered diagnostic of every failing goal, the journal JSONL, and the
   ID/serial counts the unit consumed. *)
let fingerprint (b : Corpus.Harness.batch_result) : string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Argus_json.Json.to_string (Argus_json.Encode.report b.b_report));
  List.iter
    (fun (r : Solver.Obligations.goal_report) ->
      Solver.Trace.fold_goals
        (fun () (g : Solver.Trace.goal_node) ->
          Printf.bprintf buf "g%d d%d %s;" g.gid g.depth (Pretty.predicate g.pred))
        () r.final;
      if r.status <> Solver.Obligations.Proved then begin
        let tree = Argus.Extract.of_report r in
        let goal = { r.goal with Program.goal_pred = r.final.pred } in
        Buffer.add_string buf
          (Rustc_diag.Diagnostic.to_string
             (Rustc_diag.Diagnostic.of_tree b.b_program goal tree))
      end)
    b.b_report.reports;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Argus_json.Json.to_string (Argus_json.Journal_codec.entry_to_json e));
      Buffer.add_char buf '\n')
    b.b_journal;
  Printf.bprintf buf "ids=%d snaps=%d" b.b_ids b.b_snaps;
  Buffer.contents buf

let batch ~jobs ~journal entries =
  Solver.Eval_cache.clear ();
  if jobs = 1 then Corpus.Harness.solve_batch ~jobs:1 ~journal entries
  else begin
    let pool = Pool.create ~jobs in
    let r = Corpus.Harness.solve_batch ~pool ~journal entries in
    Pool.shutdown pool;
    r
  end

let check_config ~cache ~journal () =
  let entries = Corpus.Suite.entries in
  Alcotest.(check int) "the 17-program suite" 17 (List.length entries);
  Solver.Eval_cache.set_enabled cache;
  let seq = batch ~jobs:1 ~journal entries in
  let par = batch ~jobs:4 ~journal entries in
  Solver.Eval_cache.set_enabled true;
  Solver.Eval_cache.clear ();
  List.iter2
    (fun (a : Corpus.Harness.batch_result) (b : Corpus.Harness.batch_result) ->
      Alcotest.(check string)
        (a.b_entry.id ^ ": jobs-4 output byte-identical to jobs-1")
        (fingerprint a) (fingerprint b);
      if journal then
        Alcotest.(check bool)
          (a.b_entry.id ^ ": journal recorded")
          true (a.b_journal <> []))
    seq par

(* The parallel journal streams must stay individually replayable: each
   unit's stream starts at ID 0 and rebuilds the same search forest the
   sequential run's does. *)
let test_parallel_journals_replay () =
  let entries = Corpus.Suite.entries in
  let pool = Pool.create ~jobs:4 in
  let results = Corpus.Harness.solve_batch ~pool ~journal:true entries in
  Pool.shutdown pool;
  List.iter
    (fun (b : Corpus.Harness.batch_result) ->
      match Journal.replay b.b_journal with
      | Ok tree ->
          Alcotest.(check bool)
            (b.b_entry.id ^ ": replayed forest has roots")
            true
            (tree.Journal.rt_roots <> [])
      | Error m -> Alcotest.fail (b.b_entry.id ^ ": journal does not replay: " ^ m))
    results

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "cache off, journal on" `Quick
            (check_config ~cache:false ~journal:true);
          Alcotest.test_case "cache on, journal on" `Quick
            (check_config ~cache:true ~journal:true);
          Alcotest.test_case "cache off, journal off" `Quick
            (check_config ~cache:false ~journal:false);
          Alcotest.test_case "cache on, journal off" `Quick
            (check_config ~cache:true ~journal:false);
        ] );
      ( "replay",
        [
          Alcotest.test_case "per-unit streams replay" `Quick
            test_parallel_journals_replay;
        ] );
    ]
