(** Tests for the telemetry sink and its Chrome-trace export: counter and
    histogram semantics, the disabled fast path, span nesting discipline,
    the report table, round-tripping a trace through the JSON decoder, and
    the solver counters on a real corpus program. *)

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

(** Every test runs against the process-global sink: start from zero and
    always leave the sink disabled, even on failure. *)
let with_sink f () =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* ------------------------------------------------------------------ *)
(* counters *)

let test_counter_incr () =
  let c = Telemetry.counter "test.counter.incr" in
  check_int "fresh" 0 (Telemetry.value c);
  Telemetry.incr c;
  Telemetry.incr c;
  Telemetry.add c 40;
  check_int "42 after incrs" 42 (Telemetry.value c);
  check_int "by name" 42 (Telemetry.counter_value "test.counter.incr");
  (* the same name resolves to the same counter *)
  Telemetry.incr (Telemetry.counter "test.counter.incr");
  check_int "aliased handle" 43 (Telemetry.value c)

let test_counter_reset () =
  let c = Telemetry.counter "test.counter.reset" in
  Telemetry.add c 7;
  check_int "before reset" 7 (Telemetry.value c);
  Telemetry.reset ();
  check_int "after reset" 0 (Telemetry.value c);
  (* handles stay live across reset *)
  Telemetry.incr c;
  check_int "reusable" 1 (Telemetry.value c)

let test_counter_disabled () =
  let c = Telemetry.counter "test.counter.disabled" in
  Telemetry.disable ();
  Telemetry.incr c;
  Telemetry.add c 10;
  Telemetry.record_max c 99;
  check_int "no-ops while disabled" 0 (Telemetry.value c);
  Telemetry.enable ();
  Telemetry.incr c;
  check_int "counts again" 1 (Telemetry.value c)

let test_record_max () =
  let c = Telemetry.counter "test.counter.hwm" in
  Telemetry.record_max c 5;
  Telemetry.record_max c 3;
  check_int "keeps the max" 5 (Telemetry.value c);
  Telemetry.record_max c 11;
  check_int "raises with a new max" 11 (Telemetry.value c)

(* ------------------------------------------------------------------ *)
(* histograms *)

let test_histogram_empty () =
  let h = Telemetry.histogram "test.hist.empty" in
  check_bool "p50 of empty" true (Telemetry.quantile h 0.5 = 0.);
  check_bool "p99 of empty" true (Telemetry.quantile h 0.99 = 0.)

let test_histogram_single () =
  let h = Telemetry.histogram "test.hist.single" in
  Telemetry.observe h 1500;
  (* one sample: every quantile is exactly that sample (min/max clamp) *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0)) "single-sample quantile" 1500. (Telemetry.quantile h q))
    [ 0.5; 0.9; 0.99 ]

let test_histogram_many () =
  let h = Telemetry.histogram "test.hist.many" in
  for i = 1 to 1000 do
    Telemetry.observe h (i * 100)
  done;
  let p50 = Telemetry.quantile h 0.5 in
  let p90 = Telemetry.quantile h 0.9 in
  let p99 = Telemetry.quantile h 0.99 in
  check_bool "quantiles ordered" true (p50 <= p90 && p90 <= p99);
  (* log2 buckets: estimates are within a factor of two of the truth *)
  let within name truth est =
    if not (est >= truth /. 2. && est <= truth *. 2.) then
      Alcotest.failf "%s: %.0f not within 2x of %.0f" name est truth
  in
  within "p50" 50_000. p50;
  within "p90" 90_000. p90;
  within "p99" 99_000. p99;
  (* clamped to the observed range *)
  check_bool "p99 <= max" true (p99 <= 100_000.);
  check_bool "p50 >= min" true (p50 >= 100.)

(* ------------------------------------------------------------------ *)
(* spans and the event buffer *)

let test_span_nesting () =
  let outer = Telemetry.span "test.span.outer" in
  let inner = Telemetry.span "test.span.inner" in
  let t_outer = Telemetry.begin_ outer in
  let t_inner = Telemetry.begin_ inner in
  Telemetry.end_ inner t_inner;
  Telemetry.end_ outer t_outer;
  Telemetry.with_span outer (fun () -> ());
  let evs = Telemetry.events () in
  check_int "six events" 6 (List.length evs);
  check_bool "well formed" true (Telemetry.well_formed_events evs);
  check_int "nothing dropped" 0 (Telemetry.dropped_events ());
  (match evs with
  | a :: b :: c :: d :: _ ->
      check_string "outer begins" "test.span.outer" a.Telemetry.ev_name;
      check_int "outer at depth 0" 0 a.Telemetry.ev_depth;
      check_int "inner at depth 1" 1 b.Telemetry.ev_depth;
      check_bool "inner ends before outer" true
        (c.Telemetry.ev_name = "test.span.inner"
        && c.Telemetry.ev_phase = Telemetry.Span_end
        && d.Telemetry.ev_name = "test.span.outer");
      check_bool "timestamps monotone" true
        (a.Telemetry.ev_ts <= b.Telemetry.ev_ts
        && b.Telemetry.ev_ts <= c.Telemetry.ev_ts
        && c.Telemetry.ev_ts <= d.Telemetry.ev_ts)
  | _ -> Alcotest.fail "expected at least four events");
  (* an interleaved end is rejected by the checker *)
  let bad =
    [
      { Telemetry.ev_name = "a"; ev_phase = Telemetry.Span_begin; ev_ts = 0; ev_depth = 0 };
      { Telemetry.ev_name = "b"; ev_phase = Telemetry.Span_begin; ev_ts = 1; ev_depth = 1 };
      { Telemetry.ev_name = "a"; ev_phase = Telemetry.Span_end; ev_ts = 2; ev_depth = 1 };
      { Telemetry.ev_name = "b"; ev_phase = Telemetry.Span_end; ev_ts = 3; ev_depth = 0 };
    ]
  in
  check_bool "interleaving rejected" false (Telemetry.well_formed_events bad)

let test_span_disabled () =
  Telemetry.disable ();
  let s = Telemetry.span "test.span.disabled" in
  let t0 = Telemetry.begin_ s in
  check_int "disabled begin_ returns the sentinel" (-1) t0;
  Telemetry.end_ s t0;
  Telemetry.enable ();
  check_int "no events recorded" 0 (List.length (Telemetry.events ()))

let test_report_table () =
  let c = Telemetry.counter "test.report.counter" in
  let s = Telemetry.span "test.report.span" in
  Telemetry.add c 3;
  Telemetry.with_span s (fun () -> ());
  let report = Telemetry.report_to_string (Telemetry.snapshot ()) in
  let contains sub =
    let n = String.length report and m = String.length sub in
    let rec go i = i + m <= n && (String.sub report i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "span row present" true (contains "test.report.span");
  check_bool "counter row present" true (contains "test.report.counter")

(* ------------------------------------------------------------------ *)
(* Chrome-trace export round trip *)

let test_chrome_trace_roundtrip () =
  let outer = Telemetry.span "test.trace.outer" in
  let inner = Telemetry.span "test.trace.inner" in
  let c = Telemetry.counter "test.trace.counter" in
  Telemetry.with_span outer (fun () ->
      Telemetry.with_span inner (fun () -> Telemetry.incr c));
  let sn = Telemetry.snapshot () in
  let s = Argus_json.Telemetry_export.chrome_trace_string sn in
  (* the exported string survives a parse through the real decoder *)
  let decoded = Argus_json.Telemetry_export.decode_events (Argus_json.Json.of_string s) in
  check_bool "decoded something" true (List.length decoded > 0);
  (match decoded with
  | m :: _ -> check_string "metadata event first" "M" m.Argus_json.Telemetry_export.de_ph
  | [] -> Alcotest.fail "empty trace");
  let spans = Argus_json.Telemetry_export.decoded_spans decoded in
  check_int "two B + two E" 4 (List.length spans);
  List.iter
    (fun (e : Argus_json.Telemetry_export.decoded_event) ->
      check_bool "span name round-tripped" true
        (e.de_name = "test.trace.outer" || e.de_name = "test.trace.inner");
      check_bool "phase is B or E" true (e.de_ph = "B" || e.de_ph = "E");
      check_bool "ts rebased and finite" true (e.de_ts >= 0. && Float.is_finite e.de_ts))
    spans;
  (match spans with
  | a :: b :: c' :: d :: [] ->
      check_string "outer opens" "test.trace.outer" a.de_name;
      check_string "inner opens" "test.trace.inner" b.de_name;
      check_string "inner closes" "E" c'.de_ph;
      check_string "outer closes" "test.trace.outer" d.de_name;
      check_bool "trace ts monotone" true (a.de_ts <= b.de_ts && b.de_ts <= c'.de_ts && c'.de_ts <= d.de_ts)
  | _ -> Alcotest.fail "expected exactly four span events");
  (* the nonzero counter shows up as a "C" event *)
  check_bool "counter event present" true
    (List.exists
       (fun (e : Argus_json.Telemetry_export.decoded_event) ->
         e.de_ph = "C" && e.de_name = "test.trace.counter")
       decoded)

let test_chrome_trace_rejects_garbage () =
  let bad () =
    ignore
      (Argus_json.Telemetry_export.decode_events (Argus_json.Json.String "not a trace"))
  in
  (match bad () with
  | () -> Alcotest.fail "expected Decode_error on a non-array"
  | exception Argus_json.Decode.Decode_error _ -> ());
  let missing = Argus_json.Json.List [ Argus_json.Json.Obj [ ("ph", Argus_json.Json.String "B") ] ] in
  match Argus_json.Telemetry_export.decode_events missing with
  | _ -> Alcotest.fail "expected Decode_error on a missing name"
  | exception Argus_json.Decode.Decode_error _ -> ()

(* ------------------------------------------------------------------ *)
(* solver integration: counters from a real corpus run *)

let test_solver_counters () =
  let e = Option.get (Corpus.Suite.find "diesel-missing-join") in
  let program = Corpus.Harness.load e in
  ignore (Solver.Obligations.solve_program program);
  let goals = Telemetry.counter_value "solver.goals" in
  let attempts = Telemetry.counter_value "unify.attempts" in
  check_bool "solved some goals" true (goals > 0);
  check_bool "attempted unifications" true (attempts > 0);
  check_bool "fixpoint span ran" true
    (List.exists
       (fun (hs : Telemetry.hist_summary) ->
         hs.hs_name = "solver.fixpoint" && hs.hs_count > 0)
       (Telemetry.snapshot ()).sn_spans)

let test_solver_counters_isolated () =
  let e = Option.get (Corpus.Suite.find "diesel-missing-join") in
  let program = Corpus.Harness.load e in
  Solver.Eval_cache.clear ();
  ignore (Solver.Obligations.solve_program program);
  let goals1 = Telemetry.counter_value "solver.goals" in
  let attempts1 = Telemetry.counter_value "unify.attempts" in
  (* reset isolates runs: a second identical run reproduces the tallies
     instead of accumulating onto them.  The evaluation cache is cleared
     too — a warm cache (intentionally) changes the work counters. *)
  Telemetry.reset ();
  Solver.Eval_cache.clear ();
  check_int "goals cleared" 0 (Telemetry.counter_value "solver.goals");
  check_int "attempts cleared" 0 (Telemetry.counter_value "unify.attempts");
  ignore (Solver.Obligations.solve_program program);
  check_int "goals reproduce" goals1 (Telemetry.counter_value "solver.goals");
  check_int "attempts reproduce" attempts1 (Telemetry.counter_value "unify.attempts")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "counters",
        [
          Alcotest.test_case "incr/add" `Quick (with_sink test_counter_incr);
          Alcotest.test_case "reset" `Quick (with_sink test_counter_reset);
          Alcotest.test_case "disabled" `Quick (with_sink test_counter_disabled);
          Alcotest.test_case "record_max" `Quick (with_sink test_record_max);
        ] );
      ( "histograms",
        [
          Alcotest.test_case "empty" `Quick (with_sink test_histogram_empty);
          Alcotest.test_case "single sample" `Quick (with_sink test_histogram_single);
          Alcotest.test_case "many samples" `Quick (with_sink test_histogram_many);
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick (with_sink test_span_nesting);
          Alcotest.test_case "disabled" `Quick (with_sink test_span_disabled);
          Alcotest.test_case "report table" `Quick (with_sink test_report_table);
        ] );
      ( "chrome trace",
        [
          Alcotest.test_case "round trip" `Quick (with_sink test_chrome_trace_roundtrip);
          Alcotest.test_case "rejects garbage" `Quick
            (with_sink test_chrome_trace_rejects_garbage);
        ] );
      ( "solver integration",
        [
          Alcotest.test_case "corpus counters" `Quick (with_sink test_solver_counters);
          Alcotest.test_case "reset isolation" `Quick
            (with_sink test_solver_counters_isolated);
        ] );
    ]
