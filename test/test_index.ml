(** Tests for the fast-reject candidate index ({!Solver.Fast_reject}):
    the load-bearing soundness property that a head-incompatible
    (goal, impl) pair can never unify — fast reject only ever discards
    impls unification was guaranteed to fail on — plus the structural
    invariant that the bucket index and the linear scan compute the
    exact same candidate list in the exact same declaration order, and
    that concurrent lazy builds from several domains agree. *)

open Trait_lang

let parse src = Resolve.program_of_string ~file:"test.trait" src

let fresh_index () =
  Solver.Fast_reject.set_enabled true;
  Solver.Fast_reject.clear ()

let impl_ids (impls : Decl.impl list) = List.map (fun i -> i.Decl.impl_id) impls

(* ------------------------------------------------------------------ *)
(* Generators *)

(* Goal-side self types: every head [simplify_goal] distinguishes, plus
   inference variables and nesting so heads collide and differ. *)
let ty_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Ty.Unit;
        return Ty.Int;
        return Ty.Str;
        map (fun i -> Ty.infer (abs i mod 5)) int;
        map (fun b -> Ty.param (if b then "T" else "U")) bool;
        return (Ty.ctor (Path.local [ "A" ]) []);
        return (Ty.dynamic (Ty.trait_ref (Path.local [ "Tr" ])));
        return (Ty.fn_item (Path.local [ "f" ]) [] Ty.Unit);
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun t -> Ty.ref_ t) (node (depth - 1)));
          (1, map (fun t -> Ty.ref_mut t) (node (depth - 1)));
          (1, map (fun t -> Ty.ctor (Path.external_ "c" [ "B" ]) [ t ]) (node (depth - 1)));
          (1, map2 (fun a b -> Ty.tuple [ a; b ]) (node (depth - 1)) (node (depth - 1)));
          (1, map2 (fun a b -> Ty.fn_ptr [ a ] b) (node (depth - 1)) (node (depth - 1)));
        ]
  in
  node 3

(* An impl of a one-trait program whose self type is drawn from the
   same space as the goals.  Half the impls are generic over T and U,
   so [Ty.param "T"] heads become blanket impls (wildcards) while the
   other half keep the parameter rigid — both sides of
   [simplify_impl]'s parameter rule get exercised. *)
let impl_gen =
  let open QCheck.Gen in
  map2
    (fun self generic ->
      {
        Decl.impl_id = 0;
        impl_generics = (if generic then Decl.generics [ "T"; "U" ] else Decl.no_generics);
        impl_trait = Ty.trait_ref (Path.local [ "Trait" ]);
        impl_self = self;
        impl_assocs = [];
        impl_span = Span.dummy;
        impl_crate = Path.Local;
      })
    ty_gen bool

let print_pair (goal, impl) =
  Printf.sprintf "goal %s  /  impl%s for %s"
    (Pretty.ty ~cfg:Pretty.verbose goal)
    (if impl.Decl.impl_generics.Decl.ty_params = [] then "" else "<T, U>")
    (Pretty.ty ~cfg:Pretty.verbose impl.Decl.impl_self)

let arbitrary_goal_impl = QCheck.make ~print:print_pair QCheck.Gen.(pair ty_gen impl_gen)

(* ------------------------------------------------------------------ *)
(* Soundness: rejects ⇒ unify fails *)

(* The one property the whole optimization stands on: if the simplified
   heads are incompatible, then unifying the goal against the impl's
   instantiated self type (generics replaced by fresh inference
   variables, exactly as candidate evaluation does) must fail.  The
   converse need not hold — compatibility is allowed to be
   over-approximate — so only rejection is checked. *)
let prop_reject_sound =
  QCheck.Test.make ~name:"fast reject: rejected pairs can never unify" ~count:2000
    arbitrary_goal_impl (fun (goal, impl) ->
      let g = Solver.Fast_reject.simplify_goal goal in
      let i = Solver.Fast_reject.simplify_impl impl in
      if Solver.Fast_reject.compatible g i then true
      else
        let icx = Solver.Infer_ctx.create () in
        ignore (Solver.Infer_ctx.alloc_vars icx 8);
        let subst = Solver.Infer_ctx.instantiate_generics icx impl.Decl.impl_generics in
        let inst_self = Subst.ty subst impl.Decl.impl_self in
        (match Solver.Unify.unify icx goal inst_self with
        | Error _ -> true
        | Ok () ->
            QCheck.Test.fail_reportf "rejected (%s vs %s) but unification succeeded"
              (match g with
              | None -> "_"
              | Some s -> Solver.Fast_reject.simplified_to_string s)
              (match i with
              | None -> "_"
              | Some s -> Solver.Fast_reject.simplified_to_string s)))

(* A wildcard on either side must never reject. *)
let prop_wildcard_compatible =
  QCheck.Test.make ~name:"wildcard heads match everything" ~count:500 arbitrary_goal_impl
    (fun (goal, impl) ->
      let g = Solver.Fast_reject.simplify_goal goal in
      let i = Solver.Fast_reject.simplify_impl impl in
      (g <> None || Solver.Fast_reject.compatible g i)
      && (i <> None || Solver.Fast_reject.compatible g i))

(* ------------------------------------------------------------------ *)
(* Index ≡ scan over generated programs *)

(* Self types worth probing a program's traits with: every declared
   type head, every impl's own self type, every goal's self type, plus
   heads no declaration mentions (misses) and wildcards. *)
let probe_tys (p : Program.t) : Ty.t list =
  let decl_heads =
    List.map
      (fun (td : Decl.tydecl) ->
        Ty.ctor td.Decl.ty_path
          (List.map Ty.param td.Decl.ty_generics.Decl.ty_params))
      (Program.types p)
  in
  let impl_selves = List.map (fun (im : Decl.impl) -> im.Decl.impl_self) (Program.impls p) in
  let goal_selves =
    List.filter_map
      (fun (g : Program.goal) ->
        match g.Program.goal_pred with
        | Predicate.Trait tp -> Some tp.Predicate.self_ty
        | _ -> None)
      (Program.goals p)
  in
  [
    Ty.Unit;
    Ty.Int;
    Ty.infer 0;
    Ty.param "Zz";
    Ty.tuple [ Ty.Int; Ty.Int ];
    Ty.ref_ Ty.Unit;
    Ty.ctor (Path.local [ "NoSuchType" ]) [];
  ]
  @ decl_heads @ impl_selves @ goal_selves

let lookup_equals_scan (p : Program.t) : bool =
  List.for_all
    (fun (tr : Decl.trdecl) ->
      List.for_all
        (fun ty ->
          impl_ids (Solver.Fast_reject.lookup p tr.Decl.tr_path ty)
          = impl_ids (Solver.Fast_reject.scan p tr.Decl.tr_path ty))
        (probe_tys p))
    (Program.traits p)

let prop_lookup_equals_scan =
  QCheck.Test.make ~name:"bucket lookup ≡ linear scan on fuzzed programs" ~count:40
    QCheck.(make ~print:string_of_int Gen.(int_bound 10_000))
    (fun iter ->
      let src = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:77 ~iter ~size:2) in
      let p = parse src in
      fresh_index ();
      lookup_equals_scan p)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_reject_sound; prop_wildcard_compatible; prop_lookup_equals_scan ]

(* ------------------------------------------------------------------ *)
(* Bucket structure on a known program *)

let bucket_src =
  "struct A; struct B<X>; trait T {} trait U {} impl T for A {} impl T for B<A> {} \
   impl T for B<B<A>> {} impl<X> T for X where X: U {} goal A: T;"

let test_bucket_stats () =
  fresh_index ();
  let p = parse bucket_src in
  let buckets, wildcards = Solver.Fast_reject.bucket_stats p (Path.local [ "T" ]) in
  Alcotest.(check int) "distinct head buckets (A, B)" 2 buckets;
  Alcotest.(check int) "wildcard (blanket) impls" 1 wildcards

let test_wildcard_goal_gets_all () =
  fresh_index ();
  let p = parse bucket_src in
  let all = Solver.Fast_reject.lookup p (Path.local [ "T" ]) (Ty.infer 0) in
  Alcotest.(check int) "inference-variable goal reaches every impl" 4 (List.length all);
  Alcotest.(check bool) "in declaration order" true
    (impl_ids all = List.sort compare (impl_ids all))

let test_param_goal_gets_blankets () =
  fresh_index ();
  let p = parse bucket_src in
  let found = Solver.Fast_reject.lookup p (Path.local [ "T" ]) (Ty.param "Q") in
  Alcotest.(check int) "parameter-headed goal reaches only blanket impls" 1
    (List.length found)

let test_miss_goal_gets_blankets () =
  fresh_index ();
  let p = parse bucket_src in
  let found =
    Solver.Fast_reject.lookup p (Path.local [ "T" ]) (Ty.ctor (Path.local [ "Nope" ]) [])
  in
  Alcotest.(check int) "unknown head falls back to the wildcard bucket" 1
    (List.length found)

let test_invalidate_rebuilds () =
  fresh_index ();
  let p = parse bucket_src in
  let before = impl_ids (Solver.Fast_reject.lookup p (Path.local [ "T" ]) (Ty.infer 0)) in
  Solver.Fast_reject.invalidate ~stamp:(Program.stamp p);
  let after = impl_ids (Solver.Fast_reject.lookup p (Path.local [ "T" ]) (Ty.infer 0)) in
  Alcotest.(check (list int)) "rebuild after invalidation is identical" before after

(* ------------------------------------------------------------------ *)
(* Rebuild determinism across domains *)

(* Four domains race to build the same program's per-trait indexes
   (CAS-published, so losers rebuild and retry); every domain must see
   candidate lists identical to the sequential linear scan. *)
let test_rebuild_determinism_across_domains () =
  fresh_index ();
  let src = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:2024 ~iter:11 ~size:3) in
  let p = parse src in
  let traits = Program.traits p in
  let probes = probe_tys p in
  let snapshot lookup =
    List.map
      (fun (tr : Decl.trdecl) ->
        List.map (fun ty -> impl_ids (lookup p tr.Decl.tr_path ty)) probes)
      traits
  in
  let expected = snapshot Solver.Fast_reject.scan in
  Solver.Fast_reject.clear ();
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> snapshot Solver.Fast_reject.lookup))
  in
  let results = List.map Domain.join domains in
  List.iteri
    (fun d r ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d agrees with the linear scan" d)
        true (r = expected))
    results

(* ------------------------------------------------------------------ *)
(* The mega-library generator (scale bench input) *)

let test_mega_library () =
  fresh_index ();
  let spec = Fuzz.Gen.generate_mega ~goals:16 ~seed:42 ~impls:300 in
  let src = Fuzz.Gen.render spec in
  (match Fuzz.Oracle.check Fuzz.Oracle.Wellformed ~source:src with
  | Fuzz.Oracle.Pass -> ()
  | Fuzz.Oracle.Fail m -> Alcotest.failf "mega wellformed: %s" m);
  (match Fuzz.Oracle.check Fuzz.Oracle.Index ~source:src with
  | Fuzz.Oracle.Pass -> ()
  | Fuzz.Oracle.Fail m -> Alcotest.failf "mega index oracle: %s" m);
  let p = parse src in
  Alcotest.(check int) "requested impl population" 300 (List.length (Program.impls p));
  Alcotest.(check bool) "lookup ≡ scan over the mega library" true (lookup_equals_scan p);
  (* blanket (wildcard) population stays constant: two bounded blankets
     on MgT0/MgT1, one unconditional on MgAny *)
  let wilds trait_ = snd (Solver.Fast_reject.bucket_stats p (Path.local [ trait_ ])) in
  Alcotest.(check int) "MgT0 wildcard" 1 (wilds "MgT0");
  Alcotest.(check int) "MgAny wildcard" 1 (wilds "MgAny");
  Alcotest.(check int) "MgT2 wildcard" 0 (wilds "MgT2")

(* ------------------------------------------------------------------ *)
(* Telemetry visibility *)

let test_index_counters_in_telemetry () =
  fresh_index ();
  let p = parse bucket_src in
  Telemetry.reset ();
  Telemetry.enable ();
  ignore (Solver.Obligations.solve_program p);
  Telemetry.disable ();
  Alcotest.(check bool)
    "solving tallies index.hits" true
    (Telemetry.counter_value "index.hits" > 0);
  Alcotest.(check bool)
    "head-mismatched impls tally index.rejects" true
    (Telemetry.counter_value "index.rejects" > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "index"
    [
      ("properties", qcheck_tests);
      ( "buckets",
        [
          Alcotest.test_case "bucket stats" `Quick test_bucket_stats;
          Alcotest.test_case "wildcard goal" `Quick test_wildcard_goal_gets_all;
          Alcotest.test_case "param goal" `Quick test_param_goal_gets_blankets;
          Alcotest.test_case "miss goal" `Quick test_miss_goal_gets_blankets;
          Alcotest.test_case "invalidate" `Quick test_invalidate_rebuilds;
        ] );
      ( "domains",
        [
          Alcotest.test_case "rebuild determinism" `Quick
            test_rebuild_determinism_across_domains;
        ] );
      ("mega", [ Alcotest.test_case "mega library" `Quick test_mega_library ]);
      ( "telemetry",
        [ Alcotest.test_case "counters" `Quick test_index_counters_in_telemetry ] );
    ]
