(** Tests for the trait solver: inference context, unification, candidate
    assembly, projection normalization, overflow, the obligation fixpoint,
    and coherence checking. *)

open Trait_lang

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_str = Alcotest.check Alcotest.string

let resolve src = Resolve.program_of_string ~file:"t.rs" src

let solve_one src =
  let program = resolve src in
  let report = Solver.Obligations.solve_program program in
  (program, report, (List.hd report.reports).final)

let result_of src =
  let _, _, node = solve_one src in
  node.result

let res = Alcotest.testable Solver.Res.pp Solver.Res.equal

(* ------------------------------------------------------------------ *)
(* Res algebra *)

let test_res_algebra () =
  let open Solver.Res in
  Alcotest.check res "and yes" Yes (and_ Yes Yes);
  Alcotest.check res "and no dominates" No (and_ Maybe No);
  Alcotest.check res "and maybe" Maybe (and_ Yes Maybe);
  Alcotest.check res "or yes dominates" Yes (or_ No Yes);
  Alcotest.check res "or maybe" Maybe (or_ No Maybe);
  Alcotest.check res "conj empty" Yes (conj []);
  Alcotest.check res "disj empty" No (disj [])

(* ------------------------------------------------------------------ *)
(* Infer_ctx *)

let test_infer_ctx_fresh_and_bind () =
  let icx = Solver.Infer_ctx.create () in
  let a = Solver.Infer_ctx.fresh icx and b = Solver.Infer_ctx.fresh icx in
  check_bool "distinct" true (a <> b);
  Solver.Infer_ctx.bind icx a Ty.Int;
  check_bool "probe" true (Solver.Infer_ctx.probe icx a = Some Ty.Int);
  check_bool "b unbound" true (Solver.Infer_ctx.probe icx b = None);
  check_bool "resolve" true (Ty.equal (Solver.Infer_ctx.resolve icx (Ty.Infer a)) Ty.Int)

let test_infer_ctx_links () =
  let icx = Solver.Infer_ctx.create () in
  let a = Solver.Infer_ctx.fresh icx and b = Solver.Infer_ctx.fresh icx in
  Solver.Infer_ctx.link icx a b;
  Solver.Infer_ctx.bind icx b Ty.Str;
  check_bool "a resolves through link" true
    (Ty.equal (Solver.Infer_ctx.resolve icx (Ty.Infer a)) Ty.Str)

let test_infer_ctx_snapshot_rollback () =
  let icx = Solver.Infer_ctx.create () in
  let a = Solver.Infer_ctx.fresh icx in
  let snap = Solver.Infer_ctx.snapshot icx in
  Solver.Infer_ctx.bind icx a Ty.Int;
  check_bool "bound inside" true (Solver.Infer_ctx.probe icx a <> None);
  Solver.Infer_ctx.rollback_to icx snap;
  check_bool "unbound after rollback" true (Solver.Infer_ctx.probe icx a = None)

let test_infer_ctx_nested_snapshots () =
  let icx = Solver.Infer_ctx.create () in
  let a = Solver.Infer_ctx.fresh icx and b = Solver.Infer_ctx.fresh icx in
  let s1 = Solver.Infer_ctx.snapshot icx in
  Solver.Infer_ctx.bind icx a Ty.Int;
  let s2 = Solver.Infer_ctx.snapshot icx in
  Solver.Infer_ctx.bind icx b Ty.Str;
  Solver.Infer_ctx.rollback_to icx s2;
  check_bool "inner rolled back" true (Solver.Infer_ctx.probe icx b = None);
  check_bool "outer kept" true (Solver.Infer_ctx.probe icx a = Some Ty.Int);
  Solver.Infer_ctx.rollback_to icx s1;
  check_bool "all rolled back" true (Solver.Infer_ctx.probe icx a = None)

let test_infer_ctx_commit () =
  let icx = Solver.Infer_ctx.create () in
  let a = Solver.Infer_ctx.fresh icx in
  let s = Solver.Infer_ctx.snapshot icx in
  Solver.Infer_ctx.bind icx a Ty.Int;
  Solver.Infer_ctx.commit icx s;
  check_bool "kept after commit" true (Solver.Infer_ctx.probe icx a = Some Ty.Int)

let test_infer_ctx_for_program () =
  let p = resolve "struct A; trait T<X, Y> {} goal A: T<_, _>;" in
  let icx = Solver.Infer_ctx.for_program p in
  check_bool "fresh above holes" true (Solver.Infer_ctx.fresh icx >= 2)

(* ------------------------------------------------------------------ *)
(* Unify *)

let icx_unify a b =
  let icx = Solver.Infer_ctx.create ~first_var:10 () in
  (icx, Solver.Unify.unify icx a b)

let a_ty = Ty.ctor (Path.local [ "A" ]) []
let b_ty = Ty.ctor (Path.local [ "B" ]) []

let test_unify_rigid () =
  check_bool "same ctor" true (snd (icx_unify a_ty a_ty) = Ok ());
  check_bool "diff ctor" true (Result.is_error (snd (icx_unify a_ty b_ty)));
  check_bool "params rigid equal" true
    (snd (icx_unify (Ty.param "T") (Ty.param "T")) = Ok ());
  check_bool "params rigid diff" true
    (Result.is_error (snd (icx_unify (Ty.param "T") (Ty.param "U"))))

let test_unify_infer_binds () =
  let icx, r = icx_unify (Ty.Infer 0) a_ty in
  check_bool "ok" true (r = Ok ());
  check_bool "bound" true (Ty.equal (Solver.Infer_ctx.resolve icx (Ty.Infer 0)) a_ty)

let test_unify_occurs_check () =
  let icx = Solver.Infer_ctx.create ~first_var:10 () in
  let r = Solver.Unify.unify icx (Ty.Infer 0) (Ty.tuple [ Ty.Infer 0; Ty.Int ]) in
  (match r with
  | Error (Solver.Unify.Occurs _) -> ()
  | _ -> Alcotest.fail "expected occurs failure");
  check_bool "still unbound" true (Solver.Infer_ctx.probe icx 0 = None)

let test_unify_structural () =
  check_bool "tuple ok" true
    (snd (icx_unify (Ty.tuple [ a_ty; Ty.Infer 0 ]) (Ty.tuple [ a_ty; b_ty ])) = Ok ());
  check_bool "tuple arity" true
    (Result.is_error (snd (icx_unify (Ty.tuple [ a_ty ]) (Ty.tuple [ a_ty; b_ty ]))));
  check_bool "fnptr" true
    (snd (icx_unify (Ty.fn_ptr [ a_ty ] (Ty.Infer 0)) (Ty.fn_ptr [ a_ty ] b_ty)) = Ok ());
  check_bool "refs unify regions loosely" true
    (snd (icx_unify (Ty.ref_ ~region:(Region.named "a") a_ty) (Ty.ref_ a_ty)) = Ok ());
  check_bool "named regions must match" true
    (Result.is_error
       (snd
          (icx_unify
             (Ty.ref_ ~region:(Region.named "a") a_ty)
             (Ty.ref_ ~region:(Region.named "b") a_ty))))

let test_unify_projection_vs_rigid () =
  let proj = Ty.proj (Ty.projection a_ty (Ty.trait_ref (Path.local [ "T" ])) "Out") in
  match snd (icx_unify proj b_ty) with
  | Error (Solver.Unify.Projection_ambiguous _) -> ()
  | _ -> Alcotest.fail "expected projection_ambiguous"

let test_unify_infer_infer_link () =
  let icx = Solver.Infer_ctx.create ~first_var:10 () in
  check_bool "link" true (Solver.Unify.unify icx (Ty.Infer 0) (Ty.Infer 1) = Ok ());
  check_bool "bind one resolves both" true
    (Solver.Unify.unify icx (Ty.Infer 0) a_ty = Ok ()
    && Ty.equal (Solver.Infer_ctx.resolve icx (Ty.Infer 1)) a_ty)

let test_can_unify_rolls_back () =
  let icx = Solver.Infer_ctx.create ~first_var:10 () in
  check_bool "can unify" true (Solver.Unify.can_unify icx (Ty.Infer 0) a_ty);
  check_bool "no binding left" true (Solver.Infer_ctx.probe icx 0 = None)

(* ------------------------------------------------------------------ *)
(* Solve: basic candidate logic *)

let test_solve_simple_yes_no () =
  Alcotest.check res "impl applies" Solver.Res.Yes
    (result_of "struct A; trait T {} impl T for A {} goal A: T;");
  Alcotest.check res "no impl" Solver.Res.No
    (result_of "struct A; struct B; trait T {} impl T for B {} goal A: T;")

let test_solve_where_clause_required () =
  let src base =
    "struct A; struct W<X>; trait T {} trait U {} impl<X> T for W<X> where X: U {} " ^ base
  in
  Alcotest.check res "missing dep" Solver.Res.No (result_of (src "goal W<A>: T;"));
  Alcotest.check res "dep provided" Solver.Res.Yes
    (result_of (src "impl U for A {} goal W<A>: T;"))

let test_solve_generic_head_match () =
  Alcotest.check res "generic impl" Solver.Res.Yes
    (result_of "struct A; struct B<X>; trait T {} impl<X> T for B<X> {} goal B<A>: T;")

let test_solve_candidate_records_failure () =
  (* same self head (`B<_>`), so the impl survives fast-reject and the
     failure happens — and is recorded — inside unification *)
  let _, _, node =
    solve_one "struct A; struct B<X>; trait T {} impl T for B<A> {} goal B<B<A>>: T;"
  in
  match node.candidates with
  | [ c ] ->
      check_bool "head failure recorded" true (c.failure <> None);
      Alcotest.check res "candidate no" Solver.Res.No c.cand_result
  | _ -> Alcotest.fail "expected one candidate"

let test_solve_multiple_candidates_listed () =
  let _, _, node =
    solve_one
      "struct A; struct C; struct B<X>; trait T {} impl T for B<A> {} impl T for B<C> {} \
       goal B<B<A>>: T;"
  in
  check_int "both impls probed" 2 (List.length node.candidates)

let test_solve_fast_reject_prunes_candidates () =
  (* impls whose self head cannot unify with the goal's are never
     probed: no candidate nodes, same [No] verdict *)
  let _, _, node =
    solve_one "struct A; struct B; struct C; trait T {} impl T for B {} impl T for C {} goal A: T;"
  in
  check_int "head-mismatched impls pruned" 0 (List.length node.candidates);
  Alcotest.check res "still No" Solver.Res.No node.result;
  (* a blanket impl instantiates to an inference variable: wildcard,
     always probed *)
  let _, _, node =
    solve_one
      "struct A; struct B; trait T {} trait U {} impl T for B {} impl<X> T for X where X: U {} \
       goal A: T;"
  in
  check_int "blanket impl survives the reject" 1 (List.length node.candidates)

(* ------------------------------------------------------------------ *)
(* Solve: inference commits and marker types *)

let test_solve_commits_unique_candidate () =
  let program = resolve "struct A; trait T<X> {} impl T<i32> for A {} goal A: T<_>;" in
  let report = Solver.Obligations.solve_program program in
  let r = List.hd report.reports in
  check_bool "proved" true (r.status = Solver.Obligations.Proved);
  let icx = report.solver.icx in
  check_bool "hole bound to i32" true
    (Ty.equal (Solver.Infer_ctx.resolve icx (Ty.Infer 0)) Ty.Int)

let test_solve_marker_inference () =
  let src =
    {|
      struct IsFn; struct A;
      trait Marked<M> {}
      trait Fnish {}
      trait Sys {}
      impl Fnish for A {}
      impl<F> Marked<(IsFn, ())> for F where F: Fnish {}
      impl<S> Marked<()> for S where S: Sys {}
      goal A: Marked<_>;
    |}
  in
  let program = resolve src in
  let report = Solver.Obligations.solve_program program in
  check_bool "proved through branch" true (Solver.Obligations.all_proved report);
  let icx = report.solver.icx in
  check_str "marker deduced" "(IsFn, ())"
    (Pretty.ty (Solver.Infer_ctx.resolve icx (Ty.Infer 0)))

let test_solve_ambiguous_self_is_maybe () =
  Alcotest.check res "unknown self" Solver.Res.Maybe
    (result_of "struct A; trait T {} impl T for A {} goal _: T;")

let test_solve_ambiguous_two_impls () =
  let _, _, node =
    solve_one
      "struct A; struct B; trait T<X> {} impl T<A> for A {} impl T<B> for A {} goal A: T<_>;"
  in
  Alcotest.check res "ambiguous" Solver.Res.Maybe node.result;
  check_bool "flagged" true (List.mem Solver.Trace.Ambiguous_selection node.flags)

let test_solve_param_env_candidate () =
  let program = resolve "struct A; trait T {} goal A: T;" in
  let env =
    [ Predicate.trait_ (Ty.ctor (Path.local [ "A" ]) []) (Ty.trait_ref (Path.local [ "T" ])) ]
  in
  let report = Solver.Obligations.solve_program ~env program in
  check_bool "proved from env" true (Solver.Obligations.all_proved report)

let test_solve_supertrait_elaboration () =
  let program = resolve "struct A; trait Super {} trait Sub: Super {} goal A: Super;" in
  let env =
    [ Predicate.trait_ (Ty.ctor (Path.local [ "A" ]) []) (Ty.trait_ref (Path.local [ "Sub" ])) ]
  in
  let report = Solver.Obligations.solve_program ~env program in
  check_bool "proved via supertrait" true (Solver.Obligations.all_proved report)

(* ------------------------------------------------------------------ *)
(* Solve: builtins *)

let test_solve_builtin_fn () =
  Alcotest.check res "fn item implements Fn" Solver.Res.Yes
    (result_of
       "struct A; trait Fn<Args> { type Output; } fn f(A) -> i32; goal fn[f]: Fn<(A,)>;");
  Alcotest.check res "wrong arity tuple" Solver.Res.No
    (result_of
       "struct A; trait Fn<Args> { type Output; } fn f(A) -> i32; goal fn[f]: Fn<(A, A)>;")

let test_solve_builtin_fn_output () =
  Alcotest.check res "output projection" Solver.Res.Yes
    (result_of
       "struct A; trait Fn<Args> { type Output; } fn f(A) -> i32; goal <fn[f] as \
        Fn<(A,)>>::Output == i32;");
  Alcotest.check res "wrong output" Solver.Res.No
    (result_of
       "struct A; trait Fn<Args> { type Output; } fn f(A) -> i32; goal <fn[f] as \
        Fn<(A,)>>::Output == String;")

let test_solve_builtin_sized () =
  Alcotest.check res "struct sized" Solver.Res.Yes
    (result_of "struct A; trait Sized {} goal A: Sized;");
  Alcotest.check res "dyn unsized" Solver.Res.No
    (result_of "trait Sized {} trait Obj {} goal dyn Obj: Sized;")

(* ------------------------------------------------------------------ *)
(* Solve: projections *)

let proj_src =
  "struct A; struct B; struct C; trait T { type Out; } impl T for A { type Out = B; } "

let test_solve_projection_match_mismatch () =
  Alcotest.check res "matches" Solver.Res.Yes
    (result_of (proj_src ^ "goal <A as T>::Out == B;"));
  Alcotest.check res "mismatch is E0271" Solver.Res.No
    (result_of (proj_src ^ "goal <A as T>::Out == C;"))

let test_solve_projection_infers_term () =
  let program = resolve (proj_src ^ "goal <A as T>::Out == _;") in
  let report = Solver.Obligations.solve_program program in
  check_bool "proved" true (Solver.Obligations.all_proved report);
  check_str "term inferred" "B"
    (Pretty.ty (Solver.Infer_ctx.resolve report.solver.icx (Ty.Infer 0)))

let test_solve_projection_trait_default () =
  Alcotest.check res "default assoc used" Solver.Res.Yes
    (result_of
       "struct A; struct B; trait T { type Out = B; } impl T for A {} goal <A as T>::Out \
        == B;")

let test_solve_projection_in_where_clause () =
  let template ret inp =
    Printf.sprintf
      {|
      extern crate std {
        trait Iterator { type Item; }
        trait Fn<Args> { type Output; }
        struct Map<I, F>;
        impl<I, F, B> Iterator for Map<I, F>
          where I: Iterator, F: Fn<(<I as Iterator>::Item,), Output = B> {
          type Item = B;
        }
      }
      struct Counter;
      impl Iterator for Counter { type Item = i32; }
      fn g(%s) -> %s;
      goal Map<Counter, fn[g]>: Iterator;
    |}
      inp ret
  in
  Alcotest.check res "good map" Solver.Res.Yes (result_of (template "String" "i32"));
  Alcotest.check res "bad map input" Solver.Res.No (result_of (template "String" "String"))

let test_solve_stateful_normalizes_to () =
  let _, _, node =
    solve_one
      {|
      struct A; struct B;
      trait T { type Out; }
      trait U {}
      impl T for A { type Out = B; }
      impl U for B {}
      struct W<X>;
      trait V {}
      impl V for W<<A as T>::Out> {}
      goal W<<A as T>::Out>: V;
    |}
  in
  Alcotest.check res "normalizes and proves" Solver.Res.Yes node.result;
  let stateful = ref 0 in
  let rec count (g : Solver.Trace.goal_node) =
    if Solver.Trace.has_flag Solver.Trace.Stateful g then incr stateful;
    List.iter (fun (c : Solver.Trace.cand_node) -> List.iter count c.subgoals) g.candidates
  in
  count node;
  check_bool "has stateful node" true (!stateful > 0)

(* ------------------------------------------------------------------ *)
(* Solve: cycles and overflow *)

let test_solve_overflow_cycle () =
  let _, _, node = solve_one Corpus.Motivating.ast_overflow in
  Alcotest.check res "cycle is an error" Solver.Res.No node.result;
  let rec has_overflow (g : Solver.Trace.goal_node) =
    Solver.Trace.is_overflow g
    || List.exists
         (fun (c : Solver.Trace.cand_node) -> List.exists has_overflow c.subgoals)
         g.candidates
  in
  check_bool "overflow flagged" true (has_overflow node)

let test_solve_depth_limit () =
  let src =
    "struct A; struct W<X>; trait T {} impl<X> T for W<X> where W<W<X>>: T {} goal W<A>: T;"
  in
  let program = resolve src in
  let cfg = { Solver.Solve.default_config with depth_limit = 12 } in
  let report = Solver.Obligations.solve_program ~cfg program in
  let r = List.hd report.reports in
  check_bool "errors out" true (r.status = Solver.Obligations.Disproved);
  let rec max_depth (g : Solver.Trace.goal_node) =
    List.fold_left
      (fun acc (c : Solver.Trace.cand_node) ->
        List.fold_left (fun a s -> max a (max_depth s)) acc c.subgoals)
      g.depth g.candidates
  in
  check_bool "depth bounded" true (max_depth r.final <= 14)

let test_solve_outlives_and_wf () =
  Alcotest.check res "outlives concrete" Solver.Res.Yes
    (result_of "struct A; goal A: 'static;");
  Alcotest.check res "outlives infer" Solver.Res.Maybe (result_of "goal _: 'static;")

(* ------------------------------------------------------------------ *)
(* Obligation engine *)

let test_obligations_fixpoint_rounds () =
  (* Two goals share inference variable ?0: [?0: U] is ambiguous until
     [B<?0>: T<A>] commits ?0 := A, so the engine needs a second round —
     the §4 "snapshots of a predicate's evolution". *)
  let src =
    {|
      struct A; struct B<X>;
      trait T<X> {}
      trait U {}
      impl T<A> for B<A> {}
      impl U for A {}
      goal B<_>: T<A>;
    |}
  in
  let program = resolve src in
  let u_goal : Program.goal =
    {
      goal_pred = Predicate.trait_ (Ty.Infer 0) (Ty.trait_ref (Path.local [ "U" ]));
      goal_span = Span.dummy;
      goal_origin = "the ambiguous use";
    }
  in
  (* put the ambiguous goal first so round 1 leaves it maybe *)
  let program = Program.add_goal u_goal program in
  let program = Program.with_goals (List.rev (Program.goals program)) program in
  let report = Solver.Obligations.solve_program program in
  check_bool "all proved" true (Solver.Obligations.all_proved report);
  check_bool "took >1 round" true (report.rounds > 1);
  let g1 = List.hd report.reports in
  check_bool "multiple attempts" true (List.length g1.attempts >= 2)

let test_obligations_ambiguous_survivors_fail () =
  let program = resolve "struct A; trait T {} impl T for A {} goal _: T;" in
  let report = Solver.Obligations.solve_program program in
  let r = List.hd report.reports in
  check_bool "ambiguous" true (r.status = Solver.Obligations.Ambiguous);
  check_bool "counts as error" true (not (Solver.Obligations.all_proved report))

(* ------------------------------------------------------------------ *)
(* Speculative probing (§4) *)

let probe_src =
  {|
    struct Vecish;
    trait ToString {}
    trait CustomToString {}
    impl CustomToString for Vecish {}
  |}

let test_probe_commits_first_success () =
  let program = resolve probe_src in
  let st = Solver.Solve.create program in
  let mk name =
    Predicate.trait_ (Ty.ctor (Path.local [ "Vecish" ]) []) (Ty.trait_ref (Path.local [ name ]))
  in
  let nodes, chosen = Solver.Solve.solve_probe st [ mk "ToString"; mk "CustomToString" ] in
  check_bool "second alternative chosen" true (chosen = Some 1);
  check_int "both evaluated" 2 (List.length nodes);
  let first = List.hd nodes in
  Alcotest.check res "first failed" Solver.Res.No first.result;
  check_bool "first flagged speculative" true
    (List.mem Solver.Trace.Speculative first.flags);
  let second = List.nth nodes 1 in
  Alcotest.check res "second succeeded" Solver.Res.Yes second.result;
  check_bool "second not speculative" false
    (List.mem Solver.Trace.Speculative second.flags)

let test_probe_all_fail () =
  let program = resolve "struct A; trait T {} trait U {}" in
  let st = Solver.Solve.create program in
  let mk name =
    Predicate.trait_ (Ty.ctor (Path.local [ "A" ]) []) (Ty.trait_ref (Path.local [ name ]))
  in
  let nodes, chosen = Solver.Solve.solve_probe st [ mk "T"; mk "U" ] in
  check_bool "no choice" true (chosen = None);
  check_bool "all speculative failures" true
    (List.for_all
       (fun (n : Solver.Trace.goal_node) -> List.mem Solver.Trace.Speculative n.flags)
       nodes)

let test_probe_rollback_between_alternatives () =
  (* a failing first alternative must not leave bindings behind *)
  let program = resolve "struct A; struct B; trait T<X> {} impl T<B> for A {}" in
  let st = Solver.Solve.create program in
  let hole = Solver.Infer_ctx.fresh st.icx in
  let a = Ty.ctor (Path.local [ "A" ]) [] in
  (* first asks for T<A> (fails, but unification touched the hole),
     second asks for T<?hole> (succeeds, binds hole := B) *)
  let p1 =
    Predicate.trait_ a (Ty.trait_ref ~args:[ a ] (Path.local [ "T" ]))
  in
  let p2 =
    Predicate.trait_ a (Ty.trait_ref ~args:[ Ty.Infer hole ] (Path.local [ "T" ]))
  in
  let _, chosen = Solver.Solve.solve_probe st [ p1; p2 ] in
  check_bool "second chosen" true (chosen = Some 1);
  check_str "hole bound by committed alternative" "B"
    (Pretty.ty (Solver.Infer_ctx.resolve st.icx (Ty.Infer hole)))

(* ------------------------------------------------------------------ *)
(* Impl well-formedness: associated-type bounds *)

let test_impl_wf_ok_and_failing () =
  let good =
    resolve
      {|
        struct Node;
        trait Meta<A> {}
        trait HasMeta { type M; }
        struct NodeMeta;
        impl Meta<Node> for NodeMeta {}
        impl HasMeta for Node { type M = NodeMeta; }
      |}
  in
  (* add the bound: type M: Meta<Self> *)
  let good_src =
    {|
      struct Node;
      trait Meta<A> {}
      trait HasMeta { type M: Meta<Self>; }
      struct NodeMeta;
      impl Meta<Node> for NodeMeta {}
      impl HasMeta for Node { type M = NodeMeta; }
    |}
  in
  ignore good;
  let program = resolve good_src in
  check_int "well-formed impl passes" 0
    (List.length (Solver.Coherence.check_impl_wf program));
  let bad_src =
    {|
      struct Node;
      trait Meta<A> {}
      trait HasMeta { type M: Meta<Self>; }
      struct Rogue;
      impl HasMeta for Node { type M = Rogue; }
    |}
  in
  let program = resolve bad_src in
  match Solver.Coherence.check_impl_wf program with
  | [ f ] ->
      check_str "failing assoc" "M" f.wf_assoc;
      Alcotest.check res "bound fails" Solver.Res.No f.wf_tree.result
  | l -> Alcotest.failf "expected one wf failure, got %d" (List.length l)

let test_impl_wf_uses_impl_where_clauses () =
  (* the §2.2 blanket impl is well-formed *because* its own where-clause
     provides the bound *)
  let src =
    {|
      trait AssocData<A> {}
      trait AstAssocs { type Data: AssocData<Self>; }
      impl<Data> AstAssocs for Data where Data: AssocData<Data> {
        type Data = Data;
      }
    |}
  in
  let program = resolve src in
  check_int "blanket impl is wf" 0 (List.length (Solver.Coherence.check_impl_wf program))

(* ------------------------------------------------------------------ *)
(* Coherence *)

let test_coherence_overlap () =
  let program =
    resolve "struct A; struct B<X>; trait T {} impl<X> T for B<X> {} impl T for B<A> {}"
  in
  check_int "one overlap" 1 (List.length (Solver.Coherence.check program))

let test_coherence_marker_separation () =
  let program =
    resolve
      "struct IsFn; trait T<M> {} struct A; impl<F> T<(IsFn, ())> for F {} impl<S> T<()> \
       for S {}"
  in
  check_int "no overlap" 0 (List.length (Solver.Coherence.check program))

let test_coherence_disjoint_heads () =
  let program = resolve "struct A; struct B; trait T {} impl T for A {} impl T for B {}" in
  check_int "no overlap" 0 (List.length (Solver.Coherence.check program))

let test_orphan_rule () =
  let program =
    resolve
      {|
      extern crate serde { trait Serialize {} }
      extern crate chrono { struct DateTime; }
      struct Local;
      impl Serialize for Local {}
      impl Serialize for DateTime {}
    |}
  in
  let orphans = Solver.Coherence.orphan_violations program in
  check_int "one orphan" 1 (List.length orphans);
  match orphans with
  | [ o ] -> check_str "the DateTime impl" "DateTime" (Pretty.ty o.o_self)
  | _ -> Alcotest.fail "orphan shape"

let test_orphan_external_impl_in_its_crate_ok () =
  let program =
    resolve
      {|
      extern crate serde {
        trait Serialize {}
        struct Value;
        impl Serialize for Value {}
      }
    |}
  in
  check_int "no orphans" 0 (List.length (Solver.Coherence.orphan_violations program))

(* ------------------------------------------------------------------ *)
(* qcheck: solver invariants over random ground programs *)

let random_program_gen =
  let open QCheck.Gen in
  let* n_structs = int_range 1 4 in
  let* n_traits = int_range 1 3 in
  let* n_impls = int_range 0 6 in
  let struct_name i = Printf.sprintf "S%d" i in
  let trait_name i = Printf.sprintf "T%d" i in
  let* raw_impls =
    list_repeat n_impls
      (let* t = int_range 0 (n_traits - 1) in
       let* s = int_range 0 (n_structs - 1) in
       let* has_where = bool in
       let* wt = int_range 0 (n_traits - 1) in
       let* ws = int_range 0 (n_structs - 1) in
       return ((t, s), (has_where, wt, ws)))
  in
  (* keep at most one impl per (trait, struct) pair so the program is
     coherent (overlapping impls legitimately make selection ambiguous) *)
  let impls =
    List.sort_uniq compare (List.map fst raw_impls)
    |> List.map (fun key ->
           let has_where, wt, ws = List.assoc key raw_impls in
           let t, s = key in
           if has_where then
             Printf.sprintf "impl %s for %s where %s: %s {}" (trait_name t)
               (struct_name s) (struct_name ws) (trait_name wt)
           else Printf.sprintf "impl %s for %s {}" (trait_name t) (struct_name s))
  in
  let* gt = int_range 0 (n_traits - 1) in
  let* gs = int_range 0 (n_structs - 1) in
  let buf = Buffer.create 256 in
  for i = 0 to n_structs - 1 do
    Buffer.add_string buf (Printf.sprintf "struct %s; " (struct_name i))
  done;
  for i = 0 to n_traits - 1 do
    Buffer.add_string buf (Printf.sprintf "trait %s {} " (trait_name i))
  done;
  List.iter (fun s -> Buffer.add_string buf (s ^ " ")) impls;
  Buffer.add_string buf (Printf.sprintf "goal %s: %s;" (struct_name gs) (trait_name gt));
  return (Buffer.contents buf)

let arbitrary_program = QCheck.make ~print:(fun s -> s) random_program_gen

(* ground-truth satisfiability by naive datalog-style fixpoint *)
let naive_holds src =
  let program = resolve src in
  let impls = Program.impls program in
  let goal = (List.hd (Program.goals program)).goal_pred in
  let holds : (string * string, bool) Hashtbl.t = Hashtbl.create 16 in
  let key self tr = (Pretty.ty ~cfg:Pretty.verbose self, Path.to_string tr) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i : Decl.impl) ->
        let prereqs_ok =
          List.for_all
            (fun wc ->
              match wc with
              | Predicate.Trait { self_ty; trait_ref } ->
                  Hashtbl.mem holds (key self_ty trait_ref.trait)
              | _ -> true)
            i.impl_generics.where_clauses
        in
        if prereqs_ok then begin
          let k = key i.impl_self i.impl_trait.trait in
          if not (Hashtbl.mem holds k) then begin
            Hashtbl.add holds k true;
            changed := true
          end
        end)
      impls
  done;
  match goal with
  | Predicate.Trait { self_ty; trait_ref } -> Hashtbl.mem holds (key self_ty trait_ref.trait)
  | _ -> false

let prop_solver_matches_naive_fixpoint =
  QCheck.Test.make ~name:"solver agrees with naive datalog on ground programs" ~count:300
    arbitrary_program (fun src ->
      let _, _, node = solve_one src in
      let expected = naive_holds src in
      match node.result with
      | Solver.Res.Yes -> expected
      | Solver.Res.No -> not expected
      | Solver.Res.Maybe -> false)

let prop_tree_results_consistent =
  QCheck.Test.make ~name:"goal = OR of candidates; candidate = AND of subgoals" ~count:300
    arbitrary_program (fun src ->
      let _, _, node = solve_one src in
      let rec ok (g : Solver.Trace.goal_node) =
        let cands_ok =
          List.for_all
            (fun (c : Solver.Trace.cand_node) ->
              List.for_all ok c.subgoals
              &&
              match c.failure with
              | Some _ -> Solver.Res.is_no c.cand_result
              | None ->
                  Solver.Res.equal c.cand_result
                    (Solver.Res.conj
                       (List.map (fun (s : Solver.Trace.goal_node) -> s.result) c.subgoals)))
            g.candidates
        in
        cands_ok
        &&
        match g.result with
        | Solver.Res.Yes ->
            g.candidates = []
            || List.exists
                 (fun (c : Solver.Trace.cand_node) -> Solver.Res.is_yes c.cand_result)
                 g.candidates
        | _ -> true
      in
      ok node)

let prop_overflow_never_loops =
  (* cyclic where-clauses must terminate via the cycle/overflow machinery *)
  let cyclic_gen =
    let open QCheck.Gen in
    let* n = int_range 1 3 in
    let names = List.init n (fun i -> Printf.sprintf "T%d" i) in
    let buf = Buffer.create 128 in
    Buffer.add_string buf "struct A; ";
    List.iter (fun t -> Buffer.add_string buf (Printf.sprintf "trait %s {} " t)) names;
    List.iteri
      (fun i t ->
        let next = List.nth names ((i + 1) mod n) in
        Buffer.add_string buf
          (Printf.sprintf "impl<X> %s for X where X: %s {} " t next))
      names;
    Buffer.add_string buf "goal A: T0;";
    return (Buffer.contents buf)
  in
  QCheck.Test.make ~name:"cyclic blanket impls terminate with overflow" ~count:20
    (QCheck.make ~print:(fun s -> s) cyclic_gen)
    (fun src ->
      let _, _, node = solve_one src in
      Solver.Res.is_no node.result)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_solver_matches_naive_fixpoint; prop_tree_results_consistent; prop_overflow_never_loops ]

let () =
  Alcotest.run "solver"
    [
      ("res", [ Alcotest.test_case "algebra" `Quick test_res_algebra ]);
      ( "infer_ctx",
        [
          Alcotest.test_case "fresh/bind" `Quick test_infer_ctx_fresh_and_bind;
          Alcotest.test_case "links" `Quick test_infer_ctx_links;
          Alcotest.test_case "snapshot/rollback" `Quick test_infer_ctx_snapshot_rollback;
          Alcotest.test_case "nested snapshots" `Quick test_infer_ctx_nested_snapshots;
          Alcotest.test_case "commit" `Quick test_infer_ctx_commit;
          Alcotest.test_case "for_program" `Quick test_infer_ctx_for_program;
        ] );
      ( "unify",
        [
          Alcotest.test_case "rigid" `Quick test_unify_rigid;
          Alcotest.test_case "infer binds" `Quick test_unify_infer_binds;
          Alcotest.test_case "occurs check" `Quick test_unify_occurs_check;
          Alcotest.test_case "structural" `Quick test_unify_structural;
          Alcotest.test_case "projection vs rigid" `Quick test_unify_projection_vs_rigid;
          Alcotest.test_case "infer-infer link" `Quick test_unify_infer_infer_link;
          Alcotest.test_case "can_unify rollback" `Quick test_can_unify_rolls_back;
        ] );
      ( "solve",
        [
          Alcotest.test_case "yes/no" `Quick test_solve_simple_yes_no;
          Alcotest.test_case "where clauses" `Quick test_solve_where_clause_required;
          Alcotest.test_case "generic heads" `Quick test_solve_generic_head_match;
          Alcotest.test_case "failure recorded" `Quick test_solve_candidate_records_failure;
          Alcotest.test_case "candidates listed" `Quick test_solve_multiple_candidates_listed;
          Alcotest.test_case "fast-reject prunes" `Quick test_solve_fast_reject_prunes_candidates;
          Alcotest.test_case "commit unique" `Quick test_solve_commits_unique_candidate;
          Alcotest.test_case "marker inference" `Quick test_solve_marker_inference;
          Alcotest.test_case "self hole ambiguous" `Quick test_solve_ambiguous_self_is_maybe;
          Alcotest.test_case "two yes ambiguous" `Quick test_solve_ambiguous_two_impls;
          Alcotest.test_case "param env" `Quick test_solve_param_env_candidate;
          Alcotest.test_case "supertrait elaboration" `Quick test_solve_supertrait_elaboration;
          Alcotest.test_case "builtin Fn" `Quick test_solve_builtin_fn;
          Alcotest.test_case "builtin Fn::Output" `Quick test_solve_builtin_fn_output;
          Alcotest.test_case "builtin Sized" `Quick test_solve_builtin_sized;
        ] );
      ( "projection",
        [
          Alcotest.test_case "match/mismatch" `Quick test_solve_projection_match_mismatch;
          Alcotest.test_case "infers term" `Quick test_solve_projection_infers_term;
          Alcotest.test_case "trait default" `Quick test_solve_projection_trait_default;
          Alcotest.test_case "in where clause" `Quick test_solve_projection_in_where_clause;
          Alcotest.test_case "stateful nodes" `Quick test_solve_stateful_normalizes_to;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "cycle" `Quick test_solve_overflow_cycle;
          Alcotest.test_case "depth limit" `Quick test_solve_depth_limit;
          Alcotest.test_case "outlives/wf" `Quick test_solve_outlives_and_wf;
        ] );
      ( "obligations",
        [
          Alcotest.test_case "fixpoint rounds" `Quick test_obligations_fixpoint_rounds;
          Alcotest.test_case "ambiguous fails" `Quick test_obligations_ambiguous_survivors_fail;
        ] );
      ( "probe",
        [
          Alcotest.test_case "commits first success" `Quick test_probe_commits_first_success;
          Alcotest.test_case "all fail" `Quick test_probe_all_fail;
          Alcotest.test_case "rollback between" `Quick test_probe_rollback_between_alternatives;
        ] );
      ( "impl_wf",
        [
          Alcotest.test_case "ok and failing" `Quick test_impl_wf_ok_and_failing;
          Alcotest.test_case "uses impl where-clauses" `Quick
            test_impl_wf_uses_impl_where_clauses;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "overlap" `Quick test_coherence_overlap;
          Alcotest.test_case "marker separation" `Quick test_coherence_marker_separation;
          Alcotest.test_case "disjoint heads" `Quick test_coherence_disjoint_heads;
          Alcotest.test_case "orphan rule" `Quick test_orphan_rule;
          Alcotest.test_case "external in own crate" `Quick
            test_orphan_external_impl_in_its_crate_ok;
        ] );
      ("properties", qcheck_tests);
    ]
