(** The domain pool: ordered results, exception propagation, clean
    shutdown, and the sequential fast path. *)

exception Boom of int

(* ------------------------------------------------------------------ *)
(* Ordered results *)

let test_map_ordered () =
  let pool = Pool.create ~jobs:4 in
  let results = Pool.map pool (fun i -> i * i) (List.init 100 Fun.id) in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "squares in input order"
    (List.init 100 (fun i -> i * i))
    results

(* Force a completion schedule that inverts submission order: task 0
   spins until every later task has finished, task 1 until every task
   after it has, and so on.  With [jobs] = task count, every task runs
   concurrently, so the last submitted task completes first — results
   must still come back in input order. *)
let test_map_ordered_under_reversed_completion () =
  let n = 4 in
  let pool = Pool.create ~jobs:n in
  let remaining = Atomic.make n in
  let work i =
    (* wait until all tasks after [i] have decremented [remaining] *)
    while Atomic.get remaining > i + 1 do
      Domain.cpu_relax ()
    done;
    Atomic.decr remaining;
    i * 10
  in
  let results = Pool.map pool work (List.init n Fun.id) in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "ordered despite reverse completion"
    (List.init n (fun i -> i * 10))
    results

(* ------------------------------------------------------------------ *)
(* Exception propagation *)

let test_exception_propagates () =
  let pool = Pool.create ~jobs:2 in
  let raised =
    try
      ignore (Pool.map pool (fun i -> if i = 3 then raise (Boom i) else i) (List.init 8 Fun.id));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "worker exception reaches the caller" (Some 3) raised;
  (* the pool survives a failed batch: the queue drained, workers live *)
  let ok = Pool.map pool (fun i -> i + 1) [ 1; 2; 3 ] in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "pool usable after a failed batch" [ 2; 3; 4 ] ok

let test_first_failing_index_wins () =
  let pool = Pool.create ~jobs:4 in
  let raised =
    try
      ignore
        (Pool.map pool
           (fun i -> if i >= 2 then raise (Boom i) else i)
           (List.init 8 Fun.id));
      None
    with Boom i -> Some i
  in
  Pool.shutdown pool;
  Alcotest.(check (option int)) "earliest failing input's exception" (Some 2) raised

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let test_shutdown_joins () =
  let pool = Pool.create ~jobs:3 in
  ignore (Pool.map pool succ [ 1; 2; 3; 4; 5 ]);
  Pool.shutdown pool;
  (* idempotent *)
  Pool.shutdown pool;
  Alcotest.(check int) "jobs recorded" 3 (Pool.jobs pool)

let test_create_rejects_nonpositive () =
  let rejected jobs =
    match Pool.create ~jobs with
    | exception Invalid_argument _ -> true
    | p ->
        Pool.shutdown p;
        false
  in
  Alcotest.(check bool) "jobs = 0 rejected" true (rejected 0);
  Alcotest.(check bool) "jobs = -2 rejected" true (rejected (-2))

(* [run ~jobs:1] with no pool must never spawn a domain: the telemetry
   task counter stays untouched because no pool task ever executes. *)
let test_run_sequential_path () =
  Telemetry.reset ();
  Telemetry.enable ();
  let r = Pool.run ~jobs:1 (fun i -> i * 2) [ 1; 2; 3 ] in
  let tasks = Telemetry.counter_value "pool.tasks" in
  let batches = Telemetry.counter_value "pool.batches" in
  Telemetry.disable ();
  Alcotest.(check (list int)) "sequential result" [ 2; 4; 6 ] r;
  Alcotest.(check int) "no pool task executed" 0 tasks;
  Alcotest.(check int) "no pool batch recorded" 0 batches

let test_run_parallel_path () =
  Telemetry.reset ();
  Telemetry.enable ();
  let r = Pool.run ~jobs:2 (fun i -> i * 2) [ 1; 2; 3 ] in
  let tasks = Telemetry.counter_value "pool.tasks" in
  Telemetry.disable ();
  Alcotest.(check (list int)) "parallel result" [ 2; 4; 6 ] r;
  Alcotest.(check int) "every input ran as a pool task" 3 tasks

let test_empty_and_singleton () =
  let pool = Pool.create ~jobs:2 in
  let empty = Pool.map pool succ [] in
  let one = Pool.map pool succ [ 41 ] in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "empty batch" [] empty;
  Alcotest.(check (list int)) "singleton batch" [ 42 ] one

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "ordered results" `Quick test_map_ordered;
          Alcotest.test_case "ordered under reversed completion" `Quick
            test_map_ordered_under_reversed_completion;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
        ] );
      ( "errors",
        [
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "first failing index wins" `Quick
            test_first_failing_index_wins;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown joins cleanly" `Quick test_shutdown_joins;
          Alcotest.test_case "nonpositive jobs rejected" `Quick
            test_create_rejects_nonpositive;
          Alcotest.test_case "run jobs=1 is sequential" `Quick test_run_sequential_path;
          Alcotest.test_case "run jobs>1 uses the pool" `Quick test_run_parallel_path;
        ] );
    ]
