(** Property and regression suite for the lib/fuzz differential-testing
    stack: generator determinism, oracle properties over random
    programs, the corpus round-trip regression, shrinker convergence,
    lexer/parser edge cases, and the [argus fuzz] CLI negative paths. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_generator_deterministic () =
  let render i = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:99 ~iter:i ~size:2) in
  check_string "same seed and iter render identically" (render 7) (render 7);
  check_bool "different iters diverge somewhere" true
    (List.exists (fun i -> render i <> render (i + 50)) [ 0; 1; 2; 3; 4 ])

let test_generator_sized () =
  let count size =
    Fuzz.Gen.decl_count (Fuzz.Gen.generate ~seed:5 ~iter:3 ~size)
  in
  check_bool "positive declaration count" true (count 1 > 0);
  check_bool "size knob grows programs (on average)" true
    (let total s =
       List.fold_left ( + ) 0
         (List.init 20 (fun i ->
              Fuzz.Gen.decl_count (Fuzz.Gen.generate ~seed:5 ~iter:i ~size:s)))
     in
     total 4 > total 1)

(* ------------------------------------------------------------------ *)
(* Oracle properties over random programs (QCheck style, fixed seeds so
   CI failures replay exactly). *)

let arbitrary_iter = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)

let oracle_property name ~count ~oracle =
  QCheck.Test.make ~name ~count arbitrary_iter (fun iter ->
      let source = Fuzz.Gen.render (Fuzz.Gen.generate ~seed:4242 ~iter ~size:2) in
      match Fuzz.Oracle.check oracle ~source with
      | Fuzz.Oracle.Pass -> true
      | Fuzz.Oracle.Fail m -> QCheck.Test.fail_reportf "iter %d: %s" iter m)

let qcheck_wellformed =
  oracle_property "generated programs load (wellformed oracle)" ~count:60
    ~oracle:Fuzz.Oracle.Wellformed

let qcheck_roundtrip =
  oracle_property "print -> re-parse -> re-solve is identity (roundtrip oracle)"
    ~count:40 ~oracle:Fuzz.Oracle.Roundtrip

let qcheck_cache =
  oracle_property "cache-on and cache-off runs agree (cache oracle)" ~count:25
    ~oracle:Fuzz.Oracle.Cache

let qcheck_journal =
  oracle_property "journal replay rebuilds the direct trees (journal oracle)"
    ~count:25 ~oracle:Fuzz.Oracle.Journal

let qcheck_intern =
  oracle_property "interning is canonical over generated programs (intern oracle)"
    ~count:40 ~oracle:Fuzz.Oracle.Intern

let qcheck_determinism =
  oracle_property "two cold runs are bit-identical (determinism oracle)" ~count:25
    ~oracle:Fuzz.Oracle.Determinism

let qcheck_index =
  oracle_property "index on and --no-index runs agree (index oracle)" ~count:25
    ~oracle:Fuzz.Oracle.Index

(* ------------------------------------------------------------------ *)
(* Corpus round-trip regression: every suite program (and every extra)
   survives print -> re-parse -> re-solve with an identical proof tree.
   This is the regression net for the fuzzer-found printer/parser bugs
   (shared-hole goal re-sugaring; fn-item back-parse vs impl bodies). *)

let test_corpus_roundtrip () =
  let run (e : Corpus.Harness.entry) =
    match Fuzz.Oracle.check Fuzz.Oracle.Roundtrip ~source:e.source with
    | Fuzz.Oracle.Pass -> ()
    | Fuzz.Oracle.Fail m -> Alcotest.failf "%s: %s" e.id m
  in
  check_int "whole suite covered (§5.2.1)" 17 (List.length Corpus.Suite.entries);
  List.iter run Corpus.Suite.entries;
  List.iter run Corpus.Suite.extras

(* ------------------------------------------------------------------ *)
(* Driver *)

let test_driver_clean_campaign () =
  let outcome =
    Fuzz.Driver.run ~oracles:[ Fuzz.Oracle.Wellformed; Fuzz.Oracle.Roundtrip ]
      ~iters:20 ~seed:7 ()
  in
  check_int "all iterations ran" 20 outcome.Fuzz.Driver.o_iters;
  check_int "two checks per iteration" 40 outcome.Fuzz.Driver.o_checks;
  check_bool "no counterexample" true (outcome.Fuzz.Driver.o_counterexample = None)

let test_driver_zero_iters () =
  let outcome = Fuzz.Driver.run ~oracles:Fuzz.Oracle.all ~iters:0 ~seed:7 () in
  check_int "no iterations" 0 outcome.Fuzz.Driver.o_iters;
  check_int "no checks" 0 outcome.Fuzz.Driver.o_checks

(* ------------------------------------------------------------------ *)
(* Shrinker.  A synthetic oracle whose failure only needs one trait
   declaration: the shrinker must strip everything else, and must keep
   the failure *kind* stable while doing so. *)

let test_shrink_converges () =
  let spec = Fuzz.Gen.generate ~seed:11 ~iter:2 ~size:3 in
  let check source =
    let re = "trait T0" in
    let contains =
      let rec go i =
        i + String.length re <= String.length source
        && (String.sub source i (String.length re) = re || go (i + 1))
      in
      go 0
    in
    if contains then Fuzz.Oracle.Fail "synthetic: trait T0 present"
    else Fuzz.Oracle.Pass
  in
  (match check (Fuzz.Gen.render spec) with
  | Fuzz.Oracle.Fail _ -> ()
  | Fuzz.Oracle.Pass -> Alcotest.fail "seed spec must fail the synthetic oracle");
  let r = Fuzz.Shrink.run ~check ~kind:"synthetic" spec in
  check_bool "shrinking made progress" true (r.Fuzz.Shrink.steps > 0);
  check_int "minimal repro is a single declaration" 1
    (Fuzz.Gen.decl_count r.Fuzz.Shrink.minimized);
  (match check (Fuzz.Gen.render r.Fuzz.Shrink.minimized) with
  | Fuzz.Oracle.Fail _ -> ()
  | Fuzz.Oracle.Pass -> Alcotest.fail "minimized spec no longer fails")

let test_shrink_respects_kind () =
  (* A reduction that drops the struct flips the failure kind; the
     shrinker must refuse it and keep both declarations. *)
  let spec = Fuzz.Gen.generate ~seed:11 ~iter:2 ~size:2 in
  let check source =
    match Trait_lang.Resolve.program_of_string ~file:"shrink" source with
    | _ -> Fuzz.Oracle.Fail "target: loads"
    | exception _ -> Fuzz.Oracle.Fail "front-end: broken"
  in
  let r = Fuzz.Shrink.run ~check ~kind:"target" spec in
  match check (Fuzz.Gen.render r.Fuzz.Shrink.minimized) with
  | Fuzz.Oracle.Fail m -> check_string "kind preserved" "target" (Fuzz.Oracle.fail_kind m)
  | Fuzz.Oracle.Pass -> Alcotest.fail "minimized spec no longer fails"

(* ------------------------------------------------------------------ *)
(* Lexer/parser edge cases (table-driven).  Each source must parse,
   resolve, and survive the round-trip oracle. *)

let deep_generic depth =
  let b = Buffer.create 256 in
  Buffer.add_string b "struct S<P0>;\ntrait T { }\ngoal ";
  for _ = 1 to depth do
    Buffer.add_string b "S<"
  done;
  Buffer.add_string b "i32";
  for _ = 1 to depth do
    Buffer.add_char b '>'
  done;
  Buffer.add_string b ": T;\n";
  Buffer.contents b

let long_supertrait_chain n =
  let b = Buffer.create 256 in
  Buffer.add_string b "struct S;\ntrait T0 { }\n";
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf "trait T%d: T%d { }\n" i (i - 1))
  done;
  Buffer.add_string b "impl T0 for S { }\n";
  Buffer.add_string b (Printf.sprintf "goal S: T%d;\n" n);
  Buffer.contents b

let edge_cases =
  [
    ("nested generics at depth 64", deep_generic 64);
    ("supertrait chain of length 40", long_supertrait_chain 40);
    ( "keyword-adjacent identifiers",
      "struct structural;\nstruct implement;\nstruct forbid;\nstruct dynamo;\n\
       struct modality;\nstruct whereabouts;\nstruct crateful;\nstruct newtyped;\n\
       struct Selfish;\ntrait traitor { }\nimpl traitor for structural { }\n\
       goal structural: traitor;\ngoal implement: traitor;\n" );
    ( "fn pointers, fn items, and unit",
      "struct S;\ntrait T { }\nimpl T for fn(S) -> S { }\nimpl T for fn() { }\n\
       fn free(S) -> S;\ngoal fn(S) -> S: T;\ngoal fn[free]: T;\ngoal (): T;\n" );
    ( "one-tuples and nested tuples",
      "struct S;\ntrait T { }\nimpl T for (S,) { }\ngoal (S,): T;\n\
       goal ((S, S), (S,)): T;\n" );
    ( "references and dyn objects",
      "struct S;\ntrait T { }\ntrait U { }\nimpl T for &S { }\n\
       impl T for dyn U { }\ngoal &S: T;\ngoal &mut S: T;\ngoal dyn U: T;\n" );
    ( "projections with binding sugar",
      "struct S;\ntrait A { type Out; }\nimpl A for S { type Out = S; }\n\
       goal S: A<Out = S>;\ngoal <S as A>::Out == S;\n" );
  ]

let test_parser_edge_cases () =
  List.iter
    (fun (label, source) ->
      (match Trait_lang.Resolve.program_of_string ~file:"edge" source with
      | _ -> ()
      | exception e ->
          Alcotest.failf "%s: front-end rejected: %s" label (Printexc.to_string e));
      match Fuzz.Oracle.check Fuzz.Oracle.Roundtrip ~source with
      | Fuzz.Oracle.Pass -> ()
      | Fuzz.Oracle.Fail m -> Alcotest.failf "%s: %s" label m)
    edge_cases

(* ------------------------------------------------------------------ *)
(* CLI negative paths.  Tests run in _build/default/test with the CLI
   declared as a test dependency at ../bin/argus_cli.exe. *)

let cli = Filename.concat ".." (Filename.concat "bin" "argus_cli.exe")

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains ~needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_cli_check_unparseable () =
  write_file "fuzz_bad.trait" "struct A; trait T {";
  let code = Sys.command (cli ^ " check fuzz_bad.trait > fuzz_bad.out 2> fuzz_bad.err") in
  check_int "unparseable input exits 2" 2 code;
  let err = read_file "fuzz_bad.err" in
  check_bool "stderr carries a positioned diagnostic" true
    (contains ~needle:"fuzz_bad.trait:1:" err && contains ~needle:"parse error" err)

let test_cli_jobs_zero () =
  write_file "fuzz_ok.trait" "struct A; trait T { }\ngoal A: T;\n";
  let code = Sys.command (cli ^ " check --jobs 0 fuzz_ok.trait > j0.out 2> j0.err") in
  check_int "--jobs 0 exits 2" 2 code;
  check_bool "stderr explains the constraint" true
    (contains ~needle:"--jobs" (read_file "j0.err"))

let test_cli_fuzz_zero_iters () =
  let code = Sys.command (cli ^ " fuzz --iters 0 > fz0.out 2> fz0.err") in
  check_int "--iters 0 is a clean no-op" 0 code;
  check_bool "summary still printed" true
    (contains ~needle:"0 counterexamples" (read_file "fz0.out"))

let test_cli_fuzz_unknown_oracle () =
  let code = Sys.command (cli ^ " fuzz --iters 1 --oracle bogus > fo.out 2> fo.err") in
  check_int "unknown oracle exits 2" 2 code;
  check_bool "error lists the known oracles" true
    (contains ~needle:"wellformed" (read_file "fo.err"))

let test_cli_fuzz_replay_missing () =
  let code = Sys.command (cli ^ " fuzz --replay no_such.trait > fr.out 2> fr.err") in
  check_int "missing replay file exits 2" 2 code

let test_cli_fuzz_smoke () =
  let code = Sys.command (cli ^ " fuzz --iters 10 --seed 7 > fs.out 2> fs.err") in
  check_int "small campaign exits 0" 0 code;
  let out = read_file "fs.out" in
  check_bool "reports iterations and checks" true
    (contains ~needle:"10 iterations" out && contains ~needle:"0 counterexamples" out)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "size knob" `Quick test_generator_sized;
        ] );
      ( "oracle properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_wellformed;
            qcheck_roundtrip;
            qcheck_cache;
            qcheck_journal;
            qcheck_intern;
            qcheck_determinism;
            qcheck_index;
          ] );
      ( "corpus",
        [ Alcotest.test_case "all programs round-trip" `Quick test_corpus_roundtrip ] );
      ( "driver",
        [
          Alcotest.test_case "clean campaign" `Quick test_driver_clean_campaign;
          Alcotest.test_case "zero iterations" `Quick test_driver_zero_iters;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "converges to one declaration" `Quick test_shrink_converges;
          Alcotest.test_case "failure kind preserved" `Quick test_shrink_respects_kind;
        ] );
      ( "parser edges",
        [ Alcotest.test_case "table-driven edge cases" `Quick test_parser_edge_cases ] );
      ( "cli",
        [
          Alcotest.test_case "check: unparseable exits 2" `Quick test_cli_check_unparseable;
          Alcotest.test_case "check: --jobs 0 exits 2" `Quick test_cli_jobs_zero;
          Alcotest.test_case "fuzz: --iters 0 no-op" `Quick test_cli_fuzz_zero_iters;
          Alcotest.test_case "fuzz: unknown oracle" `Quick test_cli_fuzz_unknown_oracle;
          Alcotest.test_case "fuzz: missing replay file" `Quick test_cli_fuzz_replay_missing;
          Alcotest.test_case "fuzz: smoke campaign" `Quick test_cli_fuzz_smoke;
        ] );
    ]
