(** The global trait-solver evaluation cache.

    Trait solving re-derives the same facts constantly: coherence checks
    every impl's bounds, the obligation engine re-runs [Maybe] goals to a
    fixpoint, method-resolution probes re-ask receiver predicates, and
    deep where-clause trees share subgoals.  rustc memoizes evaluations
    per canonical query; this module does the same for L_TRAIT, in two
    tiers:

    {ul
    {- the {b tree tier} memoizes whole proof-tree fragments for {e
       ground} [Trait]/[Projection] goals, capturing everything a real
       evaluation would have produced — the trace subtree, the journal-ID
       range it consumed, the inference variables it allocated and the
       bindings it left behind — so a hit replays to a {e bit-identical}
       solver state (same gids, same variable numbers, same undo log);}
    {- the {b result tier} memoizes bare verdicts ([yes]/[maybe]/[no])
       for canonicalized goals evaluated from an empty stack — the
       shape coherence and speculative method probes consume when they
       only need the answer, not the tree.}}

    {2 Cycle safety}

    A memoized subtree is only valid where a fresh evaluation would have
    unfolded identically.  The solver's cycle check ({!Solve.cycles})
    compares the current predicate against the evaluation stack with
    [Predicate.equal]; a cached subtree evaluated under one stack could
    behave differently under another.  Three facts restore soundness:

    {ul
    {- every stack-dependent decision inside an evaluation produces an
       [Overflow]- or [Depth_limit]-flagged leaf {e inside the subtree}
       — so entries whose subtree carries either flag are never cached;}
    {- a [NormalizesTo] predicate embeds a freshly allocated output
       variable, so it can never [Predicate.equal]-match a predicate
       pushed earlier by an enclosing evaluation;}
    {- an inner predicate mentioning inference variables allocated
       during the evaluation cannot match an enclosing stack entry
       either: on replay those variables are renumbered above
       [Infer_ctx.num_vars], and no predicate resolved earlier can
       mention a variable that did not yet exist.}

    What remains is exactly the {e ground} [Trait]/[Projection]
    predicates occurring inside the subtree ([e_touched]): a hit is
    refused when any of them matches the current stack, and when the
    replayed subtree would not clear the current depth limit.

    {2 Domain safety}

    The cache is shared across domains and {b sharded}: [num_shards]
    independent shards, selected by the canonical key hash, each with
    its own tables, LRU clock, and mutex, so parallel batch solving
    contends on a shard only when two domains touch keys that hash
    together.  Entry validation ([try_insert]'s subtree walk) runs
    outside the lock — it reads only domain-local solver state — and the
    critical sections are plain table operations.  Keys embed the
    program stamp and the inserting domain's interned predicate
    (compared with [==]), so entries are only ever hit by the domain
    that canonicalized the same terms — cross-domain lookups miss
    harmlessly rather than alias.  [cache.shard.contention] counts
    lock acquisitions that had to wait. *)

open Trait_lang

let c_tree_hit = Telemetry.counter "cache.tree.hits"
let c_tree_miss = Telemetry.counter "cache.tree.misses"
let c_tree_insert = Telemetry.counter "cache.tree.inserts"
let c_tree_reject = Telemetry.counter "cache.tree.rejects"
let c_result_hit = Telemetry.counter "cache.result.hits"
let c_result_miss = Telemetry.counter "cache.result.misses"
let c_shard_contention = Telemetry.counter "cache.shard.contention"
let c_incr_evicted = Telemetry.counter "incr.evicted"
let c_incr_survived = Telemetry.counter "incr.survived"

(* ------------------------------------------------------------------ *)
(* Declaration dependencies *)

(* Which declarations an evaluation consulted, recorded as the differ's
   invalidation keys (see {!Trait_lang.Fingerprint}).  The solver opens a
   scope per cacheable evaluation; [record_dep] is called at the two
   places solving reads the program — candidate enumeration (the impl
   set of a trait) and associated-type defaults (the trait declaration)
   — and a cache hit re-records the entry's stored deps so enclosing
   evaluations inherit them, exactly as a fresh unfold would. *)

type dep = Fingerprint.dep

let dep_scopes : dep list ref list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let push_dep_scope () =
  let st = Domain.DLS.get dep_scopes in
  st := ref [] :: !st

let record_dep (d : dep) =
  match !(Domain.DLS.get dep_scopes) with
  | [] -> ()
  | top :: _ -> if not (List.exists (Fingerprint.dep_equal d) !top) then top := d :: !top

let record_deps ds = List.iter record_dep ds

(** Close the innermost scope, propagating its deps to the enclosing one
    (a parent evaluation depends on everything its subgoals consulted). *)
let pop_dep_scope () : dep list =
  let st = Domain.DLS.get dep_scopes in
  match !st with
  | [] -> []
  | top :: rest ->
      st := rest;
      record_deps !top;
      !top

(** Drop any scopes left behind by an evaluation that unwound on an
    exception (leftover scopes are sound — they only absorb records —
    but leak); sessions call this before each resolve. *)
let reset_dep_scopes () = Domain.DLS.get dep_scopes := []

(* ------------------------------------------------------------------ *)
(* Keys *)

type ctx = {
  x_stamp : int;  (** {!Program.stamp} — identifies the declaration set *)
  x_env : Predicate.t list;  (** elaborated param-env, interned *)
  x_builtins : bool;
  x_depth_limit : int;
  x_hash : int;
}

let make_ctx ~stamp ~builtins ~depth_limit (env : Predicate.t list) : ctx =
  let env = List.map Interner.predicate env in
  let h =
    List.fold_left
      (fun h p -> (h * 31) + (Interner.predicate_info p).Interner.id)
      (Hashtbl.hash (stamp, builtins, depth_limit))
      env
  in
  { x_stamp = stamp; x_env = env; x_builtins = builtins; x_depth_limit = depth_limit; x_hash = h }

let ctx_env c = c.x_env

let ctx_equal a b =
  a == b
  || a.x_stamp = b.x_stamp && a.x_builtins = b.x_builtins
     && a.x_depth_limit = b.x_depth_limit
     && List.length a.x_env = List.length b.x_env
     && List.for_all2 ( == ) a.x_env b.x_env

type key = {
  k_ctx : ctx;
  k_pred : Predicate.t;  (** interned; canonical when [k_vars > 0] *)
  k_vars : int;
  k_hash : int;
}

let tree_key ctx (pred : Predicate.t) : key =
  let info = Interner.predicate_info pred in
  {
    k_ctx = ctx;
    k_pred = info.Interner.node;
    k_vars = 0;
    k_hash = ctx.x_hash lxor (info.Interner.hash * 65599);
  }

let result_key ctx (c : Canonical.canonical) : key =
  let info = Interner.predicate_info c.c_pred in
  {
    k_ctx = ctx;
    k_pred = info.Interner.node;
    k_vars = c.c_vars;
    k_hash = ctx.x_hash lxor (info.Interner.hash * 65599) lxor (c.c_vars * 7919);
  }

module K = struct
  type t = key

  let equal a b =
    a.k_hash = b.k_hash && a.k_vars = b.k_vars && a.k_pred == b.k_pred
    && ctx_equal a.k_ctx b.k_ctx

  let hash k = k.k_hash
end

module Tbl = Hashtbl.Make (K)

(* ------------------------------------------------------------------ *)
(* Entries *)

type tree_entry = {
  e_node : Trace.goal_node;  (** as evaluated, pre-replay stamping *)
  e_root_gid : int;
  e_ids : int;  (** journal IDs consumed {e after} the root gid *)
  e_var_start : int;  (** [Infer_ctx.num_vars] when evaluation began *)
  e_vars : int;  (** inference variables allocated by the evaluation *)
  e_slots : Infer_ctx.binding array;  (** final slots of the allocated range *)
  e_depth : int;
  e_max_depth_off : int;  (** deepest subtree node, relative to [e_depth] *)
  e_touched : Predicate.t list;  (** ground Trait/Projection preds inside *)
  e_deps : dep list;  (** declarations the evaluation consulted *)
  mutable e_lru : int;
}

type result_entry = { r_res : Res.t; r_deps : dep list; mutable r_lru : int }

(* ------------------------------------------------------------------ *)
(* Shards *)

(* Sixteen independent shards, selected by the low bits of the canonical
   key hash.  Each shard owns its own tables, LRU clock, and mutex, so
   two domains only contend when their keys hash into the same shard.
   Per-shard capacity is generous (1024 per tier × 16 shards ≥ the old
   4096 global budget) so eviction pressure — the only cross-unit
   interaction left once keys embed fresh program stamps — stays out of
   the way of single-corpus batch runs. *)

type shard = {
  s_mutex : Mutex.t;
  s_tree : tree_entry Tbl.t;
  s_result : result_entry Tbl.t;
  s_rev : (dep, key list) Hashtbl.t;
      (** reverse index decl→entries for incremental invalidation; lists
          may carry stale keys (evictions don't unlink), pruned lazily *)
  mutable s_clock : int;
}

let num_shards = 16
let shard_capacity = 1024

let shards =
  Array.init num_shards (fun _ ->
      {
        s_mutex = Mutex.create ();
        s_tree = Tbl.create 64;
        s_result = Tbl.create 64;
        s_rev = Hashtbl.create 64;
        s_clock = 0;
      })

let shard_of (key : key) = shards.(key.k_hash land (num_shards - 1))

let lock_shard s =
  if not (Mutex.try_lock s.s_mutex) then begin
    Telemetry.incr c_shard_contention;
    Mutex.lock s.s_mutex
  end

let with_shard s f =
  lock_shard s;
  match f s with
  | v ->
      Mutex.unlock s.s_mutex;
      v
  | exception e ->
      Mutex.unlock s.s_mutex;
      raise e

let tick s =
  s.s_clock <- s.s_clock + 1;
  s.s_clock

(* Link [key] under each of its deps.  Rev lists accumulate stale keys
   between rebases; cap unbounded growth by pruning a list to its live
   members once it gets long. *)
let add_rev s key (deps : dep list) =
  List.iter
    (fun d ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt s.s_rev d) in
      let prev =
        if List.length prev >= 128 then
          List.filter (fun k -> Tbl.mem s.s_tree k || Tbl.mem s.s_result k) prev
        else prev
      in
      Hashtbl.replace s.s_rev d (key :: prev))
    deps

(* Evict the least-recently-used half when full: O(n log n) amortized
   over n/2 inserts. *)
let evict_half (type e) (tbl : e Tbl.t) (lru_of : e -> int) =
  let all = Tbl.fold (fun k e acc -> (k, e) :: acc) tbl [] in
  let sorted = List.sort (fun (_, a) (_, b) -> compare (lru_of a) (lru_of b)) all in
  let n = List.length sorted / 2 in
  List.iteri (fun i (k, _) -> if i < n then Tbl.remove tbl k) sorted

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let clear () =
  Array.iter
    (fun s ->
      with_shard s (fun s ->
          Tbl.reset s.s_tree;
          Tbl.reset s.s_result;
          Hashtbl.reset s.s_rev;
          s.s_clock <- 0))
    shards

type stats = { cs_tree : int; cs_result : int }

let stats () =
  Array.fold_left
    (fun acc s ->
      with_shard s (fun s ->
          {
            cs_tree = acc.cs_tree + Tbl.length s.s_tree;
            cs_result = acc.cs_result + Tbl.length s.s_result;
          }))
    { cs_tree = 0; cs_result = 0 }
    shards

(* ------------------------------------------------------------------ *)
(* Tree tier: lookup *)

(** A usable memoized subtree for [key] at [depth] under [stack], if any.
    Guards: the replayed subtree must clear the depth limit everywhere
    (every depth-limit comparison the original evaluation passed must
    still pass), and no ground predicate inside it may cycle-match the
    current evaluation stack. *)
let find_tree key ~depth ~(stack : Predicate.t list) : tree_entry option =
  if not (Atomic.get enabled_flag) then None
  else
    let hit =
      with_shard (shard_of key) (fun s ->
          match Tbl.find_opt s.s_tree key with
          | None -> None
          | Some e ->
              if
                depth + e.e_max_depth_off <= key.k_ctx.x_depth_limit
                && not
                     (List.exists
                        (fun p -> List.exists (Predicate.equal p) stack)
                        e.e_touched)
              then begin
                e.e_lru <- tick s;
                Some e
              end
              else None)
    in
    (match hit with
    | Some _ -> Telemetry.incr c_tree_hit
    | None -> Telemetry.incr c_tree_miss);
    hit

(* ------------------------------------------------------------------ *)
(* Tree tier: insertion *)

(** Everything {!try_insert} needs to reconstruct (and validate) what an
    evaluation consumed; opened by the solver right before dispatching a
    cacheable goal. *)
type frame = {
  f_key : key;
  f_gid : int;
  f_id_mark : int;  (** {!Journal.peek_id} after the root gid *)
  f_var_start : int;
  f_undo_mark : int;
  f_depth : int;
}

let open_frame icx ~key ~gid ~depth : frame =
  push_dep_scope ();
  {
    f_key = key;
    f_gid = gid;
    f_id_mark = Journal.peek_id ();
    f_var_start = Infer_ctx.num_vars icx;
    f_undo_mark = Infer_ctx.undo_mark icx;
    f_depth = depth;
  }

let vars_ok ~start p = List.for_all (fun v -> v >= start) (Predicate.infer_vars p)
let ty_ok ~start t = List.for_all (fun v -> v >= start) (Ty.infer_vars t)

let failure_ok ~start (f : Unify.failure) =
  match f with
  | Head_mismatch (a, b) | Arity (a, b) -> ty_ok ~start a && ty_ok ~start b
  | Region_mismatch _ -> true
  | Occurs (i, t) -> i >= start && ty_ok ~start t
  | Projection_ambiguous (p, t) -> ty_ok ~start (Ty.Proj p) && ty_ok ~start t

(** Validate and store a finished evaluation.  Refused (leaving the cache
    unchanged) when the subtree:
    - carries any [Overflow]/[Depth_limit] flag (stack/limit-dependent);
    - persistently bound an inference variable that predates the
      evaluation, or references one from a binding or failure payload
      (cannot be renumbered into another solver's variable space). *)
let try_insert icx (f : frame) (node : Trace.goal_node) =
  (* Close the scope opened by [open_frame] whether or not we insert:
     the deps still propagate to the enclosing evaluation. *)
  let deps = pop_dep_scope () in
  if Atomic.get enabled_flag then begin
    let start = f.f_var_start in
    let ok = ref true in
    let max_depth = ref f.f_depth in
    let touched = ref [] in
    let check_goal () (g : Trace.goal_node) =
      if g.depth > !max_depth then max_depth := g.depth;
      if List.mem Trace.Overflow g.flags || List.mem Trace.Depth_limit g.flags then
        ok := false;
      if not (vars_ok ~start g.pred) then ok := false;
      (match g.pred with
      | Predicate.Trait _ | Predicate.Projection _ ->
          if not (Predicate.has_infer g.pred) then touched := g.pred :: !touched
      | _ -> ());
      List.iter
        (fun (c : Trace.cand_node) ->
          match c.failure with
          | Some fl when not (failure_ok ~start fl) -> ok := false
          | _ -> ())
        g.candidates
    in
    Trace.fold_goals check_goal () node;
    if not (List.for_all (fun i -> i >= start) (Infer_ctx.sets_since icx f.f_undo_mark))
    then ok := false;
    let n_vars = Infer_ctx.num_vars icx - start in
    let slots =
      Array.init n_vars (fun k ->
          let b = Infer_ctx.slot icx (start + k) in
          (match b with
          | Infer_ctx.Unbound -> ()
          | Infer_ctx.Link j -> if j < start then ok := false
          | Infer_ctx.Bound t -> if not (ty_ok ~start t) then ok := false);
          b)
    in
    if !ok then begin
      Telemetry.incr c_tree_insert;
      (* Validation above reads only domain-local solver state; only the
         table mutation itself takes the shard lock. *)
      let ids = Journal.peek_id () - f.f_id_mark in
      with_shard (shard_of f.f_key) (fun s ->
          if Tbl.length s.s_tree >= shard_capacity then
            evict_half s.s_tree (fun e -> e.e_lru);
          (* [replace], not [add]: re-insertion after an unusable hit (e.g.
             insufficient depth headroom) keeps the freshest entry. *)
          Tbl.replace s.s_tree f.f_key
            {
              e_node = node;
              e_root_gid = f.f_gid;
              e_ids = ids;
              e_var_start = start;
              e_vars = n_vars;
              e_slots = slots;
              e_depth = f.f_depth;
              e_max_depth_off = !max_depth - f.f_depth;
              e_touched = !touched;
              e_deps = deps;
              e_lru = tick s;
            };
          add_rev s f.f_key deps)
    end
    else Telemetry.incr c_tree_reject
  end

(* ------------------------------------------------------------------ *)
(* Tree tier: replay *)

(** Reconstruct the exact post-evaluation solver state from a memoized
    entry: reserve the journal-ID range the evaluation consumed,
    allocate the same number of fresh inference variables, write back
    the captured bindings (renumbered, undo-logged), and return the
    subtree restamped into the caller's id/variable/depth space with the
    caller's provenance at the root. *)
let replay icx ~gid ~depth ~prov (e : tree_entry) : Trace.goal_node =
  (* A hit consults the same declarations a fresh unfold would have:
     charge them to the enclosing evaluation. *)
  record_deps e.e_deps;
  Journal.bump_ids e.e_ids;
  let var_start = Infer_ctx.alloc_vars icx e.e_vars in
  let vd = var_start - e.e_var_start in
  let gd = gid - e.e_root_gid in
  let dd = depth - e.e_depth in
  let sv v = if v >= e.e_var_start then v + vd else v in
  let sty t = Canonical.shift_ty ~start:e.e_var_start ~delta:vd t in
  let spred p = Canonical.shift_predicate ~start:e.e_var_start ~delta:vd p in
  Array.iteri
    (fun k (b : Infer_ctx.binding) ->
      match b with
      | Unbound -> ()
      | Link j -> Infer_ctx.set_slot icx (var_start + k) (Infer_ctx.Link (sv j))
      | Bound t -> Infer_ctx.set_slot icx (var_start + k) (Infer_ctx.Bound (sty t)))
    e.e_slots;
  if gd = 0 && dd = 0 && vd = 0 then { e.e_node with provenance = prov }
  else begin
    let sfail (fl : Unify.failure) : Unify.failure =
      if vd = 0 then fl
      else
        match fl with
        | Head_mismatch (a, b) -> Head_mismatch (sty a, sty b)
        | Arity (a, b) -> Arity (sty a, sty b)
        | Region_mismatch _ as r -> r
        | Occurs (i, t) -> Occurs (sv i, sty t)
        | Projection_ambiguous (p, t) ->
            Projection_ambiguous
              (Canonical.shift_projection ~start:e.e_var_start ~delta:vd p, sty t)
    in
    let rec goal (g : Trace.goal_node) : Trace.goal_node =
      {
        g with
        gid = g.gid + gd;
        depth = g.depth + dd;
        pred = spred g.pred;
        candidates = List.map cand g.candidates;
      }
    and cand (c : Trace.cand_node) : Trace.cand_node =
      {
        c with
        cid = c.cid + gd;
        subgoals = List.map goal c.subgoals;
        failure = Option.map sfail c.failure;
      }
    in
    let root = goal e.e_node in
    { root with provenance = prov }
  end

(* ------------------------------------------------------------------ *)
(* Result tier *)

let find_result key : Res.t option =
  if not (Atomic.get enabled_flag) then None
  else
    let hit =
      with_shard (shard_of key) (fun s ->
          match Tbl.find_opt s.s_result key with
          | Some e ->
              e.r_lru <- tick s;
              Some (e.r_res, e.r_deps)
          | None -> None)
    in
    (match hit with
    | Some (_, deps) ->
        Telemetry.incr c_result_hit;
        record_deps deps
    | None -> Telemetry.incr c_result_miss);
    Option.map fst hit

let insert_result ?(deps = []) key res =
  if Atomic.get enabled_flag then
    with_shard (shard_of key) (fun s ->
        if Tbl.length s.s_result >= shard_capacity then
          evict_half s.s_result (fun e -> e.r_lru);
        Tbl.replace s.s_result key { r_res = res; r_deps = deps; r_lru = tick s };
        add_rev s key deps)

(* ------------------------------------------------------------------ *)
(* Incremental rebase (red-green revalidation) *)

type rebase_stats = { rb_evicted : int; rb_survived : int }

(** Revalidate the cache across an edit: entries keyed under [old_ctx]
    that consulted a dirty declaration are evicted (red); the rest
    survive, re-keyed under [new_ctx] (green).  Re-keying changes the
    key hash — and therefore the shard — so this is a global two-phase
    walk: collect per shard, then redistribute.  Entries under other
    contexts (other programs, other solver configs) are untouched.

    Eviction itself walks the reverse index, so its cost scales with the
    entries that actually touched a dirty declaration; the survivor
    re-key is a linear pass over the old context's remaining entries. *)
let rebase ~old_ctx ~new_ctx ~(dirty : dep list) : rebase_stats =
  let evicted = ref 0 in
  let rekey (k : key) =
    (* [k_hash = x_hash lxor f(pred, vars)]: swap the ctx contribution. *)
    { k with k_ctx = new_ctx; k_hash = new_ctx.x_hash lxor (k.k_hash lxor old_ctx.x_hash) }
  in
  let is_dirty deps =
    List.exists (fun d -> List.exists (Fingerprint.dep_equal d) dirty) deps
  in
  let surv_tree = ref [] and surv_result = ref [] in
  Array.iter
    (fun s ->
      with_shard s (fun s ->
          (* Red: walk the reverse index for each dirty key and evict
             exactly the entries that recorded it. *)
          List.iter
            (fun d ->
              match Hashtbl.find_opt s.s_rev d with
              | None -> ()
              | Some keys ->
                  List.iter
                    (fun k ->
                      if ctx_equal k.k_ctx old_ctx then begin
                        if Tbl.mem s.s_tree k then begin
                          Tbl.remove s.s_tree k;
                          incr evicted
                        end;
                        if Tbl.mem s.s_result k then begin
                          Tbl.remove s.s_result k;
                          incr evicted
                        end
                      end)
                    keys)
            dirty;
          (* Green: every remaining old-ctx entry survives; collect it
             for redistribution.  The [is_dirty] re-check is defensive —
             the reverse index is complete by construction, so it never
             fires unless an entry somehow bypassed [add_rev]. *)
          let take (type e) (tbl : e Tbl.t) (deps_of : e -> dep list) sink =
            let olds =
              Tbl.fold
                (fun k e acc -> if ctx_equal k.k_ctx old_ctx then (k, e) :: acc else acc)
                tbl []
            in
            List.iter
              (fun (k, e) ->
                Tbl.remove tbl k;
                if is_dirty (deps_of e) then incr evicted
                else sink := (rekey k, e) :: !sink)
              olds
          in
          take s.s_tree (fun e -> e.e_deps) surv_tree;
          take s.s_result (fun e -> e.r_deps) surv_result;
          (* The walk above unlinked many keys; prune this shard's rev
             lists down to the entries still resident. *)
          Hashtbl.filter_map_inplace
            (fun _ keys ->
              match List.filter (fun k -> Tbl.mem s.s_tree k || Tbl.mem s.s_result k) keys with
              | [] -> None
              | keys -> Some keys)
            s.s_rev))
    shards;
  List.iter
    (fun (k, (e : tree_entry)) ->
      with_shard (shard_of k) (fun s ->
          if Tbl.length s.s_tree >= shard_capacity then evict_half s.s_tree (fun e -> e.e_lru);
          Tbl.replace s.s_tree k { e with e_lru = tick s };
          add_rev s k e.e_deps))
    !surv_tree;
  List.iter
    (fun (k, (e : result_entry)) ->
      with_shard (shard_of k) (fun s ->
          if Tbl.length s.s_result >= shard_capacity then
            evict_half s.s_result (fun e -> e.r_lru);
          Tbl.replace s.s_result k { e with r_lru = tick s };
          add_rev s k e.r_deps))
    !surv_result;
  let survived = List.length !surv_tree + List.length !surv_result in
  Telemetry.add c_incr_evicted !evicted;
  Telemetry.add c_incr_survived survived;
  { rb_evicted = !evicted; rb_survived = survived }
