(** The trait solver: given a context and a predicate, produce the trait
    inference tree 𝒢 (Fig. 5).

    The solver mirrors the architecture of rustc's ("next") trait solver at
    the level of detail the paper depends on:

    - {b candidate assembly}: in-scope where-clauses (param-env), impl
      blocks, and built-in impls (fn pointers/items for the [Fn] family,
      [Sized]) are all probed as alternatives — the OR branching of the
      AND/OR tree;
    - {b speculative probing}: each candidate is evaluated under an
      inference snapshot and rolled back; a uniquely successful candidate
      is then re-run and committed, which is how trait solving guides type
      inference (the Bevy marker-type deduction of §2.3);
    - {b normalization}: associated-type projections are normalized through
      impls via *stateful* [NormalizesTo] nodes whose value is captured
      after their subtree executes (§4);
    - {b overflow}: revisiting a predicate already on the evaluation stack,
      or exceeding the recursion limit, fails with an overflow marker
      (E0275, the §2.2 infinite recursion).

    Every step is journaled (see lib/journal): goals and candidates open
    and close event frames carrying the stable IDs stored in the trace
    nodes, so the event stream replays to exactly the tree this module
    returns.  Candidate-commit re-runs are muted — they re-execute
    already-journaled work and their traces are discarded. *)

open Trait_lang

(* Telemetry handles, resolved once at module init.  Every record below is
   a single branch while the sink is disabled; see lib/telemetry. *)
let c_goals = Telemetry.counter "solver.goals"
let c_cand_env = Telemetry.counter "solver.candidates.param_env"
let c_cand_impl = Telemetry.counter "solver.candidates.impl"
let c_cand_builtin = Telemetry.counter "solver.candidates.builtin"
let c_overflow = Telemetry.counter "solver.overflow"
let c_ambiguous = Telemetry.counter "solver.ambiguous_selection"
let c_normalize = Telemetry.counter "solver.normalizations"
let c_probe_roots = Telemetry.counter "solver.probe_roots"
let sp_goal = Telemetry.span "solver.goal"
let sp_root = Telemetry.span "solver.solve"

type config = {
  depth_limit : int;  (** recursion limit; rustc's default is 128 *)
  enable_builtins : bool;  (** built-in [Fn]/[Sized] candidates *)
  enable_cache : bool;  (** consult/populate the {!Eval_cache} *)
  enable_index : bool;  (** {!Fast_reject} bucket index vs linear scan *)
}

let default_config =
  { depth_limit = 48; enable_builtins = true; enable_cache = true; enable_index = true }

type t = {
  program : Program.t;
  icx : Infer_ctx.t;
  cfg : config;
  env : Predicate.t list;  (** in-scope where-clauses, supertrait-elaborated *)
  cache_ctx : Eval_cache.ctx;  (** evaluation-cache key context *)
  mutable stack : Predicate.t list;  (** in-progress predicates, for cycles *)
}

(** Result of deeply normalizing a type: the rewritten type plus the
    stateful [NormalizesTo] nodes generated along the way. *)
type norm_result = { norm_ty' : Ty.t; norm_nodes : Trace.goal_node list }

(** Result of normalizing one projection. *)
type proj_norm = { norm_ty : Ty.t option; norm_node : Trace.goal_node }

(* ------------------------------------------------------------------ *)
(* Supertrait elaboration: if [τ: T] is in scope and [trait T: Super],
   then [τ: Super] is also usable as a candidate. *)

let elaborate_env program (env : Predicate.t list) : Predicate.t list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec add (p : Predicate.t) =
    let key = Pretty.predicate ~cfg:Pretty.verbose p in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := p :: !out;
      match p with
      | Predicate.Trait { self_ty; trait_ref } -> (
          match Program.find_trait program trait_ref.trait with
          | None -> ()
          | Some tr ->
              let subst =
                let s = Subst.add_ty "Self" self_ty Subst.empty in
                List.fold_left2
                  (fun s param arg ->
                    match arg with Ty.Ty t -> Subst.add_ty param t s | _ -> s)
                  s tr.tr_generics.ty_params
                  (List.filter (function Ty.Ty _ -> true | _ -> false) trait_ref.args)
              in
              List.iter
                (fun super ->
                  add (Predicate.Trait { self_ty; trait_ref = Subst.trait_ref subst super }))
                tr.tr_supertraits)
      | _ -> ()
    end
  in
  List.iter add env;
  List.rev !out

(* The cache context interns the elaborated env; the solver keeps the
   interned list so env candidates and cache keys share structure. *)
let make_state program icx cfg env =
  let cache_ctx =
    Eval_cache.make_ctx ~stamp:(Program.stamp program) ~builtins:cfg.enable_builtins
      ~depth_limit:cfg.depth_limit (elaborate_env program env)
  in
  { program; icx; cfg; env = Eval_cache.ctx_env cache_ctx; cache_ctx; stack = [] }

let create ?(cfg = default_config) ?(env = []) program =
  make_state program (Infer_ctx.for_program program) cfg env

let with_icx ?(cfg = default_config) ?(env = []) program icx =
  make_state program icx cfg env

(* ------------------------------------------------------------------ *)
(* Helpers *)

let leaf ~gid ~depth ~prov ?(flags = []) pred result : Trace.goal_node =
  { gid; pred; result; candidates = []; depth; provenance = prov; flags }

let is_fn_family trait_path =
  match Path.name trait_path with "Fn" | "FnMut" | "FnOnce" -> true | _ -> false

let is_sized trait_path = Path.name trait_path = "Sized"

(** Is the type's head known (not an unresolved inference variable)? *)
let head_known icx ty =
  match Unify.shallow icx ty with Ty.Infer _ -> false | _ -> true

(** Run a candidate-commit re-run with journal emission muted: the
    re-run replays events already journaled during probing, and its
    trace is discarded. *)
let muted f =
  Journal.mute ();
  Fun.protect ~finally:Journal.unmute f

(** The impls worth probing for a goal on [trait_path] with (shallow-
    resolved) self type [self]: head-incompatible impls are fast-
    rejected before any unification.  Both the bucket index and the
    [--no-index] linear scan compute the same list in declaration
    order, so the trace and journal are identical either way. *)
let impl_candidates st (trait_path : Path.t) (self : Ty.t) : Decl.impl list =
  (* Candidate enumeration reads the trait's whole impl set — the
     incremental invalidation unit for impl edits. *)
  Eval_cache.record_dep (Fingerprint.Dep_impls trait_path);
  Fast_reject.candidates
    ~use_index:(st.cfg.enable_index && Fast_reject.enabled ())
    st.program trait_path self

(* ------------------------------------------------------------------ *)
(* The mutually recursive solver core. *)

let rec solve_goal st ~depth prov (pred0 : Predicate.t) : Trace.goal_node =
  Telemetry.incr c_goals;
  let tok = Telemetry.begin_ sp_goal in
  let pred = Infer_ctx.resolve_predicate st.icx pred0 in
  let gid = Journal.fresh_id () in
  Jlog.goal_enter ~id:gid ~depth prov pred;
  let node =
    if depth > st.cfg.depth_limit then begin
      Telemetry.incr c_overflow;
      Jlog.overflow ~id:gid ~depth_limited:true;
      leaf ~gid ~depth ~prov ~flags:[ Trace.Depth_limit; Trace.Overflow ] pred Res.No
    end
    else if cycles st pred then begin
      Telemetry.incr c_overflow;
      Jlog.cycle ~id:gid pred;
      Jlog.overflow ~id:gid ~depth_limited:false;
      leaf ~gid ~depth ~prov ~flags:[ Trace.Overflow ] pred Res.No
    end
    else begin
      let evaluate () =
        st.stack <- pred :: st.stack;
        let node =
          match pred with
          | Predicate.Trait tp -> solve_trait st ~gid ~depth ~prov pred tp
          | Predicate.Projection pp -> solve_projection st ~gid ~depth ~prov pred pp
          | Predicate.TypeOutlives (ty, _) ->
              leaf ~gid ~depth ~prov pred (if Ty.has_infer ty then Res.Maybe else Res.Yes)
          | Predicate.RegionOutlives _ -> leaf ~gid ~depth ~prov pred Res.Yes
          | Predicate.WellFormed ty ->
              leaf ~gid ~depth ~prov pred (if Ty.has_infer ty then Res.Maybe else Res.Yes)
          | Predicate.ObjectSafe _ | Predicate.ConstEvaluatable _ ->
              leaf ~gid ~depth ~prov pred Res.Yes
          | Predicate.NormalizesTo (proj, var) ->
              let n = normalize_proj st ~id:gid ~depth ~prov proj in
              (match n.norm_ty with
              | Some ty when Res.is_yes n.norm_node.result ->
                  (* capture the value into the output variable *)
                  (match Unify.unify st.icx (Ty.Infer var) ty with
                  | Ok () -> ()
                  | Error _ -> ())
              | _ -> ());
              { n.norm_node with provenance = prov; flags = Trace.Stateful :: n.norm_node.flags }
        in
        st.stack <- List.tl st.stack;
        node
      in
      let cacheable =
        st.cfg.enable_cache && Eval_cache.enabled ()
        &&
        match pred with
        | Predicate.Trait _ | Predicate.Projection _ -> not (Predicate.has_infer pred)
        | _ -> false
      in
      if not cacheable then evaluate ()
      else begin
        let key = Eval_cache.tree_key st.cache_ctx pred in
        match Eval_cache.find_tree key ~depth ~stack:st.stack with
        | Some entry ->
            Jlog.cache_hit ~goal:gid ~tier:"tree";
            (* With a journal recording, never short-circuit: the stream
               must contain the same structural events as a cache-off
               run.  (Muted commit re-runs do replay — they emit nothing
               and replay consumes the same IDs/variables/bindings as
               re-evaluation.) *)
            if Journal.enabled () then evaluate ()
            else Eval_cache.replay st.icx ~gid ~depth ~prov entry
        | None ->
            Jlog.cache_miss ~goal:gid ~tier:"tree";
            let frame = Eval_cache.open_frame st.icx ~key ~gid ~depth in
            let node = evaluate () in
            Eval_cache.try_insert st.icx frame node;
            node
      end
    end
  in
  (* the exit event is authoritative for replay: a [NormalizesTo] node's
     predicate and flags are rewritten between enter and exit *)
  Jlog.goal_exit node;
  Telemetry.end_ sp_goal tok;
  node

and cycles st pred =
  match pred with
  | Predicate.Trait _ | Predicate.Projection _ | Predicate.NormalizesTo _ ->
      List.exists (Predicate.equal pred) st.stack
  | _ -> false

(* --- trait predicates --------------------------------------------- *)

and solve_trait st ~gid ~depth ~prov pred (tp : Predicate.trait_pred) : Trace.goal_node =
  let self = Unify.shallow st.icx tp.self_ty in
  match self with
  | Ty.Infer _ ->
      (* Cannot enumerate candidates for an unknown self type: ambiguous.
         The obligation engine will retry once inference progresses. *)
      leaf ~gid ~depth ~prov pred Res.Maybe
  | _ ->
      let env_cands =
        List.filter_map
          (fun envp ->
            match envp with
            | Predicate.Trait etp when Path.equal etp.trait_ref.trait tp.trait_ref.trait ->
                Some (eval_env_candidate st ~goal:gid ~commit:false envp etp tp)
            | _ -> None)
          st.env
      in
      let impl_cands =
        impl_candidates st tp.trait_ref.trait self
        |> List.map (fun impl -> eval_impl_candidate st ~goal:gid ~depth ~commit:false impl tp)
      in
      let builtin_cands =
        if st.cfg.enable_builtins then builtin_candidates st ~goal:gid ~depth ~commit:false tp
        else []
      in
      Telemetry.add c_cand_env (List.length env_cands);
      Telemetry.add c_cand_impl (List.length impl_cands);
      Telemetry.add c_cand_builtin (List.length builtin_cands);
      Jlog.cand_assembled ~goal:gid
        ~param_env:(List.length env_cands)
        ~impls:(List.length impl_cands)
        ~builtin:(List.length builtin_cands);
      let candidates = env_cands @ impl_cands @ builtin_cands in
      select st ~gid ~depth ~prov pred tp candidates

(** Candidate selection: commit a uniquely successful candidate so its
    inference-variable bindings guide the rest of solving. *)
and select st ~gid ~depth ~prov pred tp candidates : Trace.goal_node =
  let yes = List.filter (fun (c : Trace.cand_node) -> Res.is_yes c.cand_result) candidates in
  let env_yes =
    List.filter
      (fun (c : Trace.cand_node) ->
        match c.source with Trace.Cand_param_env _ -> true | _ -> false)
      yes
  in
  let result, flags, to_commit =
    match (env_yes, yes) with
    | c :: _, _ -> (Res.Yes, [], Some c)  (* param-env candidates take priority *)
    | [], [ c ] -> (Res.Yes, [], Some c)
    | [], _ :: _ :: _ ->
        Telemetry.incr c_ambiguous;
        Jlog.ambiguity ~id:gid ~succeeded:(List.length yes);
        (Res.Maybe, [ Trace.Ambiguous_selection ], None)
    | [], [] ->
        if List.exists (fun (c : Trace.cand_node) -> Res.is_maybe c.cand_result) candidates
        then (Res.Maybe, [], None)
        else (Res.No, [], None)
  in
  (match to_commit with
  | Some c ->
      Jlog.cand_commit ~goal:gid ~cand:c.cid;
      muted (fun () -> commit_candidate st ~goal:gid ~depth c tp)
  | None -> ());
  { gid; pred; result; candidates; depth; provenance = prov; flags }

and commit_candidate st ~goal ~depth (c : Trace.cand_node) tp =
  match c.source with
  | Trace.Cand_impl impl -> ignore (eval_impl_candidate st ~goal ~depth ~commit:true impl tp)
  | Trace.Cand_param_env envp -> (
      match envp with
      | Predicate.Trait etp -> ignore (eval_env_candidate st ~goal ~commit:true envp etp tp)
      | _ -> ())
  | Trace.Cand_builtin _ -> ignore (builtin_recommit st ~goal ~depth c tp)

and eval_env_candidate st ~goal ~commit envp (etp : Predicate.trait_pred)
    (tp : Predicate.trait_pred) : Trace.cand_node =
  let cid = Journal.fresh_id () in
  Jlog.cand_enter ~id:cid ~goal (Trace.Cand_param_env envp);
  let snap = Infer_ctx.snapshot st.icx in
  let outcome =
    match Unify.unify st.icx tp.self_ty etp.self_ty with
    | Error f -> Error f
    | Ok () -> Unify.unify_trait_refs st.icx tp.trait_ref etp.trait_ref
  in
  let node : Trace.cand_node =
    match outcome with
    | Ok () ->
        { cid; source = Trace.Cand_param_env envp; cand_result = Res.Yes; subgoals = []; failure = None }
    | Error f ->
        { cid; source = Trace.Cand_param_env envp; cand_result = Res.No; subgoals = []; failure = Some f }
  in
  if commit && Result.is_ok outcome then Infer_ctx.commit st.icx snap
  else Infer_ctx.rollback_to st.icx snap;
  Jlog.cand_exit node;
  node

and eval_impl_candidate st ~goal ~depth ~commit (impl : Decl.impl) (tp : Predicate.trait_pred) :
    Trace.cand_node =
  let cid = Journal.fresh_id () in
  Jlog.cand_enter ~id:cid ~goal (Trace.Cand_impl impl);
  let snap = Infer_ctx.snapshot st.icx in
  let subst = Infer_ctx.instantiate_generics st.icx impl.impl_generics in
  let head_self = Subst.ty subst impl.impl_self in
  let head_trait = Subst.trait_ref subst impl.impl_trait in
  (* Normalize projections on both sides of the head before matching. *)
  let n_self = deep_normalize st ~depth tp.self_ty in
  let n_head = deep_normalize st ~depth head_self in
  let norm_nodes = n_self.norm_nodes @ n_head.norm_nodes in
  let head_outcome =
    match Unify.unify st.icx n_self.norm_ty' n_head.norm_ty' with
    | Error f -> Error ([], f)
    | Ok () -> unify_trait_refs_norm st ~depth tp.trait_ref head_trait
  in
  let node =
    match head_outcome with
    | Error (extra, f) ->
        {
          Trace.cid;
          source = Trace.Cand_impl impl;
          cand_result = Res.No;
          subgoals = norm_nodes @ extra;
          failure = Some f;
        }
    | Ok extra_nodes ->
        let subgoals =
          List.mapi
            (fun idx wc ->
              solve_goal st ~depth:(depth + 1)
                (Trace.Impl_where { impl_id = impl.impl_id; clause_idx = idx })
                (Subst.predicate subst wc))
            impl.impl_generics.where_clauses
        in
        let all = norm_nodes @ extra_nodes @ subgoals in
        let result =
          Res.conj (List.map (fun (g : Trace.goal_node) -> g.result) all)
        in
        { Trace.cid; source = Trace.Cand_impl impl; cand_result = result; subgoals = all; failure = None }
  in
  if commit && Res.is_yes node.cand_result then Infer_ctx.commit st.icx snap
  else Infer_ctx.rollback_to st.icx snap;
  Jlog.cand_exit node;
  node

(** Unify two trait refs, routing projection/rigid clashes through
    normalization.  Returns the normalization nodes generated — on both
    the success and failure paths, since the journal (and the trace)
    must account for every node evaluated before a mismatch. *)
and unify_trait_refs_norm st ~depth (a : Ty.trait_ref) (b : Ty.trait_ref) :
    (Trace.goal_node list, Trace.goal_node list * Unify.failure) result =
  let manual_failure f =
    Jlog.unify_failed st.icx (Ty.Dynamic a) (Ty.Dynamic b) f;
    f
  in
  if not (Path.equal a.trait b.trait) then
    Error ([], manual_failure (Unify.Head_mismatch (Ty.Dynamic a, Ty.Dynamic b)))
  else if List.length a.args <> List.length b.args then
    Error ([], manual_failure (Unify.Arity (Ty.Dynamic a, Ty.Dynamic b)))
  else
    let rec go acc xs ys =
      match (xs, ys) with
      | [], [] -> Ok (List.rev acc)
      | x :: xs, y :: ys -> (
          match (x, y) with
          | Ty.Lifetime _, Ty.Lifetime _ -> go acc xs ys
          | Ty.Ty tx, Ty.Ty ty -> (
              let nx = deep_normalize st ~depth tx in
              let ny = deep_normalize st ~depth ty in
              let acc = List.rev_append ny.norm_nodes (List.rev_append nx.norm_nodes acc) in
              match Unify.unify st.icx nx.norm_ty' ny.norm_ty' with
              | Ok () -> go acc xs ys
              | Error f -> Error (List.rev acc, f))
          | _ ->
              Error (List.rev acc, manual_failure (Unify.Arity (Ty.Dynamic a, Ty.Dynamic b))))
      | _ -> Error (List.rev acc, manual_failure (Unify.Arity (Ty.Dynamic a, Ty.Dynamic b)))
    in
    go [] a.args b.args

(* --- built-in candidates ------------------------------------------- *)

and builtin_candidates st ~goal ~depth ~commit (tp : Predicate.trait_pred) :
    Trace.cand_node list =
  let self = Infer_ctx.resolve st.icx tp.self_ty in
  if is_sized tp.trait_ref.trait then [ builtin_sized ~goal self ]
  else if is_fn_family tp.trait_ref.trait then begin
    match self with
    | Ty.FnPtr (inputs, _) | Ty.FnItem (_, inputs, _) ->
        [ builtin_fn st ~goal ~depth ~commit tp inputs ]
    | _ -> []
  end
  else if Path.name tp.trait_ref.trait = "Tuple" then begin
    match self with
    | Ty.Tuple _ | Ty.Unit ->
        let cid = Journal.fresh_id () in
        Jlog.cand_enter ~id:cid ~goal (Trace.Cand_builtin "tuple");
        let node =
          {
            Trace.cid;
            source = Trace.Cand_builtin "tuple";
            cand_result = Res.Yes;
            subgoals = [];
            failure = None;
          }
        in
        Jlog.cand_exit node;
        [ node ]
    | _ -> []
  end
  else []

and builtin_sized ~goal (self : Ty.t) : Trace.cand_node =
  let cid = Journal.fresh_id () in
  Jlog.cand_enter ~id:cid ~goal (Trace.Cand_builtin "sized");
  let result = match self with Ty.Dynamic _ -> Res.No | _ -> Res.Yes in
  let node : Trace.cand_node =
    { cid; source = Trace.Cand_builtin "sized"; cand_result = result; subgoals = []; failure = None }
  in
  Jlog.cand_exit node;
  node

(** [fn(A, B) -> R] implements [Fn<(A, B)>]; the trait's single type
    argument is the tupled inputs.  Projections in the expected argument
    tuple (e.g. [Fn<(<I as Iterator>::Item,)>]) are normalized first. *)
and builtin_fn st ~goal ~depth ~commit (tp : Predicate.trait_pred) (inputs : Ty.t list) :
    Trace.cand_node =
  let cid = Journal.fresh_id () in
  Jlog.cand_enter ~id:cid ~goal (Trace.Cand_builtin "fn-item");
  let snap = Infer_ctx.snapshot st.icx in
  let expected = Ty.tuple inputs in
  let norm_nodes, outcome =
    match tp.trait_ref.args with
    | [ Ty.Ty args_ty ] ->
        let n = deep_normalize st ~depth args_ty in
        (n.norm_nodes, Unify.unify st.icx n.norm_ty' expected)
    | [] -> ([], Ok ())
    | _ ->
        let f = Unify.Arity (tp.self_ty, expected) in
        Jlog.unify_failed st.icx tp.self_ty expected f;
        ([], Error f)
  in
  let sub_result =
    Res.conj (List.map (fun (g : Trace.goal_node) -> g.result) norm_nodes)
  in
  let node : Trace.cand_node =
    match outcome with
    | Ok () ->
        {
          cid;
          source = Trace.Cand_builtin "fn-item";
          cand_result = sub_result;
          subgoals = norm_nodes;
          failure = None;
        }
    | Error f ->
        {
          cid;
          source = Trace.Cand_builtin "fn-item";
          cand_result = Res.No;
          subgoals = norm_nodes;
          failure = Some f;
        }
  in
  if commit && Res.is_yes node.cand_result then Infer_ctx.commit st.icx snap
  else Infer_ctx.rollback_to st.icx snap;
  Jlog.cand_exit node;
  node

and builtin_recommit st ~goal ~depth (c : Trace.cand_node) (tp : Predicate.trait_pred) : unit =
  ignore depth;
  match c.source with
  | Trace.Cand_builtin "fn-item" -> (
      match Infer_ctx.resolve st.icx tp.self_ty with
      | Ty.FnPtr (inputs, _) | Ty.FnItem (_, inputs, _) ->
          ignore (builtin_fn st ~goal ~depth ~commit:true tp inputs)
      | _ -> ())
  | _ -> ()

(* --- projection predicates ----------------------------------------- *)

and solve_projection st ~gid ~depth ~prov pred (pp : Predicate.proj_pred) : Trace.goal_node =
  let proj = Infer_ctx.resolve_projection st.icx pp.projection in
  if not (head_known st.icx proj.self_ty) then leaf ~gid ~depth ~prov pred Res.Maybe
  else begin
    (* Impl candidates are evaluated first, matching their position in
       the candidate list (and hence the journal's event order). *)
    let impl_cands =
      impl_candidates st proj.proj_trait.trait (Unify.shallow st.icx proj.self_ty)
      |> List.map (fun impl ->
             eval_proj_impl_candidate st ~goal:gid ~depth ~commit:false impl proj pp)
    in
    (* Built-in: <fn-like as Fn<..>>::Output normalizes to the return. *)
    let builtin =
      if is_fn_family proj.proj_trait.trait && proj.assoc = "Output" then
        match Unify.shallow st.icx proj.self_ty with
        | Ty.FnPtr (_, ret) | Ty.FnItem (_, _, ret) ->
            Some (eval_proj_builtin st ~goal:gid ret pp)
        | _ -> None
      else None
    in
    Telemetry.add c_cand_impl (List.length impl_cands);
    Telemetry.add c_cand_builtin (if builtin = None then 0 else 1);
    Jlog.cand_assembled ~goal:gid ~param_env:0
      ~impls:(List.length impl_cands)
      ~builtin:(if builtin = None then 0 else 1);
    let candidates = impl_cands @ Option.to_list builtin in
    let yes = List.filter (fun (c : Trace.cand_node) -> Res.is_yes c.cand_result) candidates in
    let result, flags, to_commit =
      match yes with
      | [ c ] -> (Res.Yes, [], Some c)
      | _ :: _ :: _ ->
          Telemetry.incr c_ambiguous;
          Jlog.ambiguity ~id:gid ~succeeded:(List.length yes);
          (Res.Maybe, [ Trace.Ambiguous_selection ], None)
      | [] ->
          if List.exists (fun (c : Trace.cand_node) -> Res.is_maybe c.cand_result) candidates
          then (Res.Maybe, [], None)
          else (Res.No, [], None)
    in
    (match to_commit with
    | Some ({ source = Trace.Cand_impl impl; _ } as c) ->
        Jlog.cand_commit ~goal:gid ~cand:c.cid;
        muted (fun () ->
            ignore (eval_proj_impl_candidate st ~goal:gid ~depth ~commit:true impl proj pp))
    | Some ({ source = Trace.Cand_builtin _; _ } as c) ->
        Jlog.cand_commit ~goal:gid ~cand:c.cid;
        muted (fun () ->
            match Unify.shallow st.icx proj.self_ty with
            | Ty.FnPtr (_, ret) | Ty.FnItem (_, _, ret) ->
                ignore (Unify.unify st.icx pp.term ret)
            | _ -> ())
    | _ -> ());
    { gid; pred; result; candidates; depth; provenance = prov; flags }
  end

and eval_proj_builtin st ~goal ret (pp : Predicate.proj_pred) : Trace.cand_node =
  let cid = Journal.fresh_id () in
  Jlog.cand_enter ~id:cid ~goal (Trace.Cand_builtin "fn-output");
  let snap = Infer_ctx.snapshot st.icx in
  let outcome = Unify.unify st.icx pp.term ret in
  let node : Trace.cand_node =
    match outcome with
    | Ok () ->
        { cid; source = Trace.Cand_builtin "fn-output"; cand_result = Res.Yes; subgoals = []; failure = None }
    | Error f ->
        { cid; source = Trace.Cand_builtin "fn-output"; cand_result = Res.No; subgoals = []; failure = Some f }
  in
  Infer_ctx.rollback_to st.icx snap;
  Jlog.cand_exit node;
  node

(** A projection candidate: the impl must (1) head-match the projection's
    self type and trait args, (2) satisfy its where-clauses, and (3) have
    its associated-type binding unify with the expected term — a failure
    at step (3) is rustc's E0271 "type mismatch resolving". *)
and eval_proj_impl_candidate st ~goal ~depth ~commit (impl : Decl.impl) (proj : Ty.projection)
    (pp : Predicate.proj_pred) : Trace.cand_node =
  let cid = Journal.fresh_id () in
  Jlog.cand_enter ~id:cid ~goal (Trace.Cand_impl impl);
  let snap = Infer_ctx.snapshot st.icx in
  let subst = Infer_ctx.instantiate_generics st.icx impl.impl_generics in
  let head_self = Subst.ty subst impl.impl_self in
  let head_trait = Subst.trait_ref subst impl.impl_trait in
  let n_self = deep_normalize st ~depth proj.self_ty in
  let head_outcome =
    match Unify.unify st.icx n_self.norm_ty' head_self with
    | Error f -> Error ([], f)
    | Ok () -> unify_trait_refs_norm st ~depth proj.proj_trait head_trait
  in
  let node =
    match head_outcome with
    | Error (extra, f) ->
        {
          Trace.cid;
          source = Trace.Cand_impl impl;
          cand_result = Res.No;
          subgoals = n_self.norm_nodes @ extra;
          failure = Some f;
        }
    | Ok extra -> (
        match binding_of_impl st impl subst proj.assoc with
        | None ->
            let f = Unify.Projection_ambiguous (proj, pp.term) in
            Jlog.unify_failed st.icx (Ty.Proj proj) pp.term f;
            {
              Trace.cid;
              source = Trace.Cand_impl impl;
              cand_result = Res.No;
              subgoals = n_self.norm_nodes @ extra;
              failure = Some f;
            }
        | Some binding_ty ->
            let subgoals =
              List.mapi
                (fun idx wc ->
                  solve_goal st ~depth:(depth + 1)
                    (Trace.Impl_where { impl_id = impl.impl_id; clause_idx = idx })
                    (Subst.predicate subst wc))
                impl.impl_generics.where_clauses
            in
            let n_binding = deep_normalize st ~depth:(depth + 1) binding_ty in
            let term_outcome = Unify.unify st.icx pp.term n_binding.norm_ty' in
            let all = n_self.norm_nodes @ extra @ subgoals @ n_binding.norm_nodes in
            let sub_result = Res.conj (List.map (fun (g : Trace.goal_node) -> g.result) all) in
            (match term_outcome with
            | Ok () ->
                {
                  Trace.cid;
                  source = Trace.Cand_impl impl;
                  cand_result = sub_result;
                  subgoals = all;
                  failure = None;
                }
            | Error f ->
                {
                  Trace.cid;
                  source = Trace.Cand_impl impl;
                  cand_result = Res.No;
                  subgoals = all;
                  failure = Some f;
                }))
  in
  if commit && Res.is_yes node.Trace.cand_result then Infer_ctx.commit st.icx snap
  else Infer_ctx.rollback_to st.icx snap;
  Jlog.cand_exit node;
  node

(** Look up the impl's binding for [assoc], falling back to the trait's
    declared default. *)
and binding_of_impl st (impl : Decl.impl) subst assoc : Ty.t option =
  (* The default-binding fallback reads the trait declaration; recorded
     unconditionally so a trait edit (e.g. adding a default) invalidates
     entries that resolved an assoc type through one of its impls. *)
  Eval_cache.record_dep (Fingerprint.Dep_trait impl.impl_trait.trait);
  match
    List.find_opt (fun (b : Decl.assoc_ty_binding) -> b.bind_name = assoc) impl.impl_assocs
  with
  | Some b -> Some (Subst.ty subst b.bind_ty)
  | None -> (
      match Program.find_trait st.program impl.impl_trait.trait with
      | None -> None
      | Some tr -> (
          match
            List.find_opt (fun (a : Decl.assoc_ty_decl) -> a.assoc_name = assoc) tr.tr_assocs
          with
          | Some { assoc_default = Some d; _ } ->
              (* default may mention Self and the trait's params *)
              let s = Subst.add_ty "Self" (Subst.ty subst impl.impl_self) Subst.empty in
              Some (Subst.ty s (Subst.ty subst d))
          | _ -> None))

(* --- normalization -------------------------------------------------- *)

and deep_normalize st ~depth (ty : Ty.t) : norm_result =
  let nodes = ref [] in
  let rec go depth ty =
    let ty = Infer_ctx.resolve st.icx ty in
    match (ty : Ty.t) with
    | Unit | Bool | Int | Uint | Float | Str | Param _ | Infer _ -> ty
    | Ref (r, t) -> Ref (r, go depth t)
    | RefMut (r, t) -> RefMut (r, go depth t)
    | Ctor (p, args) -> Ctor (p, List.map (go_arg depth) args)
    | Tuple ts -> Tuple (List.map (go depth) ts)
    | FnPtr (args, ret) -> FnPtr (List.map (go depth) args, go depth ret)
    | FnItem (p, args, ret) -> FnItem (p, List.map (go depth) args, go depth ret)
    | Dynamic tr -> Dynamic { tr with args = List.map (go_arg depth) tr.args }
    | Proj p ->
        let p = { p with self_ty = go depth p.self_ty } in
        if depth > st.cfg.depth_limit then begin
          Telemetry.incr c_overflow;
          let fresh = Infer_ctx.fresh st.icx in
          let gid = Journal.fresh_id () in
          let pred = Predicate.NormalizesTo (p, fresh) in
          Jlog.goal_enter ~id:gid ~depth Trace.Normalization pred;
          Jlog.overflow ~id:gid ~depth_limited:true;
          let node =
            leaf ~gid ~depth ~prov:Trace.Normalization
              ~flags:[ Trace.Stateful; Trace.Depth_limit; Trace.Overflow ]
              pred Res.No
          in
          Jlog.goal_exit node;
          nodes := !nodes @ [ node ];
          Proj p
        end
        else begin
          let n = normalize_proj st ~depth ~prov:Trace.Normalization p in
          nodes := !nodes @ [ n.norm_node ];
          match n.norm_ty with Some t -> go (depth + 1) t | None -> Proj p
        end
  and go_arg depth : Ty.arg -> Ty.arg = function
    | Ty.Ty t -> Ty.Ty (go depth t)
    | Ty.Lifetime _ as l -> l
  in
  let norm_ty' = go depth ty in
  { norm_ty'; norm_nodes = !nodes }

(** Normalize one projection.  When [id] is supplied the caller
    ({!solve_goal} on a [NormalizesTo] predicate) already opened the
    journal goal frame and will close it with the wrapped node; without
    it (the {!deep_normalize} path) this function owns the frame. *)
and normalize_proj st ?id ~depth ~prov (proj : Ty.projection) : proj_norm =
  Telemetry.incr c_normalize;
  let fresh = Infer_ctx.fresh st.icx in
  let pred = Predicate.NormalizesTo (proj, fresh) in
  let gid, ambient =
    match id with Some g -> (g, true) | None -> (Journal.fresh_id (), false)
  in
  if not ambient then Jlog.goal_enter ~id:gid ~depth prov pred;
  let finish (out : proj_norm) =
    Jlog.norm_resolved ~id:gid out.norm_ty;
    if not ambient then Jlog.goal_exit out.norm_node;
    out
  in
  if not (head_known st.icx proj.self_ty) then
    finish
      { norm_ty = None; norm_node = leaf ~gid ~depth ~prov ~flags:[ Trace.Stateful ] pred Res.Maybe }
  else if cycles st pred then begin
    Telemetry.incr c_overflow;
    Jlog.cycle ~id:gid pred;
    Jlog.overflow ~id:gid ~depth_limited:false;
    finish
      {
        norm_ty = None;
        norm_node = leaf ~gid ~depth ~prov ~flags:[ Trace.Stateful; Trace.Overflow ] pred Res.No;
      }
  end
  else begin
    st.stack <- pred :: st.stack;
    (* Built-in Fn::Output *)
    let result =
      if is_fn_family proj.proj_trait.trait && proj.assoc = "Output" then
        match Unify.shallow st.icx proj.self_ty with
        | Ty.FnPtr (_, ret) | Ty.FnItem (_, _, ret) ->
            let cid = Journal.fresh_id () in
            Jlog.cand_enter ~id:cid ~goal:gid (Trace.Cand_builtin "fn-output");
            let cand : Trace.cand_node =
              {
                cid;
                source = Trace.Cand_builtin "fn-output";
                cand_result = Res.Yes;
                subgoals = [];
                failure = None;
              }
            in
            Jlog.cand_exit cand;
            Some
              {
                norm_ty = Some ret;
                norm_node =
                  {
                    gid;
                    pred;
                    result = Res.Yes;
                    candidates = [ cand ];
                    depth;
                    provenance = prov;
                    flags = [ Trace.Stateful ];
                  };
              }
        | _ -> None
      else None
    in
    let out =
      match result with
      | Some r -> r
      | None -> normalize_via_impls st ~gid ~depth ~prov pred proj
    in
    st.stack <- List.tl st.stack;
    finish out
  end

and normalize_via_impls st ~gid ~depth ~prov pred (proj : Ty.projection) : proj_norm =
  let impls = impl_candidates st proj.proj_trait.trait (Unify.shallow st.icx proj.self_ty) in
  (* Probe which impls head-match.  The substitution of a successful
     probe is kept: rollback unbinds the fresh variables it allocated
     but leaves them allocated, so a uniquely matching impl can be
     committed by re-unifying under the same substitution instead of
     instantiating its generics a second time. *)
  let probe impl =
    let snap = Infer_ctx.snapshot st.icx in
    let subst = Infer_ctx.instantiate_generics st.icx impl.Decl.impl_generics in
    let ok =
      (match Unify.unify st.icx proj.self_ty (Subst.ty subst impl.impl_self) with
      | Ok () ->
          Result.is_ok
            (Unify.unify_trait_refs st.icx proj.proj_trait
               (Subst.trait_ref subst impl.impl_trait))
      | Error _ -> false)
    in
    Infer_ctx.rollback_to st.icx snap;
    if ok then Some (impl, subst) else None
  in
  match List.filter_map probe impls with
  | [] ->
      {
        norm_ty = None;
        norm_node =
          {
            gid;
            pred;
            result = Res.No;
            candidates = [];
            depth;
            provenance = prov;
            flags = [ Trace.Stateful ];
          };
      }
  | _ :: _ :: _ as matching ->
      (* more than one possible impl: stuck until inference decides *)
      Telemetry.incr c_ambiguous;
      Jlog.ambiguity ~id:gid ~succeeded:(List.length matching);
      {
        norm_ty = None;
        norm_node =
          leaf ~gid ~depth ~prov ~flags:[ Trace.Stateful; Trace.Ambiguous_selection ] pred
            Res.Maybe;
      }
  | [ (impl, subst) ] ->
      (* Commit the unique impl: unify heads for real under the probe's
         substitution, then solve its where-clauses as the node's
         subtree. *)
      let cid = Journal.fresh_id () in
      Jlog.cand_enter ~id:cid ~goal:gid (Trace.Cand_impl impl);
      let _ = Unify.unify st.icx proj.self_ty (Subst.ty subst impl.impl_self) in
      let _ =
        Unify.unify_trait_refs st.icx proj.proj_trait (Subst.trait_ref subst impl.impl_trait)
      in
      let subgoals =
        List.mapi
          (fun idx wc ->
            solve_goal st ~depth:(depth + 1)
              (Trace.Impl_where { impl_id = impl.impl_id; clause_idx = idx })
              (Subst.predicate subst wc))
          impl.impl_generics.where_clauses
      in
      let sub_result = Res.conj (List.map (fun (g : Trace.goal_node) -> g.result) subgoals) in
      let binding = binding_of_impl st impl subst proj.assoc in
      let cand : Trace.cand_node =
        {
          cid;
          source = Trace.Cand_impl impl;
          cand_result = sub_result;
          subgoals;
          failure = None;
        }
      in
      Jlog.cand_exit cand;
      let node : Trace.goal_node =
        {
          gid;
          pred;
          result = (if binding = None then Res.No else sub_result);
          candidates = [ cand ];
          depth;
          provenance = prov;
          flags = [ Trace.Stateful ];
        }
      in
      { norm_ty = binding; norm_node = node }

(* ------------------------------------------------------------------ *)

(** Solve a single predicate as a root goal. *)
let solve st ?(origin = "this expression") ?(span = Span.dummy) pred =
  let tok = Telemetry.begin_ sp_root in
  let node = solve_goal st ~depth:0 (Trace.Root { origin; span }) pred in
  Telemetry.end_ sp_root tok;
  node

(** Evaluate a predicate for its verdict only, through the result tier
    of the evaluation cache.  Contract: [st] must be quiescent — empty
    evaluation stack, and an inference context whose unresolved
    variables are unconstrained (a freshly created solver qualifies) —
    since a cached verdict stands for evaluation from exactly that
    state.  Coherence well-formedness checks and speculative probes
    consume this; callers needing the proof tree use {!solve}. *)
let evaluate st ?(origin = "evaluate") ?(span = Span.dummy) pred : Res.t =
  assert (st.stack = []);
  let run_full () = (solve st ~origin ~span pred).result in
  if not (st.cfg.enable_cache && Eval_cache.enabled ()) then run_full ()
  else begin
    let key = Eval_cache.result_key st.cache_ctx (Canonical.canonicalize st.icx pred) in
    match Eval_cache.find_result key with
    | Some r ->
        Jlog.cache_hit ~goal:(Journal.peek_id ()) ~tier:"result";
        (* observe-only under a journal, as in [solve_goal] *)
        if Journal.enabled () then run_full () else r
    | None ->
        Jlog.cache_miss ~goal:(Journal.peek_id ()) ~tier:"result";
        Eval_cache.push_dep_scope ();
        let node =
          match solve st ~origin ~span pred with
          | node -> node
          | exception e ->
              ignore (Eval_cache.pop_dep_scope ());
              raise e
        in
        let deps = Eval_cache.pop_dep_scope () in
        let clean =
          Trace.fold_goals (fun acc g -> acc && not (Trace.is_overflow g)) true node
        in
        if clean then Eval_cache.insert_result ~deps key node.result;
        node.result
  end

(** Speculative probing (§4): method resolution asks the solver a
    sequence of *soft* predicates — "does the receiver implement
    [ToString]?  If not, [CustomToString]?" — committing only the first
    success.  All predicates evaluated before (and including) the chosen
    one are returned; the failing ones are flagged [Speculative] so the
    extraction layer can hide them, exactly the heuristic the paper
    describes ("Argus uses a heuristic to reverse-engineer the predicates
    evaluated in a program and attempts to show as few as possible").

    Returns the trace nodes in evaluation order and the index of the
    committed predicate, if any. *)
let solve_probe st ?(origin = "method resolution") ?(span = Span.dummy)
    (alternatives : Predicate.t list) : Trace.goal_node list * int option =
  Jlog.probe_begin ~origin ~alternatives:(List.length alternatives);
  let rec go idx acc = function
    | [] ->
        Jlog.probe_end ~committed:None;
        (List.rev acc, None)
    | pred :: rest ->
        Telemetry.incr c_probe_roots;
        let snap = Infer_ctx.snapshot st.icx in
        let node = solve_goal st ~depth:0 (Trace.Root { origin; span }) pred in
        if Res.is_yes node.result then begin
          Infer_ctx.commit st.icx snap;
          Jlog.probe_end ~committed:(Some idx);
          (List.rev (node :: acc), Some idx)
        end
        else begin
          Infer_ctx.rollback_to st.icx snap;
          (* the flag is stamped after the goal already exited; replay
             applies it post-hoc, exactly as we do here *)
          Jlog.goal_flag ~id:node.gid Trace.Speculative;
          let node = { node with flags = Trace.Speculative :: node.flags } in
          go (idx + 1) (node :: acc) rest
        end
  in
  go 0 [] alternatives
