(** An incremental solving session: [load → edit → resolve → query].

    Feeding the session successive program versions revalidates the
    shared evaluation cache across each edit instead of discarding it —
    {!Trait_lang.Fingerprint.diff} classifies the edit, {!Eval_cache.rebase}
    evicts exactly the entries that consulted a dirty declaration (the
    rest survive with their program stamp re-keyed), and
    {!Fast_reject.rebase} carries built candidate indexes over.
    {!resolve} then runs an ordinary full solve in which unaffected
    goals replay bit-identically from the cache, so an incremental
    re-solve produces byte-identical reports, proof trees, and
    diagnostics to a from-scratch run (the [incremental] fuzz oracle
    checks exactly this).

    Sessions solve with an empty where-clause environment; program
    {e goal} edits are free (goals are inputs, not cached context).
    Telemetry: [incr.evicted], [incr.survived], [incr.rebased],
    [incr.resolves]. *)

open Trait_lang

type t

(** What one edit did to the cached state. *)
type delta = {
  d_changed : int;  (** declarations changed/added/removed *)
  d_evicted : int;  (** cache entries invalidated (red) *)
  d_survived : int;  (** cache entries re-keyed to the new stamp (green) *)
  d_rebased : int;  (** fast-reject trait indexes carried over *)
}

val no_delta : delta
val create : ?cfg:Solve.config -> unit -> t

(** Replace the session's program, revalidating cached state against the
    previous version (a no-op delta on first load). *)
val edit : t -> Program.t -> delta

(** Alias of {!edit} — reads as intent at the call site. *)
val load : t -> Program.t -> delta

(** Re-solve the current program's goals (full fixpoint; green subtrees
    replay from the cache).  @raise Invalid_argument before any load. *)
val resolve : t -> Obligations.report

val program : t -> Program.t option
val report : t -> Obligations.report option
val last_delta : t -> delta
val errors : t -> Obligations.goal_report list
