(** First-order unification of L_TRAIT types under an inference context.

    Universally quantified parameters ([Ty.Param]) are rigid: they unify
    only with themselves.  Projections unify structurally against other
    projections; mixing a projection with a rigid constructor is reported
    as [Projection_ambiguous] so the caller ({!Solve}) can route the pair
    through normalization instead. *)

open Trait_lang

type failure =
  | Head_mismatch of Ty.t * Ty.t  (** different rigid constructors *)
  | Arity of Ty.t * Ty.t
  | Region_mismatch of Region.t * Region.t
  | Occurs of int * Ty.t  (** [?i] occurs in the type it would bind to *)
  | Projection_ambiguous of Ty.projection * Ty.t
      (** a projection met a non-projection; needs normalization *)

type 'a result = ('a, failure) Stdlib.result

let failure_to_string ?(cfg = Pretty.default) = function
  | Head_mismatch (a, b) ->
      Printf.sprintf "expected `%s`, found `%s`" (Pretty.ty ~cfg a) (Pretty.ty ~cfg b)
  | Arity (a, b) ->
      Printf.sprintf "`%s` and `%s` differ in arity" (Pretty.ty ~cfg a) (Pretty.ty ~cfg b)
  | Region_mismatch (a, b) ->
      Printf.sprintf "lifetime mismatch: `%s` vs `%s`" (Region.to_string a)
        (Region.to_string b)
  | Occurs (i, t) ->
      Printf.sprintf "cyclic type: ?%d occurs in `%s`" i (Pretty.ty ~cfg t)
  | Projection_ambiguous (p, t) ->
      Printf.sprintf "cannot relate `%s` to `%s` without normalizing"
        (Pretty.projection ~cfg p) (Pretty.ty ~cfg t)

let to_journal : failure -> Journal.unify_failure = function
  | Head_mismatch (a, b) -> Journal.Head_mismatch (a, b)
  | Arity (a, b) -> Journal.Arity (a, b)
  | Region_mismatch (a, b) -> Journal.Region_mismatch (a, b)
  | Occurs (i, t) -> Journal.Occurs (i, t)
  | Projection_ambiguous (p, t) -> Journal.Projection_ambiguous (p, t)

let ( let* ) = Result.bind

(* Telemetry: one "attempt" per top-level unification operation (a call
   through the public entry points below), not per structural recursion —
   that is the number rustc's own `-Zself-profile` style counters report
   and what the candidate-assembly cost scales with. *)
let c_attempts = Telemetry.counter "unify.attempts"
let c_failures = Telemetry.counter "unify.failures"

(* Regions are unified coarsely: named regions must match, [Erased] and
   inference regions unify with anything (the trait solver never fails on
   regions alone; the borrow checker owns that, and the paper's model
   explicitly abstracts it). *)
let unify_region (a : Region.t) (b : Region.t) : unit result =
  match (a, b) with
  | Region.Erased, _ | _, Region.Erased | Region.Infer _, _ | _, Region.Infer _ -> Ok ()
  | _ -> if Region.equal a b then Ok () else Error (Region_mismatch (a, b))

let rec unify (icx : Infer_ctx.t) (a : Ty.t) (b : Ty.t) : unit result =
  let a = shallow icx a and b = shallow icx b in
  match (a, b) with
  | Ty.Infer i, Ty.Infer j -> if Infer_ctx.root icx i = Infer_ctx.root icx j then Ok ()
      else Ok (Infer_ctx.link icx i j)
  | Ty.Infer i, other | other, Ty.Infer i ->
      let other = Infer_ctx.resolve icx other in
      if Ty.mentions_infer (Infer_ctx.root icx i) other then Error (Occurs (i, other))
      else Ok (Infer_ctx.bind icx i other)
  | Ty.Unit, Ty.Unit | Ty.Bool, Ty.Bool | Ty.Int, Ty.Int | Ty.Uint, Ty.Uint
  | Ty.Float, Ty.Float | Ty.Str, Ty.Str ->
      Ok ()
  | Ty.Param x, Ty.Param y when String.equal x y -> Ok ()
  | Ty.Ref (r1, t1), Ty.Ref (r2, t2) | Ty.RefMut (r1, t1), Ty.RefMut (r2, t2) ->
      let* () = unify_region r1 r2 in
      unify icx t1 t2
  | Ty.Ctor (p1, a1), Ty.Ctor (p2, a2) ->
      if not (Path.equal p1 p2) then Error (Head_mismatch (a, b))
      else unify_args icx a b a1 a2
  | Ty.Tuple t1, Ty.Tuple t2 ->
      if List.length t1 <> List.length t2 then Error (Arity (a, b))
      else unify_list icx t1 t2
  | Ty.FnPtr (a1, r1), Ty.FnPtr (a2, r2) ->
      if List.length a1 <> List.length a2 then Error (Arity (a, b))
      else
        let* () = unify_list icx a1 a2 in
        unify icx r1 r2
  | Ty.FnItem (p1, a1, r1), Ty.FnItem (p2, a2, r2) ->
      if not (Path.equal p1 p2) then Error (Head_mismatch (a, b))
      else if List.length a1 <> List.length a2 then Error (Arity (a, b))
      else
        let* () = unify_list icx a1 a2 in
        unify icx r1 r2
  | Ty.Dynamic tr1, Ty.Dynamic tr2 ->
      if not (Path.equal tr1.trait tr2.trait) then Error (Head_mismatch (a, b))
      else unify_args icx a b tr1.args tr2.args
  | Ty.Proj p1, Ty.Proj p2 ->
      if
        Path.equal p1.proj_trait.trait p2.proj_trait.trait
        && String.equal p1.assoc p2.assoc
      then
        let* () = unify icx p1.self_ty p2.self_ty in
        let* () = unify_args icx a b p1.proj_trait.args p2.proj_trait.args in
        unify_args icx a b p1.assoc_args p2.assoc_args
      else Error (Projection_ambiguous (p1, b))
  | Ty.Proj p, other -> Error (Projection_ambiguous (p, other))
  | other, Ty.Proj p -> Error (Projection_ambiguous (p, other))
  | _ -> Error (Head_mismatch (a, b))

and unify_list icx xs ys =
  List.fold_left2 (fun acc x y -> let* () = acc in unify icx x y) (Ok ()) xs ys

and unify_args icx a b (xs : Ty.arg list) (ys : Ty.arg list) : unit result =
  if List.length xs <> List.length ys then Error (Arity (a, b))
  else
    List.fold_left2
      (fun acc x y ->
        let* () = acc in
        match (x, y) with
        | Ty.Ty tx, Ty.Ty ty -> unify icx tx ty
        | Ty.Lifetime rx, Ty.Lifetime ry -> unify_region rx ry
        | _ -> Error (Arity (a, b)))
      (Ok ()) xs ys

(** Resolve just the head of a type: follow inference-variable bindings
    one level without deep resolution. *)
and shallow icx (t : Ty.t) : Ty.t =
  match t with
  | Ty.Infer i -> (
      match Infer_ctx.probe icx i with Some t' -> shallow icx t' | None -> t)
  | _ -> t

(* Journal: one event per top-level unification operation, carrying the
   operand types (resolved against the context) and the structured
   failure, attached to the innermost open goal/candidate. *)
let journal_attempt icx a b (r : unit result) =
  if Journal.enabled () then
    Journal.emit
      (Journal.Unify
         {
           node = Journal.current_node ();
           left = Infer_ctx.resolve icx a;
           right = Infer_ctx.resolve icx b;
           failure = (match r with Ok () -> None | Error f -> Some (to_journal f));
         })

(* Counting wrapper around the recursive core: shadows [unify] so every
   caller (including [can_unify] below and the whole solver) is counted,
   while structural recursion inside the core stays free. *)
let unify icx a b =
  Telemetry.incr c_attempts;
  let r = unify icx a b in
  (match r with Error _ -> Telemetry.incr c_failures | Ok () -> ());
  journal_attempt icx a b r;
  r

let unify_trait_refs icx (a : Ty.trait_ref) (b : Ty.trait_ref) : unit result =
  Telemetry.incr c_attempts;
  let r =
    if not (Path.equal a.trait b.trait) then
      Error (Head_mismatch (Ty.Dynamic a, Ty.Dynamic b))
    else unify_args icx (Ty.Dynamic a) (Ty.Dynamic b) a.args b.args
  in
  (match r with Error _ -> Telemetry.incr c_failures | Ok () -> ());
  journal_attempt icx (Ty.Dynamic a) (Ty.Dynamic b) r;
  r

(** Can [a] and [b] possibly unify?  Probes under a snapshot and rolls
    back regardless of the outcome. *)
let can_unify icx a b =
  let snap = Infer_ctx.snapshot icx in
  let r = unify icx a b in
  Infer_ctx.rollback_to icx snap;
  Result.is_ok r
