(** Goal canonicalization, à la rustc's canonical queries.

    Two subgoals that differ only in {e which} fresh inference variables
    they mention are the same query: [Vec<?7>: Clone] under one solver
    run and [Vec<?19>: Clone] under another must map to one evaluation
    cache key.  Canonicalization resolves a predicate against the
    inference context (replacing bound variables by their values) and
    renumbers the remaining unresolved variables by first appearance,
    [?0, ?1, ...], yielding a context-independent form that is then
    hash-consed ({!Trait_lang.Interner}) so the cache can compare keys by
    pointer.

    The same variable-renumbering machinery, run with an offset instead
    of a first-appearance map, is how {!Eval_cache} shifts a memoized
    proof subtree into a new solver's variable space ({!shift_ty} /
    {!shift_predicate}). *)

open Trait_lang

(* Sharing-preserving inference-variable renaming: the input term comes
   back physically unchanged when [f] fixes every variable in it — the
   common case, since most goal terms are ground. *)

let map_sharing f l =
  let changed = ref false in
  let l' =
    List.map
      (fun x ->
        let y = f x in
        if y != x then changed := true;
        y)
      l
  in
  if !changed then l' else l

let rec map_ty f (t : Ty.t) : Ty.t =
  match t with
  | Unit | Bool | Int | Uint | Float | Str | Param _ -> t
  | Infer v ->
      let v' = f v in
      if v' = v then t else Infer v'
  | Ref (r, t') ->
      let t2 = map_ty f t' in
      if t2 == t' then t else Ref (r, t2)
  | RefMut (r, t') ->
      let t2 = map_ty f t' in
      if t2 == t' then t else RefMut (r, t2)
  | Ctor (p, args) ->
      let args' = map_sharing (map_arg f) args in
      if args' == args then t else Ctor (p, args')
  | Tuple ts ->
      let ts' = map_sharing (map_ty f) ts in
      if ts' == ts then t else Tuple ts'
  | FnPtr (args, ret) ->
      let args' = map_sharing (map_ty f) args and ret' = map_ty f ret in
      if args' == args && ret' == ret then t else FnPtr (args', ret')
  | FnItem (p, args, ret) ->
      let args' = map_sharing (map_ty f) args and ret' = map_ty f ret in
      if args' == args && ret' == ret then t else FnItem (p, args', ret')
  | Dynamic tr ->
      let tr' = map_trait_ref f tr in
      if tr' == tr then t else Dynamic tr'
  | Proj p ->
      let p' = map_projection f p in
      if p' == p then t else Proj p'

and map_arg f (a : Ty.arg) : Ty.arg =
  match a with
  | Ty t ->
      let t' = map_ty f t in
      if t' == t then a else Ty t'
  | Lifetime _ -> a

and map_trait_ref f (tr : Ty.trait_ref) : Ty.trait_ref =
  let args' = map_sharing (map_arg f) tr.args in
  if args' == tr.args then tr else { tr with args = args' }

and map_projection f (p : Ty.projection) : Ty.projection =
  let self_ty' = map_ty f p.self_ty
  and proj_trait' = map_trait_ref f p.proj_trait
  and assoc_args' = map_sharing (map_arg f) p.assoc_args in
  if self_ty' == p.self_ty && proj_trait' == p.proj_trait && assoc_args' == p.assoc_args
  then p
  else { p with self_ty = self_ty'; proj_trait = proj_trait'; assoc_args = assoc_args' }

let map_predicate f (p : Predicate.t) : Predicate.t =
  match p with
  | Trait { self_ty; trait_ref } ->
      let self_ty' = map_ty f self_ty and trait_ref' = map_trait_ref f trait_ref in
      if self_ty' == self_ty && trait_ref' == trait_ref then p
      else Trait { self_ty = self_ty'; trait_ref = trait_ref' }
  | Projection { projection; term } ->
      let projection' = map_projection f projection and term' = map_ty f term in
      if projection' == projection && term' == term then p
      else Projection { projection = projection'; term = term' }
  | TypeOutlives (t, r) ->
      let t' = map_ty f t in
      if t' == t then p else TypeOutlives (t', r)
  | RegionOutlives _ | ObjectSafe _ | ConstEvaluatable _ -> p
  | WellFormed t ->
      let t' = map_ty f t in
      if t' == t then p else WellFormed t'
  | NormalizesTo (pr, v) ->
      let pr' = map_projection f pr and v' = f v in
      if pr' == pr && v' = v then p else NormalizesTo (pr', v')

(* ------------------------------------------------------------------ *)
(* Canonicalization *)

type canonical = {
  c_pred : Predicate.t;  (** interned; variables renumbered 0..c_vars-1 *)
  c_vars : int;  (** distinct unresolved inference variables *)
}

(** Canonicalize a predicate that the caller has already resolved against
    the inference context. *)
let canonicalize_resolved (pred : Predicate.t) : canonical =
  if not (Predicate.has_infer pred) then
    { c_pred = Interner.predicate pred; c_vars = 0 }
  else begin
    let mapping = Hashtbl.create 8 in
    let next = ref 0 in
    let renumber v =
      match Hashtbl.find_opt mapping v with
      | Some v' -> v'
      | None ->
          let v' = !next in
          incr next;
          Hashtbl.add mapping v v';
          v'
    in
    let pred' = map_predicate renumber pred in
    { c_pred = Interner.predicate pred'; c_vars = !next }
  end

let canonicalize icx (pred : Predicate.t) : canonical =
  canonicalize_resolved (Infer_ctx.resolve_predicate icx pred)

(* ------------------------------------------------------------------ *)
(* Variable shifting (memoized-subtree replay) *)

let shift v ~start ~delta = if v >= start then v + delta else v

let shift_ty ~start ~delta t =
  if delta = 0 then t else map_ty (shift ~start ~delta) t

let shift_predicate ~start ~delta p =
  if delta = 0 then p else map_predicate (shift ~start ~delta) p

let shift_projection ~start ~delta pr =
  if delta = 0 then pr else map_projection (shift ~start ~delta) pr
