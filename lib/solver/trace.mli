(** The raw trait-inference trace: the AND/OR tree of Fig. 5.

    G ⟶ p × \{C̄\} × R (predicate evaluation); C ⟶ impl × \{Ḡ\} × R
    (candidate evaluation).  A predicate succeeds if one candidate does;
    a candidate succeeds if all its nested predicates do.  Unlike the
    idealized tree Argus visualizes, the raw trace keeps the §4 warts —
    stateful normalization nodes, speculative predicates, overflow
    markers — for {!Argus.Extract} to clean up. *)

open Trait_lang

(** Where a subgoal came from — the CtxtLinks auxiliary data. *)
type provenance =
  | Root of { origin : string; span : Span.t }
  | Impl_where of { impl_id : int; clause_idx : int }
  | Param_env of int
  | Supertrait of Path.t
  | Builtin_req of string
  | Normalization

type flag =
  | Overflow  (** E0275: cyclic requirement *)
  | Depth_limit
  | Stateful  (** a [NormalizesTo] node: value captured after its subtree *)
  | Speculative  (** probing predicate from method resolution *)
  | Ambiguous_selection  (** several candidates succeeded *)

type goal_node = {
  gid : int;  (** stable journal node ID ({!Journal.fresh_id}) *)
  pred : Predicate.t;  (** resolved as of evaluation start *)
  result : Res.t;
  candidates : cand_node list;
  depth : int;
  provenance : provenance;
  flags : flag list;
}

and cand_source =
  | Cand_impl of Decl.impl
  | Cand_param_env of Predicate.t
  | Cand_builtin of string  (** e.g. "fn-item", "sized", "tuple" *)

and cand_node = {
  cid : int;  (** stable journal node ID ({!Journal.fresh_id}) *)
  source : cand_source;
  cand_result : Res.t;
  subgoals : goal_node list;
  failure : Unify.failure option;
      (** head or associated-type-term mismatch, when rejected outright *)
}

val has_flag : flag -> goal_node -> bool
val is_overflow : goal_node -> bool

(** Total goal-node count (the Fig. 12b size metric). *)
val size : goal_node -> int

val depth_of : goal_node -> int
val fold_goals : ('a -> goal_node -> 'a) -> 'a -> goal_node -> 'a

(** Failed goals with no failing sub-structure — the raw form of the
    bottom-up view's roots. *)
val failed_leaves : goal_node -> goal_node list

val cand_source_name : cand_source -> string
