(** Bridge between the solver's types and the search journal.

    {!Journal} sits below the solver, so its payload types mirror
    {!Trace} / {!Unify} structurally; this module owns the conversions
    and the emission helpers the solver calls.  Every helper is guarded
    by [Journal.enabled ()], keeping the disabled path at one load +
    branch per call site and allocation-free. *)

open Trait_lang

let res_of : Res.t -> Journal.res = function
  | Res.Yes -> Journal.Yes
  | Res.Maybe -> Journal.Maybe
  | Res.No -> Journal.No

let flag_of : Trace.flag -> Journal.flag = function
  | Trace.Overflow -> Journal.Overflow
  | Trace.Depth_limit -> Journal.Depth_limit
  | Trace.Stateful -> Journal.Stateful
  | Trace.Speculative -> Journal.Speculative
  | Trace.Ambiguous_selection -> Journal.Ambiguous_selection

let prov_of : Trace.provenance -> Journal.prov = function
  | Trace.Root { origin; span } -> Journal.Root { origin; span }
  | Trace.Impl_where { impl_id; clause_idx } -> Journal.Impl_where { impl_id; clause_idx }
  | Trace.Param_env i -> Journal.Param_env i
  | Trace.Supertrait p -> Journal.Supertrait p
  | Trace.Builtin_req s -> Journal.Builtin_req s
  | Trace.Normalization -> Journal.Normalization

let source_of : Trace.cand_source -> Journal.source = function
  | Trace.Cand_impl impl ->
      Journal.Impl
        {
          impl_id = impl.Decl.impl_id;
          header = Pretty.impl_header ~cfg:Pretty.expanded impl;
        }
  | Trace.Cand_param_env p -> Journal.Param_env_clause p
  | Trace.Cand_builtin b -> Journal.Builtin b

let failure_of : Unify.failure -> Journal.unify_failure = Unify.to_journal

(* ------------------------------------------------------------------ *)
(* Emission helpers.  Guarded so that conversion work only happens with
   a sink installed. *)

let goal_enter ~id ~depth (prov : Trace.provenance) (pred : Predicate.t) =
  if Journal.enabled () then
    Journal.emit
      (Journal.Goal_enter
         { id; parent = Journal.current_node (); pred; depth; prov = prov_of prov })

let goal_exit (g : Trace.goal_node) =
  if Journal.enabled () then
    Journal.emit
      (Journal.Goal_exit
         {
           id = g.gid;
           pred = g.pred;
           result = res_of g.result;
           flags = List.map flag_of g.flags;
         })

let goal_flag ~id (f : Trace.flag) =
  if Journal.enabled () then Journal.emit (Journal.Goal_flag { id; flag = flag_of f })

let cand_enter ~id ~goal (src : Trace.cand_source) =
  if Journal.enabled () then
    Journal.emit (Journal.Cand_enter { id; goal; source = source_of src })

let cand_exit (c : Trace.cand_node) =
  if Journal.enabled () then
    Journal.emit
      (Journal.Cand_exit
         {
           id = c.cid;
           result = res_of c.cand_result;
           failure = Option.map failure_of c.failure;
         })

let cand_assembled ~goal ~param_env ~impls ~builtin =
  if Journal.enabled () then
    Journal.emit (Journal.Cand_assembled { goal; param_env; impls; builtin })

let cand_commit ~goal ~cand =
  if Journal.enabled () then Journal.emit (Journal.Cand_commit { goal; cand })

let cycle ~id (pred : Predicate.t) =
  if Journal.enabled () then Journal.emit (Journal.Cycle_detected { id; pred })

let overflow ~id ~depth_limited =
  if Journal.enabled () then Journal.emit (Journal.Overflow_hit { id; depth_limited })

let ambiguity ~id ~succeeded =
  if Journal.enabled () then Journal.emit (Journal.Ambiguity { id; succeeded })

let norm_resolved ~id (resolved : Ty.t option) =
  if Journal.enabled () then Journal.emit (Journal.Norm_resolved { id; resolved })

let cache_hit ~goal ~tier =
  if Journal.enabled () then Journal.emit (Journal.Cache_hit { goal; tier })

let cache_miss ~goal ~tier =
  if Journal.enabled () then Journal.emit (Journal.Cache_miss { goal; tier })

let probe_begin ~origin ~alternatives =
  if Journal.enabled () then Journal.emit (Journal.Probe_begin { origin; alternatives })

let probe_end ~committed =
  if Journal.enabled () then Journal.emit (Journal.Probe_end { committed })

(** A unification failure constructed by the solver itself (head/arity
    checks and missing associated-type bindings short-circuit before
    reaching {!Unify.unify}); journaled here so every rejected candidate
    still has its rejecting unification event. *)
let unify_failed icx (left : Ty.t) (right : Ty.t) (f : Unify.failure) =
  if Journal.enabled () then
    Journal.emit
      (Journal.Unify
         {
           node = Journal.current_node ();
           left = Infer_ctx.resolve icx left;
           right = Infer_ctx.resolve icx right;
           failure = Some (failure_of f);
         })

(* ------------------------------------------------------------------ *)
(* The replay-validator bridge: a direct trace tree, converted to the
   journal's replay representation for structural comparison. *)

let rec rtree_of_trace (g : Trace.goal_node) : Journal.rgoal =
  {
    Journal.rg_id = g.gid;
    rg_pred = g.pred;
    rg_depth = g.depth;
    rg_prov = prov_of g.provenance;
    rg_result = res_of g.result;
    rg_flags = List.map flag_of g.flags;
    rg_cands = List.map rcand_of_trace g.candidates;
    rg_unify = [];
  }

and rcand_of_trace (c : Trace.cand_node) : Journal.rcand =
  {
    Journal.rc_id = c.cid;
    rc_source = source_of c.source;
    rc_result = res_of c.cand_result;
    rc_failure = Option.map failure_of c.failure;
    rc_subgoals = List.map rtree_of_trace c.subgoals;
    rc_unify = [];
  }
