(* An incremental solving session: load a program once, then feed it
   edited versions and re-solve, reusing every cache entry the edit
   provably did not touch (red-green revalidation).

   The pieces, in edit order:
   - {!Trait_lang.Fingerprint.diff} classifies old→new into dirty
     invalidation keys;
   - {!Eval_cache.rebase} walks the reverse index, evicts exactly the
     entries that consulted a dirty declaration, and re-keys the rest
     under the new program stamp;
   - {!Fast_reject.rebase} carries built trait indexes over, dropping
     only traits whose impl set changed;
   - {!resolve} then runs an ordinary full solve: green goals resolve
     through a single root tree-tier hit (a bit-identical replay), red
     goals re-evaluate.  Byte-identity with a from-scratch solve follows
     from the cache's replay contract — there is no separate incremental
     result path to trust.

   Sessions always solve with an empty where-clause environment: the
   param-env is part of the cache key but its elaboration consults trait
   declarations outside any dep scope, so a non-empty env would not be
   revalidated soundly. *)

open Trait_lang

let c_resolves = Telemetry.counter "incr.resolves"

type delta = {
  d_changed : int;  (** declarations the differ classified as changed *)
  d_evicted : int;  (** cache entries invalidated (red) *)
  d_survived : int;  (** cache entries re-keyed to the new stamp (green) *)
  d_rebased : int;  (** fast-reject trait indexes carried over *)
}

let no_delta = { d_changed = 0; d_evicted = 0; d_survived = 0; d_rebased = 0 }

type t = {
  cfg : Solve.config;
  mutable program : Program.t option;
  mutable report : Obligations.report option;
  mutable last_delta : delta;
}

let create ?(cfg = Solve.default_config) () =
  { cfg; program = None; report = None; last_delta = no_delta }

let ctx_of cfg program =
  Eval_cache.make_ctx ~stamp:(Program.stamp program) ~builtins:cfg.Solve.enable_builtins
    ~depth_limit:cfg.Solve.depth_limit []

let edit t (next : Program.t) : delta =
  let delta =
    match t.program with
    | None -> no_delta
    | Some old_program when Program.stamp old_program = Program.stamp next ->
        (* Same declaration context (e.g. a goal-only edit): every cache
           entry is already keyed correctly. *)
        no_delta
    | Some old_program ->
        let diff = Fingerprint.diff ~old_program ~new_program:next in
        let rb =
          Eval_cache.rebase ~old_ctx:(ctx_of t.cfg old_program) ~new_ctx:(ctx_of t.cfg next)
            ~dirty:diff.Fingerprint.dirty
        in
        let rebased =
          Fast_reject.rebase ~old_stamp:(Program.stamp old_program)
            ~new_stamp:(Program.stamp next) ~dirty_traits:diff.Fingerprint.dirty_traits
        in
        {
          d_changed = diff.Fingerprint.changed_decls;
          d_evicted = rb.Eval_cache.rb_evicted;
          d_survived = rb.Eval_cache.rb_survived;
          d_rebased = rebased;
        }
  in
  t.program <- Some next;
  t.report <- None;
  t.last_delta <- delta;
  delta

let load = edit

(** Re-solve the current program.  Resets the journal-ID and snapshot
    counters first so the gid stream matches a from-scratch run — cache
    replay then reproduces it bit-for-bit.  The installed journal sink
    (if any) is left in place, so a session server can record the
    resolve through {!Journal.with_memory_sink}. *)
let resolve t : Obligations.report =
  match t.program with
  | None -> invalid_arg "Session.resolve: no program loaded"
  | Some program ->
      Telemetry.incr c_resolves;
      Eval_cache.reset_dep_scopes ();
      Journal.reset_ids ();
      Infer_ctx.reset_snapshot_serial ();
      let report = Obligations.solve_program ~cfg:t.cfg program in
      t.report <- Some report;
      report

let program t = t.program
let report t = t.report
let last_delta t = t.last_delta
let errors t = match t.report with None -> [] | Some r -> Obligations.errors r
