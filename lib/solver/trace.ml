(** The raw trait-inference trace: the AND/OR tree of Fig. 5.

    G ⟶ p × {C̄} × R   (predicate evaluation)
    C ⟶ impl × {Ḡ} × R (candidate evaluation)

    A predicate evaluation succeeds if one of its candidates succeeds,
    which in turn succeeds if all of its nested predicates succeed.

    Unlike the idealized tree the paper visualizes, the raw trace keeps the
    warts of §4: stateful normalization nodes, speculative predicates, and
    overflow markers.  The [Argus.Extract] pass cleans these up. *)

open Trait_lang

(** Where a subgoal came from — the CtxtLinks auxiliary data. *)
type provenance =
  | Root of { origin : string; span : Span.t }
      (** a top-level obligation from the user's code *)
  | Impl_where of { impl_id : int; clause_idx : int }
      (** the [clause_idx]-th where-clause of impl [impl_id] *)
  | Param_env of int  (** the n-th in-scope where-clause *)
  | Supertrait of Path.t
  | Builtin_req of string  (** requirement of a built-in impl *)
  | Normalization  (** generated while normalizing a projection *)

type flag =
  | Overflow  (** E0275: cyclic requirement *)
  | Depth_limit  (** recursion limit reached *)
  | Stateful  (** a [NormalizesTo] node: value captured after its subtree *)
  | Speculative  (** probing predicate from method resolution *)
  | Ambiguous_selection  (** several candidates succeeded *)

type goal_node = {
  gid : int;  (** stable journal node ID ({!Journal.fresh_id}) *)
  pred : Predicate.t;  (** resolved as of evaluation start *)
  result : Res.t;
  candidates : cand_node list;
  depth : int;
  provenance : provenance;
  flags : flag list;
}

and cand_source =
  | Cand_impl of Decl.impl
  | Cand_param_env of Predicate.t  (** an in-scope where-clause *)
  | Cand_builtin of string  (** e.g. "fn-pointer", "tuple", "sized" *)

and cand_node = {
  cid : int;  (** stable journal node ID ({!Journal.fresh_id}) *)
  source : cand_source;
  cand_result : Res.t;
  subgoals : goal_node list;
  failure : Unify.failure option;
      (** why this candidate was rejected before/after its subgoals:
          head mismatch or associated-type term mismatch *)
}

let has_flag f (g : goal_node) = List.mem f g.flags

let is_overflow g = has_flag Overflow g || has_flag Depth_limit g

(** Total number of goal nodes in the tree (the paper's Fig. 12b measures
    tree size in nodes). *)
let rec size (g : goal_node) =
  1 + List.fold_left (fun acc c -> acc + List.fold_left (fun a s -> a + size s) 0 c.subgoals) 0 g.candidates

let rec depth_of (g : goal_node) =
  1
  + List.fold_left
      (fun acc c -> List.fold_left (fun a s -> max a (depth_of s)) acc c.subgoals)
      0 g.candidates

(** Pre-order fold over all goal nodes. *)
let rec fold_goals f acc (g : goal_node) =
  let acc = f acc g in
  List.fold_left (fun acc c -> List.fold_left (fold_goals f) acc c.subgoals) acc g.candidates

(** All failing leaves: failed goals with no failing sub-structure —
    the "innermost failed predicates" of the bottom-up view. *)
let failed_leaves (g : goal_node) =
  fold_goals
    (fun acc node ->
      match node.result with
      | Res.No | Res.Maybe ->
          let has_failing_child =
            List.exists
              (fun c ->
                (not (Res.is_yes c.cand_result))
                && List.exists (fun s -> not (Res.is_yes s.result)) c.subgoals)
              node.candidates
          in
          if has_failing_child then acc else node :: acc
      | Res.Yes -> acc)
    [] g
  |> List.rev

let cand_source_name = function
  | Cand_impl _ -> "impl"
  | Cand_param_env _ -> "where-clause"
  | Cand_builtin b -> "builtin:" ^ b
