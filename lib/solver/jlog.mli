(** Bridge between the solver's types and the search {!Journal}:
    type conversions, guarded emission helpers, and the replay-validator
    conversion from direct trace trees. *)

open Trait_lang

(** {1 Conversions} *)

val res_of : Res.t -> Journal.res
val flag_of : Trace.flag -> Journal.flag
val prov_of : Trace.provenance -> Journal.prov
val source_of : Trace.cand_source -> Journal.source
val failure_of : Unify.failure -> Journal.unify_failure

(** {1 Emission helpers (no-ops while the journal is disabled)} *)

val goal_enter : id:int -> depth:int -> Trace.provenance -> Predicate.t -> unit
val goal_exit : Trace.goal_node -> unit
val goal_flag : id:int -> Trace.flag -> unit
val cand_enter : id:int -> goal:int -> Trace.cand_source -> unit
val cand_exit : Trace.cand_node -> unit
val cand_assembled : goal:int -> param_env:int -> impls:int -> builtin:int -> unit
val cand_commit : goal:int -> cand:int -> unit
val cycle : id:int -> Predicate.t -> unit
val overflow : id:int -> depth_limited:bool -> unit
val ambiguity : id:int -> succeeded:int -> unit
val norm_resolved : id:int -> Ty.t option -> unit

(** Evaluation-cache outcome for goal [goal]; [tier] is ["tree"] or
    ["result"].  With a journal recording, a hit never short-circuits
    evaluation (observe-only), so structural events are unchanged. *)
val cache_hit : goal:int -> tier:string -> unit

val cache_miss : goal:int -> tier:string -> unit
val probe_begin : origin:string -> alternatives:int -> unit
val probe_end : committed:int option -> unit

(** Journal a solver-constructed unification failure (one that
    short-circuited before reaching {!Unify.unify}). *)
val unify_failed : Infer_ctx.t -> Ty.t -> Ty.t -> Unify.failure -> unit

(** {1 Replay bridge} *)

(** Convert a direct trace tree for comparison against
    {!Journal.replay}'s output. *)
val rtree_of_trace : Trace.goal_node -> Journal.rgoal

val rcand_of_trace : Trace.cand_node -> Journal.rcand
