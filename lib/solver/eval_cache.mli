(** The global trait-solver evaluation cache (see the implementation
    header for the full design and cycle-safety argument).

    Two tiers, both keyed by a solver context (program stamp +
    elaborated param-env + config) and an interned predicate:

    - {b tree tier}: memoized proof-tree fragments for ground
      [Trait]/[Projection] goals, replayed bit-identically (journal IDs,
      inference variables, bindings);
    - {b result tier}: bare verdicts for canonicalized goals evaluated
      from an empty stack ({!Solve.evaluate}).

    The cache is shared across domains, sharded by canonical key hash
    with one mutex per shard; lookups and inserts are safe to call from
    parallel batch workers.  [cache.shard.contention] counts lock
    acquisitions that had to wait. *)

open Trait_lang

(** {1 Global switches} *)

(** Disable ([--no-cache]) or re-enable both tiers; when disabled,
    lookups miss silently (without counting) and inserts are dropped. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Empty both tiers (tests, and telemetry-isolation runs). *)
val clear : unit -> unit

type stats = { cs_tree : int; cs_result : int }

val stats : unit -> stats

(** {1 Keys} *)

(** Everything an evaluation's outcome depends on besides the goal
    itself.  Built once per solver in {!Solve.create}. *)
type ctx

val make_ctx : stamp:int -> builtins:bool -> depth_limit:int -> Predicate.t list -> ctx

(** The interned elaborated param-env the context was built from — the
    solver reuses it so env candidates share interned predicates. *)
val ctx_env : ctx -> Predicate.t list

type key

(** Key for a {e ground} goal (tree tier). *)
val tree_key : ctx -> Predicate.t -> key

(** Key for a canonicalized goal (result tier). *)
val result_key : ctx -> Canonical.canonical -> key

(** {1 Tree tier} *)

type tree_entry

val find_tree : key -> depth:int -> stack:Predicate.t list -> tree_entry option

(** Per-goal capture of what the evaluation is about to consume; open
    right before dispatching, pass to {!try_insert} after. *)
type frame

val open_frame : Infer_ctx.t -> key:key -> gid:int -> depth:int -> frame

(** Validate and store a finished evaluation; a no-op for subtrees whose
    behavior is stack- or limit-dependent, or that touched pre-existing
    inference variables. *)
val try_insert : Infer_ctx.t -> frame -> Trace.goal_node -> unit

(** Reconstruct the exact post-evaluation solver state (journal-ID
    range, fresh variables, bindings) and return the restamped
    subtree. *)
val replay :
  Infer_ctx.t -> gid:int -> depth:int -> prov:Trace.provenance -> tree_entry -> Trace.goal_node

(** {1 Result tier} *)

val find_result : key -> Res.t option
val insert_result : ?deps:Fingerprint.dep list -> key -> Res.t -> unit

(** {1 Declaration dependencies}

    Every cache entry records which declarations its evaluation
    consulted, keyed by the differ's invalidation units
    ({!Trait_lang.Fingerprint.dep}).  The solver opens a scope per
    cacheable evaluation ({!open_frame} pushes, {!try_insert} pops) and
    calls {!record_dep} wherever it reads the program; hits re-record
    the stored deps so enclosing evaluations inherit them. *)

type dep = Fingerprint.dep

(** Record a declaration consultation into the innermost open scope
    (no-op outside any scope, e.g. with the cache disabled). *)
val record_dep : dep -> unit

(** Open an explicit scope (used by {!Solve.evaluate} around result-tier
    evaluations, and available to tests). *)
val push_dep_scope : unit -> unit

val pop_dep_scope : unit -> dep list

(** Drop scopes orphaned by exception unwinds (sound but leaky);
    {!Session} calls this before each resolve. *)
val reset_dep_scopes : unit -> unit

(** {1 Incremental rebase}

    Red-green revalidation across an edit: evict exactly the entries
    that consulted a dirty declaration (via the per-shard reverse index
    decl→entries), re-key every other entry of [old_ctx] under
    [new_ctx].  Bumps the [incr.evicted] / [incr.survived] telemetry
    counters. *)

type rebase_stats = { rb_evicted : int; rb_survived : int }

val rebase : old_ctx:ctx -> new_ctx:ctx -> dirty:dep list -> rebase_stats
