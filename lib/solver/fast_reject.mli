(** Simplified-self-type fast-reject index for impl candidate assembly.

    rustc prunes the impl set for a trait goal by "fast reject": the
    self type is collapsed to a {e simplified type} — its head
    constructor — and impls whose (simplified) self-type head cannot
    possibly unify with the goal's are never probed.  This module does
    the same for L_TRAIT, in two interchangeable forms:

    {ul
    {- a {b per-goal linear scan} ([--no-index]) computing the
       head-compatibility relation impl by impl, and}
    {- a {b per-program, per-trait bucket index} built lazily on first
       lookup, keyed by the program's {!Program.stamp} (like the
       evaluation cache) so it is shared across the domain pool and
       invalidated wholesale when a new program supersedes it.}}

    Both forms return the {e same impl list in declaration order}, so
    solver output is byte-identical with the index on or off — the
    index is purely a sublinear data structure over the scan's
    semantics, and the [index] fuzz oracle checks exactly that.

    Soundness is by construction: a simplified head is [None]
    ("matches everything") whenever unification could see through it —
    inference variables, projections awaiting normalization, and impl
    self types headed by a generic parameter (blanket impls, whose
    instantiated head is a fresh inference variable).  Rejection only
    happens between two {e rigid} heads that {!Unify.unify} is
    guaranteed to fail on. *)

open Trait_lang

(** The head constructor of a type, as far as unification can tell
    without looking deeper.  Mirrors the rigid cases of {!Unify.unify}:
    constructors and fn items by path, tuples and fn pointers by arity,
    [&]/[&mut] and the primitives by tag, trait objects by trait,
    parameters by name (rigid: they unify only with themselves). *)
type simplified =
  | S_unit
  | S_bool
  | S_int
  | S_uint
  | S_float
  | S_str
  | S_adt of Path.t
  | S_tuple of int
  | S_ref
  | S_ref_mut
  | S_fn_ptr of int
  | S_fn_item of Path.t
  | S_dyn of Path.t
  | S_param of string

val equal_simplified : simplified -> simplified -> bool
val simplified_to_string : simplified -> string

(** Simplify a goal self type (shallow-resolved by the caller).
    [None] — an inference variable or unnormalized projection — matches
    every impl. *)
val simplify_goal : Ty.t -> simplified option

(** Simplify an impl's declared self type.  [None] — a generic
    parameter (blanket impl) or projection head — matches every goal. *)
val simplify_impl : Decl.impl -> simplified option

(** Can a goal with simplified head [goal] possibly unify with an impl
    of simplified head [impl]?  Wildcards ([None]) match everything. *)
val compatible : simplified option -> simplified option -> bool

(** The candidate impls of [trait_] whose self-type head is compatible
    with goal self type [self], in declaration order.  [use_index]
    selects the prebuilt bucket index; [false] performs the linear
    scan.  Both gather [index.{hits,rejects,wildcard}] telemetry. *)
val candidates : use_index:bool -> Program.t -> Path.t -> Ty.t -> Decl.impl list

(** {2 Global switch}

    Mirrors {!Eval_cache.set_enabled}: the CLI's [--no-index] routes
    every lookup through the linear scan. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {2 Invalidation} *)

(** Drop every built index. *)
val clear : unit -> unit

(** Drop the index for one program stamp (watch-mode hook). *)
val invalidate : stamp:int -> unit

(** Incremental rebase: carry [old_stamp]'s built trait indexes over to
    [new_stamp], dropping exactly the traits whose impl set the edit
    changed (they rebuild lazily on next lookup).  Returns the number of
    trait indexes carried over; bumps the [incr.rebased] counter. *)
val rebase : old_stamp:int -> new_stamp:int -> dirty_traits:Path.Set.t -> int

(** {2 Introspection (tests, stats)} *)

(** Forced index-path lookup. *)
val lookup : Program.t -> Path.t -> Ty.t -> Decl.impl list

(** Forced linear-scan lookup. *)
val scan : Program.t -> Path.t -> Ty.t -> Decl.impl list

(** (distinct head buckets, wildcard impls) of a trait's built index. *)
val bucket_stats : Program.t -> Path.t -> int * int
