(** First-order unification of L_TRAIT types under an inference context.

    Universally quantified parameters are rigid; projections unify
    structurally against other projections, while a projection meeting a
    rigid constructor reports [Projection_ambiguous] so {!Solve} can
    route the pair through normalization. *)

open Trait_lang

type failure =
  | Head_mismatch of Ty.t * Ty.t  (** different rigid constructors *)
  | Arity of Ty.t * Ty.t
  | Region_mismatch of Region.t * Region.t
  | Occurs of int * Ty.t  (** [?i] occurs in the type it would bind to *)
  | Projection_ambiguous of Ty.projection * Ty.t
      (** a projection met a non-projection; needs normalization *)

type 'a result = ('a, failure) Stdlib.result

val failure_to_string : ?cfg:Pretty.config -> failure -> string

(** The journal's structural mirror of [failure]. *)
val to_journal : failure -> Journal.unify_failure

(** Unify two regions.  Erased and inference regions unify with anything;
    the trait solver never fails on regions alone. *)
val unify_region : Region.t -> Region.t -> unit result

(** Unify two types, binding inference variables in the context.  On
    failure, bindings already made are {e not} undone — callers wrap
    candidate probes in {!Infer_ctx.snapshot}. *)
val unify : Infer_ctx.t -> Ty.t -> Ty.t -> unit result

(** Resolve just the head of a type (follow bindings one level). *)
val shallow : Infer_ctx.t -> Ty.t -> Ty.t

val unify_trait_refs : Infer_ctx.t -> Ty.trait_ref -> Ty.trait_ref -> unit result

(** Probe unifiability under a snapshot; always rolls back. *)
val can_unify : Infer_ctx.t -> Ty.t -> Ty.t -> bool
