(** The trait solver: given a context and a predicate, produce the trait
    inference tree 𝒢 (Fig. 5).

    Mirrors rustc's solver at the level of detail the paper depends on:
    candidate assembly from param-env / impls / built-ins, speculative
    probing under snapshots with unique-success commit (how solving
    guides inference — the §2.3 marker deduction), projection
    normalization through stateful [NormalizesTo] nodes (§4), and
    cycle/depth overflow (E0275, §2.2). *)

open Trait_lang

type config = {
  depth_limit : int;  (** recursion limit; rustc defaults to 128 *)
  enable_builtins : bool;  (** built-in [Fn]/[Sized]/tuple candidates *)
  enable_cache : bool;  (** consult/populate the {!Eval_cache} *)
  enable_index : bool;
      (** assemble impl candidates through the {!Fast_reject} bucket
          index; [false] falls back to an equivalent linear scan *)
}

val default_config : config

type t = {
  program : Program.t;
  icx : Infer_ctx.t;
  cfg : config;
  env : Predicate.t list;  (** in-scope where-clauses, supertrait-elaborated *)
  cache_ctx : Eval_cache.ctx;  (** evaluation-cache key context *)
  mutable stack : Predicate.t list;  (** in-progress predicates, for cycles *)
}

(** Close a where-clause environment under supertraits. *)
val elaborate_env : Program.t -> Predicate.t list -> Predicate.t list

val create : ?cfg:config -> ?env:Predicate.t list -> Program.t -> t

(** Like {!create}, sharing an existing inference context. *)
val with_icx : ?cfg:config -> ?env:Predicate.t list -> Program.t -> Infer_ctx.t -> t

(** Solve a single predicate as a root goal.  Bindings made by committed
    candidates persist in [t]'s inference context. *)
val solve : t -> ?origin:string -> ?span:Span.t -> Predicate.t -> Trace.goal_node

(** Evaluate a predicate for its verdict only, through the result tier
    of the evaluation cache.  Contract: empty evaluation stack and an
    unconstrained inference context (a fresh solver qualifies). *)
val evaluate : t -> ?origin:string -> ?span:Span.t -> Predicate.t -> Res.t

(** Speculative probing (§4): evaluate soft alternatives in order,
    committing the first success; earlier failures are flagged
    [Speculative].  Returns the nodes in evaluation order and the index
    of the committed alternative, if any. *)
val solve_probe :
  t ->
  ?origin:string ->
  ?span:Span.t ->
  Predicate.t list ->
  Trace.goal_node list * int option
