(** The inference context: a growable union-find table of type inference
    variables with an undo log for snapshot/rollback.

    Candidate probing is speculative — the solver tries a candidate under a
    snapshot and rolls back unless the candidate is committed — exactly the
    discipline rustc's [InferCtxt] uses. *)

open Trait_lang

type binding = Unbound | Link of int | Bound of Ty.t

(* Telemetry: speculative-probing traffic.  The snapshot/rollback ratio is
   the "candidates probed vs committed" cost profile of §4. *)
let c_snapshots = Telemetry.counter "infer.snapshots"
let c_rollbacks = Telemetry.counter "infer.rollbacks"
let c_commits = Telemetry.counter "infer.commits"
let c_fresh = Telemetry.counter "infer.fresh_vars"

type undo = Set of int  (** variable [i] went from [Unbound] to something *)

type t = {
  mutable table : binding array;
  mutable len : int;
  mutable undo_log : undo list;
  mutable undo_len : int;  (** [List.length undo_log], maintained *)
  mutable snapshots : int list;  (** undo-log lengths at open snapshots *)
}

let create ?(first_var = 0) () =
  let n = max 16 (first_var * 2) in
  {
    table = Array.make n Unbound;
    len = first_var;
    undo_log = [];
    undo_len = 0;
    snapshots = [];
  }

(** Create a context whose fresh variables start above every inference
    variable mentioned in the program's goals (the parser numbers [_]
    holes from 0). *)
let for_program (p : Program.t) =
  let max_var =
    List.fold_left
      (fun acc (g : Program.goal) ->
        List.fold_left max acc (Predicate.infer_vars g.goal_pred))
      (-1) (Program.goals p)
  in
  create ~first_var:(max_var + 1) ()

let ensure_capacity t i =
  if i >= Array.length t.table then begin
    let table = Array.make (max (2 * Array.length t.table) (i + 1)) Unbound in
    Array.blit t.table 0 table 0 t.len;
    t.table <- table
  end;
  if i >= t.len then t.len <- i + 1

let fresh t =
  Telemetry.incr c_fresh;
  let i = t.len in
  ensure_capacity t i;
  i

let fresh_ty t = Ty.Infer (fresh t)

let num_vars t = t.len

(* --- snapshots ------------------------------------------------------ *)

type snapshot = {
  mark : int;  (** length of the undo log when opened *)
  serial : int;  (** globally unique, for journal correlation *)
}

(* Serials are per-domain rather than per-context so a journal stream
   interleaving several inference contexts still has unambiguous
   snapshot IDs; domain-local state keeps parallel batch units race-free
   and — with the batch driver resetting per unit — deterministic. *)
let snap_serial : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let snapshot_serial () = !(Domain.DLS.get snap_serial)
let reset_snapshot_serial () = Domain.DLS.get snap_serial := 0

let snapshot t : snapshot =
  Telemetry.incr c_snapshots;
  let mark = t.undo_len in
  t.snapshots <- mark :: t.snapshots;
  let counter = Domain.DLS.get snap_serial in
  incr counter;
  let serial = !counter in
  if Journal.enabled () then
    Journal.emit (Journal.Snapshot_open { snap = serial; node = Journal.current_node () });
  { mark; serial }

let rollback_to t ({ mark; serial } : snapshot) =
  Telemetry.incr c_rollbacks;
  if Journal.enabled () then Journal.emit (Journal.Snapshot_rollback { snap = serial });
  let rec pop log n = if n <= mark then log else match log with
    | Set i :: rest ->
        t.table.(i) <- Unbound;
        pop rest (n - 1)
    | [] -> []
  in
  t.undo_log <- pop t.undo_log t.undo_len;
  t.undo_len <- min t.undo_len mark;
  t.snapshots <- List.filter (fun m -> m < mark) t.snapshots

(** Commit: simply forget the snapshot; bindings stay. *)
let commit t ({ mark; serial } : snapshot) =
  Telemetry.incr c_commits;
  if Journal.enabled () then Journal.emit (Journal.Snapshot_commit { snap = serial });
  t.snapshots <- List.filter (fun m -> m < mark) t.snapshots

(* --- resolution ------------------------------------------------------ *)

(** Follow links to the representative of variable [i]. *)
let rec root t i =
  ensure_capacity t i;
  match t.table.(i) with Link j -> root t j | _ -> i

let probe t i =
  let r = root t i in
  match t.table.(r) with Bound ty -> Some ty | _ -> None

let bind t i ty =
  let r = root t i in
  assert (t.table.(r) = Unbound);
  t.table.(r) <- Bound ty;
  t.undo_log <- Set r :: t.undo_log;
  t.undo_len <- t.undo_len + 1

let link t i j =
  let ri = root t i and rj = root t j in
  if ri <> rj then begin
    assert (t.table.(ri) = Unbound);
    t.table.(ri) <- Link rj;
    t.undo_log <- Set ri :: t.undo_log;
    t.undo_len <- t.undo_len + 1
  end

(* --- raw slot access (evaluation-cache replay) ----------------------- *)

(* The evaluation cache replicates the exact table state a memoized
   evaluation would have produced: it captures the slots of the variable
   range the evaluation allocated and, on a hit, re-allocates the range
   and writes the (renumbered) slots back, undo-logged like any binding
   so enclosing snapshots roll them back correctly. *)

let alloc_vars t n =
  let first = t.len in
  for _ = 1 to n do
    ignore (fresh t)
  done;
  first

let slot t i =
  ensure_capacity t i;
  t.table.(i)

let set_slot t i (b : binding) =
  match b with
  | Unbound -> ()
  | Link _ | Bound _ ->
      ensure_capacity t i;
      assert (t.table.(i) = Unbound);
      t.table.(i) <- b;
      t.undo_log <- Set i :: t.undo_log;
      t.undo_len <- t.undo_len + 1

let undo_mark t = t.undo_len

(** Variables set (and not since rolled back) after undo mark [mark],
    oldest first. *)
let sets_since t mark =
  let rec go acc log n =
    if n <= mark then acc
    else match log with Set i :: rest -> go (i :: acc) rest (n - 1) | [] -> acc
  in
  go [] t.undo_log t.undo_len

(** Structurally resolve a type: replace every bound inference variable by
    its (recursively resolved) value. *)
let rec resolve t (ty : Ty.t) : Ty.t =
  match ty with
  | Unit | Bool | Int | Uint | Float | Str | Param _ -> ty
  | Infer i -> (
      let r = root t i in
      match t.table.(r) with
      | Bound b -> resolve t b
      | _ -> if r = i then ty else Infer r)
  | Ref (re, t') -> Ref (re, resolve t t')
  | RefMut (re, t') -> RefMut (re, resolve t t')
  | Ctor (p, args) -> Ctor (p, List.map (resolve_arg t) args)
  | Tuple ts -> Tuple (List.map (resolve t) ts)
  | FnPtr (args, ret) -> FnPtr (List.map (resolve t) args, resolve t ret)
  | FnItem (p, args, ret) -> FnItem (p, List.map (resolve t) args, resolve t ret)
  | Dynamic tr -> Dynamic (resolve_trait_ref t tr)
  | Proj p -> Proj (resolve_projection t p)

and resolve_arg t : Ty.arg -> Ty.arg = function
  | Ty ty -> Ty (resolve t ty)
  | Lifetime _ as l -> l

and resolve_trait_ref t (tr : Ty.trait_ref) : Ty.trait_ref =
  { tr with args = List.map (resolve_arg t) tr.args }

and resolve_projection t (p : Ty.projection) : Ty.projection =
  {
    p with
    self_ty = resolve t p.self_ty;
    proj_trait = resolve_trait_ref t p.proj_trait;
    assoc_args = List.map (resolve_arg t) p.assoc_args;
  }

let resolve_predicate t (p : Predicate.t) : Predicate.t =
  match p with
  | Trait { self_ty; trait_ref } ->
      Trait { self_ty = resolve t self_ty; trait_ref = resolve_trait_ref t trait_ref }
  | Projection { projection; term } ->
      Projection { projection = resolve_projection t projection; term = resolve t term }
  | TypeOutlives (ty, r) -> TypeOutlives (resolve t ty, r)
  | RegionOutlives _ | ObjectSafe _ | ConstEvaluatable _ -> p
  | WellFormed ty -> WellFormed (resolve t ty)
  | NormalizesTo (pr, v) -> NormalizesTo (resolve_projection t pr, v)

(** Instantiate a declaration's generics with fresh inference variables,
    returning the substitution. *)
let instantiate_generics t (g : Trait_lang.Decl.generics) : Subst.t =
  let s =
    List.fold_left (fun s p -> Subst.add_ty p (fresh_ty t) s) Subst.empty g.ty_params
  in
  List.fold_left (fun s l -> Subst.add_region l Region.Erased s) s g.lifetimes
