(** The obligation engine: fixpoint solving of a program's root goals.

    §4 of the paper: "Solving predicates happens in a fixpoint; ambiguous
    predicates remain in the trait solver queue until they are proved true
    or false, or until inference finishes, at which point all ambiguous
    predicates become failures.  [...] predicates re-entered into the trait
    solving queue are represented as new predicates.  This means that Argus
    sees all snapshots of a predicate's evolution."

    We reproduce that reality: each goal's [attempts] list holds every
    round's trace tree (a "snapshot of the predicate's evolution"), and the
    extraction layer applies the implication heuristic to drop the earlier,
    more general snapshots. *)

open Trait_lang

let sp_fixpoint = Telemetry.span "solver.fixpoint"
let c_rounds = Telemetry.counter "obligations.rounds"
let c_pending_hwm = Telemetry.counter "obligations.pending.hwm"

type status =
  | Proved  (** final result yes *)
  | Disproved  (** final result no — a hard trait error *)
  | Ambiguous  (** still maybe when inference finished — also an error *)

type goal_report = {
  goal : Program.goal;
  attempts : Trace.goal_node list;  (** one tree per solving round, oldest first *)
  final : Trace.goal_node;
  status : status;
}

type report = {
  reports : goal_report list;
  rounds : int;  (** fixpoint iterations used *)
  solver : Solve.t;  (** retains the inference context for resolution *)
}

let status_of_result : Res.t -> status = function
  | Res.Yes -> Proved
  | Res.No -> Disproved
  | Res.Maybe -> Ambiguous

(** Did this round make inference progress?  Detected by watching the
    number of bound inference variables grow. *)
let bound_count (icx : Infer_ctx.t) =
  let n = ref 0 in
  for i = 0 to Infer_ctx.num_vars icx - 1 do
    if Infer_ctx.probe icx i <> None then incr n
  done;
  !n

(** Solve [goals] to fixpoint on an existing solver state — the reusable
    core of {!solve_program}, also driven by the type checker, whose
    obligations are emitted incrementally during inference (§4). *)
let solve_goals ?(max_rounds = 8) (st : Solve.t) (goals : Program.goal list) :
    goal_report list * int =
  (* pending: goals not yet definitively answered *)
  let attempts = Hashtbl.create 8 in
  let finals : (int, Trace.goal_node) Hashtbl.t = Hashtbl.create 8 in
  let record i node =
    Hashtbl.replace attempts i (node :: Option.value ~default:[] (Hashtbl.find_opt attempts i))
  in
  let pending = ref (List.mapi (fun i g -> (i, g)) goals) in
  let rounds = ref 0 in
  let continue_ = ref (!pending <> []) in
  let tok = Telemetry.begin_ sp_fixpoint in
  while !continue_ do
    incr rounds;
    Telemetry.incr c_rounds;
    Telemetry.record_max c_pending_hwm (List.length !pending);
    let before = bound_count st.icx in
    let still_pending = ref [] in
    List.iter
      (fun (i, (g : Program.goal)) ->
        let node = Solve.solve st ~origin:g.goal_origin ~span:g.goal_span g.goal_pred in
        record i node;
        Hashtbl.replace finals i node;
        match node.result with
        | Res.Yes | Res.No -> ()
        | Res.Maybe -> still_pending := (i, g) :: !still_pending)
      !pending;
    let after = bound_count st.icx in
    pending := List.rev !still_pending;
    (* Stop when everything is answered, no progress was made, or we hit
       the round limit. *)
    continue_ := !pending <> [] && after > before && !rounds < max_rounds
  done;
  Telemetry.end_ sp_fixpoint tok;
  let reports =
    List.mapi
      (fun i (g : Program.goal) ->
        let att = List.rev (Option.value ~default:[] (Hashtbl.find_opt attempts i)) in
        let final =
          match Hashtbl.find_opt finals i with
          | Some f -> f
          | None -> assert false
        in
        { goal = g; attempts = att; final; status = status_of_result final.result })
      goals
  in
  (reports, !rounds)

(** Solve all root goals of [program] to fixpoint.

    [env] provides in-scope where-clauses (normally empty at the top
    level).  [max_rounds] bounds the fixpoint; ambiguity that survives it
    is reported as [Ambiguous]. *)
let solve_program ?(cfg = Solve.default_config) ?(env = []) ?(max_rounds = 8)
    (program : Program.t) : report =
  let st = Solve.create ~cfg ~env program in
  let reports, rounds = solve_goals ~max_rounds st (Program.goals program) in
  { reports; rounds; solver = st }

let errors (r : report) =
  List.filter (fun g -> g.status <> Proved) r.reports

let all_proved (r : report) = errors r = []
