(** Coherence (overlap) checking.

    Rust enforces that no two impl blocks of the same trait can apply to
    the same type — the property that makes instance selection
    deterministic [Bottu et al. 2019].  §2.3 of the paper turns on exactly
    this: Bevy's two [IntoSystem] impls avoid overlap only because of a
    marker type parameter, shifting work onto inference.

    Like rustc's basic overlap check, we test whether the two impl heads
    unify after instantiating both with fresh inference variables; where-
    clauses are not consulted (no negative reasoning). *)

open Trait_lang

type overlap = {
  trait_ : Path.t;
  impl_a : Decl.impl;
  impl_b : Decl.impl;
  witness : Ty.t;  (** a type both impls would apply to *)
}

let overlap_of_pair (icx : Infer_ctx.t) (a : Decl.impl) (b : Decl.impl) : overlap option =
  if not (Path.equal a.impl_trait.trait b.impl_trait.trait) then None
  else begin
    let snap = Infer_ctx.snapshot icx in
    let sa = Infer_ctx.instantiate_generics icx a.impl_generics in
    let sb = Infer_ctx.instantiate_generics icx b.impl_generics in
    let self_a = Subst.ty sa a.impl_self and self_b = Subst.ty sb b.impl_self in
    let result =
      match Unify.unify icx self_a self_b with
      | Error _ -> None
      | Ok () -> (
          match
            Unify.unify_trait_refs icx (Subst.trait_ref sa a.impl_trait)
              (Subst.trait_ref sb b.impl_trait)
          with
          | Error _ -> None
          | Ok () ->
              Some
                {
                  trait_ = a.impl_trait.trait;
                  impl_a = a;
                  impl_b = b;
                  witness = Infer_ctx.resolve icx self_a;
                })
    in
    Infer_ctx.rollback_to icx snap;
    result
  end

(** Check every pair of impls in the program; returns all overlaps.

    The orphan rule is checked separately by {!orphan_violations}. *)
let check (program : Program.t) : overlap list =
  let icx = Infer_ctx.for_program program in
  let impls = Array.of_list (Program.impls program) in
  let out = ref [] in
  for i = 0 to Array.length impls - 1 do
    for j = i + 1 to Array.length impls - 1 do
      match overlap_of_pair icx impls.(i) impls.(j) with
      | Some o ->
          if Journal.enabled () then
            Journal.emit
              (Journal.Overlap_detected
                 {
                   trait_ = o.trait_;
                   impl_a = o.impl_a.Decl.impl_id;
                   impl_b = o.impl_b.Decl.impl_id;
                   witness = o.witness;
                 });
          out := o :: !out
      | None -> ()
    done
  done;
  List.rev !out

(** The orphan rule: an impl is legal only if either the trait or the
    (head of the) self type is local to the impl's crate.  This is the
    rule the inertia heuristic's "orphaned trait bound" category reflects
    (§3.3). *)
type orphan = { o_impl : Decl.impl; o_trait : Path.t; o_self : Ty.t }

(** Does [ty] mention a nominal type belonging to [crate]?  Used for the
    "local type coverage" part of the orphan rule: Rust accepts
    [impl ExtTrait for Ext<Local>] because the local type appears
    (uncovered, in the full rule; we use the simpler mention test). *)
let mentions_crate_ty crate (ty : Ty.t) : bool =
  Ty.fold
    (fun acc t ->
      acc
      ||
      match Ty.head_path t with Some p -> Path.crate p = crate | None -> false)
    false ty

let is_orphan (impl : Decl.impl) : bool =
  let local_trait = Path.crate impl.impl_trait.trait = impl.impl_crate in
  let local_self = mentions_crate_ty impl.impl_crate impl.impl_self in
  let local_trait_args =
    List.exists
      (function Ty.Ty t -> mentions_crate_ty impl.impl_crate t | Ty.Lifetime _ -> false)
      impl.impl_trait.args
  in
  not (local_trait || local_self || local_trait_args)

let orphan_violations (program : Program.t) : orphan list =
  Program.impls program
  |> List.filter is_orphan
  |> List.map (fun (i : Decl.impl) ->
         { o_impl = i; o_trait = i.impl_trait.trait; o_self = i.impl_self })

(* ------------------------------------------------------------------ *)
(* Impl well-formedness: associated-type bounds. *)

(** A failed item bound: impl [wf_impl] binds [wf_assoc] to a type that
    does not satisfy the bound the trait declares on it.  [wf_tree] is
    the failing inference tree, debuggable like any other. *)
type wf_failure = {
  wf_impl : Decl.impl;
  wf_assoc : string;
  wf_bound : Ty.trait_ref;
  wf_tree : Trace.goal_node;
}

(** Check that every associated-type binding of every impl satisfies the
    bounds its trait declares — e.g. [trait AstAssocs { type Data:
    AssocData<Self>; }] requires each impl's [Data] to implement
    [AssocData<Self>].  The impl's own where-clauses are in scope, which
    is exactly how the §2.2 blanket impl sets up its cycle. *)
let check_impl_wf ?(cfg = Solve.default_config) (program : Program.t) : wf_failure list =
  let failures = ref [] in
  List.iter
    (fun (impl : Decl.impl) ->
      match Program.find_trait program impl.impl_trait.trait with
      | None -> ()
      | Some tr ->
          (* substitution: Self ↦ impl self type, trait params ↦ impl args *)
          let subst =
            let s = Subst.add_ty "Self" impl.impl_self Subst.empty in
            List.fold_left2
              (fun s param arg ->
                match arg with Ty.Ty t -> Subst.add_ty param t s | _ -> s)
              s tr.tr_generics.ty_params
              (List.filter (function Ty.Ty _ -> true | _ -> false) impl.impl_trait.args)
          in
          List.iter
            (fun (assoc : Decl.assoc_ty_decl) ->
              let binding =
                match
                  List.find_opt
                    (fun (b : Decl.assoc_ty_binding) -> b.bind_name = assoc.assoc_name)
                    impl.impl_assocs
                with
                | Some b -> Some b.bind_ty
                | None -> Option.map (Subst.ty subst) assoc.assoc_default
              in
              match binding with
              | None -> ()
              | Some binding_ty ->
                  List.iter
                    (fun bound ->
                      let bound = Subst.trait_ref subst bound in
                      let pred =
                        Predicate.Trait { self_ty = binding_ty; trait_ref = bound }
                      in
                      let st =
                        Solve.create ~cfg ~env:impl.impl_generics.where_clauses program
                      in
                      (* Result-tier fast path: bounds already proved under
                         this (program, where-clause) context skip the
                         tree-building solve entirely; anything else — a
                         miss, a cached failure, or a journal recording
                         (observe-only) — re-derives the full tree, which a
                         failure keeps as [wf_tree]. *)
                      let key =
                        if cfg.Solve.enable_cache && Eval_cache.enabled () then
                          Some
                            (Eval_cache.result_key st.Solve.cache_ctx
                               (Canonical.canonicalize st.Solve.icx pred))
                        else None
                      in
                      let cached = Option.bind key Eval_cache.find_result in
                      (match (cached, key) with
                      | Some _, Some _ ->
                          Jlog.cache_hit ~goal:(Journal.peek_id ()) ~tier:"result"
                      | None, Some _ ->
                          Jlog.cache_miss ~goal:(Journal.peek_id ()) ~tier:"result"
                      | _, None -> ());
                      let skip =
                        (match cached with Some r -> Res.is_yes r | None -> false)
                        && not (Journal.enabled ())
                      in
                      if not skip then begin
                        Eval_cache.push_dep_scope ();
                        let node =
                          Solve.solve st
                            ~origin:
                              (Printf.sprintf "the `type %s` binding in this impl"
                                 assoc.assoc_name)
                            ~span:impl.impl_span pred
                        in
                        let deps = Eval_cache.pop_dep_scope () in
                        (match (key, cached) with
                        | Some k, None ->
                            let clean =
                              Trace.fold_goals
                                (fun acc g -> acc && not (Trace.is_overflow g))
                                true node
                            in
                            if clean then Eval_cache.insert_result ~deps k node.result
                        | _ -> ());
                        if not (Res.is_yes node.result) then
                          failures :=
                            { wf_impl = impl; wf_assoc = assoc.assoc_name; wf_bound = bound; wf_tree = node }
                            :: !failures
                      end)
                    assoc.assoc_bounds)
            tr.tr_assocs)
    (Program.impls program);
  List.rev !failures
