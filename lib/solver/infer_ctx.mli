(** The inference context: a growable union-find table of type inference
    variables with an undo log for snapshot/rollback — the discipline
    rustc's [InferCtxt] uses for speculative candidate probing. *)

open Trait_lang

(** The state of one table slot.  Exposed for the evaluation cache, which
    captures and replays slot ranges verbatim. *)
type binding = Unbound | Link of int | Bound of Ty.t

type t

val create : ?first_var:int -> unit -> t

(** A context whose fresh variables start above every inference variable
    mentioned in the program's goals. *)
val for_program : Program.t -> t

(** Allocate a fresh inference variable. *)
val fresh : t -> int

val fresh_ty : t -> Ty.t
val num_vars : t -> int

(** {1 Snapshots} *)

type snapshot

val snapshot : t -> snapshot

(** Snapshot serials issued by the calling domain so far (serials are
    domain-local, for race-free unambiguous journal IDs). *)
val snapshot_serial : unit -> int

(** Restart the calling domain's snapshot serials from 0.  The batch
    driver resets per work unit so journal streams are deterministic;
    don't call mid-solve. *)
val reset_snapshot_serial : unit -> unit

(** Undo every binding made since the snapshot was opened. *)
val rollback_to : t -> snapshot -> unit

(** Keep the bindings; forget the snapshot. *)
val commit : t -> snapshot -> unit

(** {1 Bindings and resolution} *)

(** Representative of a variable after following links. *)
val root : t -> int -> int

(** The binding of a variable's representative, if any. *)
val probe : t -> int -> Ty.t option

(** Bind an unbound variable.  Callers must check with {!probe} first. *)
val bind : t -> int -> Ty.t -> unit

(** Union two unbound variables. *)
val link : t -> int -> int -> unit

(** Structurally replace every bound inference variable by its value. *)
val resolve : t -> Ty.t -> Ty.t

val resolve_arg : t -> Ty.arg -> Ty.arg
val resolve_trait_ref : t -> Ty.trait_ref -> Ty.trait_ref
val resolve_projection : t -> Ty.projection -> Ty.projection
val resolve_predicate : t -> Predicate.t -> Predicate.t

(** Instantiate a declaration's generics with fresh inference variables,
    as a substitution. *)
val instantiate_generics : t -> Decl.generics -> Subst.t

(** {1 Raw slot access (evaluation-cache replay)}

    The evaluation cache replays a memoized evaluation by re-allocating
    the variable range it consumed and writing back the captured slots,
    renumbered; everything is undo-logged, so enclosing snapshots roll
    replayed bindings back exactly like real ones. *)

(** Allocate [n] fresh variables; returns the first index. *)
val alloc_vars : t -> int -> int

(** The raw slot of variable [i] (no link-following). *)
val slot : t -> int -> binding

(** Write a slot.  The slot must currently be [Unbound]; writing
    [Unbound] is a no-op.  Undo-logged. *)
val set_slot : t -> int -> binding -> unit

(** Current undo-log position, for {!sets_since}. *)
val undo_mark : t -> int

(** Variables set (and not since rolled back) after [mark], oldest
    first. *)
val sets_since : t -> int -> int list
