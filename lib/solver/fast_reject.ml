(** Simplified-self-type fast-reject index.  See the interface for the
    design; the invariant that everything below serves is

    {[ lookup p trait self  ==  scan p trait self ]}

    for every program, trait and self type — same impls, same
    (declaration) order — so candidate assembly is observationally
    independent of [use_index]. *)

open Trait_lang

let c_hits = Telemetry.counter "index.hits"
let c_rejects = Telemetry.counter "index.rejects"
let c_wildcard = Telemetry.counter "index.wildcard"
let c_builds = Telemetry.counter "index.builds"

(* ------------------------------------------------------------------ *)
(* Simplified types *)

type simplified =
  | S_unit
  | S_bool
  | S_int
  | S_uint
  | S_float
  | S_str
  | S_adt of Path.t
  | S_tuple of int
  | S_ref
  | S_ref_mut
  | S_fn_ptr of int
  | S_fn_item of Path.t
  | S_dyn of Path.t
  | S_param of string

let equal_simplified a b =
  match (a, b) with
  | S_unit, S_unit | S_bool, S_bool | S_int, S_int | S_uint, S_uint
  | S_float, S_float | S_str, S_str | S_ref, S_ref | S_ref_mut, S_ref_mut ->
      true
  | S_adt p, S_adt q | S_fn_item p, S_fn_item q | S_dyn p, S_dyn q -> Path.equal p q
  | S_tuple n, S_tuple m | S_fn_ptr n, S_fn_ptr m -> n = m
  | S_param x, S_param y -> String.equal x y
  | _ -> false

let hash_simplified = function
  | S_unit -> 1
  | S_bool -> 2
  | S_int -> 3
  | S_uint -> 4
  | S_float -> 5
  | S_str -> 6
  | S_ref -> 7
  | S_ref_mut -> 8
  | S_adt p -> 11 + (31 * Path.hash p)
  | S_tuple n -> 12 + (31 * n)
  | S_fn_ptr n -> 13 + (31 * n)
  | S_fn_item p -> 14 + (31 * Path.hash p)
  | S_dyn p -> 15 + (31 * Path.hash p)
  | S_param s -> 16 + (31 * Hashtbl.hash s)

let simplified_to_string = function
  | S_unit -> "unit"
  | S_bool -> "bool"
  | S_int -> "int"
  | S_uint -> "uint"
  | S_float -> "float"
  | S_str -> "str"
  | S_ref -> "&"
  | S_ref_mut -> "&mut"
  | S_adt p -> "adt " ^ Path.to_string p
  | S_tuple n -> Printf.sprintf "tuple/%d" n
  | S_fn_ptr n -> Printf.sprintf "fn-ptr/%d" n
  | S_fn_item p -> "fn-item " ^ Path.to_string p
  | S_dyn p -> "dyn " ^ Path.to_string p
  | S_param x -> "param " ^ x

(* The goal side: the caller hands us the shallow-resolved self type.
   An unresolved inference variable or an unnormalized projection head
   can become anything, so both are wildcards.  A parameter is rigid —
   it unifies only with itself or with an instantiated blanket impl —
   and since no impl bucket is ever keyed [S_param] (see below), a
   parameter-headed goal reaches exactly the wildcard impls. *)
let simplify_goal : Ty.t -> simplified option = function
  | Ty.Infer _ | Ty.Proj _ -> None
  | Ty.Unit -> Some S_unit
  | Ty.Bool -> Some S_bool
  | Ty.Int -> Some S_int
  | Ty.Uint -> Some S_uint
  | Ty.Float -> Some S_float
  | Ty.Str -> Some S_str
  | Ty.Param x -> Some (S_param x)
  | Ty.Ref _ -> Some S_ref
  | Ty.RefMut _ -> Some S_ref_mut
  | Ty.Ctor (p, _) -> Some (S_adt p)
  | Ty.Tuple ts -> Some (S_tuple (List.length ts))
  | Ty.FnPtr (args, _) -> Some (S_fn_ptr (List.length args))
  | Ty.FnItem (p, _, _) -> Some (S_fn_item p)
  | Ty.Dynamic tr -> Some (S_dyn tr.Ty.trait)

(* The impl side: candidate evaluation substitutes the impl's generics
   with fresh inference variables before unifying, so a parameter head
   (blanket impl) is a wildcard; a projection head may normalize to
   anything.  Everything else keeps its rigid head under both
   substitution and deep normalization. *)
let simplify_impl (impl : Decl.impl) : simplified option =
  match impl.Decl.impl_self with
  | Ty.Param _ | Ty.Proj _ | Ty.Infer _ -> None
  | ty -> simplify_goal ty

let compatible goal impl =
  match (goal, impl) with
  | None, _ | _, None -> true
  | Some g, Some i -> equal_simplified g i

(* ------------------------------------------------------------------ *)
(* The index *)

module S_tbl = Hashtbl.Make (struct
  type t = simplified

  let equal = equal_simplified
  let hash = hash_simplified
end)

(** One trait's impls, pre-bucketed by simplified self head.  Each
    bucket already has the wildcard impls merged back in declaration
    order, so a lookup is a single table probe. *)
type trait_index = {
  ti_buckets : Decl.impl list S_tbl.t;
  ti_wildcard : Decl.impl list;  (** for goal heads with no bucket *)
  ti_all : Decl.impl list;  (** for wildcard goal heads *)
  ti_count : int;  (** [List.length ti_all] *)
}

let build_trait_index (impls : Decl.impl list) : trait_index =
  Telemetry.incr c_builds;
  let keyed = List.map (fun impl -> (simplify_impl impl, impl)) impls in
  let wildcard = List.filter_map (function None, i -> Some i | _ -> None) keyed in
  let buckets = S_tbl.create 64 in
  (* Collect the distinct heads, then rebuild each bucket as one
     ordered pass over the declaration list: bucket ∪ wildcard must be
     interleaved exactly as a linear scan would visit them. *)
  List.iter
    (fun (head, _) ->
      match head with
      | Some s when not (S_tbl.mem buckets s) ->
          let merged =
            List.filter_map
              (fun (h, impl) ->
                match h with
                | None -> Some impl
                | Some s' -> if equal_simplified s s' then Some impl else None)
              keyed
          in
          S_tbl.replace buckets s merged
      | _ -> ())
    keyed;
  { ti_buckets = buckets; ti_wildcard = wildcard; ti_all = impls; ti_count = List.length impls }

(* A program's per-trait indexes, built lazily: traits never asked
   about are never indexed.  The map is swapped in with a CAS so
   concurrent domains can extend it lock-free; a lost race rebuilds a
   pure value and retries, so the result is identical either way. *)
type prog_index = { px_traits : trait_index Path.Map.t Atomic.t }

(* Stamp-keyed registry, shared across the domain pool like the eval
   cache's shards.  Programs are immutable and freshly stamped per
   load, so a bounded table with wholesale eviction is enough; index
   contents never affect solver output, only lookup cost. *)
let registry : (int, prog_index) Hashtbl.t = Hashtbl.create 32
let registry_mu = Mutex.create ()
let max_programs = 64
let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.protect registry_mu (fun () -> Hashtbl.reset registry)

let invalidate ~stamp =
  Mutex.protect registry_mu (fun () -> Hashtbl.remove registry stamp)

let c_incr_rebased = Telemetry.counter "incr.rebased"

(* Carry the old program's already-built trait indexes over to the new
   stamp, except for traits whose impl set the edit changed (the differ's
   [dirty_traits]).  The carried indexes hold the old program's impl
   values, which the fingerprint contract guarantees are bit-identical to
   the new program's for non-dirty traits — so [lookup = scan] still
   holds under the new stamp, and only dirty traits pay a lazy rebuild. *)
let rebase ~old_stamp ~new_stamp ~(dirty_traits : Path.Set.t) : int =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry old_stamp with
      | None -> 0
      | Some px ->
          let kept =
            Path.Map.filter
              (fun t _ -> not (Path.Set.mem t dirty_traits))
              (Atomic.get px.px_traits)
          in
          Hashtbl.remove registry old_stamp;
          if Hashtbl.length registry >= max_programs then Hashtbl.reset registry;
          Hashtbl.replace registry new_stamp { px_traits = Atomic.make kept };
          let n = Path.Map.cardinal kept in
          Telemetry.add c_incr_rebased n;
          n)

let prog_index_of (p : Program.t) : prog_index =
  let stamp = Program.stamp p in
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry stamp with
      | Some px -> px
      | None ->
          if Hashtbl.length registry >= max_programs then Hashtbl.reset registry;
          let px = { px_traits = Atomic.make Path.Map.empty } in
          Hashtbl.add registry stamp px;
          px)

let trait_index_of (p : Program.t) (trait_ : Path.t) : trait_index =
  let px = prog_index_of p in
  let rec get () =
    let map = Atomic.get px.px_traits in
    match Path.Map.find_opt trait_ map with
    | Some ti -> ti
    | None ->
        let ti = build_trait_index (Program.impls_of_trait p trait_) in
        if Atomic.compare_and_set px.px_traits map (Path.Map.add trait_ ti map) then ti
        else get ()
  in
  get ()

(* ------------------------------------------------------------------ *)
(* Lookup *)

let tally ~total ~kept ~wild =
  Telemetry.add c_hits kept;
  Telemetry.add c_rejects (total - kept);
  if wild then Telemetry.incr c_wildcard

let lookup_in (ti : trait_index) (self : Ty.t) : Decl.impl list =
  match simplify_goal self with
  | None ->
      tally ~total:ti.ti_count ~kept:ti.ti_count ~wild:true;
      ti.ti_all
  | Some s ->
      let found =
        match S_tbl.find_opt ti.ti_buckets s with
        | Some merged -> merged
        | None -> ti.ti_wildcard
      in
      tally ~total:ti.ti_count ~kept:(List.length found) ~wild:false;
      found

let lookup (p : Program.t) (trait_ : Path.t) (self : Ty.t) : Decl.impl list =
  lookup_in (trait_index_of p trait_) self

let scan (p : Program.t) (trait_ : Path.t) (self : Ty.t) : Decl.impl list =
  let impls = Program.impls_of_trait p trait_ in
  let total = List.length impls in
  match simplify_goal self with
  | None ->
      tally ~total ~kept:total ~wild:true;
      impls
  | Some s ->
      let found = List.filter (fun impl -> compatible (Some s) (simplify_impl impl)) impls in
      tally ~total ~kept:(List.length found) ~wild:false;
      found

let candidates ~use_index (p : Program.t) (trait_ : Path.t) (self : Ty.t) :
    Decl.impl list =
  if use_index then lookup p trait_ self else scan p trait_ self

let bucket_stats (p : Program.t) (trait_ : Path.t) : int * int =
  let ti = trait_index_of p trait_ in
  (S_tbl.length ti.ti_buckets, List.length ti.ti_wildcard)
