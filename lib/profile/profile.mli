(** Per-goal cost attribution: fold a {!Journal} stream into a
    cost-annotated goal/candidate tree.

    Telemetry answers {e how much} and the journal answers {e what
    happened}; this module joins them — every goal and candidate frame
    gets self/total wall time (from the stream's [ts_ns] deltas), unify
    attempt and cache hit/miss tallies, and (when recorded live through
    {!record}) sampled GC allocation words.  The tree exports three
    ways: the [top -N] hot-goal table, folded-stack / speedscope
    flamegraphs (encoders in {!Argus_json.Flame}), and heat overlays on
    the HTML proof-tree renderer keyed by the stable journal node IDs
    that proof-tree nodes already carry ([trace_id] / [cand_trace_id]). *)

open Trait_lang

(** {1 The cost tree} *)

type kind =
  | Goal of { pred : Predicate.t; prov : Journal.prov }
  | Cand of { source : Journal.source }

type node = {
  p_id : int;  (** stable journal node ID *)
  mutable p_kind : kind;
      (** the exit event's predicate is authoritative for goals (§4
          statefulness), so the kind is rewritten on exit *)
  p_depth : int;  (** nesting depth in the cost tree (roots are 0) *)
  p_enter_ns : int;  (** raw [ts_ns] at enter *)
  mutable p_exit_ns : int;
  mutable p_result : Journal.res;
  mutable p_total_ns : int;  (** enter → exit wall time *)
  mutable p_self_ns : int;  (** total minus the children's totals *)
  mutable p_unify : int;  (** unify attempts attributed to this frame *)
  mutable p_unify_failures : int;
  mutable p_cache_hits : int;
  mutable p_cache_misses : int;
  mutable p_total_w : float;  (** sampled GC words enter → exit; 0 offline *)
  mutable p_self_w : float;
  mutable p_children : node list;  (** in evaluation order *)
}

type t = {
  roots : node list;  (** root goal frames, in stream order *)
  total_ns : int;  (** sum of the roots' totals *)
  total_w : float;
  events : int;  (** journal entries consumed *)
  index : (int, node) Hashtbl.t;  (** stable node ID → frame *)
  has_words : bool;  (** allocation samples were available *)
  zero_ts : bool;
      (** every timestamp was identical — a normalized journal (e.g.
          [argus check --events-out] zeroes [ts_ns] for determinism), so
          the time columns are meaningless *)
}

(** Attribute a journal stream.  [words.(i)] is a cumulative
    allocated-words sample taken when the [i]-th entry was emitted (see
    {!record}); omit it for offline streams.  Robust to truncated
    streams: frames still open at the end are closed at the last
    timestamp seen. *)
val of_entries : ?words:float array -> Journal.entry list -> t

(** Run [f] with an in-memory journal sink that also samples cumulative
    GC allocated words ([minor + major - promoted]) at each event.
    Returns [f]'s result, the recorded stream, and the word samples —
    ready for {!of_entries}.  Replaces any installed journal sink for
    the duration and removes it afterwards. *)
val record : (unit -> 'a) -> 'a * Journal.entry list * float array

(** The frame's flamegraph/table label (pretty predicate for goals,
    candidate source otherwise). *)
val label : node -> string

(** Pre-order iteration/fold over every frame. *)
val iter : (node -> unit) -> t -> unit

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a

(** {1 Aggregation: the [top -N] table} *)

type agg = {
  a_label : string;
  a_count : int;  (** frames merged into this row *)
  a_self_ns : int;
  a_total_ns : int;
      (** recursion-safe: a frame's total is only added when no ancestor
          frame shares its label *)
  a_unify : int;
  a_cache_hits : int;
  a_cache_misses : int;
  a_self_w : float;
}

(** Goal frames aggregated by label, hottest self time first, truncated
    to [n] rows ([n <= 0] keeps everything). *)
val top_goals : t -> int -> agg list

(** Candidate frames aggregated by source label, hottest first. *)
val by_source : t -> agg list

(** {1 Exports} *)

(** Folded-stack rows (root-first label stacks, self-time values) for
    {!Argus_json.Flame.folded}.  The row values sum to {!val-t.total_ns}
    exactly: every nanosecond of a root's total is attributed to exactly
    one frame's self time. *)
val folded : t -> (string list * int) list

(** Open/close frame events (offsets rebased to the first root's enter)
    for {!Argus_json.Flame.speedscope}, plus the profile's end offset. *)
val frame_events : t -> Argus_json.Flame.frame_event list * int

(** Rendered [top -N] table (goals, then candidate sources). *)
val top_table : ?top:int -> t -> string

(** One-line heat annotation for the frame with this journal node ID:
    [(intensity in \[0,1\], "self 1.2us (34%) · total 5.6us")].  [None]
    when the ID has no frame or the profile carries no time. *)
val heat_of_id : t -> int -> (float * string) option

(** {1 The perf-regression gate}

    [bench --diff]'s comparison of two [BENCH_pipeline.json] files —
    re-exported here because this is the library's root module. *)
module Bench_diff : module type of Bench_diff
