(** The standing perf-regression gate: compare two [BENCH_pipeline.json]
    documents metric by metric.

    Every timing metric in every section (pipeline entries, journal
    overhead, cache on/off, parallel batch, fuzz throughput) is matched
    by key between the two files and judged by its new/old ratio against
    two configurable thresholds: [warn_above] flags drift, [fail_above]
    is a regression.  A bootstrap confidence interval over all ratios
    ({!Stats.Ci}) separates one noisy metric from a systemic slowdown:
    if even the CI's lower bound sits above the warn threshold, the
    whole run drifted.  [bench --diff OLD NEW] prints {!to_string} and
    exits with {!exit_code} — nonzero on regression, so CI can gate. *)

type row = {
  r_section : string;  (** e.g. ["entries"], ["cache"] *)
  r_name : string;  (** entry key within the section *)
  r_metric : string;  (** e.g. ["ns_per_run"] *)
  r_old : float;
  r_new : float;
  r_ratio : float;  (** new / old *)
}

type verdict = Pass | Drift | Regression

type report = {
  rows : row list;  (** every compared metric, worst ratio first *)
  regressions : row list;  (** ratio >= fail threshold *)
  drifts : row list;  (** warn <= ratio < fail *)
  improvements : row list;  (** ratio <= 1 / warn threshold *)
  missing : string list;  (** metrics in OLD absent from NEW *)
  added : string list;  (** metrics in NEW absent from OLD *)
  median_ratio : float;
  ratio_ci : Stats.Ci.interval option;
      (** 95% bootstrap CI of the median ratio; [None] under 4 rows *)
  systemic_drift : bool;  (** [ratio_ci.lo > warn_above] *)
  warn_above : float;
  fail_above : float;
  verdict : verdict;
}

val default_warn : float  (** 1.25 *)

val default_fail : float  (** 2.0 *)

(** Compare two parsed [BENCH_pipeline.json] documents.
    @raise Invalid_argument when either document does not carry an
    [argus.bench.pipeline/*] schema tag *)
val diff : ?warn_above:float -> ?fail_above:float -> old_doc:Argus_json.Json.t -> new_doc:Argus_json.Json.t -> unit -> report

(** The human-readable gate report: offending rows, the ratio CI, and
    the verdict line. *)
val to_string : report -> string

(** [1] on [Regression], [0] otherwise ([Drift] warns but passes). *)
val exit_code : report -> int
