(** Per-goal cost attribution over the search journal.

    The journal stream is already a perfectly nested account of the
    solver's execution: [Goal_enter]/[Goal_exit] and
    [Cand_enter]/[Cand_exit] bracket every frame, each entry carries a
    monotonic [ts_ns], and unify/cache events land between the brackets
    of the frame that caused them.  Attribution is therefore a single
    stack-driven fold: a frame's {e total} is its exit-minus-enter
    delta, its {e self} is that total minus its children's totals, and
    in-flight events tally onto the innermost open frame.  Self times
    partition wall time exactly — the invariant the tests check —
    because sibling windows are disjoint sub-intervals of the parent's
    window on one monotonic clock. *)

open Trait_lang

type kind =
  | Goal of { pred : Predicate.t; prov : Journal.prov }
  | Cand of { source : Journal.source }

type node = {
  p_id : int;
  mutable p_kind : kind;
  p_depth : int;
  p_enter_ns : int;
  mutable p_exit_ns : int;
  mutable p_result : Journal.res;
  mutable p_total_ns : int;
  mutable p_self_ns : int;
  mutable p_unify : int;
  mutable p_unify_failures : int;
  mutable p_cache_hits : int;
  mutable p_cache_misses : int;
  mutable p_total_w : float;
  mutable p_self_w : float;
  mutable p_children : node list;
}

type t = {
  roots : node list;
  total_ns : int;
  total_w : float;
  events : int;
  index : (int, node) Hashtbl.t;
  has_words : bool;
  zero_ts : bool;
}

(* An open frame on the attribution stack: the node under construction
   plus its entry allocation sample and reverse-order children. *)
type frame = {
  f_node : node;
  f_enter_w : float;
  mutable f_children : node list;  (** reverse order *)
}

let label n =
  match n.p_kind with
  | Goal { pred; _ } -> Pretty.predicate pred
  | Cand { source } -> Journal.source_to_string source

let of_entries ?words (entries : Journal.entry list) : t =
  let index = Hashtbl.create 256 in
  let stack : frame list ref = ref [] in
  let roots = ref [] in
  let last_ts = ref 0 in
  let last_w = ref 0.0 in
  let pos = ref 0 in
  let word_at i =
    match words with
    | Some w when i < Array.length w -> w.(i)
    | _ -> 0.0
  in
  let first_ts =
    match entries with e :: _ -> e.Journal.ts_ns | [] -> 0
  in
  let zero_ts = ref true in
  let open_frame ~id ~kind ~ts ~w =
    let n =
      {
        p_id = id;
        p_kind = kind;
        p_depth = List.length !stack;
        p_enter_ns = ts;
        p_exit_ns = ts;
        p_result = Journal.Maybe;
        p_total_ns = 0;
        p_self_ns = 0;
        p_unify = 0;
        p_unify_failures = 0;
        p_cache_hits = 0;
        p_cache_misses = 0;
        p_total_w = 0.0;
        p_self_w = 0.0;
        p_children = [];
      }
    in
    Hashtbl.replace index id n;
    stack := { f_node = n; f_enter_w = w; f_children = [] } :: !stack
  in
  let close_top ~ts ~w =
    match !stack with
    | [] -> ()
    | f :: rest ->
        let n = f.f_node in
        n.p_exit_ns <- ts;
        n.p_children <- List.rev f.f_children;
        n.p_total_ns <- max 0 (ts - n.p_enter_ns);
        n.p_total_w <- Float.max 0.0 (w -. f.f_enter_w);
        let child_ns =
          List.fold_left (fun acc c -> acc + c.p_total_ns) 0 n.p_children
        in
        let child_w =
          List.fold_left (fun acc c -> acc +. c.p_total_w) 0.0 n.p_children
        in
        n.p_self_ns <- max 0 (n.p_total_ns - child_ns);
        n.p_self_w <- Float.max 0.0 (n.p_total_w -. child_w);
        stack := rest;
        (match rest with
        | parent :: _ -> parent.f_children <- n :: parent.f_children
        | [] -> roots := n :: !roots)
  in
  let top_node () = match !stack with [] -> None | f :: _ -> Some f.f_node in
  List.iter
    (fun (e : Journal.entry) ->
      let ts = e.Journal.ts_ns in
      let w = word_at !pos in
      incr pos;
      if ts <> first_ts then zero_ts := false;
      last_ts := ts;
      last_w := w;
      (match e.Journal.ev with
      | Journal.Goal_enter { id; pred; prov; _ } ->
          open_frame ~id ~kind:(Goal { pred; prov }) ~ts ~w
      | Journal.Cand_enter { id; source; _ } ->
          open_frame ~id ~kind:(Cand { source }) ~ts ~w
      | Journal.Goal_exit { id; pred; result; _ } ->
          (match top_node () with
          | Some n when n.p_id = id -> (
              n.p_result <- result;
              (* the exit predicate is authoritative (§4 statefulness) *)
              match n.p_kind with
              | Goal g ->
                  if not (Predicate.equal g.pred pred) then
                    n.p_kind <- Goal { g with pred }
              | Cand _ -> ())
          | _ -> ());
          close_top ~ts ~w
      | Journal.Cand_exit { id; result; _ } ->
          (match top_node () with
          | Some n when n.p_id = id -> n.p_result <- result
          | _ -> ());
          close_top ~ts ~w
      | Journal.Unify { failure; _ } -> (
          match top_node () with
          | Some n ->
              n.p_unify <- n.p_unify + 1;
              if failure <> None then n.p_unify_failures <- n.p_unify_failures + 1
          | None -> ())
      | Journal.Cache_hit _ -> (
          match top_node () with
          | Some n -> n.p_cache_hits <- n.p_cache_hits + 1
          | None -> ())
      | Journal.Cache_miss _ -> (
          match top_node () with
          | Some n -> n.p_cache_misses <- n.p_cache_misses + 1
          | None -> ())
      | _ -> ()))
    entries;
  (* truncated stream: close whatever is still open at the last stamp *)
  while !stack <> [] do
    close_top ~ts:!last_ts ~w:!last_w
  done;
  let roots = List.rev !roots in
  let total_ns = List.fold_left (fun acc r -> acc + r.p_total_ns) 0 roots in
  let total_w = List.fold_left (fun acc r -> acc +. r.p_total_w) 0.0 roots in
  {
    roots;
    total_ns;
    total_w;
    events = List.length entries;
    index;
    has_words = words <> None;
    zero_ts = !zero_ts && entries <> [];
  }

let record f =
  let acc : (Journal.entry * float) list ref = ref [] in
  let sample () =
    let s = Gc.quick_stat () in
    s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words
  in
  Journal.set_sink (Some (fun e -> acc := (e, sample ()) :: !acc));
  let r = Fun.protect ~finally:(fun () -> Journal.set_sink None) f in
  let recorded = List.rev !acc in
  let entries = List.map fst recorded in
  let words = Array.of_list (List.map snd recorded) in
  (r, entries, words)

let iter g t =
  let rec walk n =
    g n;
    List.iter walk n.p_children
  in
  List.iter walk t.roots

let fold g acc t =
  let acc = ref acc in
  iter (fun n -> acc := g !acc n) t;
  !acc

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type agg = {
  a_label : string;
  a_count : int;
  a_self_ns : int;
  a_total_ns : int;
  a_unify : int;
  a_cache_hits : int;
  a_cache_misses : int;
  a_self_w : float;
}

let aggregate ~keep t =
  let rows : (string, agg ref) Hashtbl.t = Hashtbl.create 64 in
  (* walk with the set of labels on the path, so a recursive frame's
     total is counted once per outermost occurrence *)
  let rec walk on_path n =
    let lbl = label n in
    (if keep n then begin
       let r =
         match Hashtbl.find_opt rows lbl with
         | Some r -> r
         | None ->
             let r =
               ref
                 {
                   a_label = lbl;
                   a_count = 0;
                   a_self_ns = 0;
                   a_total_ns = 0;
                   a_unify = 0;
                   a_cache_hits = 0;
                   a_cache_misses = 0;
                   a_self_w = 0.0;
                 }
             in
             Hashtbl.add rows lbl r;
             r
       in
       let a = !r in
       r :=
         {
           a with
           a_count = a.a_count + 1;
           a_self_ns = a.a_self_ns + n.p_self_ns;
           a_total_ns =
             (if List.mem lbl on_path then a.a_total_ns
              else a.a_total_ns + n.p_total_ns);
           a_unify = a.a_unify + n.p_unify;
           a_cache_hits = a.a_cache_hits + n.p_cache_hits;
           a_cache_misses = a.a_cache_misses + n.p_cache_misses;
           a_self_w = a.a_self_w +. n.p_self_w;
         }
     end);
    List.iter (walk (label n :: on_path)) n.p_children
  in
  List.iter (walk []) t.roots;
  Hashtbl.fold (fun _ r acc -> !r :: acc) rows []
  |> List.sort (fun a b ->
         match compare b.a_self_ns a.a_self_ns with
         | 0 -> String.compare a.a_label b.a_label
         | c -> c)

let top_goals t n =
  let rows =
    aggregate ~keep:(fun f -> match f.p_kind with Goal _ -> true | Cand _ -> false) t
  in
  if n <= 0 then rows
  else List.filteri (fun i _ -> i < n) rows

let by_source t =
  aggregate ~keep:(fun f -> match f.p_kind with Cand _ -> true | Goal _ -> false) t

(* ------------------------------------------------------------------ *)
(* Exports *)

let folded t =
  let rows = ref [] in
  let rec walk path n =
    let path = label n :: path in
    if n.p_self_ns > 0 then rows := (List.rev path, n.p_self_ns) :: !rows;
    List.iter (walk path) n.p_children
  in
  List.iter (walk []) t.roots;
  List.rev !rows

let frame_events t =
  let t0 =
    match t.roots with r :: _ -> r.p_enter_ns | [] -> 0
  in
  let events = ref [] in
  let push fe = events := fe :: !events in
  let rec walk n =
    push
      {
        Argus_json.Flame.fe_frame = label n;
        fe_open = true;
        fe_at = max 0 (n.p_enter_ns - t0);
      };
    List.iter walk n.p_children;
    push
      {
        Argus_json.Flame.fe_frame = label n;
        fe_open = false;
        fe_at = max 0 (n.p_exit_ns - t0);
      }
  in
  List.iter walk t.roots;
  let end_at =
    List.fold_left (fun acc (r : node) -> max acc (r.p_exit_ns - t0)) 0 t.roots
  in
  (List.rev !events, end_at)

let pct part whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let top_table ?(top = 10) t =
  let b = Buffer.create 2048 in
  let fmt = Telemetry.format_ns in
  Buffer.add_string b
    (Printf.sprintf "profile: %d events, %d frames, attributed %s%s\n" t.events
       (Hashtbl.length t.index)
       (fmt (float_of_int t.total_ns))
       (if t.has_words then Printf.sprintf ", %.0f words allocated" t.total_w else ""));
  if t.zero_ts then
    Buffer.add_string b
      "warning: all timestamps are identical (a normalized journal, e.g. from \
       `argus check --events-out`); time columns are meaningless — re-record \
       with `argus check --timestamps` or a single-file subcommand\n";
  let header kind =
    Buffer.add_string b
      (Printf.sprintf "%-44s %6s %9s %6s %9s %7s %5s %6s\n" kind "count" "self"
         "self%" "total" "unify" "hits" "miss")
  in
  let row a =
    Buffer.add_string b
      (Printf.sprintf "%-44s %6d %9s %5.1f%% %9s %7d %5d %6d\n"
         (if String.length a.a_label > 44 then String.sub a.a_label 0 41 ^ "..."
          else a.a_label)
         a.a_count
         (fmt (float_of_int a.a_self_ns))
         (pct a.a_self_ns t.total_ns)
         (fmt (float_of_int a.a_total_ns))
         a.a_unify a.a_cache_hits a.a_cache_misses)
  in
  header (Printf.sprintf "hot goals (top %d by self time)" top);
  List.iter row (top_goals t top);
  let sources = by_source t in
  if sources <> [] then begin
    header "candidate sources";
    List.iter row
      (if top <= 0 then sources else List.filteri (fun i _ -> i < top) sources)
  end;
  Buffer.contents b

let heat_of_id t id =
  match Hashtbl.find_opt t.index id with
  | None -> None
  | Some n ->
      if t.total_ns <= 0 then None
      else begin
        let max_self = fold (fun acc f -> max acc f.p_self_ns) 1 t in
        let intensity =
          Float.min 1.0 (float_of_int n.p_self_ns /. float_of_int max_self)
        in
        let lbl =
          Printf.sprintf "self %s (%.1f%%) · total %s"
            (Telemetry.format_ns (float_of_int n.p_self_ns))
            (pct n.p_self_ns t.total_ns)
            (Telemetry.format_ns (float_of_int n.p_total_ns))
        in
        Some (intensity, lbl)
      end

(* Re-export: [profile.ml] is the library's root interface module, so
   sibling modules are hidden from outside unless aliased here. *)
module Bench_diff = Bench_diff
