(** Metric-by-metric comparison of two [BENCH_pipeline.json] files — the
    perf-regression gate behind [bench --diff] and the CI step. *)

module Json = Argus_json.Json

type row = {
  r_section : string;
  r_name : string;
  r_metric : string;
  r_old : float;
  r_new : float;
  r_ratio : float;
}

type verdict = Pass | Drift | Regression

type report = {
  rows : row list;
  regressions : row list;
  drifts : row list;
  improvements : row list;
  missing : string list;
  added : string list;
  median_ratio : float;
  ratio_ci : Stats.Ci.interval option;
  systemic_drift : bool;
  warn_above : float;
  fail_above : float;
  verdict : verdict;
}

let default_warn = 1.25
let default_fail = 2.0

(* Which metrics of which sections the gate watches: (section, key
   field, timing metrics).  Keys identify an entry within its section —
   a name for most, the jobs count for the parallel curve. *)
let sections =
  [
    ("entries", "name", [ "ns_per_run" ]);
    ("journal", "name", [ "ns_disabled"; "ns_enabled" ]);
    ("cache", "name", [ "ns_cache_off"; "ns_cache_on" ]);
    ("parallel", "jobs", [ "ns_batch" ]);
    ("fuzz", "stage", [ "ns_per_program" ]);
    (* absent from pre-v6 baselines: missing sections only surface as
       "added in NEW", never as a failure *)
    ("scale", "impls", [ "ns_per_goal_on"; "ns_per_goal_off" ]);
    (* absent from pre-v7 baselines, tolerated the same way *)
    ("incremental", "name", [ "ns_scratch"; "ns_incr" ]);
    (* absent from pre-v8 baselines, tolerated the same way *)
    ("serve", "name", [ "p50_ns"; "p99_ns" ]);
  ]

let number_opt = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let key_string = function
  | Some (Json.String s) -> Some s
  | Some (Json.Int i) -> Some (string_of_int i)
  | _ -> None

let check_schema which doc =
  let prefix = "argus.bench.pipeline/" in
  match Json.member "schema" doc with
  | Some (Json.String s)
    when String.length s >= String.length prefix
         && String.sub s 0 (String.length prefix) = prefix ->
      ()
  | _ ->
      invalid_arg
        (Printf.sprintf "%s file does not carry an %s* schema tag" which prefix)

(** Flatten one document into ("section/name/metric", value) pairs. *)
let metrics doc =
  List.concat_map
    (fun (section, key_field, metric_names) ->
      match Json.member section doc with
      | Some (Json.List items) ->
          List.concat_map
            (fun item ->
              match key_string (Json.member key_field item) with
              | None -> []
              | Some name ->
                  List.filter_map
                    (fun metric ->
                      match number_opt (Json.member metric item) with
                      | Some v -> Some ((section, name, metric), v)
                      | None -> None)
                    metric_names)
            items
      | _ -> [])
    sections

let id_string (section, name, metric) = section ^ "/" ^ name ^ "/" ^ metric

let diff ?(warn_above = default_warn) ?(fail_above = default_fail) ~old_doc ~new_doc
    () =
  check_schema "OLD" old_doc;
  check_schema "NEW" new_doc;
  let old_metrics = metrics old_doc and new_metrics = metrics new_doc in
  let new_tbl = Hashtbl.create 128 in
  List.iter (fun (k, v) -> Hashtbl.replace new_tbl k v) new_metrics;
  let old_tbl = Hashtbl.create 128 in
  List.iter (fun (k, v) -> Hashtbl.replace old_tbl k v) old_metrics;
  let missing =
    List.filter_map
      (fun (k, _) -> if Hashtbl.mem new_tbl k then None else Some (id_string k))
      old_metrics
  in
  let added =
    List.filter_map
      (fun (k, _) -> if Hashtbl.mem old_tbl k then None else Some (id_string k))
      new_metrics
  in
  let rows =
    List.filter_map
      (fun ((section, name, metric) as k, old_v) ->
        match Hashtbl.find_opt new_tbl k with
        | Some new_v when old_v > 0.0 ->
            Some
              {
                r_section = section;
                r_name = name;
                r_metric = metric;
                r_old = old_v;
                r_new = new_v;
                r_ratio = new_v /. old_v;
              }
        | _ -> None)
      old_metrics
    |> List.sort (fun a b -> compare b.r_ratio a.r_ratio)
  in
  let regressions = List.filter (fun r -> r.r_ratio >= fail_above) rows in
  let drifts =
    List.filter (fun r -> r.r_ratio >= warn_above && r.r_ratio < fail_above) rows
  in
  let improvements = List.filter (fun r -> r.r_ratio <= 1.0 /. warn_above) rows in
  let ratios = List.map (fun r -> r.r_ratio) rows in
  let median_ratio = if ratios = [] then 1.0 else Stats.Descriptive.median ratios in
  let ratio_ci =
    if List.length ratios >= 4 then
      Some
        (Stats.Ci.bootstrap ~rng:(Stats.Rng.create ~seed:42) Stats.Descriptive.median
           ratios)
    else None
  in
  let systemic_drift =
    match ratio_ci with Some ci -> ci.Stats.Ci.lo > warn_above | None -> false
  in
  let verdict =
    if regressions <> [] then Regression
    else if drifts <> [] || systemic_drift then Drift
    else Pass
  in
  {
    rows;
    regressions;
    drifts;
    improvements;
    missing;
    added;
    median_ratio;
    ratio_ci;
    systemic_drift;
    warn_above;
    fail_above;
    verdict;
  }

let fmt_ns ns = Telemetry.format_ns ns

let row_line tag r =
  Printf.sprintf "  %-10s %-42s %10s -> %10s  %6.2fx\n" tag
    (Printf.sprintf "%s/%s/%s" r.r_section r.r_name r.r_metric)
    (fmt_ns r.r_old) (fmt_ns r.r_new) r.r_ratio

let to_string rep =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "bench diff: %d metrics compared (warn at %.2fx, fail at %.2fx)\n"
       (List.length rep.rows) rep.warn_above rep.fail_above);
  (match rep.ratio_ci with
  | Some ci ->
      Buffer.add_string b
        (Printf.sprintf "  median ratio %.3fx [95%% CI %.3f .. %.3f]%s\n"
           rep.median_ratio ci.Stats.Ci.lo ci.Stats.Ci.hi
           (if rep.systemic_drift then "  <- systemic drift" else ""))
  | None ->
      Buffer.add_string b (Printf.sprintf "  median ratio %.3fx\n" rep.median_ratio));
  List.iter (fun r -> Buffer.add_string b (row_line "REGRESSED" r)) rep.regressions;
  List.iter (fun r -> Buffer.add_string b (row_line "drift" r)) rep.drifts;
  List.iter (fun r -> Buffer.add_string b (row_line "improved" r)) rep.improvements;
  List.iter
    (fun m -> Buffer.add_string b (Printf.sprintf "  missing in NEW: %s\n" m))
    rep.missing;
  List.iter
    (fun m -> Buffer.add_string b (Printf.sprintf "  added in NEW:   %s\n" m))
    rep.added;
  Buffer.add_string b
    (match rep.verdict with
    | Pass -> "verdict: PASS\n"
    | Drift -> "verdict: DRIFT (warn only)\n"
    | Regression ->
        Printf.sprintf "verdict: REGRESSION (%d metric(s) at or above %.2fx)\n"
          (List.length rep.regressions) rep.fail_above);
  Buffer.contents b

let exit_code rep = match rep.verdict with Regression -> 1 | Drift | Pass -> 0
