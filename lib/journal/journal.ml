(** The solver search journal: a typed, streaming event log of the
    trait solver's entire search.

    Where {!Telemetry} records how {e much} work the solver did, the
    journal records {e what} it did: every goal entered and exited,
    every candidate assembled and tried, every unification attempt with
    its structured failure, every snapshot opened, committed, or rolled
    back — the execution trace of the logic program the solver is
    running.  Each goal and candidate carries a monotonically-assigned
    stable node ID, so a rendered proof-tree node links back to the
    exact span of events that produced it.

    The sink follows the same disabled-is-free discipline as
    {!Telemetry}: with no sink installed, every emission point is a
    single load + branch and allocates nothing, so the instrumentation
    stays compiled into the hot solver paths permanently.

    This module sits {e below} the solver (the solver depends on it),
    so the provenance / candidate-source / failure payloads mirror the
    solver's types structurally; [Solver.Jlog] provides the
    conversions.  JSONL serialization (schema [argus.journal/v1]) lives
    in {!Argus_json.Journal_codec}. *)

open Trait_lang

(* ------------------------------------------------------------------ *)
(* Mirrors of the solver-side payload types. *)

type res = Yes | Maybe | No

type prov =
  | Root of { origin : string; span : Span.t }
  | Impl_where of { impl_id : int; clause_idx : int }
  | Param_env of int
  | Supertrait of Path.t
  | Builtin_req of string
  | Normalization

type flag = Overflow | Depth_limit | Stateful | Speculative | Ambiguous_selection

type source =
  | Impl of { impl_id : int; header : string }
  | Param_env_clause of Predicate.t
  | Builtin of string

type unify_failure =
  | Head_mismatch of Ty.t * Ty.t
  | Arity of Ty.t * Ty.t
  | Region_mismatch of Region.t * Region.t
  | Occurs of int * Ty.t
  | Projection_ambiguous of Ty.projection * Ty.t

(* ------------------------------------------------------------------ *)
(* Events *)

type event =
  | Goal_enter of {
      id : int;
      parent : int option;  (** enclosing candidate node, if any *)
      pred : Predicate.t;
      depth : int;
      prov : prov;
    }
  | Goal_exit of {
      id : int;
      pred : Predicate.t;
          (** authoritative: a [NormalizesTo] goal's predicate is
              rewritten between enter and exit (§4 statefulness) *)
      result : res;
      flags : flag list;
    }
  | Goal_flag of { id : int; flag : flag }
      (** post-hoc flag, e.g. [Speculative] stamped by probing after
          the goal already exited *)
  | Cand_enter of { id : int; goal : int; source : source }
  | Cand_exit of { id : int; result : res; failure : unify_failure option }
  | Cand_assembled of { goal : int; param_env : int; impls : int; builtin : int }
  | Cand_commit of { goal : int; cand : int }
      (** the uniquely successful candidate is re-run and committed;
          the re-run's events are muted *)
  | Unify of {
      node : int option;  (** innermost open goal/candidate *)
      left : Ty.t;
      right : Ty.t;
      failure : unify_failure option;
    }
  | Snapshot_open of { snap : int; node : int option }
  | Snapshot_commit of { snap : int }
  | Snapshot_rollback of { snap : int }
  | Norm_resolved of { id : int; resolved : Ty.t option }
  | Cycle_detected of { id : int; pred : Predicate.t }
  | Overflow_hit of { id : int; depth_limited : bool }
  | Ambiguity of { id : int; succeeded : int }
  | Probe_begin of { origin : string; alternatives : int }
  | Probe_end of { committed : int option }
  | Overlap_detected of { trait_ : Path.t; impl_a : int; impl_b : int; witness : Ty.t }
  | Cache_hit of { goal : int; tier : string }
      (** the evaluation cache answered the goal with node id [goal];
          [tier] is ["tree"] or ["result"].  With a journal recording, the
          solver still evaluates the goal (observe-only mode), so the
          structural events that follow are unchanged. *)
  | Cache_miss of { goal : int; tier : string }

type entry = { seq : int; ts_ns : int; ev : event }

(* ------------------------------------------------------------------ *)
(* The sink *)

(* The whole journal state is domain-local: each domain records its own
   stream with its own sequence numbers, node IDs, mute depth, and
   open-node stack, so parallel batch solving needs no locks and — with
   the batch driver resetting the state per work unit — produces
   per-unit streams identical to a sequential run's. *)
type state = {
  mutable sink : (entry -> unit) option;
  mutable enabled : bool;
  mutable seq_counter : int;
  mutable id_counter : int;
  mutable mute_depth : int;
  mutable open_nodes : int list;
      (** innermost open goal/candidate node first, maintained by [emit]
          from the structural enter/exit events; used to attach
          unification and snapshot events to the node whose evaluation
          caused them *)
}

let dls_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        sink = None;
        enabled = false;
        seq_counter = 0;
        id_counter = 0;
        mute_depth = 0;
        open_nodes = [];
      })

let state () = Domain.DLS.get dls_key

let enabled () = (state ()).enabled

(* IDs are assigned unconditionally (a plain increment) so that trace
   nodes carry stable IDs even when no sink is installed — the IDs only
   become *addressable* when a journal was recorded. *)
let fresh_id () =
  let st = state () in
  let i = st.id_counter in
  st.id_counter <- i + 1;
  i

(* The evaluation cache replays memoized subtrees by offsetting their
   stored ids; these two keep the counter consistent with the ids a
   replayed subtree occupies. *)
let peek_id () = (state ()).id_counter

let bump_ids n =
  if n > 0 then begin
    let st = state () in
    st.id_counter <- st.id_counter + n
  end

let current_node () =
  match (state ()).open_nodes with [] -> None | n :: _ -> Some n

let emit ev =
  let st = state () in
  match st.sink with
  | None -> ()
  | Some f ->
      if st.mute_depth = 0 then begin
        (match ev with
        | Goal_enter { id; _ } | Cand_enter { id; _ } ->
            st.open_nodes <- id :: st.open_nodes
        | Goal_exit _ | Cand_exit _ -> (
            match st.open_nodes with [] -> () | _ :: rest -> st.open_nodes <- rest)
        | _ -> ());
        let seq = st.seq_counter in
        st.seq_counter <- seq + 1;
        f { seq; ts_ns = Telemetry.now_ns (); ev }
      end

let mute () =
  let st = state () in
  st.mute_depth <- st.mute_depth + 1

let unmute () =
  let st = state () in
  if st.mute_depth > 0 then st.mute_depth <- st.mute_depth - 1

let set_sink s =
  let st = state () in
  st.sink <- s;
  st.enabled <- (match s with Some _ -> true | None -> false);
  st.seq_counter <- 0;
  st.mute_depth <- 0;
  st.open_nodes <- []

let reset () =
  set_sink None;
  (state ()).id_counter <- 0

let reset_ids () = (state ()).id_counter <- 0

(** Record events into memory while running [f]; the previously
    installed sink (if any) is saved and restored. *)
let with_memory_sink (f : unit -> 'a) : 'a * entry list =
  let st = state () in
  let saved_sink = st.sink
  and saved_enabled = st.enabled
  and saved_seq = st.seq_counter
  and saved_mute = st.mute_depth
  and saved_open = st.open_nodes in
  let buf = ref [] in
  set_sink (Some (fun e -> buf := e :: !buf));
  let restore () =
    st.sink <- saved_sink;
    st.enabled <- saved_enabled;
    st.seq_counter <- saved_seq;
    st.mute_depth <- saved_mute;
    st.open_nodes <- saved_open
  in
  let r = Fun.protect ~finally:restore f in
  (r, List.rev !buf)

(* ------------------------------------------------------------------ *)
(* Stream relocation *)

(** [shift_entry ~seq ~ids ~snaps e] relocates one entry into another
    stream position: [seq] replaces the sequence number, every node-ID
    field is offset by [ids], and every snapshot serial by [snaps].  The
    batch driver uses this to concatenate per-unit streams (each
    recorded from ID 0) into one globally consistent, replayable journal
    whose contents depend only on the input order — never on which
    domain solved which unit. *)
let shift_entry ~seq ~ids ~snaps (e : entry) : entry =
  let n i = i + ids in
  let nopt = Option.map n in
  let ev =
    match e.ev with
    | Goal_enter g -> Goal_enter { g with id = n g.id; parent = nopt g.parent }
    | Goal_exit g -> Goal_exit { g with id = n g.id }
    | Goal_flag g -> Goal_flag { g with id = n g.id }
    | Cand_enter c -> Cand_enter { c with id = n c.id; goal = n c.goal }
    | Cand_exit c -> Cand_exit { c with id = n c.id }
    | Cand_assembled c -> Cand_assembled { c with goal = n c.goal }
    | Cand_commit c -> Cand_commit { goal = n c.goal; cand = n c.cand }
    | Unify u -> Unify { u with node = nopt u.node }
    | Snapshot_open s -> Snapshot_open { snap = s.snap + snaps; node = nopt s.node }
    | Snapshot_commit s -> Snapshot_commit { snap = s.snap + snaps }
    | Snapshot_rollback s -> Snapshot_rollback { snap = s.snap + snaps }
    | Norm_resolved x -> Norm_resolved { x with id = n x.id }
    | Cycle_detected x -> Cycle_detected { x with id = n x.id }
    | Overflow_hit x -> Overflow_hit { x with id = n x.id }
    | Ambiguity x -> Ambiguity { x with id = n x.id }
    | Probe_begin _ | Probe_end _ | Overlap_detected _ -> e.ev
    | Cache_hit c -> Cache_hit { c with goal = n c.goal }
    | Cache_miss c -> Cache_miss { c with goal = n c.goal }
  in
  { e with seq; ev }

(* ------------------------------------------------------------------ *)
(* Pretty-printing *)

let res_to_string = function Yes -> "yes" | Maybe -> "maybe" | No -> "no"

let flag_to_string = function
  | Overflow -> "overflow"
  | Depth_limit -> "depth-limit"
  | Stateful -> "stateful"
  | Speculative -> "speculative"
  | Ambiguous_selection -> "ambiguous-selection"

let prov_to_string = function
  | Root { origin; _ } -> Printf.sprintf "root (%s)" origin
  | Impl_where { impl_id; clause_idx } ->
      Printf.sprintf "where-clause %d of impl #%d" clause_idx impl_id
  | Param_env i -> Printf.sprintf "in-scope where-clause %d" i
  | Supertrait p -> Printf.sprintf "supertrait %s" (Path.to_string p)
  | Builtin_req b -> Printf.sprintf "built-in requirement (%s)" b
  | Normalization -> "normalization"

let source_to_string = function
  | Impl { impl_id; header } -> Printf.sprintf "impl #%d: %s" impl_id header
  | Param_env_clause p -> Printf.sprintf "where-clause `%s`" (Pretty.predicate p)
  | Builtin b -> Printf.sprintf "builtin:%s" b

let failure_to_string = function
  | Head_mismatch (a, b) ->
      Printf.sprintf "expected `%s`, found `%s`" (Pretty.ty a) (Pretty.ty b)
  | Arity (a, b) ->
      Printf.sprintf "`%s` and `%s` differ in arity" (Pretty.ty a) (Pretty.ty b)
  | Region_mismatch (a, b) ->
      Printf.sprintf "lifetime mismatch: `%s` vs `%s`" (Region.to_string a)
        (Region.to_string b)
  | Occurs (i, t) -> Printf.sprintf "cyclic type: ?%d occurs in `%s`" i (Pretty.ty t)
  | Projection_ambiguous (p, t) ->
      Printf.sprintf "cannot relate `%s` to `%s` without normalizing"
        (Pretty.projection p) (Pretty.ty t)

let event_kind = function
  | Goal_enter _ -> "goal_enter"
  | Goal_exit _ -> "goal_exit"
  | Goal_flag _ -> "goal_flag"
  | Cand_enter _ -> "cand_enter"
  | Cand_exit _ -> "cand_exit"
  | Cand_assembled _ -> "cand_assembled"
  | Cand_commit _ -> "cand_commit"
  | Unify _ -> "unify"
  | Snapshot_open _ -> "snapshot_open"
  | Snapshot_commit _ -> "snapshot_commit"
  | Snapshot_rollback _ -> "snapshot_rollback"
  | Norm_resolved _ -> "norm_resolved"
  | Cycle_detected _ -> "cycle_detected"
  | Overflow_hit _ -> "overflow_hit"
  | Ambiguity _ -> "ambiguity"
  | Probe_begin _ -> "probe_begin"
  | Probe_end _ -> "probe_end"
  | Overlap_detected _ -> "overlap_detected"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"

(* ------------------------------------------------------------------ *)
(* Equality (for round-trip tests and the replay validator) *)

let equal_res (a : res) (b : res) = a = b
let equal_flag (a : flag) (b : flag) = a = b

let equal_prov a b =
  match (a, b) with
  | Root a, Root b -> String.equal a.origin b.origin && Span.equal a.span b.span
  | Impl_where a, Impl_where b ->
      a.impl_id = b.impl_id && a.clause_idx = b.clause_idx
  | Param_env a, Param_env b -> a = b
  | Supertrait a, Supertrait b -> Path.equal a b
  | Builtin_req a, Builtin_req b -> String.equal a b
  | Normalization, Normalization -> true
  | _ -> false

let equal_source a b =
  match (a, b) with
  | Impl a, Impl b -> a.impl_id = b.impl_id && String.equal a.header b.header
  | Param_env_clause a, Param_env_clause b -> Predicate.equal a b
  | Builtin a, Builtin b -> String.equal a b
  | _ -> false

let equal_failure a b =
  match (a, b) with
  | Head_mismatch (a1, a2), Head_mismatch (b1, b2)
  | Arity (a1, a2), Arity (b1, b2) ->
      Ty.equal a1 b1 && Ty.equal a2 b2
  | Region_mismatch (a1, a2), Region_mismatch (b1, b2) ->
      Region.equal a1 b1 && Region.equal a2 b2
  | Occurs (i, t), Occurs (j, u) -> i = j && Ty.equal t u
  | Projection_ambiguous (p, t), Projection_ambiguous (q, u) ->
      Ty.equal (Ty.Proj p) (Ty.Proj q) && Ty.equal t u
  | _ -> false

let equal_opt eq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> eq a b
  | _ -> false

let equal_list eq a b = List.length a = List.length b && List.for_all2 eq a b

let equal_event (a : event) (b : event) =
  match (a, b) with
  | Goal_enter a, Goal_enter b ->
      a.id = b.id && a.parent = b.parent && Predicate.equal a.pred b.pred
      && a.depth = b.depth && equal_prov a.prov b.prov
  | Goal_exit a, Goal_exit b ->
      a.id = b.id && Predicate.equal a.pred b.pred && equal_res a.result b.result
      && equal_list equal_flag a.flags b.flags
  | Goal_flag a, Goal_flag b -> a.id = b.id && equal_flag a.flag b.flag
  | Cand_enter a, Cand_enter b ->
      a.id = b.id && a.goal = b.goal && equal_source a.source b.source
  | Cand_exit a, Cand_exit b ->
      a.id = b.id && equal_res a.result b.result
      && equal_opt equal_failure a.failure b.failure
  | Cand_assembled a, Cand_assembled b ->
      a.goal = b.goal && a.param_env = b.param_env && a.impls = b.impls
      && a.builtin = b.builtin
  | Cand_commit a, Cand_commit b -> a.goal = b.goal && a.cand = b.cand
  | Unify a, Unify b ->
      a.node = b.node && Ty.equal a.left b.left && Ty.equal a.right b.right
      && equal_opt equal_failure a.failure b.failure
  | Snapshot_open a, Snapshot_open b -> a.snap = b.snap && a.node = b.node
  | Snapshot_commit a, Snapshot_commit b -> a.snap = b.snap
  | Snapshot_rollback a, Snapshot_rollback b -> a.snap = b.snap
  | Norm_resolved a, Norm_resolved b ->
      a.id = b.id && equal_opt Ty.equal a.resolved b.resolved
  | Cycle_detected a, Cycle_detected b -> a.id = b.id && Predicate.equal a.pred b.pred
  | Overflow_hit a, Overflow_hit b ->
      a.id = b.id && a.depth_limited = b.depth_limited
  | Ambiguity a, Ambiguity b -> a.id = b.id && a.succeeded = b.succeeded
  | Probe_begin a, Probe_begin b ->
      String.equal a.origin b.origin && a.alternatives = b.alternatives
  | Probe_end a, Probe_end b -> a.committed = b.committed
  | Overlap_detected a, Overlap_detected b ->
      Path.equal a.trait_ b.trait_ && a.impl_a = b.impl_a && a.impl_b = b.impl_b
      && Ty.equal a.witness b.witness
  | Cache_hit a, Cache_hit b -> a.goal = b.goal && String.equal a.tier b.tier
  | Cache_miss a, Cache_miss b -> a.goal = b.goal && String.equal a.tier b.tier
  | _ -> false

let equal_entry (a : entry) (b : entry) =
  a.seq = b.seq && a.ts_ns = b.ts_ns && equal_event a.ev b.ev

(* ------------------------------------------------------------------ *)
(* Replay: rebuilding the search forest from the event stream.

   The replay validator's contract: the forest rebuilt here from the
   event stream is structurally equal to the trace trees the solver
   built directly ([Solver.Jlog.rtree_of_trace] converts the latter for
   comparison).  Self-checking observability. *)

type rgoal = {
  rg_id : int;
  mutable rg_pred : Predicate.t;
  rg_depth : int;
  rg_prov : prov;
  mutable rg_result : res;
  mutable rg_flags : flag list;
  mutable rg_cands : rcand list;
  mutable rg_unify : entry list;  (** unify events while this goal was innermost *)
}

and rcand = {
  rc_id : int;
  rc_source : source;
  mutable rc_result : res;
  mutable rc_failure : unify_failure option;
  mutable rc_subgoals : rgoal list;
  mutable rc_unify : entry list;
}

type replay_tree = {
  rt_roots : rgoal list;  (** root goals in evaluation order *)
  rt_goals : (int, rgoal) Hashtbl.t;
  rt_cands : (int, rcand) Hashtbl.t;
  rt_parent : (int, int) Hashtbl.t;  (** node id -> enclosing node id *)
}

type frame = F_goal of rgoal | F_cand of rcand

let replay (entries : entry list) : (replay_tree, string) result =
  let goals = Hashtbl.create 64 in
  let cands = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let roots = ref [] in
  let stack = ref [] in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let exception Replay_error of string in
  let fail fmt = Printf.ksprintf (fun m -> raise (Replay_error m)) fmt in
  let step (e : entry) =
    match e.ev with
    | Goal_enter { id; parent = _; pred; depth; prov } ->
        let g =
          {
            rg_id = id;
            rg_pred = pred;
            rg_depth = depth;
            rg_prov = prov;
            rg_result = Maybe;
            rg_flags = [];
            rg_cands = [];
            rg_unify = [];
          }
        in
        Hashtbl.replace goals id g;
        (match !stack with
        | [] -> roots := g :: !roots
        | F_cand c :: _ ->
            c.rc_subgoals <- g :: c.rc_subgoals;
            Hashtbl.replace parent id c.rc_id
        | F_goal pg :: _ ->
            fail "event %d: goal %d entered directly under goal %d" e.seq id pg.rg_id);
        stack := F_goal g :: !stack
    | Goal_exit { id; pred; result; flags } -> (
        match !stack with
        | F_goal g :: rest when g.rg_id = id ->
            g.rg_pred <- pred;
            g.rg_result <- result;
            g.rg_flags <- flags;
            g.rg_cands <- List.rev g.rg_cands;
            g.rg_unify <- List.rev g.rg_unify;
            stack := rest
        | _ -> fail "event %d: goal_exit %d does not match the open node" e.seq id)
    | Goal_flag { id; flag } -> (
        match Hashtbl.find_opt goals id with
        | Some g -> g.rg_flags <- flag :: g.rg_flags
        | None -> fail "event %d: goal_flag for unknown goal %d" e.seq id)
    | Cand_enter { id; goal; source } -> (
        match !stack with
        | F_goal g :: _ when g.rg_id = goal ->
            let c =
              {
                rc_id = id;
                rc_source = source;
                rc_result = Maybe;
                rc_failure = None;
                rc_subgoals = [];
                rc_unify = [];
              }
            in
            Hashtbl.replace cands id c;
            Hashtbl.replace parent id goal;
            g.rg_cands <- c :: g.rg_cands;
            stack := F_cand c :: !stack
        | _ ->
            fail "event %d: cand_enter %d under goal %d, which is not open" e.seq id goal)
    | Cand_exit { id; result; failure } -> (
        match !stack with
        | F_cand c :: rest when c.rc_id = id ->
            c.rc_result <- result;
            c.rc_failure <- failure;
            c.rc_subgoals <- List.rev c.rc_subgoals;
            c.rc_unify <- List.rev c.rc_unify;
            stack := rest
        | _ -> fail "event %d: cand_exit %d does not match the open node" e.seq id)
    | Unify _ -> (
        match !stack with
        | F_goal g :: _ -> g.rg_unify <- e :: g.rg_unify
        | F_cand c :: _ -> c.rc_unify <- e :: c.rc_unify
        | [] -> ())
    | Cand_assembled _ | Cand_commit _ | Snapshot_open _ | Snapshot_commit _
    | Snapshot_rollback _ | Norm_resolved _ | Cycle_detected _ | Overflow_hit _
    | Ambiguity _ | Probe_begin _ | Probe_end _ | Overlap_detected _ | Cache_hit _
    | Cache_miss _ ->
        ()
  in
  try
    List.iter step entries;
    match !stack with
    | [] ->
        Ok
          {
            rt_roots = List.rev !roots;
            rt_goals = goals;
            rt_cands = cands;
            rt_parent = parent;
          }
    | F_goal g :: _ -> err "truncated stream: goal %d never exited" g.rg_id
    | F_cand c :: _ -> err "truncated stream: candidate %d never exited" c.rc_id
  with Replay_error m -> Error m

(** Structural equality of replayed trees — the replay validator's
    comparison.  Attached unify events are bookkeeping, not structure,
    and are ignored. *)
let rec equal_goal (a : rgoal) (b : rgoal) =
  a.rg_id = b.rg_id
  && Predicate.equal a.rg_pred b.rg_pred
  && a.rg_depth = b.rg_depth
  && equal_prov a.rg_prov b.rg_prov
  && equal_res a.rg_result b.rg_result
  && equal_list equal_flag a.rg_flags b.rg_flags
  && equal_list equal_cand a.rg_cands b.rg_cands

and equal_cand (a : rcand) (b : rcand) =
  a.rc_id = b.rc_id
  && equal_source a.rc_source b.rc_source
  && equal_res a.rc_result b.rc_result
  && equal_opt equal_failure a.rc_failure b.rc_failure
  && equal_list equal_goal a.rc_subgoals b.rc_subgoals

(** Pre-order fold over a replayed goal tree. *)
let rec fold_goals f acc (g : rgoal) =
  let acc = f acc g in
  List.fold_left (fun acc c -> List.fold_left (fold_goals f) acc c.rc_subgoals) acc g.rg_cands

(** All failing leaves, mirroring [Solver.Trace.failed_leaves]: failed
    goals with no failing sub-structure. *)
let failed_leaves (g : rgoal) =
  fold_goals
    (fun acc node ->
      match node.rg_result with
      | No | Maybe ->
          let has_failing_child =
            List.exists
              (fun c ->
                c.rc_result <> Yes
                && List.exists (fun s -> s.rg_result <> Yes) c.rc_subgoals)
              node.rg_cands
          in
          if has_failing_child then acc else node :: acc
      | Yes -> acc)
    [] g
  |> List.rev

(** The unification event that rejected this candidate: the first unify
    event attached to it whose failure matches the candidate's recorded
    failure. *)
let rejecting_unify (c : rcand) : entry option =
  match c.rc_failure with
  | None -> None
  | Some f ->
      List.find_opt
        (fun e ->
          match e.ev with
          | Unify { failure = Some g; _ } -> equal_failure f g
          | _ -> false)
        c.rc_unify
