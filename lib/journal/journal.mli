(** The solver search journal: a typed, streaming event log of the
    trait solver's entire search — goal enter/exit, candidate assembly
    and evaluation, unification attempts with structured failures,
    snapshot traffic, normalization, cycles, overflow, and ambiguity.

    Disabled-is-free: with no sink installed every emission point is a
    single load + branch.  Node IDs are assigned monotonically and
    stored in the solver's trace nodes, so rendered proof-tree nodes
    link back to their originating event spans.  This library sits below
    the solver, so payload types structurally mirror [Solver.Trace] /
    [Solver.Unify]; [Solver.Jlog] converts.  The JSONL wire format
    (schema [argus.journal/v1]) is {!Argus_json.Journal_codec}. *)

open Trait_lang

(** {1 Payload types (mirrors of the solver's)} *)

type res = Yes | Maybe | No

type prov =
  | Root of { origin : string; span : Span.t }
  | Impl_where of { impl_id : int; clause_idx : int }
  | Param_env of int
  | Supertrait of Path.t
  | Builtin_req of string
  | Normalization

type flag = Overflow | Depth_limit | Stateful | Speculative | Ambiguous_selection

type source =
  | Impl of { impl_id : int; header : string }
  | Param_env_clause of Predicate.t
  | Builtin of string

type unify_failure =
  | Head_mismatch of Ty.t * Ty.t
  | Arity of Ty.t * Ty.t
  | Region_mismatch of Region.t * Region.t
  | Occurs of int * Ty.t
  | Projection_ambiguous of Ty.projection * Ty.t

(** {1 Events} *)

type event =
  | Goal_enter of {
      id : int;
      parent : int option;
      pred : Predicate.t;
      depth : int;
      prov : prov;
    }
  | Goal_exit of { id : int; pred : Predicate.t; result : res; flags : flag list }
  | Goal_flag of { id : int; flag : flag }
  | Cand_enter of { id : int; goal : int; source : source }
  | Cand_exit of { id : int; result : res; failure : unify_failure option }
  | Cand_assembled of { goal : int; param_env : int; impls : int; builtin : int }
  | Cand_commit of { goal : int; cand : int }
  | Unify of {
      node : int option;
      left : Ty.t;
      right : Ty.t;
      failure : unify_failure option;
    }
  | Snapshot_open of { snap : int; node : int option }
  | Snapshot_commit of { snap : int }
  | Snapshot_rollback of { snap : int }
  | Norm_resolved of { id : int; resolved : Ty.t option }
  | Cycle_detected of { id : int; pred : Predicate.t }
  | Overflow_hit of { id : int; depth_limited : bool }
  | Ambiguity of { id : int; succeeded : int }
  | Probe_begin of { origin : string; alternatives : int }
  | Probe_end of { committed : int option }
  | Overlap_detected of { trait_ : Path.t; impl_a : int; impl_b : int; witness : Ty.t }
  | Cache_hit of { goal : int; tier : string }
      (** the evaluation cache answered goal [goal] from tier ["tree"] or
          ["result"]; with a journal recording the goal is still
          evaluated (observe-only), so structural events are unchanged *)
  | Cache_miss of { goal : int; tier : string }

type entry = { seq : int; ts_ns : int; ev : event }

(** {1 The sink} *)

(** Is a sink installed (and not muted)?  The hot-path guard. *)
val enabled : unit -> bool

(** Install or remove the streaming sink.  Installing resets the
    sequence counter, the open-node stack, and the mute depth. *)
val set_sink : (entry -> unit) option -> unit

(** Emit an event (stamped with sequence number and monotonic-ns
    timestamp).  A no-op when no sink is installed or emission is
    muted. *)
val emit : event -> unit

(** Suppress emission (nestable) — used around candidate-commit re-runs,
    which re-execute already-journaled work. *)
val mute : unit -> unit

val unmute : unit -> unit

(** Allocate the next stable node ID.  Unconditional, so trace nodes
    carry IDs even without a sink. *)
val fresh_id : unit -> int

(** The ID the next {!fresh_id} call would return, without allocating. *)
val peek_id : unit -> int

(** Advance the ID counter by [n] without emitting anything — the
    evaluation cache reserves the ID range a replayed memoized subtree
    occupies, keeping later IDs identical to a cache-off run. *)
val bump_ids : int -> unit

(** The innermost open goal/candidate node, per the emitted structural
    events. *)
val current_node : unit -> int option

(** Remove the sink and restart node IDs from 0.

    The entire journal state (sink, sequence and ID counters, mute
    depth, open-node stack) is {b domain-local}: each domain records its
    own stream.  The batch driver resets per work unit so a unit's
    stream is identical whichever domain runs it. *)
val reset : unit -> unit

(** Restart node IDs from 0 {b without} touching the installed sink —
    what a long-lived session server needs: each {!Solver.Session}
    resolve restarts the ID stream (so replays are byte-identical to a
    one-shot run) while the server's memory sink keeps recording. *)
val reset_ids : unit -> unit

(** Record events into memory while running [f]; restores the previous
    sink afterwards. *)
val with_memory_sink : (unit -> 'a) -> 'a * entry list

(** [shift_entry ~seq ~ids ~snaps e] relocates an entry into another
    stream position: [seq] replaces the sequence number, node-ID fields
    are offset by [ids], snapshot serials by [snaps].  Used to
    concatenate per-unit streams (each recorded from ID 0) into one
    replayable journal. *)
val shift_entry : seq:int -> ids:int -> snaps:int -> entry -> entry

(** {1 Pretty-printing} *)

val res_to_string : res -> string
val flag_to_string : flag -> string
val prov_to_string : prov -> string
val source_to_string : source -> string
val failure_to_string : unify_failure -> string

(** Stable kind tag, as used by the JSONL codec. *)
val event_kind : event -> string

(** {1 Equality} *)

val equal_res : res -> res -> bool
val equal_flag : flag -> flag -> bool
val equal_prov : prov -> prov -> bool
val equal_source : source -> source -> bool
val equal_failure : unify_failure -> unify_failure -> bool
val equal_event : event -> event -> bool
val equal_entry : entry -> entry -> bool

(** {1 Replay}

    Rebuild the search forest from an event stream.  The replay
    validator checks the result is structurally equal to the solver's
    directly-constructed trace trees. *)

type rgoal = {
  rg_id : int;
  mutable rg_pred : Predicate.t;
  rg_depth : int;
  rg_prov : prov;
  mutable rg_result : res;
  mutable rg_flags : flag list;
  mutable rg_cands : rcand list;
  mutable rg_unify : entry list;
}

and rcand = {
  rc_id : int;
  rc_source : source;
  mutable rc_result : res;
  mutable rc_failure : unify_failure option;
  mutable rc_subgoals : rgoal list;
  mutable rc_unify : entry list;
}

type replay_tree = {
  rt_roots : rgoal list;
  rt_goals : (int, rgoal) Hashtbl.t;
  rt_cands : (int, rcand) Hashtbl.t;
  rt_parent : (int, int) Hashtbl.t;
}

(** Rebuild the forest; [Error] describes the first impossible nesting
    or truncation encountered. *)
val replay : entry list -> (replay_tree, string) result

(** Structural equality (IDs, predicates, results, flags, candidate
    structure); attached unify events are ignored. *)
val equal_goal : rgoal -> rgoal -> bool

val equal_cand : rcand -> rcand -> bool
val fold_goals : ('a -> rgoal -> 'a) -> 'a -> rgoal -> 'a

(** Failed goals with no failing sub-structure, mirroring
    [Solver.Trace.failed_leaves]. *)
val failed_leaves : rgoal -> rgoal list

(** The unify event whose failure matches the candidate's recorded
    rejection, if the candidate was rejected. *)
val rejecting_unify : rcand -> entry option
