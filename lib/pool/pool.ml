(** A fixed-size domain pool: [jobs] worker domains servicing one shared
    queue under a mutex + condition, with ordered result collection and
    first-by-index exception propagation (see the interface).

    Memory-model note: a worker writes its result slot {e before} taking
    the batch mutex to bump the done counter, and the caller reads the
    slots only {e after} observing the final count under the same mutex
    — the release/acquire pair on that mutex makes every slot write
    visible to the caller. *)

let c_tasks = Telemetry.counter "pool.tasks"
let c_batches = Telemetry.counter "pool.batches"
let c_domains = Telemetry.counter "pool.domains"

type task = Run of (unit -> unit) | Quit

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable domains : unit Domain.t array;  (** [[||]] once shut down *)
}

let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.mutex
  done;
  let task = Queue.pop t.queue in
  Mutex.unlock t.mutex;
  match task with
  | Quit -> ()
  | Run f ->
      f ();
      worker t

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n_jobs = jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      domains = [||];
    }
  in
  t.domains <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  Telemetry.record_max c_domains jobs;
  t

let jobs t = t.n_jobs

let map (type b) t (f : 'a -> b) (xs : 'a list) : b list =
  Telemetry.incr c_batches;
  let inputs = Array.of_list xs in
  let n = Array.length inputs in
  if n = 0 then []
  else begin
    let results : b option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let completed = ref 0 in
    let task i () =
      Telemetry.incr c_tasks;
      (match f inputs.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          errors.(i) <- Some (e, bt));
      (* Any telemetry events the task buffered belong to the merged
         stream, not to whichever worker happened to run it. *)
      Telemetry.flush_domain_events ();
      Mutex.lock batch_mutex;
      incr completed;
      if !completed = n then Condition.broadcast batch_done;
      Mutex.unlock batch_mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (Run (task i)) t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Mutex.lock batch_mutex;
    while !completed < n do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.to_list (Array.map Option.get results)
  end

let shutdown t =
  let ds = t.domains in
  if Array.length ds > 0 then begin
    t.domains <- [||];
    Mutex.lock t.mutex;
    for _ = 1 to t.n_jobs do
      Queue.add Quit t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Array.iter Domain.join ds
  end

let run ?pool ~jobs f xs =
  match pool with
  | Some p -> map p f xs
  | None ->
      if jobs <= 1 then List.map f xs
      else begin
        let p = create ~jobs in
        Fun.protect ~finally:(fun () -> shutdown p) (fun () -> map p f xs)
      end
