(** A fixed-size domain pool for batch work.

    [create ~jobs] spawns [jobs] worker domains that service a shared
    work queue; {!map} fans a list out over them and collects results
    {b in input order}, so callers that need deterministic output simply
    iterate the result list.  A worker exception is captured with its
    backtrace and re-raised in the caller (first failing input wins)
    after the whole batch has drained, so the pool is never left with
    orphaned in-flight tasks.

    The pool makes no ordering promises about {e execution} — tasks run
    whenever a worker frees up — so tasks must not depend on each other.
    Determinism is the caller's contract: give {!map} pure-per-input
    work (or work whose shared effects are commutative, like the
    evaluation cache) and the output order does the rest.

    Telemetry: [pool.tasks] counts tasks executed, [pool.batches] counts
    {!map} calls, [pool.domains] records the high-water worker count.
    Workers flush their domain-local telemetry event buffers after each
    task so {!Telemetry.events} sees a complete stream after the batch
    returns. *)

type t

(** Spawn [jobs] worker domains.  @raise Invalid_argument when
    [jobs < 1]. *)
val create : jobs:int -> t

(** The worker count the pool was created with. *)
val jobs : t -> int

(** [map pool f xs] applies [f] to every element of [xs] on the worker
    domains and returns the results in input order.  Blocks until every
    task has finished; if any task raised, re-raises the exception of
    the earliest failing input (with its original backtrace) after the
    batch drains. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Stop the workers and join their domains.  Idempotent; the pool is
    unusable afterwards. *)
val shutdown : t -> unit

(** [run ?pool ~jobs f xs]: the batch-driver entry point.  With [pool]
    supplied, delegates to {!map}.  Otherwise [jobs <= 1] is the exact
    sequential path — a plain [List.map], no domain ever spawned — and
    [jobs > 1] creates a transient pool, maps, and shuts it down. *)
val run : ?pool:t -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
