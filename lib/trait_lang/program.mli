(** A whole L_TRAIT program: the context (tydecls, trdecls, impls, fns)
    plus the root obligations ({i goals}) that type-checking the user's
    code would generate, with the indexes the solver needs. *)

type goal = {
  goal_pred : Predicate.t;
  goal_span : Span.t;  (** where the obligation arose *)
  goal_origin : string;  (** e.g. "the call to .load(conn)" *)
}

type t

val empty : t

exception Duplicate_decl of Path.t

val add_type : Decl.tydecl -> t -> t
val add_trait : Decl.trdecl -> t -> t
val add_fn : Decl.fndecl -> t -> t
val add_impl : Decl.impl -> t -> t

(** Append a goal (goals solve in insertion order). *)
val add_goal : goal -> t -> t

(** Replace the goal list (e.g. to reorder). *)
val with_goals : goal list -> t -> t

val add_decl : Decl.t -> t -> t
val of_decls : ?goals:goal list -> Decl.t list -> t

val types : t -> Decl.tydecl list
val traits : t -> Decl.trdecl list
val impls : t -> Decl.impl list
val fns : t -> Decl.fndecl list
val goals : t -> goal list

val find_type : t -> Path.t -> Decl.tydecl option
val find_trait : t -> Path.t -> Decl.trdecl option
val find_fn : t -> Path.t -> Decl.fndecl option

(** All impl blocks of a trait — the CtxtLinks Fig. 8b listing. *)
val impls_of_trait : t -> Path.t -> Decl.impl list

val find_impl : t -> int -> Decl.impl option

(** Resolve an unqualified item name to its unique path. *)
val resolve_name :
  t -> string -> (Path.t, [ `Not_found of string | `Ambiguous of string * Path.t list ]) result

val decl_count : t -> int

(** An identity token for the program's declaration context: every
    [add_type]/[add_trait]/[add_fn]/[add_impl] yields a fresh stamp, so
    equal stamps imply identical contexts.  Goal edits ([add_goal],
    [with_goals]) preserve it.  The solver's global evaluation cache keys
    on this. *)
val stamp : t -> int
