(** Structural fingerprints of declarations, and the program differ that
    drives incremental re-solving (red-green revalidation).

    A fingerprint covers the {e whole} declaration value — including its
    span and (for impls) its [impl_id] — so two declarations with equal
    fingerprints are bit-identical OCaml values.  That strictness is what
    lets a surviving cache entry replay byte-identically after an edit:
    any cached proof-tree fragment that embeds the old declaration (via
    [Trace.Cand_impl] provenance) is guaranteed to embed exactly the value
    the new program would produce.  The cost is over-invalidation when an
    edit shifts the spans of later declarations; that is sound (extra
    eviction, never a stale survivor). *)

(** A dirty dependency key: the unit of invalidation.  Cache entries
    record which keys they consulted while solving (see
    {!Solver.Eval_cache}); the differ reports which keys an edit
    dirtied. *)
type dep =
  | Dep_type of Path.t  (** the [struct] declaration at this path *)
  | Dep_trait of Path.t  (** the [trait] declaration at this path *)
  | Dep_fn of Path.t  (** the [fn] declaration at this path *)
  | Dep_impls of Path.t
      (** the {e set} of impl blocks for the trait at this path — the
          clause-DB view: candidate enumeration depends on the whole set,
          so any impl added/removed/changed under a trait dirties it *)

val dep_equal : dep -> dep -> bool
val dep_to_string : dep -> string

val type_fp : Decl.tydecl -> string
val trait_fp : Decl.trdecl -> string
val fn_fp : Decl.fndecl -> string
val impl_fp : Decl.impl -> string

(** The classified result of diffing an old program against a new one. *)
type diff = {
  dirty : dep list;  (** deduplicated dirty keys, stable order *)
  changed_decls : int;  (** changed + added + removed declarations *)
  dirty_traits : Path.Set.t;
      (** traits whose impl {e set} changed — exactly the fast-reject
          index buckets that must be rebuilt (PR 7) *)
}

val no_diff : diff

(** Classify an old→new program pair.  Named declarations (types,
    traits, fns) are matched by path; impls — which have no path — are
    compared as per-trait fingerprint multisets, so reordering impls of
    one trait dirties that trait's [Dep_impls] (candidate order is
    program order and is observable in proof trees). *)
val diff : old_program:Program.t -> new_program:Program.t -> diff
