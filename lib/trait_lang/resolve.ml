(** Name resolution: lowers the raw surface {!Ast} to a {!Program.t}.

    Responsibilities:
    - two-pass name binding (declarations may be used before they appear);
    - disambiguating identifiers into primitives, bound type parameters,
      and nominal constructors;
    - crate provenance: items inside [extern crate c { ... }] get
      [External c] paths, everything else is [Local];
    - arity checking of constructor and trait applications;
    - desugaring: [T: A + B] compound bounds, [Iterator<Item = U>]
      associated-type bindings, supertrait bounds, [Self];
    - numbering the [_] inference holes in goals. *)

type error =
  | Unknown_name of string * Span.t
  | Ambiguous_name of string * Path.t list * Span.t
  | Arity_mismatch of { what : string; expected : int; got : int; span : Span.t }
  | Self_outside_impl of Span.t
  | Binding_not_allowed of Span.t
  | Unknown_assoc of { trait_ : Path.t; assoc : string; span : Span.t }
  | Not_a_trait of string * Span.t
  | Not_a_type of string * Span.t
  | Duplicate_decl of string * Span.t
  | Generic_fn_item of string * Span.t
  | Projection_expected of Span.t

exception Error of error

let error_message = function
  | Unknown_name (n, _) -> Printf.sprintf "cannot find `%s` in this scope" n
  | Ambiguous_name (n, paths, _) ->
      Printf.sprintf "`%s` is ambiguous: %s" n
        (String.concat ", " (List.map Path.to_string paths))
  | Arity_mismatch { what; expected; got; _ } ->
      Printf.sprintf "%s expects %d generic argument%s but %d %s supplied" what expected
        (if expected = 1 then "" else "s")
        got
        (if got = 1 then "was" else "were")
  | Self_outside_impl _ -> "`Self` is only allowed inside traits and impls"
  | Binding_not_allowed _ ->
      "associated type bindings (`Assoc = T`) are only allowed in trait bounds"
  | Unknown_assoc { trait_; assoc; _ } ->
      Printf.sprintf "trait `%s` has no associated type `%s`" (Path.to_string trait_) assoc
  | Not_a_trait (n, _) -> Printf.sprintf "`%s` is not a trait" n
  | Not_a_type (n, _) -> Printf.sprintf "`%s` is not a type" n
  | Duplicate_decl (n, _) -> Printf.sprintf "`%s` is declared more than once" n
  | Generic_fn_item (n, _) ->
      Printf.sprintf "`fn[%s]` cannot reference a generic function" n
  | Projection_expected _ -> "left-hand side of `==` must be a projection `<T as Trait>::Assoc`"

let error_span = function
  | Unknown_name (_, s)
  | Ambiguous_name (_, _, s)
  | Arity_mismatch { span = s; _ }
  | Self_outside_impl s
  | Binding_not_allowed s
  | Unknown_assoc { span = s; _ }
  | Not_a_trait (_, s)
  | Not_a_type (_, s)
  | Duplicate_decl (_, s)
  | Generic_fn_item (_, s)
  | Projection_expected s ->
      s

(* ------------------------------------------------------------------ *)
(* Pass 1: collect declared names. *)

type sig_entry = {
  se_path : Path.t;
  se_arity : int;  (** number of type parameters (excluding Self for traits) *)
  se_assocs : string list;  (** associated type names, traits only *)
  se_fn : (Ast.raw_ty list * Ast.raw_ty option * Ast.raw_generics) option;
      (** raw signature for fn items *)
}

type namespace = { by_name : (string, sig_entry list) Hashtbl.t }

let ns_create () = { by_name = Hashtbl.create 64 }

let ns_add ns name entry span =
  let existing = Option.value ~default:[] (Hashtbl.find_opt ns.by_name name) in
  if List.exists (fun e -> Path.equal e.se_path entry.se_path) existing then
    raise (Error (Duplicate_decl (Path.to_string entry.se_path, span)));
  Hashtbl.replace ns.by_name name (entry :: existing)

(** Resolve [segments] in [ns].  A one-segment name matches by item name
    (must be unique); a multi-segment name must match a suffix of exactly
    one declared path, optionally starting with its crate name or
    [crate]. *)
let ns_find ns segments span =
  let name = List.nth segments (List.length segments - 1) in
  match Hashtbl.find_opt ns.by_name name with
  | None -> None
  | Some entries ->
      let qualifies (e : sig_entry) =
        match segments with
        | [ _ ] -> true
        | _ ->
            let full =
              (match Path.crate e.se_path with
              | Path.Local -> [ "crate" ]
              | Path.External c -> [ c ])
              @ Path.segments e.se_path
            in
            (* [segments] must be a suffix of [full] *)
            let is_suffix xs ys =
              List.length xs <= List.length ys
              &&
              let drop = List.length ys - List.length xs in
              let rec nth_tail n l = if n = 0 then l else nth_tail (n - 1) (List.tl l) in
              List.for_all2 String.equal xs (nth_tail drop ys)
            in
            is_suffix segments full
      in
      (match List.filter qualifies entries with
      | [ one ] -> Some one
      | [] -> None
      | many ->
          raise
            (Error
               (Ambiguous_name
                  (String.concat "::" segments, List.map (fun e -> e.se_path) many, span))))

type tables = { types : namespace; traits : namespace; fns : namespace }

let collect (items : Ast.t) : tables =
  let tables = { types = ns_create (); traits = ns_create (); fns = ns_create () } in
  let rec go crate rev_mods items =
    List.iter
      (fun (it : Ast.item) ->
        match it with
        | Ast.RStruct { name; generics; span; _ } ->
            let path = Path.v ~crate (List.rev (name :: rev_mods)) in
            ns_add tables.types name
              {
                se_path = path;
                se_arity = List.length generics.rg_params;
                se_assocs = [];
                se_fn = None;
              }
              span
        | Ast.RTrait { name; generics; assocs; span; _ } ->
            let path = Path.v ~crate (List.rev (name :: rev_mods)) in
            ns_add tables.traits name
              {
                se_path = path;
                se_arity = List.length generics.rg_params;
                se_assocs = List.map (fun (a : Ast.raw_assoc_decl) -> a.ra_name) assocs;
                se_fn = None;
              }
              span
        | Ast.RFn { name; generics; inputs; output; span; _ } ->
            let path = Path.v ~crate (List.rev (name :: rev_mods)) in
            ns_add tables.fns name
              {
                se_path = path;
                se_arity = List.length generics.rg_params;
                se_assocs = [];
                se_fn = Some (inputs, output, generics);
              }
              span
        | Ast.RImpl _ | Ast.RGoal _ -> ()
        | Ast.RMod (m, sub) -> go crate (m :: rev_mods) sub
        | Ast.RExtern (c, sub) -> go (Path.External c) rev_mods sub)
      items
  in
  go Path.Local [] items;
  tables

(* ------------------------------------------------------------------ *)
(* Pass 2: lower items. *)

type env = {
  tables : tables;
  bound_params : string list;  (** type parameters in scope *)
  self_ty : Ty.t option;  (** [Self] resolution, if in an impl/trait *)
  fresh_infer : unit -> int;
}

let prim_of_name = function
  | "i32" | "i64" | "u8" | "u32" -> Some Ty.Int
  | "usize" | "isize" -> Some Ty.Uint
  | "f32" | "f64" -> Some Ty.Float
  | "bool" -> Some Ty.Bool
  | "String" | "str" -> Some Ty.Str
  | _ -> None

let rec lower_ty env (t : Ast.raw_ty) : Ty.t =
  match t with
  | Ast.RInfer _ -> Ty.Infer (env.fresh_infer ())
  | Ast.RSelf sp -> (
      match env.self_ty with Some t -> t | None -> raise (Error (Self_outside_impl sp)))
  | Ast.RRef (lt, is_mut, inner) ->
      let region =
        match lt with
        | Some "static" -> Region.Static
        | Some l -> Region.Named l
        | None -> Region.Erased
      in
      let inner = lower_ty env inner in
      if is_mut then Ty.RefMut (region, inner) else Ty.Ref (region, inner)
  | Ast.RTuple ts -> Ty.tuple (List.map (lower_ty env) ts)
  | Ast.RFnPtr (inputs, output) ->
      Ty.FnPtr
        (List.map (lower_ty env) inputs, Option.fold ~none:Ty.Unit ~some:(lower_ty env) output)
  | Ast.RFnItem (segments, sp) -> (
      let name = String.concat "::" segments in
      match ns_find env.tables.fns segments sp with
      | None -> raise (Error (Unknown_name (name, sp)))
      | Some e -> (
          match e.se_fn with
          | Some (inputs, output, g) ->
              if g.rg_params <> [] then raise (Error (Generic_fn_item (name, sp)));
              let fenv = { env with bound_params = []; self_ty = None } in
              Ty.FnItem
                ( e.se_path,
                  List.map (lower_ty fenv) inputs,
                  Option.fold ~none:Ty.Unit ~some:(lower_ty fenv) output )
          | None -> raise (Error (Unknown_name (name, sp)))))
  | Ast.RDyn (segments, args, sp) ->
      let tr = lower_trait_ref env segments args sp in
      Ty.Dynamic tr
  | Ast.RProj (self_ty, (tr_name, tr_args, tr_span), assoc, assoc_args) ->
      Ty.Proj (lower_projection env self_ty (tr_name, tr_args, tr_span) assoc assoc_args)
  | Ast.RName (segments, args, sp) -> (
      match segments with
      | [ one ] when List.mem one env.bound_params ->
          if args <> [] then
            raise
              (Error
                 (Arity_mismatch
                    { what = "type parameter " ^ one; expected = 0; got = List.length args; span = sp }));
          Ty.Param one
      | [ one ] when prim_of_name one <> None ->
          if args <> [] then
            raise
              (Error
                 (Arity_mismatch
                    { what = one; expected = 0; got = List.length args; span = sp }));
          Option.get (prim_of_name one)
      | _ -> (
          let name = String.concat "::" segments in
          match ns_find env.tables.types segments sp with
          | Some e ->
              let ty_args = lower_args env args sp ~allow_bindings:false in
              let n_tys =
                List.length
                  (List.filter (function Ty.Ty _ -> true | _ -> false) ty_args)
              in
              if n_tys <> e.se_arity then
                raise
                  (Error
                     (Arity_mismatch
                        { what = "struct " ^ name; expected = e.se_arity; got = n_tys; span = sp }));
              Ty.Ctor (e.se_path, ty_args)
          | None ->
              (* helpful error: is it a trait or fn used as a type? *)
              if ns_find env.tables.traits segments sp <> None then
                raise (Error (Not_a_type (name, sp)))
              else raise (Error (Unknown_name (name, sp)))))

and lower_args env (args : Ast.raw_arg list) sp ~allow_bindings : Ty.arg list =
  List.filter_map
    (fun (a : Ast.raw_arg) ->
      match a with
      | Ast.RTy t -> Some (Ty.Ty (lower_ty env t))
      | Ast.RLt "static" -> Some (Ty.Lifetime Region.Static)
      | Ast.RLt l -> Some (Ty.Lifetime (Region.Named l))
      | Ast.RBinding _ ->
          if allow_bindings then None else raise (Error (Binding_not_allowed sp)))
    args

and lower_trait_ref env segments args sp : Ty.trait_ref =
  let name = String.concat "::" segments in
  match ns_find env.tables.traits segments sp with
  | Some e ->
      let ty_args = lower_args env args sp ~allow_bindings:true in
      let n_tys = List.length (List.filter (function Ty.Ty _ -> true | _ -> false) ty_args) in
      if n_tys <> e.se_arity then
        raise
          (Error
             (Arity_mismatch
                { what = "trait " ^ name; expected = e.se_arity; got = n_tys; span = sp }));
      { Ty.trait = e.se_path; args = ty_args }
  | None ->
      if ns_find env.tables.types segments sp <> None then raise (Error (Not_a_trait (name, sp)))
      else raise (Error (Unknown_name (name, sp)))

and lower_projection env self_ty (tr_name, tr_args, tr_span) assoc assoc_args : Ty.projection
    =
  let tr = lower_trait_ref env tr_name tr_args tr_span in
  (match ns_find env.tables.traits tr_name tr_span with
  | Some e when not (List.mem assoc e.se_assocs) ->
      raise (Error (Unknown_assoc { trait_ = e.se_path; assoc; span = tr_span }))
  | _ -> ());
  {
    Ty.self_ty = lower_ty env self_ty;
    proj_trait = tr;
    assoc;
    assoc_args = lower_args env assoc_args tr_span ~allow_bindings:false;
  }

(** Lower a bound on [self] into predicates: the trait bound itself plus
    one projection predicate per [Assoc = τ] binding. *)
let lower_bound env (self : Ty.t) (b : Ast.raw_bound) : Predicate.t list =
  let tr = lower_trait_ref env b.bound_name b.bound_args b.bound_span in
  let head = Predicate.Trait { self_ty = self; trait_ref = tr } in
  let bindings =
    List.filter_map
      (fun (a : Ast.raw_arg) ->
        match a with
        | Ast.RBinding (assoc, t) ->
            let term = lower_ty env t in
            Some
              (Predicate.Projection
                 {
                   projection = { self_ty = self; proj_trait = tr; assoc; assoc_args = [] };
                   term;
                 })
        | _ -> None)
      b.bound_args
  in
  head :: bindings

let lower_pred_raw env (p : Ast.raw_pred) : Predicate.t list =
  match p with
  | Ast.RPTrait (self, bnds) ->
      let self = lower_ty env self in
      List.concat_map (lower_bound env self) bnds
  | Ast.RPOutlives (t, "static") -> [ Predicate.TypeOutlives (lower_ty env t, Region.Static) ]
  | Ast.RPOutlives (t, l) -> [ Predicate.TypeOutlives (lower_ty env t, Region.Named l) ]
  | Ast.RPProjEq (lhs, rhs) -> (
      match lower_ty env lhs with
      | Ty.Proj proj -> [ Predicate.Projection { projection = proj; term = lower_ty env rhs } ]
      | _ ->
          let sp =
            match lhs with
            | Ast.RName (_, _, s) | Ast.RInfer s | Ast.RSelf s | Ast.RDyn (_, _, s)
            | Ast.RFnItem (_, s) ->
                s
            | _ -> Span.dummy
          in
          raise (Error (Projection_expected sp)))

(* Predicates flow straight into the solver (where-clauses, goals), so
   hash-cons them — and transitively every type they mention — on the way
   out of lowering.  Downstream code then compares them by pointer. *)
let lower_pred env p = List.map Interner.predicate (lower_pred_raw env p)

(* ------------------------------------------------------------------ *)
(* Expressions (fn bodies) *)

(** Lower a raw expression.  Name resolution: declared fns win over
    locals of the same name (document: don't shadow a fn); capitalized
    names must be structs; [true]/[false] are boolean literals. *)
let rec lower_expr env (e : Ast.raw_expr) : Expr.t =
  match e with
  | Ast.RE_int sp -> Expr.Lit_int sp
  | Ast.RE_string sp -> Expr.Lit_str sp
  | Ast.RE_tuple ([], sp) -> Expr.Lit_unit sp
  | Ast.RE_tuple (es, sp) -> Expr.Tuple_expr (List.map (lower_expr env) es, sp)
  | Ast.RE_method (recv, m, args, sp) ->
      Expr.Method (lower_expr env recv, m, List.map (lower_expr env) args, sp)
  | Ast.RE_name ([ "true" ], sp) | Ast.RE_name ([ "false" ], sp) -> Expr.Lit_bool sp
  | Ast.RE_name (segments, sp) -> (
      match ns_find env.tables.fns segments sp with
      | Some e -> Expr.Fn_ref (e.se_path, sp)
      | None -> (
          match ns_find env.tables.types segments sp with
          | Some e -> Expr.Ctor (e.se_path, [], sp)
          | None -> (
              match segments with
              | [ one ] when String.length one > 0 && one.[0] >= 'a' && one.[0] <= 'z' ->
                  Expr.Var (one, sp)
              | _ -> raise (Error (Unknown_name (String.concat "::" segments, sp))))))
  | Ast.RE_call (segments, args, sp) -> (
      let args = List.map (lower_expr env) args in
      match ns_find env.tables.fns segments sp with
      | Some e -> Expr.Call (e.se_path, args, sp)
      | None -> (
          match ns_find env.tables.types segments sp with
          | Some e -> Expr.Ctor (e.se_path, args, sp)
          | None -> raise (Error (Unknown_name (String.concat "::" segments, sp)))))

let lower_stmt env (st : Ast.raw_stmt) : Expr.stmt =
  match st with
  | Ast.RS_let { name; ann; rhs; span } ->
      Expr.Let { name; ann = Option.map (lower_ty env) ann; rhs = lower_expr env rhs; span }
  | Ast.RS_expr e -> Expr.Expr_stmt (lower_expr env e)

let lower_generics env (g : Ast.raw_generics) : Decl.generics * env =
  let env = { env with bound_params = g.rg_params @ env.bound_params } in
  let where_clauses = List.concat_map (lower_pred env) g.rg_where in
  ({ Decl.lifetimes = g.rg_lifetimes; ty_params = g.rg_params; where_clauses }, env)

(* ------------------------------------------------------------------ *)
(* Driving the lowering over the item tree. *)

let lower (items : Ast.t) : Program.t =
  let tables = collect items in
  let infer_counter = ref 0 in
  let fresh_infer () =
    let i = !infer_counter in
    incr infer_counter;
    i
  in
  let impl_counter = ref 0 in
  let base_env =
    { tables; bound_params = []; self_ty = None; fresh_infer }
  in
  let program = ref Program.empty in
  let rec go crate rev_mods items =
    List.iter
      (fun (it : Ast.item) ->
        match it with
        | Ast.RMod (m, sub) -> go crate (m :: rev_mods) sub
        | Ast.RExtern (c, sub) -> go (Path.External c) rev_mods sub
        | Ast.RStruct { name; generics; repr; span } ->
            let path = Path.v ~crate (List.rev (name :: rev_mods)) in
            let g, env = lower_generics base_env generics in
            let repr = Option.map (fun t -> Interner.ty (lower_ty env t)) repr in
            program :=
              Program.add_type
                { Decl.ty_path = path; ty_generics = g; ty_repr = repr; ty_span = span }
                !program
        | Ast.RTrait { name; generics; supertraits; assocs; methods; span; attrs } ->
            let path = Path.v ~crate (List.rev (name :: rev_mods)) in
            let env0 = { base_env with self_ty = Some (Ty.Param "Self") } in
            let g, env = lower_generics env0 generics in
            let supers =
              List.map
                (fun (b : Ast.raw_bound) ->
                  Interner.trait_ref
                    (lower_trait_ref env b.bound_name b.bound_args b.bound_span))
                supertraits
            in
            let lower_assoc (a : Ast.raw_assoc_decl) : Decl.assoc_ty_decl =
              let ag, aenv = lower_generics env a.ra_generics in
              let bounds =
                List.map
                  (fun (b : Ast.raw_bound) ->
                    Interner.trait_ref
                      (lower_trait_ref aenv b.bound_name b.bound_args b.bound_span))
                  a.ra_bounds
              in
              {
                Decl.assoc_name = a.ra_name;
                assoc_generics = ag;
                assoc_bounds = bounds;
                assoc_default =
                  Option.map (fun t -> Interner.ty (lower_ty aenv t)) a.ra_default;
              }
            in
            let on_unimpl =
              List.find_map (fun (Ast.On_unimplemented m) -> Some m) attrs
            in
            let lower_method (m : Ast.raw_method) : Decl.method_sig =
              let mg, menv = lower_generics env m.rm_generics in
              {
                Decl.m_name = m.rm_name;
                m_generics = mg;
                m_inputs = List.map (fun t -> Interner.ty (lower_ty menv t)) m.rm_inputs;
                m_output =
                  Interner.ty
                    (Option.fold ~none:Ty.Unit ~some:(lower_ty menv) m.rm_output);
                m_span = m.rm_span;
              }
            in
            program :=
              Program.add_trait
                {
                  Decl.tr_path = path;
                  tr_generics = g;
                  tr_assocs = List.map lower_assoc assocs;
                  tr_methods = List.map lower_method methods;
                  tr_supertraits = supers;
                  tr_span = span;
                  tr_on_unimplemented = on_unimpl;
                }
                !program
        | Ast.RFn { name; generics; inputs; param_names; output; body; span } ->
            let path = Path.v ~crate (List.rev (name :: rev_mods)) in
            let g, env = lower_generics base_env generics in
            program :=
              Program.add_fn
                {
                  Decl.fn_path = path;
                  fn_generics = g;
                  fn_inputs = List.map (fun t -> Interner.ty (lower_ty env t)) inputs;
                  fn_param_names = param_names;
                  fn_output =
                    Interner.ty (Option.fold ~none:Ty.Unit ~some:(lower_ty env) output);
                  fn_body = Option.map (List.map (lower_stmt env)) body;
                  fn_span = span;
                }
                !program
        | Ast.RImpl { generics; trait_; self_ty; assoc_bindings; span } ->
            (* Bind the generic params first so the self type can use them,
               then resolve [Self] to the self type for where-clauses. *)
            let env_params =
              { base_env with bound_params = generics.rg_params @ base_env.bound_params }
            in
            let self = Interner.ty (lower_ty env_params self_ty) in
            let env_self = { env_params with self_ty = Some self } in
            let g, env = lower_generics env_self generics in
            let tr =
              Interner.trait_ref
                (lower_trait_ref env trait_.bound_name trait_.bound_args trait_.bound_span)
            in
            let bindings =
              List.map
                (fun (bname, bg, bt) ->
                  let bgen, benv = lower_generics env bg in
                  {
                    Decl.bind_name = bname;
                    bind_generics = bgen;
                    bind_ty = Interner.ty (lower_ty benv bt);
                  })
                assoc_bindings
            in
            let id = !impl_counter in
            incr impl_counter;
            program :=
              Program.add_impl
                {
                  Decl.impl_id = id;
                  impl_generics = g;
                  impl_trait = tr;
                  impl_self = self;
                  impl_assocs = bindings;
                  impl_span = span;
                  impl_crate = crate;
                }
                !program
        | Ast.RGoal { pred; origin; span } ->
            let preds = lower_pred base_env pred in
            List.iter
              (fun p ->
                program :=
                  Program.add_goal
                    {
                      Program.goal_pred = p;
                      goal_span = span;
                      goal_origin =
                        Option.value ~default:"this expression" origin;
                    }
                    !program)
              preds)
      items
  in
  go Path.Local [] items;
  !program

(** Parse and resolve a source string in one step. *)
let program_of_string ~file src : Program.t = lower (Parser.parse ~file src)
