(** A whole L_TRAIT program: a context [ctxt ⟶ tydecl̄; trdecl̄; impl̄]
    plus the *goals* — the root obligations that type-checking the user's
    code would generate (e.g. the call to [.load(conn)] in §2.1 generates
    [SelectStatement<..>: LoadQuery<'_, _, (i32, String)>]).

    The context is indexed for the lookups the solver performs constantly:
    impls by trait, declarations by path. *)

type goal = {
  goal_pred : Predicate.t;
  goal_span : Span.t;  (** where in the user program the obligation arose *)
  goal_origin : string;  (** human description, e.g. "the call to .load(conn)" *)
}

type t = {
  stamp : int;  (** identity token; see {!stamp} *)
  types : Decl.tydecl list;
  traits : Decl.trdecl list;
  impls : Decl.impl list;
  fns : Decl.fndecl list;
  goals : goal list;
  (* Indexes, derived. *)
  types_by_path : Decl.tydecl Path.Map.t;
  traits_by_path : Decl.trdecl Path.Map.t;
  fns_by_path : Decl.fndecl Path.Map.t;
  impls_by_trait : Decl.impl list Path.Map.t;
}

(* Every declaration-changing operation takes a fresh stamp, so two
   programs with the same stamp have identical contexts (the converse
   need not hold).  The solver's global evaluation cache keys on the
   stamp to keep entries from leaking between programs.  Goal edits keep
   the stamp: goals are inputs to the solver, not part of the context it
   searches.  The counter is atomic so programs can be loaded
   concurrently from several domains; a stamp's numeric value carries no
   meaning beyond uniqueness. *)
let stamp_counter = Atomic.make 0

let fresh_stamp () = Atomic.fetch_and_add stamp_counter 1 + 1

let empty =
  {
    stamp = 0;
    types = [];
    traits = [];
    impls = [];
    fns = [];
    goals = [];
    types_by_path = Path.Map.empty;
    traits_by_path = Path.Map.empty;
    fns_by_path = Path.Map.empty;
    impls_by_trait = Path.Map.empty;
  }

let stamp p = p.stamp

exception Duplicate_decl of Path.t

let add_type (d : Decl.tydecl) p =
  if Path.Map.mem d.ty_path p.types_by_path then raise (Duplicate_decl d.ty_path);
  {
    p with
    stamp = fresh_stamp ();
    types = d :: p.types;
    types_by_path = Path.Map.add d.ty_path d p.types_by_path;
  }

let add_trait (d : Decl.trdecl) p =
  if Path.Map.mem d.tr_path p.traits_by_path then raise (Duplicate_decl d.tr_path);
  {
    p with
    stamp = fresh_stamp ();
    traits = d :: p.traits;
    traits_by_path = Path.Map.add d.tr_path d p.traits_by_path;
  }

let add_fn (d : Decl.fndecl) p =
  if Path.Map.mem d.fn_path p.fns_by_path then raise (Duplicate_decl d.fn_path);
  {
    p with
    stamp = fresh_stamp ();
    fns = d :: p.fns;
    fns_by_path = Path.Map.add d.fn_path d p.fns_by_path;
  }

let add_impl (d : Decl.impl) p =
  let key = d.impl_trait.trait in
  let existing = Option.value ~default:[] (Path.Map.find_opt key p.impls_by_trait) in
  {
    p with
    stamp = fresh_stamp ();
    impls = d :: p.impls;
    impls_by_trait = Path.Map.add key (existing @ [ d ]) p.impls_by_trait;
  }

let add_goal g p = { p with goals = p.goals @ [ g ] }

let with_goals goals p = { p with goals }

let add_decl (d : Decl.t) p =
  match d with
  | Decl.Type t -> add_type t p
  | Decl.Trait t -> add_trait t p
  | Decl.Impl i -> add_impl i p
  | Decl.Fn f -> add_fn f p

let of_decls ?(goals = []) decls =
  let p = List.fold_left (fun p d -> add_decl d p) empty decls in
  List.fold_left (fun p g -> add_goal g p) p goals

(* Declaration order: the [types]/[traits]/... lists above are built by
   consing, so expose them reversed. *)
let types p = List.rev p.types
let traits p = List.rev p.traits
let impls p = List.rev p.impls
let fns p = List.rev p.fns
let goals p = p.goals

let find_type p path = Path.Map.find_opt path p.types_by_path
let find_trait p path = Path.Map.find_opt path p.traits_by_path
let find_fn p path = Path.Map.find_opt path p.fns_by_path

(** All impl blocks whose trait is [trait_path] — the CtxtLinks
    "list the impls of this trait" popup reads exactly this. *)
let impls_of_trait p trait_path =
  Option.value ~default:[] (Path.Map.find_opt trait_path p.impls_by_trait)

let find_impl p id = List.find_opt (fun (i : Decl.impl) -> i.impl_id = id) p.impls

(** Resolve an unqualified item name to its unique path, searching types,
    traits and fns.  Used by the surface parser and the CLI. *)
let resolve_name p name =
  let matches map =
    Path.Map.fold (fun k _ acc -> if Path.name k = name then k :: acc else acc) map []
  in
  match matches p.types_by_path @ matches p.traits_by_path @ matches p.fns_by_path with
  | [ one ] -> Ok one
  | [] -> Error (`Not_found name)
  | many -> Error (`Ambiguous (name, many))

(** Number of declarations; the paper reports library sizes in LoC, we use
    declaration counts as the analog. *)
let decl_count p =
  List.length p.types + List.length p.traits + List.length p.impls + List.length p.fns
