(** Pretty-printing for L_TRAIT terms.

    The printer is configurable along the axes the ShortTys principle
    (§3.2.2) identifies:

    - {b paths}: print only the final symbol name ([SelectStatement]) or
      the fully-qualified path ([diesel::query_builder::SelectStatement]);
    - {b depth}: beyond a configurable nesting depth, generic arguments are
      elided to [...] — the interface lets the user click the ellipsis to
      expand, which corresponds to re-printing with a larger depth budget.

    The default configuration matches Argus defaults: short paths,
    ellipsis after depth 2.  [verbose] matches rustc's fully-qualified
    style used by the baseline diagnostics renderer. *)

type config = {
  qualified_paths : bool;  (** print full definition paths *)
  max_depth : int;  (** generic args deeper than this render as [...] *)
  show_regions : bool;  (** print lifetimes on references *)
  surface_fn_items : bool;
      (** print fn-item types in the parseable surface form [fn\[name\]]
          instead of the rustc display form [fn(τ̄) -> τ {name}] *)
}

let default =
  { qualified_paths = false; max_depth = 2; show_regions = false; surface_fn_items = false }

(** rustc-like: fully qualified, effectively unbounded depth. *)
let verbose = { default with qualified_paths = true; max_depth = 1000; show_regions = true }

(** Fully expanded but short paths: what Argus shows after the user clicks
    every ellipsis. *)
let expanded = { default with max_depth = 1000 }

(** Re-parseable: short paths (resolution is by name suffix), no depth
    elision, no inference-variable ids, surface fn-item types. *)
let roundtrip = { expanded with surface_fn_items = true }

let path_str cfg p = if cfg.qualified_paths then Path.to_string p else Path.name p

let region_str cfg r =
  if cfg.show_regions then Region.to_string r ^ " "
  else match r with Region.Static -> "'static " | _ -> ""

let rec ty ?(cfg = default) ?(depth = 0) (t : Ty.t) =
  let buf = Buffer.create 32 in
  ty_buf cfg depth buf t;
  Buffer.contents buf

and ty_buf cfg depth buf (t : Ty.t) =
  let add = Buffer.add_string buf in
  match t with
  | Unit -> add "()"
  | Bool -> add "bool"
  | Int -> add "i32"
  | Uint -> add "usize"
  | Float -> add "f64"
  | Str -> add "String"
  | Param name -> add name
  | Infer i -> add (if cfg.qualified_paths then Printf.sprintf "?%d" i else "_")
  | Ref (r, t') ->
      add "&";
      add (region_str cfg r);
      ty_buf cfg depth buf t'
  | RefMut (r, t') ->
      add "&";
      add (region_str cfg r);
      add "mut ";
      ty_buf cfg depth buf t'
  | Ctor (p, args) ->
      add (path_str cfg p);
      args_buf cfg depth buf args
  | Tuple ts ->
      add "(";
      List.iteri
        (fun i t' ->
          if i > 0 then add ", ";
          ty_buf cfg (depth + 1) buf t')
        ts;
      (* 1-tuples need the distinguishing trailing comma *)
      if List.length ts = 1 then add ",";
      add ")"
  | FnPtr (args, ret) ->
      add "fn(";
      List.iteri
        (fun i t' ->
          if i > 0 then add ", ";
          ty_buf cfg (depth + 1) buf t')
        args;
      add ")";
      if not (Ty.equal ret Ty.Unit) then (
        add " -> ";
        ty_buf cfg (depth + 1) buf ret)
  | FnItem (p, _, _) when cfg.surface_fn_items ->
      add "fn[";
      add (path_str cfg p);
      add "]"
  | FnItem (p, args, ret) ->
      (* rustc style: [fn(Timer) {run_timer}] *)
      add "fn(";
      List.iteri
        (fun i t' ->
          if i > 0 then add ", ";
          ty_buf cfg (depth + 1) buf t')
        args;
      add ")";
      if not (Ty.equal ret Ty.Unit) then (
        add " -> ";
        ty_buf cfg (depth + 1) buf ret);
      add " {";
      add (path_str cfg p);
      add "}"
  | Dynamic tr ->
      add "dyn ";
      add (path_str cfg tr.trait);
      args_buf cfg depth buf tr.args
  | Proj p -> projection_buf cfg depth buf p

and args_buf cfg depth buf (args : Ty.arg list) =
  if args <> [] then
    if depth >= cfg.max_depth then Buffer.add_string buf "<...>"
    else begin
      Buffer.add_string buf "<";
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          match a with
          | Ty.Ty t -> ty_buf cfg (depth + 1) buf t
          | Ty.Lifetime r -> Buffer.add_string buf (Region.to_string r))
        args;
      Buffer.add_string buf ">"
    end

and projection_buf cfg depth buf (p : Ty.projection) =
  let add = Buffer.add_string buf in
  add "<";
  ty_buf cfg (depth + 1) buf p.self_ty;
  add " as ";
  add (path_str cfg p.proj_trait.trait);
  args_buf cfg (depth + 1) buf p.proj_trait.args;
  add ">::";
  add p.assoc;
  args_buf cfg (depth + 1) buf p.assoc_args

let trait_ref ?(cfg = default) (tr : Ty.trait_ref) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (path_str cfg tr.trait);
  args_buf cfg 0 buf tr.args;
  Buffer.contents buf

let projection ?(cfg = default) p =
  let buf = Buffer.create 32 in
  projection_buf cfg 0 buf p;
  Buffer.contents buf

let predicate ?(cfg = default) (p : Predicate.t) =
  match p with
  | Trait { self_ty; trait_ref = tr } ->
      Printf.sprintf "%s: %s" (ty ~cfg self_ty) (trait_ref ~cfg tr)
  | Projection { projection = pr; term } ->
      Printf.sprintf "%s == %s" (projection ~cfg pr) (ty ~cfg term)
  | TypeOutlives (t, r) -> Printf.sprintf "%s: %s" (ty ~cfg t) (Region.to_string r)
  | RegionOutlives (a, b) ->
      Printf.sprintf "%s: %s" (Region.to_string a) (Region.to_string b)
  | WellFormed t -> Printf.sprintf "well-formed(%s)" (ty ~cfg t)
  | ObjectSafe tr -> Printf.sprintf "object-safe(%s)" (path_str cfg tr)
  | ConstEvaluatable e -> Printf.sprintf "const-evaluatable(%s)" e
  | NormalizesTo (pr, v) ->
      Printf.sprintf "normalizes-to(%s, ?%d)" (projection ~cfg pr) v

let generics ?cfg:(_ = default) (g : Decl.generics) =
  if g.lifetimes = [] && g.ty_params = [] then ""
  else
    let lts = List.map (fun l -> "'" ^ l) g.lifetimes in
    "<" ^ String.concat ", " (lts @ g.ty_params) ^ ">"

let where_clauses ?(cfg = default) (ps : Predicate.t list) =
  if ps = [] then ""
  else " where " ^ String.concat ", " (List.map (predicate ~cfg) ps)

(** Header line of an impl block, as shown in the Argus tree:
    [impl<T, U, QS> AppearsOnTable<QS> for Eq<T, U>]. *)
let impl_header ?(cfg = default) (i : Decl.impl) =
  Printf.sprintf "impl%s %s for %s"
    (generics ~cfg i.impl_generics)
    (trait_ref ~cfg i.impl_trait)
    (ty ~cfg i.impl_self)

let impl ?(cfg = default) (i : Decl.impl) =
  impl_header ~cfg i ^ where_clauses ~cfg i.impl_generics.where_clauses

let trait_decl ?(cfg = default) (d : Decl.trdecl) =
  Printf.sprintf "trait %s%s%s" (path_str cfg d.tr_path)
    (generics ~cfg d.tr_generics)
    (where_clauses ~cfg d.tr_generics.where_clauses)

let tydecl ?(cfg = default) (d : Decl.tydecl) =
  match d.ty_repr with
  | None -> Printf.sprintf "struct %s%s" (path_str cfg d.ty_path) (generics ~cfg d.ty_generics)
  | Some repr ->
      Printf.sprintf "newtype %s%s = %s" (path_str cfg d.ty_path)
        (generics ~cfg d.ty_generics) (ty ~cfg repr)

let fndecl ?(cfg = default) (d : Decl.fndecl) =
  Printf.sprintf "fn %s%s(%s) -> %s" (path_str cfg d.fn_path)
    (generics ~cfg d.fn_generics)
    (String.concat ", " (List.map (ty ~cfg) d.fn_inputs))
    (ty ~cfg d.fn_output)
