(* Structural fingerprints + the old→new program differ.

   Marshal with No_sharing gives a canonical byte string for the plain
   ADTs in Decl (no closures, no custom blocks): equal fingerprints ⇒
   structurally equal values.  Digesting keeps the comparison O(1) and
   the multiset diff below cheap.  We deliberately do NOT mask spans or
   impl_ids out of the digest — see fingerprint.mli for why bit-identity
   is the property incremental replay needs. *)

type dep =
  | Dep_type of Path.t
  | Dep_trait of Path.t
  | Dep_fn of Path.t
  | Dep_impls of Path.t

let dep_equal a b =
  match (a, b) with
  | Dep_type p, Dep_type q
  | Dep_trait p, Dep_trait q
  | Dep_fn p, Dep_fn q
  | Dep_impls p, Dep_impls q ->
      Path.equal p q
  | _ -> false

let dep_to_string = function
  | Dep_type p -> "type:" ^ Path.to_string p
  | Dep_trait p -> "trait:" ^ Path.to_string p
  | Dep_fn p -> "fn:" ^ Path.to_string p
  | Dep_impls p -> "impls:" ^ Path.to_string p

let fp (v : 'a) : string = Digest.string (Marshal.to_string v [ Marshal.No_sharing ])
let type_fp (d : Decl.tydecl) = fp d
let trait_fp (d : Decl.trdecl) = fp d
let fn_fp (d : Decl.fndecl) = fp d
let impl_fp (d : Decl.impl) = fp d

type diff = {
  dirty : dep list;
  changed_decls : int;
  dirty_traits : Path.Set.t;
}

let no_diff = { dirty = []; changed_decls = 0; dirty_traits = Path.Set.empty }

type table = {
  tb_types : string Path.Map.t;
  tb_traits : string Path.Map.t;
  tb_fns : string Path.Map.t;
  tb_impls : string list Path.Map.t;
      (* per-trait impl fingerprints, REVERSE program order — both sides
         of a diff are built the same way, so the comparison still
         detects any reorder within a trait *)
}

(* Impls have no path of their own: group by trait path and keep the
   per-trait fingerprint sequence.  Sorting the digest lists would make
   the comparison order-insensitive at the multiset level; but a reorder
   of two impls of the SAME trait must still dirty it because candidate
   order is declaration order — so we keep the (reversed) sequence. *)
let impl_seqs impls =
  List.fold_left
    (fun m (i : Decl.impl) ->
      let t = i.impl_trait.trait in
      let prev = Option.value ~default:[] (Path.Map.find_opt t m) in
      Path.Map.add t (impl_fp i :: prev) m)
    Path.Map.empty impls

let compute_table (p : Program.t) : table =
  let named (type a) (path : a -> Path.t) (fp : a -> string) (ds : a list) =
    List.fold_left (fun m d -> Path.Map.add (path d) (fp d) m) Path.Map.empty ds
  in
  {
    tb_types = named (fun (d : Decl.tydecl) -> d.ty_path) type_fp (Program.types p);
    tb_traits = named (fun (d : Decl.trdecl) -> d.tr_path) trait_fp (Program.traits p);
    tb_fns = named (fun (d : Decl.fndecl) -> d.fn_path) fn_fp (Program.fns p);
    tb_impls = impl_seqs (Program.impls p);
  }

(* Fingerprinting every declaration is the dominant cost of an edit on
   large programs (Marshal + MD5 per decl), and a watch/bench loop diffs
   the same program values over and over — so memoize tables by program
   stamp.  Equal stamps imply identical declaration contexts (see
   Program.stamp), making the memo exact.  Bounded: reset past 64
   programs (a watch session only ever holds two live versions). *)
let memo : (int, table) Hashtbl.t = Hashtbl.create 16
let memo_mu = Mutex.create ()
let max_memo = 64

let table (p : Program.t) : table =
  let stamp = Program.stamp p in
  Mutex.protect memo_mu (fun () ->
      match Hashtbl.find_opt memo stamp with
      | Some t -> t
      | None ->
          if Hashtbl.length memo >= max_memo then Hashtbl.reset memo;
          let t = compute_table p in
          Hashtbl.replace memo stamp t;
          t)

(* Diff two path-keyed fingerprint families.  A path present on one side
   only, or present on both with different fingerprints, is dirty. *)
let diff_named (old_m : string Path.Map.t) (new_m : string Path.Map.t) : Path.t list * int =
  let dirty = ref [] and count = ref 0 in
  let mark p = if not (List.exists (Path.equal p) !dirty) then dirty := p :: !dirty in
  Path.Map.iter
    (fun p f ->
      match Path.Map.find_opt p new_m with
      | Some f' when String.equal f f' -> ()
      | _ ->
          mark p;
          incr count)
    old_m;
  Path.Map.iter
    (fun p _ -> if not (Path.Map.mem p old_m) then ( mark p; incr count))
    new_m;
  (List.rev !dirty, !count)

let diff_impls old_m new_m : Path.t list * int =
  let dirty = ref [] and count = ref 0 in
  let changed_count a b =
    (* conservative per-trait decl count: symmetric difference size,
       at least 1 when the sequences differ at all *)
    max 1 (abs (List.length a - List.length b))
  in
  Path.Map.iter
    (fun t fps ->
      match Path.Map.find_opt t new_m with
      | Some fps' when List.equal String.equal fps fps' -> ()
      | Some fps' ->
          dirty := t :: !dirty;
          count := !count + changed_count fps fps'
      | None ->
          dirty := t :: !dirty;
          count := !count + List.length fps)
    old_m;
  Path.Map.iter
    (fun t fps ->
      if not (Path.Map.mem t old_m) then (
        dirty := t :: !dirty;
        count := !count + List.length fps))
    new_m;
  (List.rev !dirty, !count)

(* The differ itself is also memoized by stamp pair: a watch loop (or
   the toggle benchmark) repeatedly diffs the same two program versions,
   and equal stamps imply identical declaration contexts, so the
   classification cannot change. *)
let diff_memo : (int * int, diff) Hashtbl.t = Hashtbl.create 16
let diff_memo_mu = Mutex.create ()

let compute_diff ~old_program ~new_program =
  let old_t = table old_program and new_t = table new_program in
  let ty_dirty, ty_n = diff_named old_t.tb_types new_t.tb_types in
  let tr_dirty, tr_n = diff_named old_t.tb_traits new_t.tb_traits in
  let fn_dirty, fn_n = diff_named old_t.tb_fns new_t.tb_fns in
  let impl_dirty, impl_n = diff_impls old_t.tb_impls new_t.tb_impls in
  let dirty =
    List.map (fun p -> Dep_type p) ty_dirty
    @ List.map (fun p -> Dep_trait p) tr_dirty
    @ List.map (fun p -> Dep_fn p) fn_dirty
    @ List.map (fun p -> Dep_impls p) impl_dirty
  in
  {
    dirty;
    changed_decls = ty_n + tr_n + fn_n + impl_n;
    dirty_traits = Path.Set.of_list impl_dirty;
  }

let diff ~old_program ~new_program =
  let key = (Program.stamp old_program, Program.stamp new_program) in
  Mutex.protect diff_memo_mu (fun () ->
      match Hashtbl.find_opt diff_memo key with
      | Some d -> d
      | None ->
          if Hashtbl.length diff_memo >= max_memo then Hashtbl.reset diff_memo;
          let d = compute_diff ~old_program ~new_program in
          Hashtbl.replace diff_memo key d;
          d)
