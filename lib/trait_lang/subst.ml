(** Substitutions: finite maps from universally quantified parameters to
    types/regions, applied capture-free over L_TRAIT terms.

    The solver instantiates a declaration's generics with fresh inference
    variables by building a substitution here; impls' associated-type
    bindings are projected through the same machinery. *)

module StrMap = Map.Make (String)

type t = { tys : Ty.t StrMap.t; regions : Region.t StrMap.t }

let empty = { tys = StrMap.empty; regions = StrMap.empty }

let is_empty s = StrMap.is_empty s.tys && StrMap.is_empty s.regions

let add_ty name ty s = { s with tys = StrMap.add name ty s.tys }
let add_region name r s = { s with regions = StrMap.add name r s.regions }

let of_list ?(regions = []) tys =
  let s = List.fold_left (fun s (n, t) -> add_ty n t s) empty tys in
  List.fold_left (fun s (n, r) -> add_region n r s) s regions

let find_ty name s = StrMap.find_opt name s.tys
let find_region name s = StrMap.find_opt name s.regions

let bindings s = StrMap.bindings s.tys

let region_subst s = function
  | Region.Named n as r -> Option.value ~default:r (find_region n s)
  | r -> r

(* Application preserves sharing: every function below returns its input
   physically unchanged when the substitution is empty or binds nothing
   occurring in the term, and rebuilds only the spine above actual
   changes otherwise.  The unify path substitutes against mostly-ground
   terms constantly, so the unchanged case is the common one; returning
   the original allocation keeps interned terms canonical and lets the
   [==] fast path in {!Ty.equal} keep firing downstream. *)

let map_sharing f l =
  let changed = ref false in
  let l' =
    List.map
      (fun x ->
        let y = f x in
        if y != x then changed := true;
        y)
      l
  in
  if !changed then l' else l

let rec ty s (t : Ty.t) : Ty.t =
  match t with
  | Unit | Bool | Int | Uint | Float | Str | Infer _ -> t
  | Param name -> Option.value ~default:t (find_ty name s)
  | Ref (r, t') ->
      let r' = region_subst s r and t2 = ty s t' in
      if r' == r && t2 == t' then t else Ref (r', t2)
  | RefMut (r, t') ->
      let r' = region_subst s r and t2 = ty s t' in
      if r' == r && t2 == t' then t else RefMut (r', t2)
  | Ctor (p, args) ->
      let args' = map_sharing (arg s) args in
      if args' == args then t else Ctor (p, args')
  | Tuple ts ->
      let ts' = map_sharing (ty s) ts in
      if ts' == ts then t else Tuple ts'
  | FnPtr (args, ret) ->
      let args' = map_sharing (ty s) args and ret' = ty s ret in
      if args' == args && ret' == ret then t else FnPtr (args', ret')
  | FnItem (p, args, ret) ->
      let args' = map_sharing (ty s) args and ret' = ty s ret in
      if args' == args && ret' == ret then t else FnItem (p, args', ret')
  | Dynamic tr ->
      let tr' = trait_ref s tr in
      if tr' == tr then t else Dynamic tr'
  | Proj p ->
      let p' = projection s p in
      if p' == p then t else Proj p'

and arg s (a : Ty.arg) : Ty.arg =
  match a with
  | Ty t ->
      let t' = ty s t in
      if t' == t then a else Ty t'
  | Lifetime r ->
      let r' = region_subst s r in
      if r' == r then a else Lifetime r'

and trait_ref s (tr : Ty.trait_ref) : Ty.trait_ref =
  let args' = map_sharing (arg s) tr.args in
  if args' == tr.args then tr else { tr with args = args' }

and projection s (p : Ty.projection) : Ty.projection =
  let self_ty' = ty s p.self_ty
  and proj_trait' = trait_ref s p.proj_trait
  and assoc_args' = map_sharing (arg s) p.assoc_args in
  if self_ty' == p.self_ty && proj_trait' == p.proj_trait && assoc_args' == p.assoc_args
  then p
  else { p with self_ty = self_ty'; proj_trait = proj_trait'; assoc_args = assoc_args' }

let predicate s (p : Predicate.t) : Predicate.t =
  if is_empty s then p
  else
    match p with
    | Trait { self_ty; trait_ref = tr } ->
        let self_ty' = ty s self_ty and tr' = trait_ref s tr in
        if self_ty' == self_ty && tr' == tr then p
        else Trait { self_ty = self_ty'; trait_ref = tr' }
    | Projection { projection = pr; term } ->
        let pr' = projection s pr and term' = ty s term in
        if pr' == pr && term' == term then p
        else Projection { projection = pr'; term = term' }
    | TypeOutlives (t, r) ->
        let t' = ty s t and r' = region_subst s r in
        if t' == t && r' == r then p else TypeOutlives (t', r')
    | RegionOutlives (a, b) ->
        let a' = region_subst s a and b' = region_subst s b in
        if a' == a && b' == b then p else RegionOutlives (a', b')
    | WellFormed t ->
        let t' = ty s t in
        if t' == t then p else WellFormed t'
    | ObjectSafe _ | ConstEvaluatable _ -> p
    | NormalizesTo (pr, v) ->
        let pr' = projection s pr in
        if pr' == pr then p else NormalizesTo (pr', v)
