(** Hash-consing for L_TRAIT terms.

    Every distinct type, generic argument, trait ref, projection and
    predicate is stored once in a table and given a unique id and a
    precomputed hash.  Interned terms are *maximally shared*: two
    structurally equal terms returned by {!ty} (resp. {!predicate}, ...)
    are physically equal, so the [a == b] fast paths added to
    {!Ty.equal}/{!Predicate.equal} turn deep structural comparison into a
    pointer comparison on the hot solver paths, and the solver's
    evaluation cache ({!Solver.Eval_cache}) can key on [(id, hash)] pairs
    in O(1).

    The memo tables are keyed by a {e shallow} node description in which
    every child position holds the child's intern id rather than the child
    itself, so hashing and equality of keys never recurse into subterms:
    interning is O(size) the first time a term is seen and O(size) with
    all-hit table lookups thereafter (each lookup itself O(1)).

    {2 Domain safety}

    The tables are {b domain-local} ({!Domain.DLS}): each domain interns
    into its own tables with no locks on the hot path, so parallel batch
    solving scales without contention.  The canonicality guarantee is
    therefore {e per-domain}: two structurally equal terms interned by
    the {e same} domain are physically equal; terms interned by
    different domains compare equal only structurally (the [==] fast
    paths degrade to the full comparison, never to a wrong answer).  The
    batch driver keeps each work unit — load, solve, render — on a
    single domain, so every term a solver instance touches is canonical
    in its own domain.

    The tables grow for the lifetime of the domain; {!clear} empties the
    calling domain's tables (existing terms stay valid, they just stop
    being canonical). *)

(* Telemetry: node-level hit/miss counts across all tables. *)
let c_hit = Telemetry.counter "interner.hit"
let c_miss = Telemetry.counter "interner.miss"

type 'a interned = { node : 'a; id : int; hash : int }

(* ------------------------------------------------------------------ *)
(* Shallow keys: child positions are intern ids, leaves are inline.    *)

type arg_key = KTy of int | KLifetime of Region.t

type ty_key =
  | KUnit
  | KBool
  | KInt
  | KUint
  | KFloat
  | KStr
  | KParam of string
  | KInfer of int
  | KRef of Region.t * int
  | KRefMut of Region.t * int
  | KCtor of Path.t * int list
  | KTuple of int list
  | KFnPtr of int list * int
  | KFnItem of Path.t * int list * int
  | KDynamic of int
  | KProj of int

type trait_ref_key = Path.t * int list
type projection_key = int * int * string * int list

type pred_key =
  | KTrait of int * int  (** self ty id, trait ref id *)
  | KProjectionEq of int * int  (** projection id, term ty id *)
  | KTypeOutlives of int * Region.t
  | KRegionOutlives of Region.t * Region.t
  | KWellFormed of int
  | KObjectSafe of Path.t
  | KConstEvaluatable of string
  | KNormalizesTo of int * int  (** projection id, output var *)

(* Shallow keys bottom out at ids/paths/regions/strings, so the default
   polymorphic hash sees the whole key without deep recursion. *)
let key_hash k = Hashtbl.hash_param 64 128 k

(* The per-domain table set.  One id space across every table, so an id
   identifies a term of any sort (within its domain). *)
type tables = {
  ty_tbl : (ty_key, Ty.t interned) Hashtbl.t;
  arg_tbl : (arg_key, Ty.arg interned) Hashtbl.t;
  trait_ref_tbl : (trait_ref_key, Ty.trait_ref interned) Hashtbl.t;
  projection_tbl : (projection_key, Ty.projection interned) Hashtbl.t;
  pred_tbl : (pred_key, Predicate.t interned) Hashtbl.t;
  mutable next_id : int;
}

let make_tables () =
  {
    ty_tbl = Hashtbl.create 1024;
    arg_tbl = Hashtbl.create 1024;
    trait_ref_tbl = Hashtbl.create 256;
    projection_tbl = Hashtbl.create 256;
    pred_tbl = Hashtbl.create 512;
    next_id = 0;
  }

let dls_key : tables Domain.DLS.key = Domain.DLS.new_key make_tables
let tables () = Domain.DLS.get dls_key

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let memo : tables -> ('k, 'v interned) Hashtbl.t -> 'k -> (unit -> 'v) -> 'v interned =
 fun t tbl key build ->
  match Hashtbl.find_opt tbl key with
  | Some info ->
      Telemetry.incr c_hit;
      info
  | None ->
      Telemetry.incr c_miss;
      let info = { node = build (); id = fresh_id t; hash = key_hash key } in
      Hashtbl.add tbl key info;
      info

(* Rebuild a node from canonical children only when some child actually
   changed, so re-interning an already-canonical term allocates nothing
   beyond the key. *)
let share1 orig x x' rebuild = if x == x' then orig else rebuild ()

let map_sharing f l =
  let changed = ref false in
  let l' =
    List.map
      (fun x ->
        let y = f x in
        if y != x then changed := true;
        y)
      l
  in
  if !changed then l' else l

(* ------------------------------------------------------------------ *)
(* Interning proper.  Children are interned first; the parent's key is  *)
(* then assembled from their ids.  Every function threads the calling   *)
(* domain's table set.                                                  *)

let rec ty_info_in tb (t : Ty.t) : Ty.t interned =
  match t with
  | Unit -> memo tb tb.ty_tbl KUnit (fun () -> t)
  | Bool -> memo tb tb.ty_tbl KBool (fun () -> t)
  | Int -> memo tb tb.ty_tbl KInt (fun () -> t)
  | Uint -> memo tb tb.ty_tbl KUint (fun () -> t)
  | Float -> memo tb tb.ty_tbl KFloat (fun () -> t)
  | Str -> memo tb tb.ty_tbl KStr (fun () -> t)
  | Param name -> memo tb tb.ty_tbl (KParam name) (fun () -> t)
  | Infer i -> memo tb tb.ty_tbl (KInfer i) (fun () -> t)
  | Ref (r, inner) ->
      let i = ty_info_in tb inner in
      memo tb tb.ty_tbl (KRef (r, i.id)) (fun () ->
          share1 t inner i.node (fun () -> Ty.Ref (r, i.node)))
  | RefMut (r, inner) ->
      let i = ty_info_in tb inner in
      memo tb tb.ty_tbl (KRefMut (r, i.id)) (fun () ->
          share1 t inner i.node (fun () -> Ty.RefMut (r, i.node)))
  | Ctor (p, args) ->
      let infos = List.map (arg_info_in tb) args in
      memo tb tb.ty_tbl
        (KCtor (p, List.map (fun (i : _ interned) -> i.id) infos))
        (fun () ->
          let args' = map_sharing (arg_in tb) args in
          share1 t args args' (fun () -> Ty.Ctor (p, args')))
  | Tuple ts ->
      let infos = List.map (ty_info_in tb) ts in
      memo tb tb.ty_tbl
        (KTuple (List.map (fun (i : _ interned) -> i.id) infos))
        (fun () ->
          let ts' = map_sharing (ty_in tb) ts in
          share1 t ts ts' (fun () -> Ty.Tuple ts'))
  | FnPtr (args, ret) ->
      let ais = List.map (ty_info_in tb) args and ri = ty_info_in tb ret in
      memo tb tb.ty_tbl
        (KFnPtr (List.map (fun (i : _ interned) -> i.id) ais, ri.id))
        (fun () ->
          let args' = map_sharing (ty_in tb) args in
          if args' == args && ri.node == ret then t else Ty.FnPtr (args', ri.node))
  | FnItem (p, args, ret) ->
      let ais = List.map (ty_info_in tb) args and ri = ty_info_in tb ret in
      memo tb tb.ty_tbl
        (KFnItem (p, List.map (fun (i : _ interned) -> i.id) ais, ri.id))
        (fun () ->
          let args' = map_sharing (ty_in tb) args in
          if args' == args && ri.node == ret then t else Ty.FnItem (p, args', ri.node))
  | Dynamic tr ->
      let i = trait_ref_info_in tb tr in
      memo tb tb.ty_tbl (KDynamic i.id) (fun () ->
          share1 t tr i.node (fun () -> Ty.Dynamic i.node))
  | Proj p ->
      let i = projection_info_in tb p in
      memo tb tb.ty_tbl (KProj i.id) (fun () ->
          share1 t p i.node (fun () -> Ty.Proj i.node))

and arg_info_in tb (a : Ty.arg) : Ty.arg interned =
  match a with
  | Ty t ->
      let i = ty_info_in tb t in
      memo tb tb.arg_tbl (KTy i.id) (fun () -> share1 a t i.node (fun () -> Ty.Ty i.node))
  | Lifetime r -> memo tb tb.arg_tbl (KLifetime r) (fun () -> a)

and trait_ref_info_in tb (tr : Ty.trait_ref) : Ty.trait_ref interned =
  let infos = List.map (arg_info_in tb) tr.args in
  memo tb tb.trait_ref_tbl
    (tr.trait, List.map (fun (i : _ interned) -> i.id) infos)
    (fun () ->
      let args' = map_sharing (arg_in tb) tr.args in
      share1 tr tr.args args' (fun () : Ty.trait_ref -> { tr with args = args' }))

and projection_info_in tb (p : Ty.projection) : Ty.projection interned =
  let si = ty_info_in tb p.self_ty
  and ti = trait_ref_info_in tb p.proj_trait
  and ais = List.map (arg_info_in tb) p.assoc_args in
  memo tb tb.projection_tbl
    (si.id, ti.id, p.assoc, List.map (fun (i : _ interned) -> i.id) ais)
    (fun () ->
      let assoc_args' = map_sharing (arg_in tb) p.assoc_args in
      if si.node == p.self_ty && ti.node == p.proj_trait && assoc_args' == p.assoc_args
      then p
      else
        { p with self_ty = si.node; proj_trait = ti.node; assoc_args = assoc_args' })

and ty_in tb t = (ty_info_in tb t).node
and arg_in tb a = (arg_info_in tb a).node

let predicate_info_in tb (p : Predicate.t) : Predicate.t interned =
  match p with
  | Trait { self_ty; trait_ref = tr } ->
      let si = ty_info_in tb self_ty and ti = trait_ref_info_in tb tr in
      memo tb tb.pred_tbl (KTrait (si.id, ti.id)) (fun () ->
          if si.node == self_ty && ti.node == tr then p
          else Predicate.Trait { self_ty = si.node; trait_ref = ti.node })
  | Projection { projection = pr; term } ->
      let pi = projection_info_in tb pr and ti = ty_info_in tb term in
      memo tb tb.pred_tbl (KProjectionEq (pi.id, ti.id)) (fun () ->
          if pi.node == pr && ti.node == term then p
          else Predicate.Projection { projection = pi.node; term = ti.node })
  | TypeOutlives (t, r) ->
      let i = ty_info_in tb t in
      memo tb tb.pred_tbl (KTypeOutlives (i.id, r)) (fun () ->
          if i.node == t then p else Predicate.TypeOutlives (i.node, r))
  | RegionOutlives (a, b) -> memo tb tb.pred_tbl (KRegionOutlives (a, b)) (fun () -> p)
  | WellFormed t ->
      let i = ty_info_in tb t in
      memo tb tb.pred_tbl (KWellFormed i.id) (fun () ->
          if i.node == t then p else Predicate.WellFormed i.node)
  | ObjectSafe path -> memo tb tb.pred_tbl (KObjectSafe path) (fun () -> p)
  | ConstEvaluatable s -> memo tb tb.pred_tbl (KConstEvaluatable s) (fun () -> p)
  | NormalizesTo (pr, v) ->
      let i = projection_info_in tb pr in
      memo tb tb.pred_tbl (KNormalizesTo (i.id, v)) (fun () ->
          if i.node == pr then p else Predicate.NormalizesTo (i.node, v))

(* Public entry points resolve the calling domain's tables once. *)

let ty_info t = ty_info_in (tables ()) t
let trait_ref_info tr = trait_ref_info_in (tables ()) tr
let projection_info p = projection_info_in (tables ()) p
let predicate_info p = predicate_info_in (tables ()) p
let ty t = (ty_info t).node
let arg a = (arg_info_in (tables ()) a).node
let trait_ref tr = (trait_ref_info tr).node
let projection p = (projection_info p).node
let predicate p = (predicate_info p).node

(* ------------------------------------------------------------------ *)
(* Stats / reset.                                                      *)

type stats = {
  st_tys : int;
  st_args : int;
  st_trait_refs : int;
  st_projections : int;
  st_predicates : int;
}

let stats () =
  let tb = tables () in
  {
    st_tys = Hashtbl.length tb.ty_tbl;
    st_args = Hashtbl.length tb.arg_tbl;
    st_trait_refs = Hashtbl.length tb.trait_ref_tbl;
    st_projections = Hashtbl.length tb.projection_tbl;
    st_predicates = Hashtbl.length tb.pred_tbl;
  }

let clear () =
  let tb = tables () in
  Hashtbl.reset tb.ty_tbl;
  Hashtbl.reset tb.arg_tbl;
  Hashtbl.reset tb.trait_ref_tbl;
  Hashtbl.reset tb.projection_tbl;
  Hashtbl.reset tb.pred_tbl
