(** Hash-consing for L_TRAIT terms.

    Every distinct type, generic argument, trait ref, projection and
    predicate is stored once in a global table and given a unique id and a
    precomputed hash.  Interned terms are *maximally shared*: two
    structurally equal terms returned by {!ty} (resp. {!predicate}, ...)
    are physically equal, so the [a == b] fast paths added to
    {!Ty.equal}/{!Predicate.equal} turn deep structural comparison into a
    pointer comparison on the hot solver paths, and the solver's
    evaluation cache ({!Solver.Eval_cache}) can key on [(id, hash)] pairs
    in O(1).

    The memo tables are keyed by a {e shallow} node description in which
    every child position holds the child's intern id rather than the child
    itself, so hashing and equality of keys never recurse into subterms:
    interning is O(size) the first time a term is seen and O(size) with
    all-hit table lookups thereafter (each lookup itself O(1)).

    The tables grow for the lifetime of the process; {!clear} empties them
    (existing terms stay valid, they just stop being canonical).  Not
    thread-safe, like the rest of the pipeline. *)

(* Telemetry: node-level hit/miss counts across all tables. *)
let c_hit = Telemetry.counter "interner.hit"
let c_miss = Telemetry.counter "interner.miss"

type 'a interned = { node : 'a; id : int; hash : int }

(* One id space across every table, so an id identifies a term of any
   sort. *)
let next_id = ref 0

let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

(* ------------------------------------------------------------------ *)
(* Shallow keys: child positions are intern ids, leaves are inline.    *)

type arg_key = KTy of int | KLifetime of Region.t

type ty_key =
  | KUnit
  | KBool
  | KInt
  | KUint
  | KFloat
  | KStr
  | KParam of string
  | KInfer of int
  | KRef of Region.t * int
  | KRefMut of Region.t * int
  | KCtor of Path.t * int list
  | KTuple of int list
  | KFnPtr of int list * int
  | KFnItem of Path.t * int list * int
  | KDynamic of int
  | KProj of int

type trait_ref_key = Path.t * int list
type projection_key = int * int * string * int list

type pred_key =
  | KTrait of int * int  (** self ty id, trait ref id *)
  | KProjectionEq of int * int  (** projection id, term ty id *)
  | KTypeOutlives of int * Region.t
  | KRegionOutlives of Region.t * Region.t
  | KWellFormed of int
  | KObjectSafe of Path.t
  | KConstEvaluatable of string
  | KNormalizesTo of int * int  (** projection id, output var *)

(* Shallow keys bottom out at ids/paths/regions/strings, so the default
   polymorphic hash sees the whole key without deep recursion. *)
let key_hash k = Hashtbl.hash_param 64 128 k

let ty_tbl : (ty_key, Ty.t interned) Hashtbl.t = Hashtbl.create 1024
let arg_tbl : (arg_key, Ty.arg interned) Hashtbl.t = Hashtbl.create 1024
let trait_ref_tbl : (trait_ref_key, Ty.trait_ref interned) Hashtbl.t = Hashtbl.create 256
let projection_tbl : (projection_key, Ty.projection interned) Hashtbl.t = Hashtbl.create 256
let pred_tbl : (pred_key, Predicate.t interned) Hashtbl.t = Hashtbl.create 512

let memo : ('k, 'v interned) Hashtbl.t -> 'k -> (unit -> 'v) -> 'v interned =
 fun tbl key build ->
  match Hashtbl.find_opt tbl key with
  | Some info ->
      Telemetry.incr c_hit;
      info
  | None ->
      Telemetry.incr c_miss;
      let info = { node = build (); id = fresh_id (); hash = key_hash key } in
      Hashtbl.add tbl key info;
      info

(* Rebuild a node from canonical children only when some child actually
   changed, so re-interning an already-canonical term allocates nothing
   beyond the key. *)
let share1 orig x x' rebuild = if x == x' then orig else rebuild ()

let map_sharing f l =
  let changed = ref false in
  let l' =
    List.map
      (fun x ->
        let y = f x in
        if y != x then changed := true;
        y)
      l
  in
  if !changed then l' else l

(* ------------------------------------------------------------------ *)
(* Interning proper.  Children are interned first; the parent's key is  *)
(* then assembled from their ids.                                      *)

let rec ty_info (t : Ty.t) : Ty.t interned =
  match t with
  | Unit -> memo ty_tbl KUnit (fun () -> t)
  | Bool -> memo ty_tbl KBool (fun () -> t)
  | Int -> memo ty_tbl KInt (fun () -> t)
  | Uint -> memo ty_tbl KUint (fun () -> t)
  | Float -> memo ty_tbl KFloat (fun () -> t)
  | Str -> memo ty_tbl KStr (fun () -> t)
  | Param name -> memo ty_tbl (KParam name) (fun () -> t)
  | Infer i -> memo ty_tbl (KInfer i) (fun () -> t)
  | Ref (r, inner) ->
      let i = ty_info inner in
      memo ty_tbl (KRef (r, i.id)) (fun () ->
          share1 t inner i.node (fun () -> Ty.Ref (r, i.node)))
  | RefMut (r, inner) ->
      let i = ty_info inner in
      memo ty_tbl (KRefMut (r, i.id)) (fun () ->
          share1 t inner i.node (fun () -> Ty.RefMut (r, i.node)))
  | Ctor (p, args) ->
      let infos = List.map arg_info args in
      memo ty_tbl
        (KCtor (p, List.map (fun (i : _ interned) -> i.id) infos))
        (fun () ->
          let args' = map_sharing arg args in
          share1 t args args' (fun () -> Ty.Ctor (p, args')))
  | Tuple ts ->
      let infos = List.map ty_info ts in
      memo ty_tbl
        (KTuple (List.map (fun (i : _ interned) -> i.id) infos))
        (fun () ->
          let ts' = map_sharing ty ts in
          share1 t ts ts' (fun () -> Ty.Tuple ts'))
  | FnPtr (args, ret) ->
      let ais = List.map ty_info args and ri = ty_info ret in
      memo ty_tbl
        (KFnPtr (List.map (fun (i : _ interned) -> i.id) ais, ri.id))
        (fun () ->
          let args' = map_sharing ty args in
          if args' == args && ri.node == ret then t else Ty.FnPtr (args', ri.node))
  | FnItem (p, args, ret) ->
      let ais = List.map ty_info args and ri = ty_info ret in
      memo ty_tbl
        (KFnItem (p, List.map (fun (i : _ interned) -> i.id) ais, ri.id))
        (fun () ->
          let args' = map_sharing ty args in
          if args' == args && ri.node == ret then t else Ty.FnItem (p, args', ri.node))
  | Dynamic tr ->
      let i = trait_ref_info tr in
      memo ty_tbl (KDynamic i.id) (fun () ->
          share1 t tr i.node (fun () -> Ty.Dynamic i.node))
  | Proj p ->
      let i = projection_info p in
      memo ty_tbl (KProj i.id) (fun () -> share1 t p i.node (fun () -> Ty.Proj i.node))

and arg_info (a : Ty.arg) : Ty.arg interned =
  match a with
  | Ty t ->
      let i = ty_info t in
      memo arg_tbl (KTy i.id) (fun () -> share1 a t i.node (fun () -> Ty.Ty i.node))
  | Lifetime r -> memo arg_tbl (KLifetime r) (fun () -> a)

and trait_ref_info (tr : Ty.trait_ref) : Ty.trait_ref interned =
  let infos = List.map arg_info tr.args in
  memo trait_ref_tbl
    (tr.trait, List.map (fun (i : _ interned) -> i.id) infos)
    (fun () ->
      let args' = map_sharing arg tr.args in
      share1 tr tr.args args' (fun () : Ty.trait_ref -> { tr with args = args' }))

and projection_info (p : Ty.projection) : Ty.projection interned =
  let si = ty_info p.self_ty
  and ti = trait_ref_info p.proj_trait
  and ais = List.map arg_info p.assoc_args in
  memo projection_tbl
    (si.id, ti.id, p.assoc, List.map (fun (i : _ interned) -> i.id) ais)
    (fun () ->
      let assoc_args' = map_sharing arg p.assoc_args in
      if si.node == p.self_ty && ti.node == p.proj_trait && assoc_args' == p.assoc_args
      then p
      else
        { p with self_ty = si.node; proj_trait = ti.node; assoc_args = assoc_args' })

and ty t = (ty_info t).node
and arg a = (arg_info a).node

let trait_ref tr = (trait_ref_info tr).node
let projection p = (projection_info p).node

let predicate_info (p : Predicate.t) : Predicate.t interned =
  match p with
  | Trait { self_ty; trait_ref = tr } ->
      let si = ty_info self_ty and ti = trait_ref_info tr in
      memo pred_tbl (KTrait (si.id, ti.id)) (fun () ->
          if si.node == self_ty && ti.node == tr then p
          else Predicate.Trait { self_ty = si.node; trait_ref = ti.node })
  | Projection { projection = pr; term } ->
      let pi = projection_info pr and ti = ty_info term in
      memo pred_tbl (KProjectionEq (pi.id, ti.id)) (fun () ->
          if pi.node == pr && ti.node == term then p
          else Predicate.Projection { projection = pi.node; term = ti.node })
  | TypeOutlives (t, r) ->
      let i = ty_info t in
      memo pred_tbl (KTypeOutlives (i.id, r)) (fun () ->
          if i.node == t then p else Predicate.TypeOutlives (i.node, r))
  | RegionOutlives (a, b) -> memo pred_tbl (KRegionOutlives (a, b)) (fun () -> p)
  | WellFormed t ->
      let i = ty_info t in
      memo pred_tbl (KWellFormed i.id) (fun () ->
          if i.node == t then p else Predicate.WellFormed i.node)
  | ObjectSafe path -> memo pred_tbl (KObjectSafe path) (fun () -> p)
  | ConstEvaluatable s -> memo pred_tbl (KConstEvaluatable s) (fun () -> p)
  | NormalizesTo (pr, v) ->
      let i = projection_info pr in
      memo pred_tbl (KNormalizesTo (i.id, v)) (fun () ->
          if i.node == pr then p else Predicate.NormalizesTo (i.node, v))

let predicate p = (predicate_info p).node

(* ------------------------------------------------------------------ *)
(* Stats / reset.                                                      *)

type stats = {
  st_tys : int;
  st_args : int;
  st_trait_refs : int;
  st_projections : int;
  st_predicates : int;
}

let stats () =
  {
    st_tys = Hashtbl.length ty_tbl;
    st_args = Hashtbl.length arg_tbl;
    st_trait_refs = Hashtbl.length trait_ref_tbl;
    st_projections = Hashtbl.length projection_tbl;
    st_predicates = Hashtbl.length pred_tbl;
  }

let clear () =
  Hashtbl.reset ty_tbl;
  Hashtbl.reset arg_tbl;
  Hashtbl.reset trait_ref_tbl;
  Hashtbl.reset projection_tbl;
  Hashtbl.reset pred_tbl
