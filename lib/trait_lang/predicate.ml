(** Predicates of L_TRAIT.

    The paper's grammar (Fig. 5) has three predicate forms:

      p ⟶ τ : T  |  τ : ϱ  |  π == τ

    §4 notes that the real compiler has fourteen predicate kinds, several of
    which are "important details specific to Rust" hidden from developers by
    default, plus *stateful* predicates such as [NormalizesTo].  We model
    the three core forms plus the most load-bearing internal kinds so that
    the extraction layer (implication heuristic, stateful-node capture,
    predicate-visibility toggle) has real work to do. *)

type trait_pred = { self_ty : Ty.t; trait_ref : Ty.trait_ref }

type proj_pred = { projection : Ty.projection; term : Ty.t }

type t =
  | Trait of trait_pred  (** τ : T⟨τ̄⟩ — the workhorse *)
  | Projection of proj_pred  (** π == τ *)
  | TypeOutlives of Ty.t * Region.t  (** τ : ϱ *)
  | RegionOutlives of Region.t * Region.t  (** ϱ₁ : ϱ₂ *)
  | WellFormed of Ty.t  (** internal: type is well-formed *)
  | ObjectSafe of Path.t  (** internal: trait is usable as [dyn] *)
  | ConstEvaluatable of string  (** internal: const-generic residue *)
  | NormalizesTo of Ty.projection * int
      (** internal, *stateful*: normalize π and write the result into
          inference variable [?n].  §4: "neither is the predicate useful
          nor is its subtree" — the extraction layer captures the value
          after the subtree executes rather than showing the node. *)

let trait_ self_ty trait_ref = Trait { self_ty; trait_ref }
let projection_eq projection term = Projection { projection; term }
let outlives ty region = TypeOutlives (ty, region)
let well_formed ty = WellFormed ty

(** The developer-facing predicate kinds (shown by default).  Everything
    else is behind the "show all predicates" toggle of §4. *)
let is_user_visible = function
  | Trait _ | Projection _ | TypeOutlives _ -> true
  | RegionOutlives _ | WellFormed _ | ObjectSafe _ | ConstEvaluatable _ | NormalizesTo _ ->
      false

let is_stateful = function NormalizesTo _ -> true | _ -> false

let equal a b =
  a == b
  ||
  match (a, b) with
  | Trait a, Trait b -> Ty.equal a.self_ty b.self_ty && Ty.equal_trait_ref a.trait_ref b.trait_ref
  | Projection a, Projection b ->
      Ty.equal_projection a.projection b.projection && Ty.equal a.term b.term
  | TypeOutlives (t1, r1), TypeOutlives (t2, r2) -> Ty.equal t1 t2 && Region.equal r1 r2
  | RegionOutlives (a1, b1), RegionOutlives (a2, b2) -> Region.equal a1 a2 && Region.equal b1 b2
  | WellFormed a, WellFormed b -> Ty.equal a b
  | ObjectSafe a, ObjectSafe b -> Path.equal a b
  | ConstEvaluatable a, ConstEvaluatable b -> String.equal a b
  | NormalizesTo (p1, v1), NormalizesTo (p2, v2) -> Ty.equal_projection p1 p2 && v1 = v2
  | _ -> false

let compare = Stdlib.compare

(** Fold [f] over every type embedded in the predicate. *)
let fold_tys f acc = function
  | Trait { self_ty; trait_ref } -> Ty.fold_args f (Ty.fold f acc self_ty) trait_ref.args
  | Projection { projection; term } -> Ty.fold f (Ty.fold f acc (Ty.Proj projection)) term
  | TypeOutlives (ty, _) | WellFormed ty -> Ty.fold f acc ty
  | RegionOutlives _ | ObjectSafe _ | ConstEvaluatable _ -> acc
  | NormalizesTo (p, v) -> Ty.fold f (Ty.fold f acc (Ty.Proj p)) (Ty.Infer v)

(** Inference variables mentioned anywhere in the predicate.  One of the
    baseline ranking heuristics of §5.2 counts these. *)
let infer_vars p =
  fold_tys (fun acc t -> match t with Ty.Infer i -> i :: acc | _ -> acc) [] p
  |> List.sort_uniq Int.compare

let has_infer p = infer_vars p <> []

(** The self type of the predicate, when it has one. *)
let self_ty = function
  | Trait { self_ty; _ } -> Some self_ty
  | Projection { projection; _ } -> Some projection.self_ty
  | TypeOutlives (ty, _) | WellFormed ty -> Some ty
  | NormalizesTo (p, _) -> Some p.self_ty
  | RegionOutlives _ | ObjectSafe _ | ConstEvaluatable _ -> None

(** The trait the predicate constrains, when it has one. *)
let trait_path = function
  | Trait { trait_ref; _ } -> Some trait_ref.trait
  | Projection { projection; _ } -> Some projection.proj_trait.trait
  | NormalizesTo (p, _) -> Some p.proj_trait.trait
  | ObjectSafe t -> Some t
  | _ -> None
