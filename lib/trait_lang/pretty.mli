(** Pretty-printing for L_TRAIT terms, configurable along the ShortTys
    axes (§3.2.2): path qualification and the depth beyond which generic
    arguments elide to [...]. *)

type config = {
  qualified_paths : bool;  (** print full definition paths *)
  max_depth : int;  (** generic args deeper than this render as [...] *)
  show_regions : bool;
  surface_fn_items : bool;
      (** print fn-item types as the parseable [fn\[name\]] instead of the
          rustc display form [fn(τ̄) -> τ {name}] *)
}

(** Argus defaults: short paths, ellipsis after depth 2. *)
val default : config

(** rustc-like: fully qualified, unbounded depth. *)
val verbose : config

(** Short paths, fully expanded (every ellipsis clicked open). *)
val expanded : config

(** Re-parseable output: short paths, no elision, surface fn-item types,
    inference variables as [_].  {!Parser.parse} accepts everything this
    configuration prints (the fuzzer's round-trip oracle relies on it). *)
val roundtrip : config

val ty : ?cfg:config -> ?depth:int -> Ty.t -> string
val trait_ref : ?cfg:config -> Ty.trait_ref -> string
val projection : ?cfg:config -> Ty.projection -> string
val predicate : ?cfg:config -> Predicate.t -> string
val generics : ?cfg:config -> Decl.generics -> string
val where_clauses : ?cfg:config -> Predicate.t list -> string

(** [impl<T, U> Trait<U> for Self_ty] — as shown in the Argus tree. *)
val impl_header : ?cfg:config -> Decl.impl -> string

(** Header plus where-clauses. *)
val impl : ?cfg:config -> Decl.impl -> string

val trait_decl : ?cfg:config -> Decl.trdecl -> string
val tydecl : ?cfg:config -> Decl.tydecl -> string
val fndecl : ?cfg:config -> Decl.fndecl -> string
