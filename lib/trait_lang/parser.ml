(** Recursive-descent parser for the L_TRAIT surface syntax.

    Grammar sketch (see the README for examples):
    {v
    file    := item*
    item    := extern | mod | struct | newtype | trait | impl | fn | goal
    extern  := 'extern' 'crate' IDENT '{' item* '}'
    mod     := 'mod' IDENT '{' item* '}'
    struct  := 'struct' IDENT generics? ';'
    newtype := 'newtype' IDENT generics? '=' ty ';'
    trait   := attr* 'trait' IDENT generics? (':' bounds)? where? '{' assoc* '}'
    assoc   := 'type' IDENT generics? (':' bounds)? ('=' ty)? ';'
    impl    := 'impl' generics? bound 'for' ty where? '{' binding* '}'
    binding := 'type' IDENT generics? '=' ty ';'
    fn      := 'fn' IDENT generics? '(' params ')' ('->' ty)?
               where? (';' | '{' stmt ... '}')
    params  := types, or name-colon-type pairs when a body follows
    stmt    := 'let' IDENT (':' ty)? '=' expr ';' | expr ';'
    expr    := prim ('.' IDENT '(' exprs ')') ...
    prim    := INT | STRING | qname ('(' exprs ')')? | '(' exprs ')'
    method  := 'fn' IDENT '(' 'self' (',' tys)? ')' ('->' ty)? ';'
    goal    := 'goal' pred ('from' STRING)? ';'
    pred    := ty ':' bounds | ty ':' LIFETIME | ty '==' ty
    ty      := '&' LIFETIME? 'mut'? ty | '(' ty,* ')' | '_' | 'Self'
             | 'dyn' qname args? | 'fn' '[' qname ']'
             | 'fn' '(' ty,* ')' ('->' ty)?
             | '<' ty 'as' qname args? '>' '::' IDENT args?
             | qname args?
    args    := '<' (ty | LIFETIME | IDENT '=' ty),* '>'
    v} *)

type error = { message : string; span : Span.t }

exception Error of error

type state = { toks : Lexer.spanned array; mutable pos : int }

let make toks = { toks = Array.of_list toks; pos = 0 }

let cur st = st.toks.(min st.pos (Array.length st.toks - 1))
let peek_tok st = (cur st).tok
let peek_tok2 st =
  let i = min (st.pos + 1) (Array.length st.toks - 1) in
  st.toks.(i).tok

let cur_span st = (cur st).span
let advance st = st.pos <- st.pos + 1

let fail st message = raise (Error { message; span = cur_span st })

let expect st tok =
  if peek_tok st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek_tok st)))

let eat st tok = if peek_tok st = tok then (advance st; true) else false

let ident st =
  match peek_tok st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let lifetime st =
  match peek_tok st with
  | Token.LIFETIME s ->
      advance st;
      s
  | t -> fail st (Printf.sprintf "expected lifetime, found %s" (Token.to_string t))

(** [a::b::c] *)
let qname st =
  let first = ident st in
  let rec loop acc =
    if peek_tok st = Token.COLONCOLON then begin
      advance st;
      loop (ident st :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

let comma_sep st ~stop parse_elem =
  let rec loop acc =
    if peek_tok st = stop then List.rev acc
    else
      let e = parse_elem st in
      if eat st Token.COMMA then loop (e :: acc) else List.rev (e :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Types *)

let rec ty st : Ast.raw_ty =
  match peek_tok st with
  | Token.AMP ->
      advance st;
      let lt = match peek_tok st with
        | Token.LIFETIME l ->
            advance st;
            Some l
        | _ -> None
      in
      let is_mut = eat st Token.KW_MUT in
      Ast.RRef (lt, is_mut, ty st)
  | Token.LPAREN ->
      (* [()] is unit, [(τ)] is grouping, [(τ,)] is a 1-tuple. *)
      advance st;
      if peek_tok st = Token.RPAREN then begin
        advance st;
        Ast.RTuple []
      end
      else begin
        let rec loop acc =
          let e = ty st in
          if eat st Token.COMMA then
            if peek_tok st = Token.RPAREN then (List.rev (e :: acc), true)
            else loop (e :: acc)
          else (List.rev (e :: acc), false)
        in
        let elems, trailing = loop [] in
        expect st Token.RPAREN;
        match (elems, trailing) with
        | [ one ], false -> one
        | _ -> Ast.RTuple elems
      end
  | Token.UNDERSCORE ->
      let sp = cur_span st in
      advance st;
      Ast.RInfer sp
  | Token.KW_SELF ->
      let sp = cur_span st in
      advance st;
      Ast.RSelf sp
  | Token.KW_DYN ->
      let sp = cur_span st in
      advance st;
      let name = qname st in
      let args = opt_args st in
      Ast.RDyn (name, args, sp)
  | Token.KW_FN ->
      let sp = cur_span st in
      advance st;
      if eat st Token.LBRACKET then begin
        let name = qname st in
        expect st Token.RBRACKET;
        Ast.RFnItem (name, sp)
      end
      else begin
        expect st Token.LPAREN;
        let inputs = comma_sep st ~stop:Token.RPAREN ty in
        expect st Token.RPAREN;
        let output = if eat st Token.ARROW then Some (ty st) else None in
        (* rustc prints fn items as [fn(τ̄) -> τ {name}]; accept that form
           back (the signature is re-derived from the declaration).  Only
           when an identifier follows the brace: in [impl T for fn(A) { }]
           the brace opens the impl body — which never starts with an
           identifier — not a fn-item name. *)
        if
          peek_tok st = Token.LBRACE
          && (match peek_tok2 st with Token.IDENT _ -> true | _ -> false)
        then begin
          expect st Token.LBRACE;
          let name = qname st in
          expect st Token.RBRACE;
          Ast.RFnItem (name, sp)
        end
        else Ast.RFnPtr (inputs, output)
      end
  | Token.LT ->
      (* <ty as Trait<..>>::Assoc<..> *)
      advance st;
      let self_ty = ty st in
      expect st Token.KW_AS;
      let tr_span = cur_span st in
      let tr_name = qname st in
      let tr_args = opt_args st in
      expect st Token.GT;
      expect st Token.COLONCOLON;
      let assoc = ident st in
      let assoc_args = opt_args st in
      Ast.RProj (self_ty, (tr_name, tr_args, tr_span), assoc, assoc_args)
  | Token.IDENT _ ->
      let sp = cur_span st in
      let name = qname st in
      let args = opt_args st in
      Ast.RName (name, args, sp)
  | t -> fail st (Printf.sprintf "expected a type, found %s" (Token.to_string t))

and opt_args st : Ast.raw_arg list =
  if peek_tok st <> Token.LT then []
  else begin
    advance st;
    let args = comma_sep st ~stop:Token.GT arg in
    expect st Token.GT;
    args
  end

and arg st : Ast.raw_arg =
  match peek_tok st with
  | Token.LIFETIME l ->
      advance st;
      Ast.RLt l
  | Token.IDENT name when peek_tok2 st = Token.EQ ->
      (* [Assoc = τ] binding sugar *)
      advance st;
      advance st;
      Ast.RBinding (name, ty st)
  | _ -> Ast.RTy (ty st)

(* ------------------------------------------------------------------ *)
(* Bounds and predicates *)

let bound st : Ast.raw_bound =
  let bound_span = cur_span st in
  let bound_name = qname st in
  let bound_args = opt_args st in
  { bound_name; bound_args; bound_span }

let bounds st =
  let first = bound st in
  let rec loop acc = if eat st Token.PLUS then loop (bound st :: acc) else List.rev acc in
  loop [ first ]

let pred st : Ast.raw_pred =
  let lhs = ty st in
  match peek_tok st with
  | Token.COLON -> begin
      advance st;
      match peek_tok st with
      | Token.LIFETIME l ->
          advance st;
          Ast.RPOutlives (lhs, l)
      | _ -> Ast.RPTrait (lhs, bounds st)
    end
  | Token.EQEQ ->
      advance st;
      Ast.RPProjEq (lhs, ty st)
  | t ->
      fail st (Printf.sprintf "expected ':' or '==' in predicate, found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Generics and where clauses *)

let generic_params st =
  if peek_tok st <> Token.LT then ([], [])
  else begin
    advance st;
    let lts = ref [] and ps = ref [] in
    let elem st =
      match peek_tok st with
      | Token.LIFETIME l ->
          advance st;
          lts := l :: !lts
      | _ -> ps := ident st :: !ps
    in
    let rec loop () =
      if peek_tok st = Token.GT then ()
      else begin
        elem st;
        if eat st Token.COMMA then loop ()
      end
    in
    loop ();
    expect st Token.GT;
    (List.rev !lts, List.rev !ps)
  end

let where_clause st =
  if not (eat st Token.KW_WHERE) then []
  else
    (* predicates separated by commas, terminated by '{' or ';' *)
    let rec loop acc =
      let p = pred st in
      if eat st Token.COMMA then
        (* allow trailing comma before '{' / ';' *)
        if peek_tok st = Token.LBRACE || peek_tok st = Token.SEMI then List.rev (p :: acc)
        else loop (p :: acc)
      else List.rev (p :: acc)
    in
    loop []

let generics_of st lts ps wc : Ast.raw_generics =
  ignore st;
  { Ast.rg_lifetimes = lts; rg_params = ps; rg_where = wc }

(* ------------------------------------------------------------------ *)
(* Items *)

let attr st : Ast.attr =
  expect st Token.HASH;
  expect st Token.LBRACKET;
  let name = ident st in
  let a =
    match name with
    | "on_unimplemented" ->
        expect st Token.LPAREN;
        let msg =
          match peek_tok st with
          | Token.STRING s ->
              advance st;
              s
          | t -> fail st (Printf.sprintf "expected string, found %s" (Token.to_string t))
        in
        expect st Token.RPAREN;
        Ast.On_unimplemented msg
    | other -> fail st (Printf.sprintf "unknown attribute %S" other)
  in
  expect st Token.RBRACKET;
  a

(* ------------------------------------------------------------------ *)
(* Expressions (fn bodies) *)

let rec expr st : Ast.raw_expr =
  let e = prim_expr st in
  postfix st e

and postfix st e =
  if peek_tok st = Token.DOT then begin
    advance st;
    let sp = cur_span st in
    let m = ident st in
    expect st Token.LPAREN;
    let args = comma_sep st ~stop:Token.RPAREN expr in
    expect st Token.RPAREN;
    postfix st (Ast.RE_method (e, m, args, sp))
  end
  else e

and prim_expr st : Ast.raw_expr =
  let sp = cur_span st in
  match peek_tok st with
  | Token.INT _ ->
      advance st;
      Ast.RE_int sp
  | Token.STRING _ ->
      advance st;
      Ast.RE_string sp
  | Token.LPAREN ->
      advance st;
      let elems = comma_sep st ~stop:Token.RPAREN expr in
      expect st Token.RPAREN;
      (match elems with [ one ] -> one | _ -> Ast.RE_tuple (elems, sp))
  | Token.IDENT _ ->
      let name = qname st in
      if peek_tok st = Token.LPAREN then begin
        advance st;
        let args = comma_sep st ~stop:Token.RPAREN expr in
        expect st Token.RPAREN;
        Ast.RE_call (name, args, sp)
      end
      else Ast.RE_name (name, sp)
  | t -> fail st (Printf.sprintf "expected an expression, found %s" (Token.to_string t))

let stmt st : Ast.raw_stmt =
  let sp = cur_span st in
  match peek_tok st with
  | Token.IDENT "let" ->
      advance st;
      let name = ident st in
      let ann = if eat st Token.COLON then Some (ty st) else None in
      expect st Token.EQ;
      let rhs = expr st in
      expect st Token.SEMI;
      Ast.RS_let { name; ann; rhs; span = sp }
  | _ ->
      let e = expr st in
      expect st Token.SEMI;
      Ast.RS_expr e

let body st : Ast.raw_stmt list =
  let rec loop acc =
    if peek_tok st = Token.RBRACE then List.rev acc else loop (stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Trait items *)

(** [fn m(self, τ̄) -> τ;] inside a trait. *)
let method_decl st : Ast.raw_method =
  let rm_span = cur_span st in
  expect st Token.KW_FN;
  let rm_name = ident st in
  let lts, ps = generic_params st in
  expect st Token.LPAREN;
  (* optional implicit receiver *)
  (match peek_tok st with
  | Token.IDENT "self" ->
      advance st;
      ignore (eat st Token.COMMA)
  | _ -> ());
  let rm_inputs = comma_sep st ~stop:Token.RPAREN ty in
  expect st Token.RPAREN;
  let rm_output = if eat st Token.ARROW then Some (ty st) else None in
  let wc = where_clause st in
  expect st Token.SEMI;
  { Ast.rm_name; rm_generics = generics_of st lts ps wc; rm_inputs; rm_output; rm_span }

let assoc_decl st : Ast.raw_assoc_decl =
  expect st Token.KW_TYPE;
  let name = ident st in
  let lts, ps = generic_params st in
  let bnds = if eat st Token.COLON then bounds st else [] in
  let default = if eat st Token.EQ then Some (ty st) else None in
  expect st Token.SEMI;
  {
    Ast.ra_name = name;
    ra_generics = generics_of st lts ps [];
    ra_bounds = bnds;
    ra_default = default;
  }

let rec item st : Ast.item =
  let start_span = cur_span st in
  match peek_tok st with
  | Token.HASH ->
      let attrs =
        let rec loop acc = if peek_tok st = Token.HASH then loop (attr st :: acc) else List.rev acc in
        loop []
      in
      (match item st with
      | Ast.RTrait t -> Ast.RTrait { t with attrs }
      | _ -> fail st "attributes are only supported on traits")
  | Token.KW_EXTERN ->
      advance st;
      expect st Token.KW_CRATE;
      let name = ident st in
      expect st Token.LBRACE;
      let items = items_until st Token.RBRACE in
      expect st Token.RBRACE;
      Ast.RExtern (name, items)
  | Token.KW_MOD ->
      advance st;
      let name = ident st in
      expect st Token.LBRACE;
      let items = items_until st Token.RBRACE in
      expect st Token.RBRACE;
      Ast.RMod (name, items)
  | Token.KW_STRUCT ->
      advance st;
      let name = ident st in
      let lts, ps = generic_params st in
      let wc = where_clause st in
      expect st Token.SEMI;
      Ast.RStruct
        { name; generics = generics_of st lts ps wc; repr = None; span = start_span }
  | Token.KW_NEWTYPE ->
      advance st;
      let name = ident st in
      let lts, ps = generic_params st in
      expect st Token.EQ;
      let repr = ty st in
      expect st Token.SEMI;
      Ast.RStruct
        { name; generics = generics_of st lts ps []; repr = Some repr; span = start_span }
  | Token.KW_TRAIT ->
      advance st;
      let name = ident st in
      let lts, ps = generic_params st in
      let supers = if eat st Token.COLON then bounds st else [] in
      let wc = where_clause st in
      expect st Token.LBRACE;
      let assocs = ref [] and methods = ref [] in
      let rec items () =
        match peek_tok st with
        | Token.KW_TYPE ->
            assocs := assoc_decl st :: !assocs;
            items ()
        | Token.KW_FN ->
            methods := method_decl st :: !methods;
            items ()
        | _ -> ()
      in
      items ();
      expect st Token.RBRACE;
      Ast.RTrait
        {
          name;
          generics = generics_of st lts ps wc;
          supertraits = supers;
          assocs = List.rev !assocs;
          methods = List.rev !methods;
          span = start_span;
          attrs = [];
        }
  | Token.KW_IMPL ->
      advance st;
      let lts, ps = generic_params st in
      let trait_ = bound st in
      expect st Token.KW_FOR;
      let self_ty = ty st in
      let wc = where_clause st in
      expect st Token.LBRACE;
      let bindings =
        let rec loop acc =
          if peek_tok st = Token.KW_TYPE then begin
            advance st;
            let name = ident st in
            let blts, bps = generic_params st in
            expect st Token.EQ;
            let t = ty st in
            expect st Token.SEMI;
            loop ((name, generics_of st blts bps [], t) :: acc)
          end
          else List.rev acc
        in
        loop []
      in
      expect st Token.RBRACE;
      Ast.RImpl
        {
          generics = generics_of st lts ps wc;
          trait_;
          self_ty;
          assoc_bindings = bindings;
          span = start_span;
        }
  | Token.KW_FN ->
      advance st;
      let name = ident st in
      let lts, ps = generic_params st in
      expect st Token.LPAREN;
      (* named params ([x: A]) permit a body; bare types do not *)
      let named =
        match (peek_tok st, peek_tok2 st) with
        | Token.IDENT _, Token.COLON -> true
        | _ -> false
      in
      let param_names, inputs =
        if named then begin
          let params =
            comma_sep st ~stop:Token.RPAREN (fun st ->
                let n = ident st in
                expect st Token.COLON;
                (n, ty st))
          in
          (Some (List.map fst params), List.map snd params)
        end
        else (None, comma_sep st ~stop:Token.RPAREN ty)
      in
      expect st Token.RPAREN;
      let output = if eat st Token.ARROW then Some (ty st) else None in
      let wc = where_clause st in
      let body_stmts =
        if peek_tok st = Token.LBRACE then begin
          advance st;
          let b = body st in
          expect st Token.RBRACE;
          Some b
        end
        else begin
          expect st Token.SEMI;
          None
        end
      in
      Ast.RFn
        {
          name;
          generics = generics_of st lts ps wc;
          inputs;
          param_names;
          output;
          body = body_stmts;
          span = start_span;
        }
  | Token.KW_GOAL ->
      advance st;
      let p = pred st in
      let origin =
        if eat st Token.KW_FROM then
          match peek_tok st with
          | Token.STRING s ->
              advance st;
              Some s
          | t -> fail st (Printf.sprintf "expected string after 'from', found %s" (Token.to_string t))
        else None
      in
      expect st Token.SEMI;
      Ast.RGoal { pred = p; origin; span = start_span }
  | t -> fail st (Printf.sprintf "expected an item, found %s" (Token.to_string t))

and items_until st stop =
  let rec loop acc = if peek_tok st = stop then List.rev acc else loop (item st :: acc) in
  loop []

(** Parse a whole source file into a raw AST. *)
let parse ~file src : Ast.t =
  let toks =
    try Lexer.tokenize ~file src
    with Lexer.Error e -> raise (Error { message = e.message; span = e.span })
  in
  let st = make toks in
  let items = items_until st Token.EOF in
  expect st Token.EOF;
  items
