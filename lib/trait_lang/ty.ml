(** Types of L_TRAIT (Fig. 5 of the paper).

    τ ⟶ unit | α | &ϱ τ | &ϱ mut τ | π | S⟨τ̄⟩ | τ₁ × τ₂ | τ₁ → τ₂ | ∃α. p̄

    Extensions beyond the paper's minimal grammar, needed to express its
    motivating examples faithfully:
    - primitive scalars ([i32], [usize], [str], [bool]) as built-in
      constructors;
    - *function items*: Rust gives each [fn] a distinct zero-sized type
      printed as [fn(Timer) {run_timer}], essential to §2.3;
    - trait objects [dyn T], used by some corpus programs;
    - inference variables [?n], which the solver introduces and which make
      a predicate's result [maybe]. *)

type t =
  | Unit
  | Bool
  | Int  (** [i32] *)
  | Uint  (** [usize] *)
  | Float
  | Str
  | Param of string  (** a universally quantified type parameter α *)
  | Infer of int  (** an inference variable ?n *)
  | Ref of Region.t * t  (** [&'r τ] *)
  | RefMut of Region.t * t  (** [&'r mut τ] *)
  | Ctor of Path.t * arg list  (** a nominal application S⟨τ̄⟩ *)
  | Tuple of t list  (** n-ary; [Tuple []] is not used (see [Unit]) *)
  | FnPtr of t list * t  (** [fn(τ̄) -> τ] *)
  | FnItem of Path.t * t list * t  (** [fn(τ̄) -> τ {name}] — a named fn item *)
  | Dynamic of trait_ref  (** [dyn T⟨τ̄⟩] *)
  | Proj of projection  (** an unnormalized associated-type projection π *)

(** A trait instance T⟨τ̄, ϱ̄⟩: a trait path applied to arguments.  The
    *self* type is not part of the trait ref; a full bound pairs a self
    type with a trait ref (see {!Predicate.trait_pred}). *)
and trait_ref = { trait : Path.t; args : arg list }

(** π ⟶ τ₁.D_T⟨τ̄₂, ϱ̄⟩ — an associated-type projection
    [<τ as T⟨τ̄⟩>::D⟨τ̄₂⟩]. *)
and projection = {
  self_ty : t;
  proj_trait : trait_ref;
  assoc : string;
  assoc_args : arg list;
}

(** Generic arguments are types or regions (const generics are omitted per
    the paper's idealization). *)
and arg = Ty of t | Lifetime of Region.t

let unit = Unit
let bool = Bool
let int = Int
let uint = Uint
let float = Float
let str = Str
let param name = Param name
let infer i = Infer i
let ref_ ?(region = Region.Erased) ty = Ref (region, ty)
let ref_mut ?(region = Region.Erased) ty = RefMut (region, ty)
let ctor path args = Ctor (path, List.map (fun t -> Ty t) args)
let ctor_args path args = Ctor (path, args)
(* The empty tuple is [Unit]; a one-element list is a genuine 1-tuple
   [(τ,)], distinct from τ itself, exactly as in Rust. *)
let tuple tys = match tys with [] -> Unit | _ -> Tuple tys
let fn_ptr args ret = FnPtr (args, ret)
let fn_item path args ret = FnItem (path, args, ret)
let dynamic tr = Dynamic tr
let proj p = Proj p

let trait_ref ?(args = []) trait = { trait; args = List.map (fun t -> Ty t) args }
let trait_ref_args trait args = { trait; args }

let projection ?(assoc_args = []) self_ty proj_trait assoc =
  { self_ty; proj_trait; assoc; assoc_args }

(* ------------------------------------------------------------------ *)
(* Structural equality (no unification; inference vars compare by id).
   Physical equality short-circuits every case: interned terms
   ({!Interner}) are maximally shared, so on the hot solver paths the
   deep walk below rarely runs. *)

let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Unit, Unit | Bool, Bool | Int, Int | Uint, Uint | Float, Float | Str, Str -> true
  | Param a, Param b -> String.equal a b
  | Infer a, Infer b -> Int.equal a b
  | Ref (r1, t1), Ref (r2, t2) | RefMut (r1, t1), RefMut (r2, t2) ->
      Region.equal r1 r2 && equal t1 t2
  | Ctor (p1, a1), Ctor (p2, a2) -> Path.equal p1 p2 && equal_args a1 a2
  | Tuple t1, Tuple t2 -> List.length t1 = List.length t2 && List.for_all2 equal t1 t2
  | FnPtr (a1, r1), FnPtr (a2, r2) ->
      List.length a1 = List.length a2 && List.for_all2 equal a1 a2 && equal r1 r2
  | FnItem (p1, a1, r1), FnItem (p2, a2, r2) ->
      Path.equal p1 p2
      && List.length a1 = List.length a2
      && List.for_all2 equal a1 a2 && equal r1 r2
  | Dynamic t1, Dynamic t2 -> equal_trait_ref t1 t2
  | Proj p1, Proj p2 -> equal_projection p1 p2
  | _ -> false

and equal_arg a b =
  a == b
  ||
  match (a, b) with
  | Ty a, Ty b -> equal a b
  | Lifetime a, Lifetime b -> Region.equal a b
  | _ -> false

and equal_args a b =
  a == b || (List.length a = List.length b && List.for_all2 equal_arg a b)

and equal_trait_ref a b =
  a == b || (Path.equal a.trait b.trait && equal_args a.args b.args)

and equal_projection a b =
  a == b
  || equal a.self_ty b.self_ty
     && equal_trait_ref a.proj_trait b.proj_trait
     && String.equal a.assoc b.assoc
     && equal_args a.assoc_args b.assoc_args

let compare = Stdlib.compare

(* ------------------------------------------------------------------ *)
(* Folds. *)

(** [fold f acc ty] visits every sub-type of [ty] (including [ty] itself),
    pre-order. *)
let rec fold f acc ty =
  let acc = f acc ty in
  match ty with
  | Unit | Bool | Int | Uint | Float | Str | Param _ | Infer _ -> acc
  | Ref (_, t) | RefMut (_, t) -> fold f acc t
  | Ctor (_, args) -> fold_args f acc args
  | Tuple ts -> List.fold_left (fold f) acc ts
  | FnPtr (args, ret) -> fold f (List.fold_left (fold f) acc args) ret
  | FnItem (_, args, ret) -> fold f (List.fold_left (fold f) acc args) ret
  | Dynamic tr -> fold_args f acc tr.args
  | Proj p ->
      let acc = fold f acc p.self_ty in
      let acc = fold_args f acc p.proj_trait.args in
      fold_args f acc p.assoc_args

and fold_args f acc args =
  List.fold_left (fun acc -> function Ty t -> fold f acc t | Lifetime _ -> acc) acc args

(** The number of type nodes, a proxy for textual size. *)
let size ty = fold (fun n _ -> n + 1) 0 ty

(** All inference variables occurring in [ty], deduplicated, ascending. *)
let infer_vars ty =
  fold (fun acc t -> match t with Infer i -> i :: acc | _ -> acc) [] ty
  |> List.sort_uniq Int.compare

(** All universally quantified parameters occurring in [ty]. *)
let params ty =
  fold (fun acc t -> match t with Param p -> p :: acc | _ -> acc) [] ty
  |> List.sort_uniq String.compare

let has_infer ty = infer_vars ty <> []

(** Does [ty] mention inference variable [i]?  (occurs check) *)
let mentions_infer i ty =
  fold (fun found t -> found || match t with Infer j -> i = j | _ -> false) false ty

(** Is this a function-shaped type?  Used by the inertia heuristic to
    recognize "function trait bound" categories. *)
let is_fn_like = function FnPtr _ | FnItem _ -> true | _ -> false

(** The head constructor path of a nominal type, if any.  Candidate
    assembly uses head paths to pre-filter impls cheaply. *)
let head_path = function
  | Ctor (p, _) | FnItem (p, _, _) -> Some p
  | Dynamic tr -> Some tr.trait
  | _ -> None

(** Provenance of a type's head: [Some Local] for a locally defined
    nominal head, [Some (External _)] for a dependency's, [None] when the
    head is structural (tuples, refs, fn pointers, primitives, params). *)
let head_crate ty = Option.map Path.crate (head_path ty)
