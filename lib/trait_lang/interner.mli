(** Hash-consing for L_TRAIT terms.

    Interned terms are maximally shared: two structurally equal terms
    returned by the functions below are {e physically} equal, each with a
    process-unique id and a precomputed hash.  Combined with the [==]
    fast paths in {!Ty.equal} and {!Predicate.equal}, this turns deep
    structural comparison into a pointer comparison wherever both sides
    were interned, and gives the solver's evaluation cache O(1) keys.

    Interning an already-canonical term is an all-hit table walk that
    allocates only shallow lookup keys.  Telemetry counters
    [interner.hit] / [interner.miss] count node-level table outcomes.

    The tables are {b domain-local}: canonicality (and the [==]
    guarantee) holds among terms interned by the same domain, with no
    locks on the hot path.  Terms interned by different domains compare
    equal only structurally — the fast paths degrade gracefully.  Keep
    each solving work unit on one domain (the batch driver does). *)

type 'a interned = {
  node : 'a;  (** the canonical (maximally shared) term *)
  id : int;  (** unique across every table of this domain, stable until {!clear} *)
  hash : int;  (** precomputed; suitable for Hashtbl keys *)
}

(** {1 Canonicalizing term constructors} *)

val ty : Ty.t -> Ty.t
val arg : Ty.arg -> Ty.arg
val trait_ref : Ty.trait_ref -> Ty.trait_ref
val projection : Ty.projection -> Ty.projection
val predicate : Predicate.t -> Predicate.t

(** {1 Id/hash access} *)

val ty_info : Ty.t -> Ty.t interned
val trait_ref_info : Ty.trait_ref -> Ty.trait_ref interned
val projection_info : Ty.projection -> Ty.projection interned
val predicate_info : Predicate.t -> Predicate.t interned

(** {1 Introspection} *)

type stats = {
  st_tys : int;
  st_args : int;
  st_trait_refs : int;
  st_projections : int;
  st_predicates : int;
}

(** Live entry counts per table, for the calling domain. *)
val stats : unit -> stats

(** Empty the calling domain's tables.  Previously interned terms stay
    valid values but are no longer canonical: terms interned afterwards
    will not be physically equal to them.  Intended for tests. *)
val clear : unit -> unit
