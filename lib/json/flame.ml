(** Flamegraph encoders: the collapsed/folded stack format consumed by
    flamegraph.pl / inferno, and the speedscope JSON file format.  Both
    are generic over (frame label, value) data; {!Profile} supplies the
    solver's cost-annotated goal tree. *)

(* ------------------------------------------------------------------ *)
(* Folded stacks *)

let sanitize_frame s =
  String.map (function ';' -> ',' | '\n' | '\r' -> ' ' | c -> c) s

let folded rows =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (stack, value) ->
      if value > 0 && stack <> [] then begin
        Buffer.add_string buf
          (String.concat ";" (List.map sanitize_frame stack));
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int value);
        Buffer.add_char buf '\n'
      end)
    rows;
  Buffer.contents buf

let folded_total rows =
  List.fold_left (fun acc (_, v) -> if v > 0 then acc + v else acc) 0 rows

let parse_folded text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.rindex_opt line ' ' with
           | None -> failwith ("folded: no value field in line: " ^ line)
           | Some i ->
               let stack_s = String.sub line 0 i in
               let value_s = String.sub line (i + 1) (String.length line - i - 1) in
               let value =
                 match int_of_string_opt value_s with
                 | Some v -> v
                 | None -> failwith ("folded: bad value in line: " ^ line)
               in
               Some (String.split_on_char ';' stack_s, value))

(* ------------------------------------------------------------------ *)
(* Speedscope *)

type frame_event = { fe_frame : string; fe_open : bool; fe_at : int }

let well_nested events =
  let rec go stack last = function
    | [] -> stack = []
    | { fe_at; _ } :: _ when fe_at < last -> false
    | { fe_open = true; fe_frame; fe_at } :: rest -> go (fe_frame :: stack) fe_at rest
    | { fe_open = false; fe_frame; fe_at } :: rest -> (
        match stack with
        | top :: stack' when String.equal top fe_frame -> go stack' fe_at rest
        | _ -> false)
  in
  go [] min_int events

let speedscope ?(name = "argus profile") ?end_at events =
  if not (well_nested events) then
    invalid_arg "Flame.speedscope: events are not well-nested";
  let end_at =
    match end_at with
    | Some e -> e
    | None -> List.fold_left (fun acc e -> max acc e.fe_at) 0 events
  in
  (* shared frame table: first-appearance order, deduplicated by name *)
  let frame_index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let frames = ref [] in
  let index_of label =
    match Hashtbl.find_opt frame_index label with
    | Some i -> i
    | None ->
        let i = Hashtbl.length frame_index in
        Hashtbl.add frame_index label i;
        frames := label :: !frames;
        i
  in
  let events_json =
    List.map
      (fun e ->
        Json.Obj
          [
            ("type", Json.String (if e.fe_open then "O" else "C"));
            ("frame", Json.Int (index_of e.fe_frame));
            ("at", Json.Int e.fe_at);
          ])
      events
  in
  let frames_json =
    List.rev_map (fun label -> Json.Obj [ ("name", Json.String label) ]) !frames
  in
  Json.Obj
    [
      ("$schema", Json.String "https://www.speedscope.app/file-format-schema.json");
      ("shared", Json.Obj [ ("frames", Json.List frames_json) ]);
      ( "profiles",
        Json.List
          [
            Json.Obj
              [
                ("type", Json.String "evented");
                ("name", Json.String name);
                ("unit", Json.String "nanoseconds");
                ("startValue", Json.Int 0);
                ("endValue", Json.Int end_at);
                ("events", Json.List events_json);
              ];
          ] );
      ("name", Json.String name);
      ("activeProfileIndex", Json.Int 0);
      ("exporter", Json.String "argus");
    ]

let fail path message = raise (Decode.Decode_error { Decode.path; message })

let parse_speedscope doc =
  let member path name j =
    match Json.member name j with
    | Some v -> v
    | None -> fail path ("missing field " ^ name)
  in
  let frames =
    match member "$.shared" "frames" (member "$" "shared" doc) with
    | Json.List fs ->
        Array.of_list
          (List.map
             (fun f ->
               match Json.member "name" f with
               | Some (Json.String s) -> s
               | _ -> fail "$.shared.frames" "frame without a name")
             fs)
    | _ -> fail "$.shared.frames" "not a list"
  in
  let profile =
    match member "$" "profiles" doc with
    | Json.List (p :: _) -> p
    | _ -> fail "$.profiles" "empty or not a list"
  in
  let name =
    match Json.member "name" profile with
    | Some (Json.String s) -> s
    | _ -> "unnamed"
  in
  let end_at =
    match Json.member "endValue" profile with
    | Some (Json.Int i) -> i
    | _ -> fail "$.profiles[0]" "missing endValue"
  in
  let events =
    match member "$.profiles[0]" "events" profile with
    | Json.List es ->
        List.map
          (fun e ->
            let path = "$.profiles[0].events" in
            let typ =
              match Json.member "type" e with
              | Some (Json.String s) -> s
              | _ -> fail path "event without a type"
            in
            let frame =
              match Json.member "frame" e with
              | Some (Json.Int i) when i >= 0 && i < Array.length frames -> frames.(i)
              | _ -> fail path "event frame out of range"
            in
            let at =
              match Json.member "at" e with
              | Some (Json.Int i) -> i
              | _ -> fail path "event without an offset"
            in
            { fe_frame = frame; fe_open = typ = "O"; fe_at = at })
          es
    | _ -> fail "$.profiles[0].events" "not a list"
  in
  (name, end_at, events)
