(** JSON decoders, inverse to {!Encode} for the type-system fragment.

    An embedding front end sends user interactions back to the plugin
    referencing predicates and types by their serialized form; these
    decoders let round-trips be tested end to end. *)

open Trait_lang

type error = { path : string; message : string }

exception Decode_error of error

let fail path message = raise (Decode_error { path; message })

let field path key j =
  match Json.member key j with
  | Some v -> v
  | None -> fail path (Printf.sprintf "missing field %S" key)

let str path = function
  | Json.String s -> s
  | _ -> fail path "expected a string"

let int_ path = function Json.Int i -> i | _ -> fail path "expected an integer"

let list_ path = function Json.List xs -> xs | _ -> fail path "expected a list"

let path_ p j : Path.t =
  let crate =
    match str (p ^ ".crate") (field p "crate" j) with
    | "local" -> Path.Local
    | c -> Path.External c
  in
  let segments = List.map (str (p ^ ".segments[]")) (list_ p (field p "segments" j)) in
  Path.v ~crate segments

let region p j : Region.t =
  match str p j with
  | "'static" -> Region.Static
  | "'_" -> Region.Erased
  | s when String.length s > 2 && s.[0] = '\'' && s.[1] = '?' ->
      Region.Infer (int_of_string (String.sub s 2 (String.length s - 2)))
  | s when String.length s > 1 && s.[0] = '\'' ->
      Region.Named (String.sub s 1 (String.length s - 1))
  | s -> fail p ("malformed region " ^ s)

let rec ty p j : Ty.t =
  let kind = str (p ^ ".kind") (field p "kind" j) in
  match kind with
  | "unit" -> Ty.Unit
  | "bool" -> Ty.Bool
  | "i32" -> Ty.Int
  | "usize" -> Ty.Uint
  | "f64" -> Ty.Float
  | "string" -> Ty.Str
  | "param" -> Ty.Param (str (p ^ ".name") (field p "name" j))
  | "infer" -> Ty.Infer (int_ (p ^ ".id") (field p "id" j))
  | "ref" -> Ty.Ref (region (p ^ ".region") (field p "region" j), ty (p ^ ".ty") (field p "ty" j))
  | "ref_mut" ->
      Ty.RefMut (region (p ^ ".region") (field p "region" j), ty (p ^ ".ty") (field p "ty" j))
  | "adt" -> Ty.Ctor (path_ (p ^ ".path") (field p "path" j), args (p ^ ".args") (field p "args" j))
  | "tuple" ->
      Ty.Tuple (List.map (ty (p ^ ".elems[]")) (list_ p (field p "elems" j)))
  | "fn_ptr" ->
      Ty.FnPtr
        ( List.map (ty (p ^ ".inputs[]")) (list_ p (field p "inputs" j)),
          ty (p ^ ".output") (field p "output" j) )
  | "fn_item" ->
      Ty.FnItem
        ( path_ (p ^ ".path") (field p "path" j),
          List.map (ty (p ^ ".inputs[]")) (list_ p (field p "inputs" j)),
          ty (p ^ ".output") (field p "output" j) )
  | "dyn" -> Ty.Dynamic (trait_ref (p ^ ".trait") (field p "trait" j))
  | "projection" -> Ty.Proj (projection (p ^ ".proj") (field p "proj" j))
  | k -> fail p ("unknown type kind " ^ k)

and arg p j : Ty.arg =
  match Json.member "ty" j with
  | Some t -> Ty.Ty (ty (p ^ ".ty") t)
  | None -> (
      match Json.member "lifetime" j with
      | Some r -> Ty.Lifetime (region (p ^ ".lifetime") r)
      | None -> fail p "expected a type or lifetime argument")

and args p j : Ty.arg list = List.map (arg (p ^ "[]")) (list_ p j)

and trait_ref p j : Ty.trait_ref =
  {
    Ty.trait = path_ (p ^ ".trait") (field p "trait" j);
    args = args (p ^ ".args") (field p "args" j);
  }

and projection p j : Ty.projection =
  {
    Ty.self_ty = ty (p ^ ".self") (field p "self" j);
    proj_trait = trait_ref (p ^ ".trait") (field p "trait" j);
    assoc = str (p ^ ".assoc") (field p "assoc" j);
    assoc_args = args (p ^ ".assoc_args") (field p "assoc_args" j);
  }

let predicate p j : Predicate.t =
  let kind = str (p ^ ".kind") (field p "kind" j) in
  match kind with
  | "trait" ->
      Predicate.Trait
        {
          self_ty = ty (p ^ ".self") (field p "self" j);
          trait_ref = trait_ref (p ^ ".trait_ref") (field p "trait_ref" j);
        }
  | "projection" ->
      Predicate.Projection
        {
          projection = projection (p ^ ".proj") (field p "proj" j);
          term = ty (p ^ ".term") (field p "term" j);
        }
  | "type_outlives" ->
      Predicate.TypeOutlives
        (ty (p ^ ".ty") (field p "ty" j), region (p ^ ".region") (field p "region" j))
  | "region_outlives" ->
      Predicate.RegionOutlives
        (region (p ^ ".sub") (field p "sub" j), region (p ^ ".sup") (field p "sup" j))
  | "well_formed" -> Predicate.WellFormed (ty (p ^ ".ty") (field p "ty" j))
  | "object_safe" -> Predicate.ObjectSafe (path_ (p ^ ".trait") (field p "trait" j))
  | "const_evaluatable" ->
      Predicate.ConstEvaluatable (str (p ^ ".expr") (field p "expr" j))
  | "normalizes_to" ->
      Predicate.NormalizesTo
        (projection (p ^ ".proj") (field p "proj" j), int_ (p ^ ".into") (field p "into" j))
  | k -> fail p ("unknown predicate kind " ^ k)

let ty_of_json j = ty "$" j
let predicate_of_json j = predicate "$" j
let path_of_json j = path_ "$" j
let region_of_json j = region "$" j
let projection_of_json j = projection "$" j
