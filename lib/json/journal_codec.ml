(** JSONL wire format for the solver search {!Journal} — schema
    [argus.journal/v1].

    A journal file is one JSON object per line: a header line naming the
    schema, then one line per event entry.  The codec round-trips every
    payload (full-fidelity spans, unlike {!Encode.span} which keeps only
    the start line), so [argus explain] can reconstruct the search from
    the file alone. *)

open Trait_lang

let schema = "argus.journal/v1"

type error = Decode.error = { path : string; message : string }

let fail path message = raise (Decode.Decode_error { path; message })

let field path key j =
  match Json.member key j with
  | Some v -> v
  | None -> fail path (Printf.sprintf "missing field %S" key)

let str path = function Json.String s -> s | _ -> fail path "expected a string"
let int_ path = function Json.Int i -> i | _ -> fail path "expected an integer"
let bool_ path = function Json.Bool b -> b | _ -> fail path "expected a boolean"

let opt f path = function Json.Null -> None | j -> Some (f path j)

let int_opt path j = opt int_ path j

(* --- spans (full fidelity, unlike Encode.span) ---------------------- *)

let span_to_json (s : Span.t) : Json.t =
  if Span.is_dummy s then Json.Null
  else
    Json.Obj
      [
        ("file", Json.String s.Span.file);
        ("start_line", Json.Int s.Span.start.Span.line);
        ("start_col", Json.Int s.Span.start.Span.col);
        ("stop_line", Json.Int s.Span.stop.Span.line);
        ("stop_col", Json.Int s.Span.stop.Span.col);
      ]

let span_of_json path = function
  | Json.Null -> Span.dummy
  | j ->
      Span.v
        ~file:(str (path ^ ".file") (field path "file" j))
        ~start_line:(int_ (path ^ ".start_line") (field path "start_line" j))
        ~start_col:(int_ (path ^ ".start_col") (field path "start_col" j))
        ~stop_line:(int_ (path ^ ".stop_line") (field path "stop_line" j))
        ~stop_col:(int_ (path ^ ".stop_col") (field path "stop_col" j))

(* --- payload codecs ------------------------------------------------- *)

let res_to_json (r : Journal.res) : Json.t = Json.String (Journal.res_to_string r)

let res_of_json path j : Journal.res =
  match str path j with
  | "yes" -> Journal.Yes
  | "maybe" -> Journal.Maybe
  | "no" -> Journal.No
  | s -> fail path ("unknown result " ^ s)

let flag_to_json (f : Journal.flag) : Json.t = Json.String (Journal.flag_to_string f)

let flag_of_json path j : Journal.flag =
  match str path j with
  | "overflow" -> Journal.Overflow
  | "depth-limit" -> Journal.Depth_limit
  | "stateful" -> Journal.Stateful
  | "speculative" -> Journal.Speculative
  | "ambiguous-selection" -> Journal.Ambiguous_selection
  | s -> fail path ("unknown flag " ^ s)

let flags_to_json fs = Json.List (List.map flag_to_json fs)

let flags_of_json path = function
  | Json.List xs -> List.map (flag_of_json (path ^ "[]")) xs
  | _ -> fail path "expected a list of flags"

let prov_to_json : Journal.prov -> Json.t = function
  | Journal.Root { origin; span } ->
      Json.Obj
        [ ("p", Json.String "root"); ("origin", Json.String origin); ("span", span_to_json span) ]
  | Journal.Impl_where { impl_id; clause_idx } ->
      Json.Obj
        [
          ("p", Json.String "impl_where");
          ("impl_id", Json.Int impl_id);
          ("clause_idx", Json.Int clause_idx);
        ]
  | Journal.Param_env i -> Json.Obj [ ("p", Json.String "param_env"); ("index", Json.Int i) ]
  | Journal.Supertrait tr ->
      Json.Obj [ ("p", Json.String "supertrait"); ("trait", Encode.path tr) ]
  | Journal.Builtin_req what ->
      Json.Obj [ ("p", Json.String "builtin_req"); ("what", Json.String what) ]
  | Journal.Normalization -> Json.Obj [ ("p", Json.String "normalization") ]

let prov_of_json path j : Journal.prov =
  match str (path ^ ".p") (field path "p" j) with
  | "root" ->
      Journal.Root
        {
          origin = str (path ^ ".origin") (field path "origin" j);
          span = span_of_json (path ^ ".span") (field path "span" j);
        }
  | "impl_where" ->
      Journal.Impl_where
        {
          impl_id = int_ (path ^ ".impl_id") (field path "impl_id" j);
          clause_idx = int_ (path ^ ".clause_idx") (field path "clause_idx" j);
        }
  | "param_env" -> Journal.Param_env (int_ (path ^ ".index") (field path "index" j))
  | "supertrait" -> Journal.Supertrait (Decode.path_of_json (field path "trait" j))
  | "builtin_req" -> Journal.Builtin_req (str (path ^ ".what") (field path "what" j))
  | "normalization" -> Journal.Normalization
  | s -> fail path ("unknown provenance " ^ s)

let source_to_json : Journal.source -> Json.t = function
  | Journal.Impl { impl_id; header } ->
      Json.Obj
        [ ("s", Json.String "impl"); ("impl_id", Json.Int impl_id); ("header", Json.String header) ]
  | Journal.Param_env_clause p ->
      Json.Obj [ ("s", Json.String "param_env"); ("clause", Encode.predicate p) ]
  | Journal.Builtin b -> Json.Obj [ ("s", Json.String "builtin"); ("name", Json.String b) ]

let source_of_json path j : Journal.source =
  match str (path ^ ".s") (field path "s" j) with
  | "impl" ->
      Journal.Impl
        {
          impl_id = int_ (path ^ ".impl_id") (field path "impl_id" j);
          header = str (path ^ ".header") (field path "header" j);
        }
  | "param_env" -> Journal.Param_env_clause (Decode.predicate_of_json (field path "clause" j))
  | "builtin" -> Journal.Builtin (str (path ^ ".name") (field path "name" j))
  | s -> fail path ("unknown candidate source " ^ s)

let failure_to_json : Journal.unify_failure -> Json.t = function
  | Journal.Head_mismatch (a, b) ->
      Json.Obj [ ("f", Json.String "head_mismatch"); ("left", Encode.ty a); ("right", Encode.ty b) ]
  | Journal.Arity (a, b) ->
      Json.Obj [ ("f", Json.String "arity"); ("left", Encode.ty a); ("right", Encode.ty b) ]
  | Journal.Region_mismatch (a, b) ->
      Json.Obj
        [ ("f", Json.String "region_mismatch"); ("left", Encode.region a); ("right", Encode.region b) ]
  | Journal.Occurs (i, t) ->
      Json.Obj [ ("f", Json.String "occurs"); ("var", Json.Int i); ("ty", Encode.ty t) ]
  | Journal.Projection_ambiguous (p, t) ->
      Json.Obj
        [
          ("f", Json.String "projection_ambiguous");
          ("proj", Encode.projection p);
          ("ty", Encode.ty t);
        ]

let failure_of_json path j : Journal.unify_failure =
  match str (path ^ ".f") (field path "f" j) with
  | "head_mismatch" ->
      Journal.Head_mismatch
        (Decode.ty_of_json (field path "left" j), Decode.ty_of_json (field path "right" j))
  | "arity" ->
      Journal.Arity
        (Decode.ty_of_json (field path "left" j), Decode.ty_of_json (field path "right" j))
  | "region_mismatch" ->
      Journal.Region_mismatch
        ( Decode.region_of_json (field path "left" j),
          Decode.region_of_json (field path "right" j) )
  | "occurs" ->
      Journal.Occurs
        (int_ (path ^ ".var") (field path "var" j), Decode.ty_of_json (field path "ty" j))
  | "projection_ambiguous" ->
      Journal.Projection_ambiguous
        ( Decode.projection_of_json (field path "proj" j),
          Decode.ty_of_json (field path "ty" j) )
  | s -> fail path ("unknown unify failure " ^ s)

let failure_opt_to_json = function None -> Json.Null | Some f -> failure_to_json f

let failure_opt_of_json path = function
  | Json.Null -> None
  | j -> Some (failure_of_json path j)

(* --- events --------------------------------------------------------- *)

let int_opt_to_json = function None -> Json.Null | Some i -> Json.Int i

let event_fields : Journal.event -> (string * Json.t) list = function
  | Journal.Goal_enter { id; parent; pred; depth; prov } ->
      [
        ("id", Json.Int id);
        ("parent", int_opt_to_json parent);
        ("pred", Encode.predicate pred);
        ("depth", Json.Int depth);
        ("prov", prov_to_json prov);
      ]
  | Journal.Goal_exit { id; pred; result; flags } ->
      [
        ("id", Json.Int id);
        ("pred", Encode.predicate pred);
        ("result", res_to_json result);
        ("flags", flags_to_json flags);
      ]
  | Journal.Goal_flag { id; flag } -> [ ("id", Json.Int id); ("flag", flag_to_json flag) ]
  | Journal.Cand_enter { id; goal; source } ->
      [ ("id", Json.Int id); ("goal", Json.Int goal); ("source", source_to_json source) ]
  | Journal.Cand_exit { id; result; failure } ->
      [
        ("id", Json.Int id);
        ("result", res_to_json result);
        ("failure", failure_opt_to_json failure);
      ]
  | Journal.Cand_assembled { goal; param_env; impls; builtin } ->
      [
        ("goal", Json.Int goal);
        ("param_env", Json.Int param_env);
        ("impls", Json.Int impls);
        ("builtin", Json.Int builtin);
      ]
  | Journal.Cand_commit { goal; cand } -> [ ("goal", Json.Int goal); ("cand", Json.Int cand) ]
  | Journal.Unify { node; left; right; failure } ->
      [
        ("node", int_opt_to_json node);
        ("left", Encode.ty left);
        ("right", Encode.ty right);
        ("failure", failure_opt_to_json failure);
      ]
  | Journal.Snapshot_open { snap; node } ->
      [ ("snap", Json.Int snap); ("node", int_opt_to_json node) ]
  | Journal.Snapshot_commit { snap } -> [ ("snap", Json.Int snap) ]
  | Journal.Snapshot_rollback { snap } -> [ ("snap", Json.Int snap) ]
  | Journal.Norm_resolved { id; resolved } ->
      [
        ("id", Json.Int id);
        ("resolved", match resolved with None -> Json.Null | Some t -> Encode.ty t);
      ]
  | Journal.Cycle_detected { id; pred } ->
      [ ("id", Json.Int id); ("pred", Encode.predicate pred) ]
  | Journal.Overflow_hit { id; depth_limited } ->
      [ ("id", Json.Int id); ("depth_limited", Json.Bool depth_limited) ]
  | Journal.Ambiguity { id; succeeded } ->
      [ ("id", Json.Int id); ("succeeded", Json.Int succeeded) ]
  | Journal.Probe_begin { origin; alternatives } ->
      [ ("origin", Json.String origin); ("alternatives", Json.Int alternatives) ]
  | Journal.Probe_end { committed } -> [ ("committed", int_opt_to_json committed) ]
  | Journal.Overlap_detected { trait_; impl_a; impl_b; witness } ->
      [
        ("trait", Encode.path trait_);
        ("impl_a", Json.Int impl_a);
        ("impl_b", Json.Int impl_b);
        ("witness", Encode.ty witness);
      ]
  | Journal.Cache_hit { goal; tier } | Journal.Cache_miss { goal; tier } ->
      [ ("goal", Json.Int goal); ("tier", Json.String tier) ]

let entry_to_json (e : Journal.entry) : Json.t =
  Json.Obj
    (("seq", Json.Int e.seq)
    :: ("ts", Json.Int e.ts_ns)
    :: ("kind", Json.String (Journal.event_kind e.ev))
    :: event_fields e.ev)

let event_of_json path kind j : Journal.event =
  let id () = int_ (path ^ ".id") (field path "id" j) in
  match kind with
  | "goal_enter" ->
      Journal.Goal_enter
        {
          id = id ();
          parent = int_opt (path ^ ".parent") (field path "parent" j);
          pred = Decode.predicate_of_json (field path "pred" j);
          depth = int_ (path ^ ".depth") (field path "depth" j);
          prov = prov_of_json (path ^ ".prov") (field path "prov" j);
        }
  | "goal_exit" ->
      Journal.Goal_exit
        {
          id = id ();
          pred = Decode.predicate_of_json (field path "pred" j);
          result = res_of_json (path ^ ".result") (field path "result" j);
          flags = flags_of_json (path ^ ".flags") (field path "flags" j);
        }
  | "goal_flag" ->
      Journal.Goal_flag { id = id (); flag = flag_of_json (path ^ ".flag") (field path "flag" j) }
  | "cand_enter" ->
      Journal.Cand_enter
        {
          id = id ();
          goal = int_ (path ^ ".goal") (field path "goal" j);
          source = source_of_json (path ^ ".source") (field path "source" j);
        }
  | "cand_exit" ->
      Journal.Cand_exit
        {
          id = id ();
          result = res_of_json (path ^ ".result") (field path "result" j);
          failure = failure_opt_of_json (path ^ ".failure") (field path "failure" j);
        }
  | "cand_assembled" ->
      Journal.Cand_assembled
        {
          goal = int_ (path ^ ".goal") (field path "goal" j);
          param_env = int_ (path ^ ".param_env") (field path "param_env" j);
          impls = int_ (path ^ ".impls") (field path "impls" j);
          builtin = int_ (path ^ ".builtin") (field path "builtin" j);
        }
  | "cand_commit" ->
      Journal.Cand_commit
        {
          goal = int_ (path ^ ".goal") (field path "goal" j);
          cand = int_ (path ^ ".cand") (field path "cand" j);
        }
  | "unify" ->
      Journal.Unify
        {
          node = int_opt (path ^ ".node") (field path "node" j);
          left = Decode.ty_of_json (field path "left" j);
          right = Decode.ty_of_json (field path "right" j);
          failure = failure_opt_of_json (path ^ ".failure") (field path "failure" j);
        }
  | "snapshot_open" ->
      Journal.Snapshot_open
        {
          snap = int_ (path ^ ".snap") (field path "snap" j);
          node = int_opt (path ^ ".node") (field path "node" j);
        }
  | "snapshot_commit" ->
      Journal.Snapshot_commit { snap = int_ (path ^ ".snap") (field path "snap" j) }
  | "snapshot_rollback" ->
      Journal.Snapshot_rollback { snap = int_ (path ^ ".snap") (field path "snap" j) }
  | "norm_resolved" ->
      Journal.Norm_resolved
        {
          id = id ();
          resolved =
            (match field path "resolved" j with
            | Json.Null -> None
            | t -> Some (Decode.ty_of_json t));
        }
  | "cycle_detected" ->
      Journal.Cycle_detected
        { id = id (); pred = Decode.predicate_of_json (field path "pred" j) }
  | "overflow_hit" ->
      Journal.Overflow_hit
        {
          id = id ();
          depth_limited = bool_ (path ^ ".depth_limited") (field path "depth_limited" j);
        }
  | "ambiguity" ->
      Journal.Ambiguity
        { id = id (); succeeded = int_ (path ^ ".succeeded") (field path "succeeded" j) }
  | "probe_begin" ->
      Journal.Probe_begin
        {
          origin = str (path ^ ".origin") (field path "origin" j);
          alternatives = int_ (path ^ ".alternatives") (field path "alternatives" j);
        }
  | "probe_end" ->
      Journal.Probe_end
        { committed = int_opt (path ^ ".committed") (field path "committed" j) }
  | "overlap_detected" ->
      Journal.Overlap_detected
        {
          trait_ = Decode.path_of_json (field path "trait" j);
          impl_a = int_ (path ^ ".impl_a") (field path "impl_a" j);
          impl_b = int_ (path ^ ".impl_b") (field path "impl_b" j);
          witness = Decode.ty_of_json (field path "witness" j);
        }
  | "cache_hit" ->
      Journal.Cache_hit
        {
          goal = int_ (path ^ ".goal") (field path "goal" j);
          tier = str (path ^ ".tier") (field path "tier" j);
        }
  | "cache_miss" ->
      Journal.Cache_miss
        {
          goal = int_ (path ^ ".goal") (field path "goal" j);
          tier = str (path ^ ".tier") (field path "tier" j);
        }
  | k -> fail path ("unknown event kind " ^ k)

let entry_of_json (j : Json.t) : Journal.entry =
  let path = "$" in
  {
    Journal.seq = int_ (path ^ ".seq") (field path "seq" j);
    ts_ns = int_ (path ^ ".ts") (field path "ts" j);
    ev = event_of_json path (str (path ^ ".kind") (field path "kind" j)) j;
  }

(* --- the JSONL stream ----------------------------------------------- *)

let header_line () = Json.to_string (Json.Obj [ ("schema", Json.String schema) ])

let to_jsonl (entries : Journal.entry list) : string =
  let buf = Buffer.create (256 * (1 + List.length entries)) in
  Buffer.add_string buf (header_line ());
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (entry_to_json e));
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let of_jsonl (s : string) : Journal.entry list =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> fail "$" "empty journal: missing header line"
  | header :: rest ->
      let hj =
        try Json.of_string header
        with Json.Parse_error (msg, pos) ->
          fail "$.header" (Printf.sprintf "malformed header (%s at offset %d)" msg pos)
      in
      (match Json.member "schema" hj with
      | Some (Json.String s) when s = schema -> ()
      | Some (Json.String s) ->
          fail "$.header" (Printf.sprintf "unsupported schema %S (expected %S)" s schema)
      | _ -> fail "$.header" "missing schema field");
      List.mapi
        (fun i line ->
          let j =
            try Json.of_string line
            with Json.Parse_error (msg, pos) ->
              fail
                (Printf.sprintf "$.line[%d]" (i + 2))
                (Printf.sprintf "malformed JSON (%s at offset %d)" msg pos)
          in
          entry_of_json j)
        rest
