(** JSON-RPC 2.0 framing for [argus serve]: newline-delimited requests
    and responses over stdio or a socket.  This module is pure
    (string/JSON in, string/JSON out) — transport and dispatch live in
    [Serve.Server]; keeping the codec here means the conformance tests
    and the fuzz oracle exercise exactly the wire format the daemon
    speaks. *)

(** A request ID.  JSON-RPC allows numbers, strings, and (discouraged)
    null; requests {e without} an [id] member are notifications and get
    no response. *)
type id = Int_id of int | String_id of string | Null_id

type request = {
  rpc_id : id option;  (** [None] = notification *)
  rpc_method : string;
  rpc_params : Json.t option;
}

type error = { code : int; message : string; data : Json.t option }

type response = {
  resp_id : id;
  resp_result : (Json.t, error) result;
}

(** {1 Error codes}

    The four spec-defined codes plus the server-defined range used by
    the serve protocol (documented in docs/SERVE.md). *)

val parse_error : int  (** -32700: line was not valid JSON *)

val invalid_request : int  (** -32600: JSON but not a valid request object *)

val method_not_found : int  (** -32601 *)

val invalid_params : int  (** -32602 *)

val unknown_session : int  (** -32001: no session with that name *)

val load_error : int  (** -32002: the source failed to parse/load *)

val shutting_down : int  (** -32003: received after [shutdown] *)

val session_exists : int  (** -32004: [open] with a taken session name *)

val not_solved : int  (** -32005: verb needs a prior [solve] *)

(** {1 Codec} *)

val id_to_json : id -> Json.t

(** Decode one newline-delimited frame.  [Error] carries the error
    object to answer with: code {!parse_error} for malformed JSON,
    {!invalid_request} for a JSON value that is not a request object
    (wrong/missing ["jsonrpc"], non-string ["method"], bad ["id"] or
    ["params"] type).  Per spec, a parse/invalid-request response has
    id [Null_id]. *)
val request_of_line : string -> (request, error) result

val request_to_json : request -> Json.t

(** Compact one-line rendering, ready to write followed by ['\n']. *)
val request_to_line : request -> string

val error_obj : ?data:Json.t -> code:int -> string -> error
val response_to_json : response -> Json.t
val response_to_line : response -> string

(** Decode a response frame (used by the load generator, oracle, and
    tests to read the server's answers back).  [Error] is a human
    message — a malformed response is a server bug, not a protocol
    condition. *)
val response_of_line : string -> (response, string) result

val ok : id -> Json.t -> response
val fail : id -> error -> response
