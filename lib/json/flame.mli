(** Flamegraph encoders: Brendan Gregg's collapsed/folded stack format
    and the speedscope JSON file format (https://www.speedscope.app).

    Both are generic over (frame label, value) data so they serve any
    producer; {!Profile} feeds them the solver's cost-annotated goal
    tree.  Each encoder has a matching parser used by the round-trip
    tests — and by anyone post-processing a written profile. *)

(** {1 Folded stacks}

    One line per stack: [frame;frame;frame value].  Values are integers
    (we use nanoseconds of self time).  Frame labels are sanitized:
    [';'] and newlines (the format's separators) become [','] / [' ']. *)

val sanitize_frame : string -> string

(** Encode rows as folded lines (terminated by a final newline when
    non-empty).  Stacks are root-first.  Rows with value [<= 0] are
    dropped — folded values are sample weights, zero rows carry no
    information. *)
val folded : (string list * int) list -> string

(** Total value across all folded rows. *)
val folded_total : (string list * int) list -> int

(** Parse folded lines back into rows (blank lines skipped).
    @raise Failure on a line with no value field *)
val parse_folded : string -> (string list * int) list

(** {1 Speedscope}

    The evented profile flavour: a shared frame table plus open/close
    events at nanosecond offsets.  Events must be properly nested and
    non-decreasing in [at] — the encoder checks and raises
    [Invalid_argument] otherwise, so a malformed profile never reaches
    the viewer. *)

type frame_event = {
  fe_frame : string;  (** frame label *)
  fe_open : bool;  (** open ([O]) or close ([C]) *)
  fe_at : int;  (** nanoseconds from profile start *)
}

(** [speedscope ~name events] builds a complete speedscope file document
    ([$schema], shared frame table, one evented profile in nanoseconds).
    [end_at] defaults to the last event's offset. *)
val speedscope : ?name:string -> ?end_at:int -> frame_event list -> Json.t

(** Recover (profile name, end value, events) from a speedscope document
    produced by {!speedscope}.
    @raise Decode.Decode_error on documents missing the expected shape *)
val parse_speedscope : Json.t -> string * int * frame_event list

(** Stack-discipline check: every close matches the innermost open frame
    and offsets never decrease. *)
val well_nested : frame_event list -> bool
