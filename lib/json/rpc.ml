type id = Int_id of int | String_id of string | Null_id

type request = {
  rpc_id : id option;
  rpc_method : string;
  rpc_params : Json.t option;
}

type error = { code : int; message : string; data : Json.t option }
type response = { resp_id : id; resp_result : (Json.t, error) result }

let parse_error = -32700
let invalid_request = -32600
let method_not_found = -32601
let invalid_params = -32602
let unknown_session = -32001
let load_error = -32002
let shutting_down = -32003
let session_exists = -32004
let not_solved = -32005

let id_to_json = function
  | Int_id n -> Json.Int n
  | String_id s -> Json.String s
  | Null_id -> Json.Null

let id_of_json = function
  | Json.Int n -> Ok (Int_id n)
  | Json.String s -> Ok (String_id s)
  | Json.Null -> Ok Null_id
  | _ -> Error "id must be a number, string, or null"

let error_obj ?data ~code message = { code; message; data }

let request_of_line line =
  let invalid msg = Error (error_obj ~code:invalid_request msg) in
  match Json.of_string line with
  | exception Json.Parse_error (msg, off) ->
      Error
        (error_obj ~code:parse_error
           (Printf.sprintf "Parse error: %s at offset %d" msg off))
  | Json.Obj _ as j -> (
      match Json.member "jsonrpc" j with
      | Some (Json.String "2.0") -> (
          match Json.member "method" j with
          | Some (Json.String m) -> (
              let params =
                match Json.member "params" j with
                | None | Some Json.Null -> Ok None
                | Some (Json.Obj _ as p) | Some (Json.List _ as p) -> Ok (Some p)
                | Some _ -> Error ()
              in
              match params with
              | Error () -> invalid "params must be an object or array"
              | Ok rpc_params -> (
                  match Json.member "id" j with
                  | None -> Ok { rpc_id = None; rpc_method = m; rpc_params }
                  | Some idj -> (
                      match id_of_json idj with
                      | Error msg -> invalid msg
                      | Ok id ->
                          Ok { rpc_id = Some id; rpc_method = m; rpc_params })))
          | Some _ -> invalid "method must be a string"
          | None -> invalid "missing method")
      | Some _ | None -> invalid "missing jsonrpc: \"2.0\"")
  | _ -> invalid "request must be an object"

let request_to_json { rpc_id; rpc_method; rpc_params } =
  let fields = [ ("jsonrpc", Json.String "2.0") ] in
  let fields =
    match rpc_id with
    | None -> fields
    | Some id -> fields @ [ ("id", id_to_json id) ]
  in
  let fields = fields @ [ ("method", Json.String rpc_method) ] in
  let fields =
    match rpc_params with None -> fields | Some p -> fields @ [ ("params", p) ]
  in
  Json.Obj fields

let request_to_line r = Json.to_string (request_to_json r)

let error_to_json { code; message; data } =
  let fields =
    [ ("code", Json.Int code); ("message", Json.String message) ]
  in
  let fields =
    match data with None -> fields | Some d -> fields @ [ ("data", d) ]
  in
  Json.Obj fields

let response_to_json { resp_id; resp_result } =
  let payload =
    match resp_result with
    | Ok result -> ("result", result)
    | Error e -> ("error", error_to_json e)
  in
  Json.Obj [ ("jsonrpc", Json.String "2.0"); ("id", id_to_json resp_id); payload ]

let response_to_line r = Json.to_string (response_to_json r)

let response_of_line line =
  match Json.of_string line with
  | exception Json.Parse_error (msg, off) ->
      Error (Printf.sprintf "response parse error: %s at offset %d" msg off)
  | j -> (
      match Json.member "jsonrpc" j with
      | Some (Json.String "2.0") -> (
          match Json.member "id" j with
          | None -> Error "response missing id"
          | Some idj -> (
              match id_of_json idj with
              | Error msg -> Error msg
              | Ok resp_id -> (
                  match (Json.member "result" j, Json.member "error" j) with
                  | Some result, None -> Ok { resp_id; resp_result = Ok result }
                  | None, Some err -> (
                      match
                        ( Json.member "code" err,
                          Json.member "message" err )
                      with
                      | Some code, Some msg
                        when Json.to_int_opt code <> None
                             && Json.to_string_opt msg <> None ->
                          Ok
                            {
                              resp_id;
                              resp_result =
                                Error
                                  {
                                    code = Option.get (Json.to_int_opt code);
                                    message =
                                      Option.get (Json.to_string_opt msg);
                                    data = Json.member "data" err;
                                  };
                            }
                      | _ -> Error "malformed error object")
                  | Some _, Some _ -> Error "response has both result and error"
                  | None, None -> Error "response has neither result nor error")))
      | _ -> Error "response missing jsonrpc: \"2.0\"")

let ok id result = { resp_id = id; resp_result = Ok result }
let fail id e = { resp_id = id; resp_result = Error e }
