(** JSON decoders, inverse to {!Encode} for the type-system fragment, so
    front-end round trips are testable end to end. *)

open Trait_lang

type error = { path : string; message : string }

exception Decode_error of error

(** @raise Decode_error with a JSON-path-qualified message. *)
val ty_of_json : Json.t -> Ty.t

val predicate_of_json : Json.t -> Predicate.t
val path_of_json : Json.t -> Path.t
val region_of_json : Json.t -> Region.t
val projection_of_json : Json.t -> Ty.projection
