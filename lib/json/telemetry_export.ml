(** Chrome trace-event export of a telemetry snapshot.

    The output is the Trace Event Format's "JSON Array" flavour — an array
    of objects with [name]/[ph]/[ts] fields — loadable directly in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing]:

    - spans become paired ["B"]/["E"] duration events on one track;
    - counters become a single ["C"] counter event stamped at the end of
      the trace, so the counter track shows the final tallies;
    - a ["M"] metadata event names the process.

    Timestamps are rebased to the first event and expressed in
    microseconds, as the format requires. *)

type decoded_event = { de_name : string; de_ph : string; de_ts : float }

let pid = 1
let tid = 1

let base_ts (sn : Telemetry.snapshot) =
  match sn.sn_events with [] -> 0 | e :: _ -> e.ev_ts

(** Nanoseconds-from-base to trace microseconds. *)
let us_of ~base ns = float_of_int (ns - base) /. 1e3

let event_json ~base (e : Telemetry.event) : Json.t =
  Json.Obj
    [
      ("name", Json.String e.ev_name);
      ("ph", Json.String (match e.ev_phase with Telemetry.Span_begin -> "B" | Telemetry.Span_end -> "E"));
      ("ts", Json.Float (us_of ~base e.ev_ts));
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("cat", Json.String "argus");
    ]

let counter_json ~ts (name, v) : Json.t =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Float ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("value", Json.Int v) ]);
    ]

let metadata_json : Json.t =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("ts", Json.Float 0.);
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.String "argus") ]);
    ]

(** The full trace: metadata, then span events, then final counter values.
    Counters with value 0 are omitted from the counter track (they would
    only add flat lines), but every span event is kept. *)
let chrome_trace (sn : Telemetry.snapshot) : Json.t =
  let base = base_ts sn in
  let end_ts =
    List.fold_left (fun acc (e : Telemetry.event) -> max acc (us_of ~base e.ev_ts)) 0. sn.sn_events
  in
  let counters =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (counter_json ~ts:end_ts (name, v)))
      sn.sn_counters
  in
  Json.List ((metadata_json :: List.map (event_json ~base) sn.sn_events) @ counters)

let chrome_trace_string sn = Json.to_string (chrome_trace sn)

(* ------------------------------------------------------------------ *)
(* Decoding, for round-trip tests and external checkers *)

(** Decode a Chrome trace back to (name, ph, ts) triples.  Raises
    {!Decode.Decode_error} on anything that is not an array of objects
    carrying the three mandatory fields. *)
let decode_events (j : Json.t) : decoded_event list =
  let fail path message = raise (Decode.Decode_error { Decode.path; message }) in
  let events =
    match j with Json.List es -> es | _ -> fail "trace" "expected a JSON array"
  in
  List.map
    (fun e ->
      let field name =
        match Json.member name e with
        | Some v -> v
        | None -> fail "trace[]" (Printf.sprintf "missing field %S" name)
      in
      let str name =
        match field name with
        | Json.String s -> s
        | _ -> fail "trace[]" (Printf.sprintf "field %S is not a string" name)
      in
      let ts =
        match field "ts" with
        | Json.Float f -> f
        | Json.Int i -> float_of_int i
        | _ -> fail "trace[]" "field \"ts\" is not a number"
      in
      { de_name = str "name"; de_ph = str "ph"; de_ts = ts })
    events

(** The span-only view of a decoded trace (drops metadata and counters). *)
let decoded_spans evs = List.filter (fun e -> e.de_ph = "B" || e.de_ph = "E") evs
