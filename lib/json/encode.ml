(** JSON encoders for the L_TRAIT type system and the extracted proof
    trees — the external representation the IDE front end would consume
    (the role of the serde layer that is 40.6% of the Rust plugin, §4). *)

open Trait_lang

let path (p : Path.t) : Json.t =
  Json.Obj
    [
      ( "crate",
        match Path.crate p with
        | Path.Local -> Json.String "local"
        | Path.External c -> Json.String c );
      ("segments", Json.List (List.map (fun s -> Json.String s) (Path.segments p)));
    ]

let span (s : Span.t) : Json.t =
  if Span.is_dummy s then Json.Null
  else
    Json.Obj
      [
        ("file", Json.String (Span.file s));
        ("line", Json.Int (Span.start_line s));
      ]

let region (r : Region.t) : Json.t = Json.String (Region.to_string r)

let rec ty (t : Ty.t) : Json.t =
  let k kind fields = Json.Obj (("kind", Json.String kind) :: fields) in
  match t with
  | Ty.Unit -> k "unit" []
  | Ty.Bool -> k "bool" []
  | Ty.Int -> k "i32" []
  | Ty.Uint -> k "usize" []
  | Ty.Float -> k "f64" []
  | Ty.Str -> k "string" []
  | Ty.Param name -> k "param" [ ("name", Json.String name) ]
  | Ty.Infer i -> k "infer" [ ("id", Json.Int i) ]
  | Ty.Ref (r, t') -> k "ref" [ ("region", region r); ("ty", ty t') ]
  | Ty.RefMut (r, t') -> k "ref_mut" [ ("region", region r); ("ty", ty t') ]
  | Ty.Ctor (p, args') -> k "adt" [ ("path", path p); ("args", args args') ]
  | Ty.Tuple ts -> k "tuple" [ ("elems", Json.List (List.map ty ts)) ]
  | Ty.FnPtr (inputs, output) ->
      k "fn_ptr" [ ("inputs", Json.List (List.map ty inputs)); ("output", ty output) ]
  | Ty.FnItem (p, inputs, output) ->
      k "fn_item"
        [
          ("path", path p);
          ("inputs", Json.List (List.map ty inputs));
          ("output", ty output);
        ]
  | Ty.Dynamic tr -> k "dyn" [ ("trait", trait_ref tr) ]
  | Ty.Proj p -> k "projection" [ ("proj", projection p) ]

and arg : Ty.arg -> Json.t = function
  | Ty.Ty t -> Json.Obj [ ("ty", ty t) ]
  | Ty.Lifetime r -> Json.Obj [ ("lifetime", region r) ]

and args (xs : Ty.arg list) : Json.t = Json.List (List.map arg xs)

and trait_ref (tr : Ty.trait_ref) : Json.t =
  Json.Obj [ ("trait", path tr.trait); ("args", args tr.args) ]

and projection (p : Ty.projection) : Json.t =
  Json.Obj
    [
      ("self", ty p.self_ty);
      ("trait", trait_ref p.proj_trait);
      ("assoc", Json.String p.assoc);
      ("assoc_args", args p.assoc_args);
    ]

let predicate (p : Predicate.t) : Json.t =
  let k kind fields = Json.Obj (("kind", Json.String kind) :: fields) in
  match p with
  | Predicate.Trait { self_ty; trait_ref = tr } ->
      k "trait" [ ("self", ty self_ty); ("trait_ref", trait_ref tr) ]
  | Predicate.Projection { projection = pr; term } ->
      k "projection" [ ("proj", projection pr); ("term", ty term) ]
  | Predicate.TypeOutlives (t, r) -> k "type_outlives" [ ("ty", ty t); ("region", region r) ]
  | Predicate.RegionOutlives (a, b) ->
      k "region_outlives" [ ("sub", region a); ("sup", region b) ]
  | Predicate.WellFormed t -> k "well_formed" [ ("ty", ty t) ]
  | Predicate.ObjectSafe p -> k "object_safe" [ ("trait", path p) ]
  | Predicate.ConstEvaluatable e -> k "const_evaluatable" [ ("expr", Json.String e) ]
  | Predicate.NormalizesTo (pr, v) ->
      k "normalizes_to" [ ("proj", projection pr); ("into", Json.Int v) ]

let res (r : Solver.Res.t) : Json.t = Json.String (Solver.Res.to_string r)

let impl (i : Decl.impl) : Json.t =
  Json.Obj
    [
      ("id", Json.Int i.impl_id);
      ("trait_ref", trait_ref i.impl_trait);
      ("self", ty i.impl_self);
      ("span", span i.impl_span);
      ("header", Json.String (Pretty.impl_header ~cfg:Pretty.expanded i));
    ]

let cand_source : Solver.Trace.cand_source -> Json.t = function
  | Solver.Trace.Cand_impl i -> Json.Obj [ ("impl", impl i) ]
  | Solver.Trace.Cand_param_env p -> Json.Obj [ ("param_env", predicate p) ]
  | Solver.Trace.Cand_builtin b -> Json.Obj [ ("builtin", Json.String b) ]

(** Encode an extracted proof tree, nodes flattened in id order —
    the wire format an embedding UI would consume. *)
let proof_tree (t : Argus.Proof_tree.t) : Json.t =
  let node (n : Argus.Proof_tree.node) : Json.t =
    let base =
      [
        ("id", Json.Int n.id);
        ( "parent",
          match n.parent with Some p -> Json.Int p | None -> Json.Null );
        ("children", Json.List (List.map (fun c -> Json.Int c) n.children));
      ]
    in
    match n.kind with
    | Argus.Proof_tree.Goal g ->
        Json.Obj
          (base
          @ [
              ("type", Json.String "goal");
              ("predicate", predicate g.pred);
              ("result", res g.result);
              ("overflow", Json.Bool g.is_overflow);
              ("stateful", Json.Bool g.is_stateful);
              ("depth", Json.Int g.depth);
              ("trace_id", Json.Int g.trace_id);
              ("text", Json.String (Pretty.predicate g.pred));
            ])
    | Argus.Proof_tree.Cand c ->
        Json.Obj
          (base
          @ [
              ("type", Json.String "candidate");
              ("source", cand_source c.source);
              ("result", res c.cand_result);
              ("trace_id", Json.Int c.cand_trace_id);
            ])
  in
  Json.Obj
    [
      ("root", Json.Int (Argus.Proof_tree.root t).id);
      ( "nodes",
        Json.List
          (Argus.Proof_tree.fold (fun acc n -> node n :: acc) [] t |> List.rev) );
    ]

let goal_report (r : Solver.Obligations.goal_report) : Json.t =
  Json.Obj
    [
      ("goal", predicate r.goal.goal_pred);
      ("origin", Json.String r.goal.goal_origin);
      ("span", span r.goal.goal_span);
      ( "status",
        Json.String
          (match r.status with
          | Solver.Obligations.Proved -> "proved"
          | Solver.Obligations.Disproved -> "disproved"
          | Solver.Obligations.Ambiguous -> "ambiguous") );
      ("attempts", Json.Int (List.length r.attempts));
      ("tree", proof_tree (Argus.Extract.of_report r));
    ]

let report (r : Solver.Obligations.report) : Json.t =
  Json.Obj
    [
      ("rounds", Json.Int r.rounds);
      ("goals", Json.List (List.map goal_report r.reports));
    ]
