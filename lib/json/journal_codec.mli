(** JSONL wire format for the solver search {!Journal} — schema
    [argus.journal/v1]: a header line naming the schema, then one JSON
    object per event entry.  Round-trips every payload with full
    fidelity (including spans), so [argus explain] can reconstruct the
    search from the file alone.

    Decoders raise {!Decode.Decode_error} with a JSON-path-qualified
    message. *)

val schema : string

val entry_to_json : Journal.entry -> Json.t
val entry_of_json : Json.t -> Journal.entry

(** The compact header line (no trailing newline). *)
val header_line : unit -> string

(** Encode a full stream, header included. *)
val to_jsonl : Journal.entry list -> string

(** Decode a full stream; the first non-empty line must be a matching
    header. *)
val of_jsonl : string -> Journal.entry list
