(** Rust-compiler-style textual diagnostics — the *baseline* Argus is
    evaluated against.

    This module reproduces the rendering strategy the paper's §2
    dissects, including its information-losing heuristics:

    - it reports the *deepest* failed predicate reachable along an
      unambiguous failure chain, but {b stops at branch points} in the
      inference tree (the §2.3 Bevy problem: the key bound
      [Timer: SystemParam] never appears);
    - it prints the chain of "required for … to implement …" notes, but
      {b elides the middle} of long chains as "N redundant requirements
      hidden" (the §2.1 Diesel problem: the informative [Eq<..>] bound is
      hidden);
    - it applies a path-shortening heuristic that can render distinct
      types identically (both [users::table] and [posts::table] print as
      [table]);
    - [#[diagnostic::on_unimplemented]] messages replace the generic
      header when the failing trait declares one (§6). *)

open Trait_lang
open Argus

type t = {
  code : string;  (** "E0277" | "E0271" | "E0275" *)
  primary : string;  (** the headline message *)
  span : Span.t;  (** where the root obligation arose *)
  origin : string;  (** e.g. "the call to .load(conn)" *)
  notes : string list;  (** "required for …" chain notes, post-elision *)
  hidden : int;  (** count of elided chain entries *)
  reported : Proof_tree.node_id;  (** the node the headline talks about *)
  root_bound : string;  (** the originating bound, printed last *)
}

(* rustc trims paths: print only the final segment, even when that
   collapses distinct types — deliberately reproducing the §2.1 flaw. *)
let trimmed = { Pretty.expanded with qualified_paths = false; max_depth = 1000 }

(** Walk from the root towards the deepest failure, stopping at branch
    points (two or more failing candidates that each have failing
    subgoals). *)
let reported_chain (tree : Proof_tree.t) : Proof_tree.node list =
  let rec descend acc (n : Proof_tree.node) =
    let acc = n :: acc in
    let failing_cands =
      Proof_tree.children tree n
      |> List.filter_map (fun c ->
             match c.Proof_tree.kind with
             | Proof_tree.Cand ci when not (Solver.Res.is_yes ci.cand_result) ->
                 let failing_subs =
                   Proof_tree.children tree c
                   |> List.filter (fun s ->
                          Proof_tree.is_goal s && Proof_tree.is_failed s)
                 in
                 if failing_subs = [] then None else Some failing_subs
             | _ -> None)
    in
    match failing_cands with
    | [ subs ] -> descend acc (List.hd subs)
    | _ -> acc  (* leaf failure or branch point: stop here *)
  in
  descend [] (Proof_tree.root tree)
(* deepest first *)

let pred_of (n : Proof_tree.node) =
  match n.Proof_tree.kind with
  | Proof_tree.Goal g -> g.pred
  | Proof_tree.Cand _ -> invalid_arg "pred_of"

let goal_of (n : Proof_tree.node) =
  match n.Proof_tree.kind with
  | Proof_tree.Goal g -> g
  | Proof_tree.Cand _ -> invalid_arg "goal_of"

let required_for_note (p : Predicate.t) =
  match p with
  | Predicate.Trait { self_ty; trait_ref } ->
      Printf.sprintf "required for `%s` to implement `%s`" (Pretty.ty ~cfg:trimmed self_ty)
        (Pretty.trait_ref ~cfg:trimmed trait_ref)
  | _ -> Printf.sprintf "required for `%s` to hold" (Pretty.predicate ~cfg:trimmed p)

(** rustc elision: keep the two notes nearest the reported error and the
    two nearest the root; hide the rest. *)
let elide (notes : string list) : string list * int =
  let n = List.length notes in
  if n <= 4 then (notes, 0)
  else
    let arr = Array.of_list notes in
    let kept_head = [ arr.(0); arr.(1) ] in
    let kept_tail = [ arr.(n - 2); arr.(n - 1) ] in
    let hidden = n - 4 in
    ( kept_head
      @ [ Printf.sprintf "%d redundant requirements hidden" hidden ]
      @ kept_tail,
      hidden )

let headline (program : Program.t) (reported : Proof_tree.node) : string * string =
  let g = goal_of reported in
  if g.is_overflow then
    ( "E0275",
      Printf.sprintf "overflow evaluating the requirement `%s`"
        (Pretty.predicate ~cfg:trimmed g.pred) )
  else if Solver.Res.is_maybe g.result then
    (* inference finished with the predicate still ambiguous *)
    ( "E0283",
      Printf.sprintf "type annotations needed: cannot satisfy `%s`"
        (Pretty.predicate ~cfg:trimmed g.pred) )
  else
    match g.pred with
    | Predicate.Projection { projection; term } ->
        ( "E0271",
          Printf.sprintf "type mismatch resolving `%s == %s`"
            (Pretty.projection ~cfg:trimmed projection)
            (Pretty.ty ~cfg:trimmed term) )
    | Predicate.Trait { self_ty; trait_ref } -> (
        let custom =
          Option.bind (Program.find_trait program trait_ref.trait) (fun tr ->
              tr.tr_on_unimplemented)
        in
        match custom with
        | Some msg ->
            ("E0277", Printf.sprintf "`%s` %s" (Pretty.ty ~cfg:trimmed self_ty) msg)
        | None ->
            ( "E0277",
              Printf.sprintf "the trait bound `%s: %s` is not satisfied"
                (Pretty.ty ~cfg:trimmed self_ty)
                (Pretty.trait_ref ~cfg:trimmed trait_ref) ))
    | p ->
        ("E0277", Printf.sprintf "the requirement `%s` is not satisfied" (Pretty.predicate ~cfg:trimmed p))

(** Produce the diagnostic for a failed root goal's proof tree. *)
let of_tree (program : Program.t) (goal : Program.goal) (tree : Proof_tree.t) : t =
  let chain = reported_chain tree in
  let reported = List.hd chain in
  let code, primary = headline program reported in
  (* An [#[diagnostic::on_unimplemented]] message on the *root* bound's
     trait overrides the headline — this is how Bevy's "does not describe
     a valid system configuration" (Fig. 4b) arises even though the
     reported bound is the deeper [IntoSystem]. *)
  let code, primary, help =
    match goal.goal_pred with
    | Predicate.Trait { self_ty; trait_ref } when code = "E0277" -> (
        match
          Option.bind (Program.find_trait program trait_ref.trait) (fun tr ->
              tr.tr_on_unimplemented)
        with
        | Some msg ->
            ( "E0277",
              Printf.sprintf "`%s` %s" (Pretty.ty ~cfg:trimmed self_ty) msg,
              (* keep the generic text of the reported bound as a help line *)
              [
                Printf.sprintf "help: the trait `%s` is not implemented"
                  (Pretty.predicate ~cfg:trimmed (pred_of reported));
              ] )
        | None -> (code, primary, []))
    | _ -> (code, primary, [])
  in
  (* On E0277 at a branch point, rustc reports the *root* bound (the §2.3
     behaviour); on linear chains it reports the deepest and notes the
     chain upward. *)
  let intermediate =
    match chain with [] | [ _ ] -> [] | _ :: rest -> List.map pred_of rest
  in
  let notes_raw = help @ List.map required_for_note intermediate in
  let notes, hidden = elide notes_raw in
  {
    code;
    primary;
    span = goal.goal_span;
    origin = goal.goal_origin;
    notes;
    hidden;
    reported = reported.Proof_tree.id;
    root_bound = Pretty.predicate ~cfg:trimmed goal.goal_pred;
  }

let to_string (d : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "error[%s]: %s\n" d.code d.primary);
  Buffer.add_string buf (Printf.sprintf "  --> %s\n" (Span.to_string d.span));
  Buffer.add_string buf
    (Printf.sprintf "   | required by a bound introduced by %s\n" d.origin);
  List.iter
    (fun n ->
      if String.length n > 0 && n.[0] >= '0' && n.[0] <= '9' then
        Buffer.add_string buf (Printf.sprintf "   = note: %s\n" n)
      else if String.length n >= 5 && String.sub n 0 5 = "help:" then
        Buffer.add_string buf (Printf.sprintf "   = %s\n" n)
      else Buffer.add_string buf (Printf.sprintf "note: %s\n" n))
    d.notes;
  Buffer.add_string buf
    (Printf.sprintf "note: required by this bound: `%s`\n" d.root_bound);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fig. 12a comparison metric. *)

(** "What is the minimal number of inference steps a developer would have
    to manually trace to reach the root failure?" — the goal-step
    distance between the compiler's reported node and the ground-truth
    root cause. *)
let distance_to_root_cause (tree : Proof_tree.t) (d : t) ~(root_cause : Predicate.t) :
    int option =
  let target =
    Proof_tree.fold
      (fun acc (n : Proof_tree.node) ->
        match (acc, n.kind) with
        | Some _, _ -> acc
        | None, Proof_tree.Goal g when Predicate.equal g.pred root_cause -> Some n
        | _ -> None)
      None tree
  in
  Option.map
    (fun t -> Proof_tree.goal_distance tree (Proof_tree.node tree d.reported) t)
    target
