(** Random L_TRAIT program generation (see the interface for the IR).

    Well-formedness invariants maintained by construction:

    - every struct/trait/param reference is declared, with matching arity;
    - impl where-clauses put {e bare type parameters} on the left of
      bounds, never parameter-containing applications.  Growth of goal
      terms during search (the ingredient of exponential blowup when
      combined with candidate branching) is therefore confined to the
      overflow gadget, which owns exactly one impl — its regress is a
      single chain the depth limit cuts off, like the corpus program
      [ast-overflow];
    - inference holes ([_]) appear only in goals.

    Failure-mode gadgets use a private [Fz]-prefixed namespace so random
    impls never add a second candidate to a gadget trait. *)

module Rng = Stats.Rng

type ty =
  | Prim of string
  | Name of string * ty list
  | Tup of ty list
  | Ref of ty
  | Fn_ptr of ty list * ty option
  | Dyn of string
  | Hole
  | Proj of ty * bound * string

and bound = { b_trait : string; b_args : ty list; b_bindings : (string * ty) list }

type pred =
  | P_trait of ty * bound
  | P_proj_eq of ty * bound * string * ty

type assoc_decl = { a_name : string; a_bounds : bound list; a_default : ty option }

type decl =
  | Struct of { s_name : string; s_arity : int }
  | Trait of {
      t_name : string;
      t_arity : int;
      t_supers : bound list;
      t_assocs : assoc_decl list;
    }
  | Impl of {
      i_params : string list;
      i_trait : bound;
      i_self : ty;
      i_where : pred list;
      i_bindings : (string * ty) list;
    }
  | Goal of pred

type spec = decl list

let default_size = 2

(* ------------------------------------------------------------------ *)
(* Rendering *)

let rec render_ty = function
  | Prim s -> s
  | Name (n, []) -> n
  | Name (n, args) -> n ^ "<" ^ String.concat ", " (List.map render_ty args) ^ ">"
  | Tup [ one ] -> "(" ^ render_ty one ^ ",)"
  | Tup ts -> "(" ^ String.concat ", " (List.map render_ty ts) ^ ")"
  | Ref t -> "&" ^ render_ty t
  | Fn_ptr (args, ret) ->
      "fn("
      ^ String.concat ", " (List.map render_ty args)
      ^ ")"
      ^ (match ret with None -> "" | Some r -> " -> " ^ render_ty r)
  | Dyn n -> "dyn " ^ n
  | Hole -> "_"
  | Proj (self, b, assoc) -> "<" ^ render_ty self ^ " as " ^ render_bound b ^ ">::" ^ assoc

and render_bound b =
  let args =
    List.map render_ty b.b_args
    @ List.map (fun (n, t) -> n ^ " = " ^ render_ty t) b.b_bindings
  in
  match args with [] -> b.b_trait | _ -> b.b_trait ^ "<" ^ String.concat ", " args ^ ">"

let render_pred = function
  | P_trait (t, b) -> render_ty t ^ ": " ^ render_bound b
  | P_proj_eq (t, b, assoc, rhs) ->
      "<" ^ render_ty t ^ " as " ^ render_bound b ^ ">::" ^ assoc ^ " == " ^ render_ty rhs

let render_where buf = function
  | [] -> ()
  | preds ->
      Buffer.add_string buf " where ";
      Buffer.add_string buf (String.concat ", " (List.map render_pred preds))

let render_decl buf = function
  | Struct { s_name; s_arity } ->
      Buffer.add_string buf "struct ";
      Buffer.add_string buf s_name;
      if s_arity > 0 then begin
        let ps = List.init s_arity (fun i -> Printf.sprintf "P%d" i) in
        Buffer.add_string buf ("<" ^ String.concat ", " ps ^ ">")
      end;
      Buffer.add_string buf ";\n"
  | Trait { t_name; t_arity; t_supers; t_assocs } ->
      Buffer.add_string buf "trait ";
      Buffer.add_string buf t_name;
      if t_arity > 0 then begin
        let ps = List.init t_arity (fun i -> Printf.sprintf "X%d" i) in
        Buffer.add_string buf ("<" ^ String.concat ", " ps ^ ">")
      end;
      (match t_supers with
      | [] -> ()
      | ss ->
          Buffer.add_string buf ": ";
          Buffer.add_string buf (String.concat " + " (List.map render_bound ss)));
      Buffer.add_string buf " {";
      List.iter
        (fun a ->
          Buffer.add_string buf (" type " ^ a.a_name);
          (match a.a_bounds with
          | [] -> ()
          | bs ->
              Buffer.add_string buf ": ";
              Buffer.add_string buf (String.concat " + " (List.map render_bound bs)));
          (match a.a_default with
          | None -> ()
          | Some d -> Buffer.add_string buf (" = " ^ render_ty d));
          Buffer.add_string buf ";")
        t_assocs;
      Buffer.add_string buf " }\n"
  | Impl { i_params; i_trait; i_self; i_where; i_bindings } ->
      Buffer.add_string buf "impl";
      if i_params <> [] then Buffer.add_string buf ("<" ^ String.concat ", " i_params ^ ">");
      Buffer.add_char buf ' ';
      Buffer.add_string buf (render_bound i_trait);
      Buffer.add_string buf " for ";
      Buffer.add_string buf (render_ty i_self);
      render_where buf i_where;
      Buffer.add_string buf " {";
      List.iter
        (fun (n, t) -> Buffer.add_string buf (" type " ^ n ^ " = " ^ render_ty t ^ ";"))
        i_bindings;
      Buffer.add_string buf " }\n"
  | Goal p ->
      Buffer.add_string buf ("goal " ^ render_pred p ^ ";\n")

let render spec =
  let buf = Buffer.create 1024 in
  List.iter (render_decl buf) spec;
  Buffer.contents buf

let decl_count = List.length

(* ------------------------------------------------------------------ *)
(* Generation *)

type struct_info = { si_name : string; si_arity : int }

type trait_info = { ti_name : string; ti_arity : int; ti_assocs : string list }

type gctx = {
  rng : Rng.t;
  mutable structs : struct_info list;
  mutable traits : trait_info list;
}

let prims = [| "i32"; "usize"; "String"; "bool"; "f64"; "()" |]

(* Identifiers that share a prefix with (or embed) keywords: the lexer's
   maximal munch must keep them whole.  Drawn occasionally as struct
   names so the differential harness continuously exercises
   keyword-adjacent lexing. *)
let keywordish =
  [|
    "Selfless"; "implement"; "forked"; "dynamo"; "modal"; "goalpost"; "traitor";
    "whereabouts"; "crateful"; "externality"; "asteroid"; "muted"; "typewriter";
    "fnord"; "structural"; "newtyped"; "implike"; "fromage";
  |]

let pick rng arr = arr.(Rng.int rng (Array.length arr))
let pick_list rng l = List.nth l (Rng.int rng (List.length l))

(* A random type over declared structs and primitives; [params] are the
   in-scope type parameters, [holes] permits [_] leaves (goals only). *)
let rec gen_ty ctx ~params ~holes depth =
  let rng = ctx.rng in
  let leaf () =
    if holes && Rng.bernoulli rng 0.2 then Hole
    else if params <> [] && Rng.bernoulli rng 0.45 then Name (pick_list rng params, [])
    else if Rng.bernoulli rng 0.3 then Prim (pick rng prims)
    else
      match List.filter (fun s -> s.si_arity = 0) ctx.structs with
      | [] -> Prim (pick rng prims)
      | zs -> Name ((pick_list rng zs).si_name, [])
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> leaf ()
    | 3 | 4 | 5 | 6 ->
        let s = pick_list rng ctx.structs in
        Name
          ( s.si_name,
            List.init s.si_arity (fun _ -> gen_ty ctx ~params ~holes (depth - 1)) )
    | 7 ->
        let n = 1 + Rng.int rng 2 in
        Tup (List.init n (fun _ -> gen_ty ctx ~params ~holes (depth - 1)))
    | 8 -> Ref (gen_ty ctx ~params ~holes (depth - 1))
    | _ ->
        if Rng.bernoulli rng 0.5 then
          Fn_ptr
            ( [ gen_ty ctx ~params ~holes (depth - 1) ],
              if Rng.bool rng then Some (gen_ty ctx ~params ~holes (depth - 1)) else None )
        else
          (* dyn of an arity-0 trait, when one exists *)
          match List.filter (fun t -> t.ti_arity = 0) ctx.traits with
          | [] -> leaf ()
          | ts -> Dyn ((pick_list rng ts).ti_name)

(* A bound on [trait_], with argument types over [params] and optional
   [Assoc = τ] binding sugar (which the resolver desugars into a
   separate projection predicate). *)
let gen_bound ctx ~params ~holes (t : trait_info) =
  let args = List.init t.ti_arity (fun _ -> gen_ty ctx ~params ~holes 1) in
  let bindings =
    match t.ti_assocs with
    | a :: _ when Rng.bernoulli ctx.rng 0.3 ->
        [ (a, gen_ty ctx ~params ~holes 1) ]
    | _ -> []
  in
  { b_trait = t.ti_name; b_args = args; b_bindings = bindings }

(* A where-clause for an impl: the left-hand side is always a bare
   parameter (see the module header for why), the bound an arbitrary
   declared trait. *)
let gen_where_clause ctx ~params =
  let p = Name (pick_list ctx.rng params, []) in
  let t = pick_list ctx.rng ctx.traits in
  match t.ti_assocs with
  | a :: _ when Rng.bernoulli ctx.rng 0.25 ->
      P_proj_eq
        (p, { b_trait = t.ti_name; b_args = List.init t.ti_arity (fun _ -> gen_ty ctx ~params ~holes:false 1); b_bindings = [] },
         a, gen_ty ctx ~params ~holes:false 1)
  | _ -> P_trait (p, gen_bound ctx ~params ~holes:false t)

let gen_impl ctx (t : trait_info) =
  let rng = ctx.rng in
  let n_params = Rng.int rng 3 in
  let params = List.filteri (fun i _ -> i < n_params) [ "A"; "B" ] in
  let i_self = gen_ty ctx ~params ~holes:false 2 in
  let n_where = if params = [] then 0 else Rng.int rng 3 in
  let i_where = List.init n_where (fun _ -> gen_where_clause ctx ~params) in
  let i_bindings =
    List.map (fun a -> (a, gen_ty ctx ~params ~holes:false 1)) t.ti_assocs
  in
  Impl
    {
      i_params = params;
      i_trait = gen_bound ctx ~params ~holes:false { t with ti_assocs = [] };
      i_self;
      i_where;
      i_bindings;
    }

let gen_goal ctx =
  let rng = ctx.rng in
  let with_assoc = List.filter (fun t -> t.ti_assocs <> []) ctx.traits in
  if with_assoc <> [] && Rng.bernoulli rng 0.25 then
    let t = pick_list rng with_assoc in
    Goal
      (P_proj_eq
         ( gen_ty ctx ~params:[] ~holes:true 2,
           { b_trait = t.ti_name;
             b_args = List.init t.ti_arity (fun _ -> gen_ty ctx ~params:[] ~holes:true 1);
             b_bindings = [] },
           List.hd t.ti_assocs,
           gen_ty ctx ~params:[] ~holes:true 1 ))
  else
    let t = pick_list rng ctx.traits in
    let self =
      if Rng.bernoulli rng 0.06 then Hole else gen_ty ctx ~params:[] ~holes:true 2
    in
    Goal (P_trait (self, gen_bound ctx ~params:[] ~holes:true t))

(* ------------------------------------------------------------------ *)
(* Failure-mode gadgets (private Fz* namespace, appended after the
   random soup so random impls never touch gadget traits) *)

(* §2.1: a deep elided requirement chain.  W<W<...<C>>>: L0 holds only
   through k levels of where-clauses; the base impl is present in
   [provable] variants and missing otherwise, failing at depth k. *)
let gadget_chain ctx =
  let rng = ctx.rng in
  let k = 3 + Rng.int rng 6 in
  let provable = Rng.bernoulli rng 0.4 in
  let traits =
    List.init (k + 1) (fun i ->
        Trait { t_name = Printf.sprintf "FzL%d" i; t_arity = 0; t_supers = []; t_assocs = [] })
  in
  let impls =
    List.init k (fun i ->
        Impl
          {
            i_params = [ "T" ];
            i_trait = { b_trait = Printf.sprintf "FzL%d" i; b_args = []; b_bindings = [] };
            i_self = Name ("FzW", [ Name ("T", []) ]);
            i_where =
              [ P_trait
                  ( Name ("T", []),
                    { b_trait = Printf.sprintf "FzL%d" (i + 1); b_args = []; b_bindings = [] } );
              ];
            i_bindings = [];
          })
  in
  let base =
    if provable then
      [ Impl
          {
            i_params = [];
            i_trait = { b_trait = Printf.sprintf "FzL%d" k; b_args = []; b_bindings = [] };
            i_self = Name ("FzC", []);
            i_where = [];
            i_bindings = [];
          } ]
    else []
  in
  let rec nest n = if n = 0 then Name ("FzC", []) else Name ("FzW", [ nest (n - 1) ]) in
  [ Struct { s_name = "FzC"; s_arity = 0 }; Struct { s_name = "FzW"; s_arity = 1 } ]
  @ traits @ impls @ base
  @ [ Goal (P_trait (nest k, { b_trait = "FzL0"; b_args = []; b_bindings = [] })) ]

(* §2.2: an overflow cycle (E0275) — the single blanket impl regresses
   through an ever-growing wrapper, exactly the ast-overflow shape. *)
let gadget_cycle _ctx =
  [
    Struct { s_name = "FzCycS"; s_arity = 0 };
    Struct { s_name = "FzCycW"; s_arity = 1 };
    Trait { t_name = "FzCyc"; t_arity = 0; t_supers = []; t_assocs = [] };
    Impl
      {
        i_params = [ "T" ];
        i_trait = { b_trait = "FzCyc"; b_args = []; b_bindings = [] };
        i_self = Name ("T", []);
        i_where =
          [ P_trait
              ( Name ("FzCycW", [ Name ("T", []) ]),
                { b_trait = "FzCyc"; b_args = []; b_bindings = [] } );
          ];
        i_bindings = [];
      };
    Goal (P_trait (Name ("FzCycS", []), { b_trait = "FzCyc"; b_args = []; b_bindings = [] }));
  ]

(* §2.3: an ambiguity branch point — a goal with an inference hole that
   two impls satisfy, so selection cannot commit. *)
let gadget_ambiguity _ctx =
  let tb name = { b_trait = name; b_args = []; b_bindings = [] } in
  [
    Struct { s_name = "FzAmA"; s_arity = 0 };
    Struct { s_name = "FzAmB"; s_arity = 0 };
    Struct { s_name = "FzAmP"; s_arity = 2 };
    Trait { t_name = "FzAm"; t_arity = 0; t_supers = []; t_assocs = [] };
    Impl
      {
        i_params = [];
        i_trait = tb "FzAm";
        i_self = Name ("FzAmP", [ Name ("FzAmA", []); Name ("FzAmA", []) ]);
        i_where = [];
        i_bindings = [];
      };
    Impl
      {
        i_params = [];
        i_trait = tb "FzAm";
        i_self = Name ("FzAmP", [ Name ("FzAmB", []); Name ("FzAmA", []) ]);
        i_where = [];
        i_bindings = [];
      };
    Goal (P_trait (Name ("FzAmP", [ Hole; Name ("FzAmA", []) ]), tb "FzAm"));
  ]

(* ------------------------------------------------------------------ *)
(* Mega-library generation (the `scale` bench suite) *)

(* A big-crate impl population with the shape candidate indexing is
   built for, in controlled proportions:

   - ~75% {e head-distinct} impls ([impl MgTk for MgSi]) — every impl
     its own struct, so buckets are singletons and a linear scan's cost
     is pure waste;
   - ~20% {e overlapping same-head} impls in constant-width families:
     8 impls share one family head ([impl MgTk for MgFf<MgSa>], the
     [SystemParam] shape), and the {e number of families} grows with
     [impls] while each bucket stays 8 wide — so in-bucket probing
     stays honest but per-goal work does not grow with crate size;
   - a constant-size {e generic-self chain} ([impl<T> MgBlk for
     MgW<T> where T: MgBlk] over a base case) that deep goals recurse
     through; its head is rigid ([MgW]), so it lives in a bucket, not
     the wildcard list;
   - exactly three {e true blanket impls} (parameter-headed, wildcard)
     whose count does not grow with [impls]: two bounded by a trait
     nothing implements (probed and quickly refuted by every [MgT0] /
     [MgT1] goal) and one unconditional on its own trait.

   Goals cycle over a provable distinct-family hit, a decisive miss
   (every same-trait candidate fast-rejects), a provable
   overlapping-family hit, and a depth-8 chain goal, so per-goal cost
   averages over both the index's best and worst realistic cases. *)
let generate_mega ~goals ~seed ~impls : spec =
  let impls = max 16 impls in
  let rng = Rng.create ~seed:(seed lxor 0x5DEECE66) in
  let nt = 4 in
  let n_blanket = 3 and n_chain = 2 and family_width = 8 in
  let n_overlap = impls / 5 in
  let n_distinct = impls - n_overlap - n_blanket - n_chain in
  let n_structs = max 8 n_distinct in
  let n_families = (n_overlap + family_width - 1) / family_width in
  let mgs i = Printf.sprintf "MgS%d" i in
  let mgt k = Printf.sprintf "MgT%d" k in
  let mgf f = Printf.sprintf "MgF%d" f in
  let tb name = { b_trait = name; b_args = []; b_bindings = [] } in
  let structs =
    Struct { s_name = "MgW"; s_arity = 1 }
    :: List.init n_structs (fun i -> Struct { s_name = mgs i; s_arity = 0 })
    @ List.init n_families (fun f -> Struct { s_name = mgf f; s_arity = 1 })
  in
  let traits =
    List.init nt (fun k ->
        Trait { t_name = mgt k; t_arity = 0; t_supers = []; t_assocs = [] })
    @ [
        Trait { t_name = "MgMarker"; t_arity = 0; t_supers = []; t_assocs = [] };
        Trait { t_name = "MgAny"; t_arity = 0; t_supers = []; t_assocs = [] };
        Trait { t_name = "MgBlk"; t_arity = 0; t_supers = []; t_assocs = [] };
      ]
  in
  (* seeded jitter: which trait each impl/family implements varies per
     seed; the structural proportions do not *)
  let distinct_trait = Array.init n_distinct (fun _ -> Rng.int rng nt) in
  let family_trait = Array.init (max 1 n_families) (fun _ -> Rng.int rng nt) in
  let distinct =
    List.init n_distinct (fun i ->
        Impl
          {
            i_params = [];
            i_trait = tb (mgt distinct_trait.(i));
            i_self = Name (mgs i, []);
            i_where = [];
            i_bindings = [];
          })
  in
  (* family f, member j: argument indices are consecutive mod
     [n_structs] ([family_width <= n_structs]), so members of one
     family never collide *)
  let overlap_self i =
    let f = i / family_width and j = i mod family_width in
    Name (mgf f, [ Name (mgs (((f * family_width) + j) mod n_structs), []) ])
  in
  let overlap =
    List.init n_overlap (fun i ->
        Impl
          {
            i_params = [];
            i_trait = tb (mgt family_trait.(i / family_width));
            i_self = overlap_self i;
            i_where = [];
            i_bindings = [];
          })
  in
  let chain =
    [
      Impl
        {
          i_params = [ "T" ];
          i_trait = tb "MgBlk";
          i_self = Name ("MgW", [ Name ("T", []) ]);
          i_where = [ P_trait (Name ("T", []), tb "MgBlk") ];
          i_bindings = [];
        };
      Impl
        { i_params = []; i_trait = tb "MgBlk"; i_self = Name (mgs 0, []); i_where = []; i_bindings = [] };
    ]
  in
  let blankets =
    [
      Impl
        {
          i_params = [ "T" ];
          i_trait = tb (mgt 0);
          i_self = Name ("T", []);
          i_where = [ P_trait (Name ("T", []), tb "MgMarker") ];
          i_bindings = [];
        };
      Impl
        {
          i_params = [ "T" ];
          i_trait = tb (mgt 1);
          i_self = Name ("T", []);
          i_where = [ P_trait (Name ("T", []), tb "MgMarker") ];
          i_bindings = [];
        };
      Impl
        { i_params = [ "T" ]; i_trait = tb "MgAny"; i_self = Name ("T", []); i_where = []; i_bindings = [] };
    ]
  in
  let rec wrap d t = if d = 0 then t else Name ("MgW", [ wrap (d - 1) t ]) in
  let goal g =
    match g mod 4 with
    | 0 ->
        (* provable distinct-family hit: the impl that exists *)
        let i = (g / 4 * 13) mod n_distinct in
        Goal (P_trait (Name (mgs i, []), tb (mgt distinct_trait.(i))))
    | 1 ->
        (* decisive miss: wrong trait, every candidate fast-rejects
           (mgt 0/1 also probe a blanket, refuted via MgMarker) *)
        let i = (g / 4 * 11) mod n_distinct in
        Goal (P_trait (Name (mgs i, []), tb (mgt ((distinct_trait.(i) + 1) mod nt))))
    | 2 ->
        (* provable overlapping-family hit: probes its whole
           constant-width family bucket, exactly one member matches *)
        let i = (g / 4 * 17) mod n_overlap in
        Goal (P_trait (overlap_self i, tb (mgt family_trait.(i / family_width))))
    | _ -> Goal (P_trait (wrap 8 (Name (mgs 0, [])), tb "MgBlk"))
  in
  structs @ traits @ distinct @ overlap @ chain @ blankets
  @ List.init (max 4 goals) goal

(* ------------------------------------------------------------------ *)

let generate ~seed ~iter ~size : spec =
  let size = max 1 (min 4 size) in
  (* Mix the iteration index into the seed so each iteration is an
     independent, individually reproducible stream. *)
  let rng = Rng.create ~seed:(seed lxor ((iter + 1) * 0x9E3779B9) lxor (iter lsl 17)) in
  let ctx = { rng; structs = []; traits = [] } in
  (* structs *)
  let n_structs = 2 + Rng.int rng (1 + (2 * size)) in
  let structs =
    List.init n_structs (fun i ->
        let name =
          if Rng.bernoulli rng 0.2 then pick rng keywordish ^ string_of_int i
          else Printf.sprintf "S%d" i
        in
        let arity = pick rng [| 0; 0; 0; 1; 1; 2 |] in
        ctx.structs <- { si_name = name; si_arity = arity } :: ctx.structs;
        Struct { s_name = name; s_arity = arity })
  in
  (* traits: supertraits may only reference earlier traits, so the
     supertrait graph is acyclic by construction *)
  let n_traits = 1 + Rng.int rng (1 + size) in
  let traits =
    List.init n_traits (fun i ->
        let name = Printf.sprintf "T%d" i in
        let arity = pick rng [| 0; 0; 0; 1 |] in
        let assocs =
          if Rng.bernoulli rng 0.4 then
            [ { a_name = "Out";
                a_bounds =
                  (match ctx.traits with
                  | t :: _ when t.ti_arity = 0 && Rng.bernoulli rng 0.3 ->
                      [ { b_trait = t.ti_name; b_args = []; b_bindings = [] } ]
                  | _ -> []);
                a_default =
                  (if Rng.bernoulli rng 0.3 then
                     Some (gen_ty ctx ~params:[] ~holes:false 1)
                   else None);
              } ]
          else []
        in
        let supers =
          match ctx.traits with
          | [] -> []
          | earlier when Rng.bernoulli rng 0.3 ->
              let s = pick_list rng earlier in
              [ gen_bound ctx ~params:[] ~holes:false { s with ti_assocs = [] } ]
          | _ -> []
        in
        ctx.traits <-
          { ti_name = name; ti_arity = arity; ti_assocs = List.map (fun a -> a.a_name) assocs }
          :: ctx.traits;
        Trait { t_name = name; t_arity = arity; t_supers = supers; t_assocs = assocs })
  in
  (* impls *)
  let impls =
    List.concat_map
      (fun (t : trait_info) ->
        let n = Rng.int rng (1 + size) in
        (* at most one blanket (bare-parameter self) impl per trait: a
           second always-applicable candidate would multiply search
           paths instead of adding scenarios *)
        let seen_blanket = ref false in
        List.filter_map
          (fun _ ->
            match gen_impl ctx t with
            | Impl { i_self = Name (p, []); i_params; _ } as im
              when List.mem p i_params ->
                if !seen_blanket then None
                else begin
                  seen_blanket := true;
                  Some im
                end
            | im -> Some im)
          (List.init n Fun.id))
      ctx.traits
  in
  (* goals over ground (possibly holed) types *)
  let n_goals = 1 + Rng.int rng 3 in
  let goals = List.init n_goals (fun _ -> gen_goal ctx) in
  (* gadget: one of the three failure modes, most of the time *)
  let gadget =
    if Rng.bernoulli rng 0.8 then
      match Rng.int rng 3 with
      | 0 -> gadget_chain ctx
      | 1 -> gadget_cycle ctx
      | _ -> gadget_ambiguity ctx
    else []
  in
  structs @ traits @ impls @ goals @ gadget
