(** Printing a resolved {!Trait_lang.Program.t} back to parseable
    L_TRAIT surface syntax — the substrate of the round-trip oracle
    (pretty-print → re-parse → re-resolve → re-solve must agree).

    Items are re-wrapped in [extern crate c { ... }] / [mod m { ... }]
    blocks reconstructed from their paths, so crate provenance (which the
    orphan rule and the inertia heuristic observe) survives the trip.
    Use sites print short names ({!Trait_lang.Pretty.roundtrip}), so the
    output only re-resolves when item short names are globally unique —
    true of every corpus program and of all generated programs by
    construction.

    Function {e bodies} are dropped (signatures are kept): body
    type-checking is outside the solver pipeline the differential
    oracles compare. *)

(** Render the whole program: types, traits, fns, impls, then goals (in
    goal insertion order, preserving [from] origins). *)
val program : Trait_lang.Program.t -> string

(** Render one goal line, [goal <pred> from "<origin>";]. *)
val goal : Trait_lang.Program.goal -> string
