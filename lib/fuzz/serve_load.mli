(** The [argus bench serve] load generator: replays seeded concurrent
    session scripts against an in-process {!Serve.Server} and measures
    throughput, latency percentiles, and cache hit rates.

    Each client runs a two-phase script against its own session:

    - {b cold} — [open] a generated program, [solve] it (every cache
      lookup misses: the program's stamp is fresh);
    - {b warm} — [tree], [expand], [hover], [explain], then [reload] a
      1-step-edited version and [solve] again (green subtrees replay
      from the shared cache).

    Cache counters are snapshotted at the phase barrier, so the
    warm-vs-cold hit rates prove the eval cache survives across
    requests and sessions — the property the daemon exists for. *)

type stats = {
  ls_clients : int;
  ls_requests : int;  (** total requests issued across both phases *)
  ls_errors : int;  (** responses carrying a JSON-RPC error object *)
  ls_wall_ns : int;  (** both phases, wall clock *)
  ls_throughput_rps : float;  (** requests / wall seconds *)
  ls_p50_ns : int;  (** per-request latency median *)
  ls_p99_ns : int;
  ls_cold_hits : int;  (** eval-cache hits during the cold phase *)
  ls_cold_misses : int;
  ls_warm_hits : int;
  ls_warm_misses : int;
  ls_cold_hit_rate : float;  (** hits / lookups, 0 when no lookups *)
  ls_warm_hit_rate : float;
}

(** [run ~clients ~seed ()] drives [clients] concurrent sessions (on
    [pool] / [jobs] workers, as {!Pool.run}) against a fresh server with
    a cleared cache.  [programs] (default 8) is the size of the seeded
    program pool clients draw from.  Telemetry is force-enabled for the
    duration (cache counters are dormant otherwise) and restored
    after. *)
val run :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?programs:int ->
  clients:int ->
  seed:int ->
  unit ->
  stats
