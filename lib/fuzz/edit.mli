(** Deterministic program-level edit scripts for incremental solving.

    An edit script is a sequence of single-declaration operations applied
    to a parsed {!Trait_lang.Program.t}, producing successive program
    versions the way a user editing a file would.  Operating on
    declaration {e values} (rather than source text) keeps the untouched
    declarations bit-identical across versions — the property the
    fingerprint differ exploits — while still exercising every
    invalidation class: impl-set changes, goal changes, and no-op-shaped
    structural churn.

    The [incremental] fuzz oracle replays each version both through a
    warm {!Solver.Session} and from scratch and demands byte-identical
    results; {!Bench} uses {!drop_impl} as its canonical single-decl
    edit. *)

open Trait_lang

type op =
  | Remove_impl of int  (** drop the [i]-th impl (program order) *)
  | Dup_impl of int  (** duplicate it under a fresh [impl_id] (overlap) *)
  | Drop_where of int  (** strip the last where-clause of the [i]-th impl *)
  | Swap_impls of int * int  (** exchange two impls (candidate order) *)
  | Remove_goal of int
  | Dup_goal of int
  | Add_struct of int  (** add an unused [newtype ZEdit<n>] (green edit) *)

val describe : op -> string

(** Apply one operation; identity when the index is out of range. *)
val apply : Program.t -> op -> Program.t

(** Remove the [i]-th impl, counting from the end when [i] is negative
    ([drop_impl p (-1)] drops the last impl — the bench's single-decl
    edit). *)
val drop_impl : Program.t -> int -> Program.t

(** A deterministic [steps]-long script for this program: the chosen ops
    and the successive program versions (one per op, base excluded). *)
val script : seed:int -> steps:int -> Program.t -> (op * Program.t) list
