(** Program → surface syntax (see the interface).  Type- and
    predicate-level rendering delegates to {!Trait_lang.Pretty} under the
    [roundtrip] configuration; this module only contributes the
    declaration scaffolding Pretty does not print (crate/mod wrappers,
    trait bodies, impl bodies, goal lines). *)

open Trait_lang

let cfg = Pretty.roundtrip

let ty t = Pretty.ty ~cfg t
let pred p = Pretty.predicate ~cfg p
let bound tr = Pretty.trait_ref ~cfg tr
let bounds trs = String.concat " + " (List.map bound trs)

let where_ ps = Pretty.where_clauses ~cfg ps

(* Re-wrap an item in the [extern crate]/[mod] blocks its path encodes.
   Blocks re-open freely (each is lowered independently), so every item
   carries its own wrapper. *)
let wrap ~(crate : Path.crate) ~(mods : string list) body =
  let inner = List.fold_right (fun m acc -> "mod " ^ m ^ " { " ^ acc ^ " }") mods body in
  match crate with
  | Path.Local -> inner
  | Path.External c -> "extern crate " ^ c ^ " { " ^ inner ^ " }"

let wrap_path (p : Path.t) body =
  let segs = Path.segments p in
  let mods = List.filteri (fun i _ -> i < List.length segs - 1) segs in
  wrap ~crate:(Path.crate p) ~mods body

let tydecl (d : Decl.tydecl) =
  let name = Path.name d.ty_path in
  let g = Pretty.generics ~cfg d.ty_generics in
  let body =
    match d.ty_repr with
    | None -> Printf.sprintf "struct %s%s%s;" name g (where_ d.ty_generics.where_clauses)
    | Some repr ->
        (* [newtype] takes no where-clause in the grammar *)
        Printf.sprintf "newtype %s%s = %s;" name g (ty repr)
  in
  wrap_path d.ty_path body

let assoc_decl (a : Decl.assoc_ty_decl) =
  Printf.sprintf "type %s%s%s%s;" a.assoc_name
    (Pretty.generics ~cfg a.assoc_generics)
    (match a.assoc_bounds with [] -> "" | bs -> ": " ^ bounds bs)
    (match a.assoc_default with None -> "" | Some t -> " = " ^ ty t)

let method_sig (m : Decl.method_sig) =
  Printf.sprintf "fn %s%s(self%s)%s%s;" m.m_name
    (Pretty.generics ~cfg m.m_generics)
    (match m.m_inputs with
    | [] -> ""
    | ins -> ", " ^ String.concat ", " (List.map ty ins))
    (if Ty.equal m.m_output Ty.Unit then "" else " -> " ^ ty m.m_output)
    (where_ m.m_generics.where_clauses)

let trdecl (d : Decl.trdecl) =
  let attr =
    match d.tr_on_unimplemented with
    | None -> ""
    | Some msg -> Printf.sprintf "#[on_unimplemented(%S)] " msg
  in
  let items = List.map assoc_decl d.tr_assocs @ List.map method_sig d.tr_methods in
  let body = match items with [] -> "{ }" | _ -> "{ " ^ String.concat " " items ^ " }" in
  wrap_path d.tr_path
    (Printf.sprintf "%strait %s%s%s%s %s" attr (Path.name d.tr_path)
       (Pretty.generics ~cfg d.tr_generics)
       (match d.tr_supertraits with [] -> "" | ss -> ": " ^ bounds ss)
       (where_ d.tr_generics.where_clauses)
       body)

let impl (d : Decl.impl) =
  let binding (b : Decl.assoc_ty_binding) =
    Printf.sprintf "type %s%s = %s;" b.bind_name
      (Pretty.generics ~cfg b.bind_generics)
      (ty b.bind_ty)
  in
  let body =
    match d.impl_assocs with
    | [] -> "{ }"
    | bs -> "{ " ^ String.concat " " (List.map binding bs) ^ " }"
  in
  wrap ~crate:d.impl_crate ~mods:[]
    (Printf.sprintf "%s%s %s" (Pretty.impl_header ~cfg d)
       (where_ d.impl_generics.where_clauses)
       body)

let fndecl (d : Decl.fndecl) =
  (* signature only: a body would need named params and re-type-checking,
     and the solver pipeline never looks at bodies *)
  wrap_path d.fn_path
    (Printf.sprintf "fn %s%s(%s)%s%s;" (Path.name d.fn_path)
       (Pretty.generics ~cfg d.fn_generics)
       (String.concat ", " (List.map ty d.fn_inputs))
       (if Ty.equal d.fn_output Ty.Unit then "" else " -> " ^ ty d.fn_output)
       (where_ d.fn_generics.where_clauses))

let goal (g : Program.goal) =
  Printf.sprintf "goal %s from %S;" (pred g.goal_pred) g.goal_origin

(* --- Re-sugaring shared inference holes ---------------------------------

   One surface goal [τ: A<X = u> + B] lowers to several Program goals —
   the trait predicate of each bound followed by a projection predicate
   per [X = u] binding — all sharing τ {e and its inference holes}.
   Printing them as separate goal lines would give each [_] a fresh
   hole (holes may sit in the self type or in the bound's arguments),
   losing the sharing and shifting hole numbering for the rest of the
   program.  Detect such runs (identical self type {e including hole
   ids}, identical span and origin) and print them back as one bound
   list with binding sugar — merging is faithful for ground groups
   too, so every desugared run is re-sugared. *)

let goal_self (g : Program.goal) : Ty.t option =
  match g.goal_pred with
  | Predicate.Trait { self_ty; _ } -> Some self_ty
  | Predicate.Projection { projection = { self_ty; assoc_args = []; _ }; _ } ->
      Some self_ty
  | _ -> None

exception Unmergeable

let render_bound (tr : Ty.trait_ref) (bindings : (string * Ty.t) list) =
  let args =
    List.map
      (function Ty.Ty t -> ty t | Ty.Lifetime r -> Region.to_string r)
      tr.args
    @ List.map (fun (a, t) -> a ^ " = " ^ ty t) bindings
  in
  match args with
  | [] -> Path.name tr.trait
  | _ -> Path.name tr.trait ^ "<" ^ String.concat ", " args ^ ">"

let render_group (grp : Program.goal list) =
  match grp with
  | [ g ] -> goal g
  | g0 :: _ -> begin
      try
        let bounds =
          List.fold_left
            (fun acc (g : Program.goal) ->
              match g.goal_pred with
              | Predicate.Trait { trait_ref; _ } -> (trait_ref, []) :: acc
              | Predicate.Projection { projection = { proj_trait; assoc; _ }; term }
                -> begin
                  match acc with
                  | (tr, binds) :: tl when Ty.equal_trait_ref tr proj_trait ->
                      (tr, binds @ [ (assoc, term) ]) :: tl
                  | _ -> raise Unmergeable
                end
              | _ -> raise Unmergeable)
            [] grp
          |> List.rev
        in
        let self =
          match goal_self g0 with Some s -> s | None -> raise Unmergeable
        in
        Printf.sprintf "goal %s: %s from %S;" (ty self)
          (String.concat " + " (List.map (fun (tr, bs) -> render_bound tr bs) bounds))
          g0.goal_origin
      with Unmergeable -> String.concat "\n" (List.map goal grp)
    end
  | [] -> ""

let rec group_goals = function
  | [] -> []
  | (g : Program.goal) :: rest -> begin
      match (g.goal_pred, goal_self g) with
      | Predicate.Trait _, Some self ->
          let belongs (h : Program.goal) =
            Span.equal h.goal_span g.goal_span
            && String.equal h.goal_origin g.goal_origin
            && match goal_self h with Some s -> Ty.equal s self | None -> false
          in
          let rec take acc = function
            | h :: t when belongs h -> take (h :: acc) t
            | t -> (List.rev acc, t)
          in
          let grp, rest' = take [ g ] rest in
          grp :: group_goals rest'
      | _ -> [ g ] :: group_goals rest
    end

let program (p : Program.t) =
  let buf = Buffer.create 2048 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  List.iter (fun d -> line (tydecl d)) (Program.types p);
  List.iter (fun d -> line (trdecl d)) (Program.traits p);
  List.iter (fun d -> line (fndecl d)) (Program.fns p);
  List.iter (fun d -> line (impl d)) (Program.impls p);
  List.iter (fun grp -> line (render_group grp)) (group_goals (Program.goals p));
  Buffer.contents buf
