(** The differential oracles: solve one L_TRAIT source several ways and
    demand agreement.  Each oracle is a self-contained property of the
    whole pipeline; the campaign driver runs a set of them over every
    generated program.

    Failure messages carry a stable [kind:] prefix (the oracle's name,
    or [front-end] for load errors), which the shrinker uses to check a
    reduced program still exhibits the {e same} divergence. *)

type name =
  | Wellformed
      (** generated programs parse, resolve, and solve without error *)
  | Cache
      (** cache-off ≡ cache-cold ≡ cache-warm: statuses, rounds, proof
          trees, and journal streams modulo cache_hit/cache_miss events *)
  | Jobs
      (** [--jobs 2] ≡ [--jobs 1] on a 3-copy batch: byte-level report /
          diagnostic / journal fingerprints *)
  | Journal
      (** journal replay rebuilds exactly the solver's direct trace
          forest *)
  | Roundtrip
      (** pretty-print → re-parse → re-resolve → re-solve reaches the
          same verdicts and (span-insensitively) the same trees *)
  | Intern
      (** interner canonicality: a structural copy interns to the
          physically identical term; interning is idempotent *)
  | Determinism
      (** two cold runs of the same source are byte-identical *)
  | Index
      (** fast-reject index on ≡ [--no-index] linear scan: reports,
          journal streams, and byte fingerprints all agree *)
  | Incremental
      (** drive a deterministic edit script through a warm
          {!Solver.Session}: after every step the incremental re-solve is
          byte-identical (reports, proof trees, diagnostics) to a
          from-scratch cache-off solve of the same program *)
  | Serve
      (** drive the program through a live in-process {!Serve.Server}
          (open → solve → seeded expand/hover walk → explain → profile →
          edit-script reloads → re-solve) and byte-compare every
          response payload against fresh scratch runs: cache-off for the
          cache-invariant payloads (check output, trees, view lines,
          failure narratives), cache-on-cold for the journal-derived
          ones (explain summary, profile); an unchanged reload must be a
          stamp-equal no-op with zero evictions *)

(** All oracles, in campaign execution order ({!Wellformed} first). *)
val all : name list

val to_string : name -> string
val of_string : string -> name option

(** One-line description (CLI listings, docs). *)
val describe : name -> string

type verdict = Pass | Fail of string

(** The [kind:] prefix of a failure message ([front-end] for load
    errors, otherwise the oracle name). *)
val fail_kind : string -> string

(** Fabricate a corpus-harness entry around a raw source string (id
    [fuzz-<idx>]), so the batch machinery can solve generated programs. *)
val entry : ?idx:int -> string -> Corpus.Harness.entry

(** Run one oracle on one source program.  [pool] (when given) is reused
    for the {!Jobs} oracle instead of spawning a transient 2-worker
    pool.  Global evaluation-cache state is saved, used, and restored;
    the cache is left enabled-as-before and cleared. *)
val check : ?pool:Pool.t -> name -> source:string -> verdict
