(** Campaign driver (see the interface). *)

let c_iters = Telemetry.counter "fuzz.iters"
let c_checks = Telemetry.counter "fuzz.checks"
let c_counterexamples = Telemetry.counter "fuzz.counterexamples"
let c_shrink_steps = Telemetry.counter "fuzz.shrink.steps"
let c_shrink_checks = Telemetry.counter "fuzz.shrink.checks"

type counterexample = {
  cx_iter : int;
  cx_oracle : Oracle.name;
  cx_message : string;
  cx_decls : int;
  cx_source : string;
  cx_file : string option;
}

type outcome = {
  o_iters : int;
  o_checks : int;
  o_counterexample : counterexample option;
}

let repro_contents ~seed ~iter ~oracle ~message ~source =
  Printf.sprintf
    "// argus fuzz counterexample\n\
     // seed %d iter %d oracle %s\n\
     // %s\n\
     // replay: argus fuzz --replay <this file> --oracle %s\n\
     %s"
    seed iter (Oracle.to_string oracle) message (Oracle.to_string oracle) source

let write_repro ~out_dir ~seed ~iter ~oracle ~message ~source =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let file =
    Filename.concat out_dir
      (Printf.sprintf "fuzz-%d-%d-%s.trait" seed iter (Oracle.to_string oracle))
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (repro_contents ~seed ~iter ~oracle ~message ~source));
  file

(* Count declarations of a source text by re-loading it — the shrunk
   program is reported by its surface size. *)
let decls_of_source source =
  match Corpus.Harness.load (Oracle.entry source) with
  | p -> Trait_lang.Program.decl_count p + List.length (Trait_lang.Program.goals p)
  | exception _ -> 0

let run ?pool ?out_dir ?(shrink = true) ?(size = Gen.default_size)
    ?(progress = fun _ -> ()) ~oracles ~iters ~seed () : outcome =
  let checks = ref 0 in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < iters do
    let iter = !i in
    let spec = Gen.generate ~seed ~iter ~size in
    let source = Gen.render spec in
    Telemetry.incr c_iters;
    let rec try_oracles = function
      | [] -> ()
      | name :: rest -> begin
          incr checks;
          Telemetry.incr c_checks;
          match Oracle.check ?pool name ~source with
          | Oracle.Pass -> try_oracles rest
          | Oracle.Fail message ->
              Telemetry.incr c_counterexamples;
              let kind = Oracle.fail_kind message in
              let final_source =
                if shrink then begin
                  let r =
                    Shrink.run
                      ~check:(fun src ->
                        Telemetry.incr c_shrink_checks;
                        Oracle.check ?pool name ~source:src)
                      ~kind spec
                  in
                  checks := !checks + r.checks;
                  Telemetry.add c_shrink_steps r.steps;
                  Gen.render r.minimized
                end
                else source
              in
              let file =
                Option.map
                  (fun dir ->
                    write_repro ~out_dir:dir ~seed ~iter ~oracle:name ~message
                      ~source:final_source)
                  out_dir
              in
              found :=
                Some
                  {
                    cx_iter = iter;
                    cx_oracle = name;
                    cx_message = message;
                    cx_decls = decls_of_source final_source;
                    cx_source = final_source;
                    cx_file = file;
                  }
        end
    in
    try_oracles oracles;
    incr i;
    if !i mod 50 = 0 && !found = None then
      progress
        (Printf.sprintf "fuzz: %d/%d iterations, %d oracle checks, 0 counterexamples"
           !i iters !checks)
  done;
  { o_iters = !i; o_checks = !checks; o_counterexample = !found }

let replay ?pool ~oracles ~path () =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  List.map (fun name -> (name, Oracle.check ?pool name ~source)) oracles
