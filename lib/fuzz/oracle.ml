(** Differential oracles (see the interface).  Comparison logic mirrors
    the corpus regression tests — [test_cache.ml]'s report equivalence,
    [test_parallel.ml]'s byte fingerprints — so a fuzz counterexample is
    by construction a failure of the same properties those suites pin. *)

open Trait_lang

type name =
  | Wellformed
  | Cache
  | Jobs
  | Journal
  | Roundtrip
  | Intern
  | Determinism
  | Index
  | Incremental
  | Serve

let all =
  [
    Wellformed;
    Cache;
    Jobs;
    Journal;
    Roundtrip;
    Intern;
    Determinism;
    Index;
    Incremental;
    Serve;
  ]

let to_string = function
  | Wellformed -> "wellformed"
  | Cache -> "cache"
  | Jobs -> "jobs"
  | Journal -> "journal"
  | Roundtrip -> "roundtrip"
  | Intern -> "intern"
  | Determinism -> "determinism"
  | Index -> "index"
  | Incremental -> "incremental"
  | Serve -> "serve"

let of_string s =
  List.find_opt (fun n -> String.equal (to_string n) s) all

let describe = function
  | Wellformed -> "generated programs parse, resolve, and solve without error"
  | Cache -> "cache-off, cache-cold and cache-warm runs agree (trees, rounds, journal)"
  | Jobs -> "--jobs 2 batch output is byte-identical to --jobs 1"
  | Journal -> "journal replay rebuilds the solver's direct trace forest"
  | Roundtrip -> "pretty-print, re-parse, re-solve reaches the same result"
  | Intern -> "structural copies intern to physically identical terms"
  | Determinism -> "two cold runs of the same source are byte-identical"
  | Index -> "fast-reject index on and --no-index runs are byte-identical"
  | Incremental ->
      "incremental re-solve after each edit-script step equals from-scratch"
  | Serve ->
      "live serve-protocol responses byte-match fresh one-shot runs across \
       open/solve/expand/hover/explain/profile/reload"

type verdict = Pass | Fail of string

let fail_kind msg =
  match String.index_opt msg ':' with
  | Some i -> String.sub msg 0 i
  | None -> msg

let failf fmt = Printf.ksprintf (fun m -> Fail m) fmt

(* ------------------------------------------------------------------ *)
(* Plumbing *)

let entry ?(idx = 0) source : Corpus.Harness.entry =
  {
    id = Printf.sprintf "fuzz-%d" idx;
    title = "generated program";
    library = "fuzz";
    kind = Corpus.Harness.Synthetic;
    description = "fuzzer-generated";
    source;
    root_cause = "";
    fix_hint = "";
  }

let load source =
  match Corpus.Harness.load (entry source) with
  | p -> Ok p
  | exception Corpus.Harness.Corpus_error m -> Error ("front-end: " ^ m)

(* Save/restore the global cache switch around an oracle body; always
   leave the cache cleared so oracles (and the host test process) never
   see each other's entries. *)
let with_cache_state f =
  let was = Solver.Eval_cache.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Solver.Eval_cache.set_enabled was;
      Solver.Eval_cache.clear ())
    f

(* The byte-level fingerprint of a solved batch unit, as pinned by
   test_parallel.ml: encoded report, trace gids/depths/preds, rendered
   diagnostics, journal JSONL, consumed ID/serial counts. *)
let fingerprint (b : Corpus.Harness.batch_result) : string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Argus_json.Json.to_string (Argus_json.Encode.report b.b_report));
  List.iter
    (fun (r : Solver.Obligations.goal_report) ->
      Solver.Trace.fold_goals
        (fun () (g : Solver.Trace.goal_node) ->
          Printf.bprintf buf "g%d d%d %s;" g.gid g.depth (Pretty.predicate g.pred))
        () r.final;
      if r.status <> Solver.Obligations.Proved then begin
        let tree = Argus.Extract.of_report r in
        let goal = { r.goal with Program.goal_pred = r.final.pred } in
        Buffer.add_string buf
          (Rustc_diag.Diagnostic.to_string
             (Rustc_diag.Diagnostic.of_tree b.b_program goal tree))
      end)
    b.b_report.reports;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Argus_json.Json.to_string (Argus_json.Journal_codec.entry_to_json e));
      Buffer.add_char buf '\n')
    b.b_journal;
  Printf.bprintf buf "ids=%d snaps=%d" b.b_ids b.b_snaps;
  Buffer.contents buf

let is_cache_event (en : Journal.entry) =
  match en.ev with Journal.Cache_hit _ | Journal.Cache_miss _ -> true | _ -> false

(* Report equivalence, as test_cache.ml checks it: counts, rounds,
   statuses, and node-for-node tree equality on every attempt. *)
let reports_agree ~what (a : Solver.Obligations.report) (b : Solver.Obligations.report) =
  if List.length a.reports <> List.length b.reports then
    Some (Printf.sprintf "%s: %d vs %d goal reports" what
            (List.length a.reports) (List.length b.reports))
  else if a.rounds <> b.rounds then
    Some (Printf.sprintf "%s: %d vs %d fixpoint rounds" what a.rounds b.rounds)
  else
    List.fold_left2
      (fun acc (ra : Solver.Obligations.goal_report) (rb : Solver.Obligations.goal_report) ->
        match acc with
        | Some _ -> acc
        | None ->
            if ra.status <> rb.status then
              Some (Printf.sprintf "%s: status differs on goal %s" what
                      (Pretty.predicate ra.goal.goal_pred))
            else if List.length ra.attempts <> List.length rb.attempts then
              Some (Printf.sprintf "%s: attempt count differs on goal %s" what
                      (Pretty.predicate ra.goal.goal_pred))
            else
              List.fold_left2
                (fun acc (ta : Solver.Trace.goal_node) (tb : Solver.Trace.goal_node) ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      if
                        Journal.equal_goal
                          (Solver.Jlog.rtree_of_trace ta)
                          (Solver.Jlog.rtree_of_trace tb)
                      then None
                      else
                        Some (Printf.sprintf "%s: proof tree differs (gid %d vs %d) on %s"
                                what ta.gid tb.gid (Pretty.predicate ra.goal.goal_pred)))
                acc ra.attempts rb.attempts)
      None a.reports b.reports

let streams_agree ~what a b =
  if List.length a <> List.length b then
    Some (Printf.sprintf "%s: %d vs %d structural events" what
            (List.length a) (List.length b))
  else
    List.fold_left2
      (fun acc (ea : Journal.entry) (eb : Journal.entry) ->
        match acc with
        | Some _ -> acc
        | None ->
            if Journal.equal_event ea.ev eb.ev then None
            else
              Some (Printf.sprintf "%s: event %d differs: %s vs %s" what ea.seq
                      (Journal.event_kind ea.ev) (Journal.event_kind eb.ev)))
      None a b

(* ------------------------------------------------------------------ *)
(* Individual oracles *)

let check_wellformed source =
  match load source with
  | Error m -> Fail m
  | Ok program -> begin
      match Solver.Obligations.solve_program program with
      | report ->
          if List.length report.reports = List.length (Program.goals program) then Pass
          else failf "wellformed: %d goals but %d reports"
                 (List.length (Program.goals program))
                 (List.length report.reports)
      | exception e -> failf "wellformed: solver raised %s" (Printexc.to_string e)
    end

let check_cache source =
  with_cache_state @@ fun () ->
  let e = entry source in
  Solver.Eval_cache.set_enabled false;
  let off = Corpus.Harness.solve_unit ~journal:true e in
  Solver.Eval_cache.set_enabled true;
  Solver.Eval_cache.clear ();
  let cold = Corpus.Harness.solve_unit ~journal:true e in
  let warm = Corpus.Harness.solve_unit ~journal:true e in
  (* the tree tier's cross-run replay path is only exercised without a
     journal attached (hits are observe-only under one) *)
  Solver.Eval_cache.clear ();
  Solver.Eval_cache.set_enabled false;
  let off_nj = Corpus.Harness.solve_unit ~journal:false e in
  Solver.Eval_cache.set_enabled true;
  ignore (Corpus.Harness.solve_unit ~journal:false e);
  let warm_nj = Corpus.Harness.solve_unit ~journal:false e in
  let strip b = List.filter (fun en -> not (is_cache_event en)) b in
  let ( <|> ) a b = match a with Some _ -> a | None -> b in
  let mismatch =
    reports_agree ~what:"cache: off vs cold" off.b_report cold.b_report
    <|> reports_agree ~what:"cache: off vs warm" off.b_report warm.b_report
    <|> streams_agree ~what:"cache: off vs cold journal" off.b_journal
          (strip cold.b_journal)
    <|> streams_agree ~what:"cache: off vs warm journal" off.b_journal
          (strip warm.b_journal)
    <|> reports_agree ~what:"cache: off vs warm (replay path)" off_nj.b_report
          warm_nj.b_report
  in
  match mismatch with None -> Pass | Some m -> Fail m

let check_jobs ?pool source =
  with_cache_state @@ fun () ->
  let entries = List.init 3 (fun i -> entry ~idx:i source) in
  Solver.Eval_cache.clear ();
  let seq = Corpus.Harness.solve_batch ~jobs:1 ~journal:true entries in
  Solver.Eval_cache.clear ();
  let par =
    match pool with
    | Some p -> Corpus.Harness.solve_batch ~pool:p ~journal:true entries
    | None ->
        let p = Pool.create ~jobs:2 in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown p)
          (fun () -> Corpus.Harness.solve_batch ~pool:p ~journal:true entries)
  in
  let rec first_mismatch i = function
    | [], [] -> None
    | a :: ta, b :: tb ->
        if String.equal (fingerprint a) (fingerprint b) then
          first_mismatch (i + 1) (ta, tb)
        else Some (Printf.sprintf "jobs: unit %d differs between --jobs 1 and --jobs 2" i)
    | _ -> Some "jobs: batch sizes differ"
  in
  match first_mismatch 0 (seq, par) with None -> Pass | Some m -> Fail m

let check_journal source =
  with_cache_state @@ fun () ->
  Solver.Eval_cache.set_enabled false;
  let r = Corpus.Harness.solve_unit ~journal:true (entry source) in
  match Journal.replay r.b_journal with
  | Error m -> failf "journal: stream does not replay: %s" m
  | Ok tree ->
      let direct =
        List.concat_map
          (fun (gr : Solver.Obligations.goal_report) -> gr.attempts)
          r.b_report.reports
      in
      if List.length tree.Journal.rt_roots <> List.length direct then
        failf "journal: %d replayed roots vs %d direct attempts"
          (List.length tree.Journal.rt_roots)
          (List.length direct)
      else
        (* roots stream in evaluation (round-major) order, attempts in
           goal-major order — match by the stable gid *)
        let mismatch =
          List.fold_left
            (fun acc (t : Solver.Trace.goal_node) ->
              match acc with
              | Some _ -> acc
              | None -> begin
                  match
                    List.find_opt
                      (fun (rg : Journal.rgoal) -> rg.rg_id = t.gid)
                      tree.Journal.rt_roots
                  with
                  | None -> Some (Printf.sprintf "journal: no replayed root for gid %d" t.gid)
                  | Some rg ->
                      if Journal.equal_goal rg (Solver.Jlog.rtree_of_trace t) then None
                      else
                        Some
                          (Printf.sprintf "journal: replay of gid %d differs from trace" t.gid)
                end)
            None direct
        in
        (match mismatch with None -> Pass | Some m -> Fail m)

(* Span-insensitive replica of Journal.equal_goal: the re-parsed program
   has different source offsets, everything else must match. *)
let rec equal_goal_nospan (a : Journal.rgoal) (b : Journal.rgoal) =
  a.rg_id = b.rg_id
  && Predicate.equal a.rg_pred b.rg_pred
  && a.rg_depth = b.rg_depth
  && (match (a.rg_prov, b.rg_prov) with
     | Journal.Root x, Journal.Root y -> String.equal x.origin y.origin
     | x, y -> Journal.equal_prov x y)
  && Journal.equal_res a.rg_result b.rg_result
  && List.length a.rg_flags = List.length b.rg_flags
  && List.for_all2 Journal.equal_flag a.rg_flags b.rg_flags
  && List.length a.rg_cands = List.length b.rg_cands
  && List.for_all2 equal_cand_nospan a.rg_cands b.rg_cands

and equal_cand_nospan (a : Journal.rcand) (b : Journal.rcand) =
  a.rc_id = b.rc_id
  && Journal.equal_source a.rc_source b.rc_source
  && Journal.equal_res a.rc_result b.rc_result
  && (match (a.rc_failure, b.rc_failure) with
     | None, None -> true
     | Some x, Some y -> Journal.equal_failure x y
     | _ -> false)
  && List.length a.rc_subgoals = List.length b.rc_subgoals
  && List.for_all2 equal_goal_nospan a.rc_subgoals b.rc_subgoals

let solve_fresh program =
  Journal.reset ();
  Solver.Obligations.solve_program program

let check_roundtrip source =
  with_cache_state @@ fun () ->
  match load source with
  | Error m -> Fail m
  | Ok p1 -> begin
      let printed = Printer.program p1 in
      match load printed with
      | Error m -> failf "roundtrip: printed program does not load (%s)" m
      | Ok p2 ->
          Solver.Eval_cache.set_enabled false;
          let r1 = solve_fresh p1 and r2 = solve_fresh p2 in
          if List.length r1.reports <> List.length r2.reports then
            failf "roundtrip: %d vs %d goal reports" (List.length r1.reports)
              (List.length r2.reports)
          else if r1.rounds <> r2.rounds then
            failf "roundtrip: %d vs %d fixpoint rounds" r1.rounds r2.rounds
          else
            let mismatch =
              List.fold_left2
                (fun acc (a : Solver.Obligations.goal_report)
                     (b : Solver.Obligations.goal_report) ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      if a.status <> b.status then
                        Some
                          (Printf.sprintf "roundtrip: status differs on goal %s"
                             (Pretty.predicate a.goal.goal_pred))
                      else if
                        not
                          (equal_goal_nospan
                             (Solver.Jlog.rtree_of_trace a.final)
                             (Solver.Jlog.rtree_of_trace b.final))
                      then
                        Some
                          (Printf.sprintf "roundtrip: final tree differs on goal %s"
                             (Pretty.predicate a.goal.goal_pred))
                      else None)
                None r1.reports r2.reports
            in
            (match mismatch with None -> Pass | Some m -> Fail m)
    end

(* A structural deep copy that shares nothing with its input, defeating
   the resolver's pre-interning so the canonicality check is real. *)
let rec copy_ty (t : Ty.t) : Ty.t =
  match t with
  | Unit | Bool | Int | Uint | Float | Str -> t
  | Param s -> Param (String.init (String.length s) (String.get s))
  | Infer i -> Infer i
  | Ref (r, t') -> Ref (r, copy_ty t')
  | RefMut (r, t') -> RefMut (r, copy_ty t')
  | Ctor (p, args) -> Ctor (p, List.map copy_arg args)
  | Tuple ts -> Tuple (List.map copy_ty ts)
  | FnPtr (ins, out) -> FnPtr (List.map copy_ty ins, copy_ty out)
  | FnItem (p, ins, out) -> FnItem (p, List.map copy_ty ins, copy_ty out)
  | Dynamic tr -> Dynamic (copy_trait_ref tr)
  | Proj p -> Proj (copy_projection p)

and copy_arg = function
  | Ty.Ty t -> Ty.Ty (copy_ty t)
  | Ty.Lifetime r -> Ty.Lifetime r

and copy_trait_ref (tr : Ty.trait_ref) : Ty.trait_ref =
  { trait = tr.trait; args = List.map copy_arg tr.args }

and copy_projection (p : Ty.projection) : Ty.projection =
  {
    self_ty = copy_ty p.self_ty;
    proj_trait = copy_trait_ref p.proj_trait;
    assoc = p.assoc;
    assoc_args = List.map copy_arg p.assoc_args;
  }

let copy_pred (p : Predicate.t) : Predicate.t =
  match p with
  | Trait { self_ty; trait_ref } ->
      Trait { self_ty = copy_ty self_ty; trait_ref = copy_trait_ref trait_ref }
  | Projection { projection; term } ->
      Projection { projection = copy_projection projection; term = copy_ty term }
  | TypeOutlives (t, r) -> TypeOutlives (copy_ty t, r)
  | other -> other

let check_intern source =
  match load source with
  | Error m -> Fail m
  | Ok program ->
      let check_ty acc t =
        match acc with
        | Some _ -> acc
        | None ->
            let a = Interner.ty t and b = Interner.ty (copy_ty t) in
            if not (a == b) then
              Some
                (Printf.sprintf "intern: structural copy of %s is not physically canonical"
                   (Pretty.ty t))
            else if not (Interner.ty a == a) then
              Some (Printf.sprintf "intern: interning %s is not idempotent" (Pretty.ty t))
            else None
      in
      let check_pred acc p =
        match acc with
        | Some _ -> acc
        | None ->
            let a = Interner.predicate p and b = Interner.predicate (copy_pred p) in
            if not (a == b) then
              Some
                (Printf.sprintf
                   "intern: structural copy of pred %s is not physically canonical"
                   (Pretty.predicate p))
            else Predicate.fold_tys check_ty None p
      in
      let mismatch =
        List.fold_left
          (fun acc (g : Program.goal) -> check_pred acc g.goal_pred)
          None (Program.goals program)
      in
      let mismatch =
        List.fold_left
          (fun acc (i : Decl.impl) -> check_ty acc i.impl_self)
          mismatch (Program.impls program)
      in
      (match mismatch with None -> Pass | Some m -> Fail m)

(* Candidate assembly through the fast-reject bucket index must be
   observationally identical to the --no-index linear scan: same
   reports, same journal streams, same byte fingerprints.  The cache is
   held off so every goal actually reaches candidate assembly both
   times; the index is cleared first so the on-run exercises a cold
   lazy build. *)
let check_index source =
  with_cache_state @@ fun () ->
  let was = Solver.Fast_reject.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Solver.Fast_reject.set_enabled was;
      Solver.Fast_reject.clear ())
    (fun () ->
      let e = entry source in
      Solver.Eval_cache.set_enabled false;
      Solver.Fast_reject.set_enabled true;
      Solver.Fast_reject.clear ();
      let on = Corpus.Harness.solve_unit ~journal:true e in
      Solver.Fast_reject.set_enabled false;
      let off = Corpus.Harness.solve_unit ~journal:true e in
      let ( <|> ) a b = match a with Some _ -> a | None -> b in
      let mismatch =
        reports_agree ~what:"index: on vs off" on.b_report off.b_report
        <|> streams_agree ~what:"index: on vs off journal" on.b_journal off.b_journal
      in
      match mismatch with
      | Some m -> Fail m
      | None ->
          if String.equal (fingerprint on) (fingerprint off) then Pass
          else Fail "index: byte fingerprints differ between index on and --no-index")

(* Incremental ≡ from-scratch.  Drive a deterministic edit script
   through one warm [Session] (cache + index on, revalidated across each
   version) and, at every step, re-solve the same program value from
   scratch with the cache disabled.  Reports, proof trees, diagnostics,
   and the consumed journal-ID count must be byte-identical — the
   incremental path is "selective eviction + ordinary solve", so any
   divergence means revalidation kept an entry it should have evicted
   (or replay broke its bit-identity contract).

   The comparison deliberately omits snapshot serials: replay skips the
   candidate snapshots a fresh evaluation takes, which is invisible in
   every output stream but not in the raw serial counter. *)
let check_incremental source =
  with_cache_state @@ fun () ->
  let was_fr = Solver.Fast_reject.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Solver.Fast_reject.set_enabled was_fr;
      Solver.Fast_reject.clear ())
    (fun () ->
      match load source with
      | Error m -> Fail m
      | Ok base ->
          let fp (program : Program.t) (report : Solver.Obligations.report) ids =
            let buf = Buffer.create 4096 in
            Buffer.add_string buf
              (Argus_json.Json.to_string (Argus_json.Encode.report report));
            List.iter
              (fun (r : Solver.Obligations.goal_report) ->
                Solver.Trace.fold_goals
                  (fun () (g : Solver.Trace.goal_node) ->
                    Printf.bprintf buf "g%d d%d %s;" g.gid g.depth (Pretty.predicate g.pred))
                  () r.final;
                if r.status <> Solver.Obligations.Proved then begin
                  let tree = Argus.Extract.of_report r in
                  let goal = { r.goal with Program.goal_pred = r.final.pred } in
                  Buffer.add_string buf
                    (Rustc_diag.Diagnostic.to_string
                       (Rustc_diag.Diagnostic.of_tree program goal tree))
                end)
              report.reports;
            Printf.bprintf buf "ids=%d" ids;
            Buffer.contents buf
          in
          let scratch program =
            Solver.Eval_cache.set_enabled false;
            Journal.reset ();
            Solver.Infer_ctx.reset_snapshot_serial ();
            let report = Solver.Obligations.solve_program program in
            Solver.Eval_cache.set_enabled true;
            (report, Journal.peek_id ())
          in
          Solver.Eval_cache.set_enabled true;
          Solver.Eval_cache.clear ();
          Solver.Fast_reject.set_enabled true;
          Solver.Fast_reject.clear ();
          let session = Solver.Session.create () in
          let check_version what program =
            ignore (Solver.Session.edit session program);
            let incr_report = Solver.Session.resolve session in
            let incr_ids = Journal.peek_id () in
            let ref_report, ref_ids = scratch program in
            match reports_agree ~what incr_report ref_report with
            | Some m -> Some m
            | None ->
                if String.equal (fp program incr_report incr_ids) (fp program ref_report ref_ids)
                then None
                else Some (what ^ ": byte fingerprints differ (incremental vs scratch)")
          in
          let seed = Hashtbl.hash source in
          let steps = Edit.script ~seed ~steps:4 base in
          let rec go i = function
            | [] -> Pass
            | (op, version) :: rest -> (
                match
                  check_version
                    (Printf.sprintf "incremental: step %d (%s)" i (Edit.describe op))
                    version
                with
                | Some m -> Fail m
                | None -> go (i + 1) rest
            )
          in
          (match check_version "incremental: base" base with
          | Some m -> Fail m
          | None -> go 1 steps))

(* Serve-protocol equivalence.  Drive the generated program through a
   live in-process server and byte-compare every response payload
   against fresh scratch runs of the same machinery:

   - cache-OFF scratch for cache-invariant payloads — the rendered
     check report, proof-tree pages, view lines, and failure
     narratives must not change with cache warmth (the PR 3
     invisibility contract);
   - cache-ON-cold scratch for the journal-derived payloads (explain
     summary, profile table), whose cache_hit/cache_miss events are
     part of the stream and match the server's own cold solve.

   Then an edit script reloads printed versions through the session
   (warm cache, rebased indexes) and re-compares the invariant
   payloads; a final reload of the unchanged source must be a
   stamp-equal no-op with an all-zero delta. *)
let check_serve source =
  with_cache_state @@ fun () ->
  let was_fr = Solver.Fast_reject.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Solver.Fast_reject.set_enabled was_fr;
      Solver.Fast_reject.clear ())
    (fun () ->
      let module Json = Argus_json.Json in
      let module Rpc = Argus_json.Rpc in
      let ( let* ) = Result.bind in
      let parse src =
        match Trait_lang.Resolve.program_of_string ~file:"<serve>" src with
        | p -> Ok p
        | exception Parser.Error e -> Error e.message
        | exception Trait_lang.Resolve.Error e ->
            Error (Trait_lang.Resolve.error_message e)
      in
      match parse source with
      | Error m -> Fail ("front-end: " ^ m)
      | Ok p1 ->
          Solver.Eval_cache.set_enabled true;
          Solver.Eval_cache.clear ();
          Solver.Fast_reject.set_enabled true;
          Solver.Fast_reject.clear ();
          let server = Serve.Server.create () in
          let rpc m params =
            let l =
              Rpc.request_to_line
                {
                  Rpc.rpc_id = Some (Rpc.Int_id 0);
                  rpc_method = m;
                  rpc_params =
                    Some (Json.Obj (("session", Json.String "fuzz") :: params));
                }
            in
            match Serve.Server.handle_line server l with
            | None -> Error (m ^ ": no response")
            | Some resp -> (
                match Rpc.response_of_line resp with
                | Ok { Rpc.resp_result = Ok v; _ } -> Ok v
                | Ok { Rpc.resp_result = Error e; _ } ->
                    Error
                      (Printf.sprintf "%s: rpc error %d: %s" m e.Rpc.code
                         e.Rpc.message)
                | Error e -> Error (m ^ ": bad response frame: " ^ e))
          in
          let str_member name v =
            match Option.bind (Json.member name v) Json.to_string_opt with
            | Some s -> Ok s
            | None -> Error (Printf.sprintf "missing `%s` in response" name)
          in
          (* Fresh scratch solve + render of [program] with the cache as
             currently switched; journal normalized like the server's. *)
          let scratch program =
            Journal.reset ();
            Solver.Infer_ctx.reset_snapshot_serial ();
            let (report, rendered), entries =
              Journal.with_memory_sink (fun () ->
                  let report = Solver.Obligations.solve_program program in
                  (report, Serve.Check_render.run program report))
            in
            let entries =
              List.mapi
                (fun i (e : Journal.entry) ->
                  Journal.shift_entry ~seq:i ~ids:0 ~snaps:0
                    { e with Journal.ts_ns = 0 })
                entries
            in
            (report, fst rendered, entries)
          in
          let scratch_off program =
            Solver.Eval_cache.set_enabled false;
            let r = scratch program in
            Solver.Eval_cache.set_enabled true;
            r
          in
          let failing_trees (report : Solver.Obligations.report) =
            report.reports
            |> List.filter (fun (r : Solver.Obligations.goal_report) ->
                   r.status <> Solver.Obligations.Proved)
            |> List.map Argus.Extract.of_report
          in
          let tree_page trees =
            String.concat ""
              (List.map
                 (fun t ->
                   Argus.Render.tree_to_string
                     ~direction:Argus.View_state.Bottom_up t
                   ^ "\n\n")
                 trees)
          in
          (* solve / tree on the live session vs a cache-off scratch of
             the same program value: these payloads are cache-invariant,
             so they must match whether the session solved warm or cold *)
          let check_invariant ~what program =
            let ref_report, ref_out, _ = scratch_off program in
            let* solved = rpc "solve" [] in
            let* out = str_member "output" solved in
            if not (String.equal out ref_out) then
              Error (what ^ ": solve output differs from scratch")
            else
              let* treed = rpc "tree" [] in
              let* tree_out = str_member "output" treed in
              let ref_trees = failing_trees ref_report in
              if not (String.equal tree_out (tree_page ref_trees)) then
                Error (what ^ ": tree page differs from scratch")
              else Ok ref_trees
          in
          (* explain/profile payloads are rendered from the journal, and
             the journal carries cache events (the failure narrative
             even references their seq numbers) — so compare a COLD
             session re-solve against a cache-on-cold scratch, both of
             which record the same miss events *)
          let check_journal_payloads ~what program =
            Solver.Eval_cache.clear ();
            let _, _, cold_entries = scratch program in
            let* cold_tree =
              match Journal.replay cold_entries with
              | Ok t -> Ok t
              | Error m -> Error (what ^ ": cold scratch replay failed: " ^ m)
            in
            let failures_ref = Serve.Explain_render.failures cold_tree in
            let summary_ref =
              Serve.Explain_render.summary
                ~entries:(List.length cold_entries) cold_tree
            in
            let profile_ref =
              Profile.top_table ~top:10 (Profile.of_entries cold_entries)
            in
            Solver.Eval_cache.clear ();
            let* _ = rpc "solve" [] in
            let* expl_f = rpc "explain" [ ("failures", Json.Bool true) ] in
            let* failures_out = str_member "output" expl_f in
            if not (String.equal failures_out failures_ref) then
              Error
                (what ^ ": explain --failures differs from cache-on-cold scratch")
            else
              let* expl = rpc "explain" [] in
              let* summary_out = str_member "output" expl in
              if not (String.equal summary_out summary_ref) then
                Error
                  (what ^ ": explain summary differs from cache-on-cold scratch")
              else
                let* prof = rpc "profile" [] in
                let* profile_out = str_member "output" prof in
                if not (String.equal profile_out profile_ref) then
                  Error
                    (what ^ ": profile table differs from cache-on-cold scratch")
                else Ok ()
          in
          let outcome =
            (* ---- cold session ---- *)
            let* _ = rpc "open" [ ("source", Json.String source) ] in
            let* ref_trees = check_invariant ~what:"base" p1 in
            let* () = check_journal_payloads ~what:"base" p1 in
            (* ---- seeded expand/hover walk on goal 0 ---- *)
            let seed = Hashtbl.hash source in
            let* () =
                  match ref_trees with
                  | [] -> Ok ()
                  | tree :: _ ->
                      let rec walk k vs =
                        if k > 5 then Ok ()
                        else
                          let rows = Argus.Render.view vs in
                          let n = List.length rows in
                          if n = 0 then Ok ()
                          else
                            let l = List.nth rows ((seed + (k * 7919)) mod n) in
                            let verb = if k mod 2 = 0 then "expand" else "hover" in
                            let vs' =
                              if l.Argus.Render.node = Argus.Render.others_row
                              then Argus.View_state.toggle_others vs
                              else if k mod 2 = 0 then
                                Argus.View_state.expand vs l.Argus.Render.node
                              else Argus.View_state.hover vs l.Argus.Render.node
                            in
                            let expected =
                              Json.to_string (Serve.Server.view_json ~goal:0 vs')
                            in
                            let* got =
                              rpc verb [ ("row", Json.Int l.Argus.Render.index) ]
                            in
                            if not (String.equal (Json.to_string got) expected)
                            then
                              Error
                                (Printf.sprintf
                                   "walk step %d (%s row %d) differs from \
                                    reference view state"
                                   k verb l.Argus.Render.index)
                            else walk (k + 1) vs'
                      in
                      walk 0 (Argus.View_state.create tree)
                in
                (* ---- edit-script reloads through the warm session ---- *)
                let steps = Edit.script ~seed ~steps:2 p1 in
                let rec go i last_src = function
                  | [] -> Ok last_src
                  | (_, version) :: rest ->
                      let v_src = Printer.program version in
                      let* _ =
                        rpc "reload" [ ("source", Json.String v_src) ]
                      in
                      let* vp =
                        match parse v_src with
                        | Ok vp -> Ok vp
                        | Error m ->
                            Error
                              (Printf.sprintf
                                 "step %d: printed version does not re-parse \
                                  (%s)"
                                 i m)
                      in
                      let* _ =
                        check_invariant ~what:(Printf.sprintf "step %d" i) vp
                      in
                      let* () =
                        check_journal_payloads
                          ~what:(Printf.sprintf "step %d" i) vp
                      in
                      go (i + 1) v_src rest
                in
                let* last_src = go 1 source steps in
                (* ---- unchanged reload: stamp-equal no-op ---- *)
                let* reloaded =
                  rpc "reload" [ ("source", Json.String last_src) ]
                in
                let noop =
                  match Json.member "noop" reloaded with
                  | Some (Json.Bool b) -> b
                  | _ -> false
                in
                let evicted =
                  match
                    Option.bind
                      (Json.member "delta" reloaded)
                      (Json.member "evicted")
                  with
                  | Some (Json.Int n) -> n
                  | _ -> -1
                in
                if not noop then
                  Error "unchanged reload is not a stamp-equal no-op"
                else if evicted <> 0 then
                  Error
                    (Printf.sprintf "unchanged reload evicted %d entries"
                       evicted)
                else Ok ()
          in
          (match outcome with
          | Ok () -> Pass
          | Error m -> Fail ("serve: " ^ m)))

let check_determinism source =
  with_cache_state @@ fun () ->
  let e = entry source in
  Solver.Eval_cache.clear ();
  let a = Corpus.Harness.solve_unit ~journal:true e in
  Solver.Eval_cache.clear ();
  let b = Corpus.Harness.solve_unit ~journal:true e in
  if String.equal (fingerprint a) (fingerprint b) then Pass
  else Fail "determinism: two cold runs of the same source differ"

(* ------------------------------------------------------------------ *)

let check ?pool name ~source =
  let body () =
    match name with
    | Wellformed -> check_wellformed source
    | Cache -> check_cache source
    | Jobs -> check_jobs ?pool source
    | Journal -> check_journal source
    | Roundtrip -> check_roundtrip source
    | Intern -> check_intern source
    | Determinism -> check_determinism source
    | Index -> check_index source
    | Incremental -> check_incremental source
    | Serve -> check_serve source
  in
  match body () with
  | v -> v
  | exception Corpus.Harness.Corpus_error m -> Fail ("front-end: " ^ m)
  | exception e ->
      failf "%s: oracle raised %s" (to_string name) (Printexc.to_string e)
