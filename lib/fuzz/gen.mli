(** Seeded, size-bounded random generation of well-formed L_TRAIT
    programs.

    The generator works on a small declaration IR ({!spec}) that renders
    deterministically to surface syntax, so the shrinker can edit the
    structure and re-render instead of splicing text.  Programs are
    well-formed by construction — every referenced name is declared and
    every generic application matches its declaration's arity — and are
    biased toward the paper's three failure modes: deep elided
    requirement chains (§2.1), overflow cycles (§2.2, E0275), and
    ambiguity branch points (§2.3). *)

(** {1 The declaration IR} *)

type ty =
  | Prim of string  (** ["i32"], ["String"], ["()"], ... — rendered verbatim *)
  | Name of string * ty list  (** struct or in-scope type parameter *)
  | Tup of ty list  (** non-empty; 1-tuples render with the trailing comma *)
  | Ref of ty
  | Fn_ptr of ty list * ty option
  | Dyn of string
  | Hole  (** [_] — an inference hole, goals only *)
  | Proj of ty * bound * string  (** [<τ as Trait<..>>::Assoc] *)

(** A trait bound: name, positional args, and [Assoc = τ] binding sugar. *)
and bound = { b_trait : string; b_args : ty list; b_bindings : (string * ty) list }

type pred =
  | P_trait of ty * bound  (** [τ: T<..>] *)
  | P_proj_eq of ty * bound * string * ty  (** [<τ as T<..>>::A == τ'] *)

type assoc_decl = { a_name : string; a_bounds : bound list; a_default : ty option }

type decl =
  | Struct of { s_name : string; s_arity : int }
  | Trait of {
      t_name : string;
      t_arity : int;
      t_supers : bound list;
      t_assocs : assoc_decl list;
    }
  | Impl of {
      i_params : string list;
      i_trait : bound;
      i_self : ty;
      i_where : pred list;
      i_bindings : (string * ty) list;
    }
  | Goal of pred

type spec = decl list

(** {1 Generation} *)

(** Deterministic generation: the same [(seed, iter, size)] triple always
    yields the same program, independent of any other iteration.  [size]
    scales declaration counts and type depth (1 = tiny .. 4 = large;
    clamped). *)
val generate : seed:int -> iter:int -> size:int -> spec

val default_size : int

(** Deterministic mega-library generation for the [scale] bench suite:
    a program with [impls] impl blocks shaped like a big real crate —
    ~75% head-distinct impls (singleton fast-reject buckets), ~20%
    overlapping same-head impls in constant-width families of 8 whose
    family count grows with [impls], a constant-size generic-self
    chain, and exactly three true blanket (wildcard) impls regardless
    of [impls].  [goals] cycle over
    provable hits in both families, decisive misses, and a depth-8
    chain goal.  [seed] jitters trait assignment within families; the
    structural proportions are fixed. *)
val generate_mega : goals:int -> seed:int -> impls:int -> spec

(** {1 Rendering and inspection} *)

(** Render to L_TRAIT surface syntax (parseable by {!Trait_lang.Parser}). *)
val render : spec -> string

val render_ty : ty -> string
val render_pred : pred -> string

(** Number of top-level declarations (structs + traits + impls + goals). *)
val decl_count : spec -> int
