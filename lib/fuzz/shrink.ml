(** Greedy first-improvement shrinking (see the interface).  Candidate
    reductions are enumerated lazily, most-aggressive first (whole
    declarations before intra-declaration edits before type-subtree
    simplification); the first accepted reduction restarts the scan. *)

open Gen

type result = { minimized : Gen.spec; steps : int; checks : int }

(* ------------------------------------------------------------------ *)
(* Type-subtree simplification: replace the [n]-th node (pre-order) of
   a type with [i32].  Children of a replaced node are not visited, so
   enumerating n from 0 while the total count shrinks terminates. *)

let filler = Prim "i32"

let rec replace_nth (counter : int ref) (t : ty) : ty =
  if !counter < 0 then t
  else if !counter = 0 then begin
    decr counter;
    filler
  end
  else begin
    decr counter;
    match t with
    | Prim _ | Name (_, []) | Dyn _ | Hole -> t
    | Name (n, args) -> Name (n, List.map (replace_nth counter) args)
    | Tup ts -> Tup (List.map (replace_nth counter) ts)
    | Ref t' -> Ref (replace_nth counter t')
    | Fn_ptr (ins, out) ->
        Fn_ptr (List.map (replace_nth counter) ins, Option.map (replace_nth counter) out)
    | Proj (self, b, a) ->
        Proj (replace_nth counter self, replace_nth_bound counter b, a)
  end

and replace_nth_bound counter (b : bound) : bound =
  {
    b with
    b_args = List.map (replace_nth counter) b.b_args;
    b_bindings = List.map (fun (n, t) -> (n, replace_nth counter t)) b.b_bindings;
  }

let replace_nth_pred counter (p : pred) : pred =
  match p with
  | P_trait (t, b) -> P_trait (replace_nth counter t, replace_nth_bound counter b)
  | P_proj_eq (t, b, a, rhs) ->
      P_proj_eq
        (replace_nth counter t, replace_nth_bound counter b, a, replace_nth counter rhs)

(* Replacing node [n] of the types embedded in a declaration; [None]
   once [n] exceeds the node count (the counter never reached 0). *)
let simplify_decl_ty (d : decl) (n : int) : decl option =
  let counter = ref n in
  let d' =
    match d with
    | Struct _ -> d
    | Trait t ->
        Trait
          {
            t with
            t_supers = List.map (replace_nth_bound counter) t.t_supers;
            t_assocs =
              List.map
                (fun a ->
                  {
                    a with
                    a_bounds = List.map (replace_nth_bound counter) a.a_bounds;
                    a_default = Option.map (replace_nth counter) a.a_default;
                  })
                t.t_assocs;
          }
    | Impl i ->
        Impl
          {
            i with
            i_trait = replace_nth_bound counter i.i_trait;
            i_self = replace_nth counter i.i_self;
            i_where = List.map (replace_nth_pred counter) i.i_where;
            i_bindings = List.map (fun (nm, t) -> (nm, replace_nth counter t)) i.i_bindings;
          }
    | Goal p -> Goal (replace_nth_pred counter p)
  in
  if !counter >= 0 then None (* n was past the last node *)
  else if d' = d then None (* replaced a node that was already [i32] *)
  else Some d'

(* ------------------------------------------------------------------ *)
(* Struct elision: replace every use of a named struct with [i32]
   across the whole spec, then drop its declaration.  Per-declaration
   edits cannot perform this reduction — changing one use at a time
   breaks impl/goal correspondence and masks the failure. *)

let rec subst_ty name (t : ty) : ty =
  match t with
  | Name (n, _) when String.equal n name -> filler
  | Name (n, args) -> Name (n, List.map (subst_ty name) args)
  | Tup ts -> Tup (List.map (subst_ty name) ts)
  | Ref t' -> Ref (subst_ty name t')
  | Fn_ptr (ins, out) ->
      Fn_ptr (List.map (subst_ty name) ins, Option.map (subst_ty name) out)
  | Proj (self, b, a) -> Proj (subst_ty name self, subst_bound name b, a)
  | Prim _ | Dyn _ | Hole -> t

and subst_bound name (b : bound) : bound =
  {
    b with
    b_args = List.map (subst_ty name) b.b_args;
    b_bindings = List.map (fun (n, t) -> (n, subst_ty name t)) b.b_bindings;
  }

let subst_pred name (p : pred) : pred =
  match p with
  | P_trait (t, b) -> P_trait (subst_ty name t, subst_bound name b)
  | P_proj_eq (t, b, a, rhs) ->
      P_proj_eq (subst_ty name t, subst_bound name b, a, subst_ty name rhs)

let subst_decl name (d : decl) : decl =
  match d with
  | Struct _ -> d
  | Trait t ->
      Trait
        {
          t with
          t_supers = List.map (subst_bound name) t.t_supers;
          t_assocs =
            List.map
              (fun a ->
                {
                  a with
                  a_bounds = List.map (subst_bound name) a.a_bounds;
                  a_default = Option.map (subst_ty name) a.a_default;
                })
              t.t_assocs;
        }
  | Impl i ->
      Impl
        {
          i with
          i_trait = subst_bound name i.i_trait;
          i_self = subst_ty name i.i_self;
          i_where = List.map (subst_pred name) i.i_where;
          i_bindings = List.map (fun (n, t) -> (n, subst_ty name t)) i.i_bindings;
        }
  | Goal p -> Goal (subst_pred name p)

(* ------------------------------------------------------------------ *)
(* Candidate enumeration *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* Intra-declaration reductions, in decreasing order of aggression. *)
let decl_reductions (d : decl) : decl list =
  match d with
  | Struct _ -> []
  | Trait t ->
      List.init (List.length t.t_supers) (fun i ->
          Trait { t with t_supers = drop_nth t.t_supers i })
      @ List.init (List.length t.t_assocs) (fun i ->
            Trait { t with t_assocs = drop_nth t.t_assocs i })
  | Impl i ->
      List.init (List.length i.i_where) (fun k ->
          Impl { i with i_where = drop_nth i.i_where k })
      @ List.init (List.length i.i_bindings) (fun k ->
            Impl { i with i_bindings = drop_nth i.i_bindings k })
  | Goal _ -> []

(* All candidate reductions of [spec], lazily. *)
let candidates (spec : spec) : spec Seq.t =
  let n = List.length spec in
  let drop_decl = Seq.init n (fun i -> drop_nth spec i) in
  (* Chunk drops (ddmin-style): whole contiguous windows, largest first.
     The generator emits each gadget's declarations adjacently, so a
     window captures an entire self-supporting cluster that no sequence
     of single drops could remove. *)
  let drop_chunk =
    let sizes =
      List.sort_uniq (fun a b -> compare b a)
        (List.filter (fun s -> s >= 3 && s < n) [ n - 2; 2 * n / 3; n / 2; n / 3; n / 4 ])
    in
    Seq.concat_map
      (fun s ->
        Seq.init (n - s + 1) (fun i -> List.filteri (fun k _ -> k < i || k >= i + s) spec))
      (List.to_seq sizes)
  in
  let elide_struct =
    Seq.filter_map
      (fun i ->
        match List.nth spec i with
        | Struct s ->
            Some (List.map (subst_decl s.s_name) (drop_nth spec i))
        | _ -> None)
      (Seq.init n Fun.id)
  in
  (* Pair drops let the scan escape local minima where a declaration and
     its sole consumer (a goal and its supporting impl, say) must leave
     together — each single drop alone would mask the failure. *)
  let drop_pair =
    Seq.concat_map
      (fun i -> Seq.init (n - i - 1) (fun k -> drop_nth (drop_nth spec (i + k + 1)) i))
      (Seq.init n Fun.id)
  in
  let intra =
    Seq.concat_map
      (fun i ->
        let d = List.nth spec i in
        Seq.map
          (fun d' -> List.mapi (fun k x -> if k = i then d' else x) spec)
          (List.to_seq (decl_reductions d)))
      (Seq.init n Fun.id)
  in
  let simplify =
    Seq.concat_map
      (fun i ->
        let d = List.nth spec i in
        Seq.unfold
          (fun n ->
            match simplify_decl_ty d n with
            | Some d' ->
                Some (List.mapi (fun k x -> if k = i then d' else x) spec, n + 1)
            | None -> if n < 256 then Some (spec, n + 1) else None)
          0
        |> Seq.filter (fun s -> s != spec))
      (Seq.init n Fun.id)
  in
  List.fold_right Seq.append
    [ drop_decl; elide_struct; drop_chunk; drop_pair; intra ]
    simplify

(* ------------------------------------------------------------------ *)

let run ?(max_checks = 1000) ~check ~kind (spec : spec) : result =
  let checks = ref 0 in
  let still_fails s =
    incr checks;
    match check (Gen.render s) with
    | Oracle.Fail m -> String.equal (Oracle.fail_kind m) kind
    | Oracle.Pass -> false
  in
  let rec loop spec steps =
    if !checks >= max_checks then { minimized = spec; steps; checks = !checks }
    else
      let accepted =
        Seq.find_map
          (fun cand ->
            if !checks >= max_checks then None
            else if still_fails cand then Some cand
            else None)
          (candidates spec)
      in
      match accepted with
      | Some smaller -> loop smaller (steps + 1)
      | None -> { minimized = spec; steps; checks = !checks }
  in
  loop spec 0
