(** Greedy structural shrinking of a failing {!Gen.spec} to a (locally)
    minimal counterexample.

    Reductions: drop a declaration, drop an impl where-clause or assoc
    binding, drop a trait supertrait or assoc decl, and replace embedded
    type subtrees with [i32].  A reduction is kept only when the oracle
    still fails {e with the same failure kind} ({!Oracle.fail_kind}) —
    reductions that break loading change the kind to [front-end] and are
    rejected automatically. *)

type result = {
  minimized : Gen.spec;
  steps : int;  (** accepted reductions *)
  checks : int;  (** oracle invocations spent *)
}

(** [run ~check ~kind spec] greedily minimizes [spec].  [check] renders
    and judges a candidate (typically [fun src -> Oracle.check name
    ~source:src]); [kind] is the failure kind of the original
    counterexample.  [max_checks] (default 600) bounds total oracle
    invocations. *)
val run :
  ?max_checks:int ->
  check:(string -> Oracle.verdict) ->
  kind:string ->
  Gen.spec ->
  result
