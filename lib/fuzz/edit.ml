(* Program-level edit scripts (see edit.mli).  All ops rebuild via
   [Program.of_decls], so each version carries a fresh program stamp
   while every untouched declaration value is reused as-is. *)

open Trait_lang
module Rng = Stats.Rng

type op =
  | Remove_impl of int
  | Dup_impl of int
  | Drop_where of int
  | Swap_impls of int * int
  | Remove_goal of int
  | Dup_goal of int
  | Add_struct of int

let describe = function
  | Remove_impl i -> Printf.sprintf "remove impl #%d" i
  | Dup_impl i -> Printf.sprintf "duplicate impl #%d" i
  | Drop_where i -> Printf.sprintf "drop last where-clause of impl #%d" i
  | Swap_impls (i, j) -> Printf.sprintf "swap impls #%d and #%d" i j
  | Remove_goal i -> Printf.sprintf "remove goal #%d" i
  | Dup_goal i -> Printf.sprintf "duplicate goal #%d" i
  | Add_struct n -> Printf.sprintf "add unused struct ZEdit%d" n

(* Rebuild a program from (possibly modified) decl lists, preserving
   each family's declaration order — candidate order is observable. *)
let rebuild ~types ~traits ~fns ~impls ~goals : Program.t =
  Program.of_decls ~goals
    (List.map (fun d -> Decl.Type d) types
    @ List.map (fun d -> Decl.Trait d) traits
    @ List.map (fun d -> Decl.Fn d) fns
    @ List.map (fun d -> Decl.Impl d) impls)

let rebuild_impls p impls =
  rebuild ~types:(Program.types p) ~traits:(Program.traits p) ~fns:(Program.fns p) ~impls
    ~goals:(Program.goals p)

let remove_nth i l = List.filteri (fun k _ -> k <> i) l

let modify_nth i f l =
  List.mapi (fun k x -> if k = i then f x else x) l

let fresh_impl_id p =
  1 + List.fold_left (fun m (i : Decl.impl) -> max m i.impl_id) (-1) (Program.impls p)

let apply (p : Program.t) (op : op) : Program.t =
  let impls = Program.impls p and goals = Program.goals p in
  let n_impls = List.length impls and n_goals = List.length goals in
  match op with
  | Remove_impl i when i < n_impls -> rebuild_impls p (remove_nth i impls)
  | Dup_impl i when i < n_impls ->
      let d = List.nth impls i in
      rebuild_impls p (impls @ [ { d with Decl.impl_id = fresh_impl_id p } ])
  | Drop_where i when i < n_impls ->
      rebuild_impls p
        (modify_nth i
           (fun (d : Decl.impl) ->
             match List.rev d.impl_generics.where_clauses with
             | [] -> d
             | _ :: rest ->
                 {
                   d with
                   impl_generics = { d.impl_generics with where_clauses = List.rev rest };
                 })
           impls)
  | Swap_impls (i, j) when i < n_impls && j < n_impls && i <> j ->
      let a = List.nth impls i and b = List.nth impls j in
      rebuild_impls p
        (List.mapi (fun k d -> if k = i then b else if k = j then a else d) impls)
  | Remove_goal i when i < n_goals -> Program.with_goals (remove_nth i goals) p
  | Dup_goal i when i < n_goals -> Program.add_goal (List.nth goals i) p
  | Add_struct n -> (
      let name = Printf.sprintf "ZEdit%d" n in
      let decl : Decl.tydecl =
        {
          ty_path = Path.local [ name ];
          ty_generics = Decl.no_generics;
          ty_repr = None;
          ty_span = Span.dummy;
        }
      in
      try Program.add_type decl p with Program.Duplicate_decl _ -> p)
  | Remove_impl _ | Dup_impl _ | Drop_where _ | Swap_impls _ | Remove_goal _ | Dup_goal _ -> p

let drop_impl p i =
  let n = List.length (Program.impls p) in
  let i = if i < 0 then n + i else i in
  if i < 0 || i >= n then p else apply p (Remove_impl i)

let gen_op rng (p : Program.t) : op =
  let impls = Program.impls p in
  let n_impls = List.length impls in
  let n_goals = List.length (Program.goals p) in
  let impl () = Rng.int rng (max 1 n_impls) in
  (* Only where-free impls are safe to duplicate: their candidates are
     leaves, so the dup adds ambiguity without multiplying recursive
     unfolds (duplicating an impl on a recursion chain — e.g. a cycle
     gadget — turns a depth-d path into a 2^d candidate tree). *)
  let dup_safe =
    List.filteri (fun _ (d : Decl.impl) -> d.impl_generics.where_clauses = []) impls
    |> List.length
  in
  let dup_pick () =
    let nth = Rng.int rng (max 1 dup_safe) in
    let rec find i seen = function
      | [] -> 0
      | (d : Decl.impl) :: rest ->
          if d.impl_generics.where_clauses = [] then
            if seen = nth then i else find (i + 1) (seen + 1) rest
          else find (i + 1) seen rest
    in
    find 0 0 impls
  in
  match Rng.int rng 7 with
  | 0 when n_impls > 0 -> Remove_impl (impl ())
  | 1 when dup_safe > 0 -> Dup_impl (dup_pick ())
  | 2 when n_impls > 0 -> Drop_where (impl ())
  | 3 when n_impls > 1 -> Swap_impls (impl (), impl ())
  | 4 when n_goals > 1 -> Remove_goal (Rng.int rng n_goals)
  | 5 when n_goals > 0 -> Dup_goal (Rng.int rng n_goals)
  | _ -> Add_struct (Rng.int rng 1000)

let script ~seed ~steps (p : Program.t) : (op * Program.t) list =
  let rng = Rng.create ~seed in
  let rec go acc p k =
    if k = 0 then List.rev acc
    else
      let op = gen_op rng p in
      let p' = apply p op in
      go ((op, p') :: acc) p' (k - 1)
  in
  go [] p steps
