module Json = Argus_json.Json
module Rpc = Argus_json.Rpc

type stats = {
  ls_clients : int;
  ls_requests : int;
  ls_errors : int;
  ls_wall_ns : int;
  ls_throughput_rps : float;
  ls_p50_ns : int;
  ls_p99_ns : int;
  ls_cold_hits : int;
  ls_cold_misses : int;
  ls_warm_hits : int;
  ls_warm_misses : int;
  ls_cold_hit_rate : float;
  ls_warm_hit_rate : float;
}

let line ~id m params =
  Rpc.request_to_line
    {
      Rpc.rpc_id = Some (Rpc.Int_id id);
      rpc_method = m;
      rpc_params = Some (Json.Obj params);
    }

(* Issue one request, clock it, and classify the response. *)
let request server latencies errors l =
  let t0 = Telemetry.now_ns () in
  let resp = Serve.Server.handle_line server l in
  let t1 = Telemetry.now_ns () in
  latencies := (t1 - t0) :: !latencies;
  match resp with
  | None -> None
  | Some r -> (
      match Rpc.response_of_line r with
      | Ok { Rpc.resp_result = Ok v; _ } -> Some v
      | Ok { Rpc.resp_result = Error _; _ } | Error _ ->
          incr errors;
          None)

let cache_hits () =
  Telemetry.counter_value "cache.tree.hits"
  + Telemetry.counter_value "cache.result.hits"

let cache_misses () =
  Telemetry.counter_value "cache.tree.misses"
  + Telemetry.counter_value "cache.result.misses"

let rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(min (n - 1) (n * p / 100))

let run ?pool ?(jobs = 1) ?(programs = 8) ~clients ~seed () =
  (* The program pool: a handful of seeded generated programs plus a
     1-step-edited variant of each (the reload payload). *)
  let sources =
    List.init programs (fun i -> Gen.render (Gen.generate ~seed ~iter:i ~size:1))
  in
  let edited =
    List.map
      (fun src ->
        match
          Trait_lang.Resolve.program_of_string ~file:"<serve-load>" src
        with
        | exception _ -> src
        | program -> (
            match Edit.script ~seed ~steps:1 program with
            | [] -> src
            | script -> Printer.program (snd (List.nth script (List.length script - 1)))))
      sources
  in
  let sources = Array.of_list sources and edited = Array.of_list edited in
  let server = Serve.Server.create () in
  Solver.Eval_cache.clear ();
  Solver.Fast_reject.clear ();
  let was_enabled = Telemetry.enabled () in
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Telemetry.disable ())
    (fun () ->
      let t_start = Telemetry.now_ns () in
      let hits0 = cache_hits () and misses0 = cache_misses () in
      (* cold phase: open + solve per client *)
      let cold_results =
        Pool.run ?pool ~jobs
          (fun c ->
            let p = (seed + c) mod programs in
            let session = Printf.sprintf "c%d" c in
            let latencies = ref [] and errors = ref 0 in
            ignore
              (request server latencies errors
                 (line ~id:1 "open"
                    [
                      ("session", Json.String session);
                      ("source", Json.String sources.(p));
                    ]));
            let solved =
              request server latencies errors
                (line ~id:2 "solve" [ ("session", Json.String session) ])
            in
            let failing =
              match Option.bind solved (Json.member "issues") with
              | Some (Json.Int n) -> n > 0
              | _ -> false
            in
            (c, failing, !latencies, !errors))
          (List.init clients Fun.id)
      in
      let hits1 = cache_hits () and misses1 = cache_misses () in
      (* warm phase: read-only exploration, then an incremental
         reload + re-solve against the now-populated cache *)
      let warm_results =
        Pool.run ?pool ~jobs
          (fun (c, failing, _, _) ->
            let p = (seed + c) mod programs in
            let session = Printf.sprintf "c%d" c in
            let latencies = ref [] and errors = ref 0 in
            let req id m params =
              ignore
                (request server latencies errors
                   (line ~id m (("session", Json.String session) :: params)))
            in
            req 3 "tree" [];
            if failing then begin
              req 4 "expand" [ ("row", Json.Int 0) ];
              req 5 "hover" [ ("row", Json.Int 0) ]
            end;
            req 6 "explain" [ ("failures", Json.Bool true) ];
            req 7 "reload" [ ("source", Json.String edited.(p)) ];
            req 8 "solve" [];
            (!latencies, !errors))
          cold_results
      in
      let hits2 = cache_hits () and misses2 = cache_misses () in
      let t_end = Telemetry.now_ns () in
      let latencies =
        List.concat_map (fun (_, _, ls, _) -> ls) cold_results
        @ List.concat_map fst warm_results
      in
      let errors =
        List.fold_left (fun a (_, _, _, e) -> a + e) 0 cold_results
        + List.fold_left (fun a (_, e) -> a + e) 0 warm_results
      in
      let sorted = Array.of_list latencies in
      Array.sort compare sorted;
      let requests = Array.length sorted in
      let wall_ns = max 1 (t_end - t_start) in
      let cold_hits = hits1 - hits0
      and cold_misses = misses1 - misses0
      and warm_hits = hits2 - hits1
      and warm_misses = misses2 - misses1 in
      {
        ls_clients = clients;
        ls_requests = requests;
        ls_errors = errors;
        ls_wall_ns = wall_ns;
        ls_throughput_rps =
          float_of_int requests /. (float_of_int wall_ns /. 1e9);
        ls_p50_ns = percentile sorted 50;
        ls_p99_ns = percentile sorted 99;
        ls_cold_hits = cold_hits;
        ls_cold_misses = cold_misses;
        ls_warm_hits = warm_hits;
        ls_warm_misses = warm_misses;
        ls_cold_hit_rate = rate cold_hits cold_misses;
        ls_warm_hit_rate = rate warm_hits warm_misses;
      })
