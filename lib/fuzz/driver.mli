(** The fuzzing campaign driver: generate → render → oracle matrix →
    (shrink) → repro file, with [fuzz.*] telemetry counters.

    Reproducibility: iteration [i] of a campaign over [~seed] depends
    only on [(seed, i, size)] ({!Gen.generate}), so a counterexample's
    header line is enough to regenerate it, and a saved [.trait] repro
    replays without the generator. *)

type counterexample = {
  cx_iter : int;
  cx_oracle : Oracle.name;
  cx_message : string;  (** the original (pre-shrink) failure *)
  cx_decls : int;  (** declarations in the reported program *)
  cx_source : string;  (** shrunk when shrinking ran, else as generated *)
  cx_file : string option;  (** repro path, when [out_dir] was given *)
}

type outcome = {
  o_iters : int;  (** iterations executed *)
  o_checks : int;  (** oracle invocations (including shrinking) *)
  o_counterexample : counterexample option;
}

(** Run a campaign: for each iteration, generate one program and run
    every oracle in [oracles] over it, stopping at the first
    counterexample (shrinking it first when [shrink]).  [progress] is
    called with a status line every 50 iterations.  [out_dir] (created
    if missing) receives [fuzz-<seed>-<iter>-<oracle>.trait] on a
    counterexample. *)
val run :
  ?pool:Pool.t ->
  ?out_dir:string ->
  ?shrink:bool ->
  ?size:int ->
  ?progress:(string -> unit) ->
  oracles:Oracle.name list ->
  iters:int ->
  seed:int ->
  unit ->
  outcome

(** Re-run the oracle matrix over a saved repro (or any L_TRAIT file):
    per-oracle verdicts, in [oracles] order. *)
val replay :
  ?pool:Pool.t ->
  oracles:Oracle.name list ->
  path:string ->
  unit ->
  (Oracle.name * Oracle.verdict) list

(** The repro-file header + source written for a counterexample. *)
val repro_contents :
  seed:int -> iter:int -> oracle:Oracle.name -> message:string -> source:string -> string
