(** Runtime telemetry: monotonic-clock spans, named counters, and
    log-bucketed latency histograms behind one globally-toggleable sink.

    The paper's evaluation (Fig. 12b) measures where pipeline time goes —
    DNF normalization time against inference-tree size — and the ROADMAP's
    perf items (sharding, caching, batching) all need a before/after story.
    This module is the substrate: every layer (solver, extraction, views,
    type checker) registers counters and spans at module initialization
    and records into them unconditionally; whether anything happens is a
    single global branch.

    Design constraints:

    - {b disabled is free}: with the sink off (the default), [incr],
      [observe], [begin_], and [end_] are one load + branch and allocate
      nothing, so instrumentation can live on hot solver paths;
    - {b handles, not strings}: instrumented modules resolve names to
      handles once at init ([let c = Telemetry.counter "unify.attempts"]),
      so the hot path never hashes;
    - {b monotonic time}: timestamps come from [CLOCK_MONOTONIC] (the same
      clock the bench harness uses), in integer nanoseconds — unboxed on
      64-bit, so reading the clock does not allocate either;
    - {b bounded traces}: span begin/end events land in a fixed-capacity
      buffer for Chrome-trace export; overflow is counted, never silent.

    The JSON exporter lives in {!Argus_json.Telemetry_export} (it needs the
    JSON library, which sits above this one in the dependency order). *)

(* ------------------------------------------------------------------ *)
(* The global sink toggle *)

let enabled_flag = ref false

let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

(** Monotonic nanoseconds.  [int] holds ±292 years of nanoseconds on
    64-bit platforms, and unlike [Int64.t] it never boxes. *)
let now_ns () = Int64.to_int (Monotonic_clock.clock_linux_get_time ())

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = { c_name : string; mutable c_value : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add counters name c;
      c

let incr c = if !enabled_flag then c.c_value <- c.c_value + 1
let add c n = if !enabled_flag then c.c_value <- c.c_value + n

(** High-water-mark semantics: keep the largest value ever recorded.
    Used for e.g. the obligation-queue length. *)
let record_max c n = if !enabled_flag && n > c.c_value then c.c_value <- n

let value c = c.c_value

(** Look a counter's current value up by name; 0 if never registered. *)
let counter_value name =
  match Hashtbl.find_opt counters name with Some c -> c.c_value | None -> 0

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms *)

(** Bucket [i] counts samples in [[2^(i-1), 2^i)] nanoseconds (bucket 0 is
    exactly zero).  64 buckets cover the whole [int] range. *)
let num_buckets = 64

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_buckets = Array.make num_buckets 0;
          h_count = 0;
          h_sum = 0;
          h_min = 0;
          h_max = 0;
        }
      in
      Hashtbl.add histograms name h;
      h

let bucket_of v =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  min (num_buckets - 1) (bits 0 v)

let observe h v =
  if !enabled_flag then begin
    let v = if v < 0 then 0 else v in
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1;
    if h.h_count = 0 || v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v
  end

(** Estimate the [q]-quantile (0 < q <= 1) from the buckets: find the
    bucket holding the rank-th sample and take its midpoint, clamped to
    the observed min/max so small sample counts stay exact. *)
let quantile h q =
  if h.h_count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let res = ref (float_of_int h.h_max) in
    let cum = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         cum := !cum + h.h_buckets.(i);
         if !cum >= rank then begin
           let lo = if i <= 1 then 0. else Float.ldexp 1. (i - 1) in
           let hi = Float.ldexp 1. i in
           res := (lo +. hi) /. 2.;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min (Float.max !res (float_of_int h.h_min)) (float_of_int h.h_max)
  end

(* ------------------------------------------------------------------ *)
(* Spans and the trace-event buffer *)

type phase = Span_begin | Span_end

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : int;  (** monotonic nanoseconds *)
  ev_depth : int;  (** nesting depth at emission, for sanity checks *)
}

(** Bounded trace buffer: 64k events (≈ 32k spans) per run.  Overflow
    increments [dropped_events] so exporters can report the truncation
    instead of silently losing the tail. *)
let max_events = 1 lsl 16

let ev_dummy = { ev_name = ""; ev_phase = Span_begin; ev_ts = 0; ev_depth = 0 }
let ev_buf = ref (Array.make 0 ev_dummy)
let ev_len = ref 0
let ev_dropped = ref 0
let span_depth = ref 0

let push_event e =
  if !ev_len >= max_events then Stdlib.incr ev_dropped
  else begin
    if !ev_len >= Array.length !ev_buf then begin
      let cap = max 256 (2 * Array.length !ev_buf) in
      let buf = Array.make (min cap max_events) ev_dummy in
      Array.blit !ev_buf 0 buf 0 !ev_len;
      ev_buf := buf
    end;
    !ev_buf.(!ev_len) <- e;
    Stdlib.incr ev_len
  end

(** A span handle: a static name plus the histogram its durations feed. *)
type span = { s_name : string; s_hist : histogram }

let span name = { s_name = name; s_hist = histogram name }

(** Open a span: returns the start timestamp, or [-1] when the sink is
    disabled (in which case the matching [end_] is a no-op even if the
    sink was enabled in between). *)
let begin_ s =
  if not !enabled_flag then -1
  else begin
    let t = now_ns () in
    push_event { ev_name = s.s_name; ev_phase = Span_begin; ev_ts = t; ev_depth = !span_depth };
    Stdlib.incr span_depth;
    t
  end

let end_ s t0 =
  if !enabled_flag && t0 >= 0 then begin
    let t = now_ns () in
    span_depth := max 0 (!span_depth - 1);
    push_event { ev_name = s.s_name; ev_phase = Span_end; ev_ts = t; ev_depth = !span_depth };
    observe s.s_hist (t - t0)
  end

let with_span s f =
  let t0 = begin_ s in
  Fun.protect ~finally:(fun () -> end_ s t0) f

let events () = Array.to_list (Array.sub !ev_buf 0 !ev_len)
let dropped_events () = !ev_dropped

(** Check strict begin/end nesting: every [Span_end] closes the most
    recently opened span of the same name.  Exporters and tests use this
    as the well-formedness invariant of a trace. *)
let well_formed_events evs =
  let rec go stack = function
    | [] -> stack = []
    | { ev_phase = Span_begin; ev_name; _ } :: rest -> go (ev_name :: stack) rest
    | { ev_phase = Span_end; ev_name; _ } :: rest -> (
        match stack with
        | top :: stack' when String.equal top ev_name -> go stack' rest
        | _ -> false)
  in
  go [] evs

(* ------------------------------------------------------------------ *)
(* Reset *)

(** Zero every counter, histogram, and the event buffer.  Handles held by
    instrumented modules stay valid — registries are mutated in place. *)
let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 num_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- 0;
      h.h_max <- 0)
    histograms;
  ev_len := 0;
  ev_dropped := 0;
  span_depth := 0

(* ------------------------------------------------------------------ *)
(* Snapshots and the human-readable report *)

type hist_summary = {
  hs_name : string;
  hs_count : int;
  hs_sum_ns : int;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_spans : hist_summary list;  (** sorted by name *)
  sn_events : event list;  (** in emission order *)
  sn_dropped : int;
}

let snapshot () =
  let cs =
    Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        {
          hs_name = name;
          hs_count = h.h_count;
          hs_sum_ns = h.h_sum;
          hs_p50 = quantile h 0.50;
          hs_p90 = quantile h 0.90;
          hs_p99 = quantile h 0.99;
        }
        :: acc)
      histograms []
    |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)
  in
  { sn_counters = cs; sn_spans = hs; sn_events = events (); sn_dropped = !ev_dropped }

let format_ns ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

(** The per-phase timing/counter table printed by [argus --profile].
    Every registered span and counter appears, including never-hit ones —
    a 0 row is information (that phase did not run), not noise. *)
let report_to_string ?(title = "telemetry report") sn =
  let b = Buffer.create 1024 in
  let rule = String.make 66 '-' in
  Buffer.add_string b (Printf.sprintf "-- %s %s\n" title (String.make (max 0 (62 - String.length title)) '-'));
  Buffer.add_string b
    (Printf.sprintf "%-34s %7s %10s %10s %10s %10s\n" "span" "count" "total" "p50" "p90" "p99");
  List.iter
    (fun h ->
      if h.hs_count = 0 then
        Buffer.add_string b (Printf.sprintf "%-34s %7d %10s %10s %10s %10s\n" h.hs_name 0 "-" "-" "-" "-")
      else
        Buffer.add_string b
          (Printf.sprintf "%-34s %7d %10s %10s %10s %10s\n" h.hs_name h.hs_count
             (format_ns (float_of_int h.hs_sum_ns))
             (format_ns h.hs_p50) (format_ns h.hs_p90) (format_ns h.hs_p99)))
    sn.sn_spans;
  Buffer.add_string b (rule ^ "\n");
  Buffer.add_string b (Printf.sprintf "%-34s %10s\n" "counter" "value");
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-34s %10d\n" name v))
    sn.sn_counters;
  Buffer.add_string b
    (Printf.sprintf "%d trace events buffered, %d dropped\n" (List.length sn.sn_events)
       sn.sn_dropped);
  Buffer.contents b
