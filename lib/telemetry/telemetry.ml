(** Runtime telemetry: monotonic-clock spans, named counters, and
    log-bucketed latency histograms behind one globally-toggleable sink.

    The paper's evaluation (Fig. 12b) measures where pipeline time goes —
    DNF normalization time against inference-tree size — and the ROADMAP's
    perf items (sharding, caching, batching) all need a before/after story.
    This module is the substrate: every layer (solver, extraction, views,
    type checker) registers counters and spans at module initialization
    and records into them unconditionally; whether anything happens is a
    single global branch.

    Design constraints:

    - {b disabled is free}: with the sink off (the default), [incr],
      [observe], [begin_], and [end_] are one load + branch and allocate
      nothing, so instrumentation can live on hot solver paths;
    - {b handles, not strings}: instrumented modules resolve names to
      handles once at init ([let c = Telemetry.counter "unify.attempts"]),
      so the hot path never hashes;
    - {b monotonic time}: timestamps come from [CLOCK_MONOTONIC] (the same
      clock the bench harness uses), in integer nanoseconds — unboxed on
      64-bit, so reading the clock does not allocate either;
    - {b bounded traces}: span begin/end events land in a fixed-capacity
      buffer for Chrome-trace export; overflow is counted, never silent;
    - {b domain-safe}: counters are atomic, histograms take a
      per-histogram mutex (enabled path only), and span/trace events
      accumulate in {e per-domain} buffers that a worker flushes into the
      merged trace with {!flush_domain_events} — so parallel batch
      solving records race-free without contending on every event.

    The JSON exporter lives in {!Argus_json.Telemetry_export} (it needs the
    JSON library, which sits above this one in the dependency order). *)

(* ------------------------------------------------------------------ *)
(* The global sink toggle *)

(* Atomic rather than a plain ref: worker domains must observe toggles
   made by the main domain between batches (e.g. the bench enabling
   telemetry for one counted run against a live pool). *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(** Monotonic nanoseconds.  [int] holds ±292 years of nanoseconds on
    64-bit platforms, and unlike [Int64.t] it never boxes. *)
let now_ns () = Int64.to_int (Monotonic_clock.clock_linux_get_time ())

(* Registration is rare (module init, mostly on the main domain before
   workers spawn), so one mutex over both registries suffices. *)
let registry_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = { c_name : string; c_value : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let incr c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value n)

(** High-water-mark semantics: keep the largest value ever recorded. *)
let record_max c n =
  if Atomic.get enabled_flag then begin
    let rec loop () =
      let cur = Atomic.get c.c_value in
      if n > cur && not (Atomic.compare_and_set c.c_value cur n) then loop ()
    in
    loop ()
  end

let value c = Atomic.get c.c_value

(** Look a counter's current value up by name; 0 if never registered. *)
let counter_value name =
  match
    with_lock registry_mutex (fun () -> Hashtbl.find_opt counters name)
  with
  | Some c -> Atomic.get c.c_value
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms *)

(** Bucket [i] counts samples in [[2^(i-1), 2^i)] nanoseconds (bucket 0 is
    exactly zero).  64 buckets cover the whole [int] range. *)
let num_buckets = 64

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;  (** guards every mutable field; enabled path only *)
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

let histogram name =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_mutex = Mutex.create ();
              h_buckets = Array.make num_buckets 0;
              h_count = 0;
              h_sum = 0;
              h_min = 0;
              h_max = 0;
            }
          in
          Hashtbl.add histograms name h;
          h)

let bucket_of v =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  min (num_buckets - 1) (bits 0 v)

let observe h v =
  if Atomic.get enabled_flag then begin
    let v = if v < 0 then 0 else v in
    let b = bucket_of v in
    with_lock h.h_mutex (fun () ->
        h.h_buckets.(b) <- h.h_buckets.(b) + 1;
        if h.h_count = 0 || v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum + v)
  end

(** Estimate the [q]-quantile (0 < q <= 1) from the buckets: find the
    bucket holding the rank-th sample and take its midpoint, clamped to
    the observed min/max so small sample counts stay exact. *)
let quantile h q =
  if h.h_count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let res = ref (float_of_int h.h_max) in
    let cum = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         cum := !cum + h.h_buckets.(i);
         if !cum >= rank then begin
           let lo = if i <= 1 then 0. else Float.ldexp 1. (i - 1) in
           let hi = Float.ldexp 1. i in
           res := (lo +. hi) /. 2.;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min (Float.max !res (float_of_int h.h_min)) (float_of_int h.h_max)
  end

(* ------------------------------------------------------------------ *)
(* Spans and the trace-event buffer *)

type phase = Span_begin | Span_end

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : int;  (** monotonic nanoseconds *)
  ev_depth : int;  (** nesting depth at emission, for sanity checks *)
}

(** Bounded trace buffer: 64k events (≈ 32k spans) per domain between
    flushes by default.  Overflow increments the dropped count so
    exporters can report the truncation instead of silently losing the
    tail.  The cap is configurable ([--trace-buffer N] in the CLI) for
    long runs that would otherwise truncate. *)
let default_max_events = 1 lsl 16

let max_events_ref = Atomic.make default_max_events
let max_events () = Atomic.get max_events_ref

(* Floor of 256 keeps the growth doubling in [push_event] sound and the
   buffer big enough to hold at least a few spans. *)
let set_max_events n = Atomic.set max_events_ref (max 256 n)

let ev_dummy = { ev_name = ""; ev_phase = Span_begin; ev_ts = 0; ev_depth = 0 }

(* Per-domain event state: the buffer, its length, the overflow count,
   and the span-nesting depth.  Workers record locally (no locks on the
   recording path) and publish with [flush_domain_events]. *)
type ev_state = {
  mutable buf : event array;
  mutable len : int;
  mutable dropped : int;
  mutable depth : int;
}

let ev_key : ev_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { buf = [||]; len = 0; dropped = 0; depth = 0 })

let ev_state () = Domain.DLS.get ev_key

(* Flushed per-domain segments, oldest flush first.  Each segment is
   internally well-formed (balanced begin/end), so the concatenation the
   exporters see respects the stack discipline too. *)
let merged_segments : event list list ref = ref []
let merged_dropped = ref 0
let merge_mutex = Mutex.create ()

let push_event st e =
  let max_events = max_events () in
  if st.len >= max_events then st.dropped <- st.dropped + 1
  else begin
    if st.len >= Array.length st.buf then begin
      let cap = max 256 (2 * Array.length st.buf) in
      let buf = Array.make (min cap max_events) ev_dummy in
      Array.blit st.buf 0 buf 0 st.len;
      st.buf <- buf
    end;
    st.buf.(st.len) <- e;
    st.len <- st.len + 1
  end

(** A span handle: a static name plus the histogram its durations feed. *)
type span = { s_name : string; s_hist : histogram }

let span name = { s_name = name; s_hist = histogram name }

(** Open a span: returns the start timestamp, or [-1] when the sink is
    disabled (in which case the matching [end_] is a no-op even if the
    sink was enabled in between). *)
let begin_ s =
  if not (Atomic.get enabled_flag) then -1
  else begin
    let st = ev_state () in
    let t = now_ns () in
    push_event st { ev_name = s.s_name; ev_phase = Span_begin; ev_ts = t; ev_depth = st.depth };
    st.depth <- st.depth + 1;
    t
  end

let end_ s t0 =
  if Atomic.get enabled_flag && t0 >= 0 then begin
    let st = ev_state () in
    let t = now_ns () in
    st.depth <- max 0 (st.depth - 1);
    push_event st { ev_name = s.s_name; ev_phase = Span_end; ev_ts = t; ev_depth = st.depth };
    observe s.s_hist (t - t0)
  end

let with_span s f =
  let t0 = begin_ s in
  Fun.protect ~finally:(fun () -> end_ s t0) f

let local_events st = Array.to_list (Array.sub st.buf 0 st.len)

(** Publish the calling domain's buffered events into the merged trace
    and clear the local buffer.  Worker domains call this after each
    task (the pool does it for them); the main domain's unflushed buffer
    is always visible through {!events}, so single-domain runs never
    need to flush. *)
let flush_domain_events () =
  let st = ev_state () in
  if st.len > 0 || st.dropped > 0 then begin
    let seg = local_events st in
    let dropped = st.dropped in
    st.len <- 0;
    st.dropped <- 0;
    with_lock merge_mutex (fun () ->
        if seg <> [] then merged_segments := !merged_segments @ [ seg ];
        merged_dropped := !merged_dropped + dropped)
  end

let events () =
  let merged = with_lock merge_mutex (fun () -> List.concat !merged_segments) in
  merged @ local_events (ev_state ())

let dropped_events () =
  with_lock merge_mutex (fun () -> !merged_dropped) + (ev_state ()).dropped

(** Check strict begin/end nesting: every [Span_end] closes the most
    recently opened span of the same name.  Exporters and tests use this
    as the well-formedness invariant of a trace. *)
let well_formed_events evs =
  let rec go stack = function
    | [] -> stack = []
    | { ev_phase = Span_begin; ev_name; _ } :: rest -> go (ev_name :: stack) rest
    | { ev_phase = Span_end; ev_name; _ } :: rest -> (
        match stack with
        | top :: stack' when String.equal top ev_name -> go stack' rest
        | _ -> false)
  in
  go [] evs

(* ------------------------------------------------------------------ *)
(* Reset *)

(** Zero every counter, histogram, the merged trace, and the calling
    domain's event buffer.  Handles held by instrumented modules stay
    valid — registries are mutated in place.  Worker domains flush after
    every task, so between batches their local buffers are already
    empty; a reset from the main domain therefore clears everything. *)
let reset () =
  with_lock registry_mutex (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
      Hashtbl.iter
        (fun _ h ->
          with_lock h.h_mutex (fun () ->
              Array.fill h.h_buckets 0 num_buckets 0;
              h.h_count <- 0;
              h.h_sum <- 0;
              h.h_min <- 0;
              h.h_max <- 0))
        histograms);
  with_lock merge_mutex (fun () ->
      merged_segments := [];
      merged_dropped := 0);
  let st = ev_state () in
  st.len <- 0;
  st.dropped <- 0;
  st.depth <- 0

(* ------------------------------------------------------------------ *)
(* Snapshots and the human-readable report *)

type hist_summary = {
  hs_name : string;
  hs_count : int;
  hs_sum_ns : int;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_spans : hist_summary list;  (** sorted by name *)
  sn_events : event list;  (** in emission order *)
  sn_dropped : int;
}

let snapshot () =
  let cs, hs =
    with_lock registry_mutex (fun () ->
        let cs =
          Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_value) :: acc) counters []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        let hs =
          Hashtbl.fold
            (fun name h acc ->
              with_lock h.h_mutex (fun () ->
                  {
                    hs_name = name;
                    hs_count = h.h_count;
                    hs_sum_ns = h.h_sum;
                    hs_p50 = quantile h 0.50;
                    hs_p90 = quantile h 0.90;
                    hs_p99 = quantile h 0.99;
                  })
              :: acc)
            histograms []
          |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)
        in
        (cs, hs))
  in
  { sn_counters = cs; sn_spans = hs; sn_events = events (); sn_dropped = dropped_events () }

let format_ns ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

(** The per-phase timing/counter table printed by [argus --profile].
    Every registered span and counter appears, including never-hit ones —
    a 0 row is information (that phase did not run), not noise. *)
let report_to_string ?(title = "telemetry report") sn =
  let b = Buffer.create 1024 in
  let rule = String.make 66 '-' in
  Buffer.add_string b (Printf.sprintf "-- %s %s\n" title (String.make (max 0 (62 - String.length title)) '-'));
  Buffer.add_string b
    (Printf.sprintf "%-34s %7s %10s %10s %10s %10s\n" "span" "count" "total" "p50" "p90" "p99");
  List.iter
    (fun h ->
      if h.hs_count = 0 then
        Buffer.add_string b (Printf.sprintf "%-34s %7d %10s %10s %10s %10s\n" h.hs_name 0 "-" "-" "-" "-")
      else
        Buffer.add_string b
          (Printf.sprintf "%-34s %7d %10s %10s %10s %10s\n" h.hs_name h.hs_count
             (format_ns (float_of_int h.hs_sum_ns))
             (format_ns h.hs_p50) (format_ns h.hs_p90) (format_ns h.hs_p99)))
    sn.sn_spans;
  Buffer.add_string b (rule ^ "\n");
  Buffer.add_string b (Printf.sprintf "%-34s %10s\n" "counter" "value");
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-34s %10d\n" name v))
    sn.sn_counters;
  Buffer.add_string b
    (Printf.sprintf "%d trace events buffered, %d dropped (buffer cap %d per domain)\n"
       (List.length sn.sn_events) sn.sn_dropped (max_events ()));
  if sn.sn_dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "WARNING: %d trace events dropped at the buffer cap; re-run with a larger --trace-buffer\n"
         sn.sn_dropped);
  Buffer.contents b
