(** Runtime telemetry: monotonic-clock spans, named counters, and
    log-bucketed latency histograms behind one globally-toggleable sink.

    With the sink disabled (the default) every recording operation is a
    single load + branch and allocates nothing, so instrumentation can sit
    on hot solver paths; see the implementation header for the full design
    constraints.  Chrome-trace JSON export lives in
    {!Argus_json.Telemetry_export}.

    Domain safety: counters are atomic, histograms lock per-histogram on
    the enabled path, and span/trace events accumulate per domain —
    worker domains publish theirs with {!flush_domain_events} (the
    domain pool does this automatically after every task). *)

(** {1 The global sink} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Zero every counter, histogram, and the trace buffer; registered
    handles stay valid. *)
val reset : unit -> unit

(** Monotonic nanoseconds ([CLOCK_MONOTONIC]); unboxed on 64-bit. *)
val now_ns : unit -> int

(** {1 Counters} *)

type counter

(** Find or register the counter with this name (idempotent). *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** High-water-mark semantics: keep the largest value ever recorded. *)
val record_max : counter -> int -> unit

val value : counter -> int

(** Current value by name; 0 if never registered. *)
val counter_value : string -> int

(** {1 Log-bucketed histograms} *)

type histogram

(** Find or register the histogram with this name (idempotent). *)
val histogram : string -> histogram

(** Record a nanosecond sample (negative values clamp to 0). *)
val observe : histogram -> int -> unit

(** Bucket-estimated [q]-quantile (0 < q <= 1), clamped to the observed
    min/max — exact for 0 or 1 samples, within one power of two beyond. *)
val quantile : histogram -> float -> float

(** {1 Spans and the trace-event buffer} *)

type phase = Span_begin | Span_end

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : int;  (** monotonic nanoseconds *)
  ev_depth : int;  (** nesting depth at emission *)
}

type span

(** A span handle: a static name plus the histogram its durations feed. *)
val span : string -> span

(** Open a span: emits a begin event and returns the start timestamp, or
    [-1] when disabled (making the matching [end_] a no-op). *)
val begin_ : span -> int

(** Close a span opened by [begin_]: emits the end event and records the
    duration into the span's histogram. *)
val end_ : span -> int -> unit

(** [with_span s f] wraps [f ()] in a span, closing it on exceptions. *)
val with_span : span -> (unit -> 'a) -> 'a

(** Buffered trace events: every flushed per-domain segment (in flush
    order) followed by the calling domain's unflushed buffer.  In a
    single-domain run this is simply the emission order. *)
val events : unit -> event list

(** Events discarded after a domain's buffer filled (bounded at
    {!max_events} per domain between flushes, 64k by default). *)
val dropped_events : unit -> int

(** The per-domain event-buffer cap currently in force. *)
val max_events : unit -> int

(** Resize the per-domain event-buffer cap (clamped to at least 256).
    Applies to events recorded after the call; already-buffered events
    are never discarded by shrinking.  Exposed as [--trace-buffer N] in
    the CLI. *)
val set_max_events : int -> unit

(** Publish the calling domain's buffered events into the merged trace
    and clear its local buffer.  Worker domains must call this before
    going idle for their events to appear in {!events}/{!snapshot};
    {!Pool} calls it after every task.  A no-op on an empty buffer. *)
val flush_domain_events : unit -> unit

(** Strict stack discipline: every end closes the most recent begin of
    the same name. *)
val well_formed_events : event list -> bool

(** {1 Snapshots and the report table} *)

type hist_summary = {
  hs_name : string;
  hs_count : int;
  hs_sum_ns : int;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_spans : hist_summary list;  (** sorted by name *)
  sn_events : event list;  (** in emission order *)
  sn_dropped : int;
}

val snapshot : unit -> snapshot

(** "1.23ms"-style human formatting of a nanosecond quantity. *)
val format_ns : float -> string

(** The per-phase timing/counter table printed by [argus --profile].
    Every registered span and counter appears, including never-hit ones. *)
val report_to_string : ?title:string -> snapshot -> string
