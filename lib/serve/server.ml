module Json = Argus_json.Json
module Rpc = Argus_json.Rpc

let c_requests = Telemetry.counter "serve.requests"
let c_errors = Telemetry.counter "serve.errors"
let c_sessions = Telemetry.counter "serve.sessions"
let c_solves = Telemetry.counter "serve.solves"
let c_reloads = Telemetry.counter "serve.reloads"
let c_batches = Telemetry.counter "serve.batches"

(* Everything a solve leaves behind for the read-only verbs: the
   rendered check report, the normalized search journal (explain /
   profile), and one extracted proof tree per failing goal (tree /
   expand / hover). *)
type solved = {
  sv_output : string;
  sv_issues : int;
  sv_journal : Journal.entry list;  (** ts normalized to 0, seq from 0 *)
  sv_trees : Argus.Proof_tree.t array;  (** failing goals, report order *)
}

type session = {
  ss_name : string;
  ss_session : Solver.Session.t;
  ss_lock : Mutex.t;
  mutable ss_source : string;
  mutable ss_solved : solved option;
  ss_views : (int, Argus.View_state.t) Hashtbl.t;  (** per failing goal *)
}

type t = {
  srv_cfg : Solver.Solve.config;
  srv_sessions : (string, session) Hashtbl.t;
  srv_lock : Mutex.t;
  srv_next : int Atomic.t;
  srv_down : bool Atomic.t;
}

let create ?(cfg = Solver.Solve.default_config) () =
  {
    srv_cfg = cfg;
    srv_sessions = Hashtbl.create 8;
    srv_lock = Mutex.create ();
    srv_next = Atomic.make 1;
    srv_down = Atomic.make false;
  }

let shutting_down t = Atomic.get t.srv_down

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Param accessors: every getter returns [Error] with a -32602 object
   naming the offending member, so bad-params responses are uniform. *)

let invalid msg = Rpc.error_obj ~code:Rpc.invalid_params msg

let member name params =
  match params with Some p -> Json.member name p | None -> None

let opt_string name params =
  match member name params with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (invalid (Printf.sprintf "param `%s` must be a string" name))

let opt_int name params =
  match member name params with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int n) -> Ok (Some n)
  | Some _ -> Error (invalid (Printf.sprintf "param `%s` must be an integer" name))

let opt_bool name params =
  match member name params with
  | None | Some Json.Null -> Ok None
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (invalid (Printf.sprintf "param `%s` must be a boolean" name))

let req_string name params =
  match opt_string name params with
  | Ok (Some s) -> Ok s
  | Ok None -> Error (invalid (Printf.sprintf "missing required param `%s`" name))
  | Error e -> Error e

let req_int name params =
  match opt_int name params with
  | Ok (Some n) -> Ok n
  | Ok None -> Error (invalid (Printf.sprintf "missing required param `%s`" name))
  | Error e -> Error e

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Loading: same error strings as the CLI's load path, so load-failure
   responses match what `argus check` prints to stderr. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_program ~file source =
  try Ok (Trait_lang.Resolve.program_of_string ~file source) with
  | Trait_lang.Parser.Error e ->
      Error
        (Printf.sprintf "%s: parse error: %s"
           (Trait_lang.Span.to_string e.span)
           e.message)
  | Trait_lang.Resolve.Error e ->
      Error
        (Printf.sprintf "%s: %s"
           (Trait_lang.Span.to_string (Trait_lang.Resolve.error_span e))
           (Trait_lang.Resolve.error_message e))

(* [source]/[path] params: inline text wins (with [path] still naming
   the spans); otherwise the file is read.  Returns (file, source). *)
let source_of_params params =
  let* source = opt_string "source" params in
  let* path = opt_string "path" params in
  match (source, path) with
  | Some src, p -> Ok (Option.value p ~default:"<serve>", src)
  | None, Some p -> (
      match read_file p with
      | src -> Ok (p, src)
      | exception Sys_error m -> Error (Rpc.error_obj ~code:Rpc.load_error m))
  | None, None -> Error (invalid "need `source` or `path`")

(* ------------------------------------------------------------------ *)
(* Result payloads *)

let delta_json (d : Solver.Session.delta) =
  Json.Obj
    [
      ("changed", Json.Int d.d_changed);
      ("evicted", Json.Int d.d_evicted);
      ("survived", Json.Int d.d_survived);
      ("rebased", Json.Int d.d_rebased);
    ]

let expander_string = function
  | Argus.Render.Open -> "open"
  | Argus.Render.Closed -> "closed"
  | Argus.Render.Leaf -> "leaf"

let view_json ~goal vs =
  let lines =
    List.map
      (fun (l : Argus.Render.line) ->
        Json.Obj
          [
            ("row", Json.Int l.index);
            ("node", Json.Int l.node);
            ("indent", Json.Int l.indent);
            ("expander", Json.String (expander_string l.expander));
            ("text", Json.String l.text);
          ])
      (Argus.Render.view vs)
  in
  let minibuffer =
    List.map (fun s -> Json.String s) (Argus.View_state.minibuffer vs)
  in
  Json.Obj
    [
      ("goal", Json.Int goal);
      ("lines", Json.List lines);
      ("minibuffer", Json.List minibuffer);
    ]

(* ------------------------------------------------------------------ *)
(* Session lookup *)

let find_session t name =
  match with_lock t.srv_lock (fun () -> Hashtbl.find_opt t.srv_sessions name) with
  | Some s -> Ok s
  | None ->
      Error (Rpc.error_obj ~code:Rpc.unknown_session ("unknown session: " ^ name))

let solved_of s =
  match s.ss_solved with
  | Some sv -> Ok sv
  | None ->
      Error
        (Rpc.error_obj ~code:Rpc.not_solved
           (Printf.sprintf "session `%s` has no solve result yet; call `solve` first"
              s.ss_name))

(* ------------------------------------------------------------------ *)
(* Verbs *)

let handle_open t params =
  let* file, source = source_of_params params in
  let* name = opt_string "session" params in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "s%d" (Atomic.fetch_and_add t.srv_next 1)
  in
  match parse_program ~file source with
  | Error m -> Error (Rpc.error_obj ~code:Rpc.load_error m)
  | Ok program ->
      let* session =
        with_lock t.srv_lock (fun () ->
            if Hashtbl.mem t.srv_sessions name then
              Error
                (Rpc.error_obj ~code:Rpc.session_exists
                   ("session already exists: " ^ name))
            else begin
              let s =
                {
                  ss_name = name;
                  ss_session = Solver.Session.create ~cfg:t.srv_cfg ();
                  ss_lock = Mutex.create ();
                  ss_source = source;
                  ss_solved = None;
                  ss_views = Hashtbl.create 4;
                }
              in
              Hashtbl.add t.srv_sessions name s;
              Telemetry.incr c_sessions;
              Ok s
            end)
      in
      with_lock session.ss_lock (fun () ->
          let delta = Solver.Session.edit session.ss_session program in
          Ok
            (Json.Obj
               [
                 ("session", Json.String name);
                 ("delta", delta_json delta);
                 ("goals", Json.Int (List.length (Trait_lang.Program.goals program)));
               ]))

let handle_reload t params =
  Telemetry.incr c_reloads;
  let* name = req_string "session" params in
  let* s = find_session t name in
  let* file, source = source_of_params params in
  with_lock s.ss_lock (fun () ->
      (* An unchanged source re-uses the already-resolved Program value:
         program stamps are fresh per parse, so re-parsing would defeat
         the stamp-equality short-circuit in Session.edit and evict the
         whole cache for a no-op save. *)
      let program =
        if String.equal source s.ss_source then
          match Solver.Session.program s.ss_session with
          | Some p -> Ok p
          | None -> parse_program ~file source
        else parse_program ~file source
      in
      match program with
      | Error m -> Error (Rpc.error_obj ~code:Rpc.load_error m)
      | Ok program ->
          let noop =
            match Solver.Session.program s.ss_session with
            | Some old ->
                Trait_lang.Program.stamp old = Trait_lang.Program.stamp program
            | None -> false
          in
          let delta = Solver.Session.edit s.ss_session program in
          s.ss_source <- source;
          s.ss_solved <- None;
          Hashtbl.reset s.ss_views;
          Ok
            (Json.Obj
               [ ("delta", delta_json delta); ("noop", Json.Bool noop) ]))

let handle_solve t params =
  Telemetry.incr c_solves;
  let* name = req_string "session" params in
  let* s = find_session t name in
  with_lock s.ss_lock (fun () ->
      match Solver.Session.program s.ss_session with
      | None -> Error (Rpc.error_obj ~code:Rpc.load_error "no program loaded")
      | Some program ->
          (* Resolve and render inside one journal window, mirroring the
             CLI's check_unit: the type-check pass inside the renderer
             generates obligations that journal through the same
             machinery, so event order matches `argus check
             --events-out` byte for byte. *)
          let (output, issues), entries =
            Journal.with_memory_sink (fun () ->
                let report = Solver.Session.resolve s.ss_session in
                Check_render.run ~profile_pipeline:(Telemetry.enabled ()) program
                  report)
          in
          let entries =
            List.mapi
              (fun i (e : Journal.entry) ->
                Journal.shift_entry ~seq:i ~ids:0 ~snaps:0 { e with Journal.ts_ns = 0 })
              entries
          in
          let report = Option.get (Solver.Session.report s.ss_session) in
          let trees =
            report.Solver.Obligations.reports
            |> List.filter (fun (r : Solver.Obligations.goal_report) ->
                   r.status <> Solver.Obligations.Proved)
            |> List.map Argus.Extract.of_report
            |> Array.of_list
          in
          s.ss_solved <-
            Some { sv_output = output; sv_issues = issues; sv_journal = entries; sv_trees = trees };
          Hashtbl.reset s.ss_views;
          Ok
            (Json.Obj
               [ ("output", Json.String output); ("issues", Json.Int issues) ]))

let handle_tree t params =
  let* name = req_string "session" params in
  let* s = find_session t name in
  let* dir = opt_string "direction" params in
  let* direction =
    match dir with
    | None | Some "bottom-up" -> Ok Argus.View_state.Bottom_up
    | Some "top-down" -> Ok Argus.View_state.Top_down
    | Some other ->
        Error (invalid (Printf.sprintf "unknown direction %S" other))
  in
  with_lock s.ss_lock (fun () ->
      let* sv = solved_of s in
      let buf = Buffer.create 256 in
      Array.iter
        (fun tree ->
          Buffer.add_string buf (Argus.Render.tree_to_string ~direction tree);
          Buffer.add_string buf "\n\n")
        sv.sv_trees;
      Ok (Json.Obj [ ("output", Json.String (Buffer.contents buf)) ]))

(* expand/hover share everything but the state transition applied to the
   addressed node. *)
let handle_view_op t params op =
  let* name = req_string "session" params in
  let* s = find_session t name in
  let* goal = opt_int "goal" params in
  let goal = Option.value goal ~default:0 in
  let* row = req_int "row" params in
  with_lock s.ss_lock (fun () ->
      let* sv = solved_of s in
      if goal < 0 || goal >= Array.length sv.sv_trees then
        Error
          (invalid
             (Printf.sprintf "no failing goal %d (session has %d)" goal
                (Array.length sv.sv_trees)))
      else begin
        let vs =
          match Hashtbl.find_opt s.ss_views goal with
          | Some vs -> vs
          | None -> Argus.View_state.create sv.sv_trees.(goal)
        in
        let lines = Argus.Render.view vs in
        match
          List.find_opt (fun (l : Argus.Render.line) -> l.index = row) lines
        with
        | None -> Error (invalid (Printf.sprintf "no such row %d" row))
        | Some l ->
            let vs =
              if l.node = Argus.Render.others_row then
                Argus.View_state.toggle_others vs
              else op vs l.node
            in
            Hashtbl.replace s.ss_views goal vs;
            Ok (view_json ~goal vs)
      end)

let handle_explain t params =
  let* name = req_string "session" params in
  let* s = find_session t name in
  let* failures = opt_bool "failures" params in
  let failures = Option.value failures ~default:false in
  let* node = opt_int "node" params in
  with_lock s.ss_lock (fun () ->
      let* sv = solved_of s in
      match Journal.replay sv.sv_journal with
      | Error m ->
          Error (Rpc.error_obj ~code:Rpc.load_error ("inconsistent journal: " ^ m))
      | Ok tree -> (
          let output =
            match node with
            | Some id -> Explain_render.node tree id
            | None ->
                if failures then Ok (Explain_render.failures tree)
                else
                  Ok
                    (Explain_render.summary
                       ~entries:(List.length sv.sv_journal) tree)
          in
          match output with
          | Error m -> Error (invalid m)
          | Ok out -> Ok (Json.Obj [ ("output", Json.String out) ])))

let handle_profile t params =
  let* name = req_string "session" params in
  let* s = find_session t name in
  let* top = opt_int "top" params in
  let top = Option.value top ~default:10 in
  with_lock s.ss_lock (fun () ->
      let* sv = solved_of s in
      let prof = Profile.of_entries sv.sv_journal in
      Ok
        (Json.Obj
           [
             ("output", Json.String (Profile.top_table ~top prof));
             ("total_ns", Json.Int prof.Profile.total_ns);
             ("zero_ts", Json.Bool prof.Profile.zero_ts);
           ]))

let handle_shutdown t _params =
  Atomic.set t.srv_down true;
  Ok (Json.Obj [ ("ok", Json.Bool true) ])

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let dispatch t rpc_method params =
  match rpc_method with
  | "open" -> handle_open t params
  | "reload" -> handle_reload t params
  | "solve" -> handle_solve t params
  | "tree" -> handle_tree t params
  | "expand" -> handle_view_op t params Argus.View_state.expand
  | "hover" -> handle_view_op t params Argus.View_state.hover
  | "explain" -> handle_explain t params
  | "profile" -> handle_profile t params
  | "shutdown" -> handle_shutdown t params
  | m ->
      Error (Rpc.error_obj ~code:Rpc.method_not_found ("method not found: " ^ m))

let handle_line t line =
  Telemetry.incr c_requests;
  match Rpc.request_of_line line with
  | Error e ->
      Telemetry.incr c_errors;
      (* parse / invalid-request failures answer with id null per spec *)
      Some (Rpc.response_to_line (Rpc.fail Rpc.Null_id e))
  | Ok req ->
      let result =
        if shutting_down t && req.Rpc.rpc_method <> "shutdown" then
          Error (Rpc.error_obj ~code:Rpc.shutting_down "server is shutting down")
        else dispatch t req.Rpc.rpc_method req.Rpc.rpc_params
      in
      if Result.is_error result then Telemetry.incr c_errors;
      (match req.Rpc.rpc_id with
      | None -> None  (* notification: no response, even on error *)
      | Some id ->
          let resp =
            match result with
            | Ok v -> Rpc.ok id v
            | Error e -> Rpc.fail id e
          in
          Some (Rpc.response_to_line resp))

let handle_batch ?pool ?(jobs = 1) t items =
  Telemetry.incr c_batches;
  (* Group by client, preserving each client's request order; one
     worker owns a whole client group, which is the per-session
     serialization that keeps per-client streams deterministic. *)
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iteri
    (fun i (client, line) ->
      match Hashtbl.find_opt tbl client with
      | None ->
          order := client :: !order;
          Hashtbl.add tbl client (ref [ (i, line) ])
      | Some r -> r := (i, line) :: !r)
    items;
  let groups =
    List.rev_map (fun c -> (c, List.rev !(Hashtbl.find tbl c))) !order
  in
  let results =
    Pool.run ?pool ~jobs
      (fun (client, reqs) ->
        List.map (fun (i, line) -> (i, client, handle_line t line)) reqs)
      groups
  in
  let n = List.length items in
  let arr = Array.make n (0, None) in
  List.iter (List.iter (fun (i, c, r) -> arr.(i) <- (c, r))) results;
  Array.to_list arr
