(** The [argus check] report renderer, factored out of the CLI so the
    serve protocol's [solve] verb produces byte-identical output: both
    call {!run} on the same program/report pair, so equivalence is by
    construction rather than by parallel maintenance of two printers.

    The rendering order is part of the journal contract: callers that
    record events must run the solve {e and} this renderer inside one
    sink window (the type-checking pass at the end generates obligations
    that solve — and journal — through the same machinery). *)

(** [run program report] renders coherence errors (E0119/E0117/E0277),
    per-goal status lines with rustc-style diagnostics for failures, and
    the function-body type-check report (E0308/E0599 plus obligations).
    Returns the buffered output and the issue count ([argus check] exits
    1 when it is non-zero).

    [no_coherence] skips the declaration-level checks.
    [profile_pipeline] additionally exercises the Argus ranking and
    rendering pipeline on failing goals so [--profile] telemetry covers
    those phases; output is unchanged. *)
val run :
  ?no_coherence:bool ->
  ?profile_pipeline:bool ->
  Trait_lang.Program.t ->
  Solver.Obligations.report ->
  string * int
