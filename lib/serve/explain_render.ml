(* Moved verbatim from the CLI's explain subcommand (buffered instead of
   printed) so `argus explain` and the serve protocol's `explain` verb
   share one narrator. *)

let pp_pred = Trait_lang.Pretty.predicate

let cand_line buf ~indent (c : Journal.rcand) =
  let status =
    match c.Journal.rc_failure with
    | Some f ->
        Printf.sprintf "rejected: %s%s" (Journal.failure_to_string f)
          (match Journal.rejecting_unify c with
          | Some e -> Printf.sprintf " (unify event seq %d)" e.Journal.seq
          | None -> "")
    | None -> Journal.res_to_string c.Journal.rc_result
  in
  Printf.bprintf buf "%s- candidate #%d %s — %s\n" indent c.Journal.rc_id
    (Journal.source_to_string c.Journal.rc_source)
    status

(* Under --timings, [prof] maps stable node IDs to wall-time figures
   attributed from the journal's ts_ns deltas. *)
let time_suffix prof id =
  match Option.bind prof (fun p -> Profile.heat_of_id p id) with
  | Some (_, label) -> Printf.sprintf "  [%s]" label
  | None -> ""

let print_goal buf ?prof (t : Journal.replay_tree) (g : Journal.rgoal) =
  let bpf fmt = Printf.bprintf buf fmt in
  bpf "goal #%d: %s\n" g.Journal.rg_id (pp_pred g.Journal.rg_pred);
  bpf "  result: %s\n" (Journal.res_to_string g.Journal.rg_result);
  bpf "  depth: %d\n" g.Journal.rg_depth;
  bpf "  provenance: %s\n" (Journal.prov_to_string g.Journal.rg_prov);
  (match Option.bind prof (fun p -> Profile.heat_of_id p g.Journal.rg_id) with
  | Some (_, label) -> bpf "  time: %s\n" label
  | None -> ());
  if g.Journal.rg_flags <> [] then
    bpf "  flags: %s\n"
      (String.concat ", " (List.map Journal.flag_to_string g.Journal.rg_flags));
  (* ancestry: walk rt_parent to the root, innermost first *)
  let rec chain acc id =
    match Hashtbl.find_opt t.Journal.rt_parent id with
    | None -> acc
    | Some p -> chain (p :: acc) p
  in
  (match chain [] g.Journal.rg_id with
  | [] -> ()
  | ancestors ->
      bpf "  within:\n";
      List.iter
        (fun id ->
          match Hashtbl.find_opt t.Journal.rt_goals id with
          | Some a ->
              bpf "    goal #%d %s [%s]\n" id (pp_pred a.Journal.rg_pred)
                (Journal.res_to_string a.Journal.rg_result)
          | None -> (
              match Hashtbl.find_opt t.Journal.rt_cands id with
              | Some c ->
                  bpf "    candidate #%d %s\n" id
                    (Journal.source_to_string c.Journal.rc_source)
              | None -> ()))
        ancestors);
  match g.Journal.rg_cands with
  | [] -> ()
  | cands ->
      bpf "  candidates (%d):\n" (List.length cands);
      List.iter (cand_line buf ~indent:"    ") cands

let print_cand buf ?prof (t : Journal.replay_tree) (c : Journal.rcand) =
  let bpf fmt = Printf.bprintf buf fmt in
  bpf "candidate #%d: %s\n" c.Journal.rc_id
    (Journal.source_to_string c.Journal.rc_source);
  bpf "  result: %s\n" (Journal.res_to_string c.Journal.rc_result);
  (match Option.bind prof (fun p -> Profile.heat_of_id p c.Journal.rc_id) with
  | Some (_, label) -> bpf "  time: %s\n" label
  | None -> ());
  (match Hashtbl.find_opt t.Journal.rt_parent c.Journal.rc_id with
  | Some p -> (
      match Hashtbl.find_opt t.Journal.rt_goals p with
      | Some g -> bpf "  for goal: #%d %s\n" p (pp_pred g.Journal.rg_pred)
      | None -> ())
  | None -> ());
  (match c.Journal.rc_failure with
  | Some f ->
      bpf "  rejected: %s\n" (Journal.failure_to_string f);
      (match Journal.rejecting_unify c with
      | Some e -> bpf "  rejecting unify event: seq %d\n" e.Journal.seq
      | None -> ())
  | None -> ());
  bpf "  subgoals: %d\n" (List.length c.Journal.rc_subgoals)

let summary ?prof ~entries (tree : Journal.replay_tree) =
  let buf = Buffer.create 256 in
  let failed = List.concat_map Journal.failed_leaves tree.Journal.rt_roots in
  Printf.bprintf buf "journal: %d events, %d roots, %d goals, %d failed leaves\n"
    entries
    (List.length tree.Journal.rt_roots)
    (Hashtbl.length tree.Journal.rt_goals)
    (List.length failed);
  List.iter
    (fun (root : Journal.rgoal) ->
      Printf.bprintf buf "  root #%d [%s] %s%s\n" root.Journal.rg_id
        (Journal.res_to_string root.Journal.rg_result)
        (pp_pred root.Journal.rg_pred)
        (time_suffix prof root.Journal.rg_id))
    tree.Journal.rt_roots;
  if failed <> [] then
    Buffer.add_string buf
      "hint: `argus explain --failures` narrates the failed leaves; `argus \
       explain --node ID` drills into one node\n";
  Buffer.contents buf

let failures ?prof (tree : Journal.replay_tree) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (root : Journal.rgoal) ->
      match Journal.failed_leaves root with
      | [] -> ()
      | leaves ->
          Printf.bprintf buf "root #%d: %s [%s]%s\n" root.Journal.rg_id
            (pp_pred root.Journal.rg_pred)
            (Journal.res_to_string root.Journal.rg_result)
            (time_suffix prof root.Journal.rg_id);
          List.iter
            (fun (g : Journal.rgoal) ->
              Printf.bprintf buf "  failed leaf #%d: %s%s\n" g.Journal.rg_id
                (pp_pred g.Journal.rg_pred)
                (time_suffix prof g.Journal.rg_id);
              List.iter
                (fun (c : Journal.rcand) ->
                  if c.Journal.rc_failure <> None then cand_line buf ~indent:"    " c)
                g.Journal.rg_cands)
            leaves)
    tree.Journal.rt_roots;
  Buffer.contents buf

let node ?prof (tree : Journal.replay_tree) id =
  match
    ( Hashtbl.find_opt tree.Journal.rt_goals id,
      Hashtbl.find_opt tree.Journal.rt_cands id )
  with
  | Some g, _ ->
      let buf = Buffer.create 256 in
      print_goal buf ?prof tree g;
      Ok (Buffer.contents buf)
  | None, Some c ->
      let buf = Buffer.create 256 in
      print_cand buf ?prof tree c;
      Ok (Buffer.contents buf)
  | None, None -> Error (Printf.sprintf "no event node with ID %d" id)
