(** The [argus explain] narrative renderer, factored out of the CLI so
    the serve protocol's [explain] verb produces byte-identical output
    for the same replayed journal.

    [prof] (from {!Profile.of_entries} on a journal with real
    timestamps) adds the [--timings] wall-time annotations; omit it for
    plain output. *)

(** The default overview: the header line ([journal: N events, ...]),
    one line per root goal, and the drill-down hint when there are
    failed leaves.  [entries] is the count of journal entries (the
    replay tree does not retain it). *)
val summary : ?prof:Profile.t -> entries:int -> Journal.replay_tree -> string

(** The [--failures] narrative: every failed leaf goal under each root,
    with its rejecting candidates. *)
val failures : ?prof:Profile.t -> Journal.replay_tree -> string

(** The [--node ID] drill-down for a goal or candidate node.  [Error]
    carries the CLI's no-such-node message. *)
val node : ?prof:Profile.t -> Journal.replay_tree -> int -> (string, string) result
