(** The [argus serve] daemon core: a method registry over per-client
    logical sessions, speaking newline-delimited JSON-RPC 2.0
    ({!Argus_json.Rpc}).  Transport (stdio / Unix socket / TCP) lives in
    the CLI; this module is transport-free so the conformance tests, the
    fuzz oracle, and the load generator drive it in-process.

    {b Verbs} (see docs/SERVE.md for the wire schema):
    - [open]: create a named session from source text or a file path
      (parse + {!Solver.Session.edit}; no solve yet);
    - [reload]: feed an edited version through the red-green rebase
      ({!Solver.Session.edit} + [Eval_cache.rebase]); reports the
      [{changed, evicted, survived, rebased}] delta, and an unchanged
      source is a stamp-equal no-op (zero evictions);
    - [solve]: resolve and render the [argus check] report (recording
      the search journal for [explain]/[profile]);
    - [tree]: the fully-expanded proof-tree page per failing goal
      ([argus bottom-up] / [top-down] output);
    - [expand] / [hover]: view-state-machine interactions over a failing
      goal's view, addressed by display row;
    - [explain]: the journal narrative ([argus explain] output);
    - [profile]: the per-goal cost table ([argus profile] on the
      journal);
    - [shutdown]: stop accepting work (later requests get error
      [-32003]).

    {b Determinism contract}: one session's response stream is a pure
    function of its request stream — the interner, eval cache, and
    fast-reject indexes are shared across sessions and requests, but
    cache warmth is response-invisible (the PR 3 replay contract), and
    journal/snapshot counters are domain-local and reset per solve.  So
    [solve]/[tree]/[explain] payloads are byte-identical to the
    equivalent one-shot CLI run, however many sessions interleave. *)

type t

(** [create ()] — an empty server with no sessions.  [cfg] is the solver
    configuration every session solves under. *)
val create : ?cfg:Solver.Solve.config -> unit -> t

(** Has [shutdown] been received?  Transports use this to stop their
    accept/read loop after draining the current request. *)
val shutting_down : t -> bool

(** Handle one request line.  [None] means no response is due (the line
    was a notification — a request without an [id]).  Never raises:
    malformed lines produce JSON-RPC error responses. *)
val handle_line : t -> string -> string option

(** Handle a batch of [(client, line)] requests concurrently on the
    domain pool: requests are grouped by client, each client's group
    runs in order on one worker (per-session serialization), and results
    return in input order.  [jobs] as in {!Pool.run}; [jobs <= 1] with
    no pool is the exact sequential path. *)
val handle_batch :
  ?pool:Pool.t -> ?jobs:int -> t -> (int * string) list -> (int * string option) list

(** The JSON payload of an [expand]/[hover] response for a given view
    state — exposed so tests and the fuzz oracle can build reference
    payloads from an independently-driven {!Argus.View_state}. *)
val view_json : goal:int -> Argus.View_state.t -> Argus_json.Json.t
