(* Moved verbatim from the CLI's check_unit so `argus check` and the
   serve protocol's `solve` verb share one printer. *)

let run ?(no_coherence = false) ?(profile_pipeline = false) program
    (report : Solver.Obligations.report) =
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.bprintf buf fmt in
  let issues = ref 0 in
  (* declaration-level checks first: overlap, orphan rule, impl WF *)
  if not no_coherence then begin
    List.iter
      (fun (o : Solver.Coherence.overlap) ->
        incr issues;
        bpf "error[E0119]: conflicting implementations of trait `%s` for type `%s`\n"
          (Trait_lang.Path.name o.trait_)
          (Trait_lang.Pretty.ty o.witness))
      (Solver.Coherence.check program);
    List.iter
      (fun (o : Solver.Coherence.orphan) ->
        incr issues;
        bpf
          "error[E0117]: only traits defined in the current crate can be implemented \
           for arbitrary types (`%s` for `%s` at %s)\n"
          (Trait_lang.Path.to_string o.o_trait)
          (Trait_lang.Pretty.ty o.o_self)
          (Trait_lang.Span.to_string o.o_impl.impl_span))
      (Solver.Coherence.orphan_violations program);
    List.iter
      (fun (f : Solver.Coherence.wf_failure) ->
        incr issues;
        bpf
          "error[E0277]: the associated type binding `%s` does not satisfy `%s` (%s)\n"
          f.wf_assoc
          (Trait_lang.Pretty.trait_ref f.wf_bound)
          (Trait_lang.Span.to_string f.wf_impl.impl_span))
      (Solver.Coherence.check_impl_wf program)
  end;
  let print_goal_report (r : Solver.Obligations.goal_report) =
    let status =
      match r.status with
      | Solver.Obligations.Proved -> "ok"
      | Solver.Obligations.Disproved -> "ERROR"
      | Solver.Obligations.Ambiguous -> "AMBIGUOUS"
    in
    bpf "[%s] %s\n" status (Trait_lang.Pretty.predicate r.final.pred);
    if r.status <> Solver.Obligations.Proved then begin
      incr issues;
      let tree = Argus.Extract.of_report r in
      (* report the goal as the solver last saw it (inference holes
         filled in), not as the source wrote it *)
      let goal = { r.goal with Trait_lang.Program.goal_pred = r.final.pred } in
      let diag = Rustc_diag.Diagnostic.of_tree program goal tree in
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Rustc_diag.Diagnostic.to_string diag);
      Buffer.add_char buf '\n';
      (* under --profile, also exercise the Argus pipeline (DNF ranking +
         rendering) so the report covers those phases *)
      if profile_pipeline then begin
        ignore (Argus.Inertia.rank tree);
        ignore (Argus.Render.tree_to_string tree)
      end
    end
  in
  List.iter print_goal_report report.reports;
  (* type-check fn bodies: the obligations they generate run through the
     same machinery *)
  let tc = Typeck.Infer.check_program program in
  List.iter
    (fun (fr : Typeck.Infer.fn_report) ->
      bpf "fn %s:\n" (Trait_lang.Path.name fr.fr_fn.fn_path);
      List.iter
        (fun (e : Typeck.Infer.type_error) ->
          incr issues;
          bpf "error[E0308]: %s\n  --> %s\n" e.te_message
            (Trait_lang.Span.to_string e.te_span))
        fr.fr_type_errors;
      List.iter
        (fun (p : Typeck.Infer.probe) ->
          if p.p_chosen = None then begin
            incr issues;
            bpf "error[E0599]: no method named `%s` found for `%s`; probed candidates:\n"
              p.p_method
              (Trait_lang.Pretty.ty p.p_recv_ty);
            List.iter
              (fun tree ->
                Buffer.add_string buf
                  (Argus.Render.tree_to_string ~direction:Argus.View_state.Top_down tree);
                Buffer.add_char buf '\n')
              (Argus.Extract.of_probe p.p_nodes)
          end)
        fr.fr_probes;
      List.iter print_goal_report fr.fr_obligations)
    tc.fr_fns;
  (Buffer.contents buf, !issues)
