(** Propositional formulas over failing predicates.

    §3.3: "we treat the AND/OR tree as a propositional logic formula and
    normalize it into disjunctive-normal form."  Variables are the
    *innermost* failing predicates; a goal with failing candidates is the
    OR of its candidates, a candidate the AND of its subgoals, satisfied
    subtrees are [True], and candidates rejected outright (head mismatch
    with no failing subgoals) contribute nothing fixable below them —
    making their *parent goal* the variable when every candidate is
    rejected that way. *)

open Trait_lang

type t =
  | True
  | False
  | Var of int  (** interned predicate id *)
  | And of t list
  | Or of t list

(** Predicate interning: the same obligation can appear at several tree
    nodes (e.g. around a cycle); for MCS purposes it is one variable. *)
type interner = {
  ids : (string, int) Hashtbl.t;
  mutable entries : (Predicate.t * Proof_tree.node_id) list;  (** newest first *)
  mutable next : int;
}

let interner () = { ids = Hashtbl.create 32; entries = []; next = 0 }

let key_of (p : Predicate.t) = Pretty.predicate ~cfg:Pretty.verbose p

let intern it p node_id =
  let key = key_of p in
  match Hashtbl.find_opt it.ids key with
  | Some i -> i
  | None ->
      let id = it.next in
      it.next <- id + 1;
      Hashtbl.add it.ids key id;
      it.entries <- (p, node_id) :: it.entries;
      id

let entry it i = List.nth it.entries (it.next - 1 - i)

(** The predicate behind variable [i]. *)
let var_predicate it i = fst (entry it i)

(** The first tree node carrying variable [i]'s predicate. *)
let var_node it i = snd (entry it i)

let num_vars it = it.next

(* ------------------------------------------------------------------ *)

let sp_of_tree = Telemetry.span "formula.of_tree"

(** Build the formula for a failed proof tree.  The formula is satisfied
    exactly when the root goal would become provable. *)
let of_tree (tree : Proof_tree.t) : t * interner =
  let tok = Telemetry.begin_ sp_of_tree in
  let it = interner () in
  let rec goal (n : Proof_tree.node) : t =
    match n.kind with
    | Proof_tree.Cand _ -> assert false
    | Proof_tree.Goal g ->
        if Solver.Res.is_yes g.result then True
        else begin
          (* candidates that could be fixed by fixing their subgoals *)
          let cands = Proof_tree.children tree n in
          let fixable =
            List.filter_map
              (fun (c : Proof_tree.node) ->
                match c.kind with
                | Proof_tree.Goal _ -> None
                | Proof_tree.Cand ci ->
                    if Solver.Res.is_yes ci.cand_result then Some True
                    else
                      let subs = Proof_tree.children tree c in
                      let failing_subs =
                        List.filter
                          (fun s -> Proof_tree.is_goal s && Proof_tree.is_failed s)
                          subs
                      in
                      (* A candidate rejected at the head (or at its
                         associated-type term) with no failing subgoal
                         cannot be repaired from below. *)
                      if failing_subs = [] then None
                      else Some (And (List.map goal failing_subs)))
              cands
          in
          if fixable = [] then Var (intern it g.pred n.id) else Or fixable
        end
  in
  let f = goal (Proof_tree.root tree) in
  Telemetry.end_ sp_of_tree tok;
  (f, it)

(** Evaluate under an assignment (used by the qcheck equivalence tests
    between a formula and its DNF). *)
let rec eval assign = function
  | True -> true
  | False -> false
  | Var i -> assign i
  | And fs -> List.for_all (eval assign) fs
  | Or fs -> List.exists (eval assign) fs

let rec vars = function
  | True | False -> []
  | Var i -> [ i ]
  | And fs | Or fs -> List.concat_map vars fs

let rec size = function
  | True | False | Var _ -> 1
  | And fs | Or fs -> 1 + List.fold_left (fun a f -> a + size f) 0 fs

let rec pp ppf = function
  | True -> Fmt.string ppf "T"
  | False -> Fmt.string ppf "F"
  | Var i -> Fmt.pf ppf "x%d" i
  | And fs -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any " & ") pp) fs
  | Or fs -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any " | ") pp) fs
