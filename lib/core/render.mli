(** Terminal renderer for the Argus views.

    Produces structured lines (row index, node id, indent, text) so
    interactive front ends can map user actions ("expand row 3") back
    onto {!View_state} operations — the same contract the VS Code webview
    has with its DOM. *)

type expander = Open | Closed | Leaf

(** The synthetic row id of the "Other failures ..." fold (Fig. 9a);
    route its expansion to {!View_state.toggle_others}. *)
val others_row : Proof_tree.node_id

type line = {
  index : int;  (** display row number *)
  node : Proof_tree.node_id;  (** [others_row] for the fold row *)
  indent : int;
  expander : expander;
  text : string;
}

(** Row text for a single node under the view's printing options. *)
val node_text : View_state.t -> Proof_tree.node -> string

(** Render the current view to lines.  [annot] appends a bracketed
    per-node suffix to the row text — e.g. [explain --timings] supplies
    per-goal self/total wall time from the journal. *)
val view : ?annot:(Proof_tree.node -> string option) -> View_state.t -> line list

val line_to_string : line -> string

(** Render the whole view as one string, minibuffer included. *)
val to_string : ?annot:(Proof_tree.node -> string option) -> View_state.t -> string

(** Fully-expanded one-shot rendering of a tree (what the
    non-interactive CLI prints). *)
val tree_to_string :
  ?direction:View_state.direction ->
  ?ranker:Heuristics.ranker ->
  ?show_all_predicates:bool ->
  ?annot:(Proof_tree.node -> string option) ->
  Proof_tree.t ->
  string
