(** The idealized trait inference tree that Argus visualizes.

    This is the cleaned-up AND/OR tree of Fig. 5, produced from the raw
    solver {!Solver.Trace} by {!Extract}.  It is stored as a flat arena
    with parent pointers, because the two view projections walk it in
    opposite directions: top-down follows [children], bottom-up starts
    from {!failed_leaves} and follows [parent]. *)

open Trait_lang

type node_id = int

type goal_info = {
  pred : Predicate.t;
  result : Solver.Res.t;
  provenance : Solver.Trace.provenance;
  is_overflow : bool;
  is_stateful : bool;  (** a captured [NormalizesTo] node (§4) *)
  is_user_visible : bool;  (** hidden unless the predicate toggle is on *)
  depth : int;  (** goal depth in the inference tree *)
  trace_id : int;  (** journal event ID of the originating goal; < 0 if none *)
}

type cand_info = {
  source : Solver.Trace.cand_source;
  cand_result : Solver.Res.t;
  failure : Solver.Unify.failure option;
  cand_trace_id : int;  (** journal event ID of the candidate; < 0 if none *)
}

type kind = Goal of goal_info | Cand of cand_info

type node = { id : node_id; kind : kind; parent : node_id option; children : node_id list }

type t = { nodes : node array; root : node_id }

let root t = t.nodes.(t.root)
let node t id = t.nodes.(id)
let size t = Array.length t.nodes

let parent t (n : node) = Option.map (fun p -> t.nodes.(p)) n.parent
let children t (n : node) = List.map (fun c -> t.nodes.(c)) n.children

let result_of (n : node) =
  match n.kind with Goal g -> g.result | Cand c -> c.cand_result

let is_goal (n : node) = match n.kind with Goal _ -> true | Cand _ -> false

let goal_info (n : node) = match n.kind with Goal g -> Some g | Cand _ -> None
let cand_info (n : node) = match n.kind with Cand c -> Some c | Goal _ -> None

let is_failed (n : node) = not (Solver.Res.is_yes (result_of n))

(** Number of goal nodes (Fig. 12b's tree-size metric). *)
let goal_count t =
  Array.fold_left (fun acc n -> if is_goal n then acc + 1 else acc) 0 t.nodes

let fold f acc t = Array.fold_left f acc t.nodes

(** All failed goal nodes. *)
let failed_goals t =
  fold (fun acc n -> if is_goal n && is_failed n then n :: acc else acc) [] t |> List.rev

(** The innermost failed goals: failed goals none of whose descendant
    goals fail.  These are the roots of the bottom-up view (§3.2.1) and
    the candidate root causes the inertia heuristic ranks. *)
let failed_leaves t =
  let rec has_failed_descendant (n : node) =
    List.exists
      (fun cid ->
        let c = t.nodes.(cid) in
        match c.kind with
        | Goal _ -> is_failed c || has_failed_descendant c
        | Cand _ -> has_failed_descendant c)
      n.children
  in
  failed_goals t |> List.filter (fun n -> not (has_failed_descendant n))

(** The goal-ancestors of a node, innermost first, ending at the root. *)
let ancestors t (n : node) =
  let rec up acc id =
    match t.nodes.(id).parent with
    | None -> List.rev acc
    | Some p ->
        let pn = t.nodes.(p) in
        up (if is_goal pn then pn :: acc else acc) p
  in
  List.rev (up [] n.id)

(** Distance in goal steps between two nodes along parent links (used by
    the Fig. 12a comparison against the compiler's reported error). *)
let goal_distance t (a : node) (b : node) =
  let path_to_root (n : node) =
    let rec up acc id =
      let node = t.nodes.(id) in
      let acc = if is_goal node then id :: acc else acc in
      match node.parent with None -> acc | Some p -> up acc p
    in
    up [] n.id
  in
  let pa = path_to_root a and pb = path_to_root b in
  (* longest common prefix from the root *)
  let rec common n (xs : int list) (ys : int list) =
    match (xs, ys) with
    | x :: xs', y :: ys' when x = y -> common (n + 1) xs' ys'
    | _ -> n
  in
  let c = common 0 pa pb in
  List.length pa - c + (List.length pb - c)

(* ------------------------------------------------------------------ *)
(* Construction *)

type builder = { mutable rev_nodes : node list; mutable next : int }

let builder () = { rev_nodes = []; next = 0 }

let add_node b ~parent kind children_of =
  let id = b.next in
  b.next <- id + 1;
  (* children are added by recursion; we patch the list afterwards *)
  let children = children_of id in
  b.rev_nodes <- { id; kind; parent; children } :: b.rev_nodes;
  id

let build b ~root =
  let tbl = Hashtbl.create (max 16 b.next) in
  List.iter (fun n -> Hashtbl.replace tbl n.id n) b.rev_nodes;
  let nodes = Array.init b.next (fun i -> Hashtbl.find tbl i) in
  { nodes; root }
