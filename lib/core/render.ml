(** Terminal renderer for the Argus views.

    Produces structured lines (row index, node id, indent, text) so that
    the interactive CLI can map user actions ("expand row 3") back onto
    {!View_state} operations — the same contract the VS Code webview has
    with its DOM. *)

open Trait_lang

type expander = Open | Closed | Leaf

(** The synthetic row id of the "Other failures ..." fold (Fig. 9a);
    interactive front ends route expansion of this row to
    {!View_state.toggle_others} rather than a tree node. *)
let others_row : Proof_tree.node_id = -1

type line = {
  index : int;  (** display row number *)
  node : Proof_tree.node_id;  (** [others_row] for the fold row *)
  indent : int;
  expander : expander;
  text : string;
}

let icon (r : Solver.Res.t) =
  match r with Solver.Res.Yes -> "✓" | Solver.Res.No -> "✗" | Solver.Res.Maybe -> "?"

let goal_text (vs : View_state.t) (n : Proof_tree.node) (g : Proof_tree.goal_info) =
  let cfg = View_state.pretty_config vs n.id in
  let overflow = if g.is_overflow then " ⟳ overflow" else "" in
  Printf.sprintf "%s %s%s" (icon g.result) (Pretty.predicate ~cfg g.pred) overflow

let cand_text (vs : View_state.t) (n : Proof_tree.node) (c : Proof_tree.cand_info) =
  let cfg = View_state.pretty_config vs n.id in
  let base =
    match c.source with
    | Solver.Trace.Cand_impl impl -> Pretty.impl_header ~cfg impl
    | Solver.Trace.Cand_param_env p ->
        Printf.sprintf "where-clause `%s`" (Pretty.predicate ~cfg p)
    | Solver.Trace.Cand_builtin b -> Printf.sprintf "builtin impl (%s)" b
  in
  let failure =
    match c.failure with
    | Some f when not (Solver.Res.is_yes c.cand_result) ->
        Printf.sprintf " — %s" (Solver.Unify.failure_to_string ~cfg f)
    | _ -> ""
  in
  Printf.sprintf "%s %s%s" (icon c.cand_result) base failure

let node_text vs (n : Proof_tree.node) =
  match n.kind with
  | Proof_tree.Goal g -> goal_text vs n g
  | Proof_tree.Cand c -> cand_text vs n c

let sp_render = Telemetry.span "render"
let sp_view = Telemetry.span "render.view"
let c_lines = Telemetry.counter "render.lines.max"

(** Render the current view to lines.  [annot] appends a per-node
    suffix to the row text (e.g. [explain --timings] cost figures). *)
let view ?(annot : (Proof_tree.node -> string option) option) (vs : View_state.t) :
    line list =
  let tok = Telemetry.begin_ sp_view in
  let lines = ref [] in
  let index = ref 0 in
  let emit node indent expander text =
    let l = { index = !index; node; indent; expander; text } in
    incr index;
    lines := l :: !lines
  in
  let annotated n =
    let base = node_text vs n in
    match Option.bind annot (fun f -> f n) with
    | Some suffix -> base ^ "  [" ^ suffix ^ "]"
    | None -> base
  in
  let rec walk indent (n : Proof_tree.node) =
    let children = View_state.visible_children vs n in
    let expander =
      if children = [] then Leaf
      else if View_state.is_expanded vs n.id then Open
      else Closed
    in
    emit n.id indent expander (annotated n);
    if expander = Open then List.iter (walk (indent + 1)) children
  in
  let shown, folded = View_state.roots_split vs in
  List.iter (walk 0) shown;
  if folded <> [] then
    emit others_row 0 Closed (Printf.sprintf "Other failures (%d) ..." (List.length folded));
  let out = List.rev !lines in
  Telemetry.record_max c_lines (List.length out);
  Telemetry.end_ sp_view tok;
  out

let expander_glyph = function Open -> "▼" | Closed -> "▶" | Leaf -> "·"

let line_to_string (l : line) =
  Printf.sprintf "%s%s %s" (String.make (2 * l.indent) ' ') (expander_glyph l.expander) l.text

(** Render the whole view as one string, with the minibuffer (hover
    paths) appended when active. *)
let to_string ?annot (vs : View_state.t) : string =
  let tok = Telemetry.begin_ sp_render in
  let header =
    match vs.direction with
    | View_state.Bottom_up -> "── Bottom Up ──"
    | View_state.Top_down -> "── Top Down ──"
  in
  let body = view ?annot vs |> List.map line_to_string in
  let mini =
    match View_state.minibuffer vs with
    | [] -> []
    | paths -> "── Definition Paths ──" :: paths
  in
  let s = String.concat "\n" ((header :: body) @ mini) in
  Telemetry.end_ sp_render tok;
  s

(** Convenience: fully expanded one-shot rendering of a tree in a given
    direction (what the non-interactive CLI prints). *)
let tree_to_string ?(direction = View_state.Bottom_up) ?(ranker = Heuristics.by_inertia)
    ?(show_all_predicates = false) ?annot tree =
  let vs = View_state.create ~direction ~ranker tree in
  let vs = if show_all_predicates then View_state.toggle_all_predicates vs else vs in
  to_string ?annot (View_state.expand_all vs)
