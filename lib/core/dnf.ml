(** Disjunctive-normal-form normalization of failure formulas.

    Each conjunct of the DNF is a *minimum correction subset* (MCS): a set
    of failing predicates that, if they held, would make the root
    obligation provable (§3.3).

    Normalization is the exponential step whose cost Fig. 12b measures.
    Two standard reductions keep it tractable in practice:
    - {b deduplication}: conjuncts are canonical sorted variable sets;
    - {b absorption}: a conjunct that is a superset of another conjunct is
      dropped ([x ∨ (x ∧ y) = x]), which also makes every surviving
      conjunct minimal. *)

(** A conjunct: a sorted, deduplicated list of variable ids. *)
type conjunct = int list

(** A DNF: a list of conjuncts.  [[]] is the unsatisfiable formula;
    [[[]]] (one empty conjunct) is the trivially true formula. *)
type t = conjunct list

let conj_union (a : conjunct) (b : conjunct) : conjunct =
  List.sort_uniq Int.compare (a @ b)

let conj_subset (a : conjunct) (b : conjunct) =
  List.for_all (fun x -> List.mem x b) a

(** Drop duplicate and absorbed (superset) conjuncts. *)
let minimize (d : t) : t =
  let d = List.sort_uniq compare d in
  List.filter
    (fun c -> not (List.exists (fun c' -> c' <> c && conj_subset c' c) d))
    d

(** Cross product of two DNFs, for AND. *)
let cross (a : t) (b : t) : t =
  minimize (List.concat_map (fun ca -> List.map (fun cb -> conj_union ca cb) b) a)

type config = { minimize_eagerly : bool }

let default_config = { minimize_eagerly = true }

let sp_normalize = Telemetry.span "dnf.normalize"
let c_conjuncts = Telemetry.counter "dnf.conjuncts.max"

(** Normalize a formula into DNF.  With [minimize_eagerly] off (the
    ablation bench), absorption runs only once at the end.

    This is the exponential step Fig. 12b measures; the [dnf.normalize]
    span is its wall-clock cost per call. *)
let of_formula ?(cfg = default_config) (f : Formula.t) : t =
  let tok = Telemetry.begin_ sp_normalize in
  let fin d = if cfg.minimize_eagerly then minimize d else d in
  let rec go : Formula.t -> t = function
    | Formula.True -> [ [] ]
    | Formula.False -> []
    | Formula.Var i -> [ [ i ] ]
    | Formula.Or fs -> fin (List.concat_map go fs)
    | Formula.And fs ->
        List.fold_left (fun acc f -> let d = go f in
          if cfg.minimize_eagerly then cross acc d
          else List.concat_map (fun ca -> List.map (conj_union ca) d) acc)
          [ [] ] fs
  in
  let d = minimize (go f) in
  Telemetry.record_max c_conjuncts (List.length d);
  Telemetry.end_ sp_normalize tok;
  d

(** Evaluate a DNF under an assignment (for the equivalence property
    tests against {!Formula.eval}). *)
let eval assign (d : t) = List.exists (List.for_all assign) d

let num_conjuncts (d : t) = List.length d

let pp ppf (d : t) =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:(Fmt.any " | ") (fun ppf c ->
         Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ",") Fmt.int) c))
    d
