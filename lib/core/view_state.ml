(** The pure state machine behind the Argus interface.

    The paper's interface principles are interaction semantics over the
    proof tree; this module implements them front-end-agnostically (the
    paper notes the interface "can also be embedded in other contexts").
    The terminal renderer ({!Render}) and the interactive CLI drive this
    state; a graphical front end could drive it identically.

    - CollapseSeq (§3.2.1): [expanded] tracks which nodes are unfolded;
      both views start collapsed and are unfolded node by node.
    - ShortTys (§3.2.2): types render shortened by default;
      [ty_expanded] marks nodes whose ellipses were clicked open, and
      [show_paths] switches to fully-qualified paths.
    - CtxtLinks (§3.2.3): [hovered] selects the node whose definition
      paths appear in the minibuffer.
    - TreeData (§3.2.4): [direction] chooses the bottom-up or top-down
      projection; bottom-up roots are ordered by [ranker]. *)

module IntSet = Set.Make (Int)

type direction = Bottom_up | Top_down

type t = {
  tree : Proof_tree.t;
  direction : direction;
  expanded : IntSet.t;
  ty_expanded : IntSet.t;
  show_paths : bool;
  show_all_predicates : bool;  (** the §4 internal-predicate toggle *)
  hovered : Proof_tree.node_id option;
  ranker : Heuristics.ranker;
  others_threshold : int;
      (** bottom-up roots beyond this rank fold under "Other failures ..."
          (Fig. 9a) *)
  others_expanded : bool;
}

let create ?(direction = Bottom_up) ?(ranker = Heuristics.by_inertia)
    ?(others_threshold = 3) tree =
  {
    tree;
    direction;
    expanded = IntSet.empty;
    ty_expanded = IntSet.empty;
    show_paths = false;
    show_all_predicates = false;
    hovered = None;
    ranker;
    others_threshold;
    others_expanded = false;
  }

let is_expanded t id = IntSet.mem id t.expanded

let toggle_expand t id =
  {
    t with
    expanded =
      (if IntSet.mem id t.expanded then IntSet.remove id t.expanded
       else IntSet.add id t.expanded);
  }

let expand t id = { t with expanded = IntSet.add id t.expanded }
let collapse t id = { t with expanded = IntSet.remove id t.expanded }

let expand_all t =
  let all =
    Proof_tree.fold (fun acc (n : Proof_tree.node) -> IntSet.add n.id acc) IntSet.empty t.tree
  in
  { t with expanded = all; others_expanded = true }

let collapse_all t = { t with expanded = IntSet.empty }

let set_direction t direction = { t with direction }
let set_ranker t ranker = { t with ranker }

let is_ty_expanded t id = IntSet.mem id t.ty_expanded

(** Click an ellipsis: reveal the node's hidden generic arguments. *)
let toggle_ty_expand t id =
  {
    t with
    ty_expanded =
      (if IntSet.mem id t.ty_expanded then IntSet.remove id t.ty_expanded
       else IntSet.add id t.ty_expanded);
  }

let toggle_paths t = { t with show_paths = not t.show_paths }
let toggle_all_predicates t = { t with show_all_predicates = not t.show_all_predicates }

let hover t id = { t with hovered = Some id }
let unhover t = { t with hovered = None }

(** Unfold / fold the "Other failures ..." group of the bottom-up view. *)
let toggle_others t = { t with others_expanded = not t.others_expanded }

(** The pretty-printer configuration a node renders under. *)
let pretty_config t id : Trait_lang.Pretty.config =
  {
    Trait_lang.Pretty.default with
    qualified_paths = t.show_paths;
    max_depth = (if is_ty_expanded t id then 1000 else 2);
  }

(** Should this goal node be shown at all?  Stateful normalization nodes
    and compiler-internal predicates are hidden unless toggled (§4). *)
let node_visible t (n : Proof_tree.node) =
  match n.kind with
  | Proof_tree.Cand _ -> true
  | Proof_tree.Goal g ->
      t.show_all_predicates || (g.is_user_visible && not g.is_stateful)

(* ------------------------------------------------------------------ *)
(* Projections *)

(** Visible children of a node in the current direction.  In top-down this
    is the tree's child list (with hidden nodes' visible descendants
    spliced in); in bottom-up it is the parent chain. *)
let rec visible_children t (n : Proof_tree.node) : Proof_tree.node list =
  match t.direction with
  | Top_down ->
      Proof_tree.children t.tree n
      |> List.concat_map (fun c ->
             if node_visible t c then [ c ] else visible_children t c)
  | Bottom_up -> (
      match Proof_tree.parent t.tree n with
      | None -> []
      | Some p -> if node_visible t p then [ p ] else visible_children t p)

(** The roots of the current view: the tree root for top-down, the
    ranked failing leaves for bottom-up (all of them, before the
    "Other failures" fold is applied by the renderer). *)
let roots t : Proof_tree.node list =
  match t.direction with
  | Top_down -> [ Proof_tree.root t.tree ]
  | Bottom_up -> t.ranker.rank t.tree |> List.filter (node_visible t)

(** Bottom-up roots split into (shown, folded-behind-"Other failures").
    Everything is shown when the fold is open, the view is top-down, or
    the tail would hold a single entry. *)
let roots_split t : Proof_tree.node list * Proof_tree.node list =
  let all = roots t in
  if t.direction = Top_down || t.others_expanded then (all, [])
  else begin
    let rec split n = function
      | rest when n = 0 -> ([], rest)
      | [] -> ([], [])
      | x :: rest ->
          let shown, folded = split (n - 1) rest in
          (x :: shown, folded)
    in
    let shown, folded = split t.others_threshold all in
    match folded with [ _ ] -> (all, []) | _ -> (shown, folded)
  end

(** Minibuffer content for the hovered node: the fully-qualified
    definition paths of the symbols it mentions (Fig. 7a). *)
let minibuffer t : string list =
  match t.hovered with
  | None -> []
  | Some id -> Ctxlinks.definition_paths (Proof_tree.node t.tree id)
