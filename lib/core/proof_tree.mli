(** The idealized trait inference tree that Argus visualizes.

    This is the cleaned-up AND/OR tree of the paper's Fig. 5, produced
    from the raw solver {!Solver.Trace} by {!Extract}.  It is stored as a
    flat arena with parent pointers because the two view projections walk
    it in opposite directions: top-down follows children, bottom-up
    starts from {!failed_leaves} and follows parents. *)

open Trait_lang

type node_id = int

type goal_info = {
  pred : Predicate.t;
  result : Solver.Res.t;
  provenance : Solver.Trace.provenance;
  is_overflow : bool;  (** E0275 / depth limit *)
  is_stateful : bool;  (** a captured [NormalizesTo] node (§4) *)
  is_user_visible : bool;  (** hidden unless the predicate toggle is on *)
  depth : int;  (** goal depth in the inference tree *)
  trace_id : int;
      (** stable journal event ID of the originating [Goal_enter]/[Goal_exit]
          pair ({!Solver.Trace.goal_node.gid}); negative when the node has no
          originating event (synthetic trees) *)
}

type cand_info = {
  source : Solver.Trace.cand_source;
  cand_result : Solver.Res.t;
  failure : Solver.Unify.failure option;
  cand_trace_id : int;
      (** stable journal event ID of the originating candidate frame
          ({!Solver.Trace.cand_node.cid}); negative when none *)
}

type kind = Goal of goal_info | Cand of cand_info

type node = { id : node_id; kind : kind; parent : node_id option; children : node_id list }

type t

(** {1 Access} *)

val root : t -> node
val node : t -> node_id -> node

(** Total number of nodes (goals and candidates). *)
val size : t -> int

(** Number of goal nodes — the Fig. 12b tree-size metric. *)
val goal_count : t -> int

val parent : t -> node -> node option
val children : t -> node -> node list
val result_of : node -> Solver.Res.t
val is_goal : node -> bool
val goal_info : node -> goal_info option
val cand_info : node -> cand_info option
val is_failed : node -> bool
val fold : ('a -> node -> 'a) -> 'a -> t -> 'a

(** All failed goal nodes, in id order. *)
val failed_goals : t -> node list

(** The innermost failed goals: failed goals none of whose descendant
    goals fail.  These root the bottom-up view (§3.2.1) and are the
    candidate root causes the inertia heuristic ranks. *)
val failed_leaves : t -> node list

(** The goal-ancestors of a node, innermost first, ending at the root. *)
val ancestors : t -> node -> node list

(** Distance in goal steps between two nodes along parent links (the
    Fig. 12a metric against the compiler's reported error). *)
val goal_distance : t -> node -> node -> int

(** {1 Construction}

    Builders are used by {!Extract} and {!Synthetic}: children are
    supplied by a callback receiving the fresh node's id, so trees are
    built top-down in one pass. *)

type builder

val builder : unit -> builder
val add_node : builder -> parent:node_id option -> kind -> (node_id -> node_id list) -> node_id
val build : builder -> root:node_id -> t
