(** Extraction: turning raw solver traces into the idealized tree.

    §4 of the paper identifies three gaps between the trait solver's
    output and "the beautiful AND/OR tree" of Fig. 5, and this module
    bridges each of them:

    1. {b Predicate snapshots}: the fixpoint re-evaluates ambiguous
       predicates, so a goal has several trace trees over time.  We apply
       the *implication heuristic*: an earlier snapshot is dropped when a
       later snapshot's predicate is an instance of it (the earlier one
       was just a less-inferred version of the same obligation).
    2. {b Speculative predicates}: probing predicates from method
       resolution look like real obligations; failed speculative subtrees
       whose sibling succeeded are dropped.
    3. {b Stateful nodes}: [NormalizesTo] predicates behave like function
       calls — the node is marked stateful so views can collapse it to its
       captured value rather than showing a misleading subtree. *)

open Trait_lang

let sp_extract = Telemetry.span "extract"
let c_pruned = Telemetry.counter "extract.speculative_pruned"
let c_deduped = Telemetry.counter "extract.snapshots_deduped"

(** One-sided matching: does [general] become [specific] under some
    assignment of [general]'s inference variables?  (The implication
    heuristic: [specific] implies [general] as an obligation snapshot.) *)
let generalizes ~(general : Predicate.t) ~(specific : Predicate.t) : bool =
  let bindings : (int, Ty.t) Hashtbl.t = Hashtbl.create 8 in
  let rec m_ty (g : Ty.t) (s : Ty.t) =
    match (g, s) with
    | Ty.Infer i, _ -> (
        match Hashtbl.find_opt bindings i with
        | Some prev -> Ty.equal prev s
        | None ->
            Hashtbl.add bindings i s;
            true)
    | Ty.Unit, Ty.Unit
    | Ty.Bool, Ty.Bool
    | Ty.Int, Ty.Int
    | Ty.Uint, Ty.Uint
    | Ty.Float, Ty.Float
    | Ty.Str, Ty.Str ->
        true
    | Ty.Param a, Ty.Param b -> String.equal a b
    | Ty.Ref (_, a), Ty.Ref (_, b) | Ty.RefMut (_, a), Ty.RefMut (_, b) -> m_ty a b
    | Ty.Ctor (p1, a1), Ty.Ctor (p2, a2) -> Path.equal p1 p2 && m_args a1 a2
    | Ty.Tuple a, Ty.Tuple b -> List.length a = List.length b && List.for_all2 m_ty a b
    | Ty.FnPtr (a1, r1), Ty.FnPtr (a2, r2) ->
        List.length a1 = List.length a2 && List.for_all2 m_ty a1 a2 && m_ty r1 r2
    | Ty.FnItem (p1, a1, r1), Ty.FnItem (p2, a2, r2) ->
        Path.equal p1 p2
        && List.length a1 = List.length a2
        && List.for_all2 m_ty a1 a2 && m_ty r1 r2
    | Ty.Dynamic t1, Ty.Dynamic t2 -> Path.equal t1.trait t2.trait && m_args t1.args t2.args
    | Ty.Proj p1, Ty.Proj p2 -> m_proj p1 p2
    | _ -> false
  and m_args a b =
    List.length a = List.length b
    && List.for_all2
         (fun x y ->
           match (x, y) with
           | Ty.Ty tx, Ty.Ty ty -> m_ty tx ty
           | Ty.Lifetime _, Ty.Lifetime _ -> true
           | _ -> false)
         a b
  and m_proj (p1 : Ty.projection) (p2 : Ty.projection) =
    Path.equal p1.proj_trait.trait p2.proj_trait.trait
    && String.equal p1.assoc p2.assoc
    && m_ty p1.self_ty p2.self_ty
    && m_args p1.proj_trait.args p2.proj_trait.args
  in
  match (general, specific) with
  | Predicate.Trait g, Predicate.Trait s ->
      Path.equal g.trait_ref.trait s.trait_ref.trait
      && m_ty g.self_ty s.self_ty
      && m_args g.trait_ref.args s.trait_ref.args
  | Predicate.Projection g, Predicate.Projection s ->
      m_proj g.projection s.projection && m_ty g.term s.term
  | g, s -> Predicate.equal g s

(** The implication heuristic over a goal's evolution: keep an attempt
    only if no *later* attempt is a more-instantiated snapshot of it. *)
let dedup_attempts (attempts : Solver.Trace.goal_node list) : Solver.Trace.goal_node list =
  let rec keep = function
    | [] -> []
    | (a : Solver.Trace.goal_node) :: rest ->
        if
          List.exists
            (fun (later : Solver.Trace.goal_node) ->
              generalizes ~general:a.pred ~specific:later.pred)
            rest
        then begin
          Telemetry.incr c_deduped;
          keep rest
        end
        else a :: keep rest
  in
  keep attempts

(* ------------------------------------------------------------------ *)
(* Lowering a trace tree into the arena. *)

let goal_info_of (g : Solver.Trace.goal_node) : Proof_tree.goal_info =
  {
    pred = g.pred;
    result = g.result;
    provenance = g.provenance;
    is_overflow = Solver.Trace.is_overflow g;
    is_stateful = Solver.Trace.has_flag Solver.Trace.Stateful g;
    is_user_visible = Predicate.is_user_visible g.pred;
    depth = g.depth;
    trace_id = g.gid;
  }

(** Drop failed speculative siblings when another candidate/goal at the
    same level succeeded (§4: "Argus uses a heuristic [...] and attempts
    to show as few as possible"). *)
let prune_speculative (goals : Solver.Trace.goal_node list) : Solver.Trace.goal_node list =
  let any_success =
    List.exists (fun (g : Solver.Trace.goal_node) -> Solver.Res.is_yes g.result) goals
  in
  if not any_success then goals
  else
    List.filter
      (fun (g : Solver.Trace.goal_node) ->
        let keep =
          Solver.Res.is_yes g.result
          || not (Solver.Trace.has_flag Solver.Trace.Speculative g)
        in
        if not keep then Telemetry.incr c_pruned;
        keep)
      goals

let of_trace (trace : Solver.Trace.goal_node) : Proof_tree.t =
  let tok = Telemetry.begin_ sp_extract in
  let b = Proof_tree.builder () in
  let rec add_goal parent (g : Solver.Trace.goal_node) =
    Proof_tree.add_node b ~parent (Proof_tree.Goal (goal_info_of g)) (fun id ->
        List.map (add_cand (Some id)) g.candidates)
  and add_cand parent (c : Solver.Trace.cand_node) =
    Proof_tree.add_node b ~parent
      (Proof_tree.Cand
         {
           source = c.source;
           cand_result = c.cand_result;
           failure = c.failure;
           cand_trace_id = c.cid;
         })
      (fun id -> List.map (add_goal (Some id)) (prune_speculative c.subgoals))
  in
  let root = add_goal None trace in
  let tree = Proof_tree.build b ~root in
  Telemetry.end_ sp_extract tok;
  tree

(** Extract the final idealized tree for a goal report, after snapshot
    dedup.  The last surviving attempt is the authoritative tree. *)
let of_report (r : Solver.Obligations.goal_report) : Proof_tree.t =
  let survivors = dedup_attempts r.attempts in
  let final =
    match List.rev survivors with last :: _ -> last | [] -> r.final
  in
  of_trace final

(** Extract the trees worth showing from a method-resolution probe
    ({!Solver.Solve.solve_probe}): when one alternative succeeded, the
    failed speculative attempts are dropped — they were never real
    obligations (§4). *)
let of_probe (nodes : Solver.Trace.goal_node list) : Proof_tree.t list =
  List.map of_trace (prune_speculative nodes)
