(** The inertia heuristic (§3.3, Appendix A.1).

    "Our theory is that the correct fix to a failed trait error on average
    involves the fewest modifications to program elements."  Inertia
    models the complexity of the patch required to fix a failed predicate.
    The categories and weights below are a verbatim port of the Rust
    [GoalKind] enum in the paper's Appendix A.1. *)

open Trait_lang

type location = Local | External

type goal_kind =
  | Trait of { self_ : location; trait_ : location }
      (** an ordinary trait bound; cost depends on the orphan rule *)
  | TyChange  (** a type must change (e.g. an associated-type mismatch) *)
  | FnToTrait of { trait_ : location; arity : int }
      (** a function item/pointer must implement a non-[Fn] trait *)
  | TyAsCallable of { arity : int }  (** a non-function used where [Fn] is required *)
  | DeleteFnParams of { delta : int }
  | AddFnParams of { delta : int }
  | IncorrectParams of { arity : int }
  | Misc

(** Appendix A.1, [GoalKind::weight], transcribed. *)
let weight : goal_kind -> int = function
  | Trait { self_ = Local; trait_ = Local } -> 0
  | Trait { self_ = Local; trait_ = External }
  | Trait { self_ = External; trait_ = Local }
  | FnToTrait { trait_ = Local; _ } ->
      1
  | Trait { self_ = External; trait_ = External } -> 2
  | TyChange -> 4
  | IncorrectParams { arity = delta } | AddFnParams { delta } | DeleteFnParams { delta } ->
      5 * delta
  | FnToTrait { trait_ = External; arity } | TyAsCallable { arity } -> 4 + 5 * arity
  | Misc -> 50

let location_of_crate : Path.crate -> location = function
  | Path.Local -> Local
  | Path.External _ -> External

(** Locate a type for the orphan rule: where would you edit to change its
    head?  Structural heads (tuples, references, primitives, [dyn]) and
    rigid parameters cannot be "moved", so they behave as external. *)
let location_of_ty (ty : Ty.t) : location =
  match Ty.head_crate ty with
  | Some c -> location_of_crate c
  | None -> ( match ty with Ty.Param _ -> Local | _ -> External)

let is_fn_trait (trait_path : Path.t) =
  match Path.name trait_path with "Fn" | "FnMut" | "FnOnce" -> true | _ -> false

let fn_arity (ty : Ty.t) =
  match ty with Ty.FnPtr (args, _) | Ty.FnItem (_, args, _) -> Some (List.length args) | _ -> None

(** Classify a failing predicate into one of the eight categories, from
    the structure of the predicate alone (§3.3). *)
let classify (p : Predicate.t) : goal_kind =
  match p with
  | Predicate.Trait { self_ty; trait_ref } -> (
      let trait_loc = location_of_crate (Path.crate trait_ref.trait) in
      match (fn_arity self_ty, is_fn_trait trait_ref.trait) with
      | Some arity, false ->
          (* a function needing a non-Fn trait: the §2.3
             [{run_timer}: System] shape *)
          FnToTrait { trait_ = trait_loc; arity }
      | None, true ->
          (* a non-function where a callable is required *)
          let arity =
            match trait_ref.args with
            | [ Ty.Ty (Ty.Tuple ts) ] -> List.length ts
            | [ Ty.Ty Ty.Unit ] -> 0
            | [ Ty.Ty _ ] -> 1
            | _ -> 1
          in
          TyAsCallable { arity }
      | Some actual, true -> (
          (* a function used as a callable but rejected: compare arities *)
          let expected =
            match trait_ref.args with
            | [ Ty.Ty (Ty.Tuple ts) ] -> Some (List.length ts)
            | [ Ty.Ty Ty.Unit ] -> Some 0
            | [ Ty.Ty _ ] -> Some 1
            | _ -> None
          in
          match expected with
          | Some e when e > actual -> AddFnParams { delta = e - actual }
          | Some e when e < actual -> DeleteFnParams { delta = actual - e }
          | Some e -> IncorrectParams { arity = e }
          | None -> IncorrectParams { arity = actual })
      | None, false ->
          Trait { self_ = location_of_ty self_ty; trait_ = trait_loc })
  | Predicate.Projection _ | Predicate.NormalizesTo _ ->
      (* an associated type resolved to the wrong type: fix = change a
         type definition *)
      TyChange
  | Predicate.TypeOutlives _ | Predicate.RegionOutlives _ -> Misc
  | Predicate.WellFormed _ | Predicate.ObjectSafe _ | Predicate.ConstEvaluatable _ -> Misc

let score (p : Predicate.t) = weight (classify p)

(* ------------------------------------------------------------------ *)
(* The full pipeline of Fig. 10:
   tree → MCSes (DNF) → classify → weight → sort. *)

type scored_set = {
  predicates : (Predicate.t * Proof_tree.node_id * goal_kind * int) list;
  total : int;  (** the conjunct's score: sum of predicate scores *)
}

type ranking = {
  sets : scored_set list;  (** MCSes, cheapest first *)
  leaves : (Proof_tree.node_id * int) list;
      (** every failing leaf with its best (lowest) containing-set score,
          then its own weight — the bottom-up display order *)
}

let sp_rank = Telemetry.span "inertia.rank"
let c_mcs = Telemetry.counter "inertia.mcs.max"

let rank (tree : Proof_tree.t) : ranking =
  let tok = Telemetry.begin_ sp_rank in
  let formula, it = Formula.of_tree tree in
  let dnf = Dnf.of_formula formula in
  Telemetry.record_max c_mcs (Dnf.num_conjuncts dnf);
  let scored =
    List.map
      (fun conj ->
        let predicates =
          List.map
            (fun v ->
              let p = Formula.var_predicate it v in
              let k = classify p in
              (p, Formula.var_node it v, k, weight k))
            conj
        in
        let total = List.fold_left (fun a (_, _, _, w) -> a + w) 0 predicates in
        { predicates; total })
      dnf
  in
  let sets = List.stable_sort (fun a b -> Int.compare a.total b.total) scored in
  (* Order leaves by (best containing MCS total, own weight). *)
  let best : (Proof_tree.node_id, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      List.iter
        (fun (_, node, _, w) ->
          let cur = Hashtbl.find_opt best node in
          let cand = (s.total, w) in
          match cur with
          | Some c when compare c cand <= 0 -> ()
          | _ -> Hashtbl.replace best node cand)
        s.predicates)
    sets;
  let leaves =
    Hashtbl.fold (fun node (total, w) acc -> (node, total, w) :: acc) best []
    |> List.stable_sort (fun (n1, t1, w1) (n2, t2, w2) ->
           match Int.compare t1 t2 with
           | 0 -> ( match Int.compare w1 w2 with 0 -> Int.compare n1 n2 | c -> c)
           | c -> c)
    |> List.map (fun (node, _, w) -> (node, w))
  in
  Telemetry.end_ sp_rank tok;
  { sets; leaves }

(** The bottom-up ordering of failing leaf nodes under inertia.  Leaves
    that never appear in any MCS (e.g. only below stateful nodes) are
    appended at the end in tree order. *)
let sorted_leaves (tree : Proof_tree.t) : Proof_tree.node list =
  let ranking = rank tree in
  let ranked = List.map fst ranking.leaves in
  let all_leaves = Proof_tree.failed_leaves tree in
  let in_ranked =
    List.filter_map
      (fun id -> List.find_opt (fun (n : Proof_tree.node) -> n.id = id) all_leaves)
      ranked
  in
  let rest =
    List.filter
      (fun (n : Proof_tree.node) -> not (List.mem n.id ranked))
      all_leaves
  in
  in_ranked @ rest
