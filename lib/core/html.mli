(** A standalone HTML embedding of the Argus view (§3.2: "... can also be
    embedded in other contexts, such as in an online textbook").
    CollapseSeq becomes [<details>] disclosure, ShortTys a hover tooltip
    of fully-qualified paths, CtxtLinks footnoted source locations.

    Every entry point takes an optional [heat] callback mapping a node to
    a cost annotation: a relative intensity in [0, 1] (drives an orange
    background tint) and a label appended to the row (e.g. ["self 1.2us
    (34%) · total 5.6us"] from [Profile.heat_of_id]).  Nodes mapped to
    [None] render exactly as before. *)

val escape : string -> string

(** One node's row markup (without disclosure structure). *)
val node_label :
  ?program:Trait_lang.Program.t ->
  ?heat:(Proof_tree.node -> (float * string) option) ->
  View_state.t ->
  Proof_tree.node ->
  string

(** Render one view in its current direction and expansion state. *)
val view_to_html :
  ?program:Trait_lang.Program.t ->
  ?heat:(Proof_tree.node -> (float * string) option) ->
  View_state.t ->
  string

(** A complete standalone page: the compiler diagnostic (if any) followed
    by both Argus views with their first levels pre-expanded.  With
    [heat], a legend explaining the tint precedes the views. *)
val page :
  ?title:string ->
  ?heat:(Proof_tree.node -> (float * string) option) ->
  program:Trait_lang.Program.t ->
  diagnostic:string option ->
  Proof_tree.t ->
  string
