(** Synthetic inference trees for performance evaluation.

    Fig. 12b measures DNF-normalization time on trees between 1 and 36,794
    goal nodes.  Our corpus programs produce trees of realistic *shape*
    but modest size, so the bench also measures generated trees that
    follow the structure observed in real inference trees: a sparse
    failing skeleton (one or two failing candidates per goal, shallow AND
    branching) inside a large, mostly-successful body.  This sparsity is
    what keeps the exponential DNF construction fast in practice — the
    paper's median is 0.1 ms despite the worst case.

    The layout is deterministic given the configuration. *)

open Trait_lang

type config = {
  target_goals : int;  (** approximate number of goal nodes *)
  failure_depth : int;  (** depth of the failing skeleton *)
  or_every : int;  (** introduce an extra failing branch every n levels *)
}

(* The failing skeleton grows with the tree: bigger inference trees come
   from bigger search problems, which also have more failing alternatives.
   One failing level per ~120 goal nodes gives the largest paper-scale
   tree (36,794 nodes) a ~300-level skeleton with ~40 OR alternatives —
   the regime where DNF minimization cost reaches the paper's observed
   maximum of a few milliseconds. *)
let config_of_size n =
  { target_goals = max 1 n; failure_depth = max 2 (min 300 (n / 120 + 2)); or_every = 8 }

(* Distinct synthetic predicates so DNF variables are distinct. *)
let pred_of_int i =
  Predicate.Trait
    {
      self_ty = Ty.ctor (Path.local [ Printf.sprintf "S%d" i ]) [];
      trait_ref = Ty.trait_ref (Path.external_ "lib" [ Printf.sprintf "T%d" (i mod 97) ]);
    }

let impl_of_int i : Decl.impl =
  {
    impl_id = i;
    impl_generics = Decl.no_generics;
    impl_trait = Ty.trait_ref (Path.external_ "lib" [ Printf.sprintf "T%d" (i mod 97) ]);
    impl_self = Ty.ctor (Path.local [ Printf.sprintf "S%d" i ]) [];
    impl_assocs = [];
    impl_span = Span.dummy;
    impl_crate = Path.External "lib";
  }

let generate (cfg : config) : Proof_tree.t =
  let b = Proof_tree.builder () in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter
  in
  let goal_info ~depth result : Proof_tree.goal_info =
    {
      pred = pred_of_int (next ());
      result;
      provenance = Solver.Trace.Root { origin = "synthetic"; span = Span.dummy };
      is_overflow = false;
      is_stateful = false;
      is_user_visible = true;
      depth;
      trace_id = -1;
    }
  in
  let yes_cand parent children_of =
    Proof_tree.add_node b ~parent:(Some parent)
      (Proof_tree.Cand
         {
           source = Solver.Trace.Cand_impl (impl_of_int (next ()));
           cand_result = Solver.Res.Yes;
           failure = None;
           cand_trace_id = -1;
         })
      children_of
  in
  let no_cand ?failure parent children_of =
    Proof_tree.add_node b ~parent:(Some parent)
      (Proof_tree.Cand
         {
           source = Solver.Trace.Cand_impl (impl_of_int (next ()));
           cand_result = Solver.Res.No;
           failure;
           cand_trace_id = -1;
         })
      children_of
  in
  let rejected parent =
    no_cand parent
      ~failure:
        (Solver.Unify.Head_mismatch
           (Ty.ctor (Path.local [ "X" ]) [], Ty.ctor (Path.local [ "Y" ]) []))
      (fun _ -> [])
  in
  (* a linear chain of [len] successful goals *)
  let rec success_chain parent ~depth len =
    if len <= 0 then []
    else
      [
        Proof_tree.add_node b ~parent:(Some parent)
          (Proof_tree.Goal (goal_info ~depth Solver.Res.Yes))
          (fun id ->
            if len = 1 then []
            else [ yes_cand id (fun cid -> success_chain cid ~depth:(depth + 1) (len - 1)) ]);
      ]
  in
  (* how much successful padding hangs off each skeleton level *)
  let skeleton_goals = (2 * cfg.failure_depth) + 2 in
  let pad_per_level =
    max 0 ((cfg.target_goals - skeleton_goals) / max 1 cfg.failure_depth)
  in
  let rec failing parent ~depth =
    Proof_tree.add_node b ~parent
      (Proof_tree.Goal (goal_info ~depth Solver.Res.No))
      (fun id ->
        if depth >= cfg.failure_depth then [ rejected id ]
        else begin
          let fixable =
            no_cand id (fun cid ->
                failing (Some cid) ~depth:(depth + 1)
                :: success_chain cid ~depth:(depth + 1) pad_per_level)
          in
          let extra_branch =
            if cfg.or_every > 0 && depth mod cfg.or_every = 0 then
              [
                no_cand id (fun cid ->
                    [
                      Proof_tree.add_node b ~parent:(Some cid)
                        (Proof_tree.Goal (goal_info ~depth:(depth + 1) Solver.Res.No))
                        (fun gid -> [ rejected gid ]);
                    ]);
              ]
            else []
          in
          (fixable :: extra_branch) @ [ rejected id ]
        end)
  in
  let root = failing None ~depth:0 in
  Proof_tree.build b ~root

(** Generate a tree with roughly [n] goal nodes. *)
let of_size n : Proof_tree.t = generate (config_of_size n)
