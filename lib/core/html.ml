(** A standalone HTML embedding of the Argus view.

    §3.2: "The Argus interface can also be embedded in other contexts,
    such as in an online textbook to pedagogically illustrate the process
    of trait inference."  This renderer drives the same {!View_state}
    semantics into a self-contained HTML page: CollapseSeq becomes
    [<details>] disclosure, ShortTys becomes a hover [title] attribute
    carrying fully-qualified paths, and CtxtLinks becomes footnoted
    source locations — no JavaScript required. *)

open Trait_lang

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|
  body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         font-size: 14px; margin: 2rem; color: #1f2328; }
  h1 { font-size: 18px; } h2 { font-size: 15px; margin-top: 1.6em; }
  details { margin-left: 1.25rem; }
  summary { cursor: pointer; padding: 1px 4px; border-radius: 4px; }
  summary:hover { background: #f0f3f6; }
  .leaf { margin-left: 2.4rem; padding: 1px 4px; display: block; }
  .yes { color: #1a7f37; } .no { color: #cf222e; } .maybe { color: #9a6700; }
  .impl { color: #6639ba; }
  .overflow { background: #fff1e5; border-radius: 4px; padding: 0 4px; }
  .src { color: #656d76; font-size: 12px; margin-left: .6em; }
  .diag { background: #f6f8fa; border: 1px solid #d1d9e0; border-radius: 6px;
          padding: .8em 1em; white-space: pre-wrap; }
  .cost { color: #656d76; font-size: 12px; margin-left: .6em; }
  .heat-legend { color: #656d76; font-size: 12px; margin: .4em 0 1em; }
  .heat-legend .swatch { display: inline-block; width: 3.2em; height: .9em;
          border-radius: 3px; vertical-align: middle; margin: 0 .4em;
          background: linear-gradient(to right, rgba(255,92,0,0.08), rgba(255,92,0,0.8)); }
|}

let icon_of (r : Solver.Res.t) =
  match r with
  | Solver.Res.Yes -> ("✓", "yes")
  | Solver.Res.No -> ("✗", "no")
  | Solver.Res.Maybe -> ("?", "maybe")

(** One node rendered as its row content (without disclosure).  [heat]
    maps a node to a cost annotation: a relative intensity in [0,1]
    driving the background tint, and a label appended to the row. *)
let node_label ?(program : Program.t option)
    ?(heat : (Proof_tree.node -> (float * string) option) option)
    (vs : View_state.t) (n : Proof_tree.node) : string =
  let cfg = View_state.pretty_config vs n.id in
  let heat_style, heat_label =
    match Option.bind heat (fun f -> f n) with
    | Some (intensity, label) ->
        let alpha = 0.08 +. (0.72 *. Float.min 1.0 (Float.max 0.0 intensity)) in
        ( Printf.sprintf " style=\"background: rgba(255,92,0,%.3f); border-radius: 4px;\""
            alpha,
          Printf.sprintf "<span class=\"cost\">%s</span>" (escape label) )
    | None -> ("", "")
  in
  let title =
    (* the ShortTys minibuffer, as a hover tooltip *)
    match Ctxlinks.definition_paths n with
    | [] -> ""
    | paths -> Printf.sprintf " title=\"%s\"" (escape (String.concat ", " paths))
  in
  let src =
    match Option.bind program (fun p -> Ctxlinks.span_of_node p n) with
    | Some sp when not (Span.is_dummy sp) ->
        Printf.sprintf "<span class=\"src\">%s</span>" (escape (Span.to_string sp))
    | _ -> ""
  in
  match n.kind with
  | Proof_tree.Goal g ->
      let icon, cls = icon_of g.result in
      let overflow = if g.is_overflow then " <span class=\"overflow\">overflow ⟳</span>" else "" in
      Printf.sprintf "<span class=\"%s\"%s%s>%s %s</span>%s%s%s" cls title heat_style icon
        (escape (Pretty.predicate ~cfg g.pred))
        overflow src heat_label
  | Proof_tree.Cand c ->
      let icon, cls = icon_of c.cand_result in
      let body =
        match c.source with
        | Solver.Trace.Cand_impl impl -> Pretty.impl_header ~cfg impl
        | Solver.Trace.Cand_param_env p ->
            Printf.sprintf "where-clause `%s`" (Pretty.predicate ~cfg p)
        | Solver.Trace.Cand_builtin b -> Printf.sprintf "builtin impl (%s)" b
      in
      let failure =
        match c.failure with
        | Some f when not (Solver.Res.is_yes c.cand_result) ->
            Printf.sprintf " — %s" (escape (Solver.Unify.failure_to_string ~cfg f))
        | _ -> ""
      in
      Printf.sprintf "<span class=\"%s\"%s%s>%s <span class=\"impl\">%s</span>%s</span>%s%s" cls
        title heat_style icon (escape body) failure src heat_label

let rec render_node buf ?program ?heat (vs : View_state.t) (n : Proof_tree.node) =
  let children = View_state.visible_children vs n in
  if children = [] then
    Buffer.add_string buf
      (Printf.sprintf "<span class=\"leaf\">%s</span>\n" (node_label ?program ?heat vs n))
  else begin
    let open_attr = if View_state.is_expanded vs n.id then " open" else "" in
    Buffer.add_string buf (Printf.sprintf "<details%s><summary>%s</summary>\n" open_attr (node_label ?program ?heat vs n));
    List.iter (render_node buf ?program ?heat vs) children;
    Buffer.add_string buf "</details>\n"
  end

(** Render one view (in its current direction and expansion state). *)
let view_to_html ?program ?heat (vs : View_state.t) : string =
  let buf = Buffer.create 4096 in
  let shown, folded = View_state.roots_split vs in
  List.iter (render_node buf ?program ?heat vs) shown;
  if folded <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "<details><summary>Other failures (%d) ...</summary>\n"
         (List.length folded));
    List.iter (render_node buf ?program ?heat vs) folded;
    Buffer.add_string buf "</details>\n"
  end;
  Buffer.contents buf

(** A complete standalone page: the compiler diagnostic followed by both
    Argus views, first levels pre-expanded. *)
let page ?(title = "Argus trait error") ?heat ~(program : Program.t)
    ~(diagnostic : string option) (tree : Proof_tree.t) : string =
  let expand_first vs =
    (* open the first level of each root so the page is inviting *)
    List.fold_left
      (fun vs (r : Proof_tree.node) -> View_state.expand vs r.id)
      vs (View_state.roots vs)
  in
  let bu = expand_first (View_state.create ~direction:View_state.Bottom_up tree) in
  let td = expand_first (View_state.create ~direction:View_state.Top_down tree) in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title><style>%s</style></head><body>\n"
       (escape title) style);
  Buffer.add_string buf (Printf.sprintf "<h1>%s</h1>\n" (escape title));
  (match diagnostic with
  | Some d ->
      Buffer.add_string buf "<h2>What the compiler says</h2>\n";
      Buffer.add_string buf (Printf.sprintf "<div class=\"diag\">%s</div>\n" (escape d))
  | None -> ());
  (match heat with
  | Some _ ->
      Buffer.add_string buf
        "<div class=\"heat-legend\">cost heat: cool<span class=\"swatch\"></span>hot \
         — background tint is the node's share of the hottest self time; the \
         trailing figures are self and total wall time</div>\n"
  | None -> ());
  Buffer.add_string buf "<h2>Bottom up — likely root causes first</h2>\n";
  Buffer.add_string buf (view_to_html ~program ?heat bu);
  Buffer.add_string buf "<h2>Top down — the logical story</h2>\n";
  Buffer.add_string buf (view_to_html ~program ?heat td);
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
