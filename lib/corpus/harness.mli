(** Corpus driver: loading programs, solving them, extracting trees, and
    resolving ground-truth root causes (§5.2.1). *)

open Trait_lang

type library_kind = Real | Synthetic

type entry = {
  id : string;
  title : string;
  library : string;  (** diesel_lite / bevy_lite / axum_lite / brew / space / std *)
  kind : library_kind;
  description : string;
  source : string;  (** L_TRAIT surface syntax *)
  root_cause : string;  (** surface-syntax predicate of the ground-truth fault *)
  fix_hint : string;
}

exception Corpus_error of string

(** Parse and resolve an entry's program.
    @raise Corpus_error with a readable message on front-end errors *)
val load : entry -> Program.t

(** Resolve the ground-truth predicate in the entry's own context. *)
val root_cause_pred : entry -> Predicate.t

(** Solve the program to fixpoint. *)
val solve : entry -> Program.t * Solver.Obligations.report

(** The extracted proof tree of the first failing goal.
    @raise Corpus_error if every goal proves *)
val failed_tree : entry -> Program.t * Argus.Proof_tree.t

(** Sanity invariant for suite entries: the ground truth appears among
    the failing leaves. *)
val root_cause_is_leaf : entry -> bool

(** {1 Batch solving} *)

type batch_result = {
  b_entry : entry;
  b_program : Program.t;
  b_report : Solver.Obligations.report;
  b_journal : Journal.entry list;
      (** recorded only when [~journal:true]; timestamps normalized
          to 0 so batch output is wall-clock-independent *)
  b_ids : int;  (** journal node IDs the unit consumed (from 0) *)
  b_snaps : int;  (** snapshot serials the unit consumed (from 0) *)
}

(** Solve one entry with the per-domain journal/snapshot state reset
    first — the unit of work the batch driver distributes. *)
val solve_unit : journal:bool -> entry -> batch_result

(** Solve entries in parallel on [pool] (or a transient pool of [jobs]
    workers; [jobs <= 1] with no pool is the exact sequential path) and
    return results in input order.  Output is byte-identical whatever
    the job count: every unit resets its domain-local journal/snapshot
    state, and the shared evaluation cache is observe-only with fresh
    per-load program stamps. *)
val solve_batch :
  ?pool:Pool.t -> ?jobs:int -> ?journal:bool -> entry list -> batch_result list
