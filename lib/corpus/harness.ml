(** Corpus driver: loading programs, solving them, extracting trees, and
    resolving ground-truth root causes.

    An {!entry} corresponds to one program in the evaluation dataset
    (§5.2.1): source text, the ground-truth root-cause predicate (written
    in the same surface syntax and resolved against the same program), and
    metadata mirroring the paper's task taxonomy. *)

open Trait_lang

type library_kind = Real | Synthetic

type entry = {
  id : string;
  title : string;
  library : string;  (** diesel_lite / bevy_lite / axum_lite / brew / space / std *)
  kind : library_kind;
  description : string;
  source : string;
  root_cause : string;  (** surface-syntax predicate of the ground-truth fault *)
  fix_hint : string;
}

exception Corpus_error of string

(** Parse and resolve an entry's program. *)
let load (e : entry) : Program.t =
  try Resolve.program_of_string ~file:(e.id ^ ".rs") e.source with
  | Parser.Error pe ->
      raise
        (Corpus_error
           (Printf.sprintf "%s: parse error at %s: %s" e.id (Span.to_string pe.span)
              pe.message))
  | Resolve.Error re ->
      raise
        (Corpus_error
           (Printf.sprintf "%s: resolve error at %s: %s" e.id
              (Span.to_string (Resolve.error_span re))
              (Resolve.error_message re)))

(** Resolve the entry's ground-truth predicate in the context of its own
    program, by re-resolving the source with the root cause appended as a
    marked goal. *)
let root_cause_pred (e : entry) : Predicate.t =
  let marker = "__root_cause__" in
  let augmented = e.source ^ "\ngoal " ^ e.root_cause ^ " from \"" ^ marker ^ "\";\n" in
  let program =
    try Resolve.program_of_string ~file:(e.id ^ ".rs") augmented
    with Resolve.Error re ->
      raise
        (Corpus_error
           (Printf.sprintf "%s: root cause does not resolve: %s" e.id
              (Resolve.error_message re)))
  in
  match
    List.find_opt (fun (g : Program.goal) -> g.goal_origin = marker) (Program.goals program)
  with
  | Some g -> g.goal_pred
  | None -> raise (Corpus_error (e.id ^ ": root-cause goal not found"))

(** Solve an entry's program and extract the proof tree of its first
    failing goal. *)
let solve (e : entry) : Program.t * Solver.Obligations.report =
  let program = load e in
  (program, Solver.Obligations.solve_program program)

let failed_tree (e : entry) : Program.t * Argus.Proof_tree.t =
  let program, report = solve e in
  match Solver.Obligations.errors report with
  | r :: _ -> (program, Argus.Extract.of_report r)
  | [] -> raise (Corpus_error (e.id ^ ": expected a trait error but all goals proved"))

(* ------------------------------------------------------------------ *)
(* Batch solving *)

type batch_result = {
  b_entry : entry;
  b_program : Program.t;
  b_report : Solver.Obligations.report;
  b_journal : Journal.entry list;
  b_ids : int;
  b_snaps : int;
}

(* One work unit = load + solve (+ optional journal recording), with the
   per-domain journal/snapshot state reset first.  The reset is what
   makes a unit's output independent of which domain runs it — and of
   whether anything ran before it on the same domain — so the sequential
   path performs the identical resets and a parallel batch is
   byte-identical to [--jobs 1].  Timestamps are the one stream field
   wall-clock-dependent by nature, so batch journals normalize them
   to 0. *)
let solve_unit ~journal (e : entry) : batch_result =
  Journal.reset ();
  Solver.Infer_ctx.reset_snapshot_serial ();
  let (program, report), entries =
    if journal then Journal.with_memory_sink (fun () -> solve e)
    else (solve e, [])
  in
  {
    b_entry = e;
    b_program = program;
    b_report = report;
    b_journal = List.map (fun (en : Journal.entry) -> { en with Journal.ts_ns = 0 }) entries;
    b_ids = Journal.peek_id ();
    b_snaps = Solver.Infer_ctx.snapshot_serial ();
  }

let solve_batch ?pool ?(jobs = 1) ?(journal = false) (entries : entry list) :
    batch_result list =
  Pool.run ?pool ~jobs (solve_unit ~journal) entries

(** Does the ground-truth predicate appear among the tree's failing
    leaves?  (Sanity invariant for every suite entry.) *)
let root_cause_is_leaf (e : entry) : bool =
  let _, tree = failed_tree e in
  let rc = root_cause_pred e in
  Argus.Proof_tree.failed_leaves tree
  |> List.exists (fun (n : Argus.Proof_tree.node) ->
         match n.kind with
         | Argus.Proof_tree.Goal g -> Predicate.equal g.pred rc
         | _ -> false)
