(** The expression-level type checker: the process that *generates* trait
    obligations.

    §4 of the paper: "trait solving and type checking are interleaving
    processes" — a predicate is born when type checking elaborates a call
    or selects a method, usually while types are still full of inference
    variables.  This module reproduces that interleaving over the
    {!Trait_lang.Expr} language:

    - calling a generic function instantiates its generics with fresh
      inference variables, unifies argument types, and {b emits the
      function's where-clauses as obligations} whose origin points at the
      call;
    - a method call {b probes} every trait declaring the method through
      {!Solver.Solve.solve_probe} — the paper's speculative predicates —
      committing the first success and recording the failures;
    - after the body, the collected obligations run to fixpoint through
      the same {!Solver.Obligations} engine the [goal] declarations use,
      so ambiguity, snapshots, and extraction behave identically. *)

open Trait_lang

let sp_check_fn = Telemetry.span "typeck.check_fn"
let c_probes = Telemetry.counter "typeck.probes"
let c_obligations = Telemetry.counter "typeck.obligations"

type type_error = { te_span : Span.t; te_message : string }

(** A recorded method resolution: where it happened, the probed
    alternatives' trace trees, and the committed index if any. *)
type probe = {
  p_span : Span.t;
  p_method : string;
  p_recv_ty : Ty.t;  (** resolved at the end of checking *)
  p_nodes : Solver.Trace.goal_node list;
  p_chosen : int option;
}

type fn_report = {
  fr_fn : Decl.fndecl;
  fr_locals : (string * Ty.t) list;  (** let-bound locals, resolved *)
  fr_type_errors : type_error list;
  fr_obligations : Solver.Obligations.goal_report list;
  fr_probes : probe list;
  fr_rounds : int;
}

type report = { fr_fns : fn_report list }

(** Did the function check cleanly? *)
let fn_ok (fr : fn_report) =
  fr.fr_type_errors = []
  && List.for_all
       (fun (g : Solver.Obligations.goal_report) -> g.status = Solver.Obligations.Proved)
       fr.fr_obligations
  && List.for_all (fun p -> p.p_chosen <> None) fr.fr_probes

let report_ok (r : report) = List.for_all fn_ok r.fr_fns

(* ------------------------------------------------------------------ *)

type ctx = {
  program : Program.t;
  st : Solver.Solve.t;
  mutable locals : (string * Ty.t) list;  (** innermost binding first *)
  mutable errors : type_error list;
  mutable goals : Program.goal list;  (** emitted obligations, reversed *)
  mutable probes : probe list;
}

let error cx span fmt =
  Printf.ksprintf
    (fun m -> cx.errors <- { te_span = span; te_message = m } :: cx.errors)
    fmt

let emit cx pred ~origin ~span =
  Telemetry.incr c_obligations;
  cx.goals <- { Program.goal_pred = pred; goal_span = span; goal_origin = origin } :: cx.goals

(** Unify, reporting a type error (rather than failing) on mismatch. *)
let unify_or_error cx span ~what expected actual =
  match Solver.Unify.unify cx.st.icx expected actual with
  | Ok () -> ()
  | Error f ->
      error cx span "mismatched types in %s: %s" what (Solver.Unify.failure_to_string f)

(** Instantiate a declaration's generics and emit its where-clauses. *)
let instantiate_and_obligate cx (g : Decl.generics) ~origin ~span : Subst.t =
  let subst = Solver.Infer_ctx.instantiate_generics cx.st.icx g in
  List.iter (fun wc -> emit cx (Subst.predicate subst wc) ~origin ~span) g.where_clauses;
  subst

(* ------------------------------------------------------------------ *)

let rec infer cx (e : Expr.t) : Ty.t =
  match e with
  | Expr.Lit_int _ -> Ty.Int
  | Expr.Lit_str _ -> Ty.Str
  | Expr.Lit_bool _ -> Ty.Bool
  | Expr.Lit_unit _ -> Ty.Unit
  | Expr.Tuple_expr (es, _) -> Ty.tuple (List.map (infer cx) es)
  | Expr.Var (name, span) -> (
      match List.assoc_opt name cx.locals with
      | Some ty -> ty
      | None ->
          error cx span "cannot find variable `%s` in this scope" name;
          Solver.Infer_ctx.fresh_ty cx.st.icx)
  | Expr.Ctor (path, args, span) -> (
      match Program.find_type cx.program path with
      | None ->
          error cx span "unknown struct `%s`" (Path.to_string path);
          Solver.Infer_ctx.fresh_ty cx.st.icx
      | Some td ->
          (* constructor rule: one value argument per type parameter, so
             [Wrapper(x)] has type [Wrapper<typeof x>]; unit structs take
             none.  (Struct bodies are opaque in L_TRAIT.) *)
          let params = td.ty_generics.ty_params in
          let subst =
            instantiate_and_obligate cx td.ty_generics
              ~origin:(Expr.describe e) ~span
          in
          let expected = List.length params in
          let got = List.length args in
          if got <> 0 && got <> expected then
            error cx span "`%s` expects %d constructor argument%s but %d were supplied"
              (Path.name path) expected
              (if expected = 1 then "" else "s")
              got
          else if got = expected then
            List.iter2
              (fun p a ->
                let arg_ty = infer cx a in
                unify_or_error cx (Expr.span_of a) ~what:"constructor argument"
                  (Subst.ty subst (Ty.Param p)) arg_ty)
              params args
          else ();
          Ty.ctor path (List.map (fun p -> Subst.ty subst (Ty.Param p)) params))
  | Expr.Fn_ref (path, span) -> (
      match Program.find_fn cx.program path with
      | None ->
          error cx span "unknown function `%s`" (Path.to_string path);
          Solver.Infer_ctx.fresh_ty cx.st.icx
      | Some fd ->
          let subst =
            instantiate_and_obligate cx fd.fn_generics ~origin:(Expr.describe e) ~span
          in
          Ty.FnItem
            (path, List.map (Subst.ty subst) fd.fn_inputs, Subst.ty subst fd.fn_output))
  | Expr.Call (path, args, span) -> (
      match Program.find_fn cx.program path with
      | None ->
          error cx span "unknown function `%s`" (Path.to_string path);
          Solver.Infer_ctx.fresh_ty cx.st.icx
      | Some fd ->
          let origin = Expr.describe e in
          let subst = instantiate_and_obligate cx fd.fn_generics ~origin ~span in
          let inputs = List.map (Subst.ty subst) fd.fn_inputs in
          if List.length args <> List.length inputs then begin
            error cx span "`%s` takes %d argument%s but %d were supplied" (Path.name path)
              (List.length inputs)
              (if List.length inputs = 1 then "" else "s")
              (List.length args);
            Subst.ty subst fd.fn_output
          end
          else begin
            List.iter2
              (fun input a ->
                let arg_ty = infer cx a in
                unify_or_error cx (Expr.span_of a) ~what:"function argument" input arg_ty)
              inputs args;
            Subst.ty subst fd.fn_output
          end)
  | Expr.Method (recv, m, args, span) -> infer_method cx e recv m args span

(** Method resolution via speculative probing (§4). *)
and infer_method cx whole recv m args span : Ty.t =
  let recv_ty = infer cx recv in
  (* candidate traits: those declaring a method named [m], in order *)
  let candidates =
    List.filter
      (fun (tr : Decl.trdecl) ->
        List.exists (fun (ms : Decl.method_sig) -> ms.m_name = m) tr.tr_methods)
      (Program.traits cx.program)
  in
  if candidates = [] then begin
    error cx span "no trait in scope declares a method named `%s`" m;
    Solver.Infer_ctx.fresh_ty cx.st.icx
  end
  else begin
    (* one speculative predicate per candidate trait, each with its own
       fresh instantiation of the trait's generics *)
    let alternatives =
      List.map
        (fun (tr : Decl.trdecl) ->
          let subst =
            Solver.Infer_ctx.instantiate_generics cx.st.icx tr.tr_generics
          in
          let args =
            List.map
              (fun p -> Ty.Ty (Subst.ty subst (Ty.Param p)))
              tr.tr_generics.ty_params
          in
          ( tr,
            subst,
            Predicate.Trait
              { self_ty = recv_ty; trait_ref = { Ty.trait = tr.tr_path; args } } ))
        candidates
    in
    let nodes, chosen =
      Solver.Solve.solve_probe cx.st ~origin:(Expr.describe whole) ~span
        (List.map (fun (_, _, p) -> p) alternatives)
    in
    Telemetry.incr c_probes;
    cx.probes <-
      { p_span = span; p_method = m; p_recv_ty = recv_ty; p_nodes = nodes; p_chosen = chosen }
      :: cx.probes;
    match chosen with
    | None ->
        error cx span "no method `%s` found for this receiver (no candidate trait applies)" m;
        Solver.Infer_ctx.fresh_ty cx.st.icx
    | Some idx ->
        let tr, subst, _ = List.nth alternatives idx in
        let ms =
          List.find (fun (ms : Decl.method_sig) -> ms.m_name = m) tr.tr_methods
        in
        let subst = Subst.add_ty "Self" recv_ty subst in
        (* instantiate the method's own generics and emit its
           where-clauses as obligations at this call site *)
        let msubst = Solver.Infer_ctx.instantiate_generics cx.st.icx ms.m_generics in
        let subst =
          List.fold_left
            (fun acc (name, ty) -> Subst.add_ty name ty acc)
            subst (Subst.bindings msubst)
        in
        List.iter
          (fun wc ->
            emit cx (Subst.predicate subst wc) ~origin:(Expr.describe whole) ~span)
          ms.m_generics.where_clauses;
        let inputs = List.map (Subst.ty subst) ms.m_inputs in
        if List.length args <> List.length inputs then begin
          error cx span "method `%s` takes %d argument%s but %d were supplied" m
            (List.length inputs)
            (if List.length inputs = 1 then "" else "s")
            (List.length args);
          Subst.ty subst ms.m_output
        end
        else begin
          List.iter2
            (fun input a ->
              let arg_ty = infer cx a in
              unify_or_error cx (Expr.span_of a) ~what:"method argument" input arg_ty)
            inputs args;
          Subst.ty subst ms.m_output
        end
  end

let check_stmt cx (s : Expr.stmt) =
  match s with
  | Expr.Expr_stmt e -> ignore (infer cx e)
  | Expr.Let { name; ann; rhs; span } ->
      let ty = infer cx rhs in
      let ty =
        match ann with
        | None -> ty
        | Some ann_ty ->
            unify_or_error cx span ~what:(Printf.sprintf "the annotation of `%s`" name)
              ann_ty ty;
            ann_ty
      in
      cx.locals <- (name, ty) :: cx.locals

(* ------------------------------------------------------------------ *)

(** Type-check one function body. *)
let check_fn ?(cfg = Solver.Solve.default_config) (program : Program.t)
    (fd : Decl.fndecl) : fn_report =
  let tok = Telemetry.begin_ sp_check_fn in
  let body = Option.value ~default:[] fd.fn_body in
  let st = Solver.Solve.create ~cfg ~env:fd.fn_generics.where_clauses program in
  let params =
    match fd.fn_param_names with
    | Some names -> List.combine names fd.fn_inputs
    | None -> []
  in
  let cx = { program; st; locals = params; errors = []; goals = []; probes = [] } in
  List.iter (check_stmt cx) body;
  (* run the accumulated obligations to fixpoint on the same state *)
  let reports, rounds =
    Solver.Obligations.solve_goals st (List.rev cx.goals)
  in
  let resolve_local (n, t) = (n, Solver.Infer_ctx.resolve st.icx t) in
  Telemetry.end_ sp_check_fn tok;
  {
    fr_fn = fd;
    fr_locals = List.rev_map resolve_local cx.locals;
    fr_type_errors = List.rev cx.errors;
    fr_obligations = reports;
    fr_probes =
      List.rev_map
        (fun p -> { p with p_recv_ty = Solver.Infer_ctx.resolve st.icx p.p_recv_ty })
        cx.probes;
    fr_rounds = rounds;
  }

(** Type-check every function with a body. *)
let check_program ?cfg (program : Program.t) : report =
  {
    fr_fns =
      Program.fns program
      |> List.filter (fun (f : Decl.fndecl) -> f.fn_body <> None)
      |> List.map (check_fn ?cfg program);
  }
