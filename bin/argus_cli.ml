(** The Argus command-line interface.

    The paper ships Argus as a VS Code extension; the terminal is our
    embedding of the same view machinery (the paper notes the interface
    "can also be embedded in other contexts").  Subcommands:

    - [check]: solve a .trait file, print per-goal status and the
      rustc-style diagnostic for failures (the baseline experience);
    - [bottom-up] / [top-down]: the Argus views, fully expanded;
    - [inertia]: the MCSes and ranked root-cause candidates;
    - [diag]: only the compiler-style diagnostic;
    - [profile]: per-goal cost attribution (hot-goal table, flamegraphs,
      heat-annotated proof trees);
    - [json]: the serialized report for external tooling;
    - [corpus]: list or run the bundled evaluation programs;
    - [study]: run the simulated user study;
    - [interactive]: drive the view state machine with expand/collapse/
      hover commands, as the IDE extension would. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program path =
  try Ok (Trait_lang.Resolve.program_of_string ~file:path (read_file path)) with
  | Trait_lang.Parser.Error e ->
      Error
        (Printf.sprintf "%s: parse error: %s" (Trait_lang.Span.to_string e.span) e.message)
  | Trait_lang.Resolve.Error e ->
      Error
        (Printf.sprintf "%s: %s"
           (Trait_lang.Span.to_string (Trait_lang.Resolve.error_span e))
           (Trait_lang.Resolve.error_message e))
  | Sys_error m -> Error m

(* Load failures (parse / name-resolution / IO) exit with 2, leaving 1
   for "the file loaded but has trait or type errors" — so scripts can
   tell a broken input apart from a failing one. *)
let or_die = function
  | Ok v -> v
  | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2

(* ------------------------------------------------------------------ *)
(* Observability: --profile / --trace-out / --events-out, accepted by
   every subcommand *)

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Collect telemetry during the run (per-phase span timings, solver \
           counters) and print the report table to standard error on exit.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's telemetry as Chrome trace-event JSON to $(docv), \
           loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Implies \
           telemetry collection.")

let events_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events-out" ] ~docv:"FILE"
        ~doc:
          "Stream the solver's search journal to $(docv) as JSONL (schema \
           argus.journal/v1): goal enter/exit, candidate assembly and \
           evaluation, unification attempts, snapshot traffic, normalization, \
           cycles, overflow, ambiguity. Inspect with $(b,argus explain). The \
           file is opened and its header written before solving starts, so it \
           is well-formed even if the run aborts.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the solver's evaluation cache (hash-consed canonical-goal \
           memoization). Every goal is re-evaluated from scratch; useful for \
           timing comparisons and for isolating cache-related behavior.")

let no_index_arg =
  Arg.(
    value & flag
    & info [ "no-index" ]
        ~doc:
          "Disable the fast-reject candidate index (per-trait buckets keyed \
           by simplified self-type head). Candidate assembly falls back to a \
           linear scan over every impl of the trait, computing the same \
           head-compatibility filter — output is byte-identical, only the \
           per-goal lookup cost changes. Useful for timing comparisons.")

let trace_buffer_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-buffer" ] ~docv:"N"
        ~doc:
          "Cap the per-domain telemetry event buffer at $(docv) events \
           (default 65536, minimum 256). The $(b,--profile) report counts \
           events dropped at the cap; raise it for long runs that truncate.")

(* Open the events file eagerly (header first, so it is well-formed even
   if the run aborts) and close it at exit, because subcommands
   terminate through [exit n]. *)
let open_events_file path =
  try
    let oc = open_out path in
    output_string oc (Argus_json.Journal_codec.header_line ());
    output_char oc '\n';
    at_exit (fun () ->
        Journal.set_sink None;
        try close_out oc with Sys_error _ -> ());
    oc
  with Sys_error m ->
    prerr_endline ("error: cannot open events file: " ^ m);
    exit 2

let write_event oc e =
  output_string oc (Argus_json.Json.to_string (Argus_json.Journal_codec.entry_to_json e));
  output_char oc '\n'

(* Telemetry/profiling and cache switches, shared by every subcommand.
   [check] handles --events-out itself (it buffers per-file journal
   streams and concatenates them deterministically); the single-file
   subcommands stream straight to the file. *)
let observability_setup profile trace_out no_cache no_index trace_buffer =
  if no_cache then Solver.Eval_cache.set_enabled false;
  if no_index then Solver.Fast_reject.set_enabled false;
  Option.iter Telemetry.set_max_events trace_buffer;
  if profile || trace_out <> None then begin
    Telemetry.enable ();
    (* at_exit, because subcommands terminate through [exit n] *)
    at_exit (fun () ->
        let sn = Telemetry.snapshot () in
        (match trace_out with
        | None -> ()
        | Some path -> (
            try
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  output_string oc (Argus_json.Telemetry_export.chrome_trace_string sn);
                  output_char oc '\n');
              Printf.eprintf "telemetry: wrote Chrome trace to %s\n%!" path
            with Sys_error m -> Printf.eprintf "telemetry: cannot write trace: %s\n%!" m));
        if profile then prerr_string (Telemetry.report_to_string sn))
  end

let telemetry_setup profile trace_out events_out no_cache no_index trace_buffer =
  observability_setup profile trace_out no_cache no_index trace_buffer;
  match events_out with
  | None -> ()
  | Some path ->
      let oc = open_events_file path in
      Journal.set_sink (Some (write_event oc))

let telemetry_term =
  Term.(
    const telemetry_setup $ profile_arg $ trace_out_arg $ events_out_arg $ no_cache_arg
    $ no_index_arg $ trace_buffer_arg)

(* ------------------------------------------------------------------ *)
(* --jobs *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Solve inputs in parallel on $(docv) worker domains (default: the \
           machine's recommended domain count). $(b,--jobs 1) is the exact \
           sequential code path — no domain is ever spawned — and parallel \
           output is byte-identical to it.")

let resolve_jobs = function
  | None -> Domain.recommended_domain_count ()
  | Some n when n >= 1 -> n
  | Some n ->
      Printf.eprintf "error: --jobs must be at least 1 (got %d)\n" n;
      exit 2

(* ------------------------------------------------------------------ *)
(* Common arguments *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"L_TRAIT source file")

let show_all_arg =
  Arg.(
    value & flag
    & info [ "show-all-predicates" ]
        ~doc:"Show compiler-internal and stateful predicates (the §4 toggle).")

let ranker_arg =
  let rankers =
    [ ("inertia", `Inertia); ("depth", `Depth); ("vars", `Vars); ("none", `None) ]
  in
  Arg.(
    value
    & opt (enum rankers) `Inertia
    & info [ "ranker" ] ~doc:"Bottom-up ordering heuristic: inertia, depth, vars, none.")

let ranker_of = function
  | `Inertia -> Argus.Heuristics.by_inertia
  | `Depth -> Argus.Heuristics.by_depth
  | `Vars -> Argus.Heuristics.by_infer_vars
  | `None -> Argus.Heuristics.unsorted

let solve_file path =
  let program = or_die (load_program path) in
  (program, Solver.Obligations.solve_program program)

(* ------------------------------------------------------------------ *)
(* check *)

(* One file's worth of buffered results: everything the driver needs to
   reproduce a sequential run's observable output, whatever domain (and
   in whatever order) the unit actually ran. *)
type check_unit_result = {
  u_path : string;
  u_out : string;  (** buffered stdout *)
  u_err : string option;  (** load (parse/resolve/IO) failure *)
  u_issues : int;
  u_journal : Journal.entry list;  (** ts normalized to 0 unless [--timestamps] *)
  u_ids : int;  (** journal node IDs consumed (from 0) *)
  u_snaps : int;  (** snapshot serials consumed (from 0) *)
}

(* Check one file into a buffer.  Resets the domain-local journal and
   snapshot state first, so the unit's output — text, proof-tree IDs,
   journal stream — is a pure function of the file, independent of
   scheduling.  Never exits: load failures are captured for the driver
   to report in input order. *)
let check_unit ~no_coherence ~journal ~timestamps path : check_unit_result =
  Journal.reset ();
  Solver.Infer_ctx.reset_snapshot_serial ();
  (* Rendering lives in Serve.Check_render, shared with the serve
     protocol's `solve` verb so daemon responses are byte-identical to
     this one-shot path by construction. *)
  let out = ref "" in
  let issues = ref 0 in
  let check () =
    match load_program path with
    | Error m -> Some m
    | Ok program ->
        let report = Solver.Obligations.solve_program program in
        let rendered, n =
          Serve.Check_render.run ~no_coherence
            ~profile_pipeline:(Telemetry.enabled ()) program report
        in
        out := rendered;
        issues := n;
        None
  in
  let err, entries =
    if journal then Journal.with_memory_sink check else (check (), [])
  in
  {
    u_path = path;
    u_out = !out;
    u_err = err;
    u_issues = !issues;
    u_journal =
      (if timestamps then entries
       else List.map (fun (e : Journal.entry) -> { e with Journal.ts_ns = 0 }) entries);
    u_ids = Journal.peek_id ();
    u_snaps = Solver.Infer_ctx.snapshot_serial ();
  }

let check_cmd =
  let run () events_out files no_coherence timestamps jobs =
    let jobs = resolve_jobs jobs in
    let events_oc = Option.map open_events_file events_out in
    let journal = events_oc <> None in
    (* Never spawn more workers than there are files; one file (or
       --jobs 1) is the plain sequential path, no domain spawned. *)
    let jobs = min jobs (List.length files) in
    let results = Pool.run ~jobs (check_unit ~no_coherence ~journal ~timestamps) files in
    let many = List.length files > 1 in
    let any_load_error = ref false in
    let total_issues = ref 0 in
    List.iter
      (fun u ->
        if many then Printf.printf "== %s ==\n" u.u_path;
        print_string u.u_out;
        (match u.u_err with
        | Some m ->
            any_load_error := true;
            prerr_endline ("error: " ^ m)
        | None -> ());
        total_issues := !total_issues + u.u_issues)
      results;
    (* Concatenate the per-unit journal streams (each recorded from
       ID 0) into one replayable file: relocate every entry by the IDs
       and snapshot serials the units before it consumed, in input
       order.  The result is byte-identical whatever the job count. *)
    (match events_oc with
    | None -> ()
    | Some oc ->
        let seq = ref 0 and ids = ref 0 and snaps = ref 0 in
        List.iter
          (fun u ->
            List.iter
              (fun e ->
                write_event oc (Journal.shift_entry ~seq:!seq ~ids:!ids ~snaps:!snaps e);
                incr seq)
              u.u_journal;
            ids := !ids + u.u_ids;
            snaps := !snaps + u.u_snaps)
          results);
    if !any_load_error then exit 2 else if !total_issues > 0 then exit 1 else exit 0
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"L_TRAIT source files (one or more)")
  in
  let no_coherence =
    Arg.(value & flag & info [ "no-coherence" ] ~doc:"Skip overlap/orphan/WF checks.")
  in
  let timestamps =
    Arg.(
      value & flag
      & info [ "timestamps" ]
          ~doc:
            "Keep real $(b,ts_ns) timestamps in the $(b,--events-out) journal \
             instead of normalizing them to 0. Needed for $(b,argus profile) \
             and $(b,argus explain --timings) on the journal; the journal is \
             then no longer byte-identical across $(b,--jobs) counts.")
  in
  let observability_term =
    Term.(
      const observability_setup $ profile_arg $ trace_out_arg $ no_cache_arg $ no_index_arg
      $ trace_buffer_arg)
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"on trait-solving or type-checking failures."
    :: Cmd.Exit.info 2
         ~doc:"on parse, name-resolution, or I/O errors in any $(i,FILE)."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "check" ~exits
       ~doc:
         "Type-check files: coherence, orphan rule, impl WF, and all goals. \
          Multiple files are solved in parallel under $(b,--jobs), with output \
          in input order.")
    Term.(
      const run $ observability_term $ events_out_arg $ files_arg $ no_coherence
      $ timestamps $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* views *)

let view_cmd name direction =
  let run () file show_all ranker =
    let _, report = solve_file file in
    List.iter
      (fun (r : Solver.Obligations.goal_report) ->
        if r.status <> Solver.Obligations.Proved then begin
          let tree = Argus.Extract.of_report r in
          print_endline
            (Argus.Render.tree_to_string ~direction ~ranker:(ranker_of ranker)
               ~show_all_predicates:show_all tree);
          print_newline ()
        end)
      report.reports
  in
  Cmd.v
    (Cmd.info name ~doc:(Printf.sprintf "Print the %s view of each failing goal" name))
    Term.(const run $ telemetry_term $ file_arg $ show_all_arg $ ranker_arg)

let bottom_up_cmd = view_cmd "bottom-up" Argus.View_state.Bottom_up
let top_down_cmd = view_cmd "top-down" Argus.View_state.Top_down

(* ------------------------------------------------------------------ *)
(* diag *)

let diag_cmd =
  let run () file =
    let program, report = solve_file file in
    List.iter
      (fun (r : Solver.Obligations.goal_report) ->
        if r.status <> Solver.Obligations.Proved then
          print_string
            (Rustc_diag.Diagnostic.to_string
               (Rustc_diag.Diagnostic.of_tree program r.goal (Argus.Extract.of_report r))))
      report.reports
  in
  Cmd.v (Cmd.info "diag" ~doc:"Print rustc-style diagnostics (the baseline)")
    Term.(const run $ telemetry_term $ file_arg)

(* ------------------------------------------------------------------ *)
(* inertia *)

let inertia_cmd =
  let run () file =
    let _, report = solve_file file in
    List.iter
      (fun (r : Solver.Obligations.goal_report) ->
        if r.status <> Solver.Obligations.Proved then begin
          let tree = Argus.Extract.of_report r in
          let ranking = Argus.Inertia.rank tree in
          Printf.printf "goal: %s\n" (Trait_lang.Pretty.predicate r.goal.goal_pred);
          Printf.printf "minimum correction subsets (%d):\n" (List.length ranking.sets);
          List.iter
            (fun (s : Argus.Inertia.scored_set) ->
              Printf.printf "  score %2d: %s\n" s.total
                (String.concat " AND "
                   (List.map
                      (fun (p, _, _, w) ->
                        Printf.sprintf "%s [w=%d]" (Trait_lang.Pretty.predicate p) w)
                      s.predicates)))
            ranking.sets;
          print_endline "ranked root-cause candidates:";
          List.iteri
            (fun i (n : Argus.Proof_tree.node) ->
              match n.kind with
              | Argus.Proof_tree.Goal g ->
                  Printf.printf "  %d. %s\n" i (Trait_lang.Pretty.predicate g.pred)
              | _ -> ())
            (Argus.Inertia.sorted_leaves tree)
        end)
      report.reports
  in
  Cmd.v (Cmd.info "inertia" ~doc:"Print MCSes and the inertia ranking")
    Term.(const run $ telemetry_term $ file_arg)

(* ------------------------------------------------------------------ *)
(* json *)

let json_cmd =
  let run () file =
    let _, report = solve_file file in
    print_endline (Argus_json.Json.to_string_pretty (Argus_json.Encode.report report))
  in
  Cmd.v (Cmd.info "json" ~doc:"Serialize the solving report as JSON")
    Term.(const run $ telemetry_term $ file_arg)

(* ------------------------------------------------------------------ *)
(* html *)

let html_cmd =
  let run () file out =
    let program, report = solve_file file in
    match
      List.find_opt
        (fun (r : Solver.Obligations.goal_report) -> r.status <> Solver.Obligations.Proved)
        report.reports
    with
    | None -> print_endline "no trait errors — nothing to render"
    | Some r ->
        let tree = Argus.Extract.of_report r in
        let diag =
          Rustc_diag.Diagnostic.to_string (Rustc_diag.Diagnostic.of_tree program r.goal tree)
        in
        let html =
          Argus.Html.page
            ~title:(Printf.sprintf "Trait error in %s" (Filename.basename file))
            ~program ~diagnostic:(Some diag) tree
        in
        let oc = open_out out in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc html);
        Printf.printf "wrote %s\n" out
  in
  let out_arg =
    Arg.(value & opt string "argus.html" & info [ "o"; "output" ] ~doc:"output file")
  in
  Cmd.v
    (Cmd.info "html"
       ~doc:"Render the first failing goal as a standalone HTML page (textbook embedding)")
    Term.(const run $ telemetry_term $ file_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* dot *)

let dot_cmd =
  let run () file failures_only =
    let _, report = solve_file file in
    List.iter
      (fun (r : Solver.Obligations.goal_report) ->
        if r.status <> Solver.Obligations.Proved then
          print_string
            (Argus.Dot.of_tree
               ~opts:{ Argus.Dot.default_options with show_successes = not failures_only }
               (Argus.Extract.of_report r)))
      report.reports
  in
  let failures_only =
    Arg.(value & flag & info [ "failures-only" ] ~doc:"Omit proven subtrees.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render failing goals as GraphViz digraphs (Fig. 4c style)")
    Term.(const run $ telemetry_term $ file_arg $ failures_only)

(* ------------------------------------------------------------------ *)
(* corpus *)

let corpus_cmd =
  let list_all () =
    Printf.printf "%-28s %-12s %s\n" "ID" "LIBRARY" "TITLE";
    List.iter
      (fun (e : Corpus.Harness.entry) ->
        Printf.printf "%-28s %-12s %s\n" e.id e.library e.title)
      (Corpus.Suite.entries @ Corpus.Suite.extended @ Corpus.Suite.extras
             @ Corpus.Suite.extended_ok)
  in
  (* Solve every bundled program (in parallel under --jobs) and print a
     one-line verdict per entry, in suite order. *)
  let run_all jobs =
    let jobs = resolve_jobs jobs in
    let entries =
      Corpus.Suite.entries @ Corpus.Suite.extended @ Corpus.Suite.extras
      @ Corpus.Suite.extended_ok
    in
    let jobs = min jobs (List.length entries) in
    let results =
      try Corpus.Harness.solve_batch ~jobs entries
      with Corpus.Harness.Corpus_error m ->
        prerr_endline ("error: " ^ m);
        exit 2
    in
    List.iter
      (fun (b : Corpus.Harness.batch_result) ->
        let errors = Solver.Obligations.errors b.b_report in
        let ambiguous =
          List.filter
            (fun (r : Solver.Obligations.goal_report) ->
              r.status = Solver.Obligations.Ambiguous)
            b.b_report.reports
        in
        let verdict =
          if errors <> [] then Printf.sprintf "%d trait error(s)" (List.length errors)
          else if ambiguous <> [] then Printf.sprintf "%d ambiguous" (List.length ambiguous)
          else "ok"
        in
        Printf.printf "%-28s %s\n" b.b_entry.id verdict)
      results
  in
  let run () id_opt all jobs =
    match (id_opt, all) with
    | _, true -> run_all jobs
    | None, false -> list_all ()
    | Some id, false -> (
        match
          List.find_opt
            (fun (e : Corpus.Harness.entry) -> e.id = id)
            (Corpus.Suite.entries @ Corpus.Suite.extended @ Corpus.Suite.extras
             @ Corpus.Suite.extended_ok)
        with
        | None ->
            prerr_endline ("unknown corpus entry: " ^ id);
            exit 1
        | Some e ->
            Printf.printf "%s — %s\n%s\n\n" e.id e.title e.description;
            let program, report = Corpus.Harness.solve e in
            List.iter
              (fun (r : Solver.Obligations.goal_report) ->
                if r.status <> Solver.Obligations.Proved then begin
                  let tree = Argus.Extract.of_report r in
                  print_string
                    (Rustc_diag.Diagnostic.to_string
                       (Rustc_diag.Diagnostic.of_tree program r.goal tree));
                  print_newline ();
                  print_endline (Argus.Render.tree_to_string tree)
                end
                else Printf.printf "[ok] %s\n" (Trait_lang.Pretty.predicate r.goal.goal_pred))
              report.reports)
  in
  let id_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"corpus entry id")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Solve every bundled program and print a one-line verdict per \
             entry, in suite order (parallel under $(b,--jobs)).")
  in
  Cmd.v (Cmd.info "corpus" ~doc:"List or run the bundled evaluation programs")
    Term.(const run $ telemetry_term $ id_arg $ all_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* study *)

let study_cmd =
  let run () seed n =
    let d = Study.Simulate.run ~seed ~n () in
    print_endline (Study.Analyze.to_string (Study.Analyze.analyze d))
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed") in
  let n_arg = Arg.(value & opt int 25 & info [ "participants" ] ~doc:"number of participants") in
  Cmd.v (Cmd.info "study" ~doc:"Run the simulated user study (Fig. 11)")
    Term.(const run $ telemetry_term $ seed_arg $ n_arg)

(* ------------------------------------------------------------------ *)
(* explain *)

let explain_cmd =
  (* Rendering lives in Serve.Explain_render, shared with the serve
     protocol's `explain` verb so daemon responses are byte-identical to
     this offline path by construction. *)
  let run () file node_id failures timings =
    let text =
      try read_file file
      with Sys_error m ->
        prerr_endline ("error: " ^ m);
        exit 2
    in
    let entries =
      try Argus_json.Journal_codec.of_jsonl text
      with Argus_json.Decode.Decode_error e ->
        Printf.eprintf "error: %s: %s at %s\n" file e.message e.path;
        exit 2
    in
    let prof =
      if not timings then None
      else begin
        let p = Profile.of_entries entries in
        if p.Profile.zero_ts then
          prerr_endline
            "warning: journal timestamps are normalized to 0 (argus check does \
             this for determinism) — no wall time to report; re-record with \
             `argus check --timestamps` or a single-file subcommand";
        Some p
      end
    in
    match Journal.replay entries with
    | Error m ->
        Printf.eprintf "error: inconsistent journal: %s\n" m;
        exit 2
    | Ok tree -> (
        match node_id with
        | Some id -> (
            match Serve.Explain_render.node ?prof tree id with
            | Ok out -> print_string out
            | Error m ->
                Printf.eprintf "error: %s\n" m;
                exit 1)
        | None ->
            if failures then print_string (Serve.Explain_render.failures ?prof tree)
            else
              print_string
                (Serve.Explain_render.summary ?prof ~entries:(List.length entries)
                   tree))
  in
  let events_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"EVENTS.jsonl" ~doc:"journal file written by --events-out")
  in
  let node_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "node" ] ~docv:"ID"
          ~doc:"Explain the goal or candidate with this stable event node ID.")
  in
  let failures_arg =
    Arg.(
      value & flag
      & info [ "failures" ]
          ~doc:"Narrate every failed leaf goal and its rejecting unification.")
  in
  let timings_arg =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:
            "Annotate goals with self/total wall time attributed from the \
             journal's $(b,ts_ns) deltas. Requires a journal with real \
             timestamps ($(b,argus check --timestamps), or any single-file \
             subcommand's $(b,--events-out)).")
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"when $(b,--node) $(i,ID) does not exist in the journal."
    :: Cmd.Exit.info 2 ~doc:"on unreadable, malformed, or inconsistent journal files."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "explain" ~exits
       ~doc:
         "Reconstruct the solver search from a journal file and print a \
          provenance narrative")
    Term.(const run $ telemetry_term $ events_file_arg $ node_arg $ failures_arg $ timings_arg)

(* ------------------------------------------------------------------ *)
(* profile *)

let profile_cmd =
  let all_corpus () =
    Corpus.Suite.entries @ Corpus.Suite.extended @ Corpus.Suite.extras
    @ Corpus.Suite.extended_ok
  in
  let write_file path contents =
    try
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents);
      Printf.printf "profile: wrote %s\n" path
    with Sys_error m ->
      prerr_endline ("error: cannot write " ^ path ^ ": " ^ m);
      exit 2
  in
  (* A proof-tree node's journal ID, for joining cost data back onto the
     rendered tree (negative IDs are synthetic nodes with no frame). *)
  let node_trace_id (n : Argus.Proof_tree.node) =
    match n.kind with
    | Argus.Proof_tree.Goal g -> g.trace_id
    | Argus.Proof_tree.Cand c -> c.cand_trace_id
  in
  let heat_fn prof (n : Argus.Proof_tree.node) =
    let id = node_trace_id n in
    if id < 0 then None else Profile.heat_of_id prof id
  in
  (* A journal file's first line carries the argus.journal schema tag;
     anything else is treated as L_TRAIT source. *)
  let is_journal_text text =
    let first =
      match String.index_opt text '\n' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    let needle = "argus.journal" in
    let n = String.length needle and len = String.length first in
    let rec go i =
      i + n <= len && (String.sub first i n = needle || go (i + 1))
    in
    go 0
  in
  let run () file corpus top flame speedscope html_out tree_flag =
    let input =
      match (corpus, file) with
      | Some id, _ -> (
          match
            List.find_opt (fun (e : Corpus.Harness.entry) -> e.id = id) (all_corpus ())
          with
          | None ->
              prerr_endline ("error: unknown corpus entry: " ^ id);
              exit 2
          | Some e -> (
              try `Live (Corpus.Harness.load e)
              with Corpus.Harness.Corpus_error m ->
                prerr_endline ("error: " ^ m);
                exit 2))
      | None, Some path ->
          let text =
            try read_file path
            with Sys_error m ->
              prerr_endline ("error: " ^ m);
              exit 2
          in
          if is_journal_text text then
            let entries =
              try Argus_json.Journal_codec.of_jsonl text
              with Argus_json.Decode.Decode_error e ->
                Printf.eprintf "error: %s: %s at %s\n" path e.message e.path;
                exit 2
            in
            `Offline entries
          else `Live (or_die (load_program path))
      | None, None ->
          prerr_endline
            "error: need an input: FILE (an L_TRAIT program or an --events-out \
             journal) or --corpus ID";
          exit 2
    in
    let prof, live =
      match input with
      | `Offline entries -> (Profile.of_entries entries, None)
      | `Live program ->
          (* telemetry on, so the solver.solve span is recorded and the
             attributed total can be cross-checked against it below *)
          Telemetry.enable ();
          let report, entries, words =
            Profile.record (fun () -> Solver.Obligations.solve_program program)
          in
          (Profile.of_entries ~words entries, Some (program, report))
    in
    print_string (Profile.top_table ~top prof);
    (* Cross-check: the journal-attributed total should agree with the
       independently clocked solver.solve telemetry span. *)
    (match live with
    | None -> ()
    | Some _ -> (
        let sn = Telemetry.snapshot () in
        match
          List.find_opt
            (fun (h : Telemetry.hist_summary) -> h.hs_name = "solver.solve")
            sn.sn_spans
        with
        | Some h when h.hs_sum_ns > 0 && prof.Profile.total_ns > 0 ->
            let delta =
              100.
              *. (float_of_int prof.Profile.total_ns -. float_of_int h.hs_sum_ns)
              /. float_of_int h.hs_sum_ns
            in
            Printf.printf
              "agreement: profile %s vs solver.solve span %s (delta %+.1f%%)\n"
              (Telemetry.format_ns (float_of_int prof.Profile.total_ns))
              (Telemetry.format_ns (float_of_int h.hs_sum_ns))
              delta
        | _ -> ()));
    let input_name =
      match (corpus, file) with
      | Some id, _ -> id
      | _, Some p -> Filename.basename p
      | _ -> "argus"
    in
    (match flame with
    | None -> ()
    | Some path -> write_file path (Argus_json.Flame.folded (Profile.folded prof)));
    (match speedscope with
    | None -> ()
    | Some path ->
        let events, end_at = Profile.frame_events prof in
        write_file path
          (Argus_json.Json.to_string_pretty
             (Argus_json.Flame.speedscope ~name:input_name ~end_at events)));
    (match (tree_flag, live) with
    | true, Some (_, report) ->
        List.iter
          (fun (r : Solver.Obligations.goal_report) ->
            if r.status <> Solver.Obligations.Proved then begin
              let tree = Argus.Extract.of_report r in
              print_endline
                (Argus.Render.tree_to_string
                   ~annot:(fun n -> Option.map snd (heat_fn prof n))
                   tree);
              print_newline ()
            end)
          report.reports
    | true, None ->
        prerr_endline
          "warning: --tree needs a live input (a program, not a journal); ignored"
    | false, _ -> ());
    match (html_out, live) with
    | Some out, Some (program, report) -> (
        match
          List.find_opt
            (fun (r : Solver.Obligations.goal_report) ->
              r.status <> Solver.Obligations.Proved)
            report.reports
        with
        | None -> prerr_endline "profile: no trait errors — no HTML tree to render"
        | Some r ->
            let tree = Argus.Extract.of_report r in
            let diag =
              Rustc_diag.Diagnostic.to_string
                (Rustc_diag.Diagnostic.of_tree program r.goal tree)
            in
            let html =
              Argus.Html.page
                ~title:(Printf.sprintf "Cost profile of %s" input_name)
                ~heat:(heat_fn prof) ~program ~diagnostic:(Some diag) tree
            in
            write_file out html)
    | Some _, None ->
        prerr_endline
          "warning: --html needs a live input (a program, not a journal); ignored"
    | None, _ -> ()
  in
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Input: an L_TRAIT program (solved live, with GC allocation \
             sampling) or a journal written by $(b,--events-out) (attributed \
             offline from its $(b,ts_ns) deltas).")
  in
  let corpus_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"ID"
          ~doc:"Profile the bundled corpus entry $(docv) instead of a file.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the hot-goal table (default 10).")
  in
  let flame_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"OUT.folded"
          ~doc:
            "Write a collapsed/folded stack file (one `frame;frame value` line \
             per stack, self time in nanoseconds) for flamegraph.pl or inferno.")
  in
  let speedscope_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "speedscope" ] ~docv:"OUT.json"
          ~doc:"Write an evented speedscope profile, loadable at speedscope.app.")
  in
  let html_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"OUT.html"
          ~doc:
            "Render the first failing goal's proof tree as HTML with heat \
             overlays: background tint by self time, cost figures per node. \
             Live inputs only.")
  in
  let tree_arg =
    Arg.(
      value & flag
      & info [ "tree" ]
          ~doc:
            "Print each failing goal's proof tree with per-node cost \
             annotations. Live inputs only.")
  in
  let observability_term =
    Term.(
      const observability_setup $ profile_arg $ trace_out_arg $ no_cache_arg $ no_index_arg
      $ trace_buffer_arg)
  in
  let exits =
    Cmd.Exit.info 2 ~doc:"on unreadable or malformed inputs, or unwritable outputs."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "profile" ~exits
       ~doc:
         "Per-goal cost attribution: fold the search journal into a \
          cost-annotated goal tree (self/total wall time, unify attempts, \
          cache hits/misses, sampled GC words) and export it as a hot-goal \
          table, flamegraphs, or a heat-annotated HTML proof tree.")
    Term.(
      const run $ observability_term $ file_opt_arg $ corpus_id_arg $ top_arg
      $ flame_arg $ speedscope_arg $ html_arg $ tree_arg)

(* ------------------------------------------------------------------ *)
(* interactive *)

let interactive_cmd =
  let run () file =
    let program, report = solve_file file in
    match
      List.find_opt
        (fun (r : Solver.Obligations.goal_report) -> r.status <> Solver.Obligations.Proved)
        report.reports
    with
    | None -> print_endline "no trait errors — nothing to debug"
    | Some r ->
        let tree = Argus.Extract.of_report r in
        let vs = ref (Argus.View_state.create tree) in
        let help () =
          print_endline
            "commands: e N (expand row) | c N (collapse row) | h N (hover row) | \
             t N (toggle type ellipsis) | bu | td | rank inertia|depth|vars | \
             paths | all | none | preds | impls N | src N | help | q"
        in
        let render () =
          print_newline ();
          let lines = Argus.Render.view !vs in
          List.iter
            (fun (l : Argus.Render.line) ->
              Printf.printf "%3d %s\n" l.index (Argus.Render.line_to_string l))
            lines;
          match Argus.View_state.minibuffer !vs with
          | [] -> ()
          | paths ->
              print_endline "-- definition paths --";
              List.iter print_endline paths
        in
        let node_at idx =
          let lines = Argus.Render.view !vs in
          List.find_opt (fun (l : Argus.Render.line) -> l.index = idx) lines
          |> Option.map (fun (l : Argus.Render.line) -> l.node)
        in
        help ();
        render ();
        let rec loop () =
          print_string "> ";
          match In_channel.input_line stdin with
          | None -> ()
          | Some line -> (
              let parts =
                String.split_on_char ' ' (String.trim line)
                |> List.filter (fun s -> s <> "")
              in
              let with_row n f =
                match node_at n with
                | Some id when id = Argus.Render.others_row ->
                    vs := Argus.View_state.toggle_others !vs;
                    render ()
                | Some id ->
                    vs := f id;
                    render ()
                | None -> print_endline "no such row"
              in
              match parts with
              | [ "q" ] | [ "quit" ] -> ()
              | [ "help" ] ->
                  help ();
                  loop ()
              | [ "e"; n ] ->
                  with_row (int_of_string n) (fun id -> Argus.View_state.expand !vs id);
                  loop ()
              | [ "c"; n ] ->
                  with_row (int_of_string n) (fun id -> Argus.View_state.collapse !vs id);
                  loop ()
              | [ "h"; n ] ->
                  with_row (int_of_string n) (fun id -> Argus.View_state.hover !vs id);
                  loop ()
              | [ "t"; n ] ->
                  with_row (int_of_string n) (fun id ->
                      Argus.View_state.toggle_ty_expand !vs id);
                  loop ()
              | [ "rank"; name ] ->
                  (match name with
                  | "inertia" -> vs := Argus.View_state.set_ranker !vs Argus.Heuristics.by_inertia
                  | "depth" -> vs := Argus.View_state.set_ranker !vs Argus.Heuristics.by_depth
                  | "vars" -> vs := Argus.View_state.set_ranker !vs Argus.Heuristics.by_infer_vars
                  | "none" -> vs := Argus.View_state.set_ranker !vs Argus.Heuristics.unsorted
                  | _ -> print_endline "unknown ranker (inertia|depth|vars|none)");
                  render ();
                  loop ()
              | [ "bu" ] ->
                  vs := Argus.View_state.set_direction !vs Argus.View_state.Bottom_up;
                  render ();
                  loop ()
              | [ "td" ] ->
                  vs := Argus.View_state.set_direction !vs Argus.View_state.Top_down;
                  render ();
                  loop ()
              | [ "paths" ] ->
                  vs := Argus.View_state.toggle_paths !vs;
                  render ();
                  loop ()
              | [ "preds" ] ->
                  vs := Argus.View_state.toggle_all_predicates !vs;
                  render ();
                  loop ()
              | [ "all" ] ->
                  vs := Argus.View_state.expand_all !vs;
                  render ();
                  loop ()
              | [ "none" ] ->
                  vs := Argus.View_state.collapse_all !vs;
                  render ();
                  loop ()
              | [ "impls"; n ] ->
                  (match node_at (int_of_string n) with
                  | Some id -> (
                      let node = Argus.Proof_tree.node tree id in
                      let trait_ =
                        match node.kind with
                        | Argus.Proof_tree.Goal g ->
                            Trait_lang.Predicate.trait_path g.pred
                        | Argus.Proof_tree.Cand c -> (
                            match c.source with
                            | Solver.Trace.Cand_impl i -> Some i.impl_trait.trait
                            | _ -> None)
                      in
                      match trait_ with
                      | Some t ->
                          List.iter print_endline (Argus.Ctxlinks.impls_of_trait program t)
                      | None -> print_endline "row has no trait")
                  | None -> print_endline "no such row");
                  loop ()
              | [ "src"; n ] ->
                  (match node_at (int_of_string n) with
                  | Some id -> (
                      let node = Argus.Proof_tree.node tree id in
                      match Argus.Ctxlinks.span_of_node program node with
                      | Some sp -> print_endline (Trait_lang.Span.to_string sp)
                      | None -> print_endline "no source location")
                  | None -> print_endline "no such row");
                  loop ()
              | _ ->
                  print_endline "unknown command (try: help)";
                  loop ())
        in
        loop ()
  in
  Cmd.v
    (Cmd.info "interactive" ~doc:"Interactively explore the inference tree of a failing goal")
    Term.(const run $ telemetry_term $ file_arg)

(* ------------------------------------------------------------------ *)
(* watch *)

let watch_cmd =
  let run () file interval once =
    let session = Solver.Session.create () in
    (* Returns the check-style exit code for this resolve: 0 clean,
       1 trait/type errors, 2 load error.  A load error mid-watch keeps
       the last good session state (the next successful parse
       revalidates against it). *)
    let resolve ~first () =
      match load_program file with
      | Error m ->
          Printf.printf "%s: load error (session state kept)\n  %s\n%!" file m;
          2
      | Ok program ->
          let t0 = Unix.gettimeofday () in
          let delta = Solver.Session.edit session program in
          let report = Solver.Session.resolve session in
          let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
          let errors = Solver.Session.errors session in
          Printf.printf "%s: %d goals, %d error%s in %.1f ms\n" file
            (List.length report.Solver.Obligations.reports)
            (List.length errors)
            (if List.length errors = 1 then "" else "s")
            ms;
          if first then print_string "  initial load (cold resolve)\n"
          else
            Printf.printf
              "  edit: %d decl(s) changed; cache: %d evicted, %d survived; \
               index: %d bucket(s) carried over\n"
              delta.Solver.Session.d_changed delta.Solver.Session.d_evicted
              delta.Solver.Session.d_survived delta.Solver.Session.d_rebased;
          List.iter
            (fun (r : Solver.Obligations.goal_report) ->
              print_string
                (Rustc_diag.Diagnostic.to_string
                   (Rustc_diag.Diagnostic.of_tree program r.goal
                      (Argus.Extract.of_report r))))
            errors;
          print_string "\n";
          flush stdout;
          if errors = [] then 0 else 1
    in
    let code = resolve ~first:true () in
    if once then exit code;
    let mtime () = try Some (Unix.stat file).Unix.st_mtime with Unix.Unix_error _ -> None in
    let rec loop last =
      Unix.sleepf interval;
      let m = mtime () in
      if m <> last then ignore (resolve ~first:false ());
      loop m
    in
    loop (mtime ())
  in
  let interval_arg =
    Arg.(
      value & opt float 0.5
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Poll period for modification-time changes.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Load, resolve, report, and exit with $(b,argus check)-style codes \
             instead of watching — the non-interactive smoke path.")
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"with $(b,--once), on trait or type errors."
    :: Cmd.Exit.info 2 ~doc:"with $(b,--once), on parse, name-resolution, or I/O errors."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "watch" ~exits
       ~doc:
         "Re-solve $(i,FILE) on every change through a persistent incremental \
          session: each save is fingerprint-diffed against the previous \
          version, only cache entries that consulted a dirtied declaration \
          are evicted, and unaffected goals replay from the cache. Prints \
          rustc-style diagnostics plus the edit's red-green delta.")
    Term.(const run $ telemetry_term $ file_arg $ interval_arg $ once_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_cmd =
  let run () socket tcp =
    let server = Serve.Server.create () in
    (* One connection's read loop: newline-delimited JSON-RPC in, one
       response line (flushed) per request out.  Returns when the peer
       closes or a [shutdown] lands. *)
    let serve_channel ic oc =
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
            (match Serve.Server.handle_line server line with
            | Some resp ->
                output_string oc resp;
                output_char oc '\n';
                flush oc
            | None -> ());
            if not (Serve.Server.shutting_down server) then loop ()
      in
      loop ()
    in
    let listen_loop sock cleanup =
      let rec accept_loop () =
        if not (Serve.Server.shutting_down server) then begin
          let fd, _ = Unix.accept sock in
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          (try serve_channel ic oc with End_of_file | Sys_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      (try Unix.close sock with Unix.Unix_error _ -> ());
      cleanup ();
      exit 0
    in
    match (socket, tcp) with
    | Some _, Some _ ->
        prerr_endline "error: --socket and --tcp are mutually exclusive";
        exit 2
    | None, None ->
        serve_channel stdin stdout;
        exit 0
    | Some path, None ->
        if Sys.file_exists path then Sys.remove path;
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 8;
        Printf.eprintf "argus serve: listening on %s\n%!" path;
        listen_loop sock (fun () -> try Sys.remove path with Sys_error _ -> ())
    | None, Some port ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen sock 8;
        Printf.eprintf "argus serve: listening on 127.0.0.1:%d\n%!" port;
        listen_loop sock (fun () -> ())
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket at $(docv) (sequential accept \
             loop; sessions persist across connections) instead of stdio.")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Listen on 127.0.0.1:$(docv) instead of stdio.")
  in
  let observability_term =
    Term.(
      const observability_setup $ profile_arg $ trace_out_arg $ no_cache_arg $ no_index_arg
      $ trace_buffer_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent session daemon: newline-delimited JSON-RPC 2.0 \
          over stdio (default), a Unix socket, or TCP. Verbs: open, reload, \
          solve, tree, expand, hover, explain, profile, shutdown. The \
          interner, evaluation cache, and fast-reject indexes stay warm \
          across requests; solve/tree/explain responses are byte-identical \
          to the equivalent one-shot subcommand. See docs/SERVE.md.")
    Term.(const run $ observability_term $ socket_arg $ tcp_arg)

(* ------------------------------------------------------------------ *)
(* fuzz *)

let fuzz_cmd =
  let parse_oracles names =
    match names with
    | [] -> Fuzz.Oracle.all
    | names ->
        List.map
          (fun n ->
            match Fuzz.Oracle.of_string n with
            | Some o -> o
            | None ->
                Printf.eprintf "error: unknown oracle %S (known: %s)\n" n
                  (String.concat ", " (List.map Fuzz.Oracle.to_string Fuzz.Oracle.all));
                exit 2)
          names
  in
  (* The jobs oracle compares against a parallel batch, so it wants a
     shared pool for the whole campaign; every other oracle runs in
     this domain. *)
  let with_pool ~oracles ~jobs f =
    if List.mem Fuzz.Oracle.Jobs oracles then begin
      let pool = Pool.create ~jobs:(max 2 (min (resolve_jobs jobs) 4)) in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f (Some pool))
    end
    else f None
  in
  let run () iters seed oracle_names shrink size out replay jobs =
    let oracles = parse_oracles oracle_names in
    match replay with
    | Some path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "error: no such file: %s\n" path;
          exit 2
        end;
        let verdicts =
          with_pool ~oracles ~jobs (fun pool -> Fuzz.Driver.replay ?pool ~oracles ~path ())
        in
        let failed = ref 0 in
        List.iter
          (fun (name, v) ->
            match v with
            | Fuzz.Oracle.Pass -> Printf.printf "%-12s pass\n" (Fuzz.Oracle.to_string name)
            | Fuzz.Oracle.Fail m ->
                incr failed;
                Printf.printf "%-12s FAIL  %s\n" (Fuzz.Oracle.to_string name) m)
          verdicts;
        exit (if !failed > 0 then 1 else 0)
    | None ->
        let iters = max 0 iters in
        let outcome =
          with_pool ~oracles ~jobs (fun pool ->
              Fuzz.Driver.run ?pool ~out_dir:out ~shrink ~size
                ~progress:(fun line -> Printf.eprintf "%s\n%!" line)
                ~oracles ~iters ~seed ())
        in
        (match outcome.o_counterexample with
        | None ->
            Printf.printf
              "fuzz: %d iterations x %d oracles (%s), %d checks, 0 counterexamples\n"
              outcome.o_iters (List.length oracles)
              (String.concat ", " (List.map Fuzz.Oracle.to_string oracles))
              outcome.o_checks;
            exit 0
        | Some cx ->
            Printf.printf "fuzz: counterexample at iteration %d (oracle %s)\n"
              cx.cx_iter
              (Fuzz.Oracle.to_string cx.cx_oracle);
            Printf.printf "  %s\n" cx.cx_message;
            Printf.printf "  %d declaration(s) after %s\n" cx.cx_decls
              (if shrink then "shrinking" else "no shrinking (--shrink to minimize)");
            (match cx.cx_file with
            | Some f -> Printf.printf "  repro written to %s\n" f
            | None -> ());
            exit 1)
  in
  let iters_arg =
    Arg.(
      value & opt int 100
      & info [ "iters" ] ~docv:"N"
          ~doc:"Number of generated programs ($(b,--iters 0) is a clean no-op).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed; iteration $(i,i) depends only on (seed, i, size).")
  in
  let oracle_arg =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            "Oracle(s) to run (repeatable; default: all). Known: wellformed, \
             cache, jobs, journal, roundtrip, intern, determinism, index, \
             incremental.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Greedily minimize a counterexample before reporting it.")
  in
  let size_arg =
    Arg.(
      value & opt int Fuzz.Gen.default_size
      & info [ "size" ] ~docv:"K" ~doc:"Program size knob, 1 (tiny) to 4 (large).")
  in
  let out_arg =
    Arg.(
      value & opt string "fuzz-repros"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory (created if missing) for counterexample repro files.")
  in
  let replay_arg =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run the oracle matrix over a saved repro instead of generating.")
  in
  let observability_term =
    Term.(
      const observability_setup $ profile_arg $ trace_out_arg $ no_cache_arg $ no_index_arg
      $ trace_buffer_arg)
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"when a counterexample is found (or a replayed repro still fails)."
    :: Cmd.Exit.info 2 ~doc:"on usage or I/O errors."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "fuzz" ~exits
       ~doc:
         "Generative differential testing: random well-formed L_TRAIT programs \
          solved several ways (cache on/off, --jobs 2 vs 1, journal replay, \
          print/re-parse, interning, repeated runs) that must agree. Writes a \
          replayable $(i,.trait) repro and exits 1 on a counterexample.")
    Term.(
      const run $ observability_term $ iters_arg $ seed_arg $ oracle_arg $ shrink_arg
      $ size_arg $ out_arg $ replay_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* bench *)

(* [argus bench serve]: the in-process serve load generator, as a
   self-checking gate — exits 1 when any request errors or when the
   warm-phase cache hit rate fails to clear the cold-phase rate (the
   property the daemon exists for).  The full BENCH_pipeline.json
   section is written by the bench harness ([make bench-serve]). *)
let bench_serve_cmd =
  let run clients seed jobs programs =
    let pool = if jobs > 1 then Some (Pool.create ~jobs) else None in
    let stats =
      match pool with
      | Some _ ->
          Fun.protect
            ~finally:(fun () -> Option.iter Pool.shutdown pool)
            (fun () -> Fuzz.Serve_load.run ?pool ~jobs ~programs ~clients ~seed ())
      | None -> Fuzz.Serve_load.run ~jobs ~programs ~clients ~seed ()
    in
    Printf.printf "serve load: %d clients x 2-phase session script (seed %d, jobs %d)\n"
      stats.Fuzz.Serve_load.ls_clients seed jobs;
    Printf.printf "  requests    %d (%d errors)\n" stats.Fuzz.Serve_load.ls_requests
      stats.Fuzz.Serve_load.ls_errors;
    Printf.printf "  wall        %.2f ms\n"
      (float_of_int stats.Fuzz.Serve_load.ls_wall_ns /. 1e6);
    Printf.printf "  throughput  %.0f req/s\n" stats.Fuzz.Serve_load.ls_throughput_rps;
    Printf.printf "  latency     p50 %.1f us, p99 %.1f us\n"
      (float_of_int stats.Fuzz.Serve_load.ls_p50_ns /. 1e3)
      (float_of_int stats.Fuzz.Serve_load.ls_p99_ns /. 1e3);
    Printf.printf "  cache cold  %d hits / %d misses (%.1f%%)\n"
      stats.Fuzz.Serve_load.ls_cold_hits stats.Fuzz.Serve_load.ls_cold_misses
      (stats.Fuzz.Serve_load.ls_cold_hit_rate *. 100.0);
    Printf.printf "  cache warm  %d hits / %d misses (%.1f%%)\n"
      stats.Fuzz.Serve_load.ls_warm_hits stats.Fuzz.Serve_load.ls_warm_misses
      (stats.Fuzz.Serve_load.ls_warm_hit_rate *. 100.0);
    if stats.Fuzz.Serve_load.ls_errors > 0 then begin
      Printf.eprintf "error: %d request(s) answered with a JSON-RPC error\n"
        stats.Fuzz.Serve_load.ls_errors;
      exit 1
    end;
    if stats.Fuzz.Serve_load.ls_warm_hit_rate <= stats.Fuzz.Serve_load.ls_cold_hit_rate
    then begin
      Printf.eprintf
        "error: warm hit rate %.1f%% does not clear the cold rate %.1f%% — the eval \
         cache did not survive across requests\n"
        (stats.Fuzz.Serve_load.ls_warm_hit_rate *. 100.0)
        (stats.Fuzz.Serve_load.ls_cold_hit_rate *. 100.0);
      exit 1
    end
  in
  let clients_arg =
    Arg.(
      value & opt int 1000
      & info [ "clients" ] ~docv:"N" ~doc:"Number of concurrent session scripts.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the generated program pool.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"Domain-pool workers driving the clients.")
  in
  let programs_arg =
    Arg.(
      value & opt int 8
      & info [ "programs" ] ~docv:"N"
          ~doc:"Size of the generated program pool clients draw from.")
  in
  let exits =
    Cmd.Exit.info 1
      ~doc:"when a request errors or the warm hit rate fails to clear the cold rate."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Replay seeded concurrent session scripts (open/solve/tree/expand/hover/\
          explain/reload) against an in-process serve daemon and report throughput, \
          latency percentiles, and warm-vs-cold cache hit rates.")
    Term.(const run $ clients_arg $ seed_arg $ jobs_arg $ programs_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench" ~doc:"In-process load benchmarks (see also $(b,make bench).)")
    [ bench_serve_cmd ]

(* ------------------------------------------------------------------ *)

let version = "1.9.0"

(* With no subcommand: honour -V (short for the auto-generated
   --version), otherwise show the help page. *)
let default_term =
  let v_flag =
    Arg.(value & flag & info [ "V" ] ~doc:"Print version information (same as --version).")
  in
  Term.(
    ret
      (const (fun v -> if v then `Ok (print_endline version) else `Help (`Pager, None))
      $ v_flag))

let main =
  Cmd.group ~default:default_term
    (Cmd.info "argus" ~version
       ~doc:"An interactive debugger for trait errors (PLDI 2025 reproduction)")
    [
      check_cmd;
      bottom_up_cmd;
      top_down_cmd;
      diag_cmd;
      inertia_cmd;
      json_cmd;
      html_cmd;
      dot_cmd;
      corpus_cmd;
      study_cmd;
      explain_cmd;
      profile_cmd;
      interactive_cmd;
      watch_cmd;
      serve_cmd;
      fuzz_cmd;
      bench_cmd;
    ]

let () = exit (Cmd.eval main)
