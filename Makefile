.PHONY: build test bench bench-json bench-journal ci clean

build:
	dune build @all

test:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# Only the machine-readable section: writes BENCH_pipeline.json at the
# repository root (one entry per corpus program), including the journal
# overhead section.
bench-json:
	dune exec bench/main.exe -- --json-only

# Re-measure only the search-journal overhead (disabled vs streaming to
# /dev/null), preserving existing pipeline entries in BENCH_pipeline.json.
bench-journal:
	dune exec bench/main.exe -- --journal-only

# What CI runs: full build, full test suite, and the bench smoke that
# regenerates BENCH_pipeline.json.
ci:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- --json-only

clean:
	dune clean
