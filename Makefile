.PHONY: build test bench bench-json bench-journal perf ci clean

build:
	dune build @all

test:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# Only the machine-readable section: writes BENCH_pipeline.json at the
# repository root (one entry per corpus program), including the journal
# overhead section.
bench-json:
	dune exec bench/main.exe -- --json-only

# Re-measure only the search-journal overhead (disabled vs streaming to
# /dev/null), preserving existing pipeline entries in BENCH_pipeline.json.
bench-journal:
	dune exec bench/main.exe -- --journal-only

# Re-measure only the evaluation-cache on/off comparison (the headline
# speedup numbers; see docs/PERFORMANCE.md), preserving the other
# BENCH_pipeline.json sections.
perf:
	dune exec bench/main.exe -- --cache-only

# What CI runs: full build, full test suite, and the bench smoke that
# regenerates BENCH_pipeline.json (1 timed run, 1 warmup — correctness
# of the harness, not statistics).
ci:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- --json-only --runs 1 --warmup 1

clean:
	dune clean
