.PHONY: build test bench bench-json bench-journal bench-parallel bench-fuzz bench-scale bench-incremental bench-diff fuzz perf profile ci clean

build:
	dune build @all

test:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# Only the machine-readable section: writes BENCH_pipeline.json at the
# repository root (one entry per corpus program), including the journal
# overhead section.
bench-json:
	dune exec bench/main.exe -- --json-only

# Re-measure only the search-journal overhead (disabled vs streaming to
# /dev/null), preserving existing pipeline entries in BENCH_pipeline.json.
bench-journal:
	dune exec bench/main.exe -- --journal-only

# Re-measure only the parallel batch section (corpus wall-clock at
# jobs 1/2/4/8 + shared-cache hit rate), preserving the other
# BENCH_pipeline.json sections.
bench-parallel:
	dune exec bench/main.exe -- --parallel-only

# Re-measure only the differential-fuzzing throughput section
# (generation + per-oracle check cost), preserving the other
# BENCH_pipeline.json sections.
bench-fuzz:
	dune exec bench/main.exe -- --fuzz-only

# Re-measure only the mega-library scale section (per-goal solve cost
# at 100/1000/10000 impls, fast-reject index on vs off), preserving
# the other BENCH_pipeline.json sections.
bench-scale:
	dune exec bench/main.exe -- --scale-only

# Re-measure only the incremental re-solving section (warm-session
# single-declaration edit vs from-scratch solve, corpus + mega
# libraries), preserving the other BENCH_pipeline.json sections.
bench-incremental:
	dune exec bench/main.exe -- --incremental-only

# Perf-regression gate: re-measure the machine-readable section and
# compare it against the committed baseline (see docs/PERFORMANCE.md
# for the thresholds). Exits nonzero when any metric breaches the fail
# threshold; thresholds are generous because a 1-run remeasure on a
# loaded machine is noisy.
bench-diff:
	cp BENCH_pipeline.json bench-baseline.json
	dune exec bench/main.exe -- --json-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --diff bench-baseline.json BENCH_pipeline.json --warn-above 1.5 --fail-above 25

# Per-goal cost attribution of the paper's diesel case study: hot-goal
# table + agreement line on stdout, flamegraph artifacts next to it
# (see docs/OBSERVABILITY.md, "Profiling and cost attribution").
profile:
	dune exec bin/argus_cli.exe -- profile --corpus diesel-missing-join \
	  --flame argus-profile.folded --speedscope argus-profile.speedscope.json \
	  --html argus-profile.html

# Differential fuzzing campaign: 500 random programs through every
# oracle at the pinned CI seed, shrinking any counterexample to a
# replayable .trait repro under fuzz-repros/ (see docs/TESTING.md).
fuzz:
	dune exec bin/argus_cli.exe -- fuzz --iters 500 --seed 42 --shrink

# Re-measure the performance sections — the evaluation-cache on/off
# comparison and the parallel batch curves (see docs/PERFORMANCE.md) —
# preserving the other BENCH_pipeline.json sections.
perf:
	dune exec bench/main.exe -- --cache-only
	dune exec bench/main.exe -- --parallel-only

# What CI runs: full build, full test suite, a parallel corpus smoke
# (all bundled programs at --jobs 4), a 200-iteration fuzz smoke at the
# pinned seed (all nine oracles, incremental included), a
# non-interactive `argus watch --once` smoke, the bench smokes that
# regenerate BENCH_pipeline.json (1 timed run, 1 warmup — correctness
# of the harness, not statistics), and the perf-regression gate
# against the committed baseline.
ci:
	dune build @all
	dune runtest
	dune exec bin/argus_cli.exe -- corpus --all --jobs 4
	dune exec bin/argus_cli.exe -- fuzz --iters 200 --seed 42
	dune exec bin/argus_cli.exe -- watch --once examples/timer.trait; test $$? -eq 1
	cp BENCH_pipeline.json bench-baseline.json
	dune exec bench/main.exe -- --json-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --parallel-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --scale-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --incremental-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --diff bench-baseline.json BENCH_pipeline.json --warn-above 1.5 --fail-above 25

clean:
	dune clean
