.PHONY: build test bench bench-json clean

build:
	dune build @all

test:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# Only the machine-readable section: writes BENCH_pipeline.json at the
# repository root (one entry per corpus program).
bench-json:
	dune exec bench/main.exe -- --json-only

clean:
	dune clean
