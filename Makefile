.PHONY: build test bench bench-json bench-journal bench-parallel bench-fuzz bench-scale bench-incremental bench-serve bench-diff fuzz perf profile serve-smoke ci clean

build:
	dune build @all

test:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# Only the machine-readable section: writes BENCH_pipeline.json at the
# repository root (one entry per corpus program), including the journal
# overhead section.
bench-json:
	dune exec bench/main.exe -- --json-only

# Re-measure only the search-journal overhead (disabled vs streaming to
# /dev/null), preserving existing pipeline entries in BENCH_pipeline.json.
bench-journal:
	dune exec bench/main.exe -- --journal-only

# Re-measure only the parallel batch section (corpus wall-clock at
# jobs 1/2/4/8 + shared-cache hit rate), preserving the other
# BENCH_pipeline.json sections.
bench-parallel:
	dune exec bench/main.exe -- --parallel-only

# Re-measure only the differential-fuzzing throughput section
# (generation + per-oracle check cost), preserving the other
# BENCH_pipeline.json sections.
bench-fuzz:
	dune exec bench/main.exe -- --fuzz-only

# Re-measure only the mega-library scale section (per-goal solve cost
# at 100/1000/10000 impls, fast-reject index on vs off), preserving
# the other BENCH_pipeline.json sections.
bench-scale:
	dune exec bench/main.exe -- --scale-only

# Re-measure only the incremental re-solving section (warm-session
# single-declaration edit vs from-scratch solve, corpus + mega
# libraries), preserving the other BENCH_pipeline.json sections.
bench-incremental:
	dune exec bench/main.exe -- --incremental-only

# Re-measure only the serve-daemon load section (1000 concurrent
# session scripts against one live server, jobs 1 and 4: throughput,
# p50/p99 latency, cold vs warm cache hit rates), preserving the other
# BENCH_pipeline.json sections.
bench-serve:
	dune exec bench/main.exe -- --serve-only

# Perf-regression gate: re-measure the machine-readable section and
# compare it against the committed baseline (see docs/PERFORMANCE.md
# for the thresholds). Exits nonzero when any metric breaches the fail
# threshold; thresholds are generous because a 1-run remeasure on a
# loaded machine is noisy.
bench-diff:
	cp BENCH_pipeline.json bench-baseline.json
	dune exec bench/main.exe -- --json-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --diff bench-baseline.json BENCH_pipeline.json --warn-above 1.5 --fail-above 25

# Per-goal cost attribution of the paper's diesel case study: hot-goal
# table + agreement line on stdout, flamegraph artifacts next to it
# (see docs/OBSERVABILITY.md, "Profiling and cost attribution").
profile:
	dune exec bin/argus_cli.exe -- profile --corpus diesel-missing-join \
	  --flame argus-profile.folded --speedscope argus-profile.speedscope.json \
	  --html argus-profile.html

# Differential fuzzing campaign: 500 random programs through every
# oracle at the pinned CI seed, shrinking any counterexample to a
# replayable .trait repro under fuzz-repros/ (see docs/TESTING.md).
fuzz:
	dune exec bin/argus_cli.exe -- fuzz --iters 500 --seed 42 --shrink

# End-to-end smoke of the serve daemon over its stdio transport: pipe
# a 4-line JSON-RPC script (open the paper's timer example, solve,
# render the tree, shut down) through `argus serve` and check that
# every request got a well-formed response and the shutdown was acked
# (see docs/SERVE.md).
serve-smoke:
	printf '%s\n' \
	  '{"jsonrpc":"2.0","id":1,"method":"open","params":{"session":"smoke","path":"examples/timer.trait"}}' \
	  '{"jsonrpc":"2.0","id":2,"method":"solve","params":{"session":"smoke"}}' \
	  '{"jsonrpc":"2.0","id":3,"method":"tree","params":{"session":"smoke"}}' \
	  '{"jsonrpc":"2.0","id":4,"method":"shutdown"}' \
	  | dune exec bin/argus_cli.exe -- serve > serve-smoke.jsonl
	test "$$(wc -l < serve-smoke.jsonl)" -eq 4
	test "$$(grep -c '"jsonrpc":"2.0"' serve-smoke.jsonl)" -eq 4
	grep -q '"ok":true' serve-smoke.jsonl
	! grep -q '"error"' serve-smoke.jsonl
	rm -f serve-smoke.jsonl

# Re-measure the performance sections — the evaluation-cache on/off
# comparison and the parallel batch curves (see docs/PERFORMANCE.md) —
# preserving the other BENCH_pipeline.json sections.
perf:
	dune exec bench/main.exe -- --cache-only
	dune exec bench/main.exe -- --parallel-only

# What CI runs: full build, full test suite, a parallel corpus smoke
# (all bundled programs at --jobs 4), a 200-iteration fuzz smoke at the
# pinned seed (all ten oracles, serve and incremental included), a
# non-interactive `argus watch --once` smoke, the serve stdio-transport
# smoke, the bench smokes that regenerate BENCH_pipeline.json (1 timed
# run, 1 warmup — correctness of the harness, not statistics), and the
# perf-regression gate against the committed baseline.
ci:
	dune build @all
	dune runtest
	dune exec bin/argus_cli.exe -- corpus --all --jobs 4
	dune exec bin/argus_cli.exe -- fuzz --iters 200 --seed 42
	dune exec bin/argus_cli.exe -- watch --once examples/timer.trait; test $$? -eq 1
	$(MAKE) serve-smoke
	cp BENCH_pipeline.json bench-baseline.json
	dune exec bench/main.exe -- --json-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --parallel-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --scale-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --incremental-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --serve-only --runs 1 --warmup 1
	dune exec bench/main.exe -- --diff bench-baseline.json BENCH_pipeline.json --warn-above 1.5 --fail-above 25

clean:
	dune clean
