(** The benchmark harness: one section per paper table/figure, plus
    ablations of design choices called out in DESIGN.md.

    Run with: [dune exec bench/main.exe]

    Sections:
    - Fig 2b / 3b / 4b: the three motivating diagnostics, regenerated;
    - Fig 9 / 10: the Bevy views and the inertia pipeline;
    - Fig 11: the (simulated) user study with all reported statistics;
    - Fig 12a: distance-to-root-cause, inertia vs baselines vs rustc;
    - Fig 12b: DNF normalization time vs inference-tree size;
    - ablations: eager vs lazy DNF minimization (Bechamel), solver
      depth-limit sweep, end-to-end solve cost per corpus program,
      heuristic ranking cost, inertia weight sensitivity. *)

open Trait_lang

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let now_ns () = Monotonic_clock.clock_linux_get_time ()

(* Defaults overridable from the command line: [--runs N] (CI smoke uses
   [--runs 1]) and [--warmup N]. *)
let bench_runs = ref 21
let bench_warmup = ref 3

(** Median wall-clock nanoseconds of [f] over [runs] timed runs, after
    [warmup] untimed runs (fills icache/branch predictors and — for the
    solver — the evaluation cache, so timed runs measure steady state). *)
let time_median ?runs ?warmup f =
  let runs = Option.value runs ~default:!bench_runs in
  let warmup = Option.value warmup ~default:!bench_warmup in
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let samples =
    List.init runs (fun _ ->
        let t0 = now_ns () in
        ignore (Sys.opaque_identity (f ()));
        Int64.to_float (Int64.sub (now_ns ()) t0))
  in
  Stats.Descriptive.median samples

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing *)

let run_bechamel ?(quota = 0.3) (tests : Bechamel.Test.t) =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let print_bechamel_rows rows =
  List.iter
    (fun (name, ns) ->
      if ns < 1e3 then Printf.printf "  %-52s %8.1f ns/run\n" name ns
      else if ns < 1e6 then Printf.printf "  %-52s %8.2f us/run\n" name (ns /. 1e3)
      else Printf.printf "  %-52s %8.2f ms/run\n" name (ns /. 1e6))
    rows

(* ------------------------------------------------------------------ *)
(* Fig 2b / 3b / 4b: the motivating diagnostics *)

let fig_motivating () =
  section "Fig 2b / 3b / 4b — motivating diagnostics (baseline renderer)";
  List.iter
    (fun id ->
      let e = Option.get (Corpus.Suite.find id) in
      let program, tree = Corpus.Harness.failed_tree e in
      let goal = List.hd (Program.goals program) in
      Printf.printf "\n--- %s ---\n" e.title;
      print_string
        (Rustc_diag.Diagnostic.to_string (Rustc_diag.Diagnostic.of_tree program goal tree)))
    [ "diesel-missing-join"; "ast-overflow"; "bevy-errant-param" ]

(* ------------------------------------------------------------------ *)
(* Fig 9 / 10: the Bevy views and the inertia pipeline *)

let fig_bevy_views () =
  section "Fig 9 / 10 — Argus views and the inertia pipeline on Bevy";
  let e = Option.get (Corpus.Suite.find "bevy-errant-param") in
  let _, tree = Corpus.Harness.failed_tree e in
  print_endline "\nBottom-up (Fig 9a):";
  print_endline (Argus.Render.tree_to_string ~direction:Argus.View_state.Bottom_up tree);
  print_endline "\nInertia pipeline (Fig 10):";
  let ranking = Argus.Inertia.rank tree in
  List.iter
    (fun (s : Argus.Inertia.scored_set) ->
      Printf.printf "  MCS score %2d: %s\n" s.total
        (String.concat " & "
           (List.map
              (fun (p, _, _, w) -> Printf.sprintf "%s [w=%d]" (Pretty.predicate p) w)
              s.predicates)))
    ranking.sets

(* ------------------------------------------------------------------ *)
(* Fig 11: the user study *)

let fig11 () =
  section "Fig 11 — user study (simulated participants, N=25, seed 42)";
  let d = Study.Simulate.run ~seed:42 () in
  print_endline (Study.Analyze.to_string (Study.Analyze.analyze d));
  print_endline "\npaper reference: loc 84% vs 38% (chi=22.24); loc time 3m03s vs 9m58s";
  print_endline "                 fix 50% vs 32% (chi=3.35);  fix time 8m07s vs 10m00s";
  print_endline "\nper-task breakdown:";
  print_endline (Study.Analyze.per_task_to_string (Study.Analyze.per_task d))

(* ------------------------------------------------------------------ *)
(* Fig 12a: distance to the root cause *)

let fig12a () =
  section "Fig 12a — distance from the report to the root cause (17-program suite)";
  let rankers = Argus.Heuristics.all in
  let rows =
    List.map
      (fun (e : Corpus.Harness.entry) ->
        let program, tree = Corpus.Harness.failed_tree e in
        let rc = Corpus.Harness.root_cause_pred e in
        let heuristic_ranks =
          List.map
            (fun (r : Argus.Heuristics.ranker) ->
              Option.value ~default:(-1)
                (Argus.Heuristics.rank_of_root_cause r tree ~root_cause:rc))
            rankers
        in
        let goal = List.hd (Program.goals program) in
        let diag = Rustc_diag.Diagnostic.of_tree program goal tree in
        let rustc =
          Option.value ~default:(-1)
            (Rustc_diag.Diagnostic.distance_to_root_cause tree diag ~root_cause:rc)
        in
        (e.id, heuristic_ranks @ [ rustc ]))
      Corpus.Suite.entries
  in
  let headers =
    List.map (fun (r : Argus.Heuristics.ranker) -> r.name) rankers @ [ "rustc" ]
  in
  Printf.printf "%-28s" "program";
  List.iter (Printf.printf " %19s") headers;
  print_newline ();
  List.iter
    (fun (id, vals) ->
      Printf.printf "%-28s" id;
      List.iter (Printf.printf " %19d") vals;
      print_newline ())
    rows;
  (* medians, the §5.2.2 headline: 0 / 1 / 1 / 2 in the paper *)
  let columns = List.length headers in
  Printf.printf "%-28s" "MEDIAN";
  for c = 0 to columns - 1 do
    let col = List.map (fun (_, vals) -> float_of_int (List.nth vals c)) rows in
    Printf.printf " %19.1f" (Stats.Descriptive.median col)
  done;
  print_newline ();
  print_endline "paper medians: inertia 0, predicate depth 1, inference vars 1, rustc 2"

(* ------------------------------------------------------------------ *)
(* Fig 12b: DNF normalization time vs tree size *)

let fig12b () =
  section "Fig 12b — DNF normalization time vs inference-tree size";
  (* the corpus trees (the paper's real data points)... *)
  let corpus_points =
    List.map
      (fun (e : Corpus.Harness.entry) ->
        let _, tree = Corpus.Harness.failed_tree e in
        (e.id, tree))
      Corpus.Suite.entries
  in
  (* ...plus synthetic trees up to the paper's max of 36,794 nodes *)
  let synthetic_points =
    List.map
      (fun n -> (Printf.sprintf "synthetic-%d" n, Argus.Synthetic.of_size n))
      [ 10; 100; 500; 1000; 2554; 5000; 10000; 20000; 36794 ]
  in
  Printf.printf "%-28s %10s %12s %10s\n" "tree" "goals" "time" "conjuncts";
  let times = ref [] in
  List.iter
    (fun (name, tree) ->
      let goals = Argus.Proof_tree.goal_count tree in
      let dnf_of () =
        let f, _ = Argus.Formula.of_tree tree in
        Argus.Dnf.of_formula f
      in
      let ns = time_median dnf_of in
      times := (goals, ns) :: !times;
      let d = dnf_of () in
      Printf.printf "%-28s %10d %10.3fms %10d\n" name goals (ns /. 1e6)
        (Argus.Dnf.num_conjuncts d))
    (corpus_points @ synthetic_points);
  let ms = List.map (fun (_, ns) -> ns /. 1e6) !times in
  Printf.printf
    "median %.3fms, max %.3fms (paper: median 0.1ms, max 6.1ms; trees 1..36,794 nodes)\n"
    (Stats.Descriptive.median ms)
    (snd (Stats.Descriptive.min_max ms))

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation_dnf_minimization () =
  section "Ablation — eager vs lazy DNF minimization (Bechamel)";
  let tree = Argus.Synthetic.of_size 2554 in
  let f, _ = Argus.Formula.of_tree tree in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"dnf"
      [
        Test.make ~name:"minimize-eagerly" (Staged.stage (fun () -> Argus.Dnf.of_formula f));
        Test.make ~name:"minimize-at-end"
          (Staged.stage (fun () ->
               Argus.Dnf.of_formula ~cfg:{ Argus.Dnf.minimize_eagerly = false } f));
      ]
  in
  print_bechamel_rows (run_bechamel tests)

let ablation_solver_cost () =
  section "Ablation — end-to-end solve cost per corpus program (Bechamel)";
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"solve"
      (List.filter_map
         (fun id ->
           Option.map
             (fun (e : Corpus.Harness.entry) ->
               let program = Corpus.Harness.load e in
               Test.make ~name:e.id
                 (Staged.stage (fun () -> Solver.Obligations.solve_program program)))
             (Corpus.Suite.find id))
         [ "diesel-missing-join"; "bevy-errant-param"; "axum-body-first"; "ast-overflow" ])
  in
  print_bechamel_rows (run_bechamel tests)

let ablation_depth_limit () =
  section "Ablation — solver depth-limit sweep on a growing recursion";
  let src =
    "struct A; struct W<X>; trait T {} impl<X> T for W<X> where W<W<X>>: T {} goal W<A>: T;"
  in
  let program = Resolve.program_of_string ~file:"sweep.rs" src in
  List.iter
    (fun depth_limit ->
      let cfg = { Solver.Solve.default_config with depth_limit } in
      let ns = time_median (fun () -> Solver.Obligations.solve_program ~cfg program) in
      let report = Solver.Obligations.solve_program ~cfg program in
      let tree_size = Solver.Trace.size (List.hd report.reports).final in
      Printf.printf "  depth limit %3d: tree %5d nodes, %8.3f ms\n" depth_limit tree_size
        (ns /. 1e6))
    [ 8; 16; 24; 32; 48 ]

let ablation_ranking_cost () =
  section "Ablation — ranking-heuristic cost on the Bevy tree (Bechamel)";
  let e = Option.get (Corpus.Suite.find "bevy-errant-param") in
  let _, tree = Corpus.Harness.failed_tree e in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"rank"
      (List.map
         (fun (r : Argus.Heuristics.ranker) ->
           Test.make ~name:r.name (Staged.stage (fun () -> r.rank tree)))
         Argus.Heuristics.all)
  in
  print_bechamel_rows (run_bechamel tests)

let ablation_inertia_weight_sensitivity () =
  section "Ablation — ranking quality over the suite (median/mean root-cause rank)";
  let invert : Argus.Heuristics.ranker =
    { name = "inertia inverted"; rank = (fun tree -> List.rev (Argus.Heuristics.by_inertia.rank tree)) }
  in
  let rankers = Argus.Heuristics.all @ [ invert; Argus.Heuristics.unsorted ] in
  List.iter
    (fun (r : Argus.Heuristics.ranker) ->
      let ranks =
        List.map
          (fun (e : Corpus.Harness.entry) ->
            let _, tree = Corpus.Harness.failed_tree e in
            let rc = Corpus.Harness.root_cause_pred e in
            float_of_int
              (Option.value ~default:99
                 (Argus.Heuristics.rank_of_root_cause r tree ~root_cause:rc)))
          Corpus.Suite.entries
      in
      Printf.printf "  %-22s median rank %4.1f   mean rank %5.2f\n" r.name
        (Stats.Descriptive.median ranks)
        (Stats.Descriptive.mean ranks))
    rankers

(* ------------------------------------------------------------------ *)
(* BENCH_pipeline.json: the machine-readable end-to-end numbers *)

(** The commit the numbers were measured at, straight from [.git] (the
    bench runs from the repo root; no subprocess).  "unknown" outside a
    work tree. *)
let git_commit () =
  let first_line path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> String.trim (input_line ic))
  in
  let packed_ref r =
    let ic = open_in ".git/packed-refs" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          match String.index_opt line ' ' with
          | Some i when String.sub line (i + 1) (String.length line - i - 1) = r ->
              String.sub line 0 i
          | _ -> scan ()
        in
        scan ())
  in
  try
    let head = first_line ".git/HEAD" in
    if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
      let r = String.sub head 5 (String.length head - 5) in
      try first_line (Filename.concat ".git" r)
      with Sys_error _ | End_of_file -> ( try packed_ref r with _ -> "unknown")
    end
    else head
  with Sys_error _ | End_of_file -> "unknown"

(** Journal overhead per corpus program: the disabled sink (every
    emission point is one load + branch) vs streaming JSONL entries to
    /dev/null.  The disabled medians must be indistinguishable from the
    plain pipeline entries; the enabled cost is dominated by JSON
    encoding.  The evaluation cache is off for both sides — with a
    journal attached the solver re-derives cached subtrees anyway
    (observe-only mode), so leaving it on would bill cache savings from
    the disabled runs to the journal. *)
let bench_journal_entries () =
  Printf.printf "  %-28s %12s %12s %8s %9s\n" "program" "disabled" "enabled" "events"
    "overhead";
  Solver.Eval_cache.set_enabled false;
  let rows =
  List.map
    (fun (e : Corpus.Harness.entry) ->
      let program = Corpus.Harness.load e in
      let ns_disabled =
        time_median (fun () -> Solver.Obligations.solve_program program)
      in
      let devnull = open_out "/dev/null" in
      Journal.set_sink
        (Some
           (fun en ->
             output_string devnull
               (Argus_json.Json.to_string (Argus_json.Journal_codec.entry_to_json en));
             output_char devnull '\n'));
      let ns_enabled =
        time_median (fun () -> Solver.Obligations.solve_program program)
      in
      Journal.set_sink None;
      close_out devnull;
      let events = ref 0 in
      Journal.set_sink (Some (fun _ -> incr events));
      ignore (Solver.Obligations.solve_program program);
      Journal.set_sink None;
      let overhead_pct = (ns_enabled -. ns_disabled) /. ns_disabled *. 100.0 in
      Printf.printf "  %-28s %9.2f us %9.2f us %8d %+8.1f%%\n" e.id (ns_disabled /. 1e3)
        (ns_enabled /. 1e3) !events overhead_pct;
      Argus_json.Json.Obj
        [
          ("name", Argus_json.Json.String e.id);
          ("ns_disabled", Argus_json.Json.Float ns_disabled);
          ("ns_enabled", Argus_json.Json.Float ns_enabled);
          ("events", Argus_json.Json.Int !events);
          ("overhead_pct", Argus_json.Json.Float overhead_pct);
        ])
    Corpus.Suite.entries
  in
  Solver.Eval_cache.set_enabled true;
  rows

(** Evaluation-cache on/off comparison per 17-program suite entry.  The
    program is loaded once, so its interner stamp is stable and warm-up
    runs on the "on" side populate the cache the timed runs then hit.
    Hit/miss counters come from one extra telemetry-counted run against
    the warm cache. *)
let bench_cache_entries () =
  Printf.printf "  %-28s %12s %12s %8s %7s %7s\n" "program" "cache off" "cache on"
    "speedup" "hits" "misses";
  let rows =
    List.map
      (fun (e : Corpus.Harness.entry) ->
        let program = Corpus.Harness.load e in
        Solver.Eval_cache.set_enabled false;
        let ns_off = time_median (fun () -> Solver.Obligations.solve_program program) in
        Solver.Eval_cache.set_enabled true;
        Solver.Eval_cache.clear ();
        let ns_on = time_median (fun () -> Solver.Obligations.solve_program program) in
        Telemetry.reset ();
        Telemetry.enable ();
        ignore (Solver.Obligations.solve_program program);
        Telemetry.disable ();
        let tree_hits = Telemetry.counter_value "cache.tree.hits" in
        let tree_misses = Telemetry.counter_value "cache.tree.misses" in
        let result_hits = Telemetry.counter_value "cache.result.hits" in
        let result_misses = Telemetry.counter_value "cache.result.misses" in
        let hits = tree_hits + result_hits and misses = tree_misses + result_misses in
        let hit_rate =
          if hits + misses = 0 then 0.0
          else float_of_int hits /. float_of_int (hits + misses)
        in
        let speedup = ns_off /. ns_on in
        Printf.printf "  %-28s %9.2f us %9.2f us %7.2fx %7d %7d\n" e.id (ns_off /. 1e3)
          (ns_on /. 1e3) speedup hits misses;
        let row =
          Argus_json.Json.Obj
            [
              ("name", Argus_json.Json.String e.id);
              ("library", Argus_json.Json.String e.library);
              ("ns_cache_off", Argus_json.Json.Float ns_off);
              ("ns_cache_on", Argus_json.Json.Float ns_on);
              ("speedup", Argus_json.Json.Float speedup);
              ("tree_hits", Argus_json.Json.Int tree_hits);
              ("tree_misses", Argus_json.Json.Int tree_misses);
              ("result_hits", Argus_json.Json.Int result_hits);
              ("result_misses", Argus_json.Json.Int result_misses);
              ("hit_rate", Argus_json.Json.Float hit_rate);
            ]
        in
        (e.library, speedup, row))
      Corpus.Suite.entries
  in
  let diesel =
    List.filter_map
      (fun (lib, s, _) -> if lib = "diesel_lite" then Some s else None)
      rows
  in
  let diesel_median =
    if diesel = [] then 0.0 else Stats.Descriptive.median diesel
  in
  Printf.printf "  diesel_lite median speedup: %.2fx\n" diesel_median;
  (List.map (fun (_, _, row) -> row) rows, diesel_median)

(** Parallel batch solving over the 17-program suite: corpus wall-clock
    at jobs ∈ {1, 2, 4, 8} (cache off, so the curve measures work
    distribution, not memoization), speedup vs the sequential run, plus
    the shared-cache hit rate of a cache-on [--jobs 4] batch.

    Each work unit is load + solve.  The pool is created outside the
    timed region: the batch driver services many requests per pool
    (like the CLI, which spawns its pool once per invocation), so
    steady-state batch throughput is the quantity of interest — domain
    spawn cost is a one-time ~ms constant, not a per-batch cost.
    jobs = 1 is the exact sequential path (no pool, no domains).

    Interpret the curve against [recommended_domains] (recorded in the
    summary row): with fewer cores than jobs, OCaml's stop-the-world
    minor collections must synchronize domains that time-share one CPU,
    and an allocation-heavy batch like this one {e degrades} instead of
    speeding up.  (A no-allocation workload through the same pool runs
    at ~1.0x regardless of job count, so the pool machinery itself is
    not the bottleneck; see docs/PERFORMANCE.md.) *)
let bench_parallel_entries () =
  let entries = Corpus.Suite.entries in
  let n = List.length entries in
  Printf.printf "  (recommended domain count on this host: %d)\n"
    (Domain.recommended_domain_count ());
  Printf.printf "  %-8s %12s %9s\n" "jobs" "batch" "speedup";
  Solver.Eval_cache.set_enabled false;
  let ns_seq = ref 0.0 in
  let rows =
    List.map
      (fun jobs ->
        let pool = if jobs = 1 then None else Some (Pool.create ~jobs) in
        let ns =
          time_median (fun () -> Corpus.Harness.solve_batch ?pool ~jobs entries)
        in
        Option.iter Pool.shutdown pool;
        if jobs = 1 then ns_seq := ns;
        let speedup = !ns_seq /. ns in
        Printf.printf "  %-8d %9.2f us %8.2fx\n" jobs (ns /. 1e3) speedup;
        Argus_json.Json.Obj
          [
            ("jobs", Argus_json.Json.Int jobs);
            ("programs", Argus_json.Json.Int n);
            ("ns_batch", Argus_json.Json.Float ns);
            ("speedup_vs_jobs1", Argus_json.Json.Float speedup);
          ])
      [ 1; 2; 4; 8 ]
  in
  Solver.Eval_cache.set_enabled true;
  (* Shared-cache traffic of a cache-on parallel batch: one counted
     [--jobs 4] run over the sharded cache.  (Stamps are fresh per load,
     so the hits are each unit's own within-solve reuse — the number to
     watch is that the rate matches a sequential run's, and that shard
     contention stays negligible.) *)
  Solver.Eval_cache.clear ();
  let pool = Pool.create ~jobs:4 in
  Telemetry.reset ();
  Telemetry.enable ();
  ignore (Corpus.Harness.solve_batch ~pool entries);
  Telemetry.disable ();
  Pool.shutdown pool;
  let hits =
    Telemetry.counter_value "cache.tree.hits" + Telemetry.counter_value "cache.result.hits"
  in
  let misses =
    Telemetry.counter_value "cache.tree.misses"
    + Telemetry.counter_value "cache.result.misses"
  in
  let contention = Telemetry.counter_value "cache.shard.contention" in
  let hit_rate =
    if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)
  in
  Printf.printf
    "  cache-on --jobs 4 batch: %d hits, %d misses (%.1f%% hit rate), %d contended locks\n"
    hits misses (hit_rate *. 100.0) contention;
  let summary =
    Argus_json.Json.Obj
      [
        ("jobs", Argus_json.Json.Int 4);
        ("cache_hits", Argus_json.Json.Int hits);
        ("cache_misses", Argus_json.Json.Int misses);
        ("hit_rate", Argus_json.Json.Float hit_rate);
        ("shard_contention", Argus_json.Json.Int contention);
        ( "recommended_domains",
          Argus_json.Json.Int (Domain.recommended_domain_count ()) );
      ]
  in
  rows @ [ summary ]

(** Differential-fuzzing throughput: generation+render cost, then the
    per-program cost of each oracle over a fixed bank of generated
    programs (seed 42, the CI campaign seed).  Costs here bound the
    wall-clock budget of [argus fuzz] and the CI fuzz-smoke step. *)
let bench_fuzz_entries () =
  let bank_size = 10 in
  let seed = 42 in
  let sources =
    List.init bank_size (fun iter ->
        Fuzz.Gen.render (Fuzz.Gen.generate ~seed ~iter ~size:Fuzz.Gen.default_size))
  in
  let ns_gen =
    time_median (fun () ->
        List.init bank_size (fun iter ->
            Fuzz.Gen.render (Fuzz.Gen.generate ~seed ~iter ~size:Fuzz.Gen.default_size)))
    /. float_of_int bank_size
  in
  Printf.printf "  %-12s %9.2f us/program\n" "generate" (ns_gen /. 1e3);
  let gen_row =
    Argus_json.Json.Obj
      [
        ("stage", Argus_json.Json.String "generate");
        ("programs", Argus_json.Json.Int bank_size);
        ("ns_per_program", Argus_json.Json.Float ns_gen);
      ]
  in
  let pool = Pool.create ~jobs:2 in
  let oracle_row name =
    let ns =
      time_median (fun () ->
          List.iter
            (fun source ->
              match Fuzz.Oracle.check ~pool name ~source with
              | Fuzz.Oracle.Pass -> ()
              | Fuzz.Oracle.Fail m ->
                  failwith (Fuzz.Oracle.to_string name ^ " counterexample: " ^ m))
            sources)
      /. float_of_int bank_size
    in
    Printf.printf "  %-12s %9.2f us/check\n" (Fuzz.Oracle.to_string name) (ns /. 1e3);
    Argus_json.Json.Obj
      [
        ("stage", Argus_json.Json.String (Fuzz.Oracle.to_string name));
        ("programs", Argus_json.Json.Int bank_size);
        ("ns_per_program", Argus_json.Json.Float ns);
      ]
  in
  let rows = gen_row :: List.map oracle_row Fuzz.Oracle.all in
  Pool.shutdown pool;
  rows

(** The [scale] suite: per-goal solve cost over generated mega
    libraries ({!Fuzz.Gen.generate_mega}) at growing impl counts, with
    the fast-reject index on vs off ([--no-index]'s linear scan).  The
    cache is off so every goal re-runs candidate assembly; the index is
    cleared per mode so the "on" warm-up pays the lazy build.  The
    headline is the ns/goal curve staying flat with the index on while
    the scan side grows linearly; unify attempts per goal are identical
    in both modes (head-compatibility is the assembly semantics either
    way) and flat — the attempts the scan wastes are simplify-and-skip,
    never unifications. *)
let bench_scale_entries () =
  let goals = 32 and seed = 42 in
  let fg = float_of_int goals in
  Printf.printf "  %-8s %12s %12s %9s %14s %9s\n" "impls" "idx on" "idx off" "speedup"
    "attempts/goal" "rejects";
  Solver.Eval_cache.set_enabled false;
  let rows =
    List.map
      (fun impls ->
        let src = Fuzz.Gen.render (Fuzz.Gen.generate_mega ~goals ~seed ~impls) in
        let program = Resolve.program_of_string ~file:"scale.trait" src in
        let measure use_index =
          Solver.Fast_reject.set_enabled use_index;
          Solver.Fast_reject.clear ();
          let ns = time_median (fun () -> Solver.Obligations.solve_program program) in
          Telemetry.reset ();
          Telemetry.enable ();
          ignore (Solver.Obligations.solve_program program);
          Telemetry.disable ();
          ( ns /. fg,
            float_of_int (Telemetry.counter_value "unify.attempts") /. fg,
            Telemetry.counter_value "index.hits",
            Telemetry.counter_value "index.rejects",
            Telemetry.counter_value "index.wildcard" )
        in
        let ns_on, att_on, hits, rejects, wildcard = measure true in
        let ns_off, att_off, _, _, _ = measure false in
        Solver.Fast_reject.set_enabled true;
        let speedup = ns_off /. ns_on in
        let reject_rate =
          if hits + rejects = 0 then 0.0
          else float_of_int rejects /. float_of_int (hits + rejects)
        in
        Printf.printf "  %-8d %9.2f us %9.2f us %8.2fx %14.1f %8.0f%%\n" impls
          (ns_on /. 1e3) (ns_off /. 1e3) speedup att_on (reject_rate *. 100.0);
        Argus_json.Json.Obj
          [
            ("impls", Argus_json.Json.Int impls);
            ("goals", Argus_json.Json.Int goals);
            ("ns_per_goal_on", Argus_json.Json.Float ns_on);
            ("ns_per_goal_off", Argus_json.Json.Float ns_off);
            ("speedup", Argus_json.Json.Float speedup);
            ("unify_attempts_per_goal_on", Argus_json.Json.Float att_on);
            ("unify_attempts_per_goal_off", Argus_json.Json.Float att_off);
            ("index_hits", Argus_json.Json.Int hits);
            ("index_rejects", Argus_json.Json.Int rejects);
            ("index_wildcard", Argus_json.Json.Int wildcard);
            ("reject_rate", Argus_json.Json.Float reject_rate);
          ])
      [ 100; 1000; 10000 ]
  in
  Solver.Eval_cache.set_enabled true;
  rows

(** The [incremental] suite: a single-declaration edit (drop one impl,
    then restore it) re-solved through a warm {!Solver.Session} —
    fingerprint diff, reverse-index eviction, stamp rebase, then a solve
    in which green goals replay from the cache — vs the same program
    solved from scratch with a cold cache and cold fast-reject index
    (what a fresh argus invocation pays).  Each timed incremental run is
    one full edit→resolve cycle, alternating the two versions so every
    run revalidates against a genuinely different predecessor.

    The mega-library rows come in two flavours per size: [hot-edit]
    drops the FIRST impl (a trait the cached goals consult, so the
    resolve pays real red re-solve work — speedup ≈ the green fraction
    of total cost) and [cold-edit] drops the LAST impl (no cached goal
    depends on it, so the cycle is pure revalidation overhead — the
    headline ≥10× number, and the common case in a large library where
    most edits are off any given goal's dependency path). *)
let bench_incremental_entries () =
  let seed = 42 in
  Printf.printf "  %-28s %12s %12s %9s %8s %9s\n" "program" "scratch" "incr" "speedup"
    "evicted" "survived";
  Solver.Eval_cache.set_enabled true;
  Solver.Fast_reject.set_enabled true;
  let measure ?(edit_at = 0) name program =
    let edited = Fuzz.Edit.drop_impl program edit_at in
    let n_impls = List.length (Program.impls program) in
    let ns_scratch =
      time_median (fun () ->
          Solver.Eval_cache.clear ();
          Solver.Fast_reject.clear ();
          Solver.Obligations.solve_program program)
    in
    Solver.Eval_cache.clear ();
    Solver.Fast_reject.clear ();
    let session = Solver.Session.create () in
    (* warm both versions so every timed run revalidates a warm cache *)
    ignore (Solver.Session.load session program);
    ignore (Solver.Session.resolve session);
    ignore (Solver.Session.edit session edited);
    ignore (Solver.Session.resolve session);
    let cur = ref true in
    let ns_incr =
      time_median (fun () ->
          cur := not !cur;
          ignore (Solver.Session.edit session (if !cur then program else edited));
          Solver.Session.resolve session)
    in
    let delta = Solver.Session.last_delta session in
    let speedup = ns_scratch /. ns_incr in
    Printf.printf "  %-28s %9.2f us %9.2f us %8.2fx %8d %9d\n" name (ns_scratch /. 1e3)
      (ns_incr /. 1e3) speedup delta.Solver.Session.d_evicted
      delta.Solver.Session.d_survived;
    Argus_json.Json.Obj
      [
        ("name", Argus_json.Json.String name);
        ("impls", Argus_json.Json.Int n_impls);
        ("ns_scratch", Argus_json.Json.Float ns_scratch);
        ("ns_incr", Argus_json.Json.Float ns_incr);
        ("speedup", Argus_json.Json.Float speedup);
        ("evicted", Argus_json.Json.Int delta.Solver.Session.d_evicted);
        ("survived", Argus_json.Json.Int delta.Solver.Session.d_survived);
        ("rebased", Argus_json.Json.Int delta.Solver.Session.d_rebased);
      ]
  in
  let corpus_rows =
    List.map
      (fun (e : Corpus.Harness.entry) -> measure e.id (Corpus.Harness.load e))
      Corpus.Suite.entries
  in
  let mega_rows =
    List.concat_map
      (fun impls ->
        let src = Fuzz.Gen.render (Fuzz.Gen.generate_mega ~goals:32 ~seed ~impls) in
        let program = Resolve.program_of_string ~file:"scale.trait" src in
        [
          measure ~edit_at:0 (Printf.sprintf "mega-%d-hot-edit" impls) program;
          measure ~edit_at:(-1) (Printf.sprintf "mega-%d-cold-edit" impls) program;
        ])
      [ 100; 1000 ]
  in
  Solver.Eval_cache.clear ();
  Solver.Fast_reject.clear ();
  corpus_rows @ mega_rows

(** The [serve] suite: the seeded load generator ({!Fuzz.Serve_load})
    replays 1000 concurrent two-phase session scripts — cold
    open+solve, then warm tree/expand/hover/explain plus an edited
    reload and re-solve — against one long-lived in-process server, at
    [jobs = 1] (sequential baseline) and on a 4-worker domain pool.
    The warm-phase cache hit rate strictly above the cold rate is the
    daemon's reason to exist: the eval cache survives across requests
    and sessions, rebased through every reload. *)
let bench_serve_entries () =
  let seed = 42 and clients = 1000 in
  Printf.printf "  %-10s %8s %9s %14s %12s %12s %9s %9s\n" "name" "clients"
    "requests" "throughput" "p50" "p99" "cold-hit" "warm-hit";
  let row name jobs =
    let pool = if jobs = 1 then None else Some (Pool.create ~jobs) in
    let stats = Fuzz.Serve_load.run ?pool ~jobs ~clients ~seed () in
    Option.iter Pool.shutdown pool;
    Printf.printf
      "  %-10s %8d %9d %10.0f rps %9.1f us %9.1f us %8.1f%% %8.1f%%\n" name
      stats.Fuzz.Serve_load.ls_clients stats.Fuzz.Serve_load.ls_requests
      stats.Fuzz.Serve_load.ls_throughput_rps
      (float_of_int stats.Fuzz.Serve_load.ls_p50_ns /. 1e3)
      (float_of_int stats.Fuzz.Serve_load.ls_p99_ns /. 1e3)
      (stats.Fuzz.Serve_load.ls_cold_hit_rate *. 100.0)
      (stats.Fuzz.Serve_load.ls_warm_hit_rate *. 100.0);
    Argus_json.Json.Obj
      [
        ("name", Argus_json.Json.String name);
        ("jobs", Argus_json.Json.Int jobs);
        ("clients", Argus_json.Json.Int stats.Fuzz.Serve_load.ls_clients);
        ("requests", Argus_json.Json.Int stats.Fuzz.Serve_load.ls_requests);
        ("errors", Argus_json.Json.Int stats.Fuzz.Serve_load.ls_errors);
        ( "throughput_rps",
          Argus_json.Json.Float stats.Fuzz.Serve_load.ls_throughput_rps );
        ("p50_ns", Argus_json.Json.Int stats.Fuzz.Serve_load.ls_p50_ns);
        ("p99_ns", Argus_json.Json.Int stats.Fuzz.Serve_load.ls_p99_ns);
        ( "cold_hit_rate",
          Argus_json.Json.Float stats.Fuzz.Serve_load.ls_cold_hit_rate );
        ( "warm_hit_rate",
          Argus_json.Json.Float stats.Fuzz.Serve_load.ls_warm_hit_rate );
      ]
  in
  let j1 = row "serve-j1" 1 in
  let j4 = row "serve-j4" 4 in
  let rows = [ j1; j4 ] in
  Solver.Eval_cache.clear ();
  Solver.Fast_reject.clear ();
  rows

let write_pipeline_doc ~entries ~journal ~cache ~parallel ~fuzz ~scale ~incremental
    ~serve ~diesel_speedup =
  let doc =
    Argus_json.Json.Obj
      [
        ("schema", Argus_json.Json.String "argus.bench.pipeline/v8");
        ("runs", Argus_json.Json.Int !bench_runs);
        ("warmup", Argus_json.Json.Int !bench_warmup);
        ("ocaml_version", Argus_json.Json.String Sys.ocaml_version);
        ("git_commit", Argus_json.Json.String (git_commit ()));
        ("diesel_lite_median_speedup", Argus_json.Json.Float diesel_speedup);
        ("entries", Argus_json.Json.List entries);
        ("journal", Argus_json.Json.List journal);
        ("cache", Argus_json.Json.List cache);
        ("parallel", Argus_json.Json.List parallel);
        ("fuzz", Argus_json.Json.List fuzz);
        ("scale", Argus_json.Json.List scale);
        ("incremental", Argus_json.Json.List incremental);
        ("serve", Argus_json.Json.List serve);
      ]
  in
  let oc = open_out "BENCH_pipeline.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Argus_json.Json.to_string_pretty doc);
      output_char oc '\n');
  Printf.printf
    "wrote BENCH_pipeline.json (%d entries, %d journal rows, %d cache rows, %d parallel \
     rows, %d fuzz rows, %d scale rows, %d incremental rows, %d serve rows)\n"
    (List.length entries) (List.length journal) (List.length cache)
    (List.length parallel) (List.length fuzz) (List.length scale)
    (List.length incremental) (List.length serve)

(** A section of the existing BENCH_pipeline.json, so partial re-runs
    ([--journal-only], [--cache-only]) keep the other sections intact. *)
let existing_section name =
  try
    let ic = open_in "BENCH_pipeline.json" in
    let txt =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Argus_json.Json.member name (Argus_json.Json.of_string txt) with
    | Some (Argus_json.Json.List es) -> es
    | _ -> []
  with Sys_error _ | Argus_json.Json.Parse_error _ -> []

let existing_diesel_speedup () =
  try
    let ic = open_in "BENCH_pipeline.json" in
    let txt =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Argus_json.Json.member "diesel_lite_median_speedup" (Argus_json.Json.of_string txt) with
    | Some (Argus_json.Json.Float f) -> f
    | Some (Argus_json.Json.Int i) -> float_of_int i
    | _ -> 0.0
  with Sys_error _ | Argus_json.Json.Parse_error _ -> 0.0

(** One benchmark entry per corpus program, across every suite: median
    end-to-end solve time, inference-tree size, and the headline solver
    counters from a telemetry-enabled run. *)
let bench_pipeline_json () =
  section "Machine-readable pipeline benchmark (BENCH_pipeline.json)";
  let suites =
    [
      ("entries", Corpus.Suite.entries);
      ("extended", Corpus.Suite.extended);
      ("extras", Corpus.Suite.extras);
      ("extended-ok", Corpus.Suite.extended_ok);
    ]
  in
  let entry_json suite (e : Corpus.Harness.entry) =
    let program = Corpus.Harness.load e in
    let ns = time_median (fun () -> Solver.Obligations.solve_program program) in
    (* a separate counted run, so the timed runs above stay untelemetered *)
    Telemetry.reset ();
    Telemetry.enable ();
    let report = Solver.Obligations.solve_program program in
    Telemetry.disable ();
    let tree_nodes =
      List.fold_left
        (fun acc (r : Solver.Obligations.goal_report) -> acc + Solver.Trace.size r.final)
        0 report.reports
    in
    Printf.printf "  %-28s %10.2f us/run %7d tree nodes\n" e.id (ns /. 1e3) tree_nodes;
    Argus_json.Json.Obj
      [
        ("name", Argus_json.Json.String e.id);
        ("suite", Argus_json.Json.String suite);
        ("library", Argus_json.Json.String e.library);
        ("ns_per_run", Argus_json.Json.Float ns);
        ("tree_nodes", Argus_json.Json.Int tree_nodes);
        ("solver_goals", Argus_json.Json.Int (Telemetry.counter_value "solver.goals"));
        ("unify_attempts", Argus_json.Json.Int (Telemetry.counter_value "unify.attempts"));
      ]
  in
  let entries =
    List.concat_map (fun (suite, es) -> List.map (entry_json suite) es) suites
  in
  print_endline "journal overhead (17-program suite):";
  let journal = bench_journal_entries () in
  print_endline "evaluation cache on/off (17-program suite):";
  let cache, diesel_speedup = bench_cache_entries () in
  print_endline "parallel batch solving (17-program suite, cache off):";
  let parallel = bench_parallel_entries () in
  print_endline "differential fuzzing (generation + oracle bank, seed 42):";
  let fuzz = bench_fuzz_entries () in
  print_endline "scale: mega-library per-goal cost, index on/off (seed 42):";
  let scale = bench_scale_entries () in
  print_endline "incremental: single-decl edit re-solve vs from-scratch (seed 42):";
  let incremental = bench_incremental_entries () in
  print_endline "serve: 1000-client session scripts against one live server (seed 42):";
  let serve = bench_serve_entries () in
  write_pipeline_doc ~entries ~journal ~cache ~parallel ~fuzz ~scale ~incremental
    ~serve ~diesel_speedup

(** Re-measure only the journal section, keeping the other sections of
    BENCH_pipeline.json (if any) intact. *)
let bench_journal_json () =
  section "Journal overhead benchmark (BENCH_pipeline.json, journal section)";
  let journal = bench_journal_entries () in
  write_pipeline_doc ~entries:(existing_section "entries") ~journal
    ~cache:(existing_section "cache")
    ~parallel:(existing_section "parallel")
    ~fuzz:(existing_section "fuzz")
    ~scale:(existing_section "scale")
    ~incremental:(existing_section "incremental")
    ~serve:(existing_section "serve")
    ~diesel_speedup:(existing_diesel_speedup ())

(** Re-measure only the cache section, keeping the other sections of
    BENCH_pipeline.json (if any) intact. *)
let bench_cache_json () =
  section "Evaluation-cache benchmark (BENCH_pipeline.json, cache section)";
  let cache, diesel_speedup = bench_cache_entries () in
  write_pipeline_doc ~entries:(existing_section "entries")
    ~journal:(existing_section "journal") ~cache
    ~parallel:(existing_section "parallel")
    ~fuzz:(existing_section "fuzz")
    ~scale:(existing_section "scale")
    ~incremental:(existing_section "incremental")
    ~serve:(existing_section "serve")
    ~diesel_speedup

(** Re-measure only the parallel section, keeping the other sections of
    BENCH_pipeline.json (if any) intact. *)
let bench_parallel_json () =
  section "Parallel batch benchmark (BENCH_pipeline.json, parallel section)";
  let parallel = bench_parallel_entries () in
  write_pipeline_doc ~entries:(existing_section "entries")
    ~journal:(existing_section "journal")
    ~cache:(existing_section "cache")
    ~parallel
    ~fuzz:(existing_section "fuzz")
    ~scale:(existing_section "scale")
    ~incremental:(existing_section "incremental")
    ~serve:(existing_section "serve")
    ~diesel_speedup:(existing_diesel_speedup ())

(** Re-measure only the fuzzing section, keeping the other sections of
    BENCH_pipeline.json (if any) intact. *)
let bench_fuzz_json () =
  section "Differential-fuzzing benchmark (BENCH_pipeline.json, fuzz section)";
  let fuzz = bench_fuzz_entries () in
  write_pipeline_doc ~entries:(existing_section "entries")
    ~journal:(existing_section "journal")
    ~cache:(existing_section "cache")
    ~parallel:(existing_section "parallel")
    ~fuzz
    ~scale:(existing_section "scale")
    ~incremental:(existing_section "incremental")
    ~serve:(existing_section "serve")
    ~diesel_speedup:(existing_diesel_speedup ())

(** Re-measure only the scale section, keeping the other sections of
    BENCH_pipeline.json (if any) intact. *)
let bench_scale_json () =
  section "Mega-library scale benchmark (BENCH_pipeline.json, scale section)";
  let scale = bench_scale_entries () in
  write_pipeline_doc ~entries:(existing_section "entries")
    ~journal:(existing_section "journal")
    ~cache:(existing_section "cache")
    ~parallel:(existing_section "parallel")
    ~fuzz:(existing_section "fuzz")
    ~scale
    ~incremental:(existing_section "incremental")
    ~serve:(existing_section "serve")
    ~diesel_speedup:(existing_diesel_speedup ())

(** Re-measure only the incremental section, keeping the other sections
    of BENCH_pipeline.json (if any) intact. *)
let bench_incremental_json () =
  section "Incremental re-solving benchmark (BENCH_pipeline.json, incremental section)";
  let incremental = bench_incremental_entries () in
  write_pipeline_doc ~entries:(existing_section "entries")
    ~journal:(existing_section "journal")
    ~cache:(existing_section "cache")
    ~parallel:(existing_section "parallel")
    ~fuzz:(existing_section "fuzz")
    ~scale:(existing_section "scale")
    ~incremental
    ~serve:(existing_section "serve")
    ~diesel_speedup:(existing_diesel_speedup ())

(** Re-measure only the serve section, keeping the other sections of
    BENCH_pipeline.json (if any) intact. *)
let bench_serve_json () =
  section "Serve load benchmark (BENCH_pipeline.json, serve section)";
  let serve = bench_serve_entries () in
  write_pipeline_doc ~entries:(existing_section "entries")
    ~journal:(existing_section "journal")
    ~cache:(existing_section "cache")
    ~parallel:(existing_section "parallel")
    ~fuzz:(existing_section "fuzz")
    ~scale:(existing_section "scale")
    ~incremental:(existing_section "incremental")
    ~serve
    ~diesel_speedup:(existing_diesel_speedup ())

(* ------------------------------------------------------------------ *)
(* --diff OLD NEW: the perf-regression gate.  Compares two
   BENCH_pipeline.json files metric by metric (Profile.Bench_diff) and
   exits 1 when any ratio breaches the fail threshold — CI runs this
   against the committed baseline. *)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bench_diff ~warn_above ~fail_above old_path new_path =
  let load which path =
    try Argus_json.Json.of_string (read_whole_file path) with
    | Sys_error m ->
        Printf.eprintf "error: cannot read %s file: %s\n" which m;
        exit 2
    | Argus_json.Json.Parse_error (m, off) ->
        Printf.eprintf "error: %s is not valid JSON: %s (byte %d)\n" path m off;
        exit 2
  in
  let old_doc = load "OLD" old_path and new_doc = load "NEW" new_path in
  let report =
    try Profile.Bench_diff.diff ?warn_above ?fail_above ~old_doc ~new_doc ()
    with Invalid_argument m ->
      Printf.eprintf "error: %s\n" m;
      exit 2
  in
  Printf.printf "comparing %s (old) vs %s (new)\n" old_path new_path;
  print_string (Profile.Bench_diff.to_string report);
  exit (Profile.Bench_diff.exit_code report)

let () =
  let argv = Sys.argv in
  (* --diff short-circuits the whole harness: no benchmarks run *)
  (match Array.to_list argv |> List.tl with
  | args when List.mem "--diff" args ->
      let rec positionals = function
        | ("--warn-above" | "--fail-above") :: _ :: rest -> positionals rest
        | a :: rest when String.length a > 0 && a.[0] = '-' -> positionals rest
        | a :: rest -> a :: positionals rest
        | [] -> []
      in
      let rec positional_after_diff = function
        | "--diff" :: rest -> positionals rest
        | _ :: rest -> positional_after_diff rest
        | [] -> []
      in
      let float_opt flag =
        let rec go = function
          | f :: v :: _ when f = flag -> float_of_string_opt v
          | _ :: rest -> go rest
          | [] -> None
        in
        go args
      in
      (match positional_after_diff args with
      | [ old_path; new_path ] ->
          bench_diff ~warn_above:(float_opt "--warn-above")
            ~fail_above:(float_opt "--fail-above") old_path new_path
      | _ ->
          prerr_endline
            "usage: bench --diff OLD.json NEW.json [--warn-above F] [--fail-above F]";
          exit 2)
  | _ -> ());
  Array.iteri
    (fun i a ->
      let next_int () =
        if i + 1 < Array.length argv then int_of_string_opt argv.(i + 1) else None
      in
      match a with
      | "--runs" -> (
          match next_int () with Some n when n > 0 -> bench_runs := n | _ -> ())
      | "--warmup" -> (
          match next_int () with Some n when n >= 0 -> bench_warmup := n | _ -> ())
      | _ -> ())
    argv;
  let json_only = Array.exists (( = ) "--json-only") Sys.argv in
  let journal_only = Array.exists (( = ) "--journal-only") Sys.argv in
  let cache_only = Array.exists (( = ) "--cache-only") Sys.argv in
  let parallel_only = Array.exists (( = ) "--parallel-only") Sys.argv in
  let fuzz_only = Array.exists (( = ) "--fuzz-only") Sys.argv in
  let scale_only = Array.exists (( = ) "--scale-only") Sys.argv in
  let incremental_only = Array.exists (( = ) "--incremental-only") Sys.argv in
  let serve_only = Array.exists (( = ) "--serve-only") Sys.argv in
  if journal_only then bench_journal_json ()
  else if cache_only then bench_cache_json ()
  else if parallel_only then bench_parallel_json ()
  else if fuzz_only then bench_fuzz_json ()
  else if scale_only then bench_scale_json ()
  else if incremental_only then bench_incremental_json ()
  else if serve_only then bench_serve_json ()
  else if json_only then bench_pipeline_json ()
  else begin
    print_endline "Argus-ML benchmark harness — regenerating every paper table/figure";
    fig_motivating ();
    fig_bevy_views ();
    fig11 ();
    fig12a ();
    fig12b ();
    ablation_dnf_minimization ();
    ablation_solver_cost ();
    ablation_depth_limit ();
    ablation_ranking_cost ();
    ablation_inertia_weight_sensitivity ();
    bench_pipeline_json ();
    print_endline "\ndone."
  end
