test/test_argus.mli:
