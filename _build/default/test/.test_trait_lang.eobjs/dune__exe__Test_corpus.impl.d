test/test_corpus.ml: Alcotest Argus Corpus List Option Pretty Program Resolve Rustc_diag Solver Trait_lang
