test/test_argus.ml: Alcotest Argus Corpus Format List Option Path Predicate Pretty Program QCheck QCheck_alcotest Region Resolve Solver Span String Trait_lang Ty
