test/test_study.ml: Alcotest Lazy List Printf Stats String Study
