test/test_typeck.mli:
