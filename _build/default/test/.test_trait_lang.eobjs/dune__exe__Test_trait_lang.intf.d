test/test_trait_lang.mli:
