test/test_solver.ml: Alcotest Buffer Corpus Decl Hashtbl List Path Predicate Pretty Printf Program QCheck QCheck_alcotest Region Resolve Result Solver Span Trait_lang Ty
