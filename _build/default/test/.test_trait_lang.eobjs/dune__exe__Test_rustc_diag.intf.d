test/test_rustc_diag.mli:
