test/test_stats.ml: Alcotest Array Float Fun List QCheck QCheck_alcotest Stats
