test/test_json.ml: Alcotest Argus Argus_json Corpus Decode Encode Hashtbl Json List Option Path Predicate Printf QCheck QCheck_alcotest Region Trait_lang Ty
