test/test_rustc_diag.ml: Alcotest Argus Corpus List Option Path Predicate Program Resolve Rustc_diag Solver Span Stats String Trait_lang Ty
