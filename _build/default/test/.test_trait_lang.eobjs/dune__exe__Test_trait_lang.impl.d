test/test_trait_lang.ml: Alcotest Lexer List Option Parser Path Predicate Pretty Program QCheck QCheck_alcotest Region Resolve Span String Subst Token Trait_lang Ty
