test/test_typeck.ml: Alcotest Argus Corpus List Path Pretty Printf QCheck QCheck_alcotest Resolve Solver String Trait_lang Typeck
