(** Tests for the expression-level type checker: literals, locals,
    constructors, generic calls with obligation emission, speculative
    method resolution (§4), annotation checking, and the end-of-body
    obligation fixpoint. *)

open Trait_lang

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_str = Alcotest.check Alcotest.string

let check_src src =
  let program = Resolve.program_of_string ~file:"t.rs" src in
  Typeck.Infer.check_program program

let main_of (r : Typeck.Infer.report) =
  List.find
    (fun (fr : Typeck.Infer.fn_report) -> Path.name fr.fr_fn.fn_path = "main")
    r.fr_fns

let local fr name =
  match List.assoc_opt name fr.Typeck.Infer.fr_locals with
  | Some t -> Pretty.ty ~cfg:Pretty.expanded t
  | None -> Alcotest.failf "no local %s" name

(* ------------------------------------------------------------------ *)

let test_literals_and_lets () =
  let r =
    check_src
      {|
        fn main() {
          let a = 1;
          let b = "hi";
          let c = true;
          let d = ();
          let e = (1, "x");
        }
      |}
  in
  let fr = main_of r in
  check_bool "ok" true (Typeck.Infer.fn_ok fr);
  check_str "int" "i32" (local fr "a");
  check_str "str" "String" (local fr "b");
  check_str "bool" "bool" (local fr "c");
  check_str "unit" "()" (local fr "d");
  check_str "tuple" "(i32, String)" (local fr "e")

let test_ctor_inference () =
  let r =
    check_src
      {|
        struct Timer;
        struct Wrapper<T>;
        fn main() {
          let t = Timer;
          let w = Wrapper(3);
          let u = Wrapper(t);
        }
      |}
  in
  let fr = main_of r in
  check_bool "ok" true (Typeck.Infer.fn_ok fr);
  check_str "unit struct" "Timer" (local fr "t");
  check_str "wrapper of int" "Wrapper<i32>" (local fr "w");
  check_str "wrapper of timer" "Wrapper<Timer>" (local fr "u")

let test_generic_call_infers_and_obligates () =
  let r =
    check_src
      {|
        extern crate std { trait Clone {} struct Vec<T>; impl Clone for i32 {} }
        fn dup<T>(x: T) -> Vec<T> where T: Clone { x; }
        fn main() {
          let v = dup(7);
        }
      |}
  in
  let fr = main_of r in
  check_bool "ok" true (Typeck.Infer.fn_ok fr);
  check_str "instantiated result" "Vec<i32>" (local fr "v");
  check_int "one obligation" 1 (List.length fr.fr_obligations);
  let ob = List.hd fr.fr_obligations in
  check_str "resolved obligation" "i32: Clone" (Pretty.predicate ob.final.pred);
  check_bool "origin points at the call" true
    (ob.goal.goal_origin = "the call to `dup`")

let test_failing_obligation () =
  let r =
    check_src
      {|
        extern crate std { trait Clone {} struct Vec<T>; impl Clone for i32 {} }
        struct Opaque;
        fn dup<T>(x: T) -> Vec<T> where T: Clone { x; }
        fn main() {
          let v = dup(Opaque);
        }
      |}
  in
  let fr = main_of r in
  check_bool "not ok" false (Typeck.Infer.fn_ok fr);
  check_bool "no type errors though" true (fr.fr_type_errors = []);
  match fr.fr_obligations with
  | [ ob ] ->
      check_bool "disproved" true (ob.status = Solver.Obligations.Disproved);
      check_str "the bound" "Opaque: Clone" (Pretty.predicate ob.final.pred)
  | _ -> Alcotest.fail "expected one obligation"

let test_argument_type_mismatch () =
  let r =
    check_src
      {|
        fn takes_int(x: i32) -> i32 { x; }
        fn main() {
          let y = takes_int("oops");
        }
      |}
  in
  let fr = main_of r in
  check_int "one type error" 1 (List.length fr.fr_type_errors);
  check_bool "mentions mismatch" true
    (let m = (List.hd fr.fr_type_errors).te_message in
     String.length m > 0);
  check_str "result type still usable" "i32" (local fr "y")

let test_annotation_checks () =
  let r =
    check_src
      {|
        fn main() {
          let a: i32 = 1;
          let b: String = 2;
        }
      |}
  in
  let fr = main_of r in
  check_int "one error" 1 (List.length fr.fr_type_errors);
  check_str "annotation wins for later uses" "String" (local fr "b")

let test_annotation_guides_inference () =
  (* the annotation must flow backwards into the generic call *)
  let r =
    check_src
      {|
        extern crate std { struct Vec<T>; }
        fn make<T>() -> Vec<T> { (); }
        fn main() {
          let v: Vec<i32> = make();
        }
      |}
  in
  let fr = main_of r in
  check_bool "ok" true (Typeck.Infer.fn_ok fr);
  check_str "guided" "Vec<i32>" (local fr "v")

let test_unknown_variable () =
  let r = check_src "fn main() { let x = nope; }" in
  let fr = main_of r in
  check_int "one error" 1 (List.length fr.fr_type_errors)

(* ------------------------------------------------------------------ *)
(* method resolution (§4) *)

let probing_src =
  {|
    extern crate std {
      trait ToString { fn to_string(self) -> String; }
      struct Vec<T>;
      impl ToString for i32 {}
    }
    trait CustomToString { fn to_string(self) -> String; }
    impl CustomToString for Vec<i32> {}
    fn make() -> Vec<i32> { (); }
    fn main() {
      let v = make();
      let s = v.to_string();
      let n = 3;
      let m = n.to_string();
    }
  |}

let test_method_probing () =
  let r = check_src probing_src in
  let fr = main_of r in
  check_bool "ok" true (Typeck.Infer.fn_ok fr);
  check_str "method result" "String" (local fr "s");
  check_int "two probes" 2 (List.length fr.fr_probes);
  let p1 = List.hd fr.fr_probes in
  (* trait decl order: ToString first, so Vec<i32> commits the second *)
  check_str "receiver" "Vec<i32>" (Pretty.ty ~cfg:Pretty.expanded p1.p_recv_ty);
  check_bool "custom chosen" true (p1.p_chosen = Some 1);
  check_int "both alternatives probed" 2 (List.length p1.p_nodes);
  check_bool "failed alternative is speculative" true
    (Solver.Trace.has_flag Solver.Trace.Speculative (List.hd p1.p_nodes));
  let p2 = List.nth fr.fr_probes 1 in
  check_bool "i32 commits ToString directly" true (p2.p_chosen = Some 0)

let test_method_not_found () =
  let r =
    check_src
      {|
        trait Pretty { fn render(self) -> String; }
        struct A; struct B;
        impl Pretty for A {}
        fn main() {
          let b = B;
          let s = b.render();
        }
      |}
  in
  let fr = main_of r in
  check_bool "not ok" false (Typeck.Infer.fn_ok fr);
  check_int "one failed probe" 1
    (List.length (List.filter (fun (p : Typeck.Infer.probe) -> p.p_chosen = None) fr.fr_probes));
  (* with no success, every probed tree is kept for debugging *)
  let p = List.hd fr.fr_probes in
  check_int "trees kept" 1 (List.length (Argus.Extract.of_probe p.p_nodes))

let test_method_no_such_name () =
  let r = check_src "struct A; fn main() { let a = A; a.frobnicate(); }" in
  let fr = main_of r in
  check_int "error" 1 (List.length fr.fr_type_errors)

let test_method_args_checked () =
  let r =
    check_src
      {|
        trait Scale { fn scale(self, usize) -> Self; }
        struct Pic;
        impl Scale for Pic {}
        fn main() {
          let p = Pic;
          let q = p.scale("wat");
        }
      |}
  in
  let fr = main_of r in
  check_int "arg mismatch" 1 (List.length fr.fr_type_errors);
  check_str "Self output" "Pic" (local fr "q")

let test_method_emits_trait_error_via_probe_failure () =
  (* a probe whose only candidate's bound fails: leaves tree evidence *)
  let r =
    check_src
      {|
        trait Render { fn render(self) -> String; }
        struct Styled<T>;
        struct Plain;
        trait Theme {}
        impl<T> Render for Styled<T> where T: Theme {}
        fn main() {
          let s = Styled(Plain);
          let out = s.render();
        }
      |}
  in
  let fr = main_of r in
  check_bool "not ok" false (Typeck.Infer.fn_ok fr);
  let p = List.hd fr.fr_probes in
  check_bool "probe failed" true (p.p_chosen = None);
  (* the probe tree contains the real root cause *)
  let tree = List.hd (Argus.Extract.of_probe p.p_nodes) in
  let leaves = Argus.Proof_tree.failed_leaves tree in
  check_bool "root cause in probe tree" true
    (List.exists
       (fun (n : Argus.Proof_tree.node) ->
         match n.kind with
         | Argus.Proof_tree.Goal g ->
             Pretty.predicate ~cfg:Pretty.expanded g.pred = "Plain: Theme"
         | _ -> false)
       leaves)

(* ------------------------------------------------------------------ *)
(* fixpoint behaviour *)

let test_obligation_fixpoint_across_body () =
  (* the marker-style deduction: the obligation from the first call is
     ambiguous until the annotation on the second statement binds it *)
  let r =
    check_src
      {|
        extern crate std { trait Default_ {} struct Vec<T>; impl Default_ for i32 {} }
        fn make<T>() -> T where T: Default_ { (); }
        fn main() {
          let x = make();
          let y: i32 = x;
        }
      |}
  in
  let fr = main_of r in
  check_bool "ok after fixpoint" true (Typeck.Infer.fn_ok fr);
  check_str "x resolved" "i32" (local fr "x");
  let ob = List.hd fr.fr_obligations in
  check_bool "took multiple attempts or resolved late" true
    (List.length ob.attempts >= 1);
  check_str "final obligation concrete" "i32: Default_" (Pretty.predicate ob.final.pred)

let test_param_env_in_bodies () =
  (* inside a generic fn, the fn's own where-clauses prove obligations *)
  let r =
    check_src
      {|
        trait Clone2 {}
        fn outer<T>(x: T) -> T where T: Clone2 {
          let y = dup(x);
        }
        fn dup<U>(x: U) -> U where U: Clone2 { x; }
      |}
  in
  let fr = List.hd r.fr_fns in
  check_bool "param env proves it" true (Typeck.Infer.fn_ok fr)

let test_bevy_method_call_end_to_end () =
  (* the fully end-to-end §2.3: the obligation is generated by
     [app.add_systems(Update, run_timer_bad)] — no goal annotations *)
  let program =
    Resolve.program_of_string ~file:"bevy.rs" Corpus.Bevy_lite.errant_param_method_call
  in
  let r = Typeck.Infer.check_program program in
  let fr = main_of r in
  check_bool "main fails" false (Typeck.Infer.fn_ok fr);
  let ok_obs, bad_obs =
    List.partition
      (fun (ob : Solver.Obligations.goal_report) -> ob.status = Solver.Obligations.Proved)
      fr.fr_obligations
  in
  check_int "good registration proves" 1 (List.length ok_obs);
  check_int "bad registration fails" 1 (List.length bad_obs);
  (* and the failing tree carries the paper's root cause *)
  let tree = Argus.Extract.of_report (List.hd bad_obs) in
  let rc_first =
    match Argus.Inertia.sorted_leaves tree with
    | first :: _ -> (
        match first.kind with
        | Argus.Proof_tree.Goal g -> Pretty.predicate g.pred
        | _ -> "?")
    | [] -> "?"
  in
  check_str "Timer: SystemParam ranked first" "Timer: SystemParam" rc_first

let test_fns_without_bodies_skipped () =
  let r = check_src "struct A; fn sig_only(A) -> A;" in
  check_int "nothing to check" 0 (List.length r.fr_fns)

(* ------------------------------------------------------------------ *)
(* property: random bodies never crash the checker, and every local
   resolves to a type *)

let random_body_gen =
  let open QCheck.Gen in
  let decls =
    {|
      extern crate std {
        trait Clone {} struct Vec<T>;
        trait Show { fn show(self) -> String; }
        impl Clone for i32 {} impl Clone for String {}
        impl<T> Clone for Vec<T> where T: Clone {}
        impl Show for i32 {}
      }
      struct A; struct B; struct Wrap<T>;
      impl Clone for A {}
      fn dup<T>(x: T) -> Vec<T> where T: Clone { x; }
      fn pick(x: i32, y: String) -> i32 { x; }
    |}
  in
  let var_pool = [ "a"; "b"; "c"; "d" ] in
  let rec expr depth =
    if depth = 0 then
      oneof
        [
          return "1";
          return "\"s\"";
          return "A";
          return "B";
          oneofl var_pool;
        ]
    else
      frequency
        [
          (3, expr 0);
          (2, map (fun e -> Printf.sprintf "dup(%s)" e) (expr (depth - 1)));
          (2, map (fun e -> Printf.sprintf "Wrap(%s)" e) (expr (depth - 1)));
          ( 1,
            map2 (fun e1 e2 -> Printf.sprintf "pick(%s, %s)" e1 e2) (expr (depth - 1))
              (expr (depth - 1)) );
          (1, map (fun e -> Printf.sprintf "(%s).show()" e) (expr (depth - 1)));
          (1, map2 (fun e1 e2 -> Printf.sprintf "(%s, %s)" e1 e2) (expr (depth - 1)) (expr (depth - 1)));
        ]
  in
  let* n_stmts = int_range 1 5 in
  let* stmts =
    list_repeat n_stmts
      (let* i = int_range 0 3 in
       let* e = expr 2 in
       return (Printf.sprintf "let %s = %s;" (List.nth var_pool i) e))
  in
  return (decls ^ "\nfn main() {\n" ^ String.concat "\n" stmts ^ "\n}\n")

let prop_typeck_total =
  QCheck.Test.make ~name:"checker is total on random bodies; locals resolve" ~count:200
    (QCheck.make ~print:(fun s -> s) random_body_gen)
    (fun src ->
      let r = check_src src in
      let fr = main_of r in
      (* every local has a type; no exceptions escaped; obligations all
         reached a definite or ambiguous status *)
      List.for_all (fun (_, t) -> Trait_lang.Pretty.ty t <> "") fr.fr_locals
      && List.length fr.fr_locals >= 1)

let prop_typeck_deterministic =
  QCheck.Test.make ~name:"checking is deterministic" ~count:100
    (QCheck.make ~print:(fun s -> s) random_body_gen)
    (fun src ->
      let show r =
        List.map
          (fun (fr : Typeck.Infer.fn_report) ->
            ( List.map (fun (n, t) -> (n, Pretty.ty ~cfg:Pretty.verbose t)) fr.fr_locals,
              List.length fr.fr_type_errors,
              List.map
                (fun (ob : Solver.Obligations.goal_report) -> ob.status)
                fr.fr_obligations ))
          r.Typeck.Infer.fr_fns
      in
      show (check_src src) = show (check_src src))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_typeck_total; prop_typeck_deterministic ]

let () =
  Alcotest.run "typeck"
    [
      ( "expressions",
        [
          Alcotest.test_case "literals and lets" `Quick test_literals_and_lets;
          Alcotest.test_case "constructors" `Quick test_ctor_inference;
          Alcotest.test_case "generic calls" `Quick test_generic_call_infers_and_obligates;
          Alcotest.test_case "failing obligation" `Quick test_failing_obligation;
          Alcotest.test_case "argument mismatch" `Quick test_argument_type_mismatch;
          Alcotest.test_case "annotations check" `Quick test_annotation_checks;
          Alcotest.test_case "annotations guide" `Quick test_annotation_guides_inference;
          Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
        ] );
      ( "methods (§4)",
        [
          Alcotest.test_case "speculative probing" `Quick test_method_probing;
          Alcotest.test_case "no candidate applies" `Quick test_method_not_found;
          Alcotest.test_case "no such method name" `Quick test_method_no_such_name;
          Alcotest.test_case "argument checking" `Quick test_method_args_checked;
          Alcotest.test_case "probe failure keeps trees" `Quick
            test_method_emits_trait_error_via_probe_failure;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "late binding" `Quick test_obligation_fixpoint_across_body;
          Alcotest.test_case "bevy end-to-end (§2.3)" `Quick test_bevy_method_call_end_to_end;
          Alcotest.test_case "param env" `Quick test_param_env_in_bodies;
          Alcotest.test_case "bodiless skipped" `Quick test_fns_without_bodies_skipped;
        ] );
      ("properties", qcheck_tests);
    ]
