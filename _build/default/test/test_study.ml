(** Tests for the user-study simulator: the experimental design invariants
    (§5.1.1 Procedure), determinism, and — most importantly — that the
    simulation reproduces the *direction and rough magnitude* of every
    Fig. 11 effect the paper reports. *)

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* tasks *)

let test_seven_tasks () =
  let tasks = Lazy.force Study.Task.all in
  check_int "seven tasks (§5.1.1)" 7 (List.length tasks);
  List.iter
    (fun (t : Study.Task.t) ->
      check_bool (t.entry.id ^ " rc at top") true (t.inertia_rank = 0);
      check_bool (t.entry.id ^ " has leaves") true (t.n_leaves >= 1);
      check_bool (t.entry.id ^ " difficulty positive") true (t.difficulty > 0.0))
    tasks

let test_task_mix () =
  let tasks = Lazy.force Study.Task.all in
  let branchy = List.filter (fun (t : Study.Task.t) -> t.rustc_distance >= 2) tasks in
  let linear = List.filter (fun (t : Study.Task.t) -> t.rustc_distance < 2) tasks in
  check_bool "has branch-point tasks" true (List.length branchy >= 2);
  check_bool "has linear tasks" true (List.length linear >= 2)

(* ------------------------------------------------------------------ *)
(* experimental design *)

let test_session_design () =
  let d = Study.Simulate.run ~seed:1 ~n:25 () in
  check_int "25 participants" 25 d.n_participants;
  check_int "100 trials" 100 (List.length d.trials);
  (* each participant: 4 tasks, 2 per condition, distinct tasks, blocked *)
  for pid = 0 to 24 do
    let mine = List.filter (fun (t : Study.Simulate.trial) -> t.participant = pid) d.trials in
    check_int "four tasks each" 4 (List.length mine);
    let argus = List.filter (fun (t : Study.Simulate.trial) -> t.condition = Study.Simulate.Argus) mine in
    check_int "two with argus" 2 (List.length argus);
    let ids = List.map (fun (t : Study.Simulate.trial) -> t.task_id) mine in
    check_int "distinct tasks" 4 (List.length (List.sort_uniq compare ids));
    (* blocked: condition changes at most once over the session *)
    let conds = List.map (fun (t : Study.Simulate.trial) -> t.condition) mine in
    let changes =
      List.length
        (List.filteri (fun i c -> i > 0 && c <> List.nth conds (i - 1)) conds)
    in
    check_bool "blocked conditions" true (changes <= 1)
  done

let test_determinism () =
  let d1 = Study.Simulate.run ~seed:77 () and d2 = Study.Simulate.run ~seed:77 () in
  check_bool "identical datasets" true (d1.trials = d2.trials);
  let d3 = Study.Simulate.run ~seed:78 () in
  check_bool "seed changes data" false (d1.trials = d3.trials)

let test_trial_invariants () =
  let d = Study.Simulate.run ~seed:5 () in
  List.iter
    (fun (t : Study.Simulate.trial) ->
      check_bool "times capped" true (t.t_localize <= 600.0 && t.t_fix <= 600.0);
      check_bool "times nonnegative" true (t.t_localize >= 0.0 && t.t_fix >= 0.0);
      check_bool "fix implies localize" true ((not t.fixed) || t.localized);
      check_bool "fix after localize" true ((not t.fixed) || t.t_fix >= t.t_localize);
      if not t.localized then
        check_bool "unlocalized at cap" true (t.t_localize = 600.0))
    d.trials

(* ------------------------------------------------------------------ *)
(* Fig. 11 reproduction: directions and magnitudes *)

let results () = Study.Analyze.analyze (Study.Simulate.run ~seed:42 ())

let test_fig11a_localization_rate () =
  let r = results () in
  (* paper: 84% vs 38%, significant at p < 0.001 *)
  check_bool "argus higher" true (r.argus.loc_rate.value > r.control.loc_rate.value);
  check_bool "argus in [0.7, 0.95]" true
    (r.argus.loc_rate.value >= 0.7 && r.argus.loc_rate.value <= 0.95);
  check_bool "control in [0.25, 0.55]" true
    (r.control.loc_rate.value >= 0.25 && r.control.loc_rate.value <= 0.55);
  check_bool "at least 1.8x" true
    (r.argus.loc_rate.value /. r.control.loc_rate.value >= 1.8);
  check_bool "significant" true (r.loc_rate_test.p_value < 0.001)

let test_fig11b_localization_time () =
  let r = results () in
  (* paper: 3m03s vs 9m58s — at least 2.5x faster *)
  check_bool "argus faster" true (r.argus.loc_time.median < r.control.loc_time.median);
  check_bool "argus under 5m" true (r.argus.loc_time.median < 300.0);
  check_bool "control near cap" true (r.control.loc_time.median > 480.0);
  check_bool "speedup ≥ 2.5x" true
    (r.control.loc_time.median /. r.argus.loc_time.median >= 2.5);
  check_bool "significant" true (r.loc_time_test.p_value < 0.001)

let test_fig11c_fix_rate () =
  let r = results () in
  (* paper: 50% vs 32% *)
  check_bool "argus higher" true (r.argus.fix_rate.value > r.control.fix_rate.value);
  check_bool "argus around half" true
    (r.argus.fix_rate.value >= 0.35 && r.argus.fix_rate.value <= 0.65);
  check_bool "control within paper CI [0.20, 0.47]" true
    (r.control.fix_rate.value >= 0.10 && r.control.fix_rate.value <= 0.47);
  check_bool "fix < localize in both" true
    (r.argus.fix_rate.value <= r.argus.loc_rate.value
    && r.control.fix_rate.value <= r.control.loc_rate.value)

let test_fig11d_fix_time () =
  let r = results () in
  (* paper: 8m07s vs 10m00s *)
  check_bool "argus faster or equal" true
    (r.argus.fix_time.median <= r.control.fix_time.median);
  check_bool "control at cap" true (r.control.fix_time.median >= 590.0);
  check_bool "significant" true (r.fix_time_test.p_value < 0.05)

let test_cis_and_report () =
  let r = results () in
  check_bool "rate CI ordered" true (r.argus.loc_rate.ci.lo <= r.argus.loc_rate.ci.hi);
  check_bool "rate CI brackets" true
    (r.argus.loc_rate.ci.lo <= r.argus.loc_rate.value
    && r.argus.loc_rate.value <= r.argus.loc_rate.ci.hi);
  check_bool "time CI brackets" true
    (r.argus.loc_time.ci.lo <= r.argus.loc_time.median
    && r.argus.loc_time.median <= r.argus.loc_time.ci.hi);
  (* the rendered report mentions all four panels *)
  let text = Study.Analyze.to_string r in
  List.iter
    (fun panel ->
      let rec contains i =
        i + String.length panel <= String.length text
        && (String.sub text i (String.length panel) = panel || contains (i + 1))
      in
      check_bool ("mentions " ^ panel) true (contains 0))
    [ "Fig 11a"; "Fig 11b"; "Fig 11c"; "Fig 11d"; "chi"; "Kruskal-Wallis" ]

let test_effect_stable_across_seeds () =
  (* the direction of every effect must hold for many seeds, not one *)
  for seed = 1 to 10 do
    let r = Study.Analyze.analyze (Study.Simulate.run ~seed ()) in
    check_bool
      (Printf.sprintf "seed %d: localization direction" seed)
      true
      (r.argus.loc_rate.value > r.control.loc_rate.value);
    check_bool
      (Printf.sprintf "seed %d: time direction" seed)
      true
      (r.argus.loc_time.median < r.control.loc_time.median)
  done

let test_participant_skill_affects_speed () =
  let params = Study.Participant.default_params in
  let rng = Stats.Rng.create ~seed:9 in
  let task = List.hd (Lazy.force Study.Task.all) in
  (* average over many trials: higher skill must localize faster *)
  let avg_time skill =
    let times = ref [] in
    for i = 0 to 400 do
      let p = Study.Participant.fresh ~params ~rng i in
      let p = { p with Study.Participant.skill } in
      let o = Study.Participant.localize_with_argus p ~params task in
      times := o.elapsed :: !times
    done;
    Stats.Descriptive.mean !times
  in
  check_bool "skill speeds up localization" true (avg_time 1.6 < avg_time 0.6)

let () =
  Alcotest.run "study"
    [
      ( "tasks",
        [
          Alcotest.test_case "seven tasks" `Quick test_seven_tasks;
          Alcotest.test_case "task mix" `Quick test_task_mix;
        ] );
      ( "design",
        [
          Alcotest.test_case "session design" `Quick test_session_design;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "trial invariants" `Quick test_trial_invariants;
        ] );
      ( "fig11",
        [
          Alcotest.test_case "11a localization rate" `Quick test_fig11a_localization_rate;
          Alcotest.test_case "11b localization time" `Quick test_fig11b_localization_time;
          Alcotest.test_case "11c fix rate" `Quick test_fig11c_fix_rate;
          Alcotest.test_case "11d fix time" `Quick test_fig11d_fix_time;
          Alcotest.test_case "CIs and report" `Quick test_cis_and_report;
          Alcotest.test_case "stable across seeds" `Slow test_effect_stable_across_seeds;
          Alcotest.test_case "skill model" `Quick test_participant_skill_affects_speed;
        ] );
    ]
