(** Tests for the L_TRAIT front end: paths, spans, types, substitution,
    pretty-printing, lexer, parser, and name resolution. *)

open Trait_lang

let check = Alcotest.check
let check_str = check Alcotest.string
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Paths *)

let test_path_basics () =
  let p = Path.external_ "diesel" [ "query_builder"; "SelectStatement" ] in
  check_str "fq" "diesel::query_builder::SelectStatement" (Path.to_string p);
  check_str "name" "SelectStatement" (Path.name p);
  check_bool "not local" false (Path.is_local p);
  let l = Path.local [ "Timer" ] in
  check_str "local no prefix" "Timer" (Path.to_string l);
  check_str "local explicit" "crate::Timer" (Path.to_string ~explicit_crate:true l);
  check_bool "is local" true (Path.is_local l)

let test_path_equal_compare () =
  let a = Path.local [ "m"; "X" ] and b = Path.local [ "m"; "X" ] in
  check_bool "equal" true (Path.equal a b);
  check_bool "same compare" true (Path.compare a b = 0);
  let c = Path.external_ "c" [ "m"; "X" ] in
  check_bool "crate distinguishes" false (Path.equal a c);
  check_bool "set works" true (Path.Set.cardinal (Path.Set.of_list [ a; b; c ]) = 2)

let test_path_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Path.v: empty segment list") (fun () ->
      ignore (Path.local []))

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_basics () =
  let s = Span.v ~file:"a.rs" ~start_line:3 ~start_col:7 ~stop_line:3 ~stop_col:12 in
  check_str "to_string" "a.rs:3:7" (Span.to_string s);
  check_bool "not dummy" false (Span.is_dummy s);
  check_bool "dummy" true (Span.is_dummy Span.dummy);
  check_str "dummy str" "<builtin>" (Span.to_string Span.dummy)

let test_span_union () =
  let a = Span.v ~file:"a.rs" ~start_line:3 ~start_col:1 ~stop_line:3 ~stop_col:5 in
  let b = Span.v ~file:"a.rs" ~start_line:5 ~start_col:2 ~stop_line:6 ~stop_col:1 in
  let u = Span.union a b in
  check_int "start" 3 (Span.start_line u);
  check_bool "dummy absorbs left" true (Span.equal (Span.union Span.dummy b) b);
  check_bool "dummy absorbs right" true (Span.equal (Span.union a Span.dummy) a)

(* ------------------------------------------------------------------ *)
(* Types *)

let timer = Ty.ctor (Path.local [ "Timer" ]) []
let resmut t = Ty.ctor (Path.external_ "bevy" [ "ResMut" ]) [ t ]

let test_ty_equal () =
  check_bool "ctor equal" true (Ty.equal (resmut timer) (resmut timer));
  check_bool "args differ" false (Ty.equal (resmut timer) (resmut Ty.int));
  check_bool "tuple1 /= bare" false (Ty.equal (Ty.tuple [ timer ]) timer);
  check_bool "unit = empty tuple" true (Ty.equal (Ty.tuple []) Ty.Unit);
  check_bool "infer by id" true (Ty.equal (Ty.infer 3) (Ty.infer 3));
  check_bool "infer ids differ" false (Ty.equal (Ty.infer 3) (Ty.infer 4))

let test_ty_size_and_vars () =
  let t = Ty.tuple [ resmut (Ty.infer 0); Ty.ref_ (Ty.param "A") ] in
  check_int "size" 5 (Ty.size t);
  check (Alcotest.list Alcotest.int) "infer vars" [ 0 ] (Ty.infer_vars t);
  check (Alcotest.list Alcotest.string) "params" [ "A" ] (Ty.params t);
  check_bool "has infer" true (Ty.has_infer t);
  check_bool "mentions 0" true (Ty.mentions_infer 0 t);
  check_bool "not mentions 1" false (Ty.mentions_infer 1 t)

let test_ty_heads () =
  check_bool "ctor head" true (Ty.head_path (resmut timer) <> None);
  check_bool "tuple no head" true (Ty.head_path (Ty.tuple [ timer ]) = None);
  check_bool "fn-like fnptr" true (Ty.is_fn_like (Ty.fn_ptr [ timer ] Ty.Unit));
  check_bool "fn-like item" true
    (Ty.is_fn_like (Ty.fn_item (Path.local [ "f" ]) [ timer ] Ty.Unit));
  check_bool "ctor not fn-like" false (Ty.is_fn_like timer);
  check_bool "head crate external" true
    (Ty.head_crate (resmut timer) = Some (Path.External "bevy"));
  check_bool "head crate local" true (Ty.head_crate timer = Some Path.Local);
  check_bool "no head crate" true (Ty.head_crate Ty.int = None)

(* ------------------------------------------------------------------ *)
(* Substitution *)

let test_subst_ty () =
  let s = Subst.of_list [ ("T", timer) ] in
  check_bool "param replaced" true (Ty.equal (Subst.ty s (Ty.param "T")) timer);
  check_bool "other param kept" true (Ty.equal (Subst.ty s (Ty.param "U")) (Ty.param "U"));
  check_bool "nested" true (Ty.equal (Subst.ty s (resmut (Ty.param "T"))) (resmut timer))

let test_subst_predicate () =
  let s = Subst.of_list [ ("T", timer) ] in
  let tr = Ty.trait_ref ~args:[ Ty.param "T" ] (Path.local [ "Tr" ]) in
  let p = Predicate.trait_ (Ty.param "T") tr in
  match Subst.predicate s p with
  | Predicate.Trait { self_ty; trait_ref } ->
      check_bool "self" true (Ty.equal self_ty timer);
      check_bool "arg" true (Ty.equal_args trait_ref.args [ Ty.Ty timer ])
  | _ -> Alcotest.fail "expected trait predicate"

let test_subst_regions () =
  let s = Subst.of_list ~regions:[ ("a", Region.Static) ] [] in
  match Subst.ty s (Ty.ref_ ~region:(Region.named "a") Ty.int) with
  | Ty.Ref (Region.Static, Ty.Int) -> ()
  | _ -> Alcotest.fail "region not substituted"

(* ------------------------------------------------------------------ *)
(* Pretty printing *)

let select_statement =
  Ty.ctor
    (Path.external_ "diesel" [ "query_builder"; "SelectStatement" ])
    [ Ty.ctor (Path.external_ "diesel" [ "FromClause" ]) [ timer ] ]

let test_pretty_short_paths () =
  check_str "short" "SelectStatement<FromClause<Timer>>" (Pretty.ty select_statement)

let test_pretty_qualified () =
  check_str "fq"
    "diesel::query_builder::SelectStatement<diesel::FromClause<Timer>>"
    (Pretty.ty ~cfg:Pretty.verbose select_statement)

let test_pretty_ellipsis () =
  let cfg = { Pretty.default with max_depth = 1 } in
  check_str "elided" "SelectStatement<FromClause<...>>" (Pretty.ty ~cfg select_statement);
  let cfg0 = { Pretty.default with max_depth = 0 } in
  check_str "elided at top" "SelectStatement<...>" (Pretty.ty ~cfg:cfg0 select_statement)

let test_pretty_special_types () =
  check_str "unit" "()" (Pretty.ty Ty.Unit);
  check_str "1-tuple" "(Timer,)" (Pretty.ty (Ty.tuple [ timer ]));
  check_str "2-tuple" "(Timer, i32)" (Pretty.ty (Ty.tuple [ timer; Ty.int ]));
  check_str "fn ptr" "fn(Timer) -> i32" (Pretty.ty (Ty.fn_ptr [ timer ] Ty.int));
  check_str "fn ptr unit ret" "fn(Timer)" (Pretty.ty (Ty.fn_ptr [ timer ] Ty.unit));
  check_str "fn item" "fn(Timer) {run_timer}"
    (Pretty.ty (Ty.fn_item (Path.local [ "run_timer" ]) [ timer ] Ty.unit));
  check_str "infer short" "_" (Pretty.ty (Ty.infer 7));
  check_str "infer verbose" "?7" (Pretty.ty ~cfg:Pretty.verbose (Ty.infer 7));
  check_str "ref" "&i32" (Pretty.ty (Ty.ref_ Ty.int));
  check_str "ref mut" "&mut i32" (Pretty.ty (Ty.ref_mut Ty.int));
  check_str "dyn" "dyn Tr" (Pretty.ty (Ty.dynamic (Ty.trait_ref (Path.local [ "Tr" ]))))

let test_pretty_projection () =
  let proj =
    Ty.projection timer
      (Ty.trait_ref ~args:[ Ty.int ] (Path.external_ "std" [ "Iterator" ]))
      "Item"
  in
  check_str "projection" "<Timer as Iterator<i32>>::Item" (Pretty.projection proj)

let test_pretty_predicate () =
  let tr = Ty.trait_ref ~args:[] (Path.external_ "bevy" [ "SystemParam" ]) in
  check_str "trait bound" "Timer: SystemParam" (Pretty.predicate (Predicate.trait_ timer tr));
  check_str "outlives" "Timer: 'static"
    (Pretty.predicate (Predicate.outlives timer Region.Static))

(* ------------------------------------------------------------------ *)
(* Lexer *)

let tokens_of src =
  Lexer.tokenize ~file:"t.rs" src |> List.map (fun (s : Lexer.spanned) -> s.tok)

let test_lexer_basic () =
  check_int "count" 7 (List.length (tokens_of "struct Foo<T>;"));
  (match tokens_of "impl Foo for Bar {}" with
  | [ Token.KW_IMPL; Token.IDENT "Foo"; Token.KW_FOR; Token.IDENT "Bar"; Token.LBRACE;
      Token.RBRACE; Token.EOF ] ->
      ()
  | _ -> Alcotest.fail "unexpected tokens");
  match tokens_of "'a 'static" with
  | [ Token.LIFETIME "a"; Token.LIFETIME "static"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "lifetimes"

let test_lexer_comments () =
  check_int "line comment" 1 (List.length (tokens_of "// all comment\n"));
  check_int "block comment" 1 (List.length (tokens_of "/* x /* not nested */"));
  match tokens_of "a // trailing\nb" with
  | [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "comment should separate"

let test_lexer_compound_tokens () =
  (match tokens_of ":: : == = ->" with
  | [ Token.COLONCOLON; Token.COLON; Token.EQEQ; Token.EQ; Token.ARROW; Token.EOF ] -> ()
  | _ -> Alcotest.fail "punct");
  match tokens_of {|"a \"quoted\" b"|} with
  | [ Token.STRING {|a "quoted" b|}; Token.EOF ] -> ()
  | _ -> Alcotest.fail "string escapes"

let test_lexer_spans () =
  let toks = Lexer.tokenize ~file:"t.rs" "a\n  bb" in
  match toks with
  | [ a; b; _eof ] ->
      check_str "a span" "t.rs:1:1" (Span.to_string a.span);
      check_str "b span" "t.rs:2:3" (Span.to_string b.span)
  | _ -> Alcotest.fail "token count"

let test_lexer_errors () =
  check_bool "bad char" true
    (try ignore (tokens_of "struct @;"); false with Lexer.Error _ -> true);
  check_bool "unterminated string" true
    (try ignore (tokens_of {|"abc|}); false with Lexer.Error _ -> true);
  check_bool "unterminated comment" true
    (try ignore (tokens_of "/* abc"); false with Lexer.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Parser + resolver, via full programs *)

let resolve src = Resolve.program_of_string ~file:"t.rs" src

let test_resolve_struct_and_goal () =
  let p = resolve "struct A; trait T {} impl T for A {} goal A: T;" in
  check_int "types" 1 (List.length (Program.types p));
  check_int "traits" 1 (List.length (Program.traits p));
  check_int "impls" 1 (List.length (Program.impls p));
  check_int "goals" 1 (List.length (Program.goals p))

let test_resolve_crate_provenance () =
  let p = resolve "extern crate dep { struct X; trait T {} } struct Y;" in
  let x = Option.get (Program.find_type p (Path.external_ "dep" [ "X" ])) in
  check_bool "external" true (Path.crate x.ty_path = Path.External "dep");
  let y = Option.get (Program.find_type p (Path.local [ "Y" ])) in
  check_bool "local" true (Path.is_local y.ty_path)

let test_resolve_modules () =
  let p = resolve "mod users { mod cols { struct Id; } } trait T {} goal Id: T;" in
  check_bool "nested path" true
    (Program.find_type p (Path.local [ "users"; "cols"; "Id" ]) <> None)

let test_resolve_qualified_reference () =
  let p =
    resolve
      "extern crate a { struct X; } extern crate b { struct X; } trait T {} goal a::X: T;"
  in
  match (List.hd (Program.goals p)).goal_pred with
  | Predicate.Trait { self_ty = Ty.Ctor (path, _); _ } ->
      check_str "picked a::X" "a::X" (Path.to_string path)
  | _ -> Alcotest.fail "goal shape"

let test_resolve_ambiguous_is_error () =
  check_bool "ambiguous" true
    (try
       ignore
         (resolve
            "extern crate a { struct X; } extern crate b { struct X; } trait T {} goal X: T;");
       false
     with Resolve.Error (Resolve.Ambiguous_name _) -> true)

let test_resolve_unknown_name () =
  check_bool "unknown" true
    (try ignore (resolve "trait T {} goal Missing: T;"); false
     with Resolve.Error (Resolve.Unknown_name ("Missing", _)) -> true)

let test_resolve_arity_errors () =
  check_bool "struct arity" true
    (try ignore (resolve "struct A<T>; trait T2 {} goal A: T2;"); false
     with Resolve.Error (Resolve.Arity_mismatch _) -> true);
  check_bool "trait arity" true
    (try ignore (resolve "struct A; trait T<X> {} goal A: T;"); false
     with Resolve.Error (Resolve.Arity_mismatch _) -> true)

let test_resolve_not_a_trait () =
  check_bool "struct in bound position" true
    (try ignore (resolve "struct A; struct B; goal A: B;"); false
     with Resolve.Error (Resolve.Not_a_trait _) -> true)

let test_resolve_duplicate () =
  check_bool "dup struct" true
    (try ignore (resolve "struct A; struct A;"); false
     with Resolve.Error (Resolve.Duplicate_decl _) -> true)

let test_resolve_self_in_impl () =
  (* Self in an impl where-clause refers to the impl's self type *)
  let p = resolve "struct A; trait T {} trait U {} impl T for A where Self: U {}" in
  let impl = List.hd (Program.impls p) in
  match impl.impl_generics.where_clauses with
  | [ Predicate.Trait { self_ty; _ } ] ->
      check_bool "Self = A" true (Ty.equal self_ty (Ty.ctor (Path.local [ "A" ]) []))
  | _ -> Alcotest.fail "where clause shape"

let test_resolve_self_outside_impl_errors () =
  check_bool "self at top" true
    (try ignore (resolve "trait T {} goal Self: T;"); false
     with Resolve.Error (Resolve.Self_outside_impl _) -> true)

let test_resolve_binding_desugar () =
  (* T: Iterator<Item = i32> becomes a trait bound + a projection *)
  let p =
    resolve
      "struct C; trait Iterator { type Item; } struct W<I> where I: Iterator<Item = i32>;"
  in
  let w = Option.get (Program.find_type p (Path.local [ "W" ])) in
  check_int "two predicates" 2 (List.length w.ty_generics.where_clauses);
  match w.ty_generics.where_clauses with
  | [ Predicate.Trait _; Predicate.Projection { term = Ty.Int; _ } ] -> ()
  | _ -> Alcotest.fail "desugar shape"

let test_resolve_compound_bounds () =
  let p = resolve "struct A; trait T {} trait U {} struct W<X> where X: T + U;" in
  let w = Option.get (Program.find_type p (Path.local [ "W" ])) in
  check_int "two bounds" 2 (List.length w.ty_generics.where_clauses)

let test_resolve_supertraits () =
  let p = resolve "trait Sized {} trait T: Sized {}" in
  let t = Option.get (Program.find_trait p (Path.local [ "T" ])) in
  check_int "one supertrait" 1 (List.length t.tr_supertraits)

let test_resolve_newtype () =
  let p = resolve "newtype Meters = i32;" in
  let m = Option.get (Program.find_type p (Path.local [ "Meters" ])) in
  check_bool "repr" true (m.ty_repr = Some Ty.Int)

let test_resolve_fn_items () =
  let p = resolve "struct Timer; fn run(Timer) -> i32; trait T {} goal fn[run]: T;" in
  match (List.hd (Program.goals p)).goal_pred with
  | Predicate.Trait { self_ty = Ty.FnItem (path, [ _ ], Ty.Int); _ } ->
      check_str "fn path" "run" (Path.name path)
  | _ -> Alcotest.fail "fn item goal shape"

let test_resolve_generic_fn_item_rejected () =
  check_bool "generic fn item" true
    (try
       ignore (resolve "fn id<T>(T) -> T; trait Tr {} goal fn[id]: Tr;");
       false
     with Resolve.Error (Resolve.Generic_fn_item _) -> true)

let test_resolve_infer_holes_numbered () =
  let p = resolve "struct A; trait T<X, Y> {} goal A: T<_, _>;" in
  match (List.hd (Program.goals p)).goal_pred with
  | Predicate.Trait { trait_ref; _ } ->
      check_bool "distinct holes" true
        (Ty.equal_args trait_ref.args [ Ty.Ty (Ty.infer 0); Ty.Ty (Ty.infer 1) ] = false
        || trait_ref.args = [ Ty.Ty (Ty.infer 0); Ty.Ty (Ty.infer 1) ])
  | _ -> Alcotest.fail "goal shape"

let test_resolve_projection_goal () =
  let p =
    resolve
      "struct A; struct B; trait T { type Out; } impl T for A { type Out = B; } goal <A \
       as T>::Out == B;"
  in
  match (List.hd (Program.goals p)).goal_pred with
  | Predicate.Projection { projection; term } ->
      check_str "assoc" "Out" projection.assoc;
      check_bool "term" true (Ty.equal term (Ty.ctor (Path.local [ "B" ]) []))
  | _ -> Alcotest.fail "projection goal shape"

let test_resolve_unknown_assoc () =
  check_bool "unknown assoc" true
    (try
       ignore (resolve "struct A; trait T { type Out; } goal <A as T>::Wrong == A;");
       false
     with Resolve.Error (Resolve.Unknown_assoc _) -> true)

let test_resolve_on_unimplemented () =
  let p = resolve {|#[on_unimplemented("is no good")] trait T {}|} in
  let t = Option.get (Program.find_trait p (Path.local [ "T" ])) in
  check_bool "message stored" true (t.tr_on_unimplemented = Some "is no good")

let test_resolve_goal_origin () =
  let p = resolve {|struct A; trait T {} goal A: T from "the call to f()";|} in
  check_str "origin" "the call to f()" (List.hd (Program.goals p)).goal_origin

let test_parse_error_reports_span () =
  try
    ignore (resolve "struct ;");
    Alcotest.fail "should not parse"
  with Parser.Error e -> check_str "span" "t.rs:1:8" (Span.to_string e.span)

let test_parse_one_tuple () =
  let p = resolve "trait T {} goal (i32,): T;" in
  match (List.hd (Program.goals p)).goal_pred with
  | Predicate.Trait { self_ty = Ty.Tuple [ Ty.Int ]; _ } -> ()
  | _ -> Alcotest.fail "1-tuple shape"

let test_parse_grouping_paren () =
  let p = resolve "trait T {} goal (i32): T;" in
  match (List.hd (Program.goals p)).goal_pred with
  | Predicate.Trait { self_ty = Ty.Int; _ } -> ()
  | _ -> Alcotest.fail "grouping should collapse"

(* round-trip: pretty-printed resolved predicates parse back to equal *)
let test_pretty_parse_roundtrip () =
  let decls =
    "struct A; struct B<T>; trait T1 {} trait T2<X> { type Out; } fn g(A) -> i32;"
  in
  let goals =
    [
      "A: T1";
      "B<A>: T2<(A, i32)>";
      "<A as T2<i32>>::Out == B<A>";
      "&A: T1";
      "fn[g]: T1";
      "(A, B<i32>, ()): T1";
    ]
  in
  List.iter
    (fun g ->
      let src = decls ^ " goal " ^ g ^ ";" in
      let p1 = resolve src in
      let pred1 = (List.hd (Program.goals p1)).goal_pred in
      let printed = Pretty.predicate ~cfg:Pretty.expanded pred1 in
      let p2 = resolve (decls ^ " goal " ^ printed ^ ";") in
      let pred2 = (List.hd (Program.goals p2)).goal_pred in
      check_bool ("roundtrip " ^ g) true (Predicate.equal pred1 pred2))
    goals

(* ------------------------------------------------------------------ *)
(* qcheck: substitution and printing properties *)

let ty_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Ty.Unit;
        return Ty.Int;
        return Ty.Str;
        map (fun i -> Ty.infer (abs i mod 5)) int;
        map (fun b -> Ty.param (if b then "T" else "U")) bool;
        return (Ty.ctor (Path.local [ "A" ]) []);
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun t -> Ty.ref_ t) (node (depth - 1)));
          (1, map (fun t -> Ty.ctor (Path.external_ "c" [ "B" ]) [ t ]) (node (depth - 1)));
          (1, map2 (fun a b -> Ty.tuple [ a; b ]) (node (depth - 1)) (node (depth - 1)));
          (1, map2 (fun a b -> Ty.fn_ptr [ a ] b) (node (depth - 1)) (node (depth - 1)));
        ]
  in
  node 4

let arbitrary_ty = QCheck.make ~print:(fun t -> Pretty.ty ~cfg:Pretty.verbose t) ty_gen

let prop_subst_identity =
  QCheck.Test.make ~name:"empty substitution is identity" ~count:200 arbitrary_ty (fun t ->
      Ty.equal (Subst.ty Subst.empty t) t)

let prop_subst_idempotent_on_closed =
  QCheck.Test.make ~name:"substitution closed under ground substitution" ~count:200
    arbitrary_ty (fun t ->
      let s = Subst.of_list [ ("T", Ty.Int); ("U", Ty.Str) ] in
      let t' = Subst.ty s t in
      Ty.params t' = [] && Ty.equal (Subst.ty s t') t')

let prop_size_positive =
  QCheck.Test.make ~name:"size ≥ 1 and counts subterms" ~count:200 arbitrary_ty (fun t ->
      Ty.size t >= 1)

let prop_pretty_nonempty =
  QCheck.Test.make ~name:"pretty never empty; verbose ⊇ depth info" ~count:200 arbitrary_ty
    (fun t ->
      String.length (Pretty.ty t) > 0
      && String.length (Pretty.ty ~cfg:Pretty.verbose t)
         >= String.length (Pretty.ty ~cfg:{ Pretty.verbose with qualified_paths = false } t))

let prop_fold_visits_size =
  QCheck.Test.make ~name:"fold visits exactly size nodes" ~count:200 arbitrary_ty (fun t ->
      Ty.fold (fun n _ -> n + 1) 0 t = Ty.size t)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_subst_identity;
      prop_subst_idempotent_on_closed;
      prop_size_positive;
      prop_pretty_nonempty;
      prop_fold_visits_size;
    ]

let () =
  Alcotest.run "trait_lang"
    [
      ( "path",
        [
          Alcotest.test_case "basics" `Quick test_path_basics;
          Alcotest.test_case "equal/compare" `Quick test_path_equal_compare;
          Alcotest.test_case "empty rejected" `Quick test_path_empty_rejected;
        ] );
      ( "span",
        [
          Alcotest.test_case "basics" `Quick test_span_basics;
          Alcotest.test_case "union" `Quick test_span_union;
        ] );
      ( "ty",
        [
          Alcotest.test_case "equality" `Quick test_ty_equal;
          Alcotest.test_case "size and vars" `Quick test_ty_size_and_vars;
          Alcotest.test_case "heads" `Quick test_ty_heads;
        ] );
      ( "subst",
        [
          Alcotest.test_case "types" `Quick test_subst_ty;
          Alcotest.test_case "predicates" `Quick test_subst_predicate;
          Alcotest.test_case "regions" `Quick test_subst_regions;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "short paths" `Quick test_pretty_short_paths;
          Alcotest.test_case "qualified paths" `Quick test_pretty_qualified;
          Alcotest.test_case "ellipsis" `Quick test_pretty_ellipsis;
          Alcotest.test_case "special types" `Quick test_pretty_special_types;
          Alcotest.test_case "projection" `Quick test_pretty_projection;
          Alcotest.test_case "predicates" `Quick test_pretty_predicate;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "compound tokens" `Quick test_lexer_compound_tokens;
          Alcotest.test_case "spans" `Quick test_lexer_spans;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "resolve",
        [
          Alcotest.test_case "struct and goal" `Quick test_resolve_struct_and_goal;
          Alcotest.test_case "crate provenance" `Quick test_resolve_crate_provenance;
          Alcotest.test_case "modules" `Quick test_resolve_modules;
          Alcotest.test_case "qualified reference" `Quick test_resolve_qualified_reference;
          Alcotest.test_case "ambiguous name" `Quick test_resolve_ambiguous_is_error;
          Alcotest.test_case "unknown name" `Quick test_resolve_unknown_name;
          Alcotest.test_case "arity errors" `Quick test_resolve_arity_errors;
          Alcotest.test_case "not a trait" `Quick test_resolve_not_a_trait;
          Alcotest.test_case "duplicate decl" `Quick test_resolve_duplicate;
          Alcotest.test_case "Self in impl" `Quick test_resolve_self_in_impl;
          Alcotest.test_case "Self outside impl" `Quick test_resolve_self_outside_impl_errors;
          Alcotest.test_case "binding desugar" `Quick test_resolve_binding_desugar;
          Alcotest.test_case "compound bounds" `Quick test_resolve_compound_bounds;
          Alcotest.test_case "supertraits" `Quick test_resolve_supertraits;
          Alcotest.test_case "newtype" `Quick test_resolve_newtype;
          Alcotest.test_case "fn items" `Quick test_resolve_fn_items;
          Alcotest.test_case "generic fn item" `Quick test_resolve_generic_fn_item_rejected;
          Alcotest.test_case "infer holes" `Quick test_resolve_infer_holes_numbered;
          Alcotest.test_case "projection goal" `Quick test_resolve_projection_goal;
          Alcotest.test_case "unknown assoc" `Quick test_resolve_unknown_assoc;
          Alcotest.test_case "on_unimplemented" `Quick test_resolve_on_unimplemented;
          Alcotest.test_case "goal origin" `Quick test_resolve_goal_origin;
          Alcotest.test_case "parse error span" `Quick test_parse_error_reports_span;
          Alcotest.test_case "1-tuple" `Quick test_parse_one_tuple;
          Alcotest.test_case "grouping paren" `Quick test_parse_grouping_paren;
          Alcotest.test_case "pretty/parse roundtrip" `Quick test_pretty_parse_roundtrip;
        ] );
      ("properties", qcheck_tests);
    ]
