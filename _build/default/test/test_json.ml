(** Tests for the JSON substrate: printing, parsing, round-trips (unit and
    property-based), and the type-system / proof-tree encoders. *)

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_str = Alcotest.check Alcotest.string

open Argus_json

(* ------------------------------------------------------------------ *)
(* printing *)

let test_print_scalars () =
  check_str "null" "null" (Json.to_string Json.Null);
  check_str "true" "true" (Json.to_string (Json.Bool true));
  check_str "int" "42" (Json.to_string (Json.Int 42));
  check_str "neg" "-7" (Json.to_string (Json.Int (-7)));
  check_str "float" "1.5" (Json.to_string (Json.Float 1.5));
  check_str "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_print_escapes () =
  check_str "quotes" {|"a\"b"|} (Json.to_string (Json.String {|a"b|}));
  check_str "backslash" {|"a\\b"|} (Json.to_string (Json.String {|a\b|}));
  check_str "newline" {|"a\nb"|} (Json.to_string (Json.String "a\nb"));
  check_str "control" "\"\\u0001\"" (Json.to_string (Json.String "\001"))

let test_print_containers () =
  check_str "list" "[1,2,3]" (Json.to_string (Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]));
  check_str "empty list" "[]" (Json.to_string (Json.List []));
  check_str "obj" {|{"a":1,"b":[true]}|}
    (Json.to_string (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ]));
  check_str "empty obj" "{}" (Json.to_string (Json.Obj []))

let test_pretty_print_parses_back () =
  let v =
    Json.Obj
      [
        ("name", Json.String "argus");
        ("nested", Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Null ]) ]);
      ]
  in
  check_bool "pretty round-trip" true (Json.equal (Json.of_string (Json.to_string_pretty v)) v)

(* ------------------------------------------------------------------ *)
(* parsing *)

let test_parse_scalars () =
  check_bool "null" true (Json.of_string "null" = Json.Null);
  check_bool "bools" true
    (Json.of_string "true" = Json.Bool true && Json.of_string "false" = Json.Bool false);
  check_bool "int" true (Json.of_string " 42 " = Json.Int 42);
  check_bool "float" true (Json.of_string "2.5" = Json.Float 2.5);
  check_bool "exp float" true (Json.of_string "1e3" = Json.Float 1000.0)

let test_parse_strings () =
  check_bool "escapes" true (Json.of_string {|"a\n\t\"\\"|} = Json.String "a\n\t\"\\");
  check_bool "unicode bmp" true (Json.of_string {|"A"|} = Json.String "A");
  check_bool "unicode two-byte" true (Json.of_string {|"é"|} = Json.String "\xc3\xa9")

let test_parse_containers () =
  check_bool "nested" true
    (Json.of_string {|{"a": [1, {"b": null}], "c": "x"}|}
    = Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Obj [ ("b", Json.Null) ] ]);
          ("c", Json.String "x");
        ])

let test_parse_errors () =
  let fails s = try ignore (Json.of_string s); false with Json.Parse_error _ -> true in
  check_bool "trailing garbage" true (fails "1 x");
  check_bool "unterminated" true (fails {|"abc|});
  check_bool "bad literal" true (fails "nul");
  check_bool "missing colon" true (fails {|{"a" 1}|});
  check_bool "empty" true (fails "")

let test_accessors () =
  let v = Json.of_string {|{"a": 1, "b": "x", "c": [true]}|} in
  check_bool "member" true (Json.member "a" v = Some (Json.Int 1));
  check_bool "missing member" true (Json.member "z" v = None);
  check_bool "to_int" true (Option.bind (Json.member "a" v) Json.to_int_opt = Some 1);
  check_bool "to_string" true (Option.bind (Json.member "b" v) Json.to_string_opt = Some "x");
  check_bool "to_list" true
    (Option.bind (Json.member "c" v) Json.to_list_opt = Some [ Json.Bool true ])

(* property: print/parse round-trip *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) small_signed_int;
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10));
      ]
  in
  let rec node depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun xs -> Json.List xs) (list_size (int_range 0 4) (node (depth - 1))));
          ( 1,
            map
              (fun xs -> Json.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) xs))
              (list_size (int_range 0 4) (node (depth - 1))) );
        ]
  in
  node 3

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:300
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      Json.equal (Json.of_string (Json.to_string v)) v)

let prop_pretty_roundtrip =
  QCheck.Test.make ~name:"pretty-print/parse round-trip" ~count:300
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      Json.equal (Json.of_string (Json.to_string_pretty v)) v)

(* ------------------------------------------------------------------ *)
(* encoders *)

open Trait_lang

let test_encode_ty_shape () =
  let t =
    Ty.ctor (Path.external_ "bevy" [ "ResMut" ]) [ Ty.ctor (Path.local [ "Timer" ]) [] ]
  in
  let j = Encode.ty t in
  check_bool "kind adt" true (Json.member "kind" j = Some (Json.String "adt"));
  match Json.member "path" j with
  | Some p -> check_bool "crate bevy" true (Json.member "crate" p = Some (Json.String "bevy"))
  | None -> Alcotest.fail "missing path"

let test_encode_predicate_shape () =
  let p =
    Predicate.trait_
      (Ty.ctor (Path.local [ "Timer" ]) [])
      (Ty.trait_ref (Path.external_ "bevy" [ "SystemParam" ]))
  in
  let j = Encode.predicate p in
  check_bool "kind trait" true (Json.member "kind" j = Some (Json.String "trait"))

let test_encode_tree_valid_and_consistent () =
  let entry = Option.get (Corpus.Suite.find "bevy-errant-param") in
  let _, tree = Corpus.Harness.failed_tree entry in
  let j = Encode.proof_tree tree in
  (* serialize, parse back, and check the node/link structure *)
  let j' = Json.of_string (Json.to_string j) in
  check_bool "round-trips" true (Json.equal j j');
  let nodes = Option.get (Option.bind (Json.member "nodes" j') Json.to_list_opt) in
  check_int "all nodes present" (Argus.Proof_tree.size tree) (List.length nodes);
  (* every child link points at a node whose parent is this node *)
  let parent_of = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let id = Option.get (Option.bind (Json.member "id" n) Json.to_int_opt) in
      Hashtbl.replace parent_of id (Json.member "parent" n))
    nodes;
  List.iter
    (fun n ->
      let id = Option.get (Option.bind (Json.member "id" n) Json.to_int_opt) in
      let children = Option.get (Option.bind (Json.member "children" n) Json.to_list_opt) in
      List.iter
        (fun c ->
          let cid = Option.get (Json.to_int_opt c) in
          check_bool "child's parent backlink" true
            (Hashtbl.find parent_of cid = Some (Json.Int id)))
        children)
    nodes

let test_encode_report () =
  let entry = Option.get (Corpus.Suite.find "space-bad-fuel") in
  let _, report = Corpus.Harness.solve entry in
  let j = Encode.report report in
  let goals = Option.get (Option.bind (Json.member "goals" j) Json.to_list_opt) in
  check_int "one goal" 1 (List.length goals);
  check_bool "status disproved" true
    (Json.member "status" (List.hd goals) = Some (Json.String "disproved"))

(* ------------------------------------------------------------------ *)
(* decoders: encode/decode round trips on the type system *)

let tl_ty_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Ty.Unit;
        return Ty.Int;
        return Ty.Str;
        map (fun i -> Ty.Infer (abs i mod 9)) int;
        map (fun b -> Ty.Param (if b then "T" else "U")) bool;
        return (Ty.ctor (Path.local [ "A" ]) []);
        return (Ty.ctor (Path.external_ "dep" [ "m"; "B" ]) []);
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun t -> Ty.ref_ ~region:(Region.named "a") t) (node (depth - 1)));
          (1, map (fun t -> Ty.ref_mut t) (node (depth - 1)));
          (1, map (fun t -> Ty.ctor (Path.external_ "c" [ "W" ]) [ t ]) (node (depth - 1)));
          (1, map2 (fun a b -> Ty.tuple [ a; b ]) (node (depth - 1)) (node (depth - 1)));
          (1, map2 (fun a b -> Ty.fn_ptr [ a ] b) (node (depth - 1)) (node (depth - 1)));
          ( 1,
            map
              (fun t ->
                Ty.proj
                  (Ty.projection t (Ty.trait_ref ~args:[ Ty.Int ] (Path.external_ "s" [ "Tr" ])) "Out"))
              (node (depth - 1)) );
        ]
  in
  node 3

let tl_pred_gen =
  let open QCheck.Gen in
  let* t = tl_ty_gen in
  let* choice = int_range 0 3 in
  match choice with
  | 0 -> return (Predicate.trait_ t (Ty.trait_ref ~args:[ Ty.Int ] (Path.external_ "s" [ "Tr" ])))
  | 1 ->
      return
        (Predicate.projection_eq
           (Ty.projection t (Ty.trait_ref (Path.external_ "s" [ "Tr" ])) "Out")
           Ty.Int)
  | 2 -> return (Predicate.outlives t Region.Static)
  | _ -> return (Predicate.well_formed t)

let prop_ty_encode_decode =
  QCheck.Test.make ~name:"ty encode/decode round-trip (through text)" ~count:300
    (QCheck.make ~print:(fun t -> Trait_lang.Pretty.ty ~cfg:Trait_lang.Pretty.verbose t) tl_ty_gen)
    (fun t ->
      let j = Json.of_string (Json.to_string (Encode.ty t)) in
      Ty.equal (Decode.ty_of_json j) t)

let prop_pred_encode_decode =
  QCheck.Test.make ~name:"predicate encode/decode round-trip" ~count:300
    (QCheck.make
       ~print:(fun p -> Trait_lang.Pretty.predicate ~cfg:Trait_lang.Pretty.verbose p)
       tl_pred_gen)
    (fun p ->
      let j = Json.of_string (Json.to_string (Encode.predicate p)) in
      Predicate.equal (Decode.predicate_of_json j) p)

let test_decode_errors () =
  let fails f j = try ignore (f (Json.of_string j)); false with Decode.Decode_error _ -> true in
  check_bool "bad kind" true (fails Decode.ty_of_json {|{"kind": "nope"}|});
  check_bool "missing field" true (fails Decode.ty_of_json {|{"kind": "param"}|});
  check_bool "wrong shape" true (fails Decode.predicate_of_json {|{"kind": "trait"}|});
  check_bool "not an object" true (fails Decode.ty_of_json "[1,2]")

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_pretty_roundtrip; prop_ty_encode_decode; prop_pred_encode_decode ]

let () =
  Alcotest.run "json"
    [
      ( "print",
        [
          Alcotest.test_case "scalars" `Quick test_print_scalars;
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "containers" `Quick test_print_containers;
          Alcotest.test_case "pretty" `Quick test_pretty_print_parses_back;
        ] );
      ( "parse",
        [
          Alcotest.test_case "scalars" `Quick test_parse_scalars;
          Alcotest.test_case "strings" `Quick test_parse_strings;
          Alcotest.test_case "containers" `Quick test_parse_containers;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "encode",
        [
          Alcotest.test_case "ty shape" `Quick test_encode_ty_shape;
          Alcotest.test_case "predicate shape" `Quick test_encode_predicate_shape;
          Alcotest.test_case "tree consistency" `Quick test_encode_tree_valid_and_consistent;
          Alcotest.test_case "report" `Quick test_encode_report;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
        ] );
      ("properties", qcheck_tests);
    ]
